// Umbrella header: the supported public surface of the nemo runtime.
//
//   #include <nemo/nemo.hpp>
//
// pulls in exactly the API an application is expected to program against:
//
//   nemo::core::Config   — world construction knobs (ranks, mode, lmt, coll)
//   nemo::core::run      — launch a world of ranks (threads or processes)
//   nemo::core::Comm     — per-rank handle: send/recv/isend/irecv/wait,
//                          datatypes, and the collectives (barrier, bcast,
//                          reduce/allreduce, alltoall) with their flat,
//                          shm-arena and hierarchical two-level schedules
//   nemo::core::World    — topology/placement queries for a running world
//   nemo::Config         — the NEMO_* environment-knob registry
//
// Everything else under src/ (engine internals, LMT backends, the shm
// substrate, transports, tracing, tuning) is implementation detail: it may
// be included directly by tools and tests in this repository, but its
// layout is not a compatibility surface. New applications should include
// only this header.
#pragma once

#include "common/options.hpp"  // nemo::Config — NEMO_* knob registry.
#include "core/comm.hpp"       // World, Comm, core::Config, core::run.
