# Empty dependencies file for abl_chunk.
# This may be replaced when dependencies are built.
