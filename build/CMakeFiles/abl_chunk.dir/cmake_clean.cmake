file(REMOVE_RECURSE
  "CMakeFiles/abl_chunk.dir/bench/abl_chunk.cpp.o"
  "CMakeFiles/abl_chunk.dir/bench/abl_chunk.cpp.o.d"
  "abl_chunk"
  "abl_chunk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_chunk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
