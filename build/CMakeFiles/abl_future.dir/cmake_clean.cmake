file(REMOVE_RECURSE
  "CMakeFiles/abl_future.dir/bench/abl_future.cpp.o"
  "CMakeFiles/abl_future.dir/bench/abl_future.cpp.o.d"
  "abl_future"
  "abl_future.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_future.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
