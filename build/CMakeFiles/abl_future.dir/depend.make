# Empty dependencies file for abl_future.
# This may be replaced when dependencies are built.
