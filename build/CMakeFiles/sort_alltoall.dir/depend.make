# Empty dependencies file for sort_alltoall.
# This may be replaced when dependencies are built.
