file(REMOVE_RECURSE
  "CMakeFiles/sort_alltoall.dir/examples/sort_alltoall.cpp.o"
  "CMakeFiles/sort_alltoall.dir/examples/sort_alltoall.cpp.o.d"
  "sort_alltoall"
  "sort_alltoall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sort_alltoall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
