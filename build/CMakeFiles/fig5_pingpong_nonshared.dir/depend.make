# Empty dependencies file for fig5_pingpong_nonshared.
# This may be replaced when dependencies are built.
