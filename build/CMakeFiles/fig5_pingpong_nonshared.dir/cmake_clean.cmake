file(REMOVE_RECURSE
  "CMakeFiles/fig5_pingpong_nonshared.dir/bench/fig5_pingpong_nonshared.cpp.o"
  "CMakeFiles/fig5_pingpong_nonshared.dir/bench/fig5_pingpong_nonshared.cpp.o.d"
  "fig5_pingpong_nonshared"
  "fig5_pingpong_nonshared.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_pingpong_nonshared.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
