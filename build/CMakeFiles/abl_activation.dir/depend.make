# Empty dependencies file for abl_activation.
# This may be replaced when dependencies are built.
