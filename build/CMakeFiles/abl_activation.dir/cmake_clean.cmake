file(REMOVE_RECURSE
  "CMakeFiles/abl_activation.dir/bench/abl_activation.cpp.o"
  "CMakeFiles/abl_activation.dir/bench/abl_activation.cpp.o.d"
  "abl_activation"
  "abl_activation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_activation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
