file(REMOVE_RECURSE
  "CMakeFiles/test_knem_device.dir/tests/test_knem_device.cpp.o"
  "CMakeFiles/test_knem_device.dir/tests/test_knem_device.cpp.o.d"
  "test_knem_device"
  "test_knem_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_knem_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
