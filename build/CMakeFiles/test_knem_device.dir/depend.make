# Empty dependencies file for test_knem_device.
# This may be replaced when dependencies are built.
