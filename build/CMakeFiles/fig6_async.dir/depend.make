# Empty dependencies file for fig6_async.
# This may be replaced when dependencies are built.
