file(REMOVE_RECURSE
  "CMakeFiles/fig6_async.dir/bench/fig6_async.cpp.o"
  "CMakeFiles/fig6_async.dir/bench/fig6_async.cpp.o.d"
  "fig6_async"
  "fig6_async.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
