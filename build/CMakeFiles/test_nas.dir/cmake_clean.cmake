file(REMOVE_RECURSE
  "CMakeFiles/test_nas.dir/tests/test_nas.cpp.o"
  "CMakeFiles/test_nas.dir/tests/test_nas.cpp.o.d"
  "test_nas"
  "test_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
