# Empty dependencies file for test_nas.
# This may be replaced when dependencies are built.
