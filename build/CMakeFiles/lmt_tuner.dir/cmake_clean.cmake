file(REMOVE_RECURSE
  "CMakeFiles/lmt_tuner.dir/examples/lmt_tuner.cpp.o"
  "CMakeFiles/lmt_tuner.dir/examples/lmt_tuner.cpp.o.d"
  "lmt_tuner"
  "lmt_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmt_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
