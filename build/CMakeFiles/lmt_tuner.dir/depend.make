# Empty dependencies file for lmt_tuner.
# This may be replaced when dependencies are built.
