# Empty dependencies file for fig7_alltoall.
# This may be replaced when dependencies are built.
