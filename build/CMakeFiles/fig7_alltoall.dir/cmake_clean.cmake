file(REMOVE_RECURSE
  "CMakeFiles/fig7_alltoall.dir/bench/fig7_alltoall.cpp.o"
  "CMakeFiles/fig7_alltoall.dir/bench/fig7_alltoall.cpp.o.d"
  "fig7_alltoall"
  "fig7_alltoall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_alltoall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
