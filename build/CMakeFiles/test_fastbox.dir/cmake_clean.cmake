file(REMOVE_RECURSE
  "CMakeFiles/test_fastbox.dir/tests/test_fastbox.cpp.o"
  "CMakeFiles/test_fastbox.dir/tests/test_fastbox.cpp.o.d"
  "test_fastbox"
  "test_fastbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fastbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
