# Empty dependencies file for test_fastbox.
# This may be replaced when dependencies are built.
