# Empty dependencies file for test_pt2pt.
# This may be replaced when dependencies are built.
