file(REMOVE_RECURSE
  "CMakeFiles/test_pt2pt.dir/tests/test_pt2pt.cpp.o"
  "CMakeFiles/test_pt2pt.dir/tests/test_pt2pt.cpp.o.d"
  "test_pt2pt"
  "test_pt2pt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pt2pt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
