file(REMOVE_RECURSE
  "CMakeFiles/test_datatype.dir/tests/test_datatype.cpp.o"
  "CMakeFiles/test_datatype.dir/tests/test_datatype.cpp.o.d"
  "test_datatype"
  "test_datatype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datatype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
