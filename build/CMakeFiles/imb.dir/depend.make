# Empty dependencies file for imb.
# This may be replaced when dependencies are built.
