file(REMOVE_RECURSE
  "CMakeFiles/imb.dir/examples/imb.cpp.o"
  "CMakeFiles/imb.dir/examples/imb.cpp.o.d"
  "imb"
  "imb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
