file(REMOVE_RECURSE
  "CMakeFiles/nemo_nas.dir/src/nas/cg.cpp.o"
  "CMakeFiles/nemo_nas.dir/src/nas/cg.cpp.o.d"
  "CMakeFiles/nemo_nas.dir/src/nas/ep.cpp.o"
  "CMakeFiles/nemo_nas.dir/src/nas/ep.cpp.o.d"
  "CMakeFiles/nemo_nas.dir/src/nas/ft.cpp.o"
  "CMakeFiles/nemo_nas.dir/src/nas/ft.cpp.o.d"
  "CMakeFiles/nemo_nas.dir/src/nas/is.cpp.o"
  "CMakeFiles/nemo_nas.dir/src/nas/is.cpp.o.d"
  "CMakeFiles/nemo_nas.dir/src/nas/mg.cpp.o"
  "CMakeFiles/nemo_nas.dir/src/nas/mg.cpp.o.d"
  "CMakeFiles/nemo_nas.dir/src/nas/nas_common.cpp.o"
  "CMakeFiles/nemo_nas.dir/src/nas/nas_common.cpp.o.d"
  "CMakeFiles/nemo_nas.dir/src/nas/pseudo_apps.cpp.o"
  "CMakeFiles/nemo_nas.dir/src/nas/pseudo_apps.cpp.o.d"
  "libnemo_nas.a"
  "libnemo_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nemo_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
