# Empty dependencies file for nemo_nas.
# This may be replaced when dependencies are built.
