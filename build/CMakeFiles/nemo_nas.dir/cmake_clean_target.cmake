file(REMOVE_RECURSE
  "libnemo_nas.a"
)
