
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nas/cg.cpp" "CMakeFiles/nemo_nas.dir/src/nas/cg.cpp.o" "gcc" "CMakeFiles/nemo_nas.dir/src/nas/cg.cpp.o.d"
  "/root/repo/src/nas/ep.cpp" "CMakeFiles/nemo_nas.dir/src/nas/ep.cpp.o" "gcc" "CMakeFiles/nemo_nas.dir/src/nas/ep.cpp.o.d"
  "/root/repo/src/nas/ft.cpp" "CMakeFiles/nemo_nas.dir/src/nas/ft.cpp.o" "gcc" "CMakeFiles/nemo_nas.dir/src/nas/ft.cpp.o.d"
  "/root/repo/src/nas/is.cpp" "CMakeFiles/nemo_nas.dir/src/nas/is.cpp.o" "gcc" "CMakeFiles/nemo_nas.dir/src/nas/is.cpp.o.d"
  "/root/repo/src/nas/mg.cpp" "CMakeFiles/nemo_nas.dir/src/nas/mg.cpp.o" "gcc" "CMakeFiles/nemo_nas.dir/src/nas/mg.cpp.o.d"
  "/root/repo/src/nas/nas_common.cpp" "CMakeFiles/nemo_nas.dir/src/nas/nas_common.cpp.o" "gcc" "CMakeFiles/nemo_nas.dir/src/nas/nas_common.cpp.o.d"
  "/root/repo/src/nas/pseudo_apps.cpp" "CMakeFiles/nemo_nas.dir/src/nas/pseudo_apps.cpp.o" "gcc" "CMakeFiles/nemo_nas.dir/src/nas/pseudo_apps.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/nemo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
