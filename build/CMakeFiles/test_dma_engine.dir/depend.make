# Empty dependencies file for test_dma_engine.
# This may be replaced when dependencies are built.
