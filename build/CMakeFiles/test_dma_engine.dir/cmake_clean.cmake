file(REMOVE_RECURSE
  "CMakeFiles/test_dma_engine.dir/tests/test_dma_engine.cpp.o"
  "CMakeFiles/test_dma_engine.dir/tests/test_dma_engine.cpp.o.d"
  "test_dma_engine"
  "test_dma_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dma_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
