# Empty dependencies file for test_lmt_models.
# This may be replaced when dependencies are built.
