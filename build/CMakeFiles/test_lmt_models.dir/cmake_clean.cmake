file(REMOVE_RECURSE
  "CMakeFiles/test_lmt_models.dir/tests/test_lmt_models.cpp.o"
  "CMakeFiles/test_lmt_models.dir/tests/test_lmt_models.cpp.o.d"
  "test_lmt_models"
  "test_lmt_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lmt_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
