# Empty dependencies file for test_process_mode.
# This may be replaced when dependencies are built.
