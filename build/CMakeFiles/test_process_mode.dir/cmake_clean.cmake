file(REMOVE_RECURSE
  "CMakeFiles/test_process_mode.dir/tests/test_process_mode.cpp.o"
  "CMakeFiles/test_process_mode.dir/tests/test_process_mode.cpp.o.d"
  "test_process_mode"
  "test_process_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_process_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
