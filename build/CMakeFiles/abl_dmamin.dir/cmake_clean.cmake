file(REMOVE_RECURSE
  "CMakeFiles/abl_dmamin.dir/bench/abl_dmamin.cpp.o"
  "CMakeFiles/abl_dmamin.dir/bench/abl_dmamin.cpp.o.d"
  "abl_dmamin"
  "abl_dmamin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dmamin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
