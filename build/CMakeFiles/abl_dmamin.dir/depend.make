# Empty dependencies file for abl_dmamin.
# This may be replaced when dependencies are built.
