# Empty dependencies file for test_copy_ring.
# This may be replaced when dependencies are built.
