file(REMOVE_RECURSE
  "CMakeFiles/test_copy_ring.dir/tests/test_copy_ring.cpp.o"
  "CMakeFiles/test_copy_ring.dir/tests/test_copy_ring.cpp.o.d"
  "test_copy_ring"
  "test_copy_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_copy_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
