file(REMOVE_RECURSE
  "CMakeFiles/table2_cachemiss.dir/bench/table2_cachemiss.cpp.o"
  "CMakeFiles/table2_cachemiss.dir/bench/table2_cachemiss.cpp.o.d"
  "table2_cachemiss"
  "table2_cachemiss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_cachemiss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
