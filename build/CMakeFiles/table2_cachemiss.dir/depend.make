# Empty dependencies file for table2_cachemiss.
# This may be replaced when dependencies are built.
