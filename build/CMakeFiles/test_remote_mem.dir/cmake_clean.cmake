file(REMOVE_RECURSE
  "CMakeFiles/test_remote_mem.dir/tests/test_remote_mem.cpp.o"
  "CMakeFiles/test_remote_mem.dir/tests/test_remote_mem.cpp.o.d"
  "test_remote_mem"
  "test_remote_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_remote_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
