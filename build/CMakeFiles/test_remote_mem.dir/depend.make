# Empty dependencies file for test_remote_mem.
# This may be replaced when dependencies are built.
