file(REMOVE_RECURSE
  "libnemo.a"
)
