
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/iovec.cpp" "CMakeFiles/nemo.dir/src/common/iovec.cpp.o" "gcc" "CMakeFiles/nemo.dir/src/common/iovec.cpp.o.d"
  "/root/repo/src/common/options.cpp" "CMakeFiles/nemo.dir/src/common/options.cpp.o" "gcc" "CMakeFiles/nemo.dir/src/common/options.cpp.o.d"
  "/root/repo/src/common/topology.cpp" "CMakeFiles/nemo.dir/src/common/topology.cpp.o" "gcc" "CMakeFiles/nemo.dir/src/common/topology.cpp.o.d"
  "/root/repo/src/core/collectives.cpp" "CMakeFiles/nemo.dir/src/core/collectives.cpp.o" "gcc" "CMakeFiles/nemo.dir/src/core/collectives.cpp.o.d"
  "/root/repo/src/core/comm.cpp" "CMakeFiles/nemo.dir/src/core/comm.cpp.o" "gcc" "CMakeFiles/nemo.dir/src/core/comm.cpp.o.d"
  "/root/repo/src/core/datatype.cpp" "CMakeFiles/nemo.dir/src/core/datatype.cpp.o" "gcc" "CMakeFiles/nemo.dir/src/core/datatype.cpp.o.d"
  "/root/repo/src/core/match.cpp" "CMakeFiles/nemo.dir/src/core/match.cpp.o" "gcc" "CMakeFiles/nemo.dir/src/core/match.cpp.o.d"
  "/root/repo/src/core/runtime.cpp" "CMakeFiles/nemo.dir/src/core/runtime.cpp.o" "gcc" "CMakeFiles/nemo.dir/src/core/runtime.cpp.o.d"
  "/root/repo/src/counters/papi_lite.cpp" "CMakeFiles/nemo.dir/src/counters/papi_lite.cpp.o" "gcc" "CMakeFiles/nemo.dir/src/counters/papi_lite.cpp.o.d"
  "/root/repo/src/knem/knem_device.cpp" "CMakeFiles/nemo.dir/src/knem/knem_device.cpp.o" "gcc" "CMakeFiles/nemo.dir/src/knem/knem_device.cpp.o.d"
  "/root/repo/src/lmt/lmt_knem.cpp" "CMakeFiles/nemo.dir/src/lmt/lmt_knem.cpp.o" "gcc" "CMakeFiles/nemo.dir/src/lmt/lmt_knem.cpp.o.d"
  "/root/repo/src/lmt/lmt_shm_copy.cpp" "CMakeFiles/nemo.dir/src/lmt/lmt_shm_copy.cpp.o" "gcc" "CMakeFiles/nemo.dir/src/lmt/lmt_shm_copy.cpp.o.d"
  "/root/repo/src/lmt/lmt_vmsplice.cpp" "CMakeFiles/nemo.dir/src/lmt/lmt_vmsplice.cpp.o" "gcc" "CMakeFiles/nemo.dir/src/lmt/lmt_vmsplice.cpp.o.d"
  "/root/repo/src/lmt/policy.cpp" "CMakeFiles/nemo.dir/src/lmt/policy.cpp.o" "gcc" "CMakeFiles/nemo.dir/src/lmt/policy.cpp.o.d"
  "/root/repo/src/shm/arena.cpp" "CMakeFiles/nemo.dir/src/shm/arena.cpp.o" "gcc" "CMakeFiles/nemo.dir/src/shm/arena.cpp.o.d"
  "/root/repo/src/shm/dma_engine.cpp" "CMakeFiles/nemo.dir/src/shm/dma_engine.cpp.o" "gcc" "CMakeFiles/nemo.dir/src/shm/dma_engine.cpp.o.d"
  "/root/repo/src/shm/nt_copy.cpp" "CMakeFiles/nemo.dir/src/shm/nt_copy.cpp.o" "gcc" "CMakeFiles/nemo.dir/src/shm/nt_copy.cpp.o.d"
  "/root/repo/src/shm/pipes.cpp" "CMakeFiles/nemo.dir/src/shm/pipes.cpp.o" "gcc" "CMakeFiles/nemo.dir/src/shm/pipes.cpp.o.d"
  "/root/repo/src/shm/process_runner.cpp" "CMakeFiles/nemo.dir/src/shm/process_runner.cpp.o" "gcc" "CMakeFiles/nemo.dir/src/shm/process_runner.cpp.o.d"
  "/root/repo/src/shm/remote_mem.cpp" "CMakeFiles/nemo.dir/src/shm/remote_mem.cpp.o" "gcc" "CMakeFiles/nemo.dir/src/shm/remote_mem.cpp.o.d"
  "/root/repo/src/sim/cache_sim.cpp" "CMakeFiles/nemo.dir/src/sim/cache_sim.cpp.o" "gcc" "CMakeFiles/nemo.dir/src/sim/cache_sim.cpp.o.d"
  "/root/repo/src/sim/lmt_models.cpp" "CMakeFiles/nemo.dir/src/sim/lmt_models.cpp.o" "gcc" "CMakeFiles/nemo.dir/src/sim/lmt_models.cpp.o.d"
  "/root/repo/src/sim/memsys.cpp" "CMakeFiles/nemo.dir/src/sim/memsys.cpp.o" "gcc" "CMakeFiles/nemo.dir/src/sim/memsys.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
