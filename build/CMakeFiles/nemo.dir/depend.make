# Empty dependencies file for nemo.
# This may be replaced when dependencies are built.
