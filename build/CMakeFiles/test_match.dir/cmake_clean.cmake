file(REMOVE_RECURSE
  "CMakeFiles/test_match.dir/tests/test_match.cpp.o"
  "CMakeFiles/test_match.dir/tests/test_match.cpp.o.d"
  "test_match"
  "test_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
