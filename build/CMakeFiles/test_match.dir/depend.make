# Empty dependencies file for test_match.
# This may be replaced when dependencies are built.
