# Empty dependencies file for test_lmt_backends.
# This may be replaced when dependencies are built.
