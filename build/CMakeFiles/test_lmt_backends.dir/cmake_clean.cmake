file(REMOVE_RECURSE
  "CMakeFiles/test_lmt_backends.dir/tests/test_lmt_backends.cpp.o"
  "CMakeFiles/test_lmt_backends.dir/tests/test_lmt_backends.cpp.o.d"
  "test_lmt_backends"
  "test_lmt_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lmt_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
