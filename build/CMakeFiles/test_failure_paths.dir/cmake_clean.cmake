file(REMOVE_RECURSE
  "CMakeFiles/test_failure_paths.dir/tests/test_failure_paths.cpp.o"
  "CMakeFiles/test_failure_paths.dir/tests/test_failure_paths.cpp.o.d"
  "test_failure_paths"
  "test_failure_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_failure_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
