# Empty dependencies file for test_failure_paths.
# This may be replaced when dependencies are built.
