file(REMOVE_RECURSE
  "CMakeFiles/table1_nas.dir/bench/table1_nas.cpp.o"
  "CMakeFiles/table1_nas.dir/bench/table1_nas.cpp.o.d"
  "table1_nas"
  "table1_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
