# Empty dependencies file for table1_nas.
# This may be replaced when dependencies are built.
