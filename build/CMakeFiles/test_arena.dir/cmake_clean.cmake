file(REMOVE_RECURSE
  "CMakeFiles/test_arena.dir/tests/test_arena.cpp.o"
  "CMakeFiles/test_arena.dir/tests/test_arena.cpp.o.d"
  "test_arena"
  "test_arena.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arena.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
