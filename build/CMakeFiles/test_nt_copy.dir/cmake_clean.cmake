file(REMOVE_RECURSE
  "CMakeFiles/test_nt_copy.dir/tests/test_nt_copy.cpp.o"
  "CMakeFiles/test_nt_copy.dir/tests/test_nt_copy.cpp.o.d"
  "test_nt_copy"
  "test_nt_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nt_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
