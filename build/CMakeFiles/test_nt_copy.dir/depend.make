# Empty dependencies file for test_nt_copy.
# This may be replaced when dependencies are built.
