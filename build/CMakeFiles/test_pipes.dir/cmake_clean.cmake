file(REMOVE_RECURSE
  "CMakeFiles/test_pipes.dir/tests/test_pipes.cpp.o"
  "CMakeFiles/test_pipes.dir/tests/test_pipes.cpp.o.d"
  "test_pipes"
  "test_pipes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
