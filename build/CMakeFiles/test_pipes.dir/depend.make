# Empty dependencies file for test_pipes.
# This may be replaced when dependencies are built.
