file(REMOVE_RECURSE
  "CMakeFiles/fig3_vmsplice.dir/bench/fig3_vmsplice.cpp.o"
  "CMakeFiles/fig3_vmsplice.dir/bench/fig3_vmsplice.cpp.o.d"
  "fig3_vmsplice"
  "fig3_vmsplice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_vmsplice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
