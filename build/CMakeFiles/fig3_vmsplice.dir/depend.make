# Empty dependencies file for fig3_vmsplice.
# This may be replaced when dependencies are built.
