# Empty dependencies file for fig4_pingpong_shared.
# This may be replaced when dependencies are built.
