file(REMOVE_RECURSE
  "CMakeFiles/fig4_pingpong_shared.dir/bench/fig4_pingpong_shared.cpp.o"
  "CMakeFiles/fig4_pingpong_shared.dir/bench/fig4_pingpong_shared.cpp.o.d"
  "fig4_pingpong_shared"
  "fig4_pingpong_shared.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_pingpong_shared.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
