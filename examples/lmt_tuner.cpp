// Domain-specific example: an "LMT tuner" that inspects a machine topology
// and prints the policy decisions the library would take — which backend per
// core pair, the DMAmin threshold per core, and the activation thresholds.
//
//   build/examples/lmt_tuner                   # this host
//   build/examples/lmt_tuner --topo=e5345      # the paper's machine
#include <cstdio>

#include "common/options.hpp"
#include "knem/knem_device.hpp"
#include "lmt/policy.hpp"
#include "shm/pipes.hpp"
#include "shm/nt_copy.hpp"
#include "shm/remote_mem.hpp"

using namespace nemo;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  opt.declare("topo", "host|e5345|x5460|nehalem (default host)");
  opt.declare("msg", "message size for decisions (default 1MiB)");
  opt.finalize();

  std::string t = opt.get("topo", "host");
  Topology topo = t == "e5345"     ? xeon_e5345()
                  : t == "x5460"   ? xeon_x5460()
                  : t == "nehalem" ? nehalem()
                                   : detect_host();
  std::size_t msg = opt.get_size("msg", 1 * MiB);

  std::printf("topology: %s, %d cores\n", topo.name.c_str(), topo.num_cores);
  for (const auto& c : topo.caches)
    if (c.level >= 2)
      std::printf("  L%d %s shared by %zu core(s)\n", c.level,
                  format_size(c.size_bytes).c_str(), c.cores.size());

  std::printf("\nhost capabilities: vmsplice=%s cma=%s nt-stores=%s\n",
              shm::Pipe::vmsplice_available() ? "yes" : "no",
              shm::cma_available() ? "yes" : "no",
              shm::nt_copy_available() ? "yes" : "no");

  lmt::PolicyConfig pc;
  lmt::Policy policy(topo, pc);
  std::printf("\nactivation: eager -> LMT at >%s (pingpong), >%s (collective)\n",
              format_size(pc.knem_activation).c_str(),
              format_size(pc.knem_collective_activation).c_str());

  std::printf("\nDMAmin per core (cache/(2*sharers)):\n");
  for (int c = 0; c < topo.num_cores; ++c)
    std::printf("  core %2d -> %s\n", c,
                format_size(policy.dma_min_for(c)).c_str());

  std::printf("\nper-pair decisions for %s messages (KNEM loadable):\n",
              format_size(msg).c_str());
  int pairs = 0;
  for (int a = 0; a < topo.num_cores && pairs < 12; ++a)
    for (int b = a + 1; b < topo.num_cores && pairs < 12; ++b, ++pairs) {
      lmt::LmtKind kind = policy.choose_kind(msg, a, b);
      std::uint32_t flags = policy.knem_flags(msg, b, lmt::KnemMode::kAuto);
      std::printf("  (%d,%d) %-22s -> %-10s %s\n", a, b,
                  to_string(topo.classify(a, b)), to_string(kind),
                  kind == lmt::LmtKind::kKnem
                      ? ((flags & knem::kFlagDma) ? "[dma,async]"
                                                  : "[cpu,sync]")
                      : "");
    }

  lmt::PolicyConfig no_knem = pc;
  no_knem.knem_available = false;
  lmt::Policy policy2(topo, no_knem);
  std::printf("\nsame, when loading a kernel module is NOT acceptable:\n");
  pairs = 0;
  for (int a = 0; a < topo.num_cores && pairs < 6; ++a)
    for (int b = a + 1; b < topo.num_cores && pairs < 6; ++b, ++pairs)
      std::printf("  (%d,%d) %-22s -> %s\n", a, b,
                  to_string(topo.classify(a, b)),
                  to_string(policy2.choose_kind(msg, a, b)));
  return 0;
}
