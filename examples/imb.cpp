// IMB-style command-line benchmark tool over the nemolmt public API — the
// utility a downstream user runs first on a new machine.
//
//   build/examples/imb --op=pingpong --lmt=knem --min=4KiB --max=4MiB
//   build/examples/imb --op=alltoall --ranks=8 --lmt=auto
//   build/examples/imb --op=exchange --ranks=4
#include <cstdio>
#include <vector>

#include "common/checksum.hpp"
#include "common/options.hpp"
#include "common/timing.hpp"
#include "core/comm.hpp"
#include "shm/process_runner.hpp"

using namespace nemo;

namespace {

lmt::LmtKind parse_kind(const std::string& s) {
  if (s == "default") return lmt::LmtKind::kDefaultShm;
  if (s == "vmsplice") return lmt::LmtKind::kVmsplice;
  if (s == "writev") return lmt::LmtKind::kVmspliceWritev;
  if (s == "knem") return lmt::LmtKind::kKnem;
  if (s == "cma") return lmt::LmtKind::kCma;
  return lmt::LmtKind::kAuto;
}

lmt::KnemMode parse_mode(const std::string& s) {
  if (s == "sync-copy") return lmt::KnemMode::kSyncCopy;
  if (s == "async-copy") return lmt::KnemMode::kAsyncCopy;
  if (s == "sync-dma") return lmt::KnemMode::kSyncDma;
  if (s == "async-dma") return lmt::KnemMode::kAsyncDma;
  return lmt::KnemMode::kAuto;
}

int iters_for(std::size_t bytes) {
  if (bytes <= 16 * KiB) return 200;
  if (bytes <= 256 * KiB) return 50;
  return 15;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  opt.declare("op", "pingpong|exchange|alltoall (default pingpong)");
  opt.declare("ranks", "ranks (default 2; alltoall default 8)");
  opt.declare("lmt", "default|vmsplice|writev|knem|cma|auto");
  opt.declare("knem-mode", "sync-copy|async-copy|sync-dma|async-dma|auto");
  opt.declare("min", "smallest message (default 1KiB)");
  opt.declare("max", "largest message (default 4MiB)");
  opt.declare("procs", "fork processes instead of threads");
  opt.declare("telemetry", "write per-rank engine counters to this JSON file");
  opt.finalize();

  std::string op = opt.get("op", "pingpong");
  core::Config cfg;
  cfg.nranks =
      static_cast<int>(opt.get_int("ranks", op == "alltoall" ? 8 : 2));
  cfg.lmt = parse_kind(opt.get("lmt", "auto"));
  cfg.knem_mode = parse_mode(opt.get("knem-mode", "auto"));
  cfg.mode = opt.get_flag("procs") ? core::LaunchMode::kProcesses
                                   : core::LaunchMode::kThreads;
  cfg.shared_pool_bytes = 512 * MiB;
  std::size_t min_b = opt.get_size("min", 1 * KiB);
  std::size_t max_b = opt.get_size("max", 4 * MiB);

  int cores = shm::available_cores();
  std::printf("# imb: op=%s ranks=%d lmt=%s knem=%s mode=%s (host cores: %d%s)\n",
              op.c_str(), cfg.nranks, to_string(cfg.lmt),
              to_string(cfg.knem_mode),
              cfg.mode == core::LaunchMode::kProcesses ? "procs" : "threads",
              cores,
              cores < cfg.nranks ? " — OVERSUBSCRIBED, numbers unreliable"
                                 : "");
  std::printf("%12s %12s %12s\n", "bytes", "usec",
              op == "alltoall" ? "agg MiB/s" : "MiB/s");

  // Telemetry aggregation only works for thread mode (forked children
  // cannot write back into the parent's vector).
  std::vector<tune::Counters> telemetry;
  if (opt.has("telemetry")) {
    if (cfg.mode == core::LaunchMode::kThreads)
      telemetry.resize(static_cast<std::size_t>(cfg.nranks));
    else
      std::fprintf(stderr,
                   "imb: --telemetry is ignored with --procs (forked ranks "
                   "cannot report counters back); no file will be written\n");
  }

  bool ok = core::run(cfg, [&](core::Comm& comm) {
    int n = comm.size();
    for (std::size_t sz = min_b; sz <= max_b; sz *= 2) {
      int iters = iters_for(sz);
      double usec = 0, mibs = 0;

      if (op == "alltoall") {
        std::size_t matrix = sz * static_cast<std::size_t>(n);
        std::byte* send = comm.shared_alloc(matrix);
        std::byte* recv = comm.shared_alloc(matrix);
        pattern_fill({send, matrix}, sz);
        comm.alltoall(send, sz, recv);
        comm.hard_barrier();
        Timer t;
        for (int i = 0; i < iters; ++i) comm.alltoall(send, sz, recv);
        double s = t.elapsed_s();
        comm.hard_barrier();
        usec = s * 1e6 / iters;
        double bytes = static_cast<double>(n) * (n - 1) * static_cast<double>(sz);
        mibs = bytes * iters / (1024.0 * 1024.0) / s;
      } else if (op == "exchange") {
        // Every rank exchanges with both neighbours each iteration.
        std::byte* out = comm.shared_alloc(sz);
        std::byte* in = comm.shared_alloc(sz);
        int right = (comm.rank() + 1) % n, left = (comm.rank() - 1 + n) % n;
        comm.hard_barrier();
        Timer t;
        for (int i = 0; i < iters; ++i) {
          core::Request s1 = comm.isend(out, sz, right, 1);
          core::Request r1 = comm.irecv(in, sz, left, 1);
          comm.wait(s1);
          comm.wait(r1);
          core::Request s2 = comm.isend(out, sz, left, 2);
          core::Request r2 = comm.irecv(in, sz, right, 2);
          comm.wait(s2);
          comm.wait(r2);
        }
        double s = t.elapsed_s();
        comm.hard_barrier();
        usec = s * 1e6 / iters;
        mibs = 2.0 * static_cast<double>(sz) * iters / (1024.0 * 1024.0) / s;
      } else {  // pingpong
        std::byte* buf = comm.shared_alloc(sz);
        pattern_fill({buf, sz}, sz);
        int peer = 1 - comm.rank();
        if (comm.rank() <= 1) {
          // Warm-up + timed loop on ranks 0/1; others idle at the barrier.
          for (int i = 0; i < 2; ++i) {
            if (comm.rank() == 0) {
              comm.send(buf, sz, peer, 1);
              comm.recv(buf, sz, peer, 2);
            } else {
              comm.recv(buf, sz, peer, 1);
              comm.send(buf, sz, peer, 2);
            }
          }
        }
        comm.hard_barrier();
        Timer t;
        if (comm.rank() <= 1) {
          for (int i = 0; i < iters; ++i) {
            if (comm.rank() == 0) {
              comm.send(buf, sz, peer, 1);
              comm.recv(buf, sz, peer, 2);
            } else {
              comm.recv(buf, sz, peer, 1);
              comm.send(buf, sz, peer, 2);
            }
          }
        }
        double s = t.elapsed_s();
        comm.hard_barrier();
        usec = s * 1e6 / (2.0 * iters);
        mibs = static_cast<double>(sz) / (1024.0 * 1024.0) / (usec * 1e-6);
      }

      if (comm.rank() == 0)
        std::printf("%12zu %12.2f %12.1f\n", sz, usec, mibs);
    }
    if (!telemetry.empty()) {
      comm.hard_barrier();
      telemetry[static_cast<std::size_t>(comm.rank())] +=
          comm.engine().counters();
    }
  });
  if (!ok) {
    std::fprintf(stderr, "imb: world failed (a rank exited nonzero)\n");
    return 1;
  }
  if (!telemetry.empty() &&
      !tune::write_telemetry(opt.get("telemetry", ""), "imb-" + op,
                             telemetry.data(), cfg.nranks))
    return 1;
  return 0;
}
