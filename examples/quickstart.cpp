// Quickstart: the smallest complete nemolmt program.
//
//   build/examples/quickstart [--ranks=4] [--lmt=knem|cma|default|vmsplice|auto]
//
// Launches N ranks (threads over one shared-memory arena), sends a large
// message rank 0 -> 1 through the selected Large-Message-Transfer backend,
// then runs a collective. Prints which transfer mechanism was used.
#include <nemo/nemo.hpp>

#include <cstdio>
#include <vector>

#include "common/checksum.hpp"  // pattern_fill/check — demo helper, not API.

using namespace nemo;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  opt.declare("ranks", "number of ranks (default 4)");
  opt.declare("lmt", "default|vmsplice|knem|cma|auto (default auto)");
  opt.finalize();

  core::Config cfg;
  cfg.nranks = static_cast<int>(opt.get_int("ranks", 4));
  std::string kind = opt.get("lmt", "auto");
  cfg.lmt = kind == "default"    ? lmt::LmtKind::kDefaultShm
            : kind == "vmsplice" ? lmt::LmtKind::kVmsplice
            : kind == "knem"     ? lmt::LmtKind::kKnem
            : kind == "cma"      ? lmt::LmtKind::kCma
                                 : lmt::LmtKind::kAuto;
  cfg.knem_mode = lmt::KnemMode::kAuto;  // DMA offload past DMAmin.

  core::run(cfg, [&](core::Comm& comm) {
    // 1. Point-to-point: a 1 MiB message takes the rendezvous/LMT path.
    constexpr std::size_t kN = 1 * MiB;
    std::vector<std::byte> buf(kN);
    if (comm.rank() == 0) {
      pattern_fill(buf, 42);
      comm.send(buf.data(), kN, 1 % comm.size(), /*tag=*/0);
      std::printf("rank 0: sent %s via LMT '%s'\n", format_size(kN).c_str(),
                  to_string(comm.engine().resolve_kind(kN, 1 % comm.size(),
                                                       false)));
    } else if (comm.rank() == 1) {
      core::RecvInfo info;
      comm.recv(buf.data(), kN, 0, 0, &info);
      bool ok = pattern_check(buf, 42) == kPatternOk;
      std::printf("rank 1: received %zu bytes from %d — %s\n", info.bytes,
                  info.src, ok ? "payload verified" : "CORRUPT");
    }

    // 2. A collective: global sum of each rank's id.
    std::int64_t mine = comm.rank(), sum = 0;
    comm.allreduce_i64(&mine, &sum, 1, core::Comm::ReduceOp::kSum);
    if (comm.rank() == 0)
      std::printf("allreduce: sum of ranks = %lld (expected %d)\n",
                  static_cast<long long>(sum),
                  comm.size() * (comm.size() - 1) / 2);
  });
  return 0;
}
