// Domain-specific example: distributed bucket sort — the workload class
// (large alltoallv) where the paper's single-copy LMTs shine (IS, Table 1).
//
// Generates random 64-bit keys, exchanges them by destination bucket with
// one large alltoallv, sorts locally, and verifies global order. Prints the
// exchange throughput per LMT so the user can reproduce the headline effect:
//   build/examples/sort_alltoall --keys=2000000 --lmt=default
//   build/examples/sort_alltoall --keys=2000000 --lmt=knem
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "common/checksum.hpp"
#include "common/options.hpp"
#include "common/timing.hpp"
#include "core/comm.hpp"

using namespace nemo;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  opt.declare("ranks", "ranks (default 4)");
  opt.declare("keys", "total keys (default 1M)");
  opt.declare("lmt", "default|vmsplice|knem|auto (default auto)");
  opt.finalize();

  core::Config cfg;
  cfg.nranks = static_cast<int>(opt.get_int("ranks", 4));
  std::string kind = opt.get("lmt", "auto");
  cfg.lmt = kind == "default"    ? lmt::LmtKind::kDefaultShm
            : kind == "vmsplice" ? lmt::LmtKind::kVmsplice
            : kind == "knem"     ? lmt::LmtKind::kKnem
                                 : lmt::LmtKind::kAuto;
  cfg.knem_mode = lmt::KnemMode::kAuto;
  cfg.shared_pool_bytes = 128 * MiB;

  const auto total_keys =
      static_cast<std::size_t>(opt.get_int("keys", 1 << 20));

  core::run(cfg, [&](core::Comm& comm) {
    const int n = comm.size();
    const std::size_t local_n = total_keys / static_cast<std::size_t>(n);
    SplitMix64 rng(1234u + static_cast<unsigned>(comm.rank()));
    std::vector<std::uint64_t> keys(local_n);
    for (auto& k : keys) k = rng.next();

    // Bucket by high bits so rank r owns an equal slice of the key space.
    auto owner = [&](std::uint64_t k) {
      return static_cast<int>(k / (~0ull / static_cast<unsigned>(n) + 1));
    };
    std::vector<std::size_t> scounts(static_cast<std::size_t>(n), 0);
    for (auto k : keys) scounts[static_cast<std::size_t>(owner(k))]++;
    std::vector<std::size_t> sdispls(static_cast<std::size_t>(n), 0);
    std::partial_sum(scounts.begin(), scounts.end() - 1, sdispls.begin() + 1);
    std::vector<std::uint64_t> sendbuf(local_n);
    {
      auto cursor = sdispls;
      for (auto k : keys)
        sendbuf[cursor[static_cast<std::size_t>(owner(k))]++] = k;
    }

    // Exchange bucket sizes, then keys.
    std::vector<std::size_t> rcounts(static_cast<std::size_t>(n), 0);
    comm.alltoall(scounts.data(), sizeof(std::size_t), rcounts.data());
    std::vector<std::size_t> rdispls(static_cast<std::size_t>(n), 0);
    std::partial_sum(rcounts.begin(), rcounts.end() - 1, rdispls.begin() + 1);
    std::size_t recv_n = rdispls.back() + rcounts.back();
    std::vector<std::uint64_t> recvbuf(recv_n);

    auto to_bytes = [](std::vector<std::size_t> v) {
      for (auto& x : v) x *= sizeof(std::uint64_t);
      return v;
    };
    auto scb = to_bytes(scounts), sdb = to_bytes(sdispls),
         rcb = to_bytes(rcounts), rdb = to_bytes(rdispls);

    comm.hard_barrier();
    Timer t;
    comm.alltoallv(sendbuf.data(), scb.data(), sdb.data(), recvbuf.data(),
                   rcb.data(), rdb.data());
    double xfer_s = t.elapsed_s();

    std::sort(recvbuf.begin(), recvbuf.end());

    // Verify global order across rank boundaries and count conservation.
    std::uint64_t my_max = recvbuf.empty() ? 0 : recvbuf.back();
    std::vector<std::uint64_t> maxs(static_cast<std::size_t>(n));
    comm.allgather(&my_max, sizeof my_max, maxs.data());
    bool ok = std::is_sorted(recvbuf.begin(), recvbuf.end());
    for (int r = 0; r + 1 < n; ++r)
      if (!recvbuf.empty() && maxs[static_cast<std::size_t>(r)] >
                                  maxs[static_cast<std::size_t>(r + 1)])
        ok = ok && false;
    std::int64_t cnt = static_cast<std::int64_t>(recvbuf.size()), tot = 0;
    comm.allreduce_i64(&cnt, &tot, 1, core::Comm::ReduceOp::kSum);
    ok = ok && tot == static_cast<std::int64_t>(local_n *
                                                static_cast<std::size_t>(n));

    double bytes = static_cast<double>(local_n) * sizeof(std::uint64_t);
    if (comm.rank() == 0)
      std::printf(
          "sort_alltoall[%s]: %zu keys/rank, exchange %.2f MiB/s/rank, "
          "globally sorted: %s\n",
          kind.c_str(), local_n,
          bytes / (1024.0 * 1024.0) / (xfer_s > 0 ? xfer_s : 1e-9),
          ok ? "yes" : "NO");
    if (!ok) std::abort();
  });
  return 0;
}
