// Domain-specific example: 2D stencil halo exchange — the communication
// pattern of structured-grid solvers (the paper's bt/sp/lu/mg family).
//
// Each rank owns a slab of a global grid and exchanges one-row halos with
// its neighbours every iteration, using nonblocking sends/recvs so both
// directions overlap. Demonstrates noncontiguous column halos via the
// vector datatype (single-copy capable backends move them without packing).
#include <nemo/nemo.hpp>

#include <cmath>
#include <cstdio>
#include <vector>

using namespace nemo;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  opt.declare("ranks", "ranks (default 4)");
  opt.declare("nx", "grid width (default 512)");
  opt.declare("ny", "rows per rank (default 256)");
  opt.declare("iters", "iterations (default 50)");
  opt.finalize();

  core::Config cfg;
  cfg.nranks = static_cast<int>(opt.get_int("ranks", 4));
  cfg.lmt = lmt::LmtKind::kAuto;

  const std::size_t nx = static_cast<std::size_t>(opt.get_int("nx", 512));
  const std::size_t ny = static_cast<std::size_t>(opt.get_int("ny", 256));
  const int iters = static_cast<int>(opt.get_int("iters", 50));

  core::run(cfg, [&](core::Comm& comm) {
    int up = comm.rank() + 1 < comm.size() ? comm.rank() + 1 : -1;
    int down = comm.rank() > 0 ? comm.rank() - 1 : -1;

    // Grid with one ghost row above and below.
    std::vector<double> u((ny + 2) * nx, 0.0);
    for (std::size_t i = 0; i < nx; ++i)
      u[(1 + (comm.rank() % 2)) * nx + i] = 1.0;  // Some initial heat.

    const std::size_t row_bytes = nx * sizeof(double);
    for (int it = 0; it < iters; ++it) {
      std::vector<core::Request> reqs;
      if (up >= 0) {
        reqs.push_back(comm.isend(&u[ny * nx], row_bytes, up, 10));
        reqs.push_back(comm.irecv(&u[(ny + 1) * nx], row_bytes, up, 11));
      }
      if (down >= 0) {
        reqs.push_back(comm.isend(&u[1 * nx], row_bytes, down, 11));
        reqs.push_back(comm.irecv(&u[0 * nx], row_bytes, down, 10));
      }
      comm.waitall(reqs);

      // Jacobi sweep.
      std::vector<double> next = u;
      for (std::size_t y = 1; y <= ny; ++y)
        for (std::size_t x = 1; x + 1 < nx; ++x)
          next[y * nx + x] =
              0.25 * (u[(y - 1) * nx + x] + u[(y + 1) * nx + x] +
                      u[y * nx + x - 1] + u[y * nx + x + 1]);
      u.swap(next);
    }

    // Residual-ish check: total heat is conserved-ish and finite.
    double local = 0;
    for (std::size_t y = 1; y <= ny; ++y)
      for (std::size_t x = 0; x < nx; ++x) local += u[y * nx + x];
    double total = 0;
    comm.allreduce_f64(&local, &total, 1, core::Comm::ReduceOp::kSum);
    if (comm.rank() == 0)
      std::printf("halo_exchange: %d iters on %zux%zu/rank, total heat %.6f "
                  "(finite: %s)\n",
                  iters, nx, ny, total, std::isfinite(total) ? "yes" : "NO");

    // Bonus: exchange a *column* (stride nx doubles) with the vector
    // datatype — a noncontiguous single-copy transfer.
    if (comm.size() >= 2 && comm.rank() < 2) {
      core::Datatype col = core::Datatype::vector(ny, sizeof(double),
                                                  nx * sizeof(double));
      if (comm.rank() == 0)
        comm.send_typed(reinterpret_cast<std::byte*>(&u[nx]), col, 1, 1, 20);
      else
        comm.recv_typed(reinterpret_cast<std::byte*>(&u[nx + 4]), col, 1, 0,
                        20);
      if (comm.rank() == 1)
        std::printf("halo_exchange: strided column transferred without "
                    "packing\n");
    }
  });
  return 0;
}
