// nemo-tune: measure this machine's LMT crossovers and persist them.
//
// Grown from lmt_tuner (which only *prints* the formula policy): this tool
// *measures* — per placement class it locates the NT-copy crossover, the
// eager/rendezvous activation point, and (with --bench) the fastest
// rendezvous backend via real pingpongs; a telemetry feedback pass then
// runs short alltoall probes at 4/8 ranks and reacts to the congestion
// counters (drain budget, ring depth, fastbox pressure, polling order) —
// then writes the TuningTable to the topology-fingerprinted cache file that
// every nemo entry point loads at startup. Calibration costs once per
// machine:
//
//   build/nemo-tune                 # calibrate + write cache (or reuse it)
//   build/nemo-tune --force         # recalibrate even with a valid cache
//   build/nemo-tune --show          # print the effective table, no writes
//   build/nemo-tune --cache=FILE    # alternate cache location
#include <cstdio>

#include "../bench/bench_common.hpp"
#include "coll/coll.hpp"
#include "common/options.hpp"
#include "shm/numa.hpp"
#include "tune/calibrate.hpp"
#include "tune/tuning.hpp"

using namespace nemo;

namespace {

void print_table(const tune::TuningTable& t) {
  std::printf("tuning table [%s] fingerprint %s\n", t.source.c_str(),
              t.fingerprint.c_str());
  static const PairPlacement kAll[] = {PairPlacement::kSharedCache,
                                       PairPlacement::kSameSocketNoShare,
                                       PairPlacement::kDifferentSockets};
  for (PairPlacement p : kAll) {
    const tune::PlacementTuning& pt = t.for_placement(p);
    char ring[32];
    if (pt.ring_bufs == 0 && pt.ring_buf_bytes == 0)
      std::snprintf(ring, sizeof ring, "inherit");
    else
      std::snprintf(ring, sizeof ring, "%ux%s",
                    pt.ring_bufs != 0 ? pt.ring_bufs : 0,
                    pt.ring_buf_bytes != 0
                        ? format_size(pt.ring_buf_bytes).c_str()
                        : "cfg");
    std::printf(
        "  %-22s nt_min=%-8s push_nt=%d activation=%-8s backend=%-8s "
        "ring=%s\n",
        to_string(p),
        pt.nt_min == SIZE_MAX ? "never" : format_size(pt.nt_min).c_str(),
        pt.push_nt ? 1 : 0, format_size(pt.lmt_activation).c_str(),
        tune::to_string(pt.backend), ring);
  }
  std::printf("  dma_min=%s collective_activation=%s\n",
              t.dma_min == 0 ? "formula" : format_size(t.dma_min).c_str(),
              format_size(t.collective_activation).c_str());
  std::printf("  fastbox: %u slots x %s (cutoff %s)   drain_budget=%u   "
              "poll_hot=%d\n",
              t.fastbox_slots, format_size(t.fastbox_slot_bytes).c_str(),
              format_size(t.fastbox_max).c_str(), t.drain_budget,
              t.poll_hot ? 1 : 0);
  std::printf("  coll: activation=%-8s slot=%s   (NEMO_COLL=%s)\n",
              format_size(t.coll_activation).c_str(),
              format_size(t.coll_slot_bytes).c_str(),
              coll::to_string(coll::mode_from_env()));
  if (t.barrier_tree_ranks == UINT32_MAX)
    std::printf("  barrier: flat always (tree off)\n");
  else
    std::printf("  barrier: %u-ary tree from %u ranks, flat below\n",
                t.barrier_tree_k, t.barrier_tree_ranks);
  std::printf("  simd: kernel=%s (running %s)   pack_nt_min=%s\n",
              simd::choice_name(t.simd_kernel),
              simd::kernel_name(simd::resolve(t.simd_kernel)),
              t.pack_nt_min == 0          ? "formula"
              : t.pack_nt_min == SIZE_MAX ? "never"
                                          : format_size(t.pack_nt_min).c_str());
}

/// Narrate the NUMA placement the runtime would apply per placement class:
/// the decision for a representative core pair of each class, plus whether
/// this host can actually bind (mbind + >1 node + NEMO_NUMA).
void print_numa(const Topology& topo) {
  shm::NumaPlacement mode = shm::numa_placement_from_env();
  std::printf("numa: mode=%s  topo-nodes=%d  host-nodes=%d  bind=%s\n",
              shm::to_string(mode), topo.num_numa_nodes(),
              shm::host_numa_nodes(),
              shm::numa_bind_available() ? "available"
                                         : "unavailable (first-touch)");
  static const PairPlacement kAll[] = {PairPlacement::kSharedCache,
                                       PairPlacement::kSameSocketNoShare,
                                       PairPlacement::kDifferentSockets};
  for (PairPlacement p : kAll) {
    auto pair = topo.find_pair(p);
    if (!pair) continue;
    shm::RegionPlacement r = shm::choose_region_placement(
        mode, topo, pair->first, pair->second);
    const char* what = r.interleave ? "interleaved across nodes"
                       : r.node >= 0 ? "receiver-side"
                                     : "first-touch";
    if (mode == shm::NumaPlacement::kSender && r.node >= 0)
      what = "sender-side";
    if (r.node >= 0)
      std::printf("  %-22s ring buffers -> %s (node %d)\n", to_string(p),
                  what, r.node);
    else
      std::printf("  %-22s ring buffers -> %s\n", to_string(p), what);
  }
}

/// Measure a real 512 KiB pingpong on a pinned core pair per candidate
/// backend and record the winner in the placement row.
void bench_backends(tune::TuningTable& t, const Topology& topo, int iters) {
  static const PairPlacement kAll[] = {PairPlacement::kSharedCache,
                                       PairPlacement::kSameSocketNoShare,
                                       PairPlacement::kDifferentSockets};
  const std::size_t kProbe = 512 * KiB;
  for (PairPlacement p : kAll) {
    auto pair = topo.find_pair(p);
    if (!pair) continue;
    struct Candidate {
      tune::Backend which;
      lmt::LmtKind kind;
    } cands[] = {
        {tune::Backend::kDefault, lmt::LmtKind::kDefaultShm},
        {tune::Backend::kVmsplice, lmt::LmtKind::kVmsplice},
        {tune::Backend::kKnem, lmt::LmtKind::kKnem},
    };
    double best = 0;
    tune::Backend best_b = t.for_placement(p).backend;
    for (const Candidate& c : cands) {
      if (c.kind == lmt::LmtKind::kVmsplice &&
          !shm::Pipe::vmsplice_available())
        continue;
      core::Config cfg;
      cfg.lmt = c.kind;
      cfg.topo = topo;
      cfg.tuning = t;  // Measure with the thresholds just calibrated.
      cfg.core_binding = {pair->first, pair->second};
      double mibs = bench::real_pingpong_mibs(cfg, kProbe, iters);
      std::printf("  [%s] %-10s %8.0f MiB/s\n", to_string(p),
                  lmt::to_string(c.kind), mibs);
      if (mibs > best) {
        best = mibs;
        best_b = c.which;
      }
    }
    t.for_placement(p).backend = best_b;
    std::printf("  [%s] -> %s\n", to_string(p), tune::to_string(best_b));
  }
}

/// `--knobs`: dump every registered NEMO_* environment knob — the one
/// authoritative list (the runtime reads knobs only through this registry,
/// so a knob missing here cannot exist).
void print_knobs() {
  std::printf("%-28s %-6s %-10s %-9s %s\n", "knob", "type", "default",
              "owner", "meaning");
  for (const KnobInfo& k : nemo::Config::knobs()) {
    const char* type = k.type == KnobType::kFlag   ? "flag"
                       : k.type == KnobType::kInt  ? "int"
                       : k.type == KnobType::kSize ? "size"
                                                   : "string";
    std::printf("%-28s %-6s %-10s %-9s %s\n", k.name, type, k.def,
                k.read_by, k.meaning);
    if (auto v = nemo::Config::str(k.name))
      std::printf("%-28s %-6s   set: %s\n", "", "", v->c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  opt.declare("topo", "host|e5345|x5460|nehalem (default host)");
  opt.declare("cache", "cache file (default: fingerprinted path)");
  opt.declare("force", "recalibrate even when the cache is valid");
  opt.declare("show", "print the effective table and exit (no calibration)");
  opt.declare("bench", "also pingpong-race the backends per placement");
  opt.declare("iters", "pingpong iterations for --bench (default 10)");
  opt.declare("quick", "fewer repeats per probe (noisier, faster)");
  opt.declare("no-feedback", "skip the telemetry feedback pass");
  opt.declare("knobs", "list every NEMO_* environment knob and exit");
  opt.finalize();

  if (opt.get_flag("knobs")) {
    print_knobs();
    return 0;
  }

  std::string tname = opt.get("topo", "host");
  Topology topo = tname == "e5345"     ? xeon_e5345()
                  : tname == "x5460"   ? xeon_x5460()
                  : tname == "nehalem" ? nehalem()
                                       : detect_host();
  std::string fp = tune::topology_fingerprint(topo);
  std::string path = opt.get("cache", tune::default_cache_path(fp));

  if (opt.get_flag("show")) {
    // Same resolution as the runtime (cache > formula, env on top), but
    // honouring --cache when given.
    std::optional<tune::TuningTable> cached;
    if (nemo::Config::flag("NEMO_TUNE", true)) cached = tune::load_cache(path, fp);
    print_table(tune::with_env_overrides(
        cached ? *cached : tune::formula_defaults(topo)));
    print_numa(topo);
    return 0;
  }

  if (!opt.get_flag("force")) {
    if (auto cached = tune::load_cache(path, fp)) {
      std::printf("cache valid: %s (no recalibration; --force to redo)\n",
                  path.c_str());
      print_table(*cached);
      print_numa(topo);
      return 0;
    }
  }

  std::printf("calibrating %s (%d cores)...\n", topo.name.c_str(),
              topo.num_cores);
  // Read before calibration: the probes pin (and then restore) affinity.
  int host_cores = shm::available_cores();
  tune::CalibrationOptions copt;
  copt.verbose = true;
  if (opt.get_flag("quick")) copt.repeats = 1;
  copt.feedback = !opt.get_flag("no-feedback");
  tune::TuningTable t = tune::calibrate(topo, copt);

  if (opt.get_flag("bench")) {
    if (host_cores < 2)
      std::printf("--bench skipped: host exposes <2 cores, pingpong numbers "
                  "would measure time-slicing\n");
    else
      bench_backends(t, topo, static_cast<int>(opt.get_int("iters", 10)));
  }

  if (!tune::store_cache(path, t)) return 1;
  std::printf("wrote %s\n", path.c_str());
  print_table(t);
  print_numa(topo);
  return 0;
}
