// nemo-trace: record, export and inspect nemo trace dumps.
//
//   nemo-trace record [--mode=full|rings] [--out=trace.json] [--raw=FILE]
//       -- ./build/coll_sweep --smoke
//     Runs the wrapped command with NEMO_TRACE/NEMO_TRACE_OUT set, then
//     converts the ring dump to Chrome/Perfetto trace_event JSON (open the
//     --out file at ui.perfetto.dev or chrome://tracing).
//
//   nemo-trace export --in=raw.json --out=trace.json
//     Converts an existing nemo-trace/1 ring dump.
//
//   nemo-trace stat --in=raw.json
//     Prints the latency-histogram table, per-rank event counts and drops.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/perfetto.hpp"
#include "trace/trace.hpp"
#include "tune/json.hpp"

using namespace nemo;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: nemo-trace record [--mode=full|rings] [--out=FILE] "
               "[--raw=FILE] -- CMD [ARGS...]\n"
               "       nemo-trace export --in=RAW --out=FILE\n"
               "       nemo-trace stat --in=RAW\n");
  return 2;
}

/// Minimal --key=value scanner for the flags before `--` (the wrapped
/// command after `--` must pass through untouched, which rules out the
/// strict Options parser).
std::map<std::string, std::string> parse_flags(
    const std::vector<std::string>& args) {
  std::map<std::string, std::string> flags;
  for (const std::string& a : args) {
    if (a.rfind("--", 0) != 0)
      throw std::invalid_argument("unexpected argument: " + a);
    auto eq = a.find('=');
    std::string key = eq == std::string::npos ? a.substr(2)
                                              : a.substr(2, eq - 2);
    std::string val = eq == std::string::npos ? std::string("1")
                                              : a.substr(eq + 1);
    flags.insert_or_assign(std::move(key), std::move(val));
  }
  return flags;
}

std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'')
      out += "'\\''";
    else
      out += c;
  }
  return out + "'";
}

int cmd_record(const std::map<std::string, std::string>& flags,
               const std::vector<std::string>& child) {
  if (child.empty()) {
    std::fprintf(stderr, "nemo-trace record: no command after --\n");
    return 2;
  }
  std::string mode = flags.count("mode") ? flags.at("mode") : "full";
  if (trace::mode_from_string(mode) == trace::Mode::kOff) {
    std::fprintf(stderr, "nemo-trace record: --mode must be rings or full\n");
    return 2;
  }
  std::string out = flags.count("out") ? flags.at("out") : "trace.json";
  std::string raw = flags.count("raw") ? flags.at("raw") : out + ".raw.json";

  setenv("NEMO_TRACE", mode.c_str(), 1);
  setenv("NEMO_TRACE_OUT", raw.c_str(), 1);

  std::string cmdline;
  for (const std::string& a : child) {
    if (!cmdline.empty()) cmdline += ' ';
    cmdline += shell_quote(a);
  }
  std::printf("nemo-trace: recording [%s] %s\n", mode.c_str(),
              cmdline.c_str());
  int rc = std::system(cmdline.c_str());
  if (rc != 0) {
    std::fprintf(stderr, "nemo-trace: command exited with status %d\n", rc);
    return rc == -1 ? 1 : rc;
  }

  std::string err;
  if (!trace::export_perfetto(raw, out, &err)) {
    std::fprintf(stderr, "nemo-trace: export failed: %s\n", err.c_str());
    return 1;
  }
  std::printf("nemo-trace: wrote %s (raw dump: %s)\n", out.c_str(),
              raw.c_str());
  return 0;
}

int cmd_export(const std::map<std::string, std::string>& flags) {
  if (!flags.count("in") || !flags.count("out")) return usage();
  std::string err;
  if (!trace::export_perfetto(flags.at("in"), flags.at("out"), &err)) {
    std::fprintf(stderr, "nemo-trace: export failed: %s\n", err.c_str());
    return 1;
  }
  std::printf("nemo-trace: wrote %s\n", flags.at("out").c_str());
  return 0;
}

int cmd_stat(const std::map<std::string, std::string>& flags) {
  if (!flags.count("in")) return usage();
  std::string err;
  auto dump = trace::load_dump(flags.at("in"), &err);
  if (!dump) {
    std::fprintf(stderr, "nemo-trace: %s\n", err.c_str());
    return 1;
  }

  std::printf("trace dump %s (mode %s)\n", flags.at("in").c_str(),
              (*dump)["mode"].as_string().c_str());
  std::uint64_t total_events = 0, total_drops = 0;
  for (const tune::Json& r : (*dump)["ranks"].items()) {
    std::uint64_t n = r["events"].items().size();
    std::uint64_t d = r["dropped"].as_uint();
    total_events += n;
    total_drops += d;
    std::printf("  rank %3d: %8" PRIu64 " events, %" PRIu64 " dropped\n",
                static_cast<int>(r["rank"].as_double()), n, d);
  }
  std::printf("  total:    %8" PRIu64 " events, %" PRIu64 " dropped\n\n",
              total_events, total_drops);

  const tune::Json& hists = (*dump)["registry"]["histograms"];
  std::printf("%-32s %10s %10s %10s %10s %10s\n", "histogram", "count",
              "p50", "p99", "p999", "max");
  for (const auto& [name, h] : hists.fields())
    std::printf("%-32s %10" PRIu64 " %10.0f %10.0f %10.0f %10" PRIu64 "\n",
                name.c_str(), h["count"].as_uint(), h["p50"].as_double(),
                h["p99"].as_double(), h["p999"].as_double(),
                h["max"].as_uint());
  const tune::Json& gauges = (*dump)["registry"]["gauges"];
  for (const auto& [name, v] : gauges.fields())
    std::printf("%-32s gauge %.3f\n", name.c_str(), v.as_double());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string sub = argv[1];

  std::vector<std::string> flags_raw, child;
  bool after_dashes = false;
  for (int i = 2; i < argc; ++i) {
    if (!after_dashes && std::strcmp(argv[i], "--") == 0) {
      after_dashes = true;
      continue;
    }
    (after_dashes ? child : flags_raw).emplace_back(argv[i]);
  }

  try {
    auto flags = parse_flags(flags_raw);
    if (sub == "record") return cmd_record(flags, child);
    if (sub == "export") return cmd_export(flags);
    if (sub == "stat") return cmd_stat(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nemo-trace: %s\n", e.what());
    return 2;
  }
  return usage();
}
