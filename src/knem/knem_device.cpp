#include "knem/knem_device.hpp"

#include <unistd.h>

#include <cstring>
#include <thread>

namespace nemo::knem {

using shm::aref;
using shm::kNil;

const char* to_string(KnemResult r) {
  switch (r) {
    case KnemResult::kOk: return "ok";
    case KnemResult::kBadCookie: return "bad-cookie";
    case KnemResult::kTruncated: return "truncated";
  }
  return "?";
}

namespace {

constexpr std::size_t kPage = 4096;

std::uint64_t pages_touched(std::uint64_t addr, std::uint64_t len) {
  if (len == 0) return 0;
  std::uint64_t first = addr / kPage;
  std::uint64_t last = (addr + len - 1) / kPage;
  return last - first + 1;
}

void stat_add(std::uint64_t& field, std::uint64_t v) {
  aref(field).fetch_add(v, std::memory_order_relaxed);
}

}  // namespace

std::uint64_t Device::create(shm::Arena& arena, std::uint32_t nslots,
                             std::uint32_t nblocks) {
  NEMO_ASSERT(nslots >= 1);
  std::uint64_t off = arena.alloc(sizeof(DeviceState), kCacheLine);
  auto* st = arena.at_as<DeviceState>(off);
  std::memset(st, 0, sizeof(*st));
  st->nslots = nslots;
  st->nblocks = nblocks;
  st->gen = 1;
  st->slots_off = arena.alloc(sizeof(CookieSlot) * nslots, kCacheLine);
  std::memset(arena.at(st->slots_off), 0, sizeof(CookieSlot) * nslots);
  st->block_free = kNil;
  if (nblocks > 0) {
    st->blocks_off = arena.alloc(sizeof(SegBlock) * nblocks, kCacheLine);
    // Thread the freelist through the blocks.
    for (std::uint32_t i = 0; i < nblocks; ++i) {
      auto* b = arena.at_as<SegBlock>(st->blocks_off + i * sizeof(SegBlock));
      b->nsegs = 0;
      b->next = st->block_free;
      st->block_free = st->blocks_off + i * sizeof(SegBlock);
    }
  }
  return off;
}

Device::Device(shm::Arena& arena, std::uint64_t state_off, int my_rank,
               pid_t my_pid)
    : arena_(&arena),
      st_(arena.at_as<DeviceState>(state_off)),
      rank_(my_rank),
      pid_(my_pid) {}

CookieSlot* Device::slot_at(std::uint32_t i) const {
  return arena_->at_as<CookieSlot>(st_->slots_off + i * sizeof(CookieSlot));
}

SegBlock* Device::block_at(std::uint64_t off) const {
  return arena_->at_as<SegBlock>(off);
}

std::uint64_t Device::pop_block() {
  // Short critical section protected by a shared spinlock; extension blocks
  // are only needed for >kInlineSegs-segment buffers, so contention is rare.
  auto lock = aref(st_->block_lock);
  while (lock.exchange(1, std::memory_order_acquire) != 0) {
  }
  std::uint64_t head = st_->block_free;
  if (head != kNil) st_->block_free = block_at(head)->next;
  lock.store(0, std::memory_order_release);
  return head;
}

void Device::push_block(std::uint64_t off) {
  auto lock = aref(st_->block_lock);
  while (lock.exchange(1, std::memory_order_acquire) != 0) {
  }
  block_at(off)->next = st_->block_free;
  st_->block_free = off;
  lock.store(0, std::memory_order_release);
}

std::uint64_t Device::submit_send(std::span<const ConstSegment> segs) {
  // Claim a free slot.
  CookieSlot* slot = nullptr;
  std::uint32_t idx = 0;
  for (std::uint32_t i = 0; i < st_->nslots; ++i) {
    CookieSlot* s = slot_at(i);
    std::uint64_t expected = 0;
    if (aref(s->state).compare_exchange_strong(expected, 1,
                                               std::memory_order_acq_rel)) {
      slot = s;
      idx = i;
      break;
    }
  }
  NEMO_ASSERT_MSG(slot != nullptr,
                  "KNEM cookie table full: raise nslots or release cookies");

  std::uint64_t gen = aref(st_->gen).fetch_add(1, std::memory_order_relaxed);
  slot->id = (gen << 20) | (idx + 1);
  slot->owner_pid = static_cast<std::int32_t>(pid_);
  slot->owner_rank = static_cast<std::uint32_t>(rank_);
  slot->flags = 0;
  slot->more = kNil;
  slot->owner_arena_base = reinterpret_cast<std::uint64_t>(arena_->base());
  slot->stage_off = kNil;
  aref(slot->stage_state).store(0, std::memory_order_relaxed);

  std::uint64_t total = 0, pinned = 0;
  std::uint32_t n = 0;
  SegBlock* cur_block = nullptr;
  for (const auto& seg : segs) {
    if (seg.len == 0) continue;
    shm::RemoteSegment rs{reinterpret_cast<std::uint64_t>(seg.base), seg.len};
    total += seg.len;
    pinned += pages_touched(rs.addr, rs.len);
    if (n < kInlineSegs) {
      slot->inline_segs[n] = rs;
    } else {
      std::uint32_t in_block = (n - kInlineSegs) % kBlockSegs;
      if (in_block == 0) {
        std::uint64_t boff = pop_block();
        NEMO_ASSERT_MSG(boff != kNil, "KNEM segment-block pool exhausted");
        SegBlock* b = block_at(boff);
        b->next = kNil;
        b->nsegs = 0;
        if (cur_block == nullptr)
          slot->more = boff;
        else
          cur_block->next = boff;
        cur_block = b;
      }
      cur_block->segs[in_block] = rs;
      cur_block->nsegs = in_block + 1;
    }
    ++n;
  }
  slot->nsegs = n;
  slot->total_bytes = total;
  slot->pinned_pages = pinned;

  stat_add(st_->stats.send_cmds, 1);
  stat_add(st_->stats.pages_pinned, pinned);

  // Publish: the id becomes visible to other ranks only after the segment
  // data is written.
  aref(slot->state).store(2, std::memory_order_release);
  return slot->id;
}

const CookieSlot* Device::find(std::uint64_t cookie_id) const {
  if (cookie_id == 0) return nullptr;
  std::uint32_t idx = static_cast<std::uint32_t>(cookie_id & 0xfffff) - 1;
  if (idx >= st_->nslots) return nullptr;
  const CookieSlot* s = slot_at(idx);
  if (aref(const_cast<std::uint64_t&>(s->state))
          .load(std::memory_order_acquire) != 2)
    return nullptr;
  if (s->id != cookie_id) return nullptr;
  return s;
}

void Device::free_chain(CookieSlot* s) {
  std::uint64_t b = s->more;
  while (b != kNil) {
    std::uint64_t next = block_at(b)->next;
    push_block(b);
    b = next;
  }
  s->more = kNil;
}

void Device::release(std::uint64_t cookie_id) {
  const CookieSlot* cs = find(cookie_id);
  if (cs == nullptr) {
    stat_add(st_->stats.cookie_leaks, 1);
    return;
  }
  auto* s = const_cast<CookieSlot*>(cs);
  free_chain(s);
  s->id = 0;
  s->stage_off = kNil;
  aref(s->stage_state).store(0, std::memory_order_relaxed);
  aref(s->state).store(0, std::memory_order_release);
}

std::optional<Device::Resolved> Device::resolve(
    std::uint64_t cookie_id) const {
  const CookieSlot* s = find(cookie_id);
  if (s == nullptr) return std::nullopt;
  Resolved r;
  r.pid = s->owner_pid;
  r.owner_rank = s->owner_rank;
  r.total = s->total_bytes;
  r.segs.reserve(s->nsegs);
  std::uint32_t n = s->nsegs < kInlineSegs ? s->nsegs : kInlineSegs;
  for (std::uint32_t i = 0; i < n; ++i) r.segs.push_back(s->inline_segs[i]);
  std::uint64_t b = s->more;
  while (b != kNil) {
    SegBlock* blk = block_at(b);
    for (std::uint32_t i = 0; i < blk->nsegs; ++i)
      r.segs.push_back(blk->segs[i]);
    b = blk->next;
  }

  // Copy-mode decision: same process -> direct on the raw addresses. Arena-
  // resident segments are direct too, but forked ranks map the arena at
  // per-process bases, so the sender's addresses must be REBASED onto this
  // process's mapping before they are dereferenced (in thread mode, or with
  // an inherited mapping, the rebase is the identity). Anything else is
  // another process's private memory: cross-memory attach.
  bool same_pid = (r.pid == pid_);
  if (!same_pid) {
    std::uint64_t sender_base = s->owner_arena_base;
    std::uint64_t local_base = reinterpret_cast<std::uint64_t>(arena_->base());
    std::uint64_t span = arena_->size();
    bool all_in_arena = true;
    for (const auto& seg : r.segs) {
      if (seg.len == 0) continue;
      if (seg.addr < sender_base || seg.addr + seg.len > sender_base + span) {
        all_in_arena = false;
        break;
      }
    }
    if (all_in_arena) {
      for (auto& seg : r.segs)
        if (seg.len != 0) seg.addr = seg.addr - sender_base + local_base;
    }
    r.mode = all_in_arena ? shm::RemoteMode::kDirect : shm::RemoteMode::kCma;
  } else {
    r.mode = shm::RemoteMode::kDirect;
  }
  return r;
}

KnemResult Device::recv_sync(std::uint64_t cookie_id,
                             std::span<const Segment> local,
                             std::uint32_t flags, shm::DmaEngine* engine) {
  auto r = resolve(cookie_id);
  if (!r) return KnemResult::kBadCookie;
  std::size_t cap = 0;
  for (const auto& seg : local) cap += seg.len;
  if (cap < r->total) return KnemResult::kTruncated;

  stat_add(st_->stats.recv_cmds, 1);
  if ((flags & kFlagDma) != 0 && engine != nullptr) {
    stat_add(st_->stats.dma_recv_cmds, 1);
    // Synchronous I/OAT mode: submit, then poll the status byte before
    // returning to "user space".
    volatile std::uint8_t status =
        static_cast<std::uint8_t>(shm::DmaStatus::kPending);
    SegmentList loc(local.begin(), local.end());
    engine->submit_copy_with_status(shm::RemoteMemPort(r->mode, r->pid),
                                    r->segs, std::move(loc), &status);
    while (status == static_cast<std::uint8_t>(shm::DmaStatus::kPending))
      std::this_thread::yield();
    std::atomic_thread_fence(std::memory_order_acquire);
  } else {
    // CPU copy on the calling (receiver) core.
    shm::RemoteMemPort port(r->mode, r->pid);
    port.read(r->segs, local, /*non_temporal=*/false);
  }
  stat_add(st_->stats.bytes_copied, r->total);
  return KnemResult::kOk;
}

KnemResult Device::recv_async(std::uint64_t cookie_id, SegmentList local,
                              std::uint32_t flags, shm::DmaEngine& engine,
                              volatile std::uint8_t* status) {
  auto r = resolve(cookie_id);
  if (!r) return KnemResult::kBadCookie;
  std::size_t cap = 0;
  for (const auto& seg : local) cap += seg.len;
  if (cap < r->total) return KnemResult::kTruncated;

  stat_add(st_->stats.recv_cmds, 1);
  stat_add(st_->stats.async_recv_cmds, 1);
  if ((flags & kFlagDma) != 0) stat_add(st_->stats.dma_recv_cmds, 1);
  *status = static_cast<std::uint8_t>(shm::DmaStatus::kPending);
  engine.submit_copy_with_status(shm::RemoteMemPort(r->mode, r->pid), r->segs,
                                 std::move(local), status);
  stat_add(st_->stats.bytes_copied, r->total);
  return KnemResult::kOk;
}

std::uint64_t Device::request_stage(std::uint64_t cookie_id) {
  const CookieSlot* cs = find(cookie_id);
  if (cs == nullptr) return kNil;
  auto* s = const_cast<CookieSlot*>(cs);
  std::uint64_t state = aref(s->stage_state).load(std::memory_order_acquire);
  if (state != 0) return s->stage_off;  // Already requested.
  // Publish the buffer offset before flipping the request word so the
  // sender's acquire load sees a valid destination.
  s->stage_off = arena_->alloc(cs->total_bytes > 0 ? cs->total_bytes : 1,
                               kCacheLine);
  aref(s->stage_state).store(1, std::memory_order_release);
  stat_add(st_->stats.cma_stage_fallbacks, 1);
  return s->stage_off;
}

bool Device::stage_ready(std::uint64_t cookie_id) const {
  const CookieSlot* s = find(cookie_id);
  if (s == nullptr) return false;
  return aref(const_cast<std::uint64_t&>(s->stage_state))
             .load(std::memory_order_acquire) == 2;
}

bool Device::try_fulfill_stage(std::uint64_t cookie_id,
                               std::span<const ConstSegment> segs) {
  const CookieSlot* cs = find(cookie_id);
  if (cs == nullptr) return false;
  auto* s = const_cast<CookieSlot*>(cs);
  std::uint64_t state = aref(s->stage_state).load(std::memory_order_acquire);
  if (state == 2) return true;
  if (state != 1) return false;
  std::byte* dst = arena_->at(s->stage_off);
  std::uint64_t moved = 0;
  for (const auto& seg : segs) {
    if (seg.len == 0) continue;
    std::memcpy(dst + moved, seg.base, seg.len);
    moved += seg.len;
  }
  stat_add(st_->stats.cma_stage_bytes, moved);
  aref(s->stage_state).store(2, std::memory_order_release);
  return true;
}

void Device::note_cma_read(std::uint64_t bytes) {
  stat_add(st_->stats.cma_read_cmds, 1);
  stat_add(st_->stats.cma_bytes, bytes);
}

DeviceStats Device::stats() const {
  DeviceStats out;
  out.send_cmds = aref(st_->stats.send_cmds).load(std::memory_order_relaxed);
  out.recv_cmds = aref(st_->stats.recv_cmds).load(std::memory_order_relaxed);
  out.dma_recv_cmds =
      aref(st_->stats.dma_recv_cmds).load(std::memory_order_relaxed);
  out.async_recv_cmds =
      aref(st_->stats.async_recv_cmds).load(std::memory_order_relaxed);
  out.bytes_copied =
      aref(st_->stats.bytes_copied).load(std::memory_order_relaxed);
  out.pages_pinned =
      aref(st_->stats.pages_pinned).load(std::memory_order_relaxed);
  out.cookie_leaks =
      aref(st_->stats.cookie_leaks).load(std::memory_order_relaxed);
  out.cma_read_cmds =
      aref(st_->stats.cma_read_cmds).load(std::memory_order_relaxed);
  out.cma_bytes = aref(st_->stats.cma_bytes).load(std::memory_order_relaxed);
  out.cma_stage_fallbacks =
      aref(st_->stats.cma_stage_fallbacks).load(std::memory_order_relaxed);
  out.cma_stage_bytes =
      aref(st_->stats.cma_stage_bytes).load(std::memory_order_relaxed);
  return out;
}

std::uint32_t Device::slots_in_use() const {
  std::uint32_t n = 0;
  for (std::uint32_t i = 0; i < st_->nslots; ++i)
    if (aref(slot_at(i)->state).load(std::memory_order_acquire) != 0) ++n;
  return n;
}

}  // namespace nemo::knem
