// KNEM pseudo-device: a user-space reimplementation of the KNEM kernel
// module's command interface (paper §3.2-3.4, Figure 1).
//
//   send command:    declare a (possibly vectorial) send buffer; the device
//                    records its virtual segments, accounts the page pinning,
//                    and returns a COOKIE id. The cookie travels to the
//                    receiver through the normal rendezvous handshake.
//   receive command: hand the device a cookie + a local buffer; the device
//                    moves the data with a single copy. Flags select the
//                    copy engine (CPU vs DMA) and completion model (inline
//                    vs status-byte polled), exactly as in the paper:
//                      kFlagDma   -> I/OAT-like engine (non-temporal, no
//                                    cache fill, background channel)
//                      kFlagAsync -> return immediately; completion = the
//                                    engine's trailing 1-byte status write.
//
// The cookie table lives in the shared arena so every rank (thread or forked
// process) sees the same registry — standing in for kernel memory. Where the
// real module reads the sender's pages via its kernel mapping, we read them
// directly when they are shared (same address space or arena pages) and via
// cross-memory attach otherwise.
#pragma once

#include <cstdint>
#include <optional>

#include "common/iovec.hpp"
#include "shm/arena.hpp"
#include "shm/dma_engine.hpp"
#include "shm/remote_mem.hpp"

namespace nemo::knem {

inline constexpr std::uint32_t kFlagDma = 1u << 0;
inline constexpr std::uint32_t kFlagAsync = 1u << 1;

inline constexpr std::uint32_t kInlineSegs = 16;
inline constexpr std::uint32_t kBlockSegs = 30;

/// Extension block for cookies with more than kInlineSegs segments.
struct SegBlock {
  std::uint64_t next;  ///< Offset of next block or kNil.
  std::uint32_t nsegs;
  std::uint32_t pad;
  shm::RemoteSegment segs[kBlockSegs];
};

struct CookieSlot {
  std::uint64_t state;    ///< 0 free, 1 claimed (atomic).
  std::uint64_t id;       ///< Generation-stamped id (0 = invalid).
  std::int32_t owner_pid;
  std::uint32_t owner_rank;
  std::uint32_t nsegs;    ///< Total segments.
  std::uint32_t flags;
  std::uint64_t total_bytes;
  std::uint64_t pinned_pages;
  /// Sender's virtual base address of the shared arena. Forked ranks map the
  /// arena at per-process bases, so arena-resident segments must be rebased
  /// (addr - owner_arena_base + local base) before they are dereferenced.
  std::uint64_t owner_arena_base;
  /// CMA staging fallback (atomic): 0 unused, 1 receiver requested a staged
  /// copy (stage_off published), 2 sender finished copying into the stage.
  std::uint64_t stage_state;
  std::uint64_t stage_off;  ///< Arena offset of the staging buffer.
  shm::RemoteSegment inline_segs[kInlineSegs];
  std::uint64_t more;     ///< First SegBlock offset or kNil.
};

struct DeviceStats {
  std::uint64_t send_cmds;
  std::uint64_t recv_cmds;
  std::uint64_t dma_recv_cmds;
  std::uint64_t async_recv_cmds;
  std::uint64_t bytes_copied;
  std::uint64_t pages_pinned;   ///< Cumulative.
  std::uint64_t cookie_leaks;   ///< Releases of stale ids (diagnostic).
  std::uint64_t cma_read_cmds;  ///< CMA-backend receives (single copy).
  std::uint64_t cma_bytes;      ///< Bytes moved by those single copies.
  std::uint64_t cma_stage_fallbacks;  ///< Transfers downgraded to staging.
  std::uint64_t cma_stage_bytes;      ///< Bytes moved through the stage.
};

struct DeviceState {
  std::uint32_t nslots;
  std::uint32_t nblocks;
  std::uint64_t gen;        ///< Atomic generation counter.
  std::uint64_t slots_off;
  std::uint64_t blocks_off;
  std::uint64_t block_free; ///< Spinlock-protected freelist head (offset).
  std::uint32_t block_lock; ///< Spinlock word.
  std::uint32_t pad;
  DeviceStats stats;        ///< Updated with atomics.
};

/// Error results from recv-side command validation.
enum class KnemResult {
  kOk,
  kBadCookie,       ///< Unknown/stale cookie id.
  kTruncated,       ///< Receive buffer smaller than declared send buffer.
};

const char* to_string(KnemResult r);

class Device {
 public:
  /// Allocate + initialise device state in the arena. `nslots` bounds the
  /// number of in-flight send declarations; `nblocks` bounds total extension
  /// blocks for highly-fragmented (vectorial) buffers.
  static std::uint64_t create(shm::Arena& arena, std::uint32_t nslots = 256,
                              std::uint32_t nblocks = 256);

  Device(shm::Arena& arena, std::uint64_t state_off, int my_rank,
         pid_t my_pid);

  /// SEND COMMAND — declare the buffer, get a cookie id (nonzero).
  /// Accounts pinning of every page the segments touch.
  std::uint64_t submit_send(std::span<const ConstSegment> segs);

  /// Release a cookie (after the receiver's FIN). Safe on stale ids
  /// (counted in stats as leaks).
  void release(std::uint64_t cookie_id);

  struct Resolved {
    pid_t pid = 0;
    std::uint32_t owner_rank = 0;
    std::uint64_t total = 0;
    shm::RemoteSegmentList segs;
    shm::RemoteMode mode = shm::RemoteMode::kDirect;
  };

  /// Look up a cookie and decide the copy mode (direct for same-address-
  /// space or arena-resident buffers; CMA otherwise).
  [[nodiscard]] std::optional<Resolved> resolve(std::uint64_t cookie_id) const;

  /// RECEIVE COMMAND, synchronous: returns when the data is in `local`.
  /// With kFlagDma the copy runs on `engine` (completion is polled — the
  /// paper's synchronous I/OAT mode); otherwise the calling thread copies.
  KnemResult recv_sync(std::uint64_t cookie_id,
                       std::span<const Segment> local, std::uint32_t flags,
                       shm::DmaEngine* engine);

  /// RECEIVE COMMAND, asynchronous: queues the copy and the trailing status
  /// write on `engine`; poll `*status` for DmaStatus::kSuccess.
  KnemResult recv_async(std::uint64_t cookie_id, SegmentList local,
                        std::uint32_t flags, shm::DmaEngine& engine,
                        volatile std::uint8_t* status);

  // -- CMA staging fallback (receiver-driven downgrade when the CMA
  //    syscalls fail at transfer time: EPERM from ptrace_scope/seccomp).
  //    The receiver allocates a staging buffer and publishes a request in
  //    the cookie slot; the sender (which can always read its own pages)
  //    copies into it and marks it ready; the receiver copies out. Two
  //    copies, but the transfer still completes. The staging buffer comes
  //    from the bump allocator and is not reclaimed — acceptable for a
  //    should-never-happen path that exists for graceful degradation.

  /// Receiver: request a staged copy. Returns the staging buffer's arena
  /// offset, or shm::kNil for a stale cookie. Idempotent per cookie.
  std::uint64_t request_stage(std::uint64_t cookie_id);

  /// Receiver: true once the sender has filled the staging buffer.
  [[nodiscard]] bool stage_ready(std::uint64_t cookie_id) const;

  /// Sender: if the receiver requested staging on this cookie, copy `segs`
  /// into the stage and mark it ready. Returns true when the stage is
  /// fulfilled (now or previously), false when no request is pending.
  bool try_fulfill_stage(std::uint64_t cookie_id,
                         std::span<const ConstSegment> segs);

  /// Bump the CMA single-copy counters (the CMA backend's data motion does
  /// not go through recv_sync, so it accounts itself).
  void note_cma_read(std::uint64_t bytes);

  [[nodiscard]] DeviceStats stats() const;
  [[nodiscard]] std::uint32_t slots_in_use() const;

 private:
  CookieSlot* slot_at(std::uint32_t i) const;
  SegBlock* block_at(std::uint64_t off) const;
  std::uint64_t pop_block();
  void push_block(std::uint64_t off);
  void free_chain(CookieSlot* s);
  [[nodiscard]] const CookieSlot* find(std::uint64_t cookie_id) const;

  shm::Arena* arena_;
  DeviceState* st_;
  int rank_;
  pid_t pid_;
};

}  // namespace nemo::knem
