// Software model of an I/OAT DMA engine channel (paper §3.3-3.4).
//
// A channel executes copy descriptors IN ORDER on a dedicated worker thread.
// The three properties the paper's design depends on are reproduced:
//   1. the submitting CPU is free once the descriptor is queued;
//   2. the copy does not fill the submitting core's cache (non-temporal
//      stores when the source is directly addressable);
//   3. there is no completion interrupt — completion is observed by queueing
//      a trailing 1-byte status write *behind* the payload copy and polling
//      the status variable from user space (Figure 2's trick, literally).
//
// The same class doubles as KNEM's non-I/OAT "kernel thread" offload when
// constructed with use_nt=false and pinned to the receiving core: the copy
// then competes with the application for that core, which is exactly the
// effect Figure 6 measures.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "common/iovec.hpp"
#include "shm/remote_mem.hpp"

namespace nemo::shm {

/// Completion status values (mirrors KNEM's status byte protocol).
enum class DmaStatus : std::uint8_t {
  kPending = 0,
  kSuccess = 1,
  kFailed = 2,
};

struct DmaStats {
  std::uint64_t jobs = 0;
  std::uint64_t bytes = 0;
  std::uint64_t status_writes = 0;
};

class DmaEngine {
 public:
  struct Config {
    bool use_nt = true;      ///< Non-temporal stores for directly-mapped srcs.
    int pin_core = -1;       ///< sched_setaffinity target; -1 = unpinned.
    std::size_t chunk = 256 * KiB;  ///< Max bytes per descriptor execution
                                    ///< slice (models I/OAT per-descriptor
                                    ///< granularity; keeps FIFO latency low).
  };

  DmaEngine() : DmaEngine(Config{}) {}
  explicit DmaEngine(Config cfg);
  ~DmaEngine();
  DmaEngine(const DmaEngine&) = delete;
  DmaEngine& operator=(const DmaEngine&) = delete;

  /// Queue a gather copy: remote -> local through `port`. Non-blocking.
  void submit_copy(RemoteMemPort port, RemoteSegmentList remote,
                   SegmentList local);

  /// Queue a single-byte status write, executed strictly after everything
  /// already queued (the in-order completion-notification trick).
  void submit_status_write(volatile std::uint8_t* status, DmaStatus value);

  /// Convenience: copy followed by trailing status write.
  void submit_copy_with_status(RemoteMemPort port, RemoteSegmentList remote,
                               SegmentList local,
                               volatile std::uint8_t* status);

  /// Block until the queue is empty and the worker is idle.
  void drain();

  [[nodiscard]] DmaStats stats() const;
  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  struct Job {
    bool is_status = false;
    RemoteMode mode = RemoteMode::kDirect;
    pid_t peer_pid = 0;
    RemoteSegmentList remote;
    SegmentList local;
    volatile std::uint8_t* status = nullptr;
    DmaStatus status_value = DmaStatus::kSuccess;
  };

  void worker_main();
  void execute(const Job& job);

  Config cfg_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<Job> queue_;
  bool stop_ = false;
  bool busy_ = false;
  DmaStats stats_;
  std::thread worker_;
};

}  // namespace nemo::shm
