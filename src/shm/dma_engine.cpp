#include "shm/dma_engine.hpp"

#include <sched.h>
#include <pthread.h>

#include "common/common.hpp"
#include "shm/nt_copy.hpp"

namespace nemo::shm {

DmaEngine::DmaEngine(Config cfg) : cfg_(cfg) {
  worker_ = std::thread([this] { worker_main(); });
  if (cfg_.pin_core >= 0) {
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cfg_.pin_core, &set);
    // Best effort: containers may forbid affinity; the model degrades to an
    // unpinned worker, which only softens the Fig. 6 competition effect.
    (void)pthread_setaffinity_np(worker_.native_handle(), sizeof(set), &set);
  }
}

DmaEngine::~DmaEngine() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void DmaEngine::submit_copy(RemoteMemPort port, RemoteSegmentList remote,
                            SegmentList local) {
  Job j;
  j.is_status = false;
  j.mode = port.mode();
  j.peer_pid = port.peer_pid();
  j.remote = std::move(remote);
  j.local = std::move(local);
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(j));
  }
  cv_.notify_one();
}

void DmaEngine::submit_status_write(volatile std::uint8_t* status,
                                    DmaStatus value) {
  Job j;
  j.is_status = true;
  j.status = status;
  j.status_value = value;
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(j));
  }
  cv_.notify_one();
}

void DmaEngine::submit_copy_with_status(RemoteMemPort port,
                                        RemoteSegmentList remote,
                                        SegmentList local,
                                        volatile std::uint8_t* status) {
  submit_copy(port, std::move(remote), std::move(local));
  submit_status_write(status, DmaStatus::kSuccess);
}

void DmaEngine::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return queue_.empty() && !busy_; });
}

DmaStats DmaEngine::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void DmaEngine::worker_main() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    execute(job);
    {
      std::lock_guard<std::mutex> lk(mu_);
      busy_ = false;
      stats_.jobs++;
      if (job.is_status) {
        stats_.status_writes++;
      } else {
        for (const auto& s : job.remote) stats_.bytes += s.len;
      }
    }
    idle_cv_.notify_all();
  }
}

void DmaEngine::execute(const Job& job) {
  if (job.is_status) {
    // Release so payload stores from prior jobs are visible before Success.
    std::atomic_thread_fence(std::memory_order_release);
    *job.status = static_cast<std::uint8_t>(job.status_value);
    return;
  }
  RemoteMemPort port(job.mode, job.peer_pid);
  // Slice the descriptor so one multi-MiB copy cannot monopolise the channel
  // ahead of queued status writes from *other* transfers... in-order per the
  // hardware, so no reordering: we only bound the per-iteration chunk to keep
  // cancellation/teardown latency low.
  SegmentCursor lcur(job.local);
  std::size_t roff_seg = 0, roff_in = 0;
  while (!lcur.done() && roff_seg < job.remote.size()) {
    Segment dst = lcur.take(cfg_.chunk);
    std::size_t want = dst.len;
    std::size_t done = 0;
    while (done < want && roff_seg < job.remote.size()) {
      const RemoteSegment& rs = job.remote[roff_seg];
      std::size_t avail = rs.len - roff_in;
      if (avail == 0) {
        ++roff_seg;
        roff_in = 0;
        continue;
      }
      std::size_t n = want - done < avail ? want - done : avail;
      RemoteSegment rpiece{rs.addr + roff_in, n};
      Segment lpiece{dst.base + done, n};
      port.read(std::span<const RemoteSegment>(&rpiece, 1),
                std::span<const Segment>(&lpiece, 1),
                cfg_.use_nt && port.mode() == RemoteMode::kDirect);
      roff_in += n;
      done += n;
    }
  }
}

}  // namespace nemo::shm
