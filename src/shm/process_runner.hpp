// Fork-based rank launcher: the process-mode analogue of an MPI launcher.
// Children are forked from the caller (inheriting the shared arena mapping
// and the pipe matrix), run the rank function, and _exit with its result.
#pragma once

#include <sched.h>
#include <sys/types.h>

#include <functional>
#include <vector>

namespace nemo::shm {

struct ProcessResult {
  bool all_ok = false;
  std::vector<int> exit_codes;  ///< Per rank; 256+sig for signal deaths.
  /// Per rank: an exception escaped fn (reported out-of-band through a
  /// pipe, so a rank that *returns* 121 is not mistaken for one that threw —
  /// the exit-code byte is too narrow to carry both channels).
  std::vector<bool> uncaught;
};

/// Fork `nranks` children, each running fn(rank). The parent only waits.
/// Exceptions escaping fn turn into exit code 121 plus uncaught[rank]=true.
///
/// `on_death` (optional) fires in the parent, in reap order, the moment each
/// child is collected — children are reaped with waitpid(-1) as they die,
/// not in rank order, so a SIGKILLed rank is observed while its siblings
/// still run. The resilience layer uses this to publish an eager death
/// verdict into the shared liveness cells.
using DeathHook = std::function<void(int rank, int exit_code)>;
ProcessResult run_forked_ranks(int nranks, const std::function<int(int)>& fn,
                               const DeathHook& on_death = nullptr);

/// Pin the calling thread to `core` (best effort; returns false on failure —
/// e.g. restricted containers — in which case placement-sensitive numbers
/// lose fidelity but nothing breaks).
bool pin_self_to_core(int core);

/// Number of cores this process may run on.
int available_cores();

/// Snapshot of the calling thread's affinity mask, so code that pins for a
/// measurement (the calibrator) can undo it instead of leaving the thread —
/// and every later available_cores() query — stuck on one core.
struct AffinitySnapshot {
  cpu_set_t set;
  bool valid = false;
};
AffinitySnapshot save_affinity();
void restore_affinity(const AffinitySnapshot& snap);

}  // namespace nemo::shm
