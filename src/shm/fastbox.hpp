// Per-ordered-pair SPSC fastbox, after MPICH Nemesis' fboxes: a single
// inline message slot the sender fills and the receiver drains without ever
// touching the MPSC recv queue's atomic-exchange enqueue. Small eager
// messages take this path when the box is free and fall back to the queue
// when it is occupied; the engine merges the two streams back into sender
// order using the per-pair message sequence number carried in both.
//
// The box is a single flag word plus an inline header+payload. Only two
// cache lines move per message in steady state (the flag/header line and
// the payload), and — unlike the queue — no third-party cell memory bounces
// between the pair.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>

#include "common/common.hpp"
#include "shm/arena.hpp"

namespace nemo::shm {

/// Shared-memory layout of one fastbox. `flag` and the header share the
/// first cache line (SPSC: sender writes everything, then releases via
/// `flag`; no false sharing because the receiver only polls `flag`).
struct FastboxState {
  alignas(kCacheLine) std::uint32_t flag;  ///< 0 = empty, 1 = full.
  std::uint32_t src;                       ///< Sending rank.
  std::int32_t tag;
  std::uint32_t msg_seq;      ///< Per-(src,dst) sequence (stream merge key).
  std::uint32_t context;
  std::uint32_t payload_len;
  static constexpr std::size_t kHeaderBytes = 64;
  static constexpr std::size_t kSize = 2 * KiB;
  static constexpr std::size_t kPayload = kSize - kHeaderBytes;
  alignas(kCacheLine) std::byte payload[kPayload];
};
static_assert(sizeof(FastboxState) == FastboxState::kSize);
static_assert(offsetof(FastboxState, payload) == FastboxState::kHeaderBytes);

/// Cheap view over one fastbox in the arena. Default-constructed views are
/// invalid placeholders (the engine keeps a dense per-peer vector).
class Fastbox {
 public:
  static constexpr std::size_t kPayload = FastboxState::kPayload;

  static std::uint64_t create(Arena& arena) {
    std::uint64_t off = arena.alloc(sizeof(FastboxState), kCacheLine);
    auto* st = arena.at_as<FastboxState>(off);
    std::memset(st, 0, sizeof(FastboxState));
    aref(st->flag).store(0, std::memory_order_release);
    return off;
  }

  Fastbox() = default;
  Fastbox(Arena& arena, std::uint64_t off)
      : st_(arena.at_as<FastboxState>(off)) {}

  [[nodiscard]] bool valid() const { return st_ != nullptr; }

  /// Sender: publish a complete message if the box is free. Gathers from a
  /// caller-provided segment walker via memcpy of one contiguous range per
  /// call — the engine passes contiguous data (small messages are packed).
  bool try_put(std::uint32_t src, std::int32_t tag, std::uint32_t msg_seq,
               std::uint32_t context, const std::byte* data,
               std::size_t len) {
    NEMO_ASSERT(len <= kPayload);
    if (aref(st_->flag).load(std::memory_order_acquire) != 0) return false;
    st_->src = src;
    st_->tag = tag;
    st_->msg_seq = msg_seq;
    st_->context = context;
    st_->payload_len = static_cast<std::uint32_t>(len);
    if (len != 0) std::memcpy(st_->payload, data, len);
    aref(st_->flag).store(1, std::memory_order_release);
    return true;
  }

  /// Receiver: the resident message header, or nullptr when empty. The
  /// payload stays valid until release(); consuming in place keeps the
  /// receive path single-copy (box -> user buffer).
  [[nodiscard]] const FastboxState* peek() const {
    if (aref(st_->flag).load(std::memory_order_acquire) != 1) return nullptr;
    return st_;
  }

  /// Receiver: hand the box back to the sender.
  void release() {
    aref(st_->flag).store(0, std::memory_order_release);
  }

 private:
  FastboxState* st_ = nullptr;
};

}  // namespace nemo::shm
