// Per-ordered-pair SPSC fastbox, after MPICH Nemesis' fboxes — grown from a
// single inline slot into a small N-slot ring: the sender publishes small
// eager messages without ever touching the MPSC recv queue's
// atomic-exchange enqueue, and with N slots a burst no longer falls back to
// the queue after the first message. When every slot is occupied the sender
// falls back to the queue; the engine merges the two streams back into
// sender order using the per-pair message sequence carried in both.
//
// Geometry (slot count and slot size, hence the eager-routing cutoff) is
// tunable: the tune subsystem picks it per machine, NEMO_FASTBOX_SLOTS /
// NEMO_FASTBOX_SLOT_BYTES override. Per message only two cache lines move
// in steady state (the slot's flag/header line and its payload); wpos/rpos
// are single-owner words on separate lines, never shared.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>

#include "common/common.hpp"
#include "shm/arena.hpp"

namespace nemo::shm {

/// One slot: flag + header on the first cache line, payload after. The
/// sender writes everything, then releases via `flag`; the receiver only
/// polls `flag`, consumes in place, and stores 0 to hand the slot back.
struct FastboxSlot {
  alignas(kCacheLine) std::uint32_t flag;  ///< 0 = empty, 1 = full.
  std::uint32_t src;                       ///< Sending rank.
  std::int32_t tag;
  std::uint32_t msg_seq;      ///< Per-(src,dst) sequence (stream merge key).
  std::uint32_t context;
  std::uint32_t payload_len;
  static constexpr std::size_t kHeaderBytes = 64;

  [[nodiscard]] const std::byte* payload() const {
    return reinterpret_cast<const std::byte*>(this) + kHeaderBytes;
  }
  [[nodiscard]] std::byte* payload() {
    return reinterpret_cast<std::byte*>(this) + kHeaderBytes;
  }
};
static_assert(sizeof(FastboxSlot) == FastboxSlot::kHeaderBytes);

/// Shared-memory header of one fastbox ring. wpos is sender-owned, rpos
/// receiver-owned; each sits on its own line so the positions never bounce.
struct FastboxState {
  alignas(kCacheLine) std::uint32_t nslots;
  std::uint32_t slot_bytes;  ///< Header + payload stride per slot.
  alignas(kCacheLine) std::uint32_t wpos;  ///< Next slot the sender fills.
  alignas(kCacheLine) std::uint32_t rpos;  ///< Next slot the receiver reads.
  // nslots * slot_bytes of FastboxSlot follow.
};

/// Cheap view over one fastbox ring in the arena. Default-constructed views
/// are invalid placeholders (the engine keeps a dense per-peer vector).
class Fastbox {
 public:
  static constexpr std::uint32_t kDefaultSlots = 4;
  static constexpr std::uint32_t kDefaultSlotBytes = 2 * KiB;
  /// Upper bound on slot size: eager cells stop paying off past 16 KiB.
  static constexpr std::uint32_t kMaxSlotBytes = 16 * KiB;
  /// Payload capacity of the default geometry (compat constant for sizing
  /// stack buffers; per-instance capacity is payload_capacity()).
  static constexpr std::size_t kPayload =
      kDefaultSlotBytes - FastboxSlot::kHeaderBytes;

  /// With `page_align`, the whole box is carved as whole pages so the
  /// caller can mbind it (NUMA placement) without touching neighbours.
  static std::uint64_t create(Arena& arena,
                              std::uint32_t nslots = kDefaultSlots,
                              std::uint32_t slot_bytes = kDefaultSlotBytes,
                              bool page_align = false) {
    NEMO_ASSERT(nslots >= 1);
    NEMO_ASSERT(slot_bytes > FastboxSlot::kHeaderBytes &&
                slot_bytes <= kMaxSlotBytes &&
                slot_bytes % kCacheLine == 0);
    std::size_t total = sizeof(FastboxState) +
                        static_cast<std::size_t>(nslots) * slot_bytes;
    std::uint64_t off = page_align ? arena.alloc_pages(total)
                                   : arena.alloc(total, kCacheLine);
    auto* st = arena.at_as<FastboxState>(off);
    std::memset(st, 0, sizeof(FastboxState) +
                           static_cast<std::size_t>(nslots) * slot_bytes);
    st->nslots = nslots;
    st->slot_bytes = slot_bytes;
    return off;
  }

  Fastbox() = default;
  Fastbox(Arena& arena, std::uint64_t off)
      : st_(arena.at_as<FastboxState>(off)) {}

  [[nodiscard]] bool valid() const { return st_ != nullptr; }
  [[nodiscard]] std::uint32_t nslots() const { return st_->nslots; }
  [[nodiscard]] std::size_t payload_capacity() const {
    return st_->slot_bytes - FastboxSlot::kHeaderBytes;
  }

  /// Sender: publish a complete message into the next free slot, if any.
  bool try_put(std::uint32_t src, std::int32_t tag, std::uint32_t msg_seq,
               std::uint32_t context, const std::byte* data,
               std::size_t len) {
    NEMO_ASSERT(len <= payload_capacity());
    FastboxSlot* s = slot(st_->wpos);
    if (aref(s->flag).load(std::memory_order_acquire) != 0) return false;
    s->src = src;
    s->tag = tag;
    s->msg_seq = msg_seq;
    s->context = context;
    s->payload_len = static_cast<std::uint32_t>(len);
    if (len != 0) std::memcpy(s->payload(), data, len);
    aref(s->flag).store(1, std::memory_order_release);
    st_->wpos = (st_->wpos + 1) % st_->nslots;  // Sender-private word.
    return true;
  }

  /// Receiver: the oldest resident message, or nullptr when the ring is
  /// empty. The payload stays valid until release(); consuming in place
  /// keeps the receive path single-copy (slot -> user buffer).
  [[nodiscard]] const FastboxSlot* peek() const {
    FastboxSlot* s = slot(st_->rpos);
    if (aref(s->flag).load(std::memory_order_acquire) != 1) return nullptr;
    return s;
  }

  /// Receiver: hand the slot just peeked back to the sender.
  void release() {
    FastboxSlot* s = slot(st_->rpos);
    aref(s->flag).store(0, std::memory_order_release);
    st_->rpos = (st_->rpos + 1) % st_->nslots;  // Receiver-private word.
  }

 private:
  [[nodiscard]] FastboxSlot* slot(std::uint32_t i) const {
    return reinterpret_cast<FastboxSlot*>(
        reinterpret_cast<std::byte*>(st_ + 1) +
        static_cast<std::size_t>(i) * st_->slot_bytes);
  }

  FastboxState* st_ = nullptr;
};

}  // namespace nemo::shm
