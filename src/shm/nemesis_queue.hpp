// Nemesis-style lock-free shared-memory queues.
//
// Each rank owns one RECEIVE queue (multi-producer / single-consumer) and one
// FREE queue holding its pool of message cells. A sender dequeues a cell from
// ITS OWN free queue, fills it, and enqueues it on the receiver's recv queue;
// after draining a cell the receiver returns it to the owner's free queue.
// This is the enqueue/dequeue design used by MPICH's Nemesis channel: tail is
// updated with an atomic exchange, and the transiently broken head->next link
// is repaired by the producer while the consumer waits it out.
//
// Everything is offset-based so the layout works across address spaces.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/common.hpp"
#include "shm/arena.hpp"

namespace nemo::shm {

/// Message cell types (protocol messages of the nemo runtime).
enum class CellType : std::uint16_t {
  kEagerFirst = 1,  ///< First (or only) chunk of an eager message.
  kEagerBody = 2,   ///< Continuation chunk of an eager message.
  kRts = 3,         ///< Rendezvous request-to-send, payload = LMT wire cookie.
  kCts = 4,         ///< Clear-to-send, payload = receiver LMT wire cookie.
  kFin = 5,         ///< Transfer finished (releases sender-side resources).
  kBarrier = 6,     ///< Used by the bootstrap barrier.
};

/// Fixed-size message cell. Header + inline payload.
struct alignas(kCacheLine) Cell {
  std::uint64_t next;        ///< Offset of next cell in queue (atomic), kNil.
  std::uint32_t src;         ///< Sending rank.
  std::uint16_t type;        ///< CellType.
  std::uint16_t flags;
  std::int32_t tag;          ///< User tag (eager/RTS) or backend data.
  std::uint32_t msg_seq;     ///< Per-(src,dst) sequence for reassembly.
  std::uint64_t total_size;  ///< Full message size (eager-first, RTS).
  std::uint64_t chunk_off;   ///< Offset of this chunk within the message.
  std::uint32_t payload_len; ///< Valid bytes in payload.
  std::uint32_t owner;       ///< Rank whose free queue this cell returns to.

  static constexpr std::size_t kHeaderBytes = 48;
  static constexpr std::size_t kSize = 16 * KiB;
  static constexpr std::size_t kPayload = kSize - kHeaderBytes;

  std::byte payload[kPayload];

  [[nodiscard]] std::byte* data() { return payload; }
  [[nodiscard]] const std::byte* data() const { return payload; }
};
static_assert(sizeof(Cell) == Cell::kSize);
static_assert(offsetof(Cell, payload) == Cell::kHeaderBytes);

/// MPSC queue head/tail block, cacheline-separated to avoid false sharing
/// between the consumer (head) and producers (tail).
struct QueueState {
  alignas(kCacheLine) std::uint64_t head;
  alignas(kCacheLine) std::uint64_t tail;
};

/// A view over a QueueState living in an arena. Cheap to construct; holds no
/// state of its own.
class QueueView {
 public:
  QueueView(Arena& arena, std::uint64_t state_off)
      : arena_(&arena), q_(arena.at_as<QueueState>(state_off)) {}

  /// Initialise an empty queue (single-threaded, at world setup).
  void init() {
    aref(q_->head).store(kNil, std::memory_order_relaxed);
    aref(q_->tail).store(kNil, std::memory_order_release);
  }

  /// Multi-producer enqueue of the cell at `cell_off`.
  void enqueue(std::uint64_t cell_off) {
    Cell* c = arena_->at_as<Cell>(cell_off);
    aref(c->next).store(kNil, std::memory_order_relaxed);
    std::uint64_t prev =
        aref(q_->tail).exchange(cell_off, std::memory_order_acq_rel);
    if (prev == kNil) {
      aref(q_->head).store(cell_off, std::memory_order_release);
    } else {
      Cell* pc = arena_->at_as<Cell>(prev);
      aref(pc->next).store(cell_off, std::memory_order_release);
    }
  }

  /// Single-consumer dequeue; returns kNil when (apparently) empty.
  std::uint64_t dequeue() {
    std::uint64_t h = aref(q_->head).load(std::memory_order_acquire);
    if (h == kNil) return kNil;
    Cell* hc = arena_->at_as<Cell>(h);
    std::uint64_t n = aref(hc->next).load(std::memory_order_acquire);
    if (n != kNil) {
      aref(q_->head).store(n, std::memory_order_relaxed);
      return h;
    }
    // h looks like the last cell. Detach head, then try to swing tail from h
    // to nil. If another producer already replaced the tail, its link to
    // h->next is imminent: wait for it.
    aref(q_->head).store(kNil, std::memory_order_relaxed);
    std::uint64_t expected = h;
    if (aref(q_->tail).compare_exchange_strong(expected, kNil,
                                               std::memory_order_acq_rel)) {
      return h;
    }
    std::uint64_t next;
    do {
      next = aref(hc->next).load(std::memory_order_acquire);
    } while (next == kNil);
    aref(q_->head).store(next, std::memory_order_relaxed);
    return h;
  }

  /// True when both head and tail are nil. Only a hint under concurrency.
  [[nodiscard]] bool empty_hint() const {
    return aref(q_->head).load(std::memory_order_acquire) == kNil &&
           aref(q_->tail).load(std::memory_order_acquire) == kNil;
  }

 private:
  Arena* arena_;
  QueueState* q_;
};

/// Per-rank queue block: receive queue + free-cell queue + the cells.
struct RankQueues {
  std::uint64_t recv_q;  ///< Offset of QueueState.
  std::uint64_t free_q;  ///< Offset of QueueState.
};

/// Allocate and initialise the queue block for one rank: both QueueStates and
/// `ncells` cells parked on the free queue. Returns the RankQueues offsets.
inline RankQueues make_rank_queues(Arena& arena, std::uint32_t owner_rank,
                                   std::size_t ncells) {
  RankQueues rq{};
  rq.recv_q = arena.alloc(sizeof(QueueState), kCacheLine);
  rq.free_q = arena.alloc(sizeof(QueueState), kCacheLine);
  QueueView recv(arena, rq.recv_q), free_q(arena, rq.free_q);
  recv.init();
  free_q.init();
  for (std::size_t i = 0; i < ncells; ++i) {
    std::uint64_t off = arena.alloc(sizeof(Cell), kCacheLine);
    Cell* c = arena.at_as<Cell>(off);
    c->owner = owner_rank;
    free_q.enqueue(off);
  }
  return rq;
}

}  // namespace nemo::shm
