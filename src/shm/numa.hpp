// NUMA-aware placement for shared-memory regions (ROADMAP: "first-touch
// currently decides; cross-socket pairs likely want receiver-side
// placement").
//
// Two separable concerns live here:
//  1. *Deciding* where a region should go — choose_region_placement() is a
//     pure function of the placement mode, the topology, and the
//     communicating cores, so it is unit-testable on synthetic topologies
//     without NUMA hardware.
//  2. *Applying* the decision — bind_to_node()/interleave() issue a raw
//     mbind(2) syscall (no libnuma dependency). On single-node hosts,
//     kernels without mempolicy support, or sandboxes that deny mbind, every
//     apply call degrades to a no-op and the caller keeps first-touch
//     behaviour — decisions are still recorded so they stay observable.
//
// The mode is selected via NEMO_NUMA_PLACEMENT={auto,receiver,sender,
// interleave,first-touch}; NEMO_NUMA=0 additionally disables the mbind calls
// while leaving the decisions visible.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "common/topology.hpp"

namespace nemo::shm {

/// Where a per-pair shared region (copy ring, fastbox) should live.
enum class NumaPlacement {
  kAuto,        ///< Receiver-side for cross-NUMA pairs, first-touch else.
  kReceiver,    ///< Always on the receiving core's node.
  kSender,      ///< Always on the sending core's node.
  kInterleave,  ///< Page-interleaved across all nodes.
  kFirstTouch,  ///< Kernel default: whoever touches a page first owns it.
};

const char* to_string(NumaPlacement p);
std::optional<NumaPlacement> numa_placement_from_string(const std::string& s);

/// Resolve NEMO_NUMA_PLACEMENT on top of `def`; throws std::invalid_argument
/// on an unrecognised value (typos must surface, not silently first-touch).
NumaPlacement numa_placement_from_env(NumaPlacement def = NumaPlacement::kAuto);

/// The outcome of a placement decision for one region.
struct RegionPlacement {
  int node = -1;            ///< Target NUMA node; -1 = leave to first-touch.
  bool interleave = false;  ///< Page-interleave instead of single-node bind.
};

/// Decide placement for the shared buffers of an ordered (sender, receiver)
/// pair. Pure function: consults only the arguments. Cores may be -1
/// (unknown / no binding), which always yields first-touch — without knowing
/// who touches the region there is nothing better to do.
///
/// kAuto places receiver-side exactly when the two cores live on different
/// NUMA nodes (the paper's cross-socket case, where the receiver's copy #2
/// otherwise pays a remote read per cache line); same-node pairs keep
/// first-touch, which is already local.
RegionPlacement choose_region_placement(NumaPlacement mode,
                                        const Topology& topo, int sender_core,
                                        int recv_core);

/// NUMA nodes the *running host* exposes (sysfs), >= 1. Distinct from
/// Topology::num_numa_nodes(), which may describe a synthetic machine.
int host_numa_nodes();

/// True when mbind can do anything useful here: multi-node host, mempolicy
/// syscall compiled in, and NEMO_NUMA not set to 0.
bool numa_bind_available();

/// Bind [p, p+len) to `node` (MPOL_PREFERRED + best-effort page move). The
/// range is shrunk inward to whole pages; a sub-page range is a successful
/// no-op. Returns false when the syscall is unavailable or rejected —
/// callers must treat false as "first-touch applies", never as an error.
bool bind_to_node(void* p, std::size_t len, int node);

/// Interleave [p, p+len) across every host node (MPOL_INTERLEAVE). Same
/// page-shrinking and fallback contract as bind_to_node().
bool interleave(void* p, std::size_t len);

}  // namespace nemo::shm
