// A shared-memory arena: one fixed-size mapping holding every cross-rank data
// structure (queues, cells, copy rings, fastboxes, KNEM cookie table,
// bootstrap state).
//
// All structures inside the arena are addressed by BYTE OFFSET, never by
// pointer, and contain only trivially-copyable words accessed through
// std::atomic_ref. That makes the identical layout usable from:
//  - threads of one process  (anonymous MAP_SHARED mapping), and
//  - forked processes        (the mapping is inherited, or shm_open'ed).
//
// NUMA placement: the arena itself is mapped without a memory policy
// (first-touch). Regions whose reader/writer cores are known are carved with
// alloc_pages() and then bound via shm::bind_to_node()/interleave() — see
// shm/numa.hpp for the decision logic and the fallback contract. Binding a
// region is always optional: every structure works identically (just
// potentially slower) wherever its pages land.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>

#include "common/common.hpp"

namespace nemo::shm {

/// Offset value meaning "null".
inline constexpr std::uint64_t kNil = 0;

/// Obtain an atomic view of a word stored in shared memory.
template <typename T>
std::atomic_ref<T> aref(T& word) {
  static_assert(std::is_trivially_copyable_v<T>);
  return std::atomic_ref<T>(word);
}

/// One shared mapping + a lock-free bump allocator over it.
///
/// Thread-safety: alloc()/alloc_as()/alloc_pages()/shared-state accessors are
/// safe from any rank concurrently (the bump pointer is a CAS loop on a word
/// inside the mapping itself, so forked processes contend correctly too).
/// Construction, move, and destruction are single-owner operations: exactly
/// one World constructs the arena before ranks spawn and destroys it after
/// they join. at()/at_as()/offset_of() are pure address arithmetic and
/// assert (always-on) that the offset/pointer lies inside the mapping.
class Arena {
 public:
  /// mmap/mbind granularity; alloc_pages() hands out multiples of this.
  static constexpr std::size_t kPageBytes = 4096;

  /// Anonymous MAP_SHARED arena: shared with threads and with children
  /// forked *after* creation.
  static Arena create_anonymous(std::size_t bytes);

  /// POSIX shm_open-backed arena (O_CREAT | O_EXCL), for unrelated processes
  /// and for demonstrating the real deployment path. `name` must start '/'.
  /// The creating Arena owns the name and unlinks it on destruction.
  static Arena create_shm(const std::string& name, std::size_t bytes);

  /// Attach to an existing shm arena created by create_shm. The attached
  /// view does not own the name (no unlink on destruction).
  static Arena open_shm(const std::string& name);

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&& o) noexcept { move_from(o); }
  Arena& operator=(Arena&& o) noexcept {
    if (this != &o) {
      destroy();
      move_from(o);
    }
    return *this;
  }
  ~Arena() { destroy(); }

  /// Drop unlink responsibility (keeps the mapping). A forked child that
  /// re-attaches via open_shm calls this on its inherited copy first, so
  /// replacing it cannot shm_unlink the segment out from under the parent
  /// and sibling ranks.
  void disown() { owner_ = false; }

  [[nodiscard]] bool valid() const { return base_ != nullptr; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::byte* base() const { return base_; }

  /// Translate an offset to a pointer in this mapping.
  [[nodiscard]] std::byte* at(std::uint64_t off) const {
    NEMO_ASSERT(off != kNil && off < size_);
    return base_ + off;
  }

  template <typename T>
  [[nodiscard]] T* at_as(std::uint64_t off) const {
    static_assert(std::is_trivially_copyable_v<T>);
    NEMO_ASSERT(off + sizeof(T) <= size_);
    return reinterpret_cast<T*>(at(off));
  }

  /// Offset of a pointer inside the mapping (must point into it).
  [[nodiscard]] std::uint64_t offset_of(const void* p) const {
    auto* b = static_cast<const std::byte*>(p);
    NEMO_ASSERT(b >= base_ && b < base_ + size_);
    return static_cast<std::uint64_t>(b - base_);
  }

  [[nodiscard]] bool contains(const void* p, std::size_t len = 0) const {
    auto* b = static_cast<const std::byte*>(p);
    return b >= base_ && b + len <= base_ + size_;
  }

  /// Bump-allocate `bytes` aligned to `align` (power of two, >= 8).
  /// Thread-safe across ranks; memory is never freed individually.
  /// Asserts (always-on) when the arena is exhausted — size it up front via
  /// Config::arena_bytes rather than handling failure at every call site.
  std::uint64_t alloc(std::size_t bytes, std::size_t align = kCacheLine);

  /// Bump-allocate a page-aligned, whole-page region: the shape mbind(2)
  /// needs, so a later bind_to_node()/interleave() over exactly this range
  /// cannot touch a neighbouring allocation's pages.
  std::uint64_t alloc_pages(std::size_t bytes) {
    return alloc(round_up(bytes, kPageBytes), kPageBytes);
  }

  /// Allocate and return a typed pointer (arena-lifetime object).
  template <typename T>
  T* alloc_as(std::size_t count = 1, std::size_t align = alignof(T)) {
    std::uint64_t off =
        alloc(sizeof(T) * count, align < 8 ? 8 : align);
    return at_as<T>(off);
  }

  /// Bytes still available for alloc().
  [[nodiscard]] std::size_t remaining() const;

 private:
  struct Header {
    std::uint64_t magic;
    std::uint64_t size;
    std::uint64_t alloc_next;  // atomic bump pointer
  };
  static constexpr std::uint64_t kMagic = 0x4e454d4f4c4d5431ull;  // NEMOLMT1

  Header* header() const { return reinterpret_cast<Header*>(base_); }
  void init_header();
  void destroy();
  void move_from(Arena& o) {
    base_ = o.base_;
    size_ = o.size_;
    shm_name_ = std::move(o.shm_name_);
    owner_ = o.owner_;
    o.base_ = nullptr;
    o.size_ = 0;
    o.owner_ = false;
  }

  std::byte* base_ = nullptr;
  std::size_t size_ = 0;
  std::string shm_name_;  // non-empty when shm_open-backed
  bool owner_ = false;    // unlink on destroy
};

}  // namespace nemo::shm
