// A shared-memory arena: one fixed-size mapping holding every cross-rank data
// structure (queues, cells, copy rings, KNEM cookie table, bootstrap state).
//
// All structures inside the arena are addressed by BYTE OFFSET, never by
// pointer, and contain only trivially-copyable words accessed through
// std::atomic_ref. That makes the identical layout usable from:
//  - threads of one process  (anonymous MAP_SHARED mapping), and
//  - forked processes        (the mapping is inherited, or shm_open'ed).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>

#include "common/common.hpp"

namespace nemo::shm {

/// Offset value meaning "null".
inline constexpr std::uint64_t kNil = 0;

/// Obtain an atomic view of a word stored in shared memory.
template <typename T>
std::atomic_ref<T> aref(T& word) {
  static_assert(std::is_trivially_copyable_v<T>);
  return std::atomic_ref<T>(word);
}

class Arena {
 public:
  /// Anonymous MAP_SHARED arena: shared with threads and with children
  /// forked *after* creation.
  static Arena create_anonymous(std::size_t bytes);

  /// POSIX shm_open-backed arena (O_CREAT | O_EXCL), for unrelated processes
  /// and for demonstrating the real deployment path. `name` must start '/'.
  static Arena create_shm(const std::string& name, std::size_t bytes);

  /// Attach to an existing shm arena created by create_shm.
  static Arena open_shm(const std::string& name);

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&& o) noexcept { move_from(o); }
  Arena& operator=(Arena&& o) noexcept {
    if (this != &o) {
      destroy();
      move_from(o);
    }
    return *this;
  }
  ~Arena() { destroy(); }

  [[nodiscard]] bool valid() const { return base_ != nullptr; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::byte* base() const { return base_; }

  /// Translate an offset to a pointer in this mapping.
  [[nodiscard]] std::byte* at(std::uint64_t off) const {
    NEMO_ASSERT(off != kNil && off < size_);
    return base_ + off;
  }

  template <typename T>
  [[nodiscard]] T* at_as(std::uint64_t off) const {
    static_assert(std::is_trivially_copyable_v<T>);
    NEMO_ASSERT(off + sizeof(T) <= size_);
    return reinterpret_cast<T*>(at(off));
  }

  /// Offset of a pointer inside the mapping (must point into it).
  [[nodiscard]] std::uint64_t offset_of(const void* p) const {
    auto* b = static_cast<const std::byte*>(p);
    NEMO_ASSERT(b >= base_ && b < base_ + size_);
    return static_cast<std::uint64_t>(b - base_);
  }

  [[nodiscard]] bool contains(const void* p, std::size_t len = 0) const {
    auto* b = static_cast<const std::byte*>(p);
    return b >= base_ && b + len <= base_ + size_;
  }

  /// Bump-allocate `bytes` aligned to `align` (power of two, >= 8).
  /// Thread-safe across ranks; memory is never freed individually.
  std::uint64_t alloc(std::size_t bytes, std::size_t align = kCacheLine);

  /// Allocate and return a typed pointer (arena-lifetime object).
  template <typename T>
  T* alloc_as(std::size_t count = 1, std::size_t align = alignof(T)) {
    std::uint64_t off =
        alloc(sizeof(T) * count, align < 8 ? 8 : align);
    return at_as<T>(off);
  }

  /// Bytes still available for alloc().
  [[nodiscard]] std::size_t remaining() const;

 private:
  struct Header {
    std::uint64_t magic;
    std::uint64_t size;
    std::uint64_t alloc_next;  // atomic bump pointer
  };
  static constexpr std::uint64_t kMagic = 0x4e454d4f4c4d5431ull;  // NEMOLMT1

  Header* header() const { return reinterpret_cast<Header*>(base_); }
  void init_header();
  void destroy();
  void move_from(Arena& o) {
    base_ = o.base_;
    size_ = o.size_;
    shm_name_ = std::move(o.shm_name_);
    owner_ = o.owner_;
    o.base_ = nullptr;
    o.size_ = 0;
    o.owner_ = false;
  }

  std::byte* base_ = nullptr;
  std::size_t size_ = 0;
  std::string shm_name_;  // non-empty when shm_open-backed
  bool owner_ = false;    // unlink on destroy
};

}  // namespace nemo::shm
