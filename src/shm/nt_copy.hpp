// Non-temporal (streaming-store) memory copy: the software stand-in for the
// I/OAT DMA engine's defining property — filling the destination without
// displacing the CPU cache's working set.
#pragma once

#include <cstddef>

namespace nemo::shm {

/// True when this build/CPU can issue streaming stores (x86-64 SSE2).
bool nt_copy_available();

/// memcpy that uses non-temporal stores for the bulk when available and the
/// pointers permit 16-byte alignment handling; falls back to memcpy.
/// An sfence is issued before returning so the data is globally visible.
void nt_memcpy(void* dst, const void* src, std::size_t n);

/// Plain cached copy (for symmetric call sites / benchmarking).
void cached_memcpy(void* dst, const void* src, std::size_t n);

}  // namespace nemo::shm
