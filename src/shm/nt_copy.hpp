// Non-temporal (streaming-store) memory copy: the software stand-in for the
// I/OAT DMA engine's defining property — filling the destination without
// displacing the CPU cache's working set.
#pragma once

#include <cstddef>

namespace nemo::shm {

/// True when this build/CPU can issue streaming stores (x86-64 SSE2).
bool nt_copy_available();

/// memcpy that uses non-temporal stores for the bulk when available and the
/// pointers permit 16-byte alignment handling; falls back to memcpy.
/// An sfence is issued before returning so the data is globally visible.
void nt_memcpy(void* dst, const void* src, std::size_t n);

/// Plain cached copy (for symmetric call sites / benchmarking).
void cached_memcpy(void* dst, const void* src, std::size_t n);

/// Default minimum transfer size for switching to streaming stores: half of
/// the detected last-level cache (sysconf L3, falling back to L2, falling
/// back to 16 MiB). Below this a transfer fits comfortably in cache and the
/// cached copy's reuse wins; above it the copy only evicts useful lines.
/// Overridable at runtime via NEMO_NT_MIN.
std::size_t nt_default_threshold();

/// Copy selecting streaming vs cached stores by `use_nt` (single call site
/// idiom for the ring/backend hot paths).
inline void copy_for(bool use_nt, void* dst, const void* src, std::size_t n) {
  if (use_nt)
    nt_memcpy(dst, src, n);
  else
    cached_memcpy(dst, src, n);
}

}  // namespace nemo::shm
