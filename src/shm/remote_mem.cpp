#include "shm/remote_mem.hpp"

#include <sys/uio.h>
#include <unistd.h>

#include <cstring>

#include "common/common.hpp"
#include "shm/nt_copy.hpp"

namespace nemo::shm {

const char* to_string(RemoteMode m) {
  switch (m) {
    case RemoteMode::kDirect: return "direct";
    case RemoteMode::kCma: return "cma";
  }
  return "?";
}

bool cma_available() {
  static const bool ok = [] {
    char src_c = 42, dst_c = 0;
    struct iovec l {
      &dst_c, 1
    };
    struct iovec r {
      &src_c, 1
    };
    ssize_t n = ::process_vm_readv(::getpid(), &l, 1, &r, 1, 0);
    return n == 1 && dst_c == 42;
  }();
  return ok;
}

namespace {

/// Streamed generalized copy for kDirect: walks both segment lists.
std::size_t direct_copy(std::span<const RemoteSegment> remote,
                        std::span<const Segment> local, bool non_temporal) {
  std::size_t ri = 0, roff = 0, li = 0, loff = 0, copied = 0;
  while (ri < remote.size() && li < local.size()) {
    if (remote[ri].len == roff) {
      ++ri;
      roff = 0;
      continue;
    }
    if (local[li].len == loff) {
      ++li;
      loff = 0;
      continue;
    }
    std::size_t n = remote[ri].len - roff;
    std::size_t ln = local[li].len - loff;
    if (ln < n) n = ln;
    const void* src =
        reinterpret_cast<const void*>(remote[ri].addr + roff);
    void* dst = local[li].base + loff;
    if (non_temporal)
      nt_memcpy(dst, src, n);
    else
      std::memcpy(dst, src, n);
    roff += n;
    loff += n;
    copied += n;
  }
  return copied;
}

constexpr std::size_t kIovMax = 64;

}  // namespace

std::size_t RemoteMemPort::read(std::span<const RemoteSegment> remote,
                                std::span<const Segment> local,
                                bool non_temporal) const {
  if (mode_ == RemoteMode::kDirect)
    return direct_copy(remote, local, non_temporal);

  // CMA: the kernel performs the copy; we batch iovecs. Note the kernel copy
  // is cache-filling — exactly like KNEM's non-I/OAT kernel copy, so the
  // non_temporal request cannot be honoured here (callers know via mode()).
  std::size_t copied = 0;
  std::size_t ri = 0, roff = 0, li = 0, loff = 0;
  while (ri < remote.size() && li < local.size()) {
    struct iovec liov[kIovMax], riov[kIovMax];
    std::size_t nl = 0, nr = 0, batch = 0;
    std::size_t ri2 = ri, roff2 = roff, li2 = li, loff2 = loff;
    // Build matched-length iovec batches.
    while (ri2 < remote.size() && li2 < local.size() && nl < kIovMax &&
           nr < kIovMax) {
      if (remote[ri2].len == roff2) {
        ++ri2;
        roff2 = 0;
        continue;
      }
      if (local[li2].len == loff2) {
        ++li2;
        loff2 = 0;
        continue;
      }
      std::size_t n = remote[ri2].len - roff2;
      std::size_t ln = local[li2].len - loff2;
      if (ln < n) n = ln;
      riov[nr].iov_base = reinterpret_cast<void*>(remote[ri2].addr + roff2);
      riov[nr].iov_len = n;
      ++nr;
      liov[nl].iov_base = local[li2].base + loff2;
      liov[nl].iov_len = n;
      ++nl;
      roff2 += n;
      loff2 += n;
      batch += n;
    }
    if (batch == 0) break;
    ssize_t got = ::process_vm_readv(peer_pid_, liov, nl, riov, nr, 0);
    if (got < 0) throw SysError("process_vm_readv", errno);
    NEMO_ASSERT_MSG(static_cast<std::size_t>(got) == batch,
                    "short CMA read (partial page?)");
    copied += batch;
    ri = ri2;
    roff = roff2;
    li = li2;
    loff = loff2;
  }
  return copied;
}

std::size_t RemoteMemPort::write(std::span<const RemoteSegment> remote,
                                 std::span<const ConstSegment> local) const {
  if (mode_ == RemoteMode::kDirect) {
    std::size_t ri = 0, roff = 0, li = 0, loff = 0, copied = 0;
    while (ri < remote.size() && li < local.size()) {
      if (remote[ri].len == roff) {
        ++ri;
        roff = 0;
        continue;
      }
      if (local[li].len == loff) {
        ++li;
        loff = 0;
        continue;
      }
      std::size_t n = remote[ri].len - roff;
      std::size_t ln = local[li].len - loff;
      if (ln < n) n = ln;
      std::memcpy(reinterpret_cast<void*>(remote[ri].addr + roff),
                  local[li].base + loff, n);
      roff += n;
      loff += n;
      copied += n;
    }
    return copied;
  }
  std::size_t copied = 0;
  std::size_t ri = 0, roff = 0, li = 0, loff = 0;
  while (ri < remote.size() && li < local.size()) {
    struct iovec liov[kIovMax], riov[kIovMax];
    std::size_t nl = 0, nr = 0, batch = 0;
    while (ri < remote.size() && li < local.size() && nl < kIovMax &&
           nr < kIovMax) {
      if (remote[ri].len == roff) {
        ++ri;
        roff = 0;
        continue;
      }
      if (local[li].len == loff) {
        ++li;
        loff = 0;
        continue;
      }
      std::size_t n = remote[ri].len - roff;
      std::size_t ln = local[li].len - loff;
      if (ln < n) n = ln;
      riov[nr].iov_base = reinterpret_cast<void*>(remote[ri].addr + roff);
      riov[nr].iov_len = n;
      ++nr;
      liov[nl].iov_base = const_cast<std::byte*>(local[li].base) + loff;
      liov[nl].iov_len = n;
      ++nl;
      roff += n;
      loff += n;
      batch += n;
    }
    if (batch == 0) break;
    ssize_t got = ::process_vm_writev(peer_pid_, liov, nl, riov, nr, 0);
    if (got < 0) throw SysError("process_vm_writev", errno);
    NEMO_ASSERT_MSG(static_cast<std::size_t>(got) == batch,
                    "short CMA write");
    copied += batch;
  }
  return copied;
}

}  // namespace nemo::shm
