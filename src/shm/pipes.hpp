// RAII Unix pipes plus the vmsplice/readv/writev primitives used by the
// vmsplice LMT backend (paper §3.1).
//
// The paper relies on the kernel's pipe buffer being 16 pages (64 KiB): the
// sender splice-attaches at most one window, then must wait for the receiver
// to drain it, which conveniently re-enters the Nemesis progress loop. We set
// the pipe size to 64 KiB explicitly to reproduce that flow control.
#pragma once

#include <cstddef>
#include <vector>

#include "common/common.hpp"
#include "common/iovec.hpp"

namespace nemo::shm {

/// Kernel pipe window the paper describes (PIPE_BUFFERS * 4 KiB).
inline constexpr std::size_t kPipeWindow = 64 * KiB;

class Pipe {
 public:
  /// Creates a nonblocking pipe; best-effort resize to kPipeWindow.
  static Pipe create();

  Pipe() = default;
  Pipe(const Pipe&) = delete;
  Pipe& operator=(const Pipe&) = delete;
  Pipe(Pipe&& o) noexcept { move_from(o); }
  Pipe& operator=(Pipe&& o) noexcept;
  ~Pipe();

  [[nodiscard]] bool valid() const { return rfd_ >= 0; }
  [[nodiscard]] int read_fd() const { return rfd_; }
  [[nodiscard]] int write_fd() const { return wfd_; }

  /// vmsplice as much of `seg` as the pipe accepts (zero-copy page attach).
  /// Returns bytes accepted; 0 when the pipe is full (EAGAIN).
  std::size_t vmsplice_some(ConstSegment seg) const;

  /// writev fallback — the "two copies" variant of Fig. 3.
  std::size_t writev_some(ConstSegment seg) const;

  /// readv as much as available into `seg`; 0 when the pipe is empty.
  std::size_t readv_some(Segment seg) const;

  /// True if this kernel supports vmsplice (probed once, cached).
  static bool vmsplice_available();

 private:
  void move_from(Pipe& o) {
    rfd_ = o.rfd_;
    wfd_ = o.wfd_;
    o.rfd_ = o.wfd_ = -1;
  }
  int rfd_ = -1;
  int wfd_ = -1;
};

/// One pipe per ordered rank pair (src -> dst), created before ranks spawn so
/// forked children inherit the descriptors — mirroring how an MPI launcher
/// would set up the channel.
class PipeMatrix {
 public:
  explicit PipeMatrix(int nranks);

  [[nodiscard]] int nranks() const { return nranks_; }
  /// The pipe carrying src -> dst traffic.
  [[nodiscard]] const Pipe& get(int src, int dst) const {
    NEMO_ASSERT(src != dst && src >= 0 && dst >= 0 && src < nranks_ &&
                dst < nranks_);
    return pipes_[static_cast<std::size_t>(src) *
                      static_cast<std::size_t>(nranks_) +
                  static_cast<std::size_t>(dst)];
  }

 private:
  int nranks_;
  std::vector<Pipe> pipes_;
};

}  // namespace nemo::shm
