#include "shm/arena.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace nemo::shm {

Arena Arena::create_anonymous(std::size_t bytes) {
  bytes = round_up(bytes, 4096);
  void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) throw SysError("mmap(anonymous arena)", errno);
  Arena a;
  a.base_ = static_cast<std::byte*>(p);
  a.size_ = bytes;
  a.owner_ = true;
  a.init_header();
  return a;
}

Arena Arena::create_shm(const std::string& name, std::size_t bytes) {
  NEMO_ASSERT(!name.empty() && name.front() == '/');
  bytes = round_up(bytes, 4096);
  int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) throw SysError("shm_open(" + name + ")", errno);
  if (::ftruncate(fd, static_cast<off_t>(bytes)) < 0) {
    int e = errno;
    ::close(fd);
    ::shm_unlink(name.c_str());
    throw SysError("ftruncate(" + name + ")", e);
  }
  void* p =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  int e = errno;
  ::close(fd);
  if (p == MAP_FAILED) {
    ::shm_unlink(name.c_str());
    throw SysError("mmap(" + name + ")", e);
  }
  Arena a;
  a.base_ = static_cast<std::byte*>(p);
  a.size_ = bytes;
  a.shm_name_ = name;
  a.owner_ = true;
  a.init_header();
  return a;
}

Arena Arena::open_shm(const std::string& name) {
  int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
  if (fd < 0) throw SysError("shm_open(" + name + ")", errno);
  struct stat st{};
  if (::fstat(fd, &st) < 0) {
    int e = errno;
    ::close(fd);
    throw SysError("fstat(" + name + ")", e);
  }
  auto bytes = static_cast<std::size_t>(st.st_size);
  void* p =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  int e = errno;
  ::close(fd);
  if (p == MAP_FAILED) throw SysError("mmap(" + name + ")", e);
  Arena a;
  a.base_ = static_cast<std::byte*>(p);
  a.size_ = bytes;
  a.shm_name_ = name;
  a.owner_ = false;
  NEMO_ASSERT_MSG(a.header()->magic == kMagic, "not a nemolmt arena");
  return a;
}

void Arena::init_header() {
  auto* h = header();
  h->magic = kMagic;
  h->size = size_;
  // Offset 0 is the header; allocations start after it so offset 0 can act
  // as the null sentinel kNil.
  aref(h->alloc_next)
      .store(round_up(sizeof(Header), kCacheLine), std::memory_order_release);
}

std::uint64_t Arena::alloc(std::size_t bytes, std::size_t align) {
  NEMO_ASSERT(is_pow2(align) && align >= 8);
  NEMO_ASSERT(bytes > 0);
  auto* h = header();
  auto next = aref(h->alloc_next);
  std::uint64_t cur = next.load(std::memory_order_relaxed);
  for (;;) {
    std::uint64_t start = round_up(cur, align);
    std::uint64_t end = start + bytes;
    NEMO_ASSERT_MSG(end <= size_, "arena exhausted: raise Config::arena_bytes");
    if (next.compare_exchange_weak(cur, end, std::memory_order_acq_rel))
      return start;
  }
}

std::size_t Arena::remaining() const {
  auto* h = header();
  std::uint64_t cur = aref(h->alloc_next).load(std::memory_order_acquire);
  return cur >= size_ ? 0 : size_ - cur;
}

void Arena::destroy() {
  if (base_ != nullptr) {
    ::munmap(base_, size_);
    if (owner_ && !shm_name_.empty()) ::shm_unlink(shm_name_.c_str());
  }
  base_ = nullptr;
  size_ = 0;
}

}  // namespace nemo::shm
