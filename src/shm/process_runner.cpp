#include "shm/process_runner.hpp"

#include <sched.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>

#include "common/common.hpp"

namespace nemo::shm {

ProcessResult run_forked_ranks(int nranks, const std::function<int(int)>& fn,
                               const DeathHook& on_death) {
  NEMO_ASSERT(nranks >= 1);
  std::vector<pid_t> pids(static_cast<std::size_t>(nranks), -1);
  // One pipe per child carries the "an exception escaped" flag out-of-band:
  // the 8-bit exit status cannot distinguish fn returning 121 from the
  // catch-all below, and ranks may legitimately return any code.
  std::vector<int> exc_fds(static_cast<std::size_t>(nranks), -1);
  for (int r = 0; r < nranks; ++r) {
    int pfd[2];
    NEMO_SYSCHECK(::pipe(pfd), "pipe");
    pid_t pid = ::fork();
    NEMO_SYSCHECK(pid, "fork");
    if (pid == 0) {
      // Only this child's own exception pipe stays open for writing.
      ::close(pfd[0]);
      for (int fd : exc_fds)
        if (fd >= 0) ::close(fd);
      int code = 120;
      try {
        code = fn(r);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "rank %d: uncaught exception: %s\n", r, e.what());
        code = 121;
        [[maybe_unused]] ssize_t n = ::write(pfd[1], "E", 1);
      } catch (...) {
        std::fprintf(stderr, "rank %d: uncaught exception\n", r);
        code = 121;
        [[maybe_unused]] ssize_t n = ::write(pfd[1], "E", 1);
      }
      std::fflush(nullptr);
      ::_exit(code);
    }
    ::close(pfd[1]);
    exc_fds[static_cast<std::size_t>(r)] = pfd[0];
    pids[static_cast<std::size_t>(r)] = pid;
  }

  ProcessResult res;
  res.exit_codes.assign(static_cast<std::size_t>(nranks), -1);
  res.uncaught.assign(static_cast<std::size_t>(nranks), false);
  res.all_ok = true;
  // Reap in death order, not rank order: waiting on rank 0 first would
  // defer noticing a SIGKILLed rank 3 until everything ahead of it exited —
  // exactly the window the liveness layer needs to be small.
  for (int reaped = 0; reaped < nranks; ++reaped) {
    int status = 0;
    pid_t got = ::waitpid(-1, &status, 0);
    if (got < 0) {
      // ECHILD with ranks outstanding: mark them all failed and stop.
      for (int i = 0; i < nranks; ++i)
        if (pids[static_cast<std::size_t>(i)] >= 0) {
          res.exit_codes[static_cast<std::size_t>(i)] = 122;
          ::close(exc_fds[static_cast<std::size_t>(i)]);
        }
      res.all_ok = false;
      break;
    }
    int r = -1;
    for (int i = 0; i < nranks; ++i)
      if (pids[static_cast<std::size_t>(i)] == got) {
        r = i;
        break;
      }
    if (r < 0) {
      // Not one of ours (a library's stray child); don't count it.
      --reaped;
      continue;
    }
    int code;
    if (WIFEXITED(status))
      code = WEXITSTATUS(status);
    else if (WIFSIGNALED(status))
      code = 256 + WTERMSIG(status);
    else
      code = 123;
    pids[static_cast<std::size_t>(r)] = -1;
    res.exit_codes[static_cast<std::size_t>(r)] = code;
    // The child is reaped, so the pipe either holds the flag byte or EOF.
    char flag = 0;
    int fd = exc_fds[static_cast<std::size_t>(r)];
    res.uncaught[static_cast<std::size_t>(r)] = ::read(fd, &flag, 1) == 1;
    ::close(fd);
    if (code != 0) res.all_ok = false;
    if (on_death) on_death(r, code);
  }
  return res;
}

bool pin_self_to_core(int core) {
  if (core < 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core, &set);
  return ::sched_setaffinity(0, sizeof(set), &set) == 0;
}

int available_cores() {
  cpu_set_t set;
  CPU_ZERO(&set);
  if (::sched_getaffinity(0, sizeof(set), &set) != 0) return 1;
  int n = CPU_COUNT(&set);
  return n > 0 ? n : 1;
}

AffinitySnapshot save_affinity() {
  AffinitySnapshot snap;
  CPU_ZERO(&snap.set);
  snap.valid = ::sched_getaffinity(0, sizeof(snap.set), &snap.set) == 0;
  return snap;
}

void restore_affinity(const AffinitySnapshot& snap) {
  if (snap.valid) ::sched_setaffinity(0, sizeof(snap.set), &snap.set);
}

}  // namespace nemo::shm
