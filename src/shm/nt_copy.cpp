#include "shm/nt_copy.hpp"

#include <unistd.h>

#include <cstdint>
#include <cstring>

#include "common/common.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <emmintrin.h>
#define NEMO_HAVE_SSE2 1
#else
#define NEMO_HAVE_SSE2 0
#endif

namespace nemo::shm {

bool nt_copy_available() { return NEMO_HAVE_SSE2 != 0; }

void cached_memcpy(void* dst, const void* src, std::size_t n) {
  std::memcpy(dst, src, n);
}

std::size_t nt_default_threshold() {
  static const std::size_t cached = [] {
    long llc = 0;
#ifdef _SC_LEVEL3_CACHE_SIZE
    llc = ::sysconf(_SC_LEVEL3_CACHE_SIZE);
#endif
#ifdef _SC_LEVEL2_CACHE_SIZE
    if (llc <= 0) llc = ::sysconf(_SC_LEVEL2_CACHE_SIZE);
#endif
    if (llc <= 0) llc = static_cast<long>(16 * MiB);
    return static_cast<std::size_t>(llc) / 2;
  }();
  return cached;
}

#if NEMO_HAVE_SSE2

void nt_memcpy(void* dst, const void* src, std::size_t n) {
  auto* d = static_cast<unsigned char*>(dst);
  auto* s = static_cast<const unsigned char*>(src);

  // Head: align the destination to 16 bytes with a scalar copy.
  std::size_t head =
      (16 - (reinterpret_cast<std::uintptr_t>(d) & 15)) & 15;
  if (head > n) head = n;
  if (head) {
    std::memcpy(d, s, head);
    d += head;
    s += head;
    n -= head;
  }

  // Bulk: 64 bytes per iteration with movntdq (unaligned loads are fine).
  std::size_t blocks = n / 64;
  for (std::size_t i = 0; i < blocks; ++i) {
    __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + 0));
    __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + 16));
    __m128i c = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + 32));
    __m128i e = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + 48));
    _mm_stream_si128(reinterpret_cast<__m128i*>(d + 0), a);
    _mm_stream_si128(reinterpret_cast<__m128i*>(d + 16), b);
    _mm_stream_si128(reinterpret_cast<__m128i*>(d + 32), c);
    _mm_stream_si128(reinterpret_cast<__m128i*>(d + 48), e);
    d += 64;
    s += 64;
  }
  n -= blocks * 64;

  // Tail.
  if (n) std::memcpy(d, s, n);
  _mm_sfence();
}

#else

void nt_memcpy(void* dst, const void* src, std::size_t n) {
  std::memcpy(dst, src, n);
}

#endif

}  // namespace nemo::shm
