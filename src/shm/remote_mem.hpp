// Access to a peer rank's memory — the capability a KNEM-style kernel module
// provides. Two implementations:
//
//  - kDirect: peers share this address space (thread mode, or buffers inside
//    the shared arena). The copy is a plain or non-temporal load/store loop
//    executed by the calling core — the analogue of KNEM's kernel copy
//    executed on the receiver core.
//  - kCma:    cross-memory attach (process_vm_readv/writev), the mainline-
//    kernel descendant of KNEM: a single kernel-mediated copy between
//    separate address spaces, identified by pid.
//
// Remote buffers are described by numeric addresses (RemoteSegment), never by
// pointers, since they may belong to another address space.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <span>
#include <vector>

#include "common/iovec.hpp"

namespace nemo::shm {

struct RemoteSegment {
  std::uint64_t addr = 0;
  std::uint64_t len = 0;
};

using RemoteSegmentList = std::vector<RemoteSegment>;

inline std::uint64_t total_bytes(std::span<const RemoteSegment> v) {
  std::uint64_t n = 0;
  for (const auto& s : v) n += s.len;
  return n;
}

enum class RemoteMode {
  kDirect,  ///< Same address space: direct loads.
  kCma,     ///< process_vm_readv/writev against a pid.
};

const char* to_string(RemoteMode m);

/// Whether CMA syscalls work in this environment (kernel + ptrace policy).
/// Probed once against our own pid.
bool cma_available();

class RemoteMemPort {
 public:
  RemoteMemPort(RemoteMode mode, pid_t peer_pid)
      : mode_(mode), peer_pid_(peer_pid) {}

  [[nodiscard]] RemoteMode mode() const { return mode_; }
  [[nodiscard]] pid_t peer_pid() const { return peer_pid_; }

  /// Copy remote -> local. When `non_temporal` and the mode allows it, the
  /// destination is written with streaming stores (no cache fill) — the
  /// I/OAT-like path. Returns bytes copied (== min of totals).
  std::size_t read(std::span<const RemoteSegment> remote,
                   std::span<const Segment> local,
                   bool non_temporal = false) const;

  /// Copy local -> remote (used by the one-sided tests; KNEM's recv command
  /// only ever reads).
  std::size_t write(std::span<const RemoteSegment> remote,
                    std::span<const ConstSegment> local) const;

 private:
  RemoteMode mode_;
  pid_t peer_pid_;
};

}  // namespace nemo::shm
