#include "shm/numa.hpp"

#include <dirent.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "common/common.hpp"
#include "common/options.hpp"

#if defined(__linux__)
#include <sys/syscall.h>
#if defined(SYS_mbind)
#define NEMO_HAVE_MBIND 1
// Mirror the linux/mempolicy.h constants we need; including the uapi header
// directly drags in kernel-version variance for three small enums.
#define NEMO_MPOL_PREFERRED 1
#define NEMO_MPOL_INTERLEAVE 3
#define NEMO_MPOL_MF_MOVE (1 << 1)
#endif
#endif
#ifndef NEMO_HAVE_MBIND
#define NEMO_HAVE_MBIND 0
#endif

namespace nemo::shm {

const char* to_string(NumaPlacement p) {
  switch (p) {
    case NumaPlacement::kAuto: return "auto";
    case NumaPlacement::kReceiver: return "receiver";
    case NumaPlacement::kSender: return "sender";
    case NumaPlacement::kInterleave: return "interleave";
    case NumaPlacement::kFirstTouch: return "first-touch";
  }
  return "?";
}

std::optional<NumaPlacement> numa_placement_from_string(const std::string& s) {
  if (s == "auto") return NumaPlacement::kAuto;
  if (s == "receiver") return NumaPlacement::kReceiver;
  if (s == "sender") return NumaPlacement::kSender;
  if (s == "interleave") return NumaPlacement::kInterleave;
  if (s == "first-touch" || s == "firsttouch")
    return NumaPlacement::kFirstTouch;
  return std::nullopt;
}

NumaPlacement numa_placement_from_env(NumaPlacement def) {
  auto v = nemo::Config::str("NEMO_NUMA_PLACEMENT");
  if (!v) return def;
  if (auto p = numa_placement_from_string(*v)) return *p;
  throw std::invalid_argument(
      "NEMO_NUMA_PLACEMENT: unknown mode '" + *v +
      "' (auto|receiver|sender|interleave|first-touch)");
}

RegionPlacement choose_region_placement(NumaPlacement mode,
                                        const Topology& topo, int sender_core,
                                        int recv_core) {
  RegionPlacement r;
  if (mode == NumaPlacement::kFirstTouch) return r;
  if (mode == NumaPlacement::kInterleave) {
    r.interleave = true;
    return r;
  }
  bool known = sender_core >= 0 && sender_core < topo.num_cores &&
               recv_core >= 0 && recv_core < topo.num_cores;
  if (!known) return r;  // Nothing to bind to: first-touch.
  int snode = topo.numa_node_of(sender_core);
  int rnode = topo.numa_node_of(recv_core);
  switch (mode) {
    case NumaPlacement::kReceiver:
      r.node = rnode;
      break;
    case NumaPlacement::kSender:
      r.node = snode;
      break;
    case NumaPlacement::kAuto:
      // Cross-node pairs: the receiver's copy #2 walks every line of the
      // ring; keep those reads local and charge the sender the remote
      // stores (which copy #1 streams past its cache anyway).
      if (snode != rnode) r.node = rnode;
      break;
    case NumaPlacement::kInterleave:
    case NumaPlacement::kFirstTouch:
      break;  // Handled above.
  }
  return r;
}

namespace {

/// Bitmask of NUMA node ids present under /sys/devices/system/node
/// (directory scan, so sparse/non-contiguous ids are represented too).
/// 0 when sysfs exposes nothing; nodes >= 64 are ignored (mbind mask word).
unsigned long host_node_mask() {
  static const unsigned long mask = [] {
    unsigned long m = 0;
    DIR* d = ::opendir("/sys/devices/system/node");
    if (d == nullptr) return m;
    while (dirent* e = ::readdir(d)) {
      const char* name = e->d_name;
      if (std::strncmp(name, "node", 4) != 0) continue;
      char* end = nullptr;
      long id = std::strtol(name + 4, &end, 10);
      if (end == name + 4 || *end != '\0') continue;
      if (id >= 0 && id < static_cast<long>(8 * sizeof(unsigned long)))
        m |= 1ul << id;
    }
    ::closedir(d);
    return m;
  }();
  return mask;
}

int popcount_ul(unsigned long v) {
  int n = 0;
  for (; v != 0; v &= v - 1) ++n;
  return n;
}

}  // namespace

int host_numa_nodes() {
  int n = popcount_ul(host_node_mask());
  return n > 0 ? n : 1;
}

bool numa_bind_available() {
  if (!NEMO_HAVE_MBIND) return false;
  if (host_numa_nodes() < 2) return false;
  return nemo::Config::flag("NEMO_NUMA", true);
}

namespace {

/// Shrink [p, p+len) inward to whole pages; false when nothing remains.
bool page_range(void*& p, std::size_t& len) {
  const std::size_t page = 4096;
  auto addr = reinterpret_cast<std::uintptr_t>(p);
  std::uintptr_t start = round_up(addr, page);
  std::uintptr_t end = (addr + len) & ~(page - 1);
  if (end <= start) return false;
  p = reinterpret_cast<void*>(start);
  len = end - start;
  return true;
}

#if NEMO_HAVE_MBIND
bool mbind_range(void* p, std::size_t len, int mode, unsigned long mask) {
  // maxnode is the mask's bit count + 1 (the +1 matches libnuma's calling
  // convention; some kernels reject an exact bit count).
  const unsigned long maxnode = 8 * sizeof(unsigned long) + 1;
  long rc = ::syscall(SYS_mbind, p, len, mode, &mask, maxnode,
                      static_cast<unsigned>(NEMO_MPOL_MF_MOVE));
  if (rc != 0)  // Retry without moving already-touched pages.
    rc = ::syscall(SYS_mbind, p, len, mode, &mask, maxnode, 0u);
  return rc == 0;
}
#endif

}  // namespace

bool bind_to_node(void* p, std::size_t len, int node) {
  if (!numa_bind_available()) return false;
  // The target must actually exist on this host (node ids can be sparse).
  if (node < 0 || node >= static_cast<int>(8 * sizeof(unsigned long)) ||
      (host_node_mask() & (1ul << node)) == 0)
    return false;
  if (!page_range(p, len)) return true;  // Sub-page region: nothing to do.
#if NEMO_HAVE_MBIND
  return mbind_range(p, len, NEMO_MPOL_PREFERRED, 1ul << node);
#else
  return false;
#endif
}

bool interleave(void* p, std::size_t len) {
  if (!numa_bind_available()) return false;
  if (!page_range(p, len)) return true;
#if NEMO_HAVE_MBIND
  // Interleave only across nodes that exist — a bit for an absent node id
  // would make mbind return EINVAL on sparse layouts.
  return mbind_range(p, len, NEMO_MPOL_INTERLEAVE, host_node_mask());
#else
  return false;
#endif
}

}  // namespace nemo::shm
