// The double-buffered copy ring implementing Nemesis' *default* LMT: the
// two-copy shared-memory scheme the paper improves upon.
//
// One ring exists per ordered rank pair. The sender copies message chunks
// into ring buffers (copy #1); the receiver copies them out into the user
// buffer (copy #2). With >= 2 buffers the two copies pipeline, which is
// exactly the "double-buffering strategy" whose cache pollution and CPU cost
// the paper measures.
//
// SPSC by construction (fixed sender, fixed receiver), so plain
// acquire/release on a per-slot sequence word suffices.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <optional>

#include "common/common.hpp"
#include "shm/arena.hpp"
#include "shm/nt_copy.hpp"

namespace nemo::shm {

struct CopyRingSlot {
  alignas(kCacheLine) std::uint64_t seq;  ///< Even = empty, odd = full.
  std::uint32_t bytes;                    ///< Valid bytes in buf.
  std::uint32_t last;                     ///< Nonzero on final chunk.
};

struct CopyRingState {
  std::uint32_t nbufs;
  std::uint32_t buf_bytes;
  std::uint64_t slots_off;  ///< nbufs CopyRingSlot.
  std::uint64_t data_off;   ///< nbufs * buf_bytes payload area.
};

/// View over one ordered-pair ring. Sender and receiver each track their own
/// cursor (local, not shared) in SenderCursor/ReceiverCursor.
class CopyRing {
 public:
  static constexpr std::uint32_t kDefaultBufBytes = 32 * KiB;
  static constexpr std::uint32_t kDefaultBufs = 2;

  /// Allocate + initialise a ring in the arena; returns CopyRingState offset.
  /// With `page_align_data`, the payload area is carved as whole pages so
  /// the caller can mbind it (NUMA placement) without touching neighbours.
  static std::uint64_t create(Arena& arena,
                              std::uint32_t nbufs = kDefaultBufs,
                              std::uint32_t buf_bytes = kDefaultBufBytes,
                              bool page_align_data = false) {
    NEMO_ASSERT(nbufs >= 1 && buf_bytes >= kCacheLine);
    std::uint64_t st_off = arena.alloc(sizeof(CopyRingState), kCacheLine);
    auto* st = arena.at_as<CopyRingState>(st_off);
    st->nbufs = nbufs;
    st->buf_bytes = buf_bytes;
    st->slots_off = arena.alloc(sizeof(CopyRingSlot) * nbufs, kCacheLine);
    std::size_t data_bytes = static_cast<std::size_t>(nbufs) * buf_bytes;
    st->data_off = page_align_data ? arena.alloc_pages(data_bytes)
                                   : arena.alloc(data_bytes, kCacheLine);
    for (std::uint32_t i = 0; i < nbufs; ++i) {
      auto* slot = arena.at_as<CopyRingSlot>(st->slots_off +
                                             i * sizeof(CopyRingSlot));
      aref(slot->seq).store(0, std::memory_order_release);
      slot->bytes = 0;
      slot->last = 0;
    }
    return st_off;
  }

  CopyRing(Arena& arena, std::uint64_t state_off)
      : arena_(&arena), st_(arena.at_as<CopyRingState>(state_off)) {}

  [[nodiscard]] std::uint32_t nbufs() const { return st_->nbufs; }
  [[nodiscard]] std::uint32_t buf_bytes() const { return st_->buf_bytes; }
  /// Payload area [offset, bytes) — the range NUMA placement binds.
  [[nodiscard]] std::uint64_t data_off() const { return st_->data_off; }
  [[nodiscard]] std::size_t data_bytes() const {
    return static_cast<std::size_t>(st_->nbufs) * st_->buf_bytes;
  }

  CopyRingSlot* slot(std::uint32_t i) const {
    return arena_->at_as<CopyRingSlot>(st_->slots_off +
                                       (i % st_->nbufs) * sizeof(CopyRingSlot));
  }
  std::byte* buf(std::uint32_t i) const {
    return arena_->at(st_->data_off) +
           static_cast<std::size_t>(i % st_->nbufs) * st_->buf_bytes;
  }

  /// Sender side: try to publish up to buf_bytes from `src`. `cursor` is the
  /// sender's monotonically increasing chunk index. Returns bytes accepted
  /// (0 if the slot is still full — caller should progress and retry).
  /// With `nt`, the copy into the ring buffer uses streaming stores so a
  /// large transfer does not evict the sender's working set (the nt_memcpy
  /// sfence doubles as the release fence for the seq publish).
  std::size_t try_push(std::uint64_t& cursor, const std::byte* src,
                       std::size_t len, bool last, bool nt = false) {
    CopyRingSlot* s = slot(static_cast<std::uint32_t>(cursor % st_->nbufs));
    std::uint64_t expected_empty = 2 * (cursor / st_->nbufs);
    if (aref(s->seq).load(std::memory_order_acquire) != expected_empty)
      return 0;
    std::size_t n = len < st_->buf_bytes ? len : st_->buf_bytes;
    copy_for(nt, buf(static_cast<std::uint32_t>(cursor % st_->nbufs)), src, n);
    s->bytes = static_cast<std::uint32_t>(n);
    s->last = (last && n == len) ? 1u : 0u;
    aref(s->seq).store(expected_empty + 1, std::memory_order_release);
    ++cursor;
    return n;
  }

  /// Receiver side: try to consume the next chunk into `dst` (capacity must
  /// be >= buf_bytes). Returns bytes consumed, sets `last`. 0 = not ready.
  /// With `nt`, the store into `dst` streams past the receiver's cache.
  std::size_t try_pop(std::uint64_t& cursor, std::byte* dst, bool& last,
                      bool nt = false) {
    CopyRingSlot* s = slot(static_cast<std::uint32_t>(cursor % st_->nbufs));
    std::uint64_t expected_full = 2 * (cursor / st_->nbufs) + 1;
    if (aref(s->seq).load(std::memory_order_acquire) != expected_full)
      return 0;
    std::size_t n = s->bytes;
    copy_for(nt, dst, buf(static_cast<std::uint32_t>(cursor % st_->nbufs)), n);
    last = s->last != 0;
    aref(s->seq).store(expected_full + 1, std::memory_order_release);
    ++cursor;
    return n;
  }

  /// Receiver side, scatter-aware variant: expose the filled buffer without
  /// copying. Returns nullptr when the slot is not ready. After consuming the
  /// bytes, call release() to return the slot to the sender.
  struct View {
    const std::byte* data;
    std::size_t bytes;
    bool last;
  };
  [[nodiscard]] std::optional<View> peek(std::uint64_t cursor) const {
    CopyRingSlot* s = slot(static_cast<std::uint32_t>(cursor % st_->nbufs));
    std::uint64_t expected_full = 2 * (cursor / st_->nbufs) + 1;
    if (aref(s->seq).load(std::memory_order_acquire) != expected_full)
      return std::nullopt;
    return View{buf(static_cast<std::uint32_t>(cursor % st_->nbufs)), s->bytes,
                s->last != 0};
  }
  void release(std::uint64_t& cursor) {
    CopyRingSlot* s = slot(static_cast<std::uint32_t>(cursor % st_->nbufs));
    std::uint64_t expected_full = 2 * (cursor / st_->nbufs) + 1;
    NEMO_ASSERT(aref(s->seq).load(std::memory_order_relaxed) == expected_full);
    aref(s->seq).store(expected_full + 1, std::memory_order_release);
    ++cursor;
  }

  /// Sender side: true when every chunk the sender published before `cursor`
  /// has been drained by the receiver (the slot preceding `cursor` is empty
  /// for the *next* lap). Used to complete the send locally without a FIN.
  [[nodiscard]] bool drained(std::uint64_t cursor) const {
    if (cursor == 0) return true;
    std::uint64_t last_idx = cursor - 1;
    CopyRingSlot* s = slot(static_cast<std::uint32_t>(last_idx % st_->nbufs));
    std::uint64_t emptied = 2 * (last_idx / st_->nbufs) + 2;
    return aref(s->seq).load(std::memory_order_acquire) >= emptied;
  }

 private:
  Arena* arena_;
  CopyRingState* st_;
};

}  // namespace nemo::shm
