#include "shm/pipes.hpp"

// g++ defines _GNU_SOURCE for C++ targets, giving us vmsplice/pipe2.
#include <fcntl.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>

namespace nemo::shm {

Pipe Pipe::create() {
  int fds[2];
  NEMO_SYSCHECK(::pipe2(fds, O_NONBLOCK), "pipe2");
  Pipe p;
  p.rfd_ = fds[0];
  p.wfd_ = fds[1];
#ifdef F_SETPIPE_SZ
  // Best effort: match the paper's 64 KiB kernel window. Failure (e.g.
  // pipe-user-pages-soft pressure) leaves the kernel default, which is fine.
  (void)::fcntl(p.wfd_, F_SETPIPE_SZ, static_cast<int>(kPipeWindow));
#endif
  return p;
}

Pipe& Pipe::operator=(Pipe&& o) noexcept {
  if (this != &o) {
    this->~Pipe();
    move_from(o);
  }
  return *this;
}

Pipe::~Pipe() {
  if (rfd_ >= 0) ::close(rfd_);
  if (wfd_ >= 0) ::close(wfd_);
  rfd_ = wfd_ = -1;
}

std::size_t Pipe::vmsplice_some(ConstSegment seg) const {
  if (seg.len == 0) return 0;
  struct iovec iov {
    const_cast<std::byte*>(seg.base), seg.len
  };
  ssize_t n = ::vmsplice(wfd_, &iov, 1, SPLICE_F_NONBLOCK);
  if (n < 0) {
    if (errno == EAGAIN) return 0;
    throw SysError("vmsplice", errno);
  }
  return static_cast<std::size_t>(n);
}

std::size_t Pipe::writev_some(ConstSegment seg) const {
  if (seg.len == 0) return 0;
  struct iovec iov {
    const_cast<std::byte*>(seg.base), seg.len
  };
  ssize_t n = ::writev(wfd_, &iov, 1);
  if (n < 0) {
    if (errno == EAGAIN) return 0;
    throw SysError("writev(pipe)", errno);
  }
  return static_cast<std::size_t>(n);
}

std::size_t Pipe::readv_some(Segment seg) const {
  if (seg.len == 0) return 0;
  struct iovec iov {
    seg.base, seg.len
  };
  ssize_t n = ::readv(rfd_, &iov, 1);
  if (n < 0) {
    if (errno == EAGAIN) return 0;
    throw SysError("readv(pipe)", errno);
  }
  return static_cast<std::size_t>(n);
}

bool Pipe::vmsplice_available() {
  static const bool ok = [] {
    try {
      Pipe p = Pipe::create();
      char c = 7;
      struct iovec iov {
        &c, 1
      };
      ssize_t n = ::vmsplice(p.write_fd(), &iov, 1, SPLICE_F_NONBLOCK);
      if (n != 1) return false;
      char out = 0;
      return p.readv_some({reinterpret_cast<std::byte*>(&out), 1}) == 1 &&
             out == 7;
    } catch (...) {
      return false;
    }
  }();
  return ok;
}

PipeMatrix::PipeMatrix(int nranks) : nranks_(nranks) {
  NEMO_ASSERT(nranks >= 1);
  pipes_.resize(static_cast<std::size_t>(nranks) *
                static_cast<std::size_t>(nranks));
  for (int s = 0; s < nranks; ++s)
    for (int d = 0; d < nranks; ++d)
      if (s != d)
        pipes_[static_cast<std::size_t>(s) * static_cast<std::size_t>(nranks) +
               static_cast<std::size_t>(d)] = Pipe::create();
}

}  // namespace nemo::shm
