// AVX-512F fold kernels: 512-bit vertical element-wise combines with
// unaligned loads/stores and a scalar remainder loop. Built with -mavx512f
// when the compiler can target it; otherwise stubbed to the plain loop and
// avx512_compiled() reports the gap so dispatch never selects this kernel.
//
// Only the F subset is assumed: int64 min/max exist there
// (VPMINSQ/VPMAXSQ), but the 64-bit lane multiply (VPMULLQ) is AVX-512DQ,
// so int64 prod stays on the plain loop — same policy as the AVX2 kernel.
#include "simd/simd.hpp"

#include "simd/fold_inl.hpp"

#if defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace nemo::simd::detail {

#if defined(__AVX512F__)

bool avx512_compiled() noexcept { return true; }

void fold_avx512(Op op, double* dst, const double* src, std::size_t n) {
  std::size_t i = 0;
  switch (op) {
    case Op::kSum:
      for (; i + 8 <= n; i += 8)
        _mm512_storeu_pd(dst + i, _mm512_add_pd(_mm512_loadu_pd(dst + i),
                                                _mm512_loadu_pd(src + i)));
      break;
    case Op::kProd:
      for (; i + 8 <= n; i += 8)
        _mm512_storeu_pd(dst + i, _mm512_mul_pd(_mm512_loadu_pd(dst + i),
                                                _mm512_loadu_pd(src + i)));
      break;
    case Op::kMin:
      // (dst, src) operand order: second operand returned on ties/NaN,
      // matching the scalar ternary `d < s ? d : s`.
      for (; i + 8 <= n; i += 8)
        _mm512_storeu_pd(dst + i, _mm512_min_pd(_mm512_loadu_pd(dst + i),
                                                _mm512_loadu_pd(src + i)));
      break;
    case Op::kMax:
      for (; i + 8 <= n; i += 8)
        _mm512_storeu_pd(dst + i, _mm512_max_pd(_mm512_loadu_pd(dst + i),
                                                _mm512_loadu_pd(src + i)));
      break;
  }
  fold_plain(op, dst + i, src + i, n - i);
}

void fold_avx512(Op op, float* dst, const float* src, std::size_t n) {
  std::size_t i = 0;
  switch (op) {
    case Op::kSum:
      for (; i + 16 <= n; i += 16)
        _mm512_storeu_ps(dst + i, _mm512_add_ps(_mm512_loadu_ps(dst + i),
                                                _mm512_loadu_ps(src + i)));
      break;
    case Op::kProd:
      for (; i + 16 <= n; i += 16)
        _mm512_storeu_ps(dst + i, _mm512_mul_ps(_mm512_loadu_ps(dst + i),
                                                _mm512_loadu_ps(src + i)));
      break;
    case Op::kMin:
      for (; i + 16 <= n; i += 16)
        _mm512_storeu_ps(dst + i, _mm512_min_ps(_mm512_loadu_ps(dst + i),
                                                _mm512_loadu_ps(src + i)));
      break;
    case Op::kMax:
      for (; i + 16 <= n; i += 16)
        _mm512_storeu_ps(dst + i, _mm512_max_ps(_mm512_loadu_ps(dst + i),
                                                _mm512_loadu_ps(src + i)));
      break;
  }
  fold_plain(op, dst + i, src + i, n - i);
}

void fold_avx512(Op op, std::int64_t* dst, const std::int64_t* src,
                 std::size_t n) {
  if (op == Op::kProd) {
    fold_plain(op, dst, src, n);
    return;
  }
  std::size_t i = 0;
  switch (op) {
    case Op::kSum:
      for (; i + 8 <= n; i += 8)
        _mm512_storeu_si512(dst + i,
                            _mm512_add_epi64(_mm512_loadu_si512(dst + i),
                                             _mm512_loadu_si512(src + i)));
      break;
    case Op::kMin:
      for (; i + 8 <= n; i += 8)
        _mm512_storeu_si512(dst + i,
                            _mm512_min_epi64(_mm512_loadu_si512(dst + i),
                                             _mm512_loadu_si512(src + i)));
      break;
    case Op::kMax:
      for (; i + 8 <= n; i += 8)
        _mm512_storeu_si512(dst + i,
                            _mm512_max_epi64(_mm512_loadu_si512(dst + i),
                                             _mm512_loadu_si512(src + i)));
      break;
    case Op::kProd:
      break;  // Returned above.
  }
  fold_plain(op, dst + i, src + i, n - i);
}

void fold_avx512(Op op, std::int32_t* dst, const std::int32_t* src,
                 std::size_t n) {
  std::size_t i = 0;
  switch (op) {
    case Op::kSum:
      for (; i + 16 <= n; i += 16)
        _mm512_storeu_si512(dst + i,
                            _mm512_add_epi32(_mm512_loadu_si512(dst + i),
                                             _mm512_loadu_si512(src + i)));
      break;
    case Op::kProd:
      for (; i + 16 <= n; i += 16)
        _mm512_storeu_si512(dst + i,
                            _mm512_mullo_epi32(_mm512_loadu_si512(dst + i),
                                               _mm512_loadu_si512(src + i)));
      break;
    case Op::kMin:
      for (; i + 16 <= n; i += 16)
        _mm512_storeu_si512(dst + i,
                            _mm512_min_epi32(_mm512_loadu_si512(dst + i),
                                             _mm512_loadu_si512(src + i)));
      break;
    case Op::kMax:
      for (; i + 16 <= n; i += 16)
        _mm512_storeu_si512(dst + i,
                            _mm512_max_epi32(_mm512_loadu_si512(dst + i),
                                             _mm512_loadu_si512(src + i)));
      break;
  }
  fold_plain(op, dst + i, src + i, n - i);
}

#else  // !defined(__AVX512F__)

bool avx512_compiled() noexcept { return false; }

void fold_avx512(Op op, double* dst, const double* src, std::size_t n) {
  fold_plain(op, dst, src, n);
}
void fold_avx512(Op op, float* dst, const float* src, std::size_t n) {
  fold_plain(op, dst, src, n);
}
void fold_avx512(Op op, std::int64_t* dst, const std::int64_t* src,
                 std::size_t n) {
  fold_plain(op, dst, src, n);
}
void fold_avx512(Op op, std::int32_t* dst, const std::int32_t* src,
                 std::size_t n) {
  fold_plain(op, dst, src, n);
}

#endif

}  // namespace nemo::simd::detail
