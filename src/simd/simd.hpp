// Runtime-dispatched vectorized reduction kernels — the compute half of the
// collectives (the copy half lives in shm/nt_copy). Every kernel performs
// the same element-wise vertical fold dst[i] = op(dst[i], src[i]); there is
// no horizontal reassociation, so results are bit-identical to the scalar
// loop for every dtype including floating point, and the collectives' fixed
// ascending-rank fold order is preserved no matter which kernel the
// dispatcher picks.
//
// Dispatch order is AVX-512 -> AVX2 -> scalar, decided once per Engine from
// CPUID (__builtin_cpu_supports) and overridable via the tuning table's
// simd_kernel row or the NEMO_SIMD environment knob.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace nemo::simd {

/// Concrete instruction sets a fold can run on, in ascending preference.
/// Values are dense so telemetry can index histograms by kernel.
enum class Kernel : std::uint8_t { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };
inline constexpr int kKernelCount = 3;

/// A tuning-table / user selection: a concrete kernel, or defer to CPUID.
enum class Choice : std::uint8_t { kAuto = 0, kScalar, kAvx2, kAvx512 };

/// Element-wise combine. Semantics match core::Comm::ReduceOp: sum a+b,
/// prod a*b, min a<b?a:b, max a>b?a:b — including the ternary's NaN and
/// signed-zero behaviour, which the vector min/max instructions reproduce
/// exactly when called with (dst, src) operand order.
enum class Op : std::uint8_t { kSum = 0, kProd, kMin, kMax };

const char* kernel_name(Kernel k);
const char* choice_name(Choice c);

/// Compiled into this binary and advertised by CPUID on this machine.
bool kernel_supported(Kernel k) noexcept;

/// The widest supported kernel (AVX-512 -> AVX2 -> scalar).
Kernel best_supported() noexcept;

/// Parse "auto|scalar|avx2|avx512". Throws std::invalid_argument on
/// anything else, naming `what` (the knob or field) in the message.
Choice choice_from_string(std::string_view s, const char* what);

/// Resolve a selection to a runnable kernel: kAuto takes best_supported();
/// a forced kernel this machine cannot run degrades to the widest supported
/// one below it.
Kernel resolve(Choice c) noexcept;

/// NEMO_SIMD override on top of `table_choice` (env beats table beats
/// CPUID). Throws std::invalid_argument on an unparseable value.
Kernel resolve_from_env(Choice table_choice);

// dst[i] = op(dst[i], src[i]) for i in [0, n). Unaligned bases and tails
// are handled inside (unaligned vector loads plus a scalar remainder loop).
void fold(Kernel k, Op op, double* dst, const double* src, std::size_t n);
void fold(Kernel k, Op op, float* dst, const float* src, std::size_t n);
void fold(Kernel k, Op op, std::int64_t* dst, const std::int64_t* src,
          std::size_t n);
void fold(Kernel k, Op op, std::int32_t* dst, const std::int32_t* src,
          std::size_t n);

namespace detail {

// Per-ISA entry points, defined in simd_avx2.cpp / simd_avx512.cpp (each
// built with the matching -m flag when the compiler can target the ISA;
// otherwise every entry point falls back to the plain loop and
// *_compiled() reports the gap so dispatch never selects the kernel).
bool avx2_compiled() noexcept;
bool avx512_compiled() noexcept;

void fold_avx2(Op op, double* dst, const double* src, std::size_t n);
void fold_avx2(Op op, float* dst, const float* src, std::size_t n);
void fold_avx2(Op op, std::int64_t* dst, const std::int64_t* src,
               std::size_t n);
void fold_avx2(Op op, std::int32_t* dst, const std::int32_t* src,
               std::size_t n);

void fold_avx512(Op op, double* dst, const double* src, std::size_t n);
void fold_avx512(Op op, float* dst, const float* src, std::size_t n);
void fold_avx512(Op op, std::int64_t* dst, const std::int64_t* src,
                 std::size_t n);
void fold_avx512(Op op, std::int32_t* dst, const std::int32_t* src,
                 std::size_t n);

}  // namespace detail

}  // namespace nemo::simd
