// The canonical element-wise fold loop: the scalar kernel itself, every
// vector kernel's remainder tail, and the stub bodies when an ISA is not
// compiled in. Header-only so the per-ISA translation units share it
// without a cross-TU call in the hot path. The switch is hoisted out of
// the loop; each per-op loop is the bit-identity oracle for that op.
#pragma once

#include <cstddef>

#include "simd/simd.hpp"

namespace nemo::simd::detail {

template <typename T>
inline void fold_plain(Op op, T* dst, const T* src, std::size_t n) {
  switch (op) {
    case Op::kSum:
      for (std::size_t i = 0; i < n; ++i) dst[i] = dst[i] + src[i];
      return;
    case Op::kProd:
      for (std::size_t i = 0; i < n; ++i) dst[i] = dst[i] * src[i];
      return;
    case Op::kMin:
      for (std::size_t i = 0; i < n; ++i)
        dst[i] = dst[i] < src[i] ? dst[i] : src[i];
      return;
    case Op::kMax:
      for (std::size_t i = 0; i < n; ++i)
        dst[i] = dst[i] > src[i] ? dst[i] : src[i];
      return;
  }
}

}  // namespace nemo::simd::detail
