// AVX2 fold kernels: 256-bit vertical element-wise combines with unaligned
// loads/stores and a scalar remainder loop, so any base alignment and tail
// length folds bit-identically to the plain loop. Built with -mavx2 when
// the compiler can target it (CMakeLists set_source_files_properties);
// otherwise every entry point is the plain loop and avx2_compiled()
// reports the gap so dispatch never selects this kernel.
//
// Bit-identity notes:
//  - min/max use (dst, src) operand order: VMINPD/VMAXPD return the second
//    operand on ties and NaN, exactly the scalar ternary `d < s ? d : s`.
//  - int64 prod has no 256-bit lane multiply below AVX-512DQ; it stays on
//    the plain loop rather than emulating with 32x32 partial products.
#include "simd/simd.hpp"

#include "simd/fold_inl.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace nemo::simd::detail {

#if defined(__AVX2__)

bool avx2_compiled() noexcept { return true; }

void fold_avx2(Op op, double* dst, const double* src, std::size_t n) {
  std::size_t i = 0;
  switch (op) {
    case Op::kSum:
      for (; i + 4 <= n; i += 4)
        _mm256_storeu_pd(dst + i, _mm256_add_pd(_mm256_loadu_pd(dst + i),
                                                _mm256_loadu_pd(src + i)));
      break;
    case Op::kProd:
      for (; i + 4 <= n; i += 4)
        _mm256_storeu_pd(dst + i, _mm256_mul_pd(_mm256_loadu_pd(dst + i),
                                                _mm256_loadu_pd(src + i)));
      break;
    case Op::kMin:
      for (; i + 4 <= n; i += 4)
        _mm256_storeu_pd(dst + i, _mm256_min_pd(_mm256_loadu_pd(dst + i),
                                                _mm256_loadu_pd(src + i)));
      break;
    case Op::kMax:
      for (; i + 4 <= n; i += 4)
        _mm256_storeu_pd(dst + i, _mm256_max_pd(_mm256_loadu_pd(dst + i),
                                                _mm256_loadu_pd(src + i)));
      break;
  }
  fold_plain(op, dst + i, src + i, n - i);
}

void fold_avx2(Op op, float* dst, const float* src, std::size_t n) {
  std::size_t i = 0;
  switch (op) {
    case Op::kSum:
      for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i),
                                                _mm256_loadu_ps(src + i)));
      break;
    case Op::kProd:
      for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(dst + i, _mm256_mul_ps(_mm256_loadu_ps(dst + i),
                                                _mm256_loadu_ps(src + i)));
      break;
    case Op::kMin:
      for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(dst + i, _mm256_min_ps(_mm256_loadu_ps(dst + i),
                                                _mm256_loadu_ps(src + i)));
      break;
    case Op::kMax:
      for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(dst + i, _mm256_max_ps(_mm256_loadu_ps(dst + i),
                                                _mm256_loadu_ps(src + i)));
      break;
  }
  fold_plain(op, dst + i, src + i, n - i);
}

void fold_avx2(Op op, std::int64_t* dst, const std::int64_t* src,
               std::size_t n) {
  if (op == Op::kProd) {
    fold_plain(op, dst, src, n);
    return;
  }
  std::size_t i = 0;
  switch (op) {
    case Op::kSum:
      for (; i + 4 <= n; i += 4) {
        __m256i d =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
        __m256i s =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                            _mm256_add_epi64(d, s));
      }
      break;
    case Op::kMin:
      // No VPMIN/MAXSQ below AVX-512: compare-greater then per-lane blend
      // (select src where dst > src), matching `d < s ? d : s` on ties.
      for (; i + 4 <= n; i += 4) {
        __m256i d =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
        __m256i s =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
        __m256i gt = _mm256_cmpgt_epi64(d, s);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                            _mm256_blendv_epi8(d, s, gt));
      }
      break;
    case Op::kMax:
      for (; i + 4 <= n; i += 4) {
        __m256i d =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
        __m256i s =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
        __m256i gt = _mm256_cmpgt_epi64(d, s);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                            _mm256_blendv_epi8(s, d, gt));
      }
      break;
    case Op::kProd:
      break;  // Returned above.
  }
  fold_plain(op, dst + i, src + i, n - i);
}

void fold_avx2(Op op, std::int32_t* dst, const std::int32_t* src,
               std::size_t n) {
  std::size_t i = 0;
  switch (op) {
    case Op::kSum:
      for (; i + 8 <= n; i += 8) {
        __m256i d =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
        __m256i s =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                            _mm256_add_epi32(d, s));
      }
      break;
    case Op::kProd:
      for (; i + 8 <= n; i += 8) {
        __m256i d =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
        __m256i s =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                            _mm256_mullo_epi32(d, s));
      }
      break;
    case Op::kMin:
      for (; i + 8 <= n; i += 8) {
        __m256i d =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
        __m256i s =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                            _mm256_min_epi32(d, s));
      }
      break;
    case Op::kMax:
      for (; i + 8 <= n; i += 8) {
        __m256i d =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
        __m256i s =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                            _mm256_max_epi32(d, s));
      }
      break;
  }
  fold_plain(op, dst + i, src + i, n - i);
}

#else  // !defined(__AVX2__)

bool avx2_compiled() noexcept { return false; }

void fold_avx2(Op op, double* dst, const double* src, std::size_t n) {
  fold_plain(op, dst, src, n);
}
void fold_avx2(Op op, float* dst, const float* src, std::size_t n) {
  fold_plain(op, dst, src, n);
}
void fold_avx2(Op op, std::int64_t* dst, const std::int64_t* src,
               std::size_t n) {
  fold_plain(op, dst, src, n);
}
void fold_avx2(Op op, std::int32_t* dst, const std::int32_t* src,
               std::size_t n) {
  fold_plain(op, dst, src, n);
}

#endif

}  // namespace nemo::simd::detail
