// Kernel dispatch, CPUID feature detection, and the scalar baseline. The
// vector bodies live in simd_avx2.cpp / simd_avx512.cpp, each compiled
// with its own -m flag (CMake set_source_files_properties) so the rest of
// the library keeps the portable baseline ISA.
#include "simd/simd.hpp"

#include <stdexcept>
#include <string>

#include "common/options.hpp"
#include "simd/fold_inl.hpp"

namespace nemo::simd {

namespace {

#if defined(__GNUC__) && !defined(__clang__)
// "Scalar" means scalar: keep -O3's autovectorizer out of the baseline
// kernel so NEMO_SIMD=scalar measures the true one-lane fold. Results are
// bit-identical either way (vertical vectorization never reassociates);
// only the scalar-vs-vector throughput comparison needs this.
#define NEMO_SCALAR_CODEGEN __attribute__((optimize("no-tree-vectorize")))
#else
#define NEMO_SCALAR_CODEGEN
#endif

template <typename T>
NEMO_SCALAR_CODEGEN void fold_scalar(Op op, T* dst, const T* src,
                                     std::size_t n) {
  detail::fold_plain(op, dst, src, n);
}

#undef NEMO_SCALAR_CODEGEN

template <typename T>
void fold_impl(Kernel k, Op op, T* dst, const T* src, std::size_t n) {
  switch (k) {
    case Kernel::kAvx512:
      detail::fold_avx512(op, dst, src, n);
      return;
    case Kernel::kAvx2:
      detail::fold_avx2(op, dst, src, n);
      return;
    case Kernel::kScalar:
      break;
  }
  fold_scalar(op, dst, src, n);
}

}  // namespace

const char* kernel_name(Kernel k) {
  switch (k) {
    case Kernel::kScalar:
      return "scalar";
    case Kernel::kAvx2:
      return "avx2";
    case Kernel::kAvx512:
      return "avx512";
  }
  return "?";
}

const char* choice_name(Choice c) {
  switch (c) {
    case Choice::kAuto:
      return "auto";
    case Choice::kScalar:
      return "scalar";
    case Choice::kAvx2:
      return "avx2";
    case Choice::kAvx512:
      return "avx512";
  }
  return "?";
}

bool kernel_supported(Kernel k) noexcept {
  switch (k) {
    case Kernel::kScalar:
      return true;
    case Kernel::kAvx2:
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
      return detail::avx2_compiled() && __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case Kernel::kAvx512:
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
      return detail::avx512_compiled() && __builtin_cpu_supports("avx512f");
#else
      return false;
#endif
  }
  return false;
}

Kernel best_supported() noexcept {
  if (kernel_supported(Kernel::kAvx512)) return Kernel::kAvx512;
  if (kernel_supported(Kernel::kAvx2)) return Kernel::kAvx2;
  return Kernel::kScalar;
}

Choice choice_from_string(std::string_view s, const char* what) {
  if (s == "auto") return Choice::kAuto;
  if (s == "scalar") return Choice::kScalar;
  if (s == "avx2") return Choice::kAvx2;
  if (s == "avx512") return Choice::kAvx512;
  throw std::invalid_argument(std::string(what) + ": unknown simd kernel '" +
                              std::string(s) +
                              "' (want auto|scalar|avx2|avx512)");
}

Kernel resolve(Choice c) noexcept {
  switch (c) {
    case Choice::kAuto:
      return best_supported();
    case Choice::kScalar:
      return Kernel::kScalar;
    case Choice::kAvx2:
      return kernel_supported(Kernel::kAvx2) ? Kernel::kAvx2
                                             : Kernel::kScalar;
    case Choice::kAvx512:
      if (kernel_supported(Kernel::kAvx512)) return Kernel::kAvx512;
      return kernel_supported(Kernel::kAvx2) ? Kernel::kAvx2
                                             : Kernel::kScalar;
  }
  return Kernel::kScalar;
}

Kernel resolve_from_env(Choice table_choice) {
  auto v = nemo::Config::str("NEMO_SIMD");
  return resolve(v ? choice_from_string(*v, "NEMO_SIMD") : table_choice);
}

void fold(Kernel k, Op op, double* dst, const double* src, std::size_t n) {
  fold_impl(k, op, dst, src, n);
}

void fold(Kernel k, Op op, float* dst, const float* src, std::size_t n) {
  fold_impl(k, op, dst, src, n);
}

void fold(Kernel k, Op op, std::int64_t* dst, const std::int64_t* src,
          std::size_t n) {
  fold_impl(k, op, dst, src, n);
}

void fold(Kernel k, Op op, std::int32_t* dst, const std::int32_t* src,
          std::size_t n) {
  fold_impl(k, op, dst, src, n);
}

}  // namespace nemo::simd
