// Self-calibrating tuning tables (paper §3.5, generalised): instead of
// deriving every threshold from the CacheSize/(2·sharers) style formulas,
// the runtime consults a TuningTable measured on the actual machine — one
// row per pair-placement class (shared LLC / same socket without sharing /
// cross socket), since every crossover the paper reports moves with
// placement.
//
// Precedence, applied in effective_table():
//   env knobs  >  persistent cache (topology-fingerprinted)  >  formulas.
//
// The cache file is JSON keyed by a fingerprint of the detected topology so
// a machine calibrates once (via the nemo-tune tool or Calibrator) and every
// later run — any entry point — starts with measured thresholds.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "common/common.hpp"
#include "common/topology.hpp"
#include "simd/simd.hpp"

namespace nemo::tune {

/// Rendezvous backend preference, kept independent of lmt::LmtKind so the
/// tune layer stays below lmt (lmt::Policy maps these onto concrete kinds,
/// honouring availability).
enum class Backend : std::uint32_t {
  kDefault = 0,   ///< Double-buffered shm copy ring.
  kVmsplice = 1,  ///< Single-copy pipe.
  kKnem = 2,      ///< Single-copy pseudo-device (DMA-capable).
  kCma = 3,       ///< Single-copy cross-memory attach (process_vm_readv).
};

const char* to_string(Backend b);
std::optional<Backend> backend_from_string(const std::string& s);

/// Thresholds for one pair-placement class.
///
/// Contract: a PlacementTuning is plain data — producers (formulas,
/// calibration, the feedback pass, the JSON cache) fill it, consumers
/// (lmt::Policy, ShmCopyBackend, World) only read it. Zero values in the
/// geometry fields mean "inherit the Config/env default", so a formula table
/// stays byte-stable across Config changes.
struct PlacementTuning {
  /// Minimum rendezvous size that switches ring copies to streaming
  /// (non-temporal) stores. SIZE_MAX = never.
  std::size_t nt_min = 0;
  /// Whether copy #1 (sender into the ring slot) should also stream. On a
  /// shared LLC the cached slot write is what makes the receiver's read hit,
  /// so the formula default streams only on non-sharing placements.
  bool push_nt = false;
  /// Eager → rendezvous activation for this placement.
  std::size_t lmt_activation = 8 * KiB;
  /// Preferred rendezvous backend.
  Backend backend = Backend::kDefault;
  /// Copy-ring geometry for pairs of this placement. 0 = inherit the
  /// world-wide Config/env value. The feedback pass raises ring_bufs when
  /// the telemetry shows senders stalling on full rings.
  std::uint32_t ring_bufs = 0;
  std::uint32_t ring_buf_bytes = 0;
};

/// The full per-machine tuning state the runtime consults.
///
/// Thread-safety: resolved once in the World constructor before ranks spawn
/// and immutable afterwards; every Engine/Policy holds a const reference, so
/// concurrent reads are safe without synchronisation. Mutation happens only
/// in single-threaded tooling (nemo-tune, the calibrator, tests).
struct TuningTable {
  static constexpr int kPlacements = 3;  ///< Indexed by PairPlacement.

  std::string fingerprint;  ///< Topology fingerprint this table was built on.
  std::string source = "formula";  ///< "formula" | "calibrated" | "cache".

  std::array<PlacementTuning, kPlacements> place{};

  /// KNEM DMA offload threshold. 0 = use the paper's per-core formula.
  std::size_t dma_min = 0;

  /// Cross-memory-attach row (schema 5). `cma_available` records whether the
  /// process_vm_readv probe succeeded when this table was calibrated — a
  /// cache written under a permissive kernel must not force CMA on a host
  /// where Yama/seccomp later refuses it, so World still ANDs its own probe
  /// in. `cma_activation` is the message size from which CMA is preferred in
  /// the formula fallback chain (below it the attach syscall's fixed cost
  /// loses to vmsplice / the copy ring).
  bool cma_available = true;
  std::size_t cma_activation = 8 * KiB;
  /// Lower activation used inside collectives (§4.4).
  std::size_t collective_activation = 4 * KiB;

  /// Shm-collective crossover: operations whose symmetric size measure
  /// (bcast bytes, per-rank block, operand bytes) reaches this take the
  /// collective-arena path under NEMO_COLL=auto; below it the pt2pt
  /// algorithms win on their lower per-op synchronisation cost. Measured by
  /// the coll probe in tune::calibrate; NEMO_COLL_ACTIVATION overrides.
  std::size_t coll_activation = 16 * KiB;
  /// Per-rank collective-arena slot capacity (staging + doorbell
  /// pipelining granularity). NEMO_COLL_SLOT_BYTES overrides.
  std::uint32_t coll_slot_bytes = 256 * KiB;

  /// Eager messages at or below this ride the per-pair fastbox ring.
  std::size_t fastbox_max = 2 * KiB - 64;
  std::uint32_t fastbox_slots = 4;
  std::uint32_t fastbox_slot_bytes = 2 * KiB;

  /// Recv-queue cells drained per progress() pass before yielding to the
  /// send/recv state machines.
  std::uint32_t drain_budget = 256;

  /// Hot-peer-first fastbox polling: the engine periodically re-sorts its
  /// fastbox poll order by recent traffic instead of scanning ranks in
  /// order. Off by default; the feedback pass enables it when fastbox
  /// traffic dominates or senders report full boxes. NEMO_POLL_HOT
  /// overrides.
  bool poll_hot = false;

  /// World size at/above which the arena barrier combines arrivals up a
  /// k-ary tree instead of rank 0 gathering all n-1 flags (flat stays
  /// cheaper below ~8 ranks: the tree adds a level of store-then-poll
  /// latency that only pays off once the root's linear gather dominates).
  /// NEMO_BARRIER_TREE overrides (`off` = never, `on` = always, or a
  /// threshold).
  std::uint32_t barrier_tree_ranks = 8;
  /// Tree fan-in. formula_defaults derives it from the topology (one
  /// parent gathers an LLC-sharing domain); clamped to [2, 64] on load.
  std::uint32_t barrier_tree_k = 4;

  /// Reduction kernel the collective folds run with. kAuto defers to CPUID
  /// (best supported, AVX-512 -> AVX2 -> scalar) when the World resolves
  /// it; the calibrate simd probe records a concrete winner. NEMO_SIMD
  /// overrides.
  simd::Choice simd_kernel = simd::Choice::kAuto;
  /// Minimum contiguous block run at which datatype pack/unpack streams
  /// through the NT engine (packed strided operands evict the cache the
  /// same way big contiguous copies do). 0 = formula: the same half-LLC
  /// bound as nt_min. SIZE_MAX (NEMO_PACK_NT_MIN=off) = never.
  std::size_t pack_nt_min = 0;

  /// Hierarchical two-level collectives (schema 6): minimum synthetic-node
  /// count (transport topology) at/above which auto-mode collectives run
  /// the leader-based two-level schedule instead of the flat world-wide
  /// algorithm. UINT32_MAX = never; 2 = whenever the transport partitions
  /// the world at all. NEMO_COLL_HIER overrides (`off` | `on` | threshold).
  std::uint32_t coll_hier_nodes = 2;

  [[nodiscard]] const PlacementTuning& for_placement(PairPlacement p) const {
    return place[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] PlacementTuning& for_placement(PairPlacement p) {
    return place[static_cast<std::size_t>(p)];
  }
};

/// Legal collective-arena slot range, shared by every resolver (env
/// override, cache validation, Config clamp) so the bounds cannot drift
/// apart. Values must also be cache-line multiples.
inline constexpr std::size_t kCollSlotMin = kCacheLine;
inline constexpr std::size_t kCollSlotMax = 16 * MiB;

/// Is `v` a legal coll_slot_bytes value as-is (range + alignment)?
inline bool coll_slot_in_range(std::size_t v) {
  return v >= kCollSlotMin && v <= kCollSlotMax && v % kCacheLine == 0;
}

/// Parse NEMO_COLL_SLOT_BYTES (rounded up to a cache line). nullopt when
/// unset; throws std::invalid_argument on an out-of-range value — a
/// silently ignored knob would make slot-size experiments unmeasurable.
/// Shared by every resolver (Config apply_env, with_env_overrides) so the
/// accepted range cannot drift between them.
std::optional<std::size_t> coll_slot_bytes_from_env();

/// Stable fingerprint of a topology (FNV-1a over the logical layout), e.g.
/// "host-8c-a1b2c3d4e5f67890". Cache entries are valid only on a machine
/// with an identical fingerprint.
std::string topology_fingerprint(const Topology& topo);

/// The paper's static formulas, evaluated for `topo` (no measurement).
TuningTable formula_defaults(const Topology& topo);

/// Apply env-knob overrides (NEMO_NT_MIN, NEMO_LMT_ACTIVATION,
/// NEMO_FASTBOX_MAX, NEMO_FASTBOX_SLOTS, NEMO_FASTBOX_SLOT_BYTES,
/// NEMO_DRAIN_BUDGET, NEMO_DMA_MIN, NEMO_BACKEND, NEMO_RING_BUFS,
/// NEMO_RING_BUF_BYTES, NEMO_POLL_HOT, NEMO_COLL_ACTIVATION,
/// NEMO_COLL_SLOT_BYTES, NEMO_BARRIER_TREE, NEMO_SIMD, NEMO_PACK_NT_MIN)
/// on top of `t` — the "env beats cache beats formula" precedence every
/// entry point shares. See docs/TUNING.md for the authoritative knob table.
TuningTable with_env_overrides(TuningTable t);

/// Parse NEMO_BARRIER_TREE into a barrier_tree_ranks threshold: `off`/`0`
/// = never (UINT32_MAX), `on`/`1` = always (2), else a world-size
/// threshold >= 2. nullopt when unset; throws on anything else.
std::optional<std::uint32_t> barrier_tree_ranks_from_env();

/// Parse NEMO_COLL_HIER into a coll_hier_nodes threshold with the same
/// vocabulary: `off`/`0` = never (UINT32_MAX), `on`/`1` = always (2), else
/// a node-count threshold >= 2. nullopt when unset; throws on anything else.
std::optional<std::uint32_t> coll_hier_nodes_from_env();

// --- Serialization ---------------------------------------------------------

std::string to_json(const TuningTable& t);
std::optional<TuningTable> from_json(const std::string& text,
                                     std::string* err = nullptr);

/// Where the persistent cache lives: $NEMO_TUNE_CACHE if set, else
/// $XDG_CACHE_HOME/nemo/tune-<fingerprint>.json, else
/// $HOME/.cache/nemo/tune-<fingerprint>.json, else
/// /tmp/nemo-tune-<fingerprint>.json.
std::string default_cache_path(const std::string& fingerprint);

/// Load the cache at `path`; nullopt when missing, malformed, or built for
/// a different topology (fingerprint mismatch ⇒ stale ⇒ ignored).
std::optional<TuningTable> load_cache(const std::string& path,
                                      const std::string& expect_fingerprint);

/// Persist `t` (creates parent directories best-effort). Returns false and
/// prints to stderr when the file cannot be written.
bool store_cache(const std::string& path, const TuningTable& t);

/// One-stop resolution for the runtime: cached table if present and valid
/// for `topo` (unless NEMO_TUNE=0), else formula defaults; env knobs
/// override either.
TuningTable effective_table(const Topology& topo);

}  // namespace nemo::tune
