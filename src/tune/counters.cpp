#include "tune/counters.hpp"

#include <cstdio>

#include "tune/json.hpp"

namespace nemo::tune {

Counters& Counters::operator+=(const Counters& o) {
  for (int i = 0; i < kSizeClasses; ++i)
    sent_by_class[static_cast<std::size_t>(i)] +=
        o.sent_by_class[static_cast<std::size_t>(i)];
  for (int i = 0; i < kPaths; ++i)
    path_hist[static_cast<std::size_t>(i)] +=
        o.path_hist[static_cast<std::size_t>(i)];
  fastbox_hits += o.fastbox_hits;
  fastbox_fallbacks += o.fastbox_fallbacks;
  ring_stalls += o.ring_stalls;
  drain_exhausted += o.drain_exhausted;
  progress_passes += o.progress_passes;
  coll_shm_ops += o.coll_shm_ops;
  coll_p2p_ops += o.coll_p2p_ops;
  coll_shm_bytes += o.coll_shm_bytes;
  coll_fallbacks += o.coll_fallbacks;
  coll_epoch_stalls += o.coll_epoch_stalls;
  coll_barrier_flat += o.coll_barrier_flat;
  coll_barrier_tree += o.coll_barrier_tree;
  um_pool_hits += o.um_pool_hits;
  um_pool_misses += o.um_pool_misses;
  for (int i = 0; i < kSimdKernels; ++i) {
    simd_fold_ops[static_cast<std::size_t>(i)] +=
        o.simd_fold_ops[static_cast<std::size_t>(i)];
    simd_fold_bytes[static_cast<std::size_t>(i)] +=
        o.simd_fold_bytes[static_cast<std::size_t>(i)];
  }
  pack_direct_ops += o.pack_direct_ops;
  pack_direct_bytes += o.pack_direct_bytes;
  pack_staged_ops += o.pack_staged_ops;
  pack_staged_bytes += o.pack_staged_bytes;
  pack_nt_ops += o.pack_nt_ops;
  unpack_ops += o.unpack_ops;
  return *this;
}

namespace {

const char* path_name(int i) {
  switch (i) {
    case 0: return "rndv-default";
    case 1: return "rndv-vmsplice";
    case 2: return "rndv-vmsplice-writev";
    case 3: return "rndv-knem";
    case Counters::kPathEager: return "eager-queue";
    case Counters::kPathFastbox: return "eager-fastbox";
  }
  return "?";
}

Json counters_to_json(const Counters& c, int rank) {
  Json j = Json::object();
  if (rank >= 0) j.set("rank", static_cast<std::uint64_t>(rank));

  // Sparse histogram: only populated classes, keyed by the class floor so
  // the dump stays readable ("4KiB": 120).
  Json hist = Json::object();
  for (int i = 0; i < Counters::kSizeClasses; ++i) {
    std::uint64_t n = c.sent_by_class[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    hist.set(format_size(static_cast<std::size_t>(1) << i), n);
  }
  j.set("sent_by_class", std::move(hist));

  Json paths = Json::object();
  for (int i = 0; i < Counters::kPaths; ++i) {
    std::uint64_t n = c.path_hist[static_cast<std::size_t>(i)];
    if (n != 0) paths.set(path_name(i), n);
  }
  j.set("paths", std::move(paths));

  j.set("fastbox_hits", c.fastbox_hits);
  j.set("fastbox_fallbacks", c.fastbox_fallbacks);
  double attempts =
      static_cast<double>(c.fastbox_hits + c.fastbox_fallbacks);
  j.set("fastbox_hit_rate",
        attempts > 0 ? static_cast<double>(c.fastbox_hits) / attempts : 0.0);
  j.set("ring_stalls", c.ring_stalls);
  j.set("drain_exhausted", c.drain_exhausted);
  j.set("progress_passes", c.progress_passes);

  Json coll = Json::object();
  coll.set("shm_ops", c.coll_shm_ops);
  coll.set("p2p_ops", c.coll_p2p_ops);
  coll.set("shm_bytes", c.coll_shm_bytes);
  coll.set("fallbacks", c.coll_fallbacks);
  coll.set("epoch_stalls", c.coll_epoch_stalls);
  coll.set("barrier_flat", c.coll_barrier_flat);
  coll.set("barrier_tree", c.coll_barrier_tree);
  j.set("coll", std::move(coll));

  j.set("um_pool_hits", c.um_pool_hits);
  j.set("um_pool_misses", c.um_pool_misses);

  // Kernel-path histogram, keyed by kernel name (sparse like the size
  // classes so unexercised kernels do not clutter the dump).
  Json simd = Json::object();
  const char* kernel_names[Counters::kSimdKernels] = {"scalar", "avx2",
                                                      "avx512"};
  for (int i = 0; i < Counters::kSimdKernels; ++i) {
    auto si = static_cast<std::size_t>(i);
    if (c.simd_fold_ops[si] == 0 && c.simd_fold_bytes[si] == 0) continue;
    Json k = Json::object();
    k.set("fold_ops", c.simd_fold_ops[si]);
    k.set("fold_bytes", c.simd_fold_bytes[si]);
    simd.set(kernel_names[i], std::move(k));
  }
  j.set("simd", std::move(simd));

  Json pack = Json::object();
  pack.set("direct_ops", c.pack_direct_ops);
  pack.set("direct_bytes", c.pack_direct_bytes);
  pack.set("staged_ops", c.pack_staged_ops);
  pack.set("staged_bytes", c.pack_staged_bytes);
  pack.set("nt_ops", c.pack_nt_ops);
  pack.set("unpack_ops", c.unpack_ops);
  j.set("pack", std::move(pack));
  return j;
}

}  // namespace

std::string Counters::to_json(int rank) const {
  return counters_to_json(*this, rank).dump();
}

std::string telemetry_json(const std::string& label,
                           const Counters* per_rank, int nranks) {
  Json root = Json::object();
  root.set("schema", std::string("nemo-telemetry/1"));
  root.set("label", label);
  Json ranks = Json::array();
  Counters total;
  for (int r = 0; r < nranks; ++r) {
    ranks.push_back(counters_to_json(per_rank[r], r));
    total += per_rank[r];
  }
  root.set("ranks", std::move(ranks));
  root.set("total", counters_to_json(total, -1));
  return root.dump() + "\n";
}

bool write_telemetry(const std::string& path, const std::string& label,
                     const Counters* per_rank, int nranks) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write telemetry to %s\n", path.c_str());
    return false;
  }
  std::string body = telemetry_json(label, per_rank, nranks);
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace nemo::tune
