#include "tune/counters.hpp"

#include <cstdio>

#include "trace/registry.hpp"

namespace nemo::tune {

Counters& Counters::operator+=(const Counters& o) {
  for (int i = 0; i < kSizeClasses; ++i)
    sent_by_class[static_cast<std::size_t>(i)] +=
        o.sent_by_class[static_cast<std::size_t>(i)];
  for (int i = 0; i < kPaths; ++i)
    path_hist[static_cast<std::size_t>(i)] +=
        o.path_hist[static_cast<std::size_t>(i)];
  fastbox_hits += o.fastbox_hits;
  fastbox_fallbacks += o.fastbox_fallbacks;
  ring_stalls += o.ring_stalls;
  drain_exhausted += o.drain_exhausted;
  progress_passes += o.progress_passes;
  coll_shm_ops += o.coll_shm_ops;
  coll_p2p_ops += o.coll_p2p_ops;
  coll_shm_bytes += o.coll_shm_bytes;
  coll_fallbacks += o.coll_fallbacks;
  coll_epoch_stalls += o.coll_epoch_stalls;
  coll_barrier_flat += o.coll_barrier_flat;
  coll_barrier_tree += o.coll_barrier_tree;
  coll_hier_ops += o.coll_hier_ops;
  peer_deaths += o.peer_deaths;
  fence_epochs += o.fence_epochs;
  reclaimed_slots += o.reclaimed_slots;
  timeout_aborts += o.timeout_aborts;
  net_msgs += o.net_msgs;
  net_bytes += o.net_bytes;
  net_modeled_ns += o.net_modeled_ns;
  net_ctrl_msgs += o.net_ctrl_msgs;
  um_pool_hits += o.um_pool_hits;
  um_pool_misses += o.um_pool_misses;
  for (int i = 0; i < kSimdKernels; ++i) {
    simd_fold_ops[static_cast<std::size_t>(i)] +=
        o.simd_fold_ops[static_cast<std::size_t>(i)];
    simd_fold_bytes[static_cast<std::size_t>(i)] +=
        o.simd_fold_bytes[static_cast<std::size_t>(i)];
  }
  pack_direct_ops += o.pack_direct_ops;
  pack_direct_bytes += o.pack_direct_bytes;
  pack_staged_ops += o.pack_staged_ops;
  pack_staged_bytes += o.pack_staged_bytes;
  pack_nt_ops += o.pack_nt_ops;
  unpack_ops += o.unpack_ops;
  return *this;
}

// The JSON shapes live in trace::Registry (the single telemetry writer
// shared with the trace dumps); these wrappers keep the historical
// string-returning API for the benches.

std::string Counters::to_json(int rank) const {
  return trace::Registry::counters_json(*this, rank).dump();
}

std::string telemetry_json(const std::string& label,
                           const Counters* per_rank, int nranks) {
  return trace::Registry::telemetry_json(label, per_rank, nranks).dump() +
         "\n";
}

bool write_telemetry(const std::string& path, const std::string& label,
                     const Counters* per_rank, int nranks) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write telemetry to %s\n", path.c_str());
    return false;
  }
  std::string body = telemetry_json(label, per_rank, nranks);
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace nemo::tune
