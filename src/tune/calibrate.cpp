#include "tune/calibrate.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include "common/options.hpp"
#include "common/timing.hpp"
#include "shm/nt_copy.hpp"
#include "shm/process_runner.hpp"

namespace nemo::tune {

std::optional<std::size_t> find_crossover(const CostFn& cost_a,
                                          const CostFn& cost_b,
                                          std::size_t lo, std::size_t hi,
                                          int refine_steps) {
  NEMO_ASSERT(lo >= 1 && lo <= hi);
  auto b_wins = [&](std::size_t s) { return cost_b(s) < cost_a(s); };
  if (b_wins(lo)) return lo;

  // Geometric scan to bracket the sign change.
  std::size_t prev = lo;
  std::size_t cur = lo;
  bool found = false;
  while (cur < hi) {
    cur = cur > hi / 2 ? hi : cur * 2;
    if (b_wins(cur)) {
      found = true;
      break;
    }
    prev = cur;
  }
  if (!found) return std::nullopt;

  // Bisect (prev: a wins, cur: b wins).
  std::size_t a_side = prev, b_side = cur;
  for (int i = 0; i < refine_steps && b_side - a_side > 1; ++i) {
    std::size_t mid = a_side + (b_side - a_side) / 2;
    if (b_wins(mid))
      b_side = mid;
    else
      a_side = mid;
  }
  return b_side;
}

namespace {

/// Median-of-N wall-clock cost of `fn` in ns.
template <typename Fn>
double median_ns(int repeats, Fn&& fn) {
  Stats st;
  for (int i = 0; i < std::max(1, repeats); ++i) {
    Timer t;
    fn();
    st.add(static_cast<double>(t.elapsed_ns()));
  }
  return st.median();
}

/// Read every cache line of `buf` (keeps/refills the working set).
std::uint64_t touch(const std::byte* buf, std::size_t n) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < n; i += kCacheLine)
    sum += static_cast<std::uint64_t>(buf[i]);
  return sum;
}

std::atomic<std::uint64_t> g_sink{0};

}  // namespace

std::optional<std::size_t> measure_nt_crossover(
    std::size_t working_set, const CalibrationOptions& opt) {
  if (!shm::nt_copy_available()) return std::nullopt;
  if (working_set < 64 * KiB) working_set = 64 * KiB;

  std::vector<std::byte> src(opt.max_size, std::byte{0x5a});
  std::vector<std::byte> dst(opt.max_size);
  std::vector<std::byte> ws(working_set, std::byte{1});

  // Cost of copying `s` bytes and then re-using the working set: the cached
  // copy evicts it (cost grows with s past the cache size), the streaming
  // copy leaves it resident at the price of uncached stores.
  auto cost = [&](bool nt) {
    return [&, nt](std::size_t s) {
      g_sink += touch(ws.data(), ws.size());  // Make the set resident.
      return median_ns(opt.repeats, [&] {
        shm::copy_for(nt, dst.data(), src.data(), s);
        g_sink += touch(ws.data(), ws.size());
      });
    };
  };
  return find_crossover(cost(false), cost(true), opt.min_size, opt.max_size);
}

std::optional<double> measure_pair_latency_ns(int core_a, int core_b,
                                              const CalibrationOptions& opt) {
  constexpr int kRounds = 2000;
  alignas(kCacheLine) static std::atomic<std::uint32_t> ping{0};
  ping.store(0, std::memory_order_relaxed);
  std::atomic<bool> pinned_ok{true};

  std::uint64_t total_ns = 0;
  std::thread peer([&] {
    if (opt.pin && !shm::pin_self_to_core(core_b)) pinned_ok = false;
    for (int i = 0; i < kRounds; ++i) {
      int spins = 0;
      while (ping.load(std::memory_order_acquire) !=
             static_cast<std::uint32_t>(2 * i + 1))
        if (++spins > 4096) std::this_thread::yield();  // Oversubscribed.
      ping.store(static_cast<std::uint32_t>(2 * i + 2),
                 std::memory_order_release);
    }
  });
  {
    if (opt.pin && !shm::pin_self_to_core(core_a)) pinned_ok = false;
    Timer t;
    for (int i = 0; i < kRounds; ++i) {
      ping.store(static_cast<std::uint32_t>(2 * i + 1),
                 std::memory_order_release);
      int spins = 0;
      while (ping.load(std::memory_order_acquire) !=
             static_cast<std::uint32_t>(2 * i + 2))
        if (++spins > 4096) std::this_thread::yield();
    }
    total_ns = t.elapsed_ns();
  }
  peer.join();
  if (opt.pin && !pinned_ok) return std::nullopt;
  return static_cast<double>(total_ns) / (2.0 * kRounds);
}

std::optional<std::size_t> measure_activation_crossover(
    double handshake_ns, const CalibrationOptions& opt) {
  std::vector<std::byte> src(opt.max_size, std::byte{0x33});
  std::vector<std::byte> bounce(32 * KiB);
  std::vector<std::byte> dst(opt.max_size);

  // Copy-through cost at a given chunk granularity: the in-and-out-of-
  // shared-memory motion both paths share, but the eager path pays it at
  // cell granularity (2 KiB, both copies serialized) while the rendezvous
  // ring pipelines 32 KiB buffers (the second copy overlaps the first, so
  // it costs roughly one pass).
  auto copy_through = [&](std::size_t s, std::size_t chunk, int passes) {
    for (int pass = 0; pass < passes; ++pass)
      for (std::size_t off = 0; off < s; off += chunk) {
        std::size_t n = std::min(chunk, s - off);
        std::memcpy(bounce.data(), src.data() + off, n);
        std::memcpy(dst.data() + off, bounce.data(), n);
      }
  };
  auto eager_cost = [&](std::size_t s) {
    return median_ns(opt.repeats, [&] { copy_through(s, 2 * KiB, 1); });
  };
  auto rndv_cost = [&](std::size_t s) {
    // RTS + CTS = two one-way notifications, then the pipelined ring pass.
    return 2.0 * handshake_ns +
           median_ns(opt.repeats, [&] { copy_through(s, 32 * KiB, 1); });
  };
  return find_crossover(eager_cost, rndv_cost, 256,
                        std::min<std::size_t>(opt.max_size, 1 * MiB));
}

std::optional<simd::Choice> measure_simd_kernel(
    const CalibrationOptions& opt) {
  std::vector<simd::Kernel> kernels;
  for (simd::Kernel k : {simd::Kernel::kScalar, simd::Kernel::kAvx2,
                         simd::Kernel::kAvx512})
    if (simd::kernel_supported(k)) kernels.push_back(k);
  if (kernels.empty()) return std::nullopt;

  // One fold pass at a reduction-typical operand size: big enough that the
  // per-call dispatch overhead vanishes, small enough to stay cache-resident
  // so the race measures the fold, not memory bandwidth.
  constexpr std::size_t kFoldBytes = 256 * KiB;
  constexpr int kPasses = 4;
  auto time_kernel = [&](simd::Kernel k, auto tag) {
    using T = decltype(tag);
    std::size_t n = kFoldBytes / sizeof(T);
    std::vector<T> dst(n, T{1}), src(n, T{1});
    return median_ns(opt.repeats, [&] {
      for (int p = 0; p < kPasses; ++p)
        simd::fold(k, simd::Op::kSum, dst.data(), src.data(), n);
    });
  };

  simd::Kernel best = kernels.front();
  double best_ns = std::numeric_limits<double>::infinity();
  for (simd::Kernel k : kernels) {
    double ns = time_kernel(k, double{}) + time_kernel(k, float{}) +
                time_kernel(k, std::int32_t{});
    if (opt.verbose)
      std::printf("  [simd] %s fold: %.0fns\n", simd::kernel_name(k), ns);
    if (ns < best_ns) {
      best_ns = ns;
      best = k;
    }
  }
  switch (best) {
    case simd::Kernel::kAvx512: return simd::Choice::kAvx512;
    case simd::Kernel::kAvx2: return simd::Choice::kAvx2;
    case simd::Kernel::kScalar: break;
  }
  return simd::Choice::kScalar;
}

TuningTable calibrate(const Topology& topo, const CalibrationOptions& opt) {
  TuningTable t = formula_defaults(topo);
  t.source = "calibrated";
  // Probes pin this thread per placement; put the mask back afterwards so
  // the caller (and its available_cores() queries) are not left on 1 core.
  shm::AffinitySnapshot saved = shm::save_affinity();

  for (int i = 0; i < TuningTable::kPlacements; ++i) {
    auto p = static_cast<PairPlacement>(i);
    auto pair = topo.find_pair(p);
    if (!pair) continue;  // This machine has no such pair: keep the formula.
    PlacementTuning& pt = t.place[static_cast<std::size_t>(i)];

    // Working set to protect = the receiving core's share of its LLC.
    const CacheDomain& llc = topo.largest_cache(pair->second);
    std::size_t share =
        llc.size_bytes / std::max<std::size_t>(1, llc.cores.size());

    // The NT probe runs on the receiving core of this placement's pair (it
    // models the receiver's copy #2 polluting that core's cache share).
    if (opt.pin) shm::pin_self_to_core(pair->second);
    if (auto nt = measure_nt_crossover(share, opt)) {
      pt.nt_min = *nt;
      if (opt.verbose)
        std::printf("  [%s] nt_min: %s (measured)\n", to_string(p),
                    format_size(*nt).c_str());
    } else if (opt.verbose) {
      std::printf("  [%s] nt_min: %s (formula; NT never won)\n", to_string(p),
                  format_size(pt.nt_min).c_str());
    }

    double handshake = 300.0;  // Fallback when the pair cannot be timed.
    if (auto ns = measure_pair_latency_ns(pair->first, pair->second, opt))
      handshake = *ns;
    if (auto act = measure_activation_crossover(handshake, opt)) {
      pt.lmt_activation = *act;
      if (opt.verbose)
        std::printf("  [%s] lmt_activation: %s (handshake %.0fns)\n",
                    to_string(p), format_size(*act).c_str(), handshake);
    }
  }

  // Collective activation tracks the paper's 2x-lower-than-pingpong rule
  // against the measured pingpong activation.
  std::size_t min_act = SIZE_MAX;
  for (const auto& pt : t.place) min_act = std::min(min_act, pt.lmt_activation);
  if (min_act != SIZE_MAX && min_act >= 2 * KiB)
    t.collective_activation = min_act / 2;

  // Fastbox cutoff: every eager message below activation benefits from the
  // queue bypass, up to the 16 KiB cell bound. Size slots to the cutoff.
  std::size_t cutoff = std::clamp<std::size_t>(min_act, 2 * KiB, 16 * KiB);
  t.fastbox_slot_bytes =
      static_cast<std::uint32_t>(round_up(cutoff, 1 * KiB));
  t.fastbox_max = t.fastbox_slot_bytes - 64;
  shm::restore_affinity(saved);

  // The shm-vs-pt2pt collective crossover (bcast worlds, NEMO_COLL forced
  // each way). A host that cannot run ranks in parallel keeps the formula.
  if (opt.coll) {
    if (auto ca = measure_coll_crossover(topo, t, opt)) {
      t.coll_activation = *ca;
      if (opt.verbose)
        std::printf("  coll_activation: %s (measured)\n",
                    format_size(*ca).c_str());
    } else if (opt.verbose) {
      std::printf("  coll_activation: %s (formula; probe unavailable)\n",
                  format_size(t.coll_activation).c_str());
    }
  }

  // Fold-kernel race: every reduction on this host folds through the
  // recorded winner (a concrete choice, so a cached table replays the
  // selection without re-probing CPUID).
  if (opt.simd) {
    if (auto k = measure_simd_kernel(opt)) {
      t.simd_kernel = *k;
      if (opt.verbose)
        std::printf("  simd_kernel: %s (measured)\n", simd::choice_name(*k));
    }
  }

  // Close the telemetry loop: the crossover probes above are pairwise; the
  // feedback pass stresses every pair at once and reacts to the congestion
  // counters (ring stalls, drain exhaustion, fastbox fallbacks).
  if (opt.feedback && nemo::Config::flag("NEMO_FEEDBACK", true)) {
    FeedbackOptions fopt;
    fopt.verbose = opt.verbose;
    t = calibrate_feedback(topo, std::move(t), fopt);
  }
  return t;
}

}  // namespace nemo::tune
