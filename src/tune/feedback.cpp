// The telemetry feedback pass: run a short alltoall world, read the
// tune::Counters aggregate back, and adjust what the pairwise crossover
// probes cannot see — congestion behaviour under many simultaneously-active
// pairs (drain budget, ring depth, fastbox pressure, polling order).
//
// Layering note: this file sits in tune/ but drives core::run to generate
// real traffic, the same way nemo-tune's --bench does. The *decision* step
// (apply_counter_feedback) depends only on tune/ types so it stays
// unit-testable on synthetic counter streams.
#include <algorithm>
#include <cstdio>
#include <mutex>
#include <vector>

#include "common/options.hpp"
#include "core/comm.hpp"
#include "trace/trace.hpp"
#include "tune/calibrate.hpp"
#include "tune/counters.hpp"

namespace nemo::tune {

namespace {

/// Every applied adjustment also lands as a kFeedback instant on the
/// process-global trace timeline, so recorded runs show WHY a knob moved
/// next to the traffic that moved it.
void trace_knob(trace::Knob knob, std::uint64_t value) {
  if (trace::on())
    trace::global_tracer().emit(trace::kFeedback, trace::kInstant, knob,
                                value);
}

constexpr std::uint32_t kDrainBudgetCap = 4096;
constexpr std::uint32_t kRingBufsCap = 32;
constexpr std::uint32_t kFastboxSlotsCap = 64;
constexpr std::size_t kCollActivationCap = 1 * MiB;
/// Lowest pack_nt_min the feedback pass may set: below this the streamed
/// stores cost more than the eviction they avoid on any plausible LLC.
constexpr std::size_t kPackNtFloor = 64 * KiB;

}  // namespace

TuningTable apply_counter_feedback(TuningTable t, const Counters& c,
                                   const FeedbackOptions& opt) {
  double passes =
      static_cast<double>(std::max<std::uint64_t>(1, c.progress_passes));
  double stall_rate = static_cast<double>(c.ring_stalls) / passes;
  double drain_rate = static_cast<double>(c.drain_exhausted) / passes;
  std::uint64_t attempts = c.fastbox_hits + c.fastbox_fallbacks;
  double fallback_rate =
      attempts > 0 ? static_cast<double>(c.fastbox_fallbacks) /
                         static_cast<double>(attempts)
                   : 0.0;
  std::uint64_t sends = 0;
  for (int i = 0; i < Counters::kPaths; ++i)
    sends += c.path_hist[static_cast<std::size_t>(i)];
  double fastbox_share =
      sends > 0 ? static_cast<double>(
                      c.path_hist[Counters::kPathFastbox]) /
                      static_cast<double>(sends)
                : 0.0;

  if (opt.verbose)
    std::printf("  feedback: observed stalls=%.2f%%/pass "
                "drain-exhaust=%.2f%%/pass fb-fallback=%.1f%% "
                "fb-share=%.0f%% (%llu passes)\n",
                100.0 * stall_rate, 100.0 * drain_rate,
                100.0 * fallback_rate, 100.0 * fastbox_share,
                static_cast<unsigned long long>(c.progress_passes));
  if (drain_rate > opt.drain_hi) {
    t.drain_budget = std::min(kDrainBudgetCap, t.drain_budget * 2);
    trace_knob(trace::kKnobDrainBudget, t.drain_budget);
    if (opt.verbose)
      std::printf("  feedback: drain_exhausted %.1f%%/pass -> drain_budget %u\n",
                  100.0 * drain_rate, t.drain_budget);
  }
  if (stall_rate > opt.stall_hi) {
    for (auto& pt : t.place) {
      // Double from the depth the probe actually ran with: a row of 0
      // inherited the Config/env value, so materialise that, never less.
      std::uint32_t base =
          std::max(pt.ring_bufs, std::max(1u, opt.inherited_ring_bufs));
      pt.ring_bufs = std::min(kRingBufsCap, base * 2);
    }
    trace_knob(trace::kKnobRingBufs, t.place[0].ring_bufs);
    if (opt.verbose)
      std::printf("  feedback: ring_stalls %.1f%%/pass -> ring_bufs %u\n",
                  100.0 * stall_rate, t.place[0].ring_bufs);
  }
  if (fallback_rate > opt.fallback_hi) {
    t.fastbox_slots = std::min(kFastboxSlotsCap, t.fastbox_slots * 2);
    t.poll_hot = true;
    trace_knob(trace::kKnobFastboxSlots, t.fastbox_slots);
    trace_knob(trace::kKnobPollHot, 1);
    if (opt.verbose)
      std::printf(
          "  feedback: fastbox fallbacks %.1f%% -> %u slots, poll_hot\n",
          100.0 * fallback_rate, t.fastbox_slots);
  }
  if (fastbox_share > opt.fastbox_dominant && !t.poll_hot) {
    t.poll_hot = true;
    trace_knob(trace::kKnobPollHot, 1);
    if (opt.verbose)
      std::printf("  feedback: fastbox carries %.0f%% of sends -> poll_hot\n",
                  100.0 * fastbox_share);
  }
  if (c.coll_shm_ops > 0) {
    double coll_stall = static_cast<double>(c.coll_epoch_stalls) /
                        static_cast<double>(c.coll_shm_ops);
    if (coll_stall > opt.coll_stall_hi) {
      t.coll_activation =
          std::min(kCollActivationCap, t.coll_activation * 2);
      trace_knob(trace::kKnobCollActivation, t.coll_activation);
      if (opt.verbose)
        std::printf(
            "  feedback: %.1f epoch stalls per shm collective -> "
            "coll_activation %zu\n",
            coll_stall, t.coll_activation);
    }
  }
  // Pack-path reaction: datatype packs that average at least half the NT
  // cutoff without ever crossing it rewrite near-LLC-sized blocks through
  // the cache on every strided collective, evicting the working set the
  // cutoff exists to protect. Lower pack_nt_min to the observed average
  // (floored well above the streaming break-even) so they start streaming.
  std::uint64_t pack_ops = c.pack_direct_ops + c.pack_staged_ops;
  if (pack_ops > 0 && c.pack_nt_ops == 0 && t.pack_nt_min != 0 &&
      t.pack_nt_min != SIZE_MAX) {
    std::size_t avg = static_cast<std::size_t>(
        (c.pack_direct_bytes + c.pack_staged_bytes) / pack_ops);
    if (avg >= t.pack_nt_min / 2) {
      t.pack_nt_min = std::max<std::size_t>(kPackNtFloor, avg);
      trace_knob(trace::kKnobPackNtMin, t.pack_nt_min);
      if (opt.verbose)
        std::printf("  feedback: packs avg %zu B, none streamed -> "
                    "pack_nt_min %zu\n",
                    avg, t.pack_nt_min);
    }
  }
  return t;
}

std::optional<Counters> run_feedback_probe(const Topology& topo,
                                           const TuningTable& t, int nranks,
                                           const FeedbackOptions& opt) {
  if (nranks < 2) return std::nullopt;
  core::Config cfg;
  cfg.nranks = nranks;
  cfg.mode = core::LaunchMode::kThreads;
  cfg.topo = topo;
  cfg.tuning = t;
  // Pin the rendezvous path to the copy ring: the geometry this pass tunes
  // is a default-backend property (KNEM/vmsplice move bytes without it), and
  // the eager/fastbox/drain behaviour under test is backend-independent.
  cfg.lmt = lmt::LmtKind::kDefaultShm;
  // One rank per core (wrapping on small hosts): the synthetic placement
  // classification sees every pair class the topology exposes even when the
  // physical pinning fails.
  cfg.core_binding.resize(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r)
    cfg.core_binding[static_cast<std::size_t>(r)] = r % topo.num_cores;

  Counters total;
  std::mutex mu;
  try {
    bool ok = core::run(cfg, [&](core::Comm& comm) {
      int n = comm.size(), me = comm.rank();
      std::vector<std::vector<std::byte>> big_out(
          static_cast<std::size_t>(n)),
          big_in(static_cast<std::size_t>(n)),
          small_in(static_cast<std::size_t>(n));
      std::vector<std::byte> small_out(opt.eager_bytes, std::byte{0x42});
      for (int p = 0; p < n; ++p) {
        if (p == me) continue;
        big_out[static_cast<std::size_t>(p)].assign(opt.rndv_bytes,
                                                    std::byte{0x17});
        big_in[static_cast<std::size_t>(p)].resize(opt.rndv_bytes);
        small_in[static_cast<std::size_t>(p)].resize(opt.eager_bytes);
      }
      for (int iter = 0; iter < opt.iters; ++iter) {
        std::vector<core::Request> reqs;
        for (int p = 0; p < n; ++p) {
          if (p == me) continue;
          auto sp = static_cast<std::size_t>(p);
          reqs.push_back(comm.irecv(big_in[sp].data(), opt.rndv_bytes, p, 1));
          reqs.push_back(
              comm.irecv(small_in[sp].data(), opt.eager_bytes, p, 2));
        }
        for (int p = 0; p < n; ++p) {
          if (p == me) continue;
          auto sp = static_cast<std::size_t>(p);
          reqs.push_back(
              comm.isend(big_out[sp].data(), opt.rndv_bytes, p, 1));
          reqs.push_back(comm.isend(small_out.data(), opt.eager_bytes, p, 2));
        }
        comm.waitall(reqs);
      }
      comm.hard_barrier();
      std::lock_guard<std::mutex> lk(mu);
      total += comm.engine().counters();
    });
    if (!ok) return std::nullopt;
  } catch (const std::exception&) {
    return std::nullopt;  // Probe trouble leaves the table unchanged.
  }
  return total;
}

TuningTable calibrate_feedback(const Topology& topo, TuningTable t,
                               const FeedbackOptions& opt_in) {
  FeedbackOptions opt = opt_in;
  // The probe World honours NEMO_RING_BUFS (apply_env + with_env_overrides),
  // so inherit-rows ran at that depth, not the compiled default.
  long env_bufs = nemo::Config::integer("NEMO_RING_BUFS", opt.inherited_ring_bufs);
  if (env_bufs >= 1 && env_bufs <= 1024)
    opt.inherited_ring_bufs = static_cast<std::uint32_t>(env_bufs);
  for (int nranks : opt.rank_counts) {
    if (opt.verbose)
      std::printf("feedback probe: alltoall x%d ranks (%d iters)\n", nranks,
                  opt.iters);
    auto counters = run_feedback_probe(topo, t, nranks, opt);
    if (!counters) {
      if (opt.verbose)
        std::printf("  feedback: %d-rank probe unavailable, skipping\n",
                    nranks);
      continue;
    }
    t = apply_counter_feedback(std::move(t), *counters, opt);
  }
  return t;
}

}  // namespace nemo::tune
