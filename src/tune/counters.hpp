// Telemetry registry: lightweight per-rank counters the engine bumps on its
// hot paths (plain increments on engine-private memory — no atomics, no
// sampling) and the tuner/benches read back. Dumped as JSON via the benches'
// --telemetry flag; the size-class histogram and fastbox hit rate are the
// measured inputs the next calibration round tunes against.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/common.hpp"

namespace nemo::tune {

struct Counters {
  /// log2 size classes: bucket i covers [2^i, 2^(i+1)) bytes; bucket 0 also
  /// takes zero-byte messages. 40 classes cover up to 1 TiB.
  static constexpr int kSizeClasses = 40;
  /// Backend histogram slots (mirrors lmt::LmtKind 0..4) plus eager=5,
  /// fastbox=6.
  static constexpr int kPaths = 7;
  static constexpr int kPathEager = 5;
  static constexpr int kPathFastbox = 6;

  std::array<std::uint64_t, kSizeClasses> sent_by_class{};
  std::array<std::uint64_t, kPaths> path_hist{};  ///< Messages per path.

  std::uint64_t fastbox_hits = 0;       ///< Eager sends that took the box.
  std::uint64_t fastbox_fallbacks = 0;  ///< Box occupied -> queue path.
  std::uint64_t ring_stalls = 0;        ///< Copy-ring push found it full.
  std::uint64_t drain_exhausted = 0;    ///< progress() hit the drain budget.
  std::uint64_t progress_passes = 0;

  // Collective path telemetry (the shm arena fast path vs the pt2pt
  // fallback; see src/coll/).
  std::uint64_t coll_shm_ops = 0;   ///< Collectives that took the arena.
  std::uint64_t coll_p2p_ops = 0;   ///< Collectives on the pt2pt algorithms.
  std::uint64_t coll_shm_bytes = 0; ///< Payload bytes this rank moved via it.
  std::uint64_t coll_fallbacks = 0; ///< shm wanted but geometry forbade it.
  std::uint64_t coll_epoch_stalls = 0;  ///< Waits on a not-yet-published
                                        ///< epoch/doorbell/ack/barrier word.
  std::uint64_t coll_barrier_flat = 0;  ///< Arena barriers run flat.
  std::uint64_t coll_barrier_tree = 0;  ///< Arena barriers run k-ary tree.
  std::uint64_t coll_hier_ops = 0;  ///< Collectives that ran the two-level
                                    ///< (leader/transport) schedule.

  // Resilience telemetry (src/resil/): death verdicts and the recovery
  // fence's work, observed from this rank.
  std::uint64_t peer_deaths = 0;      ///< Distinct peers this rank fenced.
  std::uint64_t fence_epochs = 0;     ///< Epoch fences this rank ran.
  std::uint64_t reclaimed_slots = 0;  ///< Arena cells tombstoned by fences.
  std::uint64_t timeout_aborts = 0;   ///< Verdicts from heartbeat timeout
                                      ///< (vs eager reaper/ESRCH flags).

  // Transport layer (src/transport/): internode traffic accounting kept by
  // the modeled interconnect. All zero under the plain shm transport.
  std::uint64_t net_msgs = 0;        ///< Messages that crossed a node link.
  std::uint64_t net_bytes = 0;       ///< Payload bytes across node links.
  std::uint64_t net_modeled_ns = 0;  ///< Modeled wire time those cost.
  std::uint64_t net_ctrl_msgs = 0;   ///< Internode control doorbells.

  // Unexpected-receive buffer pool (match.hpp freelist).
  std::uint64_t um_pool_hits = 0;    ///< Reused a pooled buffer, no alloc.
  std::uint64_t um_pool_misses = 0;  ///< Pool empty or buffer too small.

  /// Reduction fold kernel histogram, indexed by simd::Kernel (0 scalar,
  /// 1 avx2, 2 avx512). One op = one per-chunk fold call.
  static constexpr int kSimdKernels = 3;
  std::array<std::uint64_t, kSimdKernels> simd_fold_ops{};
  std::array<std::uint64_t, kSimdKernels> simd_fold_bytes{};

  // Datatype pack/unpack path telemetry. `direct` = packed straight into a
  // shared destination (collective-arena slot, fastbox/ring cell);
  // `staged` = packed into a private contiguous staging buffer first (the
  // copy the strided collectives exist to eliminate — a test asserts this
  // stays zero on the shm strided path).
  std::uint64_t pack_direct_ops = 0;
  std::uint64_t pack_direct_bytes = 0;
  std::uint64_t pack_staged_ops = 0;
  std::uint64_t pack_staged_bytes = 0;
  std::uint64_t pack_nt_ops = 0;  ///< Packs that streamed via NT stores.
  std::uint64_t unpack_ops = 0;   ///< Unpacks from shared slots/cells.

  static int size_class(std::size_t bytes) {
    int c = 0;
    while (bytes > 1 && c < kSizeClasses - 1) {
      bytes >>= 1;
      ++c;
    }
    return c;
  }

  void record_send(std::size_t bytes, int path) {
    sent_by_class[static_cast<std::size_t>(size_class(bytes))]++;
    path_hist[static_cast<std::size_t>(path)]++;
  }

  Counters& operator+=(const Counters& o);

  /// One JSON object ({"rank": r, ...}); `rank` < 0 omits the field (used
  /// for cross-rank aggregates).
  [[nodiscard]] std::string to_json(int rank) const;
};

/// Aggregate + dump several ranks' counters as a single JSON document:
/// {"telemetry": ..., "ranks": [...], "total": {...}}. Used by --telemetry.
std::string telemetry_json(const std::string& label,
                           const Counters* per_rank, int nranks);

/// Write telemetry_json() to `path`; false (with stderr note) on failure.
bool write_telemetry(const std::string& path, const std::string& label,
                     const Counters* per_rank, int nranks);

}  // namespace nemo::tune
