#include "tune/tuning.hpp"

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "coll/coll.hpp"
#include "common/options.hpp"
#include "shm/nt_copy.hpp"
#include "tune/json.hpp"

namespace nemo::tune {

const char* to_string(Backend b) {
  switch (b) {
    case Backend::kDefault: return "default";
    case Backend::kVmsplice: return "vmsplice";
    case Backend::kKnem: return "knem";
    case Backend::kCma: return "cma";
  }
  return "?";
}

std::optional<Backend> backend_from_string(const std::string& s) {
  if (s == "default") return Backend::kDefault;
  if (s == "vmsplice") return Backend::kVmsplice;
  if (s == "knem") return Backend::kKnem;
  if (s == "cma") return Backend::kCma;
  return std::nullopt;
}

namespace {

/// Placement keys used in the JSON schema (stable across releases).
const char* placement_key(int i) {
  switch (static_cast<PairPlacement>(i)) {
    case PairPlacement::kSharedCache: return "shared-llc";
    case PairPlacement::kSameSocketNoShare: return "same-socket";
    case PairPlacement::kDifferentSockets: return "cross-socket";
  }
  return "?";
}

void fnv1a(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001b3ULL;
  }
}

}  // namespace

std::string topology_fingerprint(const Topology& topo) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  fnv1a(h, static_cast<std::uint64_t>(topo.num_cores));
  for (int s : topo.socket_of) fnv1a(h, static_cast<std::uint64_t>(s));
  for (int d : topo.die_of) fnv1a(h, static_cast<std::uint64_t>(d));
  // The NUMA map participates: a table tuned under one node layout (ring
  // geometry, placement-sensitive crossovers) is stale under another.
  for (int n : topo.numa_of) fnv1a(h, static_cast<std::uint64_t>(n) + 1);
  for (const auto& c : topo.caches) {
    fnv1a(h, static_cast<std::uint64_t>(c.level));
    fnv1a(h, c.size_bytes);
    fnv1a(h, c.line_bytes);
    fnv1a(h, c.associativity);
    for (int core : c.cores) fnv1a(h, static_cast<std::uint64_t>(core));
  }
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s-%dc-%016llx", topo.name.c_str(),
                topo.num_cores, static_cast<unsigned long long>(h));
  return buf;
}

TuningTable formula_defaults(const Topology& topo) {
  TuningTable t;
  t.fingerprint = topology_fingerprint(topo);
  t.source = "formula";

  // NT crossover: half the LLC, the §3.5-style "don't flush the cache"
  // bound. Shared-LLC pairs use the shared cache the pair sits behind; the
  // other placements use this host's detected default.
  std::size_t host_default = shm::nt_default_threshold();
  for (int i = 0; i < TuningTable::kPlacements; ++i) {
    auto p = static_cast<PairPlacement>(i);
    PlacementTuning& pt = t.place[static_cast<std::size_t>(i)];
    pt.nt_min = host_default;
    // Copy #1 streams only when the pair shares no LLC (see backends.hpp).
    pt.push_nt = p != PairPlacement::kSharedCache;
    pt.lmt_activation = 8 * KiB;  // KNEM pays off from 8 KiB (§3.5).
    // §3.5 preference order: KNEM first (Policy falls back per availability
    // to vmsplice on unshared pairs, else double-buffering).
    pt.backend = Backend::kKnem;
  }
  if (auto pair = topo.find_pair(PairPlacement::kSharedCache)) {
    if (auto llc = topo.shared_cache(pair->first, pair->second))
      t.for_placement(PairPlacement::kSharedCache).nt_min = llc->size_bytes / 2;
  }
  t.fastbox_max = 2 * KiB - 64;  // One default slot's payload.
  t.barrier_tree_k = coll::default_barrier_tree_k(topo);
  // Packed strided operands stream under the same don't-flush-the-cache
  // bound as the ring copies; the kernel stays CPUID-auto until the simd
  // probe measures a concrete winner.
  t.pack_nt_min = host_default;
  return t;
}

TuningTable with_env_overrides(TuningTable t) {
  if (nemo::Config::str("NEMO_NT_MIN")) {
    std::size_t v = nemo::Config::size("NEMO_NT_MIN", 0);
    for (auto& pt : t.place) pt.nt_min = v;
  }
  if (nemo::Config::str("NEMO_LMT_ACTIVATION")) {
    std::size_t v = nemo::Config::size("NEMO_LMT_ACTIVATION", 0);
    for (auto& pt : t.place) pt.lmt_activation = v;
  }
  if (auto b = nemo::Config::str("NEMO_BACKEND")) {
    if (auto kind = backend_from_string(*b)) {
      for (auto& pt : t.place) pt.backend = *kind;
    } else {
      throw std::invalid_argument("NEMO_BACKEND: unknown backend '" + *b +
                                  "' (default|vmsplice|knem|cma)");
    }
  }
  if (nemo::Config::str("NEMO_DMA_MIN")) t.dma_min = nemo::Config::size("NEMO_DMA_MIN", 0);
  if (nemo::Config::str("NEMO_FASTBOX_MAX"))
    t.fastbox_max = nemo::Config::size("NEMO_FASTBOX_MAX", t.fastbox_max);
  long slots = nemo::Config::integer("NEMO_FASTBOX_SLOTS", t.fastbox_slots);
  if (slots >= 1 && slots <= 64)
    t.fastbox_slots = static_cast<std::uint32_t>(slots);
  if (nemo::Config::str("NEMO_FASTBOX_SLOT_BYTES")) {
    std::size_t v = nemo::Config::size("NEMO_FASTBOX_SLOT_BYTES", t.fastbox_slot_bytes);
    if (v >= 128 && v <= 16 * KiB)
      t.fastbox_slot_bytes =
          static_cast<std::uint32_t>(round_up(v, kCacheLine));
  }
  long budget = nemo::Config::integer("NEMO_DRAIN_BUDGET", t.drain_budget);
  if (budget >= 1) t.drain_budget = static_cast<std::uint32_t>(budget);
  // Ring geometry knobs apply to every placement row (they also reach the
  // Config via apply_env, but a cached per-placement value must still lose
  // to an explicit env knob).
  if (nemo::Config::str("NEMO_RING_BUFS")) {
    long rb = nemo::Config::integer("NEMO_RING_BUFS", 0);
    if (rb >= 1 && rb <= 1024)
      for (auto& pt : t.place) pt.ring_bufs = static_cast<std::uint32_t>(rb);
  }
  if (nemo::Config::str("NEMO_RING_BUF_BYTES")) {
    std::size_t v = nemo::Config::size("NEMO_RING_BUF_BYTES", 0);
    if (v >= kCacheLine && v <= 1 * GiB)
      for (auto& pt : t.place)
        pt.ring_buf_bytes =
            static_cast<std::uint32_t>(round_up(v, kCacheLine));
  }
  t.poll_hot = nemo::Config::flag("NEMO_POLL_HOT", t.poll_hot);
  if (nemo::Config::str("NEMO_COLL_ACTIVATION"))
    t.coll_activation = nemo::Config::size("NEMO_COLL_ACTIVATION", t.coll_activation);
  if (auto v = coll_slot_bytes_from_env())
    t.coll_slot_bytes = static_cast<std::uint32_t>(*v);
  if (auto v = barrier_tree_ranks_from_env()) t.barrier_tree_ranks = *v;
  if (auto v = coll_hier_nodes_from_env()) t.coll_hier_nodes = *v;
  if (auto v = nemo::Config::str("NEMO_SIMD"))
    t.simd_kernel = simd::choice_from_string(*v, "NEMO_SIMD");
  if (nemo::Config::str("NEMO_PACK_NT_MIN"))
    t.pack_nt_min = nemo::Config::size("NEMO_PACK_NT_MIN", t.pack_nt_min);
  return t;
}

std::optional<std::uint32_t> barrier_tree_ranks_from_env() {
  auto v = nemo::Config::str("NEMO_BARRIER_TREE");
  if (!v) return std::nullopt;
  if (*v == "off" || *v == "0" || *v == "never") return UINT32_MAX;
  if (*v == "on" || *v == "1" || *v == "always") return 2;
  char* end = nullptr;
  long n = std::strtol(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0' || n < 2 || n > UINT32_MAX)
    throw std::invalid_argument(
        "NEMO_BARRIER_TREE: '" + *v +
        "' (off|on|rank threshold >= 2) — a typo silently ignored would "
        "make barrier experiments unmeasurable");
  return static_cast<std::uint32_t>(n);
}

std::optional<std::uint32_t> coll_hier_nodes_from_env() {
  auto v = nemo::Config::str("NEMO_COLL_HIER");
  if (!v) return std::nullopt;
  if (*v == "off" || *v == "0" || *v == "never") return UINT32_MAX;
  if (*v == "on" || *v == "1" || *v == "always") return 2;
  char* end = nullptr;
  long n = std::strtol(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0' || n < 2 || n > UINT32_MAX)
    throw std::invalid_argument(
        "NEMO_COLL_HIER: '" + *v +
        "' (off|on|node threshold >= 2) — a typo silently ignored would "
        "make topology experiments unmeasurable");
  return static_cast<std::uint32_t>(n);
}

std::optional<std::size_t> coll_slot_bytes_from_env() {
  if (!nemo::Config::str("NEMO_COLL_SLOT_BYTES")) return std::nullopt;
  std::size_t v =
      round_up(nemo::Config::size("NEMO_COLL_SLOT_BYTES", 0), kCacheLine);
  if (!coll_slot_in_range(v))
    throw std::invalid_argument(
        "NEMO_COLL_SLOT_BYTES: out of range (64B..16MiB)");
  return v;
}

// ---------------------------------------------------------------------------
// JSON serialization
// ---------------------------------------------------------------------------

std::string to_json(const TuningTable& t) {
  Json root = Json::object();
  // Schema 2 added the coll_* fields, schema 3 the barrier_tree_* fields,
  // schema 4 the simd_kernel / pack_nt_min rows, schema 5 the lmt_cma
  // availability/activation row (and the "cma" backend value), schema 6 the
  // coll_hier_nodes row (hierarchical two-level collectives). from_json
  // still accepts schemas 1-5 (missing fields keep their formula defaults)
  // so a pre-existing cache degrades to "newer fields uncalibrated", not a
  // parse error.
  root.set("schema", std::string("nemo-tune/6"));
  root.set("fingerprint", t.fingerprint);
  root.set("source", t.source);

  Json places = Json::object();
  for (int i = 0; i < TuningTable::kPlacements; ++i) {
    const PlacementTuning& pt = t.place[static_cast<std::size_t>(i)];
    Json p = Json::object();
    p.set("nt_min", static_cast<std::uint64_t>(pt.nt_min));
    p.set("push_nt", pt.push_nt);
    p.set("lmt_activation", static_cast<std::uint64_t>(pt.lmt_activation));
    p.set("backend", std::string(to_string(pt.backend)));
    p.set("ring_bufs", static_cast<std::uint64_t>(pt.ring_bufs));
    p.set("ring_buf_bytes", static_cast<std::uint64_t>(pt.ring_buf_bytes));
    places.set(placement_key(i), std::move(p));
  }
  root.set("placements", std::move(places));

  root.set("dma_min", static_cast<std::uint64_t>(t.dma_min));
  Json cma = Json::object();
  cma.set("available", t.cma_available);
  cma.set("activation", static_cast<std::uint64_t>(t.cma_activation));
  root.set("lmt_cma", std::move(cma));
  root.set("collective_activation",
           static_cast<std::uint64_t>(t.collective_activation));
  root.set("fastbox_max", static_cast<std::uint64_t>(t.fastbox_max));
  root.set("fastbox_slots", static_cast<std::uint64_t>(t.fastbox_slots));
  root.set("fastbox_slot_bytes",
           static_cast<std::uint64_t>(t.fastbox_slot_bytes));
  root.set("drain_budget", static_cast<std::uint64_t>(t.drain_budget));
  root.set("poll_hot", t.poll_hot);
  root.set("coll_activation", static_cast<std::uint64_t>(t.coll_activation));
  root.set("coll_slot_bytes",
           static_cast<std::uint64_t>(t.coll_slot_bytes));
  root.set("barrier_tree_ranks",
           static_cast<std::uint64_t>(t.barrier_tree_ranks));
  root.set("barrier_tree_k", static_cast<std::uint64_t>(t.barrier_tree_k));
  root.set("simd_kernel", std::string(simd::choice_name(t.simd_kernel)));
  root.set("pack_nt_min", static_cast<std::uint64_t>(t.pack_nt_min));
  root.set("coll_hier_nodes",
           static_cast<std::uint64_t>(t.coll_hier_nodes));
  return root.dump() + "\n";
}

std::optional<TuningTable> from_json(const std::string& text,
                                     std::string* err) {
  auto doc = Json::parse(text, err);
  if (!doc) return std::nullopt;
  std::string schema = (*doc)["schema"].as_string();
  if (schema != "nemo-tune/1" && schema != "nemo-tune/2" &&
      schema != "nemo-tune/3" && schema != "nemo-tune/4" &&
      schema != "nemo-tune/5" && schema != "nemo-tune/6") {
    if (err != nullptr) *err = "unknown schema";
    return std::nullopt;
  }
  TuningTable t;
  t.fingerprint = (*doc)["fingerprint"].as_string();
  t.source = (*doc)["source"].as_string();
  if (t.source.empty()) t.source = "cache";

  const Json& places = (*doc)["placements"];
  for (int i = 0; i < TuningTable::kPlacements; ++i) {
    const Json& p = places[placement_key(i)];
    if (p.is_null()) continue;  // Missing class: keep defaults.
    PlacementTuning& pt = t.place[static_cast<std::size_t>(i)];
    pt.nt_min = p["nt_min"].as_uint(pt.nt_min);
    pt.push_nt = p["push_nt"].as_bool(pt.push_nt);
    pt.lmt_activation = p["lmt_activation"].as_uint(pt.lmt_activation);
    if (auto b = backend_from_string(p["backend"].as_string()))
      pt.backend = *b;
    pt.ring_bufs =
        static_cast<std::uint32_t>(p["ring_bufs"].as_uint(pt.ring_bufs));
    pt.ring_buf_bytes = static_cast<std::uint32_t>(
        p["ring_buf_bytes"].as_uint(pt.ring_buf_bytes));
  }
  t.dma_min = (*doc)["dma_min"].as_uint(t.dma_min);
  if (const Json& cma = (*doc)["lmt_cma"]; !cma.is_null()) {
    t.cma_available = cma["available"].as_bool(t.cma_available);
    t.cma_activation = cma["activation"].as_uint(t.cma_activation);
  }
  t.collective_activation =
      (*doc)["collective_activation"].as_uint(t.collective_activation);
  t.fastbox_max = (*doc)["fastbox_max"].as_uint(t.fastbox_max);
  t.fastbox_slots = static_cast<std::uint32_t>(
      (*doc)["fastbox_slots"].as_uint(t.fastbox_slots));
  t.fastbox_slot_bytes = static_cast<std::uint32_t>(
      (*doc)["fastbox_slot_bytes"].as_uint(t.fastbox_slot_bytes));
  t.drain_budget = static_cast<std::uint32_t>(
      (*doc)["drain_budget"].as_uint(t.drain_budget));
  t.poll_hot = (*doc)["poll_hot"].as_bool(t.poll_hot);
  t.coll_activation =
      (*doc)["coll_activation"].as_uint(t.coll_activation);
  t.coll_slot_bytes = static_cast<std::uint32_t>(
      (*doc)["coll_slot_bytes"].as_uint(t.coll_slot_bytes));
  t.barrier_tree_ranks = static_cast<std::uint32_t>(
      (*doc)["barrier_tree_ranks"].as_uint(t.barrier_tree_ranks));
  t.barrier_tree_k = static_cast<std::uint32_t>(
      (*doc)["barrier_tree_k"].as_uint(t.barrier_tree_k));
  if (std::string k = (*doc)["simd_kernel"].as_string(); !k.empty()) {
    try {
      t.simd_kernel = simd::choice_from_string(k, "simd_kernel");
    } catch (const std::invalid_argument&) {
      if (err != nullptr) *err = "unknown simd_kernel";
      return std::nullopt;
    }
  }
  t.pack_nt_min = (*doc)["pack_nt_min"].as_uint(t.pack_nt_min);
  t.coll_hier_nodes = static_cast<std::uint32_t>(
      (*doc)["coll_hier_nodes"].as_uint(t.coll_hier_nodes));
  // A hand-edited or truncated cache must degrade to the formulas, not trip
  // always-compiled asserts in every program on the machine (the fastbox
  // geometry feeds shm::Fastbox::create directly, the ring geometry
  // shm::CopyRing::create, the coll geometry coll::WorldColl::create).
  if (t.fastbox_slots < 1 || t.fastbox_slots > 64 ||
      t.fastbox_slot_bytes <= 64 || t.fastbox_slot_bytes > 16 * KiB ||
      t.fastbox_slot_bytes % kCacheLine != 0 || t.drain_budget < 1 ||
      !coll_slot_in_range(t.coll_slot_bytes) || t.barrier_tree_ranks < 2 ||
      t.barrier_tree_k < 2 || t.barrier_tree_k > 64 ||
      t.coll_hier_nodes < 2) {
    if (err != nullptr) *err = "out-of-range tuning values";
    return std::nullopt;
  }
  for (const auto& pt : t.place) {
    if (pt.ring_bufs > 1024 ||
        (pt.ring_buf_bytes != 0 &&
         (pt.ring_buf_bytes < kCacheLine || pt.ring_buf_bytes > 1 * GiB ||
          pt.ring_buf_bytes % kCacheLine != 0))) {
      if (err != nullptr) *err = "out-of-range ring geometry";
      return std::nullopt;
    }
  }
  return t;
}

// ---------------------------------------------------------------------------
// Persistent cache
// ---------------------------------------------------------------------------

std::string default_cache_path(const std::string& fingerprint) {
  if (auto p = nemo::Config::str("NEMO_TUNE_CACHE")) return *p;
  std::string file = "tune-" + fingerprint + ".json";
  if (auto xdg = env_str("XDG_CACHE_HOME")) return *xdg + "/nemo/" + file;
  if (auto home = env_str("HOME")) return *home + "/.cache/nemo/" + file;
  return "/tmp/nemo-" + file;
}

std::optional<TuningTable> load_cache(const std::string& path,
                                      const std::string& expect_fingerprint) {
  std::ifstream f(path);
  if (!f) return std::nullopt;
  std::stringstream ss;
  ss << f.rdbuf();
  auto t = from_json(ss.str());
  if (!t) return std::nullopt;
  // A cache from a different machine (or a changed topology on this one) is
  // stale: ignore it rather than applying someone else's crossovers.
  if (t->fingerprint != expect_fingerprint) return std::nullopt;
  t->source = "cache";
  return t;
}

namespace {

void mkdirs_for(const std::string& path) {
  // Best-effort parent creation; store_cache reports the actual failure.
  for (std::size_t i = 1; i < path.size(); ++i)
    if (path[i] == '/') ::mkdir(path.substr(0, i).c_str(), 0755);
}

}  // namespace

bool store_cache(const std::string& path, const TuningTable& t) {
  mkdirs_for(path);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "nemo-tune: cannot write %s\n", path.c_str());
    return false;
  }
  std::string body = to_json(t);
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return true;
}

TuningTable effective_table(const Topology& topo) {
  std::string fp = topology_fingerprint(topo);
  std::optional<TuningTable> t;
  if (nemo::Config::flag("NEMO_TUNE", true))
    t = load_cache(default_cache_path(fp), fp);
  if (!t) t = formula_defaults(topo);
  return with_env_overrides(std::move(*t));
}

}  // namespace nemo::tune
