// The collective-crossover probe: run the same bcast in short real worlds
// with the path forced each way (Config::coll, bypassing NEMO_COLL) and
// hand the two wall-clock cost functions to the generic crossover search.
//
// Layering note: like tune/feedback.cpp, this file sits in tune/ but drives
// core::run to generate measurement traffic — tooling, not a runtime
// dependency.
#include <algorithm>
#include <vector>

#include "common/timing.hpp"
#include "core/comm.hpp"
#include "shm/process_runner.hpp"
#include "tune/calibrate.hpp"

namespace nemo::tune {

namespace {

/// Median wall-clock nanoseconds of one bcast at `bytes` under `mode`.
/// Returns a huge cost when the world cannot run so the search degrades
/// instead of throwing mid-calibration.
double bcast_cost_ns(const Topology& topo, const TuningTable& t,
                     coll::Mode mode, std::size_t bytes, int nranks,
                     int repeats) {
  constexpr double kUnrunnable = 1e15;
  // Pin the env knob too: an ambient NEMO_COLL would override Config::coll
  // in apply_env and make both cost functions measure the same path.
  coll::ScopedForcedMode forced(mode);
  core::Config cfg;
  cfg.nranks = nranks;
  cfg.mode = core::LaunchMode::kThreads;
  cfg.topo = topo;
  cfg.tuning = t;
  cfg.coll = mode;
  cfg.shared_pool_bytes = 4 * bytes + 8 * MiB;
  std::vector<double> samples;
  try {
    core::run(cfg, [&](core::Comm& comm) {
      std::vector<std::byte> buf(bytes, std::byte{0x5A});
      const int kIters = 8;
      comm.bcast(buf.data(), bytes, 0);  // Warm-up.
      for (int s = 0; s < repeats; ++s) {
        comm.hard_barrier();
        Timer timer;
        for (int i = 0; i < kIters; ++i) comm.bcast(buf.data(), bytes, 0);
        std::uint64_t ns = timer.elapsed_ns();
        if (comm.rank() == 0)
          samples.push_back(static_cast<double>(ns) / kIters);
      }
    });
  } catch (const std::exception&) {
    return kUnrunnable;
  }
  if (samples.empty()) return kUnrunnable;
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                   samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

std::optional<std::size_t> measure_coll_crossover(
    const Topology& topo, const TuningTable& t,
    const CalibrationOptions& opt) {
  // Time-sliced ranks measure the scheduler, not the algorithms.
  if (shm::available_cores() < 2) return std::nullopt;
  int nranks = std::min(4, std::max(2, shm::available_cores()));
  CostFn p2p = [&](std::size_t bytes) {
    return bcast_cost_ns(topo, t, coll::Mode::kP2p, bytes, nranks,
                         opt.repeats);
  };
  CostFn shm_path = [&](std::size_t bytes) {
    return bcast_cost_ns(topo, t, coll::Mode::kShm, bytes, nranks,
                         opt.repeats);
  };
  std::size_t lo = std::max<std::size_t>(512, kCacheLine);
  std::size_t hi = std::min<std::size_t>(opt.max_size, 1 * MiB);
  return find_crossover(p2p, shm_path, lo, hi, /*refine_steps=*/3);
}

}  // namespace nemo::tune
