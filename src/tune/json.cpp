#include "tune/json.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace nemo::tune {

namespace {
const Json kNullJson{};
}  // namespace

const Json& Json::operator[](const std::string& key) const {
  for (const auto& [k, v] : obj_)
    if (k == key) return v;
  return kNullJson;
}

void Json::set(const std::string& key, Json v) {
  for (auto& [k, old] : obj_) {
    if (k == key) {
      old = std::move(v);
      return;
    }
  }
  obj_.emplace_back(key, std::move(v));
}

bool Json::has(const std::string& key) const {
  for (const auto& [k, v] : obj_) {
    (void)v;
    if (k == key) return true;
  }
  return false;
}

namespace {

void dump_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string Json::dump(int indent) const {
  std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  std::string pad2(static_cast<std::size_t>(indent + 1) * 2, ' ');
  std::string out;
  switch (type_) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return bool_ ? "true" : "false";
    case Type::kNumber: {
      char buf[40];
      if (has_uint_)
        std::snprintf(buf, sizeof buf, "%llu",
                      static_cast<unsigned long long>(uint_));
      else if (num_ == std::floor(num_) && std::abs(num_) < 1e15)
        std::snprintf(buf, sizeof buf, "%.0f", num_);
      else
        // Round-trip precision: trace timestamps are microsecond doubles
        // in the 1e9 range, where %.6g would round away the ordering.
        std::snprintf(buf, sizeof buf, "%.17g", num_);
      return buf;
    }
    case Type::kString:
      dump_string(out, str_);
      return out;
    case Type::kArray: {
      if (arr_.empty()) return "[]";
      out = "[\n";
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        out += pad2 + arr_[i].dump(indent + 1);
        if (i + 1 < arr_.size()) out += ',';
        out += '\n';
      }
      out += pad + "]";
      return out;
    }
    case Type::kObject: {
      if (obj_.empty()) return "{}";
      out = "{\n";
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        out += pad2;
        dump_string(out, obj_[i].first);
        out += ": " + obj_[i].second.dump(indent + 1);
        if (i + 1 < obj_.size()) out += ',';
        out += '\n';
      }
      out += pad + "}";
      return out;
    }
  }
  return "null";
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

struct Parser {
  const char* p;
  const char* end;
  std::string err;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
      ++p;
  }

  bool fail(const std::string& what) {
    if (err.empty()) err = what;
    return false;
  }

  bool literal(const char* lit) {
    const char* q = lit;
    const char* save = p;
    while (*q) {
      if (p >= end || *p != *q) {
        p = save;
        return false;
      }
      ++p;
      ++q;
    }
    return true;
  }

  bool parse_value(Json& out) {
    skip_ws();
    if (p >= end) return fail("unexpected end of input");
    char c = *p;
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') return parse_string_value(out);
    if (literal("null")) {
      out = Json();
      return true;
    }
    if (literal("true")) {
      out = Json(true);
      return true;
    }
    if (literal("false")) {
      out = Json(false);
      return true;
    }
    return parse_number(out);
  }

  bool parse_number(Json& out) {
    char* numend = nullptr;
    // Integers round-trip exactly through the uint path.
    if (*p != '-') {
      errno = 0;
      unsigned long long u = std::strtoull(p, &numend, 10);
      if (numend != p && errno == 0 &&
          (numend >= end || (*numend != '.' && *numend != 'e' &&
                             *numend != 'E'))) {
        out = Json(static_cast<std::uint64_t>(u));
        p = numend;
        return true;
      }
    }
    double d = std::strtod(p, &numend);
    if (numend == p) return fail("bad number");
    out = Json(d);
    p = numend;
    return true;
  }

  bool parse_string(std::string& s) {
    if (p >= end || *p != '"') return fail("expected string");
    ++p;
    s.clear();
    while (p < end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p >= end) return fail("bad escape");
        switch (*p) {
          case '"': s += '"'; break;
          case '\\': s += '\\'; break;
          case '/': s += '/'; break;
          case 'n': s += '\n'; break;
          case 't': s += '\t'; break;
          case 'r': s += '\r'; break;
          case 'b': s += '\b'; break;
          case 'f': s += '\f'; break;
          case 'u': {
            if (end - p < 5) return fail("bad \\u escape");
            char hex[5] = {p[1], p[2], p[3], p[4], 0};
            long v = std::strtol(hex, nullptr, 16);
            // BMP only; enough for the ASCII schemas we own.
            if (v < 0x80) {
              s += static_cast<char>(v);
            } else if (v < 0x800) {
              s += static_cast<char>(0xC0 | (v >> 6));
              s += static_cast<char>(0x80 | (v & 0x3F));
            } else {
              s += static_cast<char>(0xE0 | (v >> 12));
              s += static_cast<char>(0x80 | ((v >> 6) & 0x3F));
              s += static_cast<char>(0x80 | (v & 0x3F));
            }
            p += 4;
            break;
          }
          default:
            return fail("bad escape");
        }
        ++p;
      } else {
        s += *p++;
      }
    }
    if (p >= end) return fail("unterminated string");
    ++p;  // Closing quote.
    return true;
  }

  bool parse_string_value(Json& out) {
    std::string s;
    if (!parse_string(s)) return false;
    out = Json(std::move(s));
    return true;
  }

  bool parse_array(Json& out) {
    ++p;  // '['
    out = Json::array();
    skip_ws();
    if (p < end && *p == ']') {
      ++p;
      return true;
    }
    for (;;) {
      Json v;
      if (!parse_value(v)) return false;
      out.push_back(std::move(v));
      skip_ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == ']') {
        ++p;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_object(Json& out) {
    ++p;  // '{'
    out = Json::object();
    skip_ws();
    if (p < end && *p == '}') {
      ++p;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (p >= end || *p != ':') return fail("expected ':'");
      ++p;
      Json v;
      if (!parse_value(v)) return false;
      out.set(key, std::move(v));
      skip_ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == '}') {
        ++p;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }
};

}  // namespace

std::optional<Json> Json::parse(const std::string& text, std::string* err) {
  Parser ps{text.data(), text.data() + text.size(), {}};
  Json out;
  bool ok = ps.parse_value(out);
  if (ok) {
    ps.skip_ws();
    if (ps.p != ps.end) {
      ok = false;
      ps.err = "trailing characters";
    }
  }
  if (!ok) {
    if (err != nullptr) *err = ps.err.empty() ? "parse error" : ps.err;
    return std::nullopt;
  }
  return out;
}

}  // namespace nemo::tune
