// In-process calibration: measure the crossover points the paper derives
// from architecture formulas, on the machine actually running. The search
// core is deliberately generic (two cost functions of size) so it is
// testable against synthetic cost models; the measurement probes feed it
// wall-clock costs of the real copy primitives.
//
// Calibration is placement-aware: each probe pins its two threads to a core
// pair of the requested placement class (skipping classes this machine does
// not have — a 1-core container calibrates nothing and keeps the formulas).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "common/topology.hpp"
#include "tune/tuning.hpp"

namespace nemo::tune {

/// Cost of performing the operation on a message of `bytes` (any unit, as
/// long as both sides of a comparison use the same one).
using CostFn = std::function<double(std::size_t)>;

/// Find the smallest size in [lo, hi] at which `cost_b` becomes cheaper
/// than `cost_a`, assuming the sign of (cost_a - cost_b) changes at most
/// once over the range (monotone crossover — true of every tradeoff we
/// tune: a constant-overhead-but-cheaper-per-byte mechanism against a
/// cheap-setup-but-costlier-per-byte one).
///
/// Scans geometrically (×2) to bracket the crossover, then bisects
/// `refine_steps` times. Returns nullopt when `cost_b` never wins on the
/// range; returns `lo` when it already wins there.
std::optional<std::size_t> find_crossover(const CostFn& cost_a,
                                          const CostFn& cost_b,
                                          std::size_t lo, std::size_t hi,
                                          int refine_steps = 5);

/// Knobs bounding how long calibration may take.
struct CalibrationOptions {
  std::size_t min_size = 4 * KiB;
  std::size_t max_size = 32 * MiB;
  int repeats = 3;          ///< Median-of-N per probe point.
  bool verbose = false;     ///< Narrate each measured crossover to stdout.
  /// Pin probe threads to the placement's core pair (disable for tests on
  /// restricted hosts where sched_setaffinity may fail).
  bool pin = true;
};

/// Measure this machine and return a table with source == "calibrated".
/// Placement classes the topology does not expose keep their formula rows;
/// measured rows replace them. Never throws on measurement trouble — a probe
/// that cannot run leaves its formula value in place.
TuningTable calibrate(const Topology& topo, const CalibrationOptions& opt = {});

// --- Individual probes (exposed for nemo-tune's narration) -----------------

/// Crossover where streaming (non-temporal) copies start beating cached
/// copies once the cost of refilling the evicted working set is charged.
/// nullopt when NT stores are unavailable or never win.
std::optional<std::size_t> measure_nt_crossover(std::size_t working_set,
                                                const CalibrationOptions& opt);

/// Crossover where a handshaked, pipelined rendezvous beats the eager
/// two-copy-through-cells path. `handshake_ns` is the measured (or assumed)
/// RTS/CTS round-trip.
std::optional<std::size_t> measure_activation_crossover(
    double handshake_ns, const CalibrationOptions& opt);

/// One-way notification latency between two cores (acquire/release flag
/// pingpong); the handshake cost feeding the activation probe. nullopt when
/// the pair cannot be pinned or timed.
std::optional<double> measure_pair_latency_ns(int core_a, int core_b,
                                              const CalibrationOptions& opt);

}  // namespace nemo::tune
