// In-process calibration: measure the crossover points the paper derives
// from architecture formulas, on the machine actually running. The search
// core is deliberately generic (two cost functions of size) so it is
// testable against synthetic cost models; the measurement probes feed it
// wall-clock costs of the real copy primitives.
//
// Calibration is placement-aware: each probe pins its two threads to a core
// pair of the requested placement class (skipping classes this machine does
// not have — a 1-core container calibrates nothing and keeps the formulas).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "common/topology.hpp"
#include "simd/simd.hpp"
#include "tune/tuning.hpp"

namespace nemo::tune {

/// Cost of performing the operation on a message of `bytes` (any unit, as
/// long as both sides of a comparison use the same one).
using CostFn = std::function<double(std::size_t)>;

/// Find the smallest size in [lo, hi] at which `cost_b` becomes cheaper
/// than `cost_a`, assuming the sign of (cost_a - cost_b) changes at most
/// once over the range (monotone crossover — true of every tradeoff we
/// tune: a constant-overhead-but-cheaper-per-byte mechanism against a
/// cheap-setup-but-costlier-per-byte one).
///
/// Scans geometrically (×2) to bracket the crossover, then bisects
/// `refine_steps` times. Returns nullopt when `cost_b` never wins on the
/// range; returns `lo` when it already wins there.
std::optional<std::size_t> find_crossover(const CostFn& cost_a,
                                          const CostFn& cost_b,
                                          std::size_t lo, std::size_t hi,
                                          int refine_steps = 5);

/// Knobs bounding how long calibration may take.
struct CalibrationOptions {
  std::size_t min_size = 4 * KiB;
  std::size_t max_size = 32 * MiB;
  int repeats = 3;          ///< Median-of-N per probe point.
  bool verbose = false;     ///< Narrate each measured crossover to stdout.
  /// Pin probe threads to the placement's core pair (disable for tests on
  /// restricted hosts where sched_setaffinity may fail).
  bool pin = true;
  /// Run the telemetry feedback pass after the crossover probes (short
  /// alltoall worlds at feedback.rank_counts; see FeedbackOptions). Also
  /// gated by NEMO_FEEDBACK (default on).
  bool feedback = true;
  /// Measure the shm-vs-pt2pt collective crossover (short bcast worlds;
  /// skipped, keeping the formula default, when the host cannot run ranks
  /// in parallel).
  bool coll = true;
  /// Race the reduction fold kernels (scalar vs each compiled+supported
  /// vector ISA, per element type) and pin the winner in the table.
  bool simd = true;
};

/// Measure this machine and return a table with source == "calibrated".
/// Placement classes the topology does not expose keep their formula rows;
/// measured rows replace them. Never throws on measurement trouble — a probe
/// that cannot run leaves its formula value in place. With opt.feedback the
/// crossover pass is followed by the counter-driven feedback pass below.
TuningTable calibrate(const Topology& topo, const CalibrationOptions& opt = {});

// --- Telemetry feedback pass ------------------------------------------------
//
// PR2 built the telemetry (ring stalls, drain exhaustion, fastbox hit rate)
// but only recorded it. This pass closes the loop: run a short alltoall
// probe, read the aggregated tune::Counters back, and adjust the parts of
// the table the crossover probes cannot see — drain budget, fastbox
// geometry/polling order, and per-placement ring depth.

struct Counters;  // tune/counters.hpp

/// Thresholds and probe shape for the feedback pass.
struct FeedbackOptions {
  /// Rank counts to probe (alltoall stresses every pair at once; 4 and 8
  /// cover the "few hot pairs" and "many pairs contending" regimes).
  int rank_counts[2] = {4, 8};
  int iters = 24;  ///< Alltoall rounds per probe world.
  /// Per-pair rendezvous payload. Several ring laps (default ring capacity
  /// is 4 x 32 KiB), so sender/receiver pipelining — and its failure mode,
  /// ring stalls — actually shows up in the counters.
  std::size_t rndv_bytes = 512 * KiB;
  std::size_t eager_bytes = 512;     ///< Per-pair eager payload (same round).
  bool verbose = false;

  /// Ring depth a zero (inherit) placement row actually ran with during the
  /// probe: the Config default, or NEMO_RING_BUFS when set. The stall
  /// reaction doubles from here so the recorded depth can never be lower
  /// than the one observed stalling. calibrate_feedback() resolves it from
  /// the environment; override only in tests.
  std::uint32_t inherited_ring_bufs = 4;

  // Reaction thresholds, as rates over progress passes / attempts.
  double stall_hi = 0.02;     ///< ring_stalls per progress pass.
  double drain_hi = 0.05;     ///< drain_exhausted per progress pass.
  double fallback_hi = 0.25;  ///< fastbox_fallbacks per fastbox attempt.
  double fastbox_dominant = 0.5;  ///< Fastbox share of sends -> poll_hot.
  /// coll_epoch_stalls per shm collective op. A high rate means the arena
  /// ops spend their time parked on unpublished doorbells/acks — the
  /// per-op synchronisation dominates the payload, so the crossover was
  /// set too low; the reaction doubles coll_activation (cap 1 MiB).
  double coll_stall_hi = 4.0;
};

/// The pure policy step: derive a new table from a counter aggregate.
/// Deterministic and side-effect free so it is unit-testable on synthetic
/// counter streams. Adjustments:
///  - drain_exhausted rate high  -> double drain_budget (cap 4096);
///  - ring_stalls rate high      -> double each placement row's ring depth
///    (materialising the Config default 4 when the row inherits; cap 32);
///  - fastbox fallback rate high -> double fastbox_slots (cap 64) and turn
///    on hot-peer-first polling;
///  - fastbox-dominant traffic   -> hot-peer-first polling;
///  - coll epoch stalls per shm op high -> double coll_activation (cap
///    1 MiB): sync-dominated arena collectives should have gone pt2pt.
TuningTable apply_counter_feedback(TuningTable t, const Counters& total,
                                   const FeedbackOptions& opt = {});

/// Run one probe world (`nranks` ranks, thread mode, alltoall of
/// opt.rndv_bytes + a small eager storm per round) against table `t` and
/// return the cross-rank counter aggregate. nullopt when the world cannot
/// run (e.g. fork-bomb-guarded CI with nranks > some hard limit) — the
/// caller then keeps `t` unchanged.
std::optional<Counters> run_feedback_probe(const Topology& topo,
                                           const TuningTable& t, int nranks,
                                           const FeedbackOptions& opt = {});

/// probe -> apply, once per rank count in opt.rank_counts (the second probe
/// runs against the already-adjusted table, so a first-round fix that holds
/// at 8 ranks is not doubled again). Returns the adjusted table.
TuningTable calibrate_feedback(const Topology& topo, TuningTable t,
                               const FeedbackOptions& opt = {});

// --- Individual probes (exposed for nemo-tune's narration) -----------------

/// Crossover where streaming (non-temporal) copies start beating cached
/// copies once the cost of refilling the evicted working set is charged.
/// nullopt when NT stores are unavailable or never win.
std::optional<std::size_t> measure_nt_crossover(std::size_t working_set,
                                                const CalibrationOptions& opt);

/// Crossover where a handshaked, pipelined rendezvous beats the eager
/// two-copy-through-cells path. `handshake_ns` is the measured (or assumed)
/// RTS/CTS round-trip.
std::optional<std::size_t> measure_activation_crossover(
    double handshake_ns, const CalibrationOptions& opt);

/// One-way notification latency between two cores (acquire/release flag
/// pingpong); the handshake cost feeding the activation probe. nullopt when
/// the pair cannot be pinned or timed.
std::optional<double> measure_pair_latency_ns(int core_a, int core_b,
                                              const CalibrationOptions& opt);

/// Crossover where the shm collective arena starts beating the pt2pt
/// algorithms, measured as wall-clock bcast cost in short real worlds
/// (NEMO_COLL forced each way; src/tune/coll_probe.cpp). nullopt when the
/// host exposes <2 cores — time-sliced ranks would measure the scheduler —
/// or when the arena path never wins on the probed range.
std::optional<std::size_t> measure_coll_crossover(
    const Topology& topo, const TuningTable& t,
    const CalibrationOptions& opt);

/// Race the reduction fold through every compiled+supported kernel (scalar
/// always runs; AVX2/AVX-512 when the host has them) over f64/f32/i32
/// operands at a reduction-typical size, and return the fastest as a
/// CONCRETE table choice (never kAuto — a cached table must replay the same
/// selection without re-probing CPUID). nullopt only if no kernel can run
/// (never on hosts this code compiles for — scalar is always supported).
std::optional<simd::Choice> measure_simd_kernel(
    const CalibrationOptions& opt);

}  // namespace nemo::tune
