// Minimal JSON document model for the tuning subsystem: the persistent
// tuning cache and the telemetry dumps are both small, schema'd documents,
// so a compact recursive-descent parser + writer beats an external
// dependency. Numbers are stored as double (every field we serialize fits
// in 53 bits) plus the original integer when exact.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace nemo::tune {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  Json(bool b) : type_(Type::kBool), bool_(b) {}                    // NOLINT
  Json(double d) : type_(Type::kNumber), num_(d) {}                 // NOLINT
  Json(std::uint64_t u)                                             // NOLINT
      : type_(Type::kNumber), num_(static_cast<double>(u)), uint_(u),
        has_uint_(true) {}
  Json(std::int64_t i)                                              // NOLINT
      : Json(static_cast<std::uint64_t>(i < 0 ? 0 : i)) {
    if (i < 0) {
      has_uint_ = false;
      num_ = static_cast<double>(i);
    }
  }
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT
  Json(const char* s) : Json(std::string(s)) {}                      // NOLINT

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }

  // --- Accessors (loose: wrong-type reads return the fallback) -------------
  [[nodiscard]] bool as_bool(bool def = false) const {
    return type_ == Type::kBool ? bool_ : def;
  }
  [[nodiscard]] double as_double(double def = 0) const {
    return type_ == Type::kNumber ? num_ : def;
  }
  [[nodiscard]] std::uint64_t as_uint(std::uint64_t def = 0) const {
    if (type_ != Type::kNumber) return def;
    if (has_uint_) return uint_;
    return num_ < 0 ? def : static_cast<std::uint64_t>(num_);
  }
  [[nodiscard]] const std::string& as_string() const { return str_; }

  [[nodiscard]] const std::vector<Json>& items() const { return arr_; }
  void push_back(Json v) { arr_.push_back(std::move(v)); }

  /// Object field lookup; returns a shared null for missing keys.
  [[nodiscard]] const Json& operator[](const std::string& key) const;
  void set(const std::string& key, Json v);
  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& fields()
      const {
    return obj_;
  }

  // --- Serialization --------------------------------------------------------
  /// Pretty-printed with 2-space indentation (stable field order).
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Parse; returns nullopt and fills `err` (if given) on malformed input.
  static std::optional<Json> parse(const std::string& text,
                                   std::string* err = nullptr);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::uint64_t uint_ = 0;
  bool has_uint_ = false;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;  ///< Insertion-ordered.
};

}  // namespace nemo::tune
