// Hierarchical two-level collectives over the transport topology.
//
// When the world's transport partitions the ranks into synthetic nodes
// (NEMO_NODES=NxM over the modeled interconnect), the flat world-wide
// schedules pay an internode link charge for almost every hop. The
// two-level schedules here confine the bulk of the traffic to the intranode
// leg — the collective arena, where every operand is written into shared
// memory once — and cross node boundaries only between one NUMA-chosen
// leader per node:
//
//   reduce/allreduce  members deposit operands in their arena slots; the
//                     node leader folds them IN ASCENDING RANK ORDER into
//                     the running prefix it received from the previous
//                     node's leader (a chain over nodes in ascending node
//                     order). With the contiguous NxM partition this
//                     reproduces the flat ascending fold exactly, so the
//                     result is bit-identical to the p2p/shm oracles.
//                     Allreduce then broadcasts the final prefix binomially
//                     over the leaders and each leader republishes through
//                     its own slot.  Internode cost: (N-1) chain hops +
//                     ceil(log2 N) bcast hops, vs O(p) for the flat tree.
//   bcast             root -> its node's leader, binomial over leaders,
//                     leaders publish through their arena slot.
//   alltoall          members hand their send rows to the leader; leaders
//                     exchange combined M*M blocks pairwise (N-1 internode
//                     messages per leader instead of p-M per rank); the
//                     destination leader repacks per-member result rows.
//
// Epochs ride the same per-Comm collective sequence as the flat families
// (coll_detail::epoch_base, phases 0/1), so hier and flat instances can
// interleave freely; pt2pt legs use coll_detail::coll_tag phases 0-5.
// Every gate below is computed from world-symmetric state only.
#include <cstring>
#include <vector>

#include "core/coll_internal.hpp"

namespace nemo::core {

namespace {

using coll_detail::coll_tag;
using coll_detail::epoch_base;
using coll_detail::fold_chunk;
using coll_detail::spin_until_quiet;

/// Aggregate leader staging budget for the hierarchical alltoall (gather
/// rows + pairwise exchange blocks). Above it the flat families win anyway
/// (the repack copies dominate), so the hier path declines.
constexpr std::size_t kHierAlltoallMaxStage = 64 * MiB;

/// The contiguous-partition view of the transport topology plus one
/// NUMA-chosen leader per synthetic node. Built from world-level state only
/// (transport node map, core binding, recorded ring placements), so every
/// rank computes the identical structure.
struct HierTopo {
  int nodes = 1;
  int my_node = 0;
  std::vector<int> first;   ///< Size nodes+1: node k = [first[k], first[k+1]).
  std::vector<int> leader;  ///< Per node: plurality-NUMA member, lowest wins.
};

HierTopo hier_topo(Engine& eng) {
  transport::Transport& tp = eng.transport();
  World& w = eng.world();
  const Topology& topo = w.topology();
  int p = eng.nranks();
  HierTopo h;
  h.nodes = tp.nodes();
  h.my_node = tp.node_of(eng.rank());
  h.first.assign(static_cast<std::size_t>(h.nodes) + 1, 0);
  for (int r = 0; r < p; ++r) {
    int node = tp.node_of(r);
    NEMO_ASSERT_MSG(r == 0 || node >= tp.node_of(r - 1),
                    "transport node partition must be contiguous");
    if (r > 0 && node != tp.node_of(r - 1))
      h.first[static_cast<std::size_t>(node)] = r;
  }
  h.first[static_cast<std::size_t>(h.nodes)] = p;
  h.leader.resize(static_cast<std::size_t>(h.nodes));
  for (int k = 0; k < h.nodes; ++k) {
    int b = h.first[static_cast<std::size_t>(k)];
    int e = h.first[static_cast<std::size_t>(k) + 1];
    // Same NUMA derivation the World uses for the flat coll_leader: the
    // pinned core's node when bound, else the recorded ring-placement
    // decision (computed even when mbind never ran, so the choice stays
    // deterministic on single-node hosts).
    std::vector<int> numa(static_cast<std::size_t>(e - b), -1);
    for (int r = b; r < e; ++r) {
      int core = w.core_of(r);
      if (core >= 0 && core < topo.num_cores)
        numa[static_cast<std::size_t>(r - b)] = topo.numa_node_of(core);
      else if (p > 1)
        numa[static_cast<std::size_t>(r - b)] =
            w.ring_placement(r, (r + 1) % p).node;
    }
    h.leader[static_cast<std::size_t>(k)] = b + coll::choose_leader(numa);
  }
  return h;
}

}  // namespace

bool Comm::use_hier_coll(std::size_t op_bytes) {
  Engine& eng = engine_;
  if (op_bytes == 0 || size() < 2) return false;
  // Auto mode only: forced NEMO_COLL=shm|p2p pin the flat families, which
  // is what lets the conformance tests hold a flat reference against the
  // hier result on the same topology.
  if (eng.world().coll_mode() != coll::Mode::kAuto) return false;
  // Degraded worlds stay flat: the leader chain has no survivor remap.
  if (eng.any_fenced()) return false;
  int nodes = eng.transport().nodes();
  return nodes >= 2 &&
         static_cast<std::uint32_t>(nodes) >= eng.coll_hier_nodes();
}

// ---------------------------------------------------------------------------
// Bcast
// ---------------------------------------------------------------------------

void Comm::bcast_hier(void* buf, std::size_t bytes, int root,
                      std::uint64_t cs) {
  Engine& eng = engine_;
  coll::WorldColl& cw = eng.coll_view();
  int r = rank();
  HierTopo h = hier_topo(eng);
  int k = h.my_node;
  int leader = h.leader[static_cast<std::size_t>(k)];
  int root_node = eng.transport().node_of(root);
  int root_leader = h.leader[static_cast<std::size_t>(root_node)];
  eng.counters().coll_hier_ops++;
  // Single-chunk arena publish needs the payload to fit one slot; larger
  // messages run the intranode leg over pt2pt (still two-level).
  bool arena_ok = cw.valid() && bytes <= cw.slot_bytes();
  std::uint64_t e = epoch_base(cs) | 1;

  // Leg 1: root hands the payload to its node's leader (one intranode hop;
  // the arena machinery buys nothing for a single pair).
  if (r == root && r != root_leader)
    send(buf, bytes, root_leader, coll_tag(cs, 0), 1);
  if (r == root_leader && r != root)
    recv(buf, bytes, root, coll_tag(cs, 0), nullptr, 1);

  if (r == leader) {
    // Leg 2: binomial over the node leaders, rooted at the root's node
    // (every internode hop is one modeled-link charge).
    int vn = (k - root_node + h.nodes) % h.nodes;
    if (vn != 0) {
      int mask = 1;
      while ((vn & mask) == 0) mask <<= 1;
      int parent =
          h.leader[static_cast<std::size_t>(((vn & ~mask) + root_node) %
                                            h.nodes)];
      recv(buf, bytes, parent, coll_tag(cs, 1), nullptr, 1);
    }
    for (int mask = 1; mask < h.nodes && (vn & (mask - 1)) == 0; mask <<= 1) {
      if ((vn & mask) == 0) {
        int child = vn | mask;
        if (child < h.nodes)
          send(buf, bytes,
               h.leader[static_cast<std::size_t>((child + root_node) %
                                                 h.nodes)],
               coll_tag(cs, 1), 1);
      }
    }
    // Leg 3: intranode publish. Direct when the buffer is arena-resident
    // (every member pulls straight from it), else one staged slot copy that
    // all members read — the write-once discipline the arena exists for.
    int b = h.first[static_cast<std::size_t>(k)];
    int end = h.first[static_cast<std::size_t>(k) + 1];
    if (arena_ok) {
      bool direct = bytes > 0 && cw.arena().contains(buf, bytes);
      if (direct) {
        cw.begin_epoch(r, e, cw.arena().offset_of(buf), bytes);
      } else {
        cw.begin_epoch(r, e, shm::kNil, bytes);
        std::memcpy(cw.payload(r), buf, bytes);
        cw.publish_chunks(r, 1);
      }
      for (int w = b; w < end; ++w)
        if (w != r && w != root)
          spin_until_quiet(eng, resil::Site::kCollAck, w,
                           [&] { return cw.acked(w, e, 1); });
    } else {
      std::vector<Request> reqs;
      for (int w = b; w < end; ++w)
        if (w != r && w != root)
          reqs.push_back(isend(buf, bytes, w, coll_tag(cs, 2), 1));
      waitall(reqs);
    }
    return;
  }

  // Member: pull the payload from the node leader (the root already holds
  // it and took no part in leg 3).
  if (r == root) return;
  if (arena_ok) {
    spin_until_quiet(eng, resil::Site::kCollDoorbell, leader,
                     [&] { return cw.ready(leader, e, 0); });
    coll::SlotHeader* sh = cw.header(leader);
    if (sh->src_off != shm::kNil) {
      std::memcpy(buf, cw.arena().at(sh->src_off), bytes);
    } else {
      spin_until_quiet(eng, resil::Site::kCollDoorbell, leader,
                       [&] { return cw.ready(leader, e, 1); });
      std::memcpy(buf, cw.payload(leader), bytes);
    }
    cw.set_ack(r, e, 1);
  } else {
    recv(buf, bytes, leader, coll_tag(cs, 2), nullptr, 1);
  }
}

// ---------------------------------------------------------------------------
// Reduce / allreduce
// ---------------------------------------------------------------------------

template <typename T>
void Comm::reduce_hier(const T* in, T* out, std::size_t n, ReduceOp op,
                       int root, bool all, std::uint64_t cs) {
  Engine& eng = engine_;
  coll::WorldColl& cw = eng.coll_view();
  int r = rank();
  std::size_t bytes = n * sizeof(T);
  HierTopo h = hier_topo(eng);
  int k = h.my_node;
  int leader = h.leader[static_cast<std::size_t>(k)];
  int last_leader = h.leader[static_cast<std::size_t>(h.nodes) - 1];
  eng.counters().coll_hier_ops++;
  bool arena_ok = cw.valid() && bytes <= cw.slot_bytes();
  std::uint64_t e = epoch_base(cs);       // Phase 0: member deposits.
  std::uint64_t er = epoch_base(cs) | 1;  // Phase 1: leader result publish.

  if (r != leader) {
    // Member: hand the operand to the node leader. Direct deposits publish
    // the arena offset so the leader folds straight from the user buffer.
    if (arena_ok) {
      bool direct = cw.arena().contains(in, bytes);
      if (direct) {
        cw.begin_epoch(r, e, cw.arena().offset_of(in), bytes);
      } else {
        cw.begin_epoch(r, e, shm::kNil, bytes);
        std::memcpy(cw.payload(r), in, bytes);
        cw.publish_chunks(r, 1);
      }
    } else {
      send(in, bytes, leader, coll_tag(cs, 0), 1);
    }
    // Result leg. Allreduce: every member reads its own leader's publish.
    // Pure reduce: the result lives at the LAST node's leader, which hands
    // it to the root (root == 0 by the dispatch gate, so the root can be a
    // plain member here when node 0's leader is NUMA-chosen elsewhere).
    if (all) {
      if (arena_ok) {
        spin_until_quiet(eng, resil::Site::kCollDoorbell, leader,
                         [&] { return cw.ready(leader, er, 1); });
        std::memcpy(out, cw.payload(leader), bytes);
        cw.set_ack(r, er, 1);
      } else {
        recv(out, bytes, leader, coll_tag(cs, 2), nullptr, 1);
      }
    } else if (r == root) {
      recv(out, bytes, last_leader, coll_tag(cs, 2), nullptr, 1);
    }
    if (arena_ok) {
      // Deposit-consumed handshake: the leader acks its own cell once every
      // member operand (direct reads included) is folded; until then
      // neither a direct `in` nor this slot may be reused.
      spin_until_quiet(eng, resil::Site::kCollAck, leader,
                       [&] { return cw.acked(leader, e, 1); });
    }
    return;
  }

  // Leader. Accumulate into `out` whenever it is significant on this rank
  // (allreduce everywhere, reduce at the root), else into the scratch the
  // flat reduce uses.
  T* acc;
  if (all || r == root) {
    acc = out;
  } else {
    if (reduce_scratch_.size() < bytes) reduce_scratch_.resize(bytes);
    acc = reinterpret_cast<T*>(reduce_scratch_.data());
  }
  // Chain prefix: node k's leader receives the fold of every rank below
  // first[k] from the previous node's leader.
  bool seeded = false;
  if (k > 0) {
    recv(acc, bytes, h.leader[static_cast<std::size_t>(k) - 1],
         coll_tag(cs, 1), nullptr, 1);
    seeded = true;
  }
  // Fold the node's members in ascending rank order. With the contiguous
  // partition this extends the flat ascending fold exactly (node 0 seeds
  // with rank 0 == root), so the chain result is bit-identical to the
  // p2p/shm oracles regardless of deposit modes or leader choice.
  std::vector<std::byte> stage;
  int b = h.first[static_cast<std::size_t>(k)];
  int end = h.first[static_cast<std::size_t>(k) + 1];
  for (int w = b; w < end; ++w) {
    const T* src;
    if (w == r) {
      src = in;
    } else if (arena_ok) {
      spin_until_quiet(eng, resil::Site::kCollGather, w,
                       [&] { return cw.ready(w, e, 0); });
      coll::SlotHeader* sh = cw.header(w);
      if (sh->src_off != shm::kNil) {
        src = reinterpret_cast<const T*>(cw.arena().at(sh->src_off));
      } else {
        spin_until_quiet(eng, resil::Site::kCollGather, w,
                         [&] { return cw.ready(w, e, 1); });
        src = reinterpret_cast<const T*>(cw.payload(w));
      }
    } else {
      if (stage.size() < bytes) stage.resize(bytes);
      recv(stage.data(), bytes, w, coll_tag(cs, 0), nullptr, 1);
      src = reinterpret_cast<const T*>(stage.data());
    }
    if (!seeded) {
      std::memcpy(acc, src, bytes);
      seeded = true;
    } else {
      fold_chunk(eng, op, acc, src, n);
    }
  }
  // Every member operand is folded: release direct buffers and slots.
  if (arena_ok && end - b > 1) cw.set_ack(r, e, 1);
  // Chain hop to the next node's leader (internode, modeled-charged).
  if (k < h.nodes - 1)
    send(acc, bytes, h.leader[static_cast<std::size_t>(k) + 1],
         coll_tag(cs, 1), 1);

  if (!all) {
    // Pure reduce: the final leader owns the full fold; hand it to root 0.
    if (r == last_leader && r != root)
      send(acc, bytes, root, coll_tag(cs, 2), 1);
    else if (r == root && r != last_leader)
      recv(out, bytes, last_leader, coll_tag(cs, 2), nullptr, 1);
    return;
  }

  // Allreduce: binomial bcast over the leaders rooted at the final node,
  // then each leader republishes through its own slot.
  int vn = (k + 1) % h.nodes;  // Relative to root node N-1.
  if (vn != 0) {
    int mask = 1;
    while ((vn & mask) == 0) mask <<= 1;
    int parent = h.leader[static_cast<std::size_t>(
        ((vn & ~mask) + h.nodes - 1) % h.nodes)];
    recv(acc, bytes, parent, coll_tag(cs, 3), nullptr, 1);
  }
  for (int mask = 1; mask < h.nodes && (vn & (mask - 1)) == 0; mask <<= 1) {
    if ((vn & mask) == 0) {
      int child = vn | mask;
      if (child < h.nodes)
        send(acc, bytes,
             h.leader[static_cast<std::size_t>((child + h.nodes - 1) %
                                               h.nodes)],
             coll_tag(cs, 3), 1);
    }
  }
  if (end - b > 1) {
    if (arena_ok) {
      cw.begin_epoch(r, er, shm::kNil, bytes);
      std::memcpy(cw.payload(r), acc, bytes);
      cw.publish_chunks(r, 1);
      for (int w = b; w < end; ++w)
        if (w != r)
          spin_until_quiet(eng, resil::Site::kCollAck, w,
                           [&] { return cw.acked(w, er, 1); });
    } else {
      std::vector<Request> reqs;
      for (int w = b; w < end; ++w)
        if (w != r) reqs.push_back(isend(acc, bytes, w, coll_tag(cs, 2), 1));
      waitall(reqs);
    }
  }
}

template void Comm::reduce_hier<double>(const double*, double*, std::size_t,
                                        ReduceOp, int, bool, std::uint64_t);
template void Comm::reduce_hier<float>(const float*, float*, std::size_t,
                                       ReduceOp, int, bool, std::uint64_t);
template void Comm::reduce_hier<std::int64_t>(const std::int64_t*,
                                              std::int64_t*, std::size_t,
                                              ReduceOp, int, bool,
                                              std::uint64_t);
template void Comm::reduce_hier<std::int32_t>(const std::int32_t*,
                                              std::int32_t*, std::size_t,
                                              ReduceOp, int, bool,
                                              std::uint64_t);

// ---------------------------------------------------------------------------
// Alltoall
// ---------------------------------------------------------------------------

bool Comm::alltoall_hier(const void* sendbuf, std::size_t per_rank,
                         void* recvbuf, std::uint64_t cs) {
  Engine& eng = engine_;
  int p = size(), r = rank();
  HierTopo h = hier_topo(eng);
  int k = h.my_node;
  int leader = h.leader[static_cast<std::size_t>(k)];
  std::size_t row = static_cast<std::size_t>(p) * per_rank;
  // Leader staging: M gathered rows + (M-1) repacked result rows + the two
  // pairwise exchange blocks. World-symmetric (uniform NxM partition), so
  // every rank reaches the same verdict and the caller's fall-through to
  // the flat families stays lock-step.
  std::size_t m_max = 0;
  for (int j = 0; j < h.nodes; ++j)
    m_max = std::max(m_max,
                     static_cast<std::size_t>(
                         h.first[static_cast<std::size_t>(j) + 1] -
                         h.first[static_cast<std::size_t>(j)]));
  if (2 * m_max * row + 2 * m_max * m_max * per_rank > kHierAlltoallMaxStage)
    return false;
  eng.counters().coll_hier_ops++;

  const auto* in = static_cast<const std::byte*>(sendbuf);
  auto* out = static_cast<std::byte*>(recvbuf);
  int b = h.first[static_cast<std::size_t>(k)];
  int end = h.first[static_cast<std::size_t>(k) + 1];
  int m = end - b;

  if (r != leader) {
    // Member: one intranode row up, one intranode row back.
    send(in, row, leader, coll_tag(cs, 3), 1);
    recv(out, row, leader, coll_tag(cs, 5), nullptr, 1);
    return true;
  }

  // Leader. Gather the node's send rows (own row stays in place).
  std::vector<std::byte> rows(static_cast<std::size_t>(m) * row);
  std::vector<const std::byte*> row_of(static_cast<std::size_t>(m));
  {
    std::vector<Request> reqs;
    for (int w = b; w < end; ++w) {
      auto idx = static_cast<std::size_t>(w - b);
      if (w == r) {
        row_of[idx] = in;
        continue;
      }
      std::byte* dst = rows.data() + idx * row;
      row_of[idx] = dst;
      reqs.push_back(irecv(dst, row, w, coll_tag(cs, 3), 1));
    }
    waitall(reqs);
  }

  // Per-member result rows (own row assembles straight into recvbuf).
  std::vector<std::byte> res(static_cast<std::size_t>(m - 1) * row);
  auto res_row = [&](int w) -> std::byte* {
    if (w == r) return out;
    auto idx = static_cast<std::size_t>(w - b);
    // Compact over the leader's own slot.
    if (w > r) --idx;
    return res.data() + idx * row;
  };

  // Intranode blocks: src member s -> dst member d, straight repack.
  for (int s = b; s < end; ++s) {
    const std::byte* srow = row_of[static_cast<std::size_t>(s - b)];
    for (int d = b; d < end; ++d)
      std::memcpy(res_row(d) + static_cast<std::size_t>(s) * per_rank,
                  srow + static_cast<std::size_t>(d) * per_rank, per_rank);
  }

  // Pairwise exchange over nodes: one combined m x m_j block per remote
  // leader, packed [src member][dst member] so the receiver can unpack by
  // strides. N-1 internode messages instead of each rank's p-M.
  std::vector<std::byte> out_stage, in_stage;
  for (int s = 1; s < h.nodes; ++s) {
    int to_node = (k + s) % h.nodes;
    int from_node = (k - s + h.nodes) % h.nodes;
    int tb = h.first[static_cast<std::size_t>(to_node)];
    int te = h.first[static_cast<std::size_t>(to_node) + 1];
    int fb = h.first[static_cast<std::size_t>(from_node)];
    int fe = h.first[static_cast<std::size_t>(from_node) + 1];
    std::size_t out_bytes =
        static_cast<std::size_t>(m) * static_cast<std::size_t>(te - tb) *
        per_rank;
    std::size_t in_bytes =
        static_cast<std::size_t>(fe - fb) * static_cast<std::size_t>(m) *
        per_rank;
    if (out_stage.size() < out_bytes) out_stage.resize(out_bytes);
    if (in_stage.size() < in_bytes) in_stage.resize(in_bytes);
    for (int sm = 0; sm < m; ++sm) {
      const std::byte* srow = row_of[static_cast<std::size_t>(sm)];
      for (int d = tb; d < te; ++d)
        std::memcpy(out_stage.data() +
                        (static_cast<std::size_t>(sm) *
                             static_cast<std::size_t>(te - tb) +
                         static_cast<std::size_t>(d - tb)) *
                            per_rank,
                    srow + static_cast<std::size_t>(d) * per_rank, per_rank);
    }
    Request sq = isend(out_stage.data(), out_bytes,
                       h.leader[static_cast<std::size_t>(to_node)],
                       coll_tag(cs, 4), 1);
    Request rq = irecv(in_stage.data(), in_bytes,
                       h.leader[static_cast<std::size_t>(from_node)],
                       coll_tag(cs, 4), 1);
    wait(sq);
    wait(rq);
    // Scatter the received [src member of from_node][dst member] blocks
    // into the per-member result rows.
    for (int sm = 0; sm < fe - fb; ++sm) {
      int g = fb + sm;
      for (int d = b; d < end; ++d)
        std::memcpy(res_row(d) + static_cast<std::size_t>(g) * per_rank,
                    in_stage.data() +
                        (static_cast<std::size_t>(sm) *
                             static_cast<std::size_t>(m) +
                         static_cast<std::size_t>(d - b)) *
                            per_rank,
                    per_rank);
    }
  }

  // Hand each member its assembled result row.
  {
    std::vector<Request> reqs;
    for (int w = b; w < end; ++w)
      if (w != r)
        reqs.push_back(isend(res_row(w), row, w, coll_tag(cs, 5), 1));
    waitall(reqs);
  }
  return true;
}

}  // namespace nemo::core
