// The per-world collective arena: one slot per rank plus a flat barrier,
// carved from the shm::Arena like the fastbox/ring regions and addressed by
// byte offset (threads and forked processes see the identical layout).
//
// Layout (all pieces cacheline-aligned, the whole region page-aligned so the
// World can mbind/interleave it — every rank reads every slot, so no single
// home node is right):
//
//   CollState                      geometry + the barrier release word
//   BarrierCell[nranks]            per-rank arrival flags (padded)
//   AckCell[nranks]                per-rank consumption counters (padded)
//   ProbeCell[2 * nranks]          per-rank seq-tagged count-probe cells
//                                  (parity double-buffered, see below)
//   nranks x slot:
//     SlotHeader                   epoch / doorbell / direct-read offset
//     table[2 * nranks] u64        per-dest (offset, len) for alltoallv
//     payload[slot_bytes]          staged operand bytes
//
// Synchronisation protocol (the algorithms live in core/collectives.cpp):
//
//  - Epochs. Every collective instance owns a unique epoch value (the
//    per-Comm collective sequence number, shifted to leave room for phases).
//    A writer prepares its slot meta (doorbell reset, src_off, bytes) and
//    publishes with a RELEASE store of `epoch`; readers ACQUIRE-poll until
//    the slot's epoch matches the instance they are executing. Because all
//    ranks run collectives in the same order and each shm collective ends
//    with a completion handshake (flat barrier or ack wait), an epoch value
//    can never be observed stale — the previous instance fully drained.
//
//  - Doorbell. `chunks` counts payload chunks published within the epoch
//    (RELEASE-stored after the chunk bytes). Readers pipeline behind the
//    writer by acquiring `chunks >= k` instead of waiting for the whole
//    message — this is what lets a bcast larger than the slot stream
//    through it ring-style.
//
//  - Acks. Readers RELEASE-store epoch-tagged consumption counters
//    ((epoch << 24) | chunks_consumed) into their own padded AckCell; the
//    writer ACQUIRE-polls them before overwriting a sub-buffer and before
//    returning. The epoch tag makes stale counters from earlier collectives
//    compare strictly smaller, so cells never need resetting.
//
//  - Flat barrier. A sense-reversing barrier generalised to a monotonic
//    sequence: each rank RELEASE-stores its arrival sequence into its padded
//    flag, rank 0 gathers all flags and RELEASE-stores the global release
//    word, everyone else spins on that single word. O(1) cache lines per
//    rank per barrier instead of the O(log n) cell-queue messages of the
//    pt2pt dissemination barrier. Past the tuned `barrier_tree_ranks` the
//    arrival phase instead combines up a k-ary tree over the same cells: a
//    parent publishes its flag only after its children's flags, so rank 0
//    gathers k flags instead of n-1 (the release stays the single word —
//    one line every spinner reads). The cells are agnostic to which
//    schedule runs; core/collectives.cpp picks flat vs tree world-
//    symmetrically from the tuning table.
//
//  - Count probes. Auto-mode alltoallv needs a rank-consistent size proxy
//    before it can choose a family, but its counts are asymmetric — so the
//    ranks exchange one u64 (their total row bytes) through seq-tagged
//    ProbeCells next to the alltoallv count tables. Cells are
//    double-buffered by sequence parity: every rank reads every rank's
//    value each instance, so a writer can run at most one instance ahead
//    of the slowest reader, and the parity buffer it then overwrites is
//    one every reader has already consumed. (A single cell would race: a
//    rank whose next alltoallv exchanges zero bytes with a straggler can
//    overwrite its cell before that straggler read it.)
#pragma once

#include <cstdint>
#include <cstring>

#include "common/common.hpp"
#include "shm/arena.hpp"

namespace nemo::coll {

/// One rank's slot header. The writer owns every field; readers only load.
struct SlotHeader {
  alignas(kCacheLine) std::uint64_t epoch;  ///< RELEASE-published last.
  std::uint64_t chunks;   ///< Doorbell: payload chunks published this epoch.
  std::uint64_t src_off;  ///< Direct-read arena offset; kNil = staged.
  std::uint64_t bytes;    ///< Op-specific meta (bytes, rounds, ...).
};
static_assert(sizeof(SlotHeader) == kCacheLine);

/// Flat-barrier arrival flag, one line per rank so arrivals never bounce.
struct BarrierCell {
  alignas(kCacheLine) std::uint64_t seq;
};
static_assert(sizeof(BarrierCell) == kCacheLine);

/// Reader consumption counter, epoch-tagged: (epoch << 24) | consumed
/// (see ack_value() for the bit-budget rationale).
struct AckCell {
  alignas(kCacheLine) std::uint64_t tagged;
};
static_assert(sizeof(AckCell) == kCacheLine);

/// One parity buffer of a rank's count-probe cell: `value` is published
/// first, then `seq` with RELEASE; readers ACQUIRE-poll seq for an exact
/// match (monotonic per parity, so the spin always terminates).
struct ProbeCell {
  alignas(kCacheLine) std::uint64_t seq;
  std::uint64_t value;
};
static_assert(sizeof(ProbeCell) == kCacheLine);

/// Shared header of the whole region.
struct CollState {
  alignas(kCacheLine) std::uint32_t nranks;
  std::uint32_t slot_bytes;   ///< Payload capacity per rank.
  std::uint64_t slot_stride;  ///< Header + table + payload, line-rounded.
  alignas(kCacheLine) std::uint64_t release_seq;  ///< Flat-barrier release.
};

/// View over one world's collective arena (cheap to copy; the engine keeps
/// one). Default-constructed views are invalid placeholders.
class WorldColl {
 public:
  /// Number of 4-sub-buffer pipeline stages a staged bcast splits the slot
  /// into (writer may run this many chunks ahead of the slowest reader).
  static constexpr std::uint64_t kBcastSubBufs = 4;

  static std::uint64_t table_bytes(int nranks) {
    return round_up(2 * sizeof(std::uint64_t) *
                        static_cast<std::uint64_t>(nranks),
                    kCacheLine);
  }

  static std::uint64_t slot_stride(int nranks, std::uint32_t slot_bytes) {
    return sizeof(SlotHeader) + table_bytes(nranks) +
           round_up(slot_bytes, kCacheLine);
  }

  /// Exact page-rounded extent create() allocates (the span to mbind).
  static std::size_t region_bytes(int nranks, std::uint32_t slot_bytes) {
    std::uint64_t n = static_cast<std::uint64_t>(nranks);
    return round_up(sizeof(CollState) + n * sizeof(BarrierCell) +
                        n * sizeof(AckCell) + 2 * n * sizeof(ProbeCell) +
                        n * slot_stride(nranks, slot_bytes),
                    shm::Arena::kPageBytes);
  }

  /// Arena bytes to budget for create() (region + alignment slack).
  static std::size_t footprint(int nranks, std::uint32_t slot_bytes) {
    return region_bytes(nranks, slot_bytes) + shm::Arena::kPageBytes;
  }

  /// Carve and zero-init the region (page-aligned so the caller can bind or
  /// interleave exactly these pages).
  static std::uint64_t create(shm::Arena& arena, int nranks,
                              std::uint32_t slot_bytes) {
    NEMO_ASSERT(nranks >= 1);
    NEMO_ASSERT(slot_bytes >= kCacheLine && slot_bytes % kCacheLine == 0);
    std::uint64_t n = static_cast<std::uint64_t>(nranks);
    std::size_t total = sizeof(CollState) + n * sizeof(BarrierCell) +
                        n * sizeof(AckCell) + 2 * n * sizeof(ProbeCell) +
                        n * slot_stride(nranks, slot_bytes);
    std::uint64_t off = arena.alloc_pages(total);
    std::memset(arena.at(off), 0, total);
    auto* st = arena.at_as<CollState>(off);
    st->nranks = static_cast<std::uint32_t>(nranks);
    st->slot_bytes = slot_bytes;
    st->slot_stride = slot_stride(nranks, slot_bytes);
    return off;
  }

  WorldColl() = default;
  WorldColl(shm::Arena& arena, std::uint64_t off)
      : arena_(&arena), st_(arena.at_as<CollState>(off)) {
    std::byte* base = reinterpret_cast<std::byte*>(st_);
    barrier_ = reinterpret_cast<BarrierCell*>(base + sizeof(CollState));
    acks_ = reinterpret_cast<AckCell*>(barrier_ + st_->nranks);
    probes_ = reinterpret_cast<ProbeCell*>(acks_ + st_->nranks);
    slots_ = reinterpret_cast<std::byte*>(probes_ + 2 * st_->nranks);
  }

  [[nodiscard]] bool valid() const { return st_ != nullptr; }
  [[nodiscard]] int nranks() const { return static_cast<int>(st_->nranks); }
  [[nodiscard]] std::size_t slot_bytes() const { return st_->slot_bytes; }
  [[nodiscard]] shm::Arena& arena() const { return *arena_; }

  [[nodiscard]] SlotHeader* header(int r) const {
    return reinterpret_cast<SlotHeader*>(slot_base(r));
  }
  [[nodiscard]] std::uint64_t* table(int r) const {
    return reinterpret_cast<std::uint64_t*>(slot_base(r) +
                                            sizeof(SlotHeader));
  }
  [[nodiscard]] std::byte* payload(int r) const {
    return slot_base(r) + sizeof(SlotHeader) + table_bytes(nranks());
  }

  // --- Epoch / doorbell (writer side: rank r's own slot only) --------------

  /// Open epoch `e` on rank r's slot: reset the doorbell, record meta, then
  /// RELEASE-publish the epoch. Safe because the previous collective's
  /// completion handshake ordered every old reader before this store.
  void begin_epoch(int r, std::uint64_t e, std::uint64_t src_off,
                   std::uint64_t bytes) const {
    SlotHeader* h = header(r);
    shm::aref(h->chunks).store(0, std::memory_order_relaxed);
    h->src_off = src_off;
    h->bytes = bytes;
    shm::aref(h->epoch).store(e, std::memory_order_release);
  }

  void publish_chunks(int r, std::uint64_t k) const {
    shm::aref(header(r)->chunks).store(k, std::memory_order_release);
  }

  /// Reader: is rank r's slot at epoch `e` with at least `k` chunks?
  [[nodiscard]] bool ready(int r, std::uint64_t e, std::uint64_t k) const {
    SlotHeader* h = header(r);
    if (shm::aref(h->epoch).load(std::memory_order_acquire) != e)
      return false;
    return k == 0 ||
           shm::aref(h->chunks).load(std::memory_order_acquire) >= k;
  }

  // --- Epoch-tagged acks ---------------------------------------------------

  /// 24 bits of chunk count (a 16M-chunk message at the 64 B minimum chunk
  /// is 1 GiB; practical sub-chunks are KiB-sized) leave 40 bits of epoch.
  /// Epochs carry 3 phase bits (core/collectives.cpp), so the budget is
  /// ~2^37 collective instances — weeks of continuous back-to-back
  /// operations. Both budgets are asserted (always-on) so an overflow
  /// fails loudly instead of silently breaking the tag's monotonicity.
  static std::uint64_t ack_value(std::uint64_t e, std::uint64_t consumed) {
    NEMO_ASSERT(consumed < (1ull << 24) && e < (1ull << 40));
    return (e << 24) | consumed;
  }
  void set_ack(int r, std::uint64_t e, std::uint64_t consumed) const {
    shm::aref(acks_[r].tagged)
        .store(ack_value(e, consumed), std::memory_order_release);
  }
  [[nodiscard]] bool acked(int r, std::uint64_t e,
                           std::uint64_t consumed) const {
    return shm::aref(acks_[r].tagged).load(std::memory_order_acquire) >=
           ack_value(e, consumed);
  }

  // --- Count probes (auto-mode alltoallv's symmetric size proxy) -----------

  /// Publish rank r's probe value for instance `seq` (parity-selected
  /// buffer; value first, seq RELEASE-last).
  void probe_publish(int r, std::uint64_t seq, std::uint64_t value) const {
    ProbeCell& c = probe_cell(r, seq);
    shm::aref(c.value).store(value, std::memory_order_relaxed);
    shm::aref(c.seq).store(seq, std::memory_order_release);
  }
  /// Has rank r published instance `seq`? Exact match: the same-parity
  /// buffer only ever holds seq-2 (stale, keep spinning) or seq — a writer
  /// cannot reach seq+2 before every rank consumed seq (all-read-all).
  [[nodiscard]] bool probe_ready(int r, std::uint64_t seq) const {
    return shm::aref(probe_cell(r, seq).seq)
               .load(std::memory_order_acquire) == seq;
  }
  /// The value behind a successful probe_ready (ordered by its acquire).
  [[nodiscard]] std::uint64_t probe_value(int r, std::uint64_t seq) const {
    return shm::aref(probe_cell(r, seq).value)
        .load(std::memory_order_relaxed);
  }

  // --- Flat barrier primitives (the spin loops live with the engine so
  // they can keep pt2pt progress flowing) ----------------------------------

  void barrier_arrive(int r, std::uint64_t seq) const {
    shm::aref(barrier_[r].seq).store(seq, std::memory_order_release);
  }
  [[nodiscard]] bool barrier_arrived(int r, std::uint64_t seq) const {
    return shm::aref(barrier_[r].seq).load(std::memory_order_acquire) >= seq;
  }
  void barrier_release(std::uint64_t seq) const {
    shm::aref(st_->release_seq).store(seq, std::memory_order_release);
  }
  [[nodiscard]] bool barrier_released(std::uint64_t seq) const {
    return shm::aref(st_->release_seq).load(std::memory_order_acquire) >=
           seq;
  }

  // --- Death-fence reclamation ---------------------------------------------

  /// Tombstone a dead rank's cells so no surviving wait can park on them:
  /// its barrier arrival and ack compare with >=, so pinning them to the
  /// maximum makes the dead rank permanently "arrived"/"acked"; its slot
  /// epoch is pinned to ~0, which no live epoch ever equals, so ready()
  /// reads of the dead slot stay false and survivors skip it instead of
  /// consuming stale bytes. Idempotent. Returns the cell count reclaimed.
  int reclaim_rank(int r) const {
    shm::aref(barrier_[r].seq).store(UINT64_MAX, std::memory_order_release);
    shm::aref(acks_[r].tagged).store(UINT64_MAX, std::memory_order_release);
    SlotHeader* h = header(r);
    shm::aref(h->chunks).store(0, std::memory_order_relaxed);
    shm::aref(h->epoch).store(UINT64_MAX, std::memory_order_release);
    return 3;
  }

 private:
  [[nodiscard]] std::byte* slot_base(int r) const {
    NEMO_ASSERT(r >= 0 && r < nranks());
    return slots_ + static_cast<std::uint64_t>(r) * st_->slot_stride;
  }
  [[nodiscard]] ProbeCell& probe_cell(int r, std::uint64_t seq) const {
    NEMO_ASSERT(r >= 0 && r < nranks());
    return probes_[2 * static_cast<std::uint64_t>(r) + (seq & 1)];
  }

  shm::Arena* arena_ = nullptr;
  CollState* st_ = nullptr;
  BarrierCell* barrier_ = nullptr;
  AckCell* acks_ = nullptr;
  ProbeCell* probes_ = nullptr;
  std::byte* slots_ = nullptr;
};

}  // namespace nemo::coll
