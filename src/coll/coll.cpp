#include "coll/coll.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <stdexcept>

#include "common/options.hpp"

namespace nemo::coll {

const char* to_string(Mode m) {
  switch (m) {
    case Mode::kAuto: return "auto";
    case Mode::kShm: return "shm";
    case Mode::kP2p: return "p2p";
  }
  return "?";
}

std::optional<Mode> mode_from_string(const std::string& s) {
  if (s == "auto") return Mode::kAuto;
  if (s == "shm") return Mode::kShm;
  if (s == "p2p") return Mode::kP2p;
  return std::nullopt;
}

Mode mode_from_env(Mode def) {
  auto v = nemo::Config::str("NEMO_COLL");
  if (!v) return def;
  if (auto m = mode_from_string(*v)) return *m;
  throw std::invalid_argument("NEMO_COLL: unknown mode '" + *v +
                              "' (shm|p2p|auto)");
}

std::size_t alltoall_chunk_capacity(std::size_t slot_bytes, int nranks) {
  if (nranks < 2) return 0;
  std::size_t per_dest =
      slot_bytes / static_cast<std::size_t>(nranks - 1);
  per_dest -= per_dest % kCacheLine;
  return per_dest;
}

bool use_shm(Mode mode, std::size_t op_bytes, std::size_t coll_activation,
             int nranks, std::size_t chunk_capacity) {
  if (nranks < 2 || chunk_capacity == 0) return false;
  switch (mode) {
    case Mode::kP2p: return false;
    case Mode::kShm: return true;
    case Mode::kAuto: return op_bytes >= coll_activation;
  }
  return false;
}

int choose_leader(const std::vector<int>& node_of_rank) {
  // Count ranks per known node; plurality wins, ties to the lower node id.
  std::map<int, int> per_node;
  for (int node : node_of_rank)
    if (node >= 0) per_node[node]++;
  if (per_node.empty()) return 0;
  int best_node = -1, best_count = 0;
  for (const auto& [node, count] : per_node)
    if (count > best_count) {  // First-wins on ties: map iterates ascending.
      best_node = node;
      best_count = count;
    }
  if (per_node.size() == 1) return 0;  // Single node: rank 0, as pre-v2.
  for (std::size_t r = 0; r < node_of_rank.size(); ++r)
    if (node_of_rank[r] == best_node) return static_cast<int>(r);
  return 0;
}

int leader_from_env(int def, int nranks) {
  auto v = nemo::Config::str("NEMO_COLL_LEADER");
  if (!v) return def;
  char* end = nullptr;
  long r = std::strtol(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0' || r < 0 || r >= nranks)
    throw std::invalid_argument("NEMO_COLL_LEADER: '" + *v +
                                "' is not a rank in [0, " +
                                std::to_string(nranks) + ")");
  return static_cast<int>(r);
}

std::uint32_t default_barrier_tree_k(const Topology& topo) {
  if (topo.num_cores < 1) return 4;
  unsigned sharers = topo.cores_sharing_largest_cache(0);
  if (sharers < 2) return 4;
  return std::clamp<std::uint32_t>(sharers, 2, 8);
}

ScopedForcedMode::ScopedForcedMode(Mode mode)
    : env_("NEMO_COLL", to_string(mode)) {}

}  // namespace nemo::coll
