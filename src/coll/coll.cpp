#include "coll/coll.hpp"

#include <cstdlib>
#include <stdexcept>

#include "common/options.hpp"

namespace nemo::coll {

const char* to_string(Mode m) {
  switch (m) {
    case Mode::kAuto: return "auto";
    case Mode::kShm: return "shm";
    case Mode::kP2p: return "p2p";
  }
  return "?";
}

std::optional<Mode> mode_from_string(const std::string& s) {
  if (s == "auto") return Mode::kAuto;
  if (s == "shm") return Mode::kShm;
  if (s == "p2p") return Mode::kP2p;
  return std::nullopt;
}

Mode mode_from_env(Mode def) {
  auto v = env_str("NEMO_COLL");
  if (!v) return def;
  if (auto m = mode_from_string(*v)) return *m;
  throw std::invalid_argument("NEMO_COLL: unknown mode '" + *v +
                              "' (shm|p2p|auto)");
}

std::size_t alltoall_chunk_capacity(std::size_t slot_bytes, int nranks) {
  if (nranks < 2) return 0;
  std::size_t per_dest =
      slot_bytes / static_cast<std::size_t>(nranks - 1);
  per_dest -= per_dest % kCacheLine;
  return per_dest;
}

bool use_shm(Mode mode, std::size_t op_bytes, std::size_t coll_activation,
             int nranks, std::size_t chunk_capacity) {
  if (nranks < 2 || chunk_capacity == 0) return false;
  switch (mode) {
    case Mode::kP2p: return false;
    case Mode::kShm: return true;
    case Mode::kAuto: return op_bytes >= coll_activation;
  }
  return false;
}

ScopedForcedMode::ScopedForcedMode(Mode mode) {
  if (const char* old = std::getenv("NEMO_COLL")) {
    had_env_ = true;
    saved_ = old;
  }
  ::setenv("NEMO_COLL", to_string(mode), 1);
}

ScopedForcedMode::~ScopedForcedMode() {
  if (had_env_)
    ::setenv("NEMO_COLL", saved_.c_str(), 1);
  else
    ::unsetenv("NEMO_COLL");
}

}  // namespace nemo::coll
