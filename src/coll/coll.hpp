// Collective path selection and geometry helpers for the shared-memory
// collective fast path (src/coll/coll_arena.hpp holds the data structure).
//
// The Nemesis-style insight (conf_icpp_BuntinasGGMM09): intranode collectives
// should write each operand into shared memory ONCE and let every reader pull
// it directly, instead of re-copying payloads through per-pair rings at every
// tree hop. Whether that wins over the pt2pt algorithms depends on message
// size (the arena path pays a flat synchronisation cost per operation), so
// selection mirrors lmt::Policy: a per-machine `coll_activation` crossover in
// the tuning table, overridable per run via NEMO_COLL=shm|p2p|auto.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/common.hpp"
#include "common/options.hpp"
#include "common/topology.hpp"

namespace nemo::coll {

/// Which implementation family a collective uses.
enum class Mode : std::uint32_t {
  kAuto = 0,  ///< shm arena above the tuned coll_activation, pt2pt below.
  kShm = 1,   ///< Force the arena path (falls back when geometry forbids).
  kP2p = 2,   ///< Force the pt2pt algorithms (the correctness oracle).
};

const char* to_string(Mode m);
std::optional<Mode> mode_from_string(const std::string& s);

/// Resolve NEMO_COLL on top of a programmatic default. Throws on an unknown
/// value (a typo silently falling back to auto would be unmeasurable).
Mode mode_from_env(Mode def = Mode::kAuto);

/// Per-destination chunk capacity inside one rank's slot for the staged
/// alltoall(v) layout: the slot is split into (nranks - 1) equal per-dest
/// strides, rounded down to cache lines. 0 = the slot cannot host this many
/// destinations (callers fall back to pt2pt).
std::size_t alltoall_chunk_capacity(std::size_t slot_bytes, int nranks);

/// Should this operation take the shm arena path? `op_bytes` is the
/// operation's symmetric size measure (bcast: total bytes; allgather /
/// alltoall: per-rank block; reductions: operand bytes) — every rank must
/// compute the same answer, so only world-level state and symmetric sizes
/// participate. `chunk_capacity` is the op's slot capacity check (0 = the
/// geometry cannot host the op and even a forced kShm falls back).
bool use_shm(Mode mode, std::size_t op_bytes, std::size_t coll_activation,
             int nranks, std::size_t chunk_capacity);

/// NUMA-aware reduction-leader choice: the rank whose NUMA node backs the
/// plurality of ranks (operand buffers and poll traffic are node-local to
/// their writers, so the fold should run where most operands live). Ties go
/// to the lower node id; the leader is the lowest rank on the winning node.
/// `node_of_rank[r]` is rank r's backing node, -1 = unknown. Single-node
/// and all-unknown maps fall back to rank 0 (the pre-v2 combiner).
int choose_leader(const std::vector<int>& node_of_rank);

/// Resolve NEMO_COLL_LEADER on top of a programmatic default (-1 = auto /
/// NUMA-derived). Throws on a non-integer or out-of-range rank — a silently
/// ignored pin would make leader experiments unmeasurable.
int leader_from_env(int def, int nranks);

/// Formula fan-in for the k-ary tree barrier on `topo`: the number of cores
/// sharing a last-level cache (arrivals within one LLC domain are cheap, so
/// one parent can gather a whole domain), clamped to [2, 8]; hosts with
/// private LLCs get 4 (gather cost is uniform, so a shallow-ish tree wins).
std::uint32_t default_barrier_tree_k(const Topology& topo);

/// RAII pin of the collective mode for Worlds constructed in scope.
/// Setting Config::coll alone is not enough for tooling that must force a
/// path: apply_env gives an ambient NEMO_COLL precedence over the Config
/// (the repo-wide "env beats programmatic" rule), which would silently
/// redirect a probe or bench row that claims to measure one family. This
/// pins NEMO_COLL itself (via nemo::ScopedEnv) and restores the previous
/// value on destruction. Single-threaded tooling only (setenv during
/// concurrent World construction elsewhere is a race).
class ScopedForcedMode {
 public:
  explicit ScopedForcedMode(Mode mode);

 private:
  ScopedEnv env_;
};

}  // namespace nemo::coll
