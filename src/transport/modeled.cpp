// Implementation #2: the modeled interconnect. Delivery is loopback — bytes
// still move through the shm substrate, so correctness (ordering, matching,
// peer-death verdicts) is inherited unchanged in both threads and procs
// worlds. What this transport adds is a *model*: ranks are partitioned into
// synthetic nodes, and every message that crosses a node boundary is charged
// the wire time of a latency/bandwidth link, following the
// NetworkModelMagic idiom from Graphite (perfect delivery, parameterized
// cost). The Engine accumulates the charges into tune::Counters
// (net_msgs/net_bytes/net_modeled_ns) and the kNetLink/kGaugeNet* trace
// tracks; src/sim consumes the same NetLink parameters so replayed
// timelines agree with what the benches report.
#include "transport/transport.hpp"

#include "common/common.hpp"

namespace nemo::transport {

namespace {

class ModeledTransport final : public Transport {
 public:
  ModeledTransport(std::vector<int> node_of, std::uint64_t lat_ns,
                   double bw_mibs)
      : node_of_(std::move(node_of)), lat_ns_(lat_ns), bw_mibs_(bw_mibs) {
    NEMO_ASSERT(!node_of_.empty());
    NEMO_ASSERT(bw_mibs_ > 0.0);
    nodes_ = node_of_.back() + 1;
  }

  [[nodiscard]] const char* name() const override { return "modeled"; }
  [[nodiscard]] bool has_hooks() const override { return true; }
  [[nodiscard]] int nodes() const override { return nodes_; }
  [[nodiscard]] int node_of(int rank) const override {
    NEMO_ASSERT(rank >= 0 &&
                rank < static_cast<int>(node_of_.size()));
    return node_of_[static_cast<std::size_t>(rank)];
  }

  XferCost on_eager(int self, int dst, std::size_t bytes) override {
    return charge(self, dst, bytes);
  }
  XferCost on_lmt(int self, int dst, std::size_t bytes) override {
    return charge(self, dst, bytes);
  }
  XferCost on_doorbell(int self, int peer) override {
    // Control cells carry no payload: latency-only cost.
    return charge(self, peer, 0);
  }

  [[nodiscard]] std::uint64_t link_lat_ns() const override { return lat_ns_; }
  [[nodiscard]] double link_bw_mibs() const override { return bw_mibs_; }

 private:
  XferCost charge(int a, int b, std::size_t bytes) const {
    if (!internode(a, b)) return {};
    double wire = static_cast<double>(bytes) /
                  (bw_mibs_ * (1024.0 * 1024.0) / 1e9);  // bytes per ns
    return {lat_ns_ + static_cast<std::uint64_t>(wire), true};
  }

  std::vector<int> node_of_;
  int nodes_;
  std::uint64_t lat_ns_;
  double bw_mibs_;
};

}  // namespace

std::unique_ptr<Transport> make_modeled_transport(std::vector<int> node_of,
                                                  std::uint64_t lat_ns,
                                                  double bw_mibs) {
  return std::make_unique<ModeledTransport>(std::move(node_of), lat_ns,
                                            bw_mibs);
}

}  // namespace nemo::transport
