#include "transport/transport.hpp"

#include <stdexcept>

#include "common/common.hpp"
#include "common/options.hpp"

namespace nemo::transport {

namespace {

/// The shm substrate as a Transport: every rank on one node, every hook a
/// no-op. has_hooks() == false lets the Engine skip the hook calls
/// entirely, so this is bit-identical to the pre-Transport hot path.
class ShmTransport final : public Transport {
 public:
  explicit ShmTransport(int nranks) : nranks_(nranks) {}

  [[nodiscard]] const char* name() const override { return "shm"; }
  [[nodiscard]] bool has_hooks() const override { return false; }
  [[nodiscard]] int nodes() const override { return 1; }
  [[nodiscard]] int node_of(int rank) const override {
    NEMO_ASSERT(rank >= 0 && rank < nranks_);
    return 0;
  }

 private:
  int nranks_;
};

}  // namespace

std::vector<int> parse_nodes_spec(const std::string& spec, int nranks) {
  NEMO_ASSERT(nranks > 0);
  if (spec.empty()) return std::vector<int>(static_cast<std::size_t>(nranks));
  auto x = spec.find('x');
  long n = 0, m = 0;
  try {
    std::size_t used_n = 0, used_m = 0;
    if (x == std::string::npos) throw std::invalid_argument(spec);
    n = std::stol(spec.substr(0, x), &used_n);
    m = std::stol(spec.substr(x + 1), &used_m);
    if (used_n != x || used_m != spec.size() - x - 1)
      throw std::invalid_argument(spec);
  } catch (const std::exception&) {
    throw std::invalid_argument("NEMO_NODES: want NxM (nodes x ranks/node), "
                                "got '" + spec + "'");
  }
  if (n < 1 || m < 1 || n * m != nranks)
    throw std::invalid_argument("NEMO_NODES: " + spec + " does not cover " +
                                std::to_string(nranks) + " ranks");
  std::vector<int> node_of(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r)
    node_of[static_cast<std::size_t>(r)] = r / static_cast<int>(m);
  return node_of;
}

std::unique_ptr<Transport> make_shm_transport(int nranks) {
  return std::make_unique<ShmTransport>(nranks);
}

std::unique_ptr<Transport> make_transport(const std::string& which,
                                          const std::string& nodes_spec,
                                          int nranks) {
  long lat = Config::integer("NEMO_NET_LAT_NS", 1500);
  long bw = Config::integer("NEMO_NET_BW_MBS", 12000);
  if (lat < 0 || bw <= 0)
    throw std::invalid_argument(
        "NEMO_NET_LAT_NS must be >= 0 and NEMO_NET_BW_MBS > 0");
  if (which == "shm") return make_shm_transport(nranks);
  if (which == "modeled")
    return make_modeled_transport(parse_nodes_spec(nodes_spec, nranks),
                                  static_cast<std::uint64_t>(lat),
                                  static_cast<double>(bw));
  if (which != "auto" && !which.empty())
    throw std::invalid_argument("NEMO_TRANSPORT: want shm|modeled|auto, got '" +
                                which + "'");
  // auto: the modeled transport engages exactly when the topology spec
  // partitions the world into more than one synthetic node.
  auto node_of = parse_nodes_spec(nodes_spec, nranks);
  int nnodes = node_of.empty() ? 1 : node_of.back() + 1;
  if (nnodes > 1)
    return make_modeled_transport(std::move(node_of),
                                  static_cast<std::uint64_t>(lat),
                                  static_cast<double>(bw));
  return make_shm_transport(nranks);
}

}  // namespace nemo::transport
