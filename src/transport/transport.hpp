// Pluggable transport seam, mirroring the paper's Nemesis discipline of a
// narrow substrate boundary: the Engine/World upper layers talk to the
// communication substrate only through this interface, so new channels can
// slot in without touching matching, collectives or progress logic.
//
// Delivery always rides the shm substrate (fastbox + copy ring + LMT policy
// chain) — a Transport does not move bytes itself. Instead it owns the
// *accounting and topology* of the channel: which ranks share a synthetic
// node, and what each boundary crossing costs. Implementation #1
// (ShmTransport) declares every rank one node and every hook a no-op; the
// Engine caches `has_hooks()` into a bool, so the shm hot path executes the
// exact pre-refactor instruction stream. Implementation #2
// (ModeledTransport, modeled.cpp) partitions ranks into synthetic nodes
// (NEMO_NODES=NxM) and charges each internode message a latency/bandwidth
// modeled wire time (NEMO_NET_LAT_NS / NEMO_NET_BW_MBS), following the
// modeled-interconnect idiom of Graphite's NetworkModelMagic. The modeled
// costs feed src/sim's replay models so synthetic timelines stay honest.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace nemo::transport {

/// Cost of one hook invocation. `ns` is modeled wire time (zero for
/// intranode traffic and for the shm transport); the Engine accumulates it
/// into tune::Counters and the kNetLink trace track.
struct XferCost {
  std::uint64_t ns = 0;
  bool internode = false;
};

class Transport {
 public:
  virtual ~Transport() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// True when any hook below does real work. The Engine caches this into a
  /// plain bool and skips every hook call when false — the zero-regression
  /// guarantee for the shm fast path.
  [[nodiscard]] virtual bool has_hooks() const = 0;

  // --- Topology: ranks partitioned into synthetic nodes -------------------
  [[nodiscard]] virtual int nodes() const = 0;
  [[nodiscard]] virtual int node_of(int rank) const = 0;
  [[nodiscard]] bool internode(int a, int b) const {
    return node_of(a) != node_of(b);
  }

  // --- Hooks, called by the Engine at message boundaries ------------------
  /// A rank pair became reachable (Engine construction).
  virtual void connect(int self, int peer) {
    (void)self;
    (void)peer;
  }
  /// An eager payload (fastbox or queue-cell path) left `self` for `dst`.
  virtual XferCost on_eager(int self, int dst, std::size_t bytes) {
    (void)self;
    (void)dst;
    (void)bytes;
    return {};
  }
  /// A rendezvous (LMT) transfer of `bytes` was started toward `dst`.
  virtual XferCost on_lmt(int self, int dst, std::size_t bytes) {
    (void)self;
    (void)dst;
    (void)bytes;
    return {};
  }
  /// A control doorbell (RTS/CTS/FIN cell) was rung on `peer`.
  virtual XferCost on_doorbell(int self, int peer) {
    (void)self;
    (void)peer;
    return {};
  }
  /// Piggybacks on Engine::progress() for transports that need a clock.
  virtual void progress(int self) { (void)self; }

  // --- Link model parameters, exported to src/sim -------------------------
  [[nodiscard]] virtual std::uint64_t link_lat_ns() const { return 0; }
  [[nodiscard]] virtual double link_bw_mibs() const { return 0.0; }
};

/// Parse a `NEMO_NODES`-style "NxM" topology spec into a node-of-rank table
/// (contiguous partition: rank r lives on node r / M). N*M must equal
/// `nranks`; "1xP"/"" mean one node. Throws std::invalid_argument on
/// malformed or mismatched specs.
std::vector<int> parse_nodes_spec(const std::string& spec, int nranks);

/// Implementation #1: the plain shm substrate. One node, no hooks.
std::unique_ptr<Transport> make_shm_transport(int nranks);

/// Implementation #2: modeled interconnect over shm loopback. Topology and
/// link parameters come from the arguments; see modeled.cpp.
std::unique_ptr<Transport> make_modeled_transport(std::vector<int> node_of,
                                                  std::uint64_t lat_ns,
                                                  double bw_mibs);

/// Factory honouring NEMO_TRANSPORT / NEMO_NODES / NEMO_NET_LAT_NS /
/// NEMO_NET_BW_MBS: explicit "shm" or "modeled", else modeled iff the
/// topology spec names more than one node. Throws on typos.
std::unique_ptr<Transport> make_transport(const std::string& which,
                                          const std::string& nodes_spec,
                                          int nranks);

}  // namespace nemo::transport
