#include "common/topology.hpp"

#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <thread>

#include "common/common.hpp"

namespace nemo {

const char* to_string(PairPlacement p) {
  switch (p) {
    case PairPlacement::kSharedCache: return "shared-cache";
    case PairPlacement::kSameSocketNoShare: return "same-socket-no-share";
    case PairPlacement::kDifferentSockets: return "different-sockets";
  }
  return "?";
}

int Topology::num_numa_nodes() const {
  int hi = 0;
  for (int n : numa_of) hi = std::max(hi, n);
  return hi + 1;
}

std::optional<CacheDomain> Topology::shared_cache(int a, int b) const {
  std::optional<CacheDomain> best;
  for (const auto& c : caches) {
    if (c.contains(a) && c.contains(b)) {
      if (!best || c.level > best->level) best = c;
    }
  }
  return best;
}

const CacheDomain& Topology::largest_cache(int core) const {
  const CacheDomain* best = nullptr;
  for (const auto& c : caches) {
    if (c.contains(core) && (!best || c.level > best->level)) best = &c;
  }
  NEMO_ASSERT_MSG(best != nullptr, "core not covered by any cache");
  return *best;
}

unsigned Topology::cores_sharing_largest_cache(int core) const {
  return static_cast<unsigned>(largest_cache(core).cores.size());
}

PairPlacement Topology::classify(int a, int b) const {
  if (shared_cache(a, b)) return PairPlacement::kSharedCache;
  if (socket_of[static_cast<std::size_t>(a)] ==
      socket_of[static_cast<std::size_t>(b)])
    return PairPlacement::kSameSocketNoShare;
  return PairPlacement::kDifferentSockets;
}

std::optional<std::pair<int, int>> Topology::find_pair(PairPlacement p) const {
  for (int a = 0; a < num_cores; ++a)
    for (int b = a + 1; b < num_cores; ++b)
      if (classify(a, b) == p) return std::make_pair(a, b);
  return std::nullopt;
}

void Topology::validate() const {
  NEMO_ASSERT(num_cores > 0);
  NEMO_ASSERT(socket_of.size() == static_cast<std::size_t>(num_cores));
  NEMO_ASSERT(die_of.size() == static_cast<std::size_t>(num_cores));
  NEMO_ASSERT_MSG(numa_of.empty() ||
                      numa_of.size() == static_cast<std::size_t>(num_cores),
                  "numa_of must be empty or name one node per core");
  for (int n : numa_of) NEMO_ASSERT(n >= 0);
  for (int c = 0; c < num_cores; ++c) {
    bool covered = false;
    for (const auto& d : caches)
      if (d.contains(c)) covered = true;
    NEMO_ASSERT_MSG(covered, "every core must sit behind at least one cache");
  }
  for (const auto& d : caches) {
    NEMO_ASSERT(d.level >= 1 && d.level <= 3);
    NEMO_ASSERT(d.size_bytes > 0);
    NEMO_ASSERT(is_pow2(d.line_bytes));
    NEMO_ASSERT(d.associativity >= 1);
    for (int c : d.cores) NEMO_ASSERT(c >= 0 && c < num_cores);
  }
}

namespace {

void add_private_l1(Topology& t, std::size_t size = 32 * KiB,
                    unsigned assoc = 8) {
  for (int c = 0; c < t.num_cores; ++c)
    t.caches.push_back({1, size, kCacheLine, assoc, {c}});
}

}  // namespace

Topology xeon_e5345() {
  // Clovertown: two sockets; each socket is two dual-core dies; each die has
  // one 4 MiB, 16-way L2 shared by its 2 cores. Linux-style numbering: cores
  // {0,1} share a die, {2,3} the next, etc.
  Topology t;
  t.name = "xeon-e5345";
  t.num_cores = 8;
  for (int c = 0; c < 8; ++c) {
    t.socket_of.push_back(c / 4);
    t.die_of.push_back(c / 2);
    // One synthetic NUMA node per socket: the FSB-era part was UMA, but a
    // per-socket map makes placement decisions exercisable in the sim and in
    // tests on single-node containers.
    t.numa_of.push_back(c / 4);
  }
  add_private_l1(t);
  for (int die = 0; die < 4; ++die)
    t.caches.push_back(
        {2, 4 * MiB, kCacheLine, 16, {2 * die, 2 * die + 1}});
  t.validate();
  return t;
}

Topology xeon_x5460() {
  Topology t;
  t.name = "xeon-x5460";
  t.num_cores = 4;
  for (int c = 0; c < 4; ++c) {
    t.socket_of.push_back(0);
    t.die_of.push_back(c / 2);
  }
  add_private_l1(t);
  t.caches.push_back({2, 6 * MiB, kCacheLine, 24, {0, 1}});
  t.caches.push_back({2, 6 * MiB, kCacheLine, 24, {2, 3}});
  t.validate();
  return t;
}

Topology nehalem() {
  Topology t;
  t.name = "nehalem";
  t.num_cores = 4;
  for (int c = 0; c < 4; ++c) {
    t.socket_of.push_back(0);
    t.die_of.push_back(0);
  }
  add_private_l1(t);
  for (int c = 0; c < 4; ++c)
    t.caches.push_back({2, 256 * KiB, kCacheLine, 8, {c}});
  t.caches.push_back({3, 8 * MiB, kCacheLine, 16, {0, 1, 2, 3}});
  t.validate();
  return t;
}

Topology flat_smp(int ncores, std::size_t llc_bytes) {
  NEMO_ASSERT(ncores > 0);
  Topology t;
  t.name = "flat-smp";
  t.num_cores = ncores;
  for (int c = 0; c < ncores; ++c) {
    t.socket_of.push_back(0);
    t.die_of.push_back(c);
  }
  add_private_l1(t);
  for (int c = 0; c < ncores; ++c)
    t.caches.push_back({2, llc_bytes, kCacheLine, 16, {c}});
  t.validate();
  return t;
}

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream f(path);
  if (!f) return false;
  std::getline(f, out);
  return true;
}

std::size_t parse_sysfs_size(const std::string& s) {
  // sysfs cache sizes look like "4096K".
  if (s.empty()) return 0;
  char* end = nullptr;
  unsigned long v = std::strtoul(s.c_str(), &end, 10);
  std::size_t mult = 1;
  if (end && (*end == 'K' || *end == 'k')) mult = KiB;
  if (end && (*end == 'M' || *end == 'm')) mult = MiB;
  return static_cast<std::size_t>(v) * mult;
}

/// Parse a sysfs cpulist like "0-3,8,10-11" into core ids.
std::vector<int> parse_cpulist(const std::string& s) {
  std::vector<int> out;
  const char* p = s.c_str();
  while (*p) {
    char* end = nullptr;
    long a = std::strtol(p, &end, 10);
    if (end == p) break;
    p = end;
    long b = a;
    if (*p == '-') {
      ++p;
      b = std::strtol(p, &end, 10);
      p = end;
    }
    for (long c = a; c <= b; ++c) out.push_back(static_cast<int>(c));
    if (*p == ',') ++p;
  }
  return out;
}

}  // namespace

Topology detect_host() {
  int ncpu = static_cast<int>(std::thread::hardware_concurrency());
  if (ncpu <= 0) ncpu = 1;

  Topology t;
  t.name = "host";
  t.num_cores = ncpu;
  t.socket_of.assign(static_cast<std::size_t>(ncpu), 0);
  t.die_of.resize(static_cast<std::size_t>(ncpu));
  for (int c = 0; c < ncpu; ++c) t.die_of[static_cast<std::size_t>(c)] = c;

  bool any_cache = false;
  // Key caches by (level, first shared cpu) to dedupe instances listed once
  // per participating cpu.
  std::set<std::pair<int, int>> seen;
  for (int c = 0; c < ncpu; ++c) {
    std::string base =
        "/sys/devices/system/cpu/cpu" + std::to_string(c);
    std::string pkg;
    if (read_file(base + "/topology/physical_package_id", pkg))
      t.socket_of[static_cast<std::size_t>(c)] =
          static_cast<int>(std::strtol(pkg.c_str(), nullptr, 10));
    for (int idx = 0; idx < 8; ++idx) {
      std::string cbase = base + "/cache/index" + std::to_string(idx);
      std::string level_s, type_s, size_s, cpus_s, ways_s;
      if (!read_file(cbase + "/level", level_s)) break;
      read_file(cbase + "/type", type_s);
      if (type_s == "Instruction") continue;
      if (!read_file(cbase + "/size", size_s)) continue;
      if (!read_file(cbase + "/shared_cpu_list", cpus_s)) continue;
      std::vector<int> cores = parse_cpulist(cpus_s);
      // Drop cpus beyond our logical range (offline etc.).
      cores.erase(std::remove_if(cores.begin(), cores.end(),
                                 [&](int x) { return x >= ncpu; }),
                  cores.end());
      if (cores.empty()) continue;
      int level = static_cast<int>(std::strtol(level_s.c_str(), nullptr, 10));
      if (level < 1 || level > 3) continue;
      if (!seen.insert({level, cores.front()}).second) continue;
      unsigned ways = 8;
      if (read_file(cbase + "/ways_of_associativity", ways_s))
        ways = static_cast<unsigned>(
            std::max(1L, std::strtol(ways_s.c_str(), nullptr, 10)));
      CacheDomain d{level, parse_sysfs_size(size_s), kCacheLine, ways, cores};
      if (d.size_bytes == 0) continue;
      t.caches.push_back(std::move(d));
      any_cache = true;
    }
  }
  // NUMA map: /sys/devices/system/node/node<N>/cpulist names each node's
  // cores. A partial map (offline cpus, containers hiding nodes) degrades to
  // "single node" rather than a half-filled vector.
  std::vector<int> numa(static_cast<std::size_t>(ncpu), -1);
  bool any_node = false;
  // No break on a missing id: node ids can be sparse (offline/hotplug).
  for (int node = 0; node < 256; ++node) {
    std::string cpus_s;
    if (!read_file("/sys/devices/system/node/node" + std::to_string(node) +
                       "/cpulist",
                   cpus_s))
      continue;
    for (int c : parse_cpulist(cpus_s))
      if (c >= 0 && c < ncpu) {
        numa[static_cast<std::size_t>(c)] = node;
        any_node = true;
      }
  }
  if (any_node &&
      std::none_of(numa.begin(), numa.end(), [](int n) { return n < 0; }))
    t.numa_of = std::move(numa);

  if (!any_cache) {
    Topology flat = flat_smp(ncpu, 8 * MiB);
    flat.numa_of = t.numa_of;  // Keep the node map even without cache info.
    return flat;
  }
  // Soft-validate: NEMO_ASSERT aborts, so check coverage manually and fall
  // back to a flat description when sysfs gave us something partial.
  for (int c = 0; c < ncpu; ++c) {
    bool covered = false;
    for (const auto& d : t.caches)
      if (d.contains(c)) covered = true;
    if (!covered) {
      Topology flat = flat_smp(ncpu, 8 * MiB);
      flat.numa_of = t.numa_of;
      return flat;
    }
  }
  return t;
}

}  // namespace nemo
