// Logical description of a multicore machine: cores, sockets/dies, and the
// cache-sharing map. The LMT selection policy (paper §3.5) and the machine
// simulator both consume this description.
//
// Presets model the paper's evaluation hosts:
//  - xeon_e5345(): dual-socket quad-core Clovertown, 4 MiB L2 per core pair;
//  - xeon_x5460(): single-socket quad-core Harpertown, 6 MiB L2 per pair;
//  - nehalem(): the "upcoming" part the paper anticipates — one L3 shared by
//    all cores.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace nemo {

/// One cache domain: a cache of a given level shared by a set of cores.
struct CacheDomain {
  int level = 0;               ///< 1, 2 or 3.
  std::size_t size_bytes = 0;  ///< Total capacity.
  std::size_t line_bytes = 64;
  unsigned associativity = 8;
  std::vector<int> cores;  ///< Core ids sharing this cache instance.

  [[nodiscard]] bool contains(int core) const {
    for (int c : cores)
      if (c == core) return true;
    return false;
  }
};

/// Relative placement of a communicating process pair — the three cases the
/// paper's figures distinguish.
enum class PairPlacement {
  kSharedCache,       ///< Both cores behind one last-level cache.
  kSameSocketNoShare, ///< Same socket, different dies (no shared cache).
  kDifferentSockets,  ///< Different sockets.
};

const char* to_string(PairPlacement p);

struct Topology {
  std::string name;
  int num_cores = 0;
  std::vector<int> socket_of;  ///< socket_of[core].
  std::vector<int> die_of;     ///< die_of[core] (globally unique die ids).
  /// numa_of[core]: NUMA node backing each core's local memory. Empty means
  /// "single node" (UMA host, or sysfs gave us nothing). The paper-era
  /// presets synthesize one node per socket so placement logic is testable
  /// without NUMA hardware.
  std::vector<int> numa_of;
  std::vector<CacheDomain> caches;

  /// NUMA node of `core` (0 on single-node descriptions).
  [[nodiscard]] int numa_node_of(int core) const {
    if (numa_of.empty()) return 0;
    return numa_of[static_cast<std::size_t>(core)];
  }

  /// Number of distinct NUMA nodes this description exposes (>= 1).
  [[nodiscard]] int num_numa_nodes() const;

  /// True when placement decisions can matter: more than one NUMA node.
  [[nodiscard]] bool multi_numa() const { return num_numa_nodes() > 1; }

  /// Largest-level cache shared by both cores, if any.
  [[nodiscard]] std::optional<CacheDomain> shared_cache(int a, int b) const;

  /// The largest (outermost) cache `core` sits behind.
  [[nodiscard]] const CacheDomain& largest_cache(int core) const;

  /// Number of cores sharing the largest cache of `core`.
  [[nodiscard]] unsigned cores_sharing_largest_cache(int core) const;

  /// Classify a core pair into the paper's three placements.
  [[nodiscard]] PairPlacement classify(int a, int b) const;

  /// Find a core pair with the requested placement, if the machine has one.
  [[nodiscard]] std::optional<std::pair<int, int>> find_pair(
      PairPlacement p) const;

  /// Internal consistency (every core covered by >=1 cache, ids in range).
  void validate() const;
};

/// Dual-socket quad-core Intel Xeon E5345 (2.33 GHz): the paper's main host.
/// 8 cores; L1d 32 KiB private; each pair of cores shares a 4 MiB L2.
Topology xeon_e5345();

/// Single-socket quad-core Xeon X5460 (3.16 GHz): two 6 MiB L2 caches.
Topology xeon_x5460();

/// Nehalem-like part: private 256 KiB L2, one 8 MiB L3 shared by all 4 cores.
Topology nehalem();

/// Generic SMP with `ncores` cores, no shared caches (private LLC per core).
Topology flat_smp(int ncores, std::size_t llc_bytes);

/// Best-effort detection of the host this process runs on, via sysfs
/// (including /sys/devices/system/node for the per-core NUMA map).
/// Falls back to flat_smp(hardware_concurrency, 8 MiB) when sysfs is absent.
Topology detect_host();

}  // namespace nemo
