// Deterministic buffer fill / verify helpers so every transfer test can prove
// byte-exact delivery, plus a small FNV-1a hash for cookies and sanity checks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace nemo {

/// 64-bit FNV-1a over an arbitrary byte range.
inline std::uint64_t fnv1a(std::span<const std::byte> data,
                           std::uint64_t seed = 0xcbf29ce484222325ull) {
  std::uint64_t h = seed;
  for (std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Deterministic per-position byte derived from (seed, index); cheap enough
/// to fill multi-MiB buffers in tests and strong enough that shifted /
/// truncated / cross-talk transfers are detected.
constexpr std::uint8_t pattern_byte(std::uint64_t seed, std::size_t i) {
  std::uint64_t x = seed + 0x9e3779b97f4a7c15ull * (i + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  return static_cast<std::uint8_t>(x);
}

inline void pattern_fill(std::span<std::byte> buf, std::uint64_t seed) {
  for (std::size_t i = 0; i < buf.size(); ++i)
    buf[i] = static_cast<std::byte>(pattern_byte(seed, i));
}

/// Returns index of first mismatch, or npos when the whole buffer matches.
inline constexpr std::size_t kPatternOk = static_cast<std::size_t>(-1);
inline std::size_t pattern_check(std::span<const std::byte> buf,
                                 std::uint64_t seed,
                                 std::size_t offset = 0) {
  for (std::size_t i = 0; i < buf.size(); ++i)
    if (buf[i] != static_cast<std::byte>(pattern_byte(seed, offset + i)))
      return i;
  return kPatternOk;
}

/// Splitmix64: the deterministic PRNG used by workload generators.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  /// Uniform double in [0,1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
  /// Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n) { return n ? next() % n : 0; }

 private:
  std::uint64_t state_;
};

}  // namespace nemo
