// Core utilities shared by every nemolmt module: error handling, byte-unit
// helpers, and small formatting aids.
//
// Error-handling convention (used library-wide):
//  - Programming errors / broken invariants -> NEMO_ASSERT (aborts).
//  - Environmental failures (syscalls, resource exhaustion) -> nemo::SysError
//    exceptions carrying errno context.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

namespace nemo {

/// Exception thrown when an OS interaction fails; carries errno text.
class SysError : public std::runtime_error {
 public:
  SysError(const std::string& what, int err)
      : std::runtime_error(what + ": " + std::strerror(err)), errno_(err) {}
  explicit SysError(const std::string& what)
      : std::runtime_error(what), errno_(0) {}
  [[nodiscard]] int sys_errno() const noexcept { return errno_; }

 private:
  int errno_;
};

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "nemo assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::abort();
}

#define NEMO_ASSERT(expr)                                              \
  do {                                                                 \
    if (!(expr)) ::nemo::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define NEMO_ASSERT_MSG(expr, msg)                                  \
  do {                                                              \
    if (!(expr)) ::nemo::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

/// Throw SysError with errno if a syscall-style expression returns < 0.
#define NEMO_SYSCHECK(expr, what)                      \
  do {                                                 \
    if ((expr) < 0) throw ::nemo::SysError(what, errno); \
  } while (0)

// ---------------------------------------------------------------------------
// Byte units
// ---------------------------------------------------------------------------

inline constexpr std::size_t KiB = 1024;
inline constexpr std::size_t MiB = 1024 * KiB;
inline constexpr std::size_t GiB = 1024 * MiB;

/// Width of a cache line on every machine we model (and on this host).
inline constexpr std::size_t kCacheLine = 64;

/// Round `x` up to a multiple of `align` (align must be a power of two).
constexpr std::size_t round_up(std::size_t x, std::size_t align) {
  return (x + align - 1) & ~(align - 1);
}

constexpr std::size_t round_down(std::size_t x, std::size_t align) {
  return x & ~(align - 1);
}

constexpr bool is_pow2(std::size_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// log2 of a power of two.
constexpr unsigned log2_exact(std::size_t x) {
  unsigned n = 0;
  while (x > 1) {
    x >>= 1;
    ++n;
  }
  return n;
}

/// Human-readable size, e.g. "64KiB", "4MiB", "1536B".
inline std::string format_size(std::size_t bytes) {
  char buf[32];
  if (bytes >= GiB && bytes % GiB == 0)
    std::snprintf(buf, sizeof buf, "%zuGiB", bytes / GiB);
  else if (bytes >= MiB && bytes % MiB == 0)
    std::snprintf(buf, sizeof buf, "%zuMiB", bytes / MiB);
  else if (bytes >= KiB && bytes % KiB == 0)
    std::snprintf(buf, sizeof buf, "%zuKiB", bytes / KiB);
  else
    std::snprintf(buf, sizeof buf, "%zuB", bytes);
  return buf;
}

/// Parse "64KiB" / "4M" / "123" into bytes. Throws std::invalid_argument.
inline std::size_t parse_size(const std::string& s) {
  if (s.empty()) throw std::invalid_argument("empty size string");
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str()) throw std::invalid_argument("bad size: " + s);
  std::string suffix(end);
  std::size_t mult = 1;
  if (suffix.empty() || suffix == "B" || suffix == "b")
    mult = 1;
  else if (suffix == "K" || suffix == "k" || suffix == "KiB" || suffix == "kiB")
    mult = KiB;
  else if (suffix == "M" || suffix == "m" || suffix == "MiB")
    mult = MiB;
  else if (suffix == "G" || suffix == "g" || suffix == "GiB")
    mult = GiB;
  else
    throw std::invalid_argument("bad size suffix: " + s);
  if (v < 0) throw std::invalid_argument("negative size: " + s);
  return static_cast<std::size_t>(v * static_cast<double>(mult));
}

}  // namespace nemo
