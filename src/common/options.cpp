#include "common/options.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace nemo {

Options::Options(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0)
      throw std::invalid_argument("expected --key[=value], got: " + arg);
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq == std::string::npos)
      values_[arg] = "1";
    else
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
  }
}

void Options::declare(const std::string& key, const std::string& help) {
  declared_.emplace_back(key, help);
}

bool Options::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::string Options::get(const std::string& key, const std::string& def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

long Options::get_int(const std::string& key, long def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  return std::strtol(it->second.c_str(), nullptr, 10);
}

double Options::get_double(const std::string& key, double def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

std::size_t Options::get_size(const std::string& key, std::size_t def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  return parse_size(it->second);
}

bool Options::get_flag(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return false;
  return it->second != "0" && it->second != "false";
}

std::optional<std::string> env_str(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::string(v);
}

std::size_t env_size(const char* name, std::size_t def) {
  auto v = env_str(name);
  if (!v) return def;
  if (*v == "off" || *v == "never") return static_cast<std::size_t>(-1);
  try {
    return parse_size(*v);
  } catch (const std::invalid_argument&) {
    throw std::invalid_argument(std::string(name) + ": bad size value '" +
                                *v + "'");
  }
}

long env_long(const char* name, long def) {
  auto v = env_str(name);
  if (!v) return def;
  return std::strtol(v->c_str(), nullptr, 10);
}

bool env_flag(const char* name, bool def) {
  auto v = env_str(name);
  if (!v) return def;
  return !(*v == "0" || *v == "false" || *v == "off" || *v == "no");
}

void Options::finalize() const {
  bool bad = false;
  for (const auto& [k, v] : values_) {
    (void)v;
    bool known = false;
    for (const auto& [dk, dh] : declared_) {
      (void)dh;
      if (dk == k) known = true;
    }
    if (!known) {
      std::fprintf(stderr, "unknown option --%s\n", k.c_str());
      bad = true;
    }
  }
  if (bad) {
    std::fprintf(stderr, "usage: %s [options]\n", program_.c_str());
    for (const auto& [dk, dh] : declared_)
      std::fprintf(stderr, "  --%-20s %s\n", dk.c_str(), dh.c_str());
    throw std::invalid_argument("unknown options");
  }
}

ScopedEnv::ScopedEnv(const char* name, const std::string& value)
    : name_(name) {
  if (const char* old = std::getenv(name)) {
    had_env_ = true;
    saved_ = old;
  }
  ::setenv(name, value.c_str(), 1);
}

ScopedEnv::~ScopedEnv() {
  if (had_env_)
    ::setenv(name_.c_str(), saved_.c_str(), 1);
  else
    ::unsetenv(name_.c_str());
}

}  // namespace nemo
