#include "common/options.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string_view>

namespace nemo {

Options::Options(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0)
      throw std::invalid_argument("expected --key[=value], got: " + arg);
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq == std::string::npos)
      values_[arg] = "1";
    else
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
  }
}

void Options::declare(const std::string& key, const std::string& help) {
  declared_.emplace_back(key, help);
}

bool Options::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::string Options::get(const std::string& key, const std::string& def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

long Options::get_int(const std::string& key, long def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  return std::strtol(it->second.c_str(), nullptr, 10);
}

double Options::get_double(const std::string& key, double def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

std::size_t Options::get_size(const std::string& key, std::size_t def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  return parse_size(it->second);
}

bool Options::get_flag(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return false;
  return it->second != "0" && it->second != "false";
}

std::optional<std::string> env_str(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::string(v);
}

std::size_t env_size(const char* name, std::size_t def) {
  auto v = env_str(name);
  if (!v) return def;
  if (*v == "off" || *v == "never") return static_cast<std::size_t>(-1);
  try {
    return parse_size(*v);
  } catch (const std::invalid_argument&) {
    throw std::invalid_argument(std::string(name) + ": bad size value '" +
                                *v + "'");
  }
}

long env_long(const char* name, long def) {
  auto v = env_str(name);
  if (!v) return def;
  char* end = nullptr;
  long out = std::strtol(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0')
    throw std::invalid_argument(std::string(name) + ": bad integer value '" +
                                *v + "'");
  return out;
}

bool env_flag(const char* name, bool def) {
  auto v = env_str(name);
  if (!v) return def;
  if (*v == "0" || *v == "false" || *v == "off" || *v == "no") return false;
  if (*v == "1" || *v == "true" || *v == "on" || *v == "yes") return true;
  throw std::invalid_argument(std::string(name) + ": bad boolean value '" +
                              *v + "' (want 0/1/on/off/true/false/yes/no)");
}

// ---------------------------------------------------------------------------
// Knob registry. One row per NEMO_* environment variable; kept alphabetical
// so the `nemo-tune --knobs` dump doubles as the reference table. Adding a
// knob means adding a row here — the typed accessors assert membership, so
// an unregistered spelling trips NEMO_ASSERT in debug builds.
// ---------------------------------------------------------------------------

const std::vector<KnobInfo>& Config::knobs() {
  static const std::vector<KnobInfo> table = {
      {"NEMO_BACKEND", KnobType::kString, "tuned",
       "tune", "force the calibrated LMT backend (shm|vmsplice|writev|cma)"},
      {"NEMO_BARRIER_TREE", KnobType::kString, "tuned",
       "coll", "tree barrier: off, on, or min ranks to switch to the tree"},
      {"NEMO_CMA", KnobType::kString, "auto",
       "lmt", "cross-memory attach: auto|on|off (nosyscall simulates EPERM)"},
      {"NEMO_COLL", KnobType::kString, "auto",
       "coll", "collective algorithm family: auto|shm|p2p"},
      {"NEMO_COLL_ACTIVATION", KnobType::kSize, "tuned",
       "coll", "min payload bytes before collectives use the shm arena"},
      {"NEMO_COLL_HIER", KnobType::kString, "tuned",
       "coll", "hierarchical collectives: off, on, or min synthetic nodes"},
      {"NEMO_COLL_LEADER", KnobType::kInt, "numa-chosen",
       "coll", "force the collective leader rank"},
      {"NEMO_COLL_SLOT_BYTES", KnobType::kSize, "tuned",
       "coll", "per-rank payload slot bytes in the collective arena"},
      {"NEMO_DMA_MIN", KnobType::kSize, "tuned",
       "sim", "min bytes before the simulator models DMA engines"},
      {"NEMO_DRAIN_BUDGET", KnobType::kInt, "tuned",
       "core", "max queue cells drained per progress() pass"},
      {"NEMO_FASTBOX", KnobType::kFlag, "1",
       "shm", "enable the per-pair single-slot fastbox path"},
      {"NEMO_FASTBOX_MAX", KnobType::kSize, "tuned",
       "shm", "max payload bytes eligible for the fastbox"},
      {"NEMO_FASTBOX_SLOTS", KnobType::kInt, "tuned",
       "shm", "slots per fastbox (depth of the SPSC pipeline)"},
      {"NEMO_FASTBOX_SLOT_BYTES", KnobType::kSize, "tuned",
       "shm", "bytes per fastbox slot (header + payload)"},
      {"NEMO_FAULT", KnobType::kString, "unset",
       "resil", "fault injection: <rank>:<site>:kill"},
      {"NEMO_FEEDBACK", KnobType::kFlag, "1",
       "tune", "enable runtime feedback nudges to the tuning table"},
      {"NEMO_LMT", KnobType::kString, "auto",
       "lmt", "large-message backend: auto|shm|vmsplice|writev|knem|cma"},
      {"NEMO_LMT_ACTIVATION", KnobType::kSize, "tuned",
       "lmt", "eager/rendezvous switchover bytes"},
      {"NEMO_NET_BW_MBS", KnobType::kInt, "12000",
       "transport", "modeled internode link bandwidth, MiB/s"},
      {"NEMO_NET_LAT_NS", KnobType::kInt, "1500",
       "transport", "modeled internode link latency, ns"},
      {"NEMO_NODES", KnobType::kString, "1 node",
       "transport", "synthetic topology NxM: N nodes of M ranks each"},
      {"NEMO_NT_MIN", KnobType::kSize, "tuned",
       "shm", "min bytes before copies use non-temporal stores"},
      {"NEMO_NUMA", KnobType::kFlag, "1",
       "shm", "enable NUMA-aware placement of shared structures"},
      {"NEMO_NUMA_PLACEMENT", KnobType::kString, "auto",
       "shm", "ring placement policy: auto|receiver|sender|first-touch"},
      {"NEMO_ON_PEER_DEATH", KnobType::kString, "abort",
       "resil", "peer-death policy: abort|degrade"},
      {"NEMO_PACK_NT_MIN", KnobType::kSize, "tuned",
       "core", "min bytes before datatype pack uses non-temporal stores"},
      {"NEMO_PEER_TIMEOUT_MS", KnobType::kSize, "2000",
       "resil", "bounded-wait verdict timeout in ms; off disarms"},
      {"NEMO_POLL_HOT", KnobType::kFlag, "tuned",
       "core", "reorder fastbox polling by observed traffic"},
      {"NEMO_RING_BUFS", KnobType::kInt, "tuned",
       "shm", "copy-ring buffers per pair"},
      {"NEMO_RING_BUF_BYTES", KnobType::kSize, "tuned",
       "shm", "bytes per copy-ring buffer"},
      {"NEMO_SIMD", KnobType::kString, "auto",
       "simd", "reduction kernel: auto|scalar|sse2|avx2|avx512"},
      {"NEMO_TRACE", KnobType::kString, "off",
       "trace", "tracing mode: off|rings|full"},
      {"NEMO_TRACE_OUT", KnobType::kString, "unset",
       "trace", "write a nemo-trace/1 dump to this path at exit"},
      {"NEMO_TRACE_RING_SLOTS", KnobType::kInt, "4096",
       "trace", "per-rank trace ring capacity in events"},
      {"NEMO_TRANSPORT", KnobType::kString, "auto",
       "transport", "transport: shm|modeled (auto: modeled iff NEMO_NODES>1)"},
      {"NEMO_TUNE", KnobType::kFlag, "1",
       "tune", "consult the fingerprinted tuning cache"},
      {"NEMO_TUNE_CACHE", KnobType::kString, "~/.cache/nemo",
       "tune", "override the tuning cache directory"},
      {"NEMO_WORLD_MODE", KnobType::kString, "threads",
       "core", "rank launch mode: threads|procs"},
  };
  return table;
}

const KnobInfo* Config::find(const char* name) {
  for (const auto& k : knobs())
    if (std::string_view(k.name) == name) return &k;
  return nullptr;
}

namespace {
const KnobInfo& registered(const char* name) {
  const KnobInfo* k = Config::find(name);
  NEMO_ASSERT_MSG(k != nullptr, "unregistered NEMO_* knob");
  return *k;
}
}  // namespace

std::optional<std::string> Config::str(const char* name) {
  (void)registered(name);
  return env_str(name);
}

std::size_t Config::size(const char* name, std::size_t def) {
  NEMO_ASSERT(registered(name).type == KnobType::kSize);
  return env_size(name, def);
}

long Config::integer(const char* name, long def) {
  NEMO_ASSERT(registered(name).type == KnobType::kInt);
  return env_long(name, def);
}

bool Config::flag(const char* name, bool def) {
  NEMO_ASSERT(registered(name).type == KnobType::kFlag);
  return env_flag(name, def);
}

void Options::finalize() const {
  bool bad = false;
  for (const auto& [k, v] : values_) {
    (void)v;
    bool known = false;
    for (const auto& [dk, dh] : declared_) {
      (void)dh;
      if (dk == k) known = true;
    }
    if (!known) {
      std::fprintf(stderr, "unknown option --%s\n", k.c_str());
      bad = true;
    }
  }
  if (bad) {
    std::fprintf(stderr, "usage: %s [options]\n", program_.c_str());
    for (const auto& [dk, dh] : declared_)
      std::fprintf(stderr, "  --%-20s %s\n", dk.c_str(), dh.c_str());
    throw std::invalid_argument("unknown options");
  }
}

ScopedEnv::ScopedEnv(const char* name, const std::string& value)
    : name_(name) {
  if (const char* old = std::getenv(name)) {
    had_env_ = true;
    saved_ = old;
  }
  ::setenv(name, value.c_str(), 1);
}

ScopedEnv::~ScopedEnv() {
  if (had_env_)
    ::setenv(name_.c_str(), saved_.c_str(), 1);
  else
    ::unsetenv(name_.c_str());
}

}  // namespace nemo
