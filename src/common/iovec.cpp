#include "common/iovec.hpp"

#include <cstring>

namespace nemo {

std::size_t gather_scatter_copy(std::span<const Segment> dst,
                                std::span<const ConstSegment> src) {
  std::size_t di = 0, doff = 0;
  std::size_t si = 0, soff = 0;
  std::size_t copied = 0;
  while (di < dst.size() && si < src.size()) {
    if (dst[di].len == doff) {
      ++di;
      doff = 0;
      continue;
    }
    if (src[si].len == soff) {
      ++si;
      soff = 0;
      continue;
    }
    std::size_t n = dst[di].len - doff;
    std::size_t sn = src[si].len - soff;
    if (sn < n) n = sn;
    std::memcpy(dst[di].base + doff, src[si].base + soff, n);
    doff += n;
    soff += n;
    copied += n;
  }
  return copied;
}

}  // namespace nemo
