// Tiny command-line/environment option parser used by benches and examples.
// Syntax: --key=value or --flag. Unknown keys are rejected so typos surface.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/common.hpp"

namespace nemo {

class Options {
 public:
  /// Parse argv; throws std::invalid_argument on malformed input.
  Options(int argc, char** argv);
  Options() = default;

  /// Declare a key so `finalize()` can reject unknown options.
  void declare(const std::string& key, const std::string& help);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& def) const;
  [[nodiscard]] long get_int(const std::string& key, long def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  /// Size values accept unit suffixes ("64KiB", "4M").
  [[nodiscard]] std::size_t get_size(const std::string& key,
                                     std::size_t def) const;
  [[nodiscard]] bool get_flag(const std::string& key) const;

  /// Verify all provided keys were declared; print help and throw otherwise.
  void finalize() const;

  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::pair<std::string, std::string>> declared_;
};

}  // namespace nemo
