// Tiny command-line/environment option parser used by benches and examples.
// Syntax: --key=value or --flag. Unknown keys are rejected so typos surface.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/common.hpp"

namespace nemo {

class Options {
 public:
  /// Parse argv; throws std::invalid_argument on malformed input.
  Options(int argc, char** argv);
  Options() = default;

  /// Declare a key so `finalize()` can reject unknown options.
  void declare(const std::string& key, const std::string& help);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& def) const;
  [[nodiscard]] long get_int(const std::string& key, long def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  /// Size values accept unit suffixes ("64KiB", "4M").
  [[nodiscard]] std::size_t get_size(const std::string& key,
                                     std::size_t def) const;
  [[nodiscard]] bool get_flag(const std::string& key) const;

  /// Verify all provided keys were declared; print help and throw otherwise.
  void finalize() const;

  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::pair<std::string, std::string>> declared_;
};

// ---------------------------------------------------------------------------
// Environment knobs. The runtime's tunables (NEMO_NT_MIN, NEMO_RING_BUFS,
// NEMO_RING_BUF_BYTES, NEMO_FASTBOX) are read through these so every entry
// point — tests, benches, examples — honours the same spelling.
// ---------------------------------------------------------------------------

/// Raw environment lookup; empty optional when unset or empty.
std::optional<std::string> env_str(const char* name);

/// Size knob with unit suffixes ("64KiB", "4M"). The sentinels "off" and
/// "never" parse as SIZE_MAX (callers use that to disable a threshold).
std::size_t env_size(const char* name, std::size_t def);

long env_long(const char* name, long def);

/// Boolean knob: "0", "false", "off", "no" are false; anything else true.
bool env_flag(const char* name, bool def);

/// RAII env pin with save/restore — for tooling, benches and tests that
/// must force a knob for a scope and put the ambient value back (setenv
/// during concurrent World construction elsewhere is a race, so
/// single-threaded phases only). One shared implementation so restore
/// semantics cannot drift between copies.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value);
  ~ScopedEnv();
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  bool had_env_ = false;
  std::string saved_;
};

}  // namespace nemo
