// Tiny command-line/environment option parser used by benches and examples.
// Syntax: --key=value or --flag. Unknown keys are rejected so typos surface.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/common.hpp"

namespace nemo {

class Options {
 public:
  /// Parse argv; throws std::invalid_argument on malformed input.
  Options(int argc, char** argv);
  Options() = default;

  /// Declare a key so `finalize()` can reject unknown options.
  void declare(const std::string& key, const std::string& help);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& def) const;
  [[nodiscard]] long get_int(const std::string& key, long def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  /// Size values accept unit suffixes ("64KiB", "4M").
  [[nodiscard]] std::size_t get_size(const std::string& key,
                                     std::size_t def) const;
  [[nodiscard]] bool get_flag(const std::string& key) const;

  /// Verify all provided keys were declared; print help and throw otherwise.
  void finalize() const;

  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::pair<std::string, std::string>> declared_;
};

// ---------------------------------------------------------------------------
// Environment knobs. Every NEMO_* tunable is declared once in the Config
// registry below and read through its typed accessors, so each knob has one
// spelling, one parse, and one loud error path shared by all entry points —
// tests, benches, examples and the runtime itself.
// ---------------------------------------------------------------------------

/// Raw environment lookup; empty optional when unset or empty.
std::optional<std::string> env_str(const char* name);

/// Size knob with unit suffixes ("64KiB", "4M"). The sentinels "off" and
/// "never" parse as SIZE_MAX (callers use that to disable a threshold).
std::size_t env_size(const char* name, std::size_t def);

/// Integer knob; throws std::invalid_argument on non-numeric values so a
/// typo'd knob aborts bring-up instead of silently reading as 0.
long env_long(const char* name, long def);

/// Boolean knob: "0"/"false"/"off"/"no" are false, "1"/"true"/"on"/"yes"
/// are true; anything else throws std::invalid_argument.
bool env_flag(const char* name, bool def);

/// How a knob's value string is parsed (and how `nemo-tune --knobs`
/// renders its default).
enum class KnobType { kFlag, kInt, kSize, kString };

struct KnobInfo {
  const char* name;     ///< environment variable, e.g. "NEMO_NT_MIN"
  KnobType type;        ///< parse discipline
  const char* def;      ///< default, as shown to humans ("auto", "formula"…)
  const char* read_by;  ///< owning subsystem (core, shm, coll, tune, …)
  const char* meaning;  ///< one-line description
};

/// Central registry of every NEMO_* environment knob. All subsystems read
/// knobs through these accessors; each accessor asserts the knob is
/// registered (so an unregistered spelling is a programming error, caught
/// in debug builds) and surfaces malformed values as one loud
/// std::invalid_argument naming the knob. Precedence stays with the
/// caller: env > tuning cache > formula, exactly as before.
class Config {
 public:
  /// All registered knobs, sorted by name — feeds `nemo-tune --knobs`.
  static const std::vector<KnobInfo>& knobs();

  /// Registry row for `name`, or nullptr when unknown.
  static const KnobInfo* find(const char* name);

  /// Raw string value; empty optional when unset or empty.
  static std::optional<std::string> str(const char* name);

  /// Size knob ("64KiB", "4M"; "off"/"never" → SIZE_MAX).
  static std::size_t size(const char* name, std::size_t def);

  /// Integer knob; throws on non-numeric values.
  static long integer(const char* name, long def);

  /// Boolean knob; throws on anything outside the on/off vocabulary.
  static bool flag(const char* name, bool def);
};

/// RAII env pin with save/restore — for tooling, benches and tests that
/// must force a knob for a scope and put the ambient value back (setenv
/// during concurrent World construction elsewhere is a race, so
/// single-threaded phases only). One shared implementation so restore
/// semantics cannot drift between copies.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value);
  ~ScopedEnv();
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  bool had_env_ = false;
  std::string saved_;
};

}  // namespace nemo
