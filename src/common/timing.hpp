// Wall-clock timing and simple statistics used by benchmarks and tests.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <vector>

namespace nemo {

/// Monotonic nanoseconds since an arbitrary epoch.
inline std::uint64_t now_ns() {
  using clock = std::chrono::steady_clock;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          clock::now().time_since_epoch())
          .count());
}

/// RAII-less stopwatch: start() then elapsed_ns().
class Timer {
 public:
  Timer() : start_(now_ns()) {}
  void reset() { start_ = now_ns(); }
  [[nodiscard]] std::uint64_t elapsed_ns() const { return now_ns() - start_; }
  [[nodiscard]] double elapsed_s() const {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  std::uint64_t start_;
};

/// Accumulates samples; reports min/median/mean/max. Used to stabilise
/// throughput numbers across benchmark repetitions.
class Stats {
 public:
  void add(double v) { samples_.push_back(v); }
  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double min() const {
    return samples_.empty() ? 0.0
                            : *std::min_element(samples_.begin(), samples_.end());
  }
  [[nodiscard]] double max() const {
    return samples_.empty() ? 0.0
                            : *std::max_element(samples_.begin(), samples_.end());
  }
  [[nodiscard]] double mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0;
    for (double v : samples_) s += v;
    return s / static_cast<double>(samples_.size());
  }
  [[nodiscard]] double median() const {
    if (samples_.empty()) return 0.0;
    std::vector<double> c = samples_;
    std::size_t mid = c.size() / 2;
    std::nth_element(c.begin(), c.begin() + static_cast<long>(mid), c.end());
    return c[mid];
  }
  [[nodiscard]] double stddev() const {
    if (samples_.size() < 2) return 0.0;
    double m = mean(), s = 0;
    for (double v : samples_) s += (v - m) * (v - m);
    return std::sqrt(s / static_cast<double>(samples_.size() - 1));
  }

 private:
  std::vector<double> samples_;
};

/// Throughput in MiB/s given bytes moved in `ns` nanoseconds.
inline double mib_per_s(std::size_t bytes, std::uint64_t ns) {
  if (ns == 0) return 0.0;
  return (static_cast<double>(bytes) / (1024.0 * 1024.0)) /
         (static_cast<double>(ns) * 1e-9);
}

}  // namespace nemo
