// Scatter/gather segment lists. KNEM cookies describe send buffers as vectors
// of virtual segments; datatypes (vector/strided) lower to the same form.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/common.hpp"

namespace nemo {

/// One contiguous virtual-memory segment.
struct Segment {
  std::byte* base = nullptr;
  std::size_t len = 0;
};

struct ConstSegment {
  const std::byte* base = nullptr;
  std::size_t len = 0;
};

using SegmentList = std::vector<Segment>;
using ConstSegmentList = std::vector<ConstSegment>;

inline std::size_t total_bytes(const SegmentList& v) {
  std::size_t n = 0;
  for (const auto& s : v) n += s.len;
  return n;
}
inline std::size_t total_bytes(const ConstSegmentList& v) {
  std::size_t n = 0;
  for (const auto& s : v) n += s.len;
  return n;
}

inline ConstSegmentList as_const(const SegmentList& v) {
  ConstSegmentList out;
  out.reserve(v.size());
  for (const auto& s : v) out.push_back({s.base, s.len});
  return out;
}

/// Cursor over a segment list, for chunked copies that cross segment
/// boundaries. Advancing never allocates.
class SegmentCursor {
 public:
  explicit SegmentCursor(std::span<const Segment> segs) : segs_(segs) {}

  [[nodiscard]] bool done() const { return idx_ >= segs_.size(); }

  /// Remaining bytes across all segments.
  [[nodiscard]] std::size_t remaining() const {
    std::size_t n = 0;
    for (std::size_t i = idx_; i < segs_.size(); ++i) n += segs_[i].len;
    return n >= off_ ? n - off_ : 0;
  }

  /// The next contiguous piece, at most `max_len` bytes. Advances the cursor.
  Segment take(std::size_t max_len) {
    NEMO_ASSERT(!done());
    const Segment& s = segs_[idx_];
    std::size_t avail = s.len - off_;
    std::size_t n = avail < max_len ? avail : max_len;
    Segment out{s.base + off_, n};
    off_ += n;
    if (off_ == s.len) {
      ++idx_;
      off_ = 0;
      // Skip empty segments so done() is accurate.
      while (idx_ < segs_.size() && segs_[idx_].len == 0) ++idx_;
    }
    return out;
  }

 private:
  std::span<const Segment> segs_;
  std::size_t idx_ = 0;
  std::size_t off_ = 0;
};

/// Copy between two segment lists (generalised memcpy). Returns bytes copied
/// = min(total(src), total(dst)).
std::size_t gather_scatter_copy(std::span<const Segment> dst,
                                std::span<const ConstSegment> src);

inline std::size_t gather_scatter_copy(std::span<const Segment> dst,
                                       std::span<const Segment> src) {
  ConstSegmentList c;
  c.reserve(src.size());
  for (const auto& s : src) c.push_back({s.base, s.len});
  return gather_scatter_copy(dst, std::span<const ConstSegment>(c));
}

}  // namespace nemo
