// Minimal MPI-style datatypes: contiguous blocks, strided vectors, and
// indexed block lists, plus lowering to segment lists. KNEM cookies take
// the segment lists directly ("vectorial buffers", one of KNEM's
// advantages over LiMIC2 per §5), and the collective pack path streams
// blocks through the NT engine straight into arena slots.
#pragma once

#include <cstddef>
#include <vector>

#include "common/iovec.hpp"

namespace nemo::core {

class Datatype {
 public:
  /// One merged block of an element's layout: `off` bytes from the element
  /// base, `len` contiguous bytes. Blocks are ascending and non-adjacent
  /// (adjacent input blocks merge at construction).
  struct Block {
    std::size_t off;
    std::size_t len;
  };

  /// `bytes` contiguous bytes per element.
  static Datatype contiguous(std::size_t bytes);

  /// `count` blocks of `blocklen` bytes, placed `stride` bytes apart
  /// (stride >= blocklen). Extent is (count-1)*stride + blocklen.
  static Datatype vector(std::size_t count, std::size_t blocklen,
                         std::size_t stride);

  /// MPI_Type_indexed-style: blocks.size() blocks where block i spans
  /// [displs[i], displs[i] + blocklens[i]) bytes from the element base.
  /// Displacements must ascend without overlap; blocks that abut are
  /// merged, so e.g. {8,8} at {0,8} collapses to contiguous(16). Extent is
  /// the end of the last block.
  static Datatype indexed(const std::vector<std::size_t>& blocklens,
                          const std::vector<std::size_t>& displs);

  /// Packed payload bytes of one element.
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Memory footprint of one element (distance between consecutive
  /// elements in an array of this type).
  [[nodiscard]] std::size_t extent() const { return extent_; }

  [[nodiscard]] bool is_contiguous() const {
    return blocks_.size() == 1 && blocks_[0].off == 0 &&
           blocks_[0].len == size_;
  }

  /// Merged per-element layout (ascending, non-adjacent).
  [[nodiscard]] const std::vector<Block>& blocks() const { return blocks_; }

  /// Lower `count` elements at `base` to a segment list. Adjacent segments
  /// are merged, including across element boundaries.
  [[nodiscard]] SegmentList map(std::byte* base, std::size_t count) const;
  [[nodiscard]] ConstSegmentList map(const std::byte* base,
                                     std::size_t count) const;

  /// Pack `count` elements from `base` into `out` (out must hold
  /// size()*count bytes); unpack is the inverse. With `nt` the block
  /// copies use non-temporal streaming stores — for packed operands big
  /// enough that caching them would evict the working set (the caller
  /// gates on the tuned pack_nt_min threshold).
  void pack(const std::byte* base, std::size_t count, std::byte* out,
            bool nt = false) const;
  void unpack(const std::byte* in, std::size_t count, std::byte* base,
              bool nt = false) const;

 private:
  Datatype(std::vector<Block> blocks, std::size_t extent);
  std::vector<Block> blocks_;
  std::size_t size_ = 0;
  std::size_t extent_ = 0;
};

}  // namespace nemo::core
