// Minimal MPI-style datatypes: contiguous blocks and strided vectors, plus
// lowering to segment lists. KNEM cookies take the segment lists directly
// ("vectorial buffers", one of KNEM's advantages over LiMIC2 per §5).
#pragma once

#include <cstddef>

#include "common/iovec.hpp"

namespace nemo::core {

class Datatype {
 public:
  /// `bytes` contiguous bytes per element.
  static Datatype contiguous(std::size_t bytes);

  /// `count` blocks of `blocklen` bytes, placed `stride` bytes apart
  /// (stride >= blocklen). Extent is (count-1)*stride + blocklen.
  static Datatype vector(std::size_t count, std::size_t blocklen,
                         std::size_t stride);

  /// Packed payload bytes of one element.
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Memory footprint of one element (distance between consecutive
  /// elements in an array of this type).
  [[nodiscard]] std::size_t extent() const { return extent_; }

  [[nodiscard]] bool is_contiguous() const {
    return blocks_ == 1 || blocklen_ == stride_;
  }

  /// Lower `count` elements at `base` to a segment list. Adjacent segments
  /// are merged.
  [[nodiscard]] SegmentList map(std::byte* base, std::size_t count) const;
  [[nodiscard]] ConstSegmentList map(const std::byte* base,
                                     std::size_t count) const;

  /// Pack `count` elements from `base` into `out` (out must hold
  /// size()*count bytes); unpack is the inverse.
  void pack(const std::byte* base, std::size_t count, std::byte* out) const;
  void unpack(const std::byte* in, std::size_t count, std::byte* base) const;

 private:
  Datatype(std::size_t blocks, std::size_t blocklen, std::size_t stride);
  std::size_t blocks_;
  std::size_t blocklen_;
  std::size_t stride_;
  std::size_t size_;
  std::size_t extent_;
};

}  // namespace nemo::core
