// MPI-style message matching: posted-receive queue and unexpected-message
// queue with wildcard source/tag, FIFO within a matching class so the MPI
// non-overtaking rule holds (cells from one sender arrive in order, and both
// queues are scanned oldest-first).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/iovec.hpp"
#include "lmt/lmt.hpp"
#include "tune/counters.hpp"

namespace nemo::core {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct RequestState;

/// A receive the application has posted but that has no matching message yet.
struct PostedRecv {
  int src = kAnySource;
  int tag = kAnyTag;
  int context = 0;  ///< 0 = user pt2pt, 1 = internal collective traffic.
  SegmentList segs;          ///< Destination buffer.
  std::size_t capacity = 0;  ///< total_bytes(segs).
  std::shared_ptr<RequestState> req;
};

/// A message that arrived before its receive was posted. Either an eager
/// payload (possibly still being reassembled) or a rendezvous RTS.
struct UnexpectedMsg {
  int src = -1;
  int tag = -1;
  int context = 0;
  std::uint32_t seq = 0;
  bool is_rndv = false;

  // Eager: buffered payload.
  std::vector<std::byte> data;
  std::size_t bytes_arrived = 0;
  std::size_t total = 0;
  [[nodiscard]] bool eager_complete() const { return bytes_arrived == total; }

  // Rendezvous: the RTS wire cookie.
  lmt::RtsWire rts{};
};

[[nodiscard]] inline bool matches(int want_src, int want_tag,
                                  int want_context, int src, int tag,
                                  int context) {
  // Context is never a wildcard: internal collective traffic must not be
  // visible to user-level wildcard receives.
  return want_context == context &&
         (want_src == kAnySource || want_src == src) &&
         (want_tag == kAnyTag || want_tag == tag);
}

class MatchEngine {
 public:
  /// Recycled UnexpectedMsg nodes kept around; beyond this they free.
  static constexpr std::size_t kPoolCap = 64;

  /// Post a receive: first scan unexpected (oldest first); if found, the
  /// unexpected entry is removed and returned and `pr` is left untouched
  /// (recycle() the entry once its payload is consumed). Otherwise `pr` is
  /// consumed (queued).
  std::unique_ptr<UnexpectedMsg> post_recv(PostedRecv& pr);

  /// An incoming envelope (eager-first or RTS): match against posted recvs
  /// (oldest first). Returns the posted recv if matched.
  std::unique_ptr<PostedRecv> match_incoming(int src, int tag, int context);

  /// A blank UnexpectedMsg with `data` sized to `payload_bytes`, reusing a
  /// pooled node/buffer when one is large enough — the unexpected-receive
  /// hot path used to pay a heap allocation per message here. Pool traffic
  /// is counted on the attached tune::Counters (um_pool_hits/misses).
  std::unique_ptr<UnexpectedMsg> acquire_unexpected(std::size_t payload_bytes);

  /// Return a fully-consumed unexpected message to the pool (buffer
  /// capacity is kept; contents are dead).
  void recycle(std::unique_ptr<UnexpectedMsg> um);

  /// Queue an unexpected message.
  void add_unexpected(std::unique_ptr<UnexpectedMsg> um);

  /// Find an unexpected eager message still being reassembled.
  UnexpectedMsg* find_partial(int src, std::uint32_t seq);

  /// Telemetry sink for the pool counters (not owned; may be null).
  void set_counters(tune::Counters* c) { counters_ = c; }

  [[nodiscard]] std::size_t posted_count() const { return posted_.size(); }
  [[nodiscard]] std::size_t unexpected_count() const {
    return unexpected_.size();
  }
  [[nodiscard]] std::size_t pooled_count() const { return pool_.size(); }

 private:
  std::deque<std::unique_ptr<PostedRecv>> posted_;
  std::deque<std::unique_ptr<UnexpectedMsg>> unexpected_;
  std::vector<std::unique_ptr<UnexpectedMsg>> pool_;
  tune::Counters* counters_ = nullptr;
};

}  // namespace nemo::core
