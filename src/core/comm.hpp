// The nemo message-passing runtime: World (shared state set up before ranks
// spawn), Engine (per-rank progress engine: eager path, matching, rendezvous
// orchestration across LMT backends) and Comm (the public MPI-like API).
#pragma once

#include <sys/types.h>

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "coll/coll.hpp"
#include "coll/coll_arena.hpp"
#include "common/common.hpp"
#include "common/iovec.hpp"
#include "common/topology.hpp"
#include "core/datatype.hpp"
#include "core/match.hpp"
#include "knem/knem_device.hpp"
#include "lmt/lmt.hpp"
#include "lmt/policy.hpp"
#include "resil/resil.hpp"
#include "shm/arena.hpp"
#include "shm/copy_ring.hpp"
#include "shm/dma_engine.hpp"
#include "shm/fastbox.hpp"
#include "shm/nemesis_queue.hpp"
#include "shm/numa.hpp"
#include "shm/pipes.hpp"
#include "simd/simd.hpp"
#include "trace/registry.hpp"
#include "trace/trace.hpp"
#include "transport/transport.hpp"
#include "tune/counters.hpp"
#include "tune/tuning.hpp"

namespace nemo::core {

enum class LaunchMode { kThreads, kProcesses };

/// Resolve NEMO_WORLD_MODE (threads|procs) over a programmatic default.
/// Shared by the env-override pass inside World and by core::run, which must
/// know the resolved mode *before* the World exists (a process-mode world
/// with no explicit shm_name gets a generated one so children can re-attach
/// by name). Throws std::invalid_argument on anything else.
LaunchMode world_mode_from_env(LaunchMode fallback);

struct Config {
  int nranks = 2;
  LaunchMode mode = LaunchMode::kThreads;

  lmt::LmtKind lmt = lmt::LmtKind::kAuto;
  lmt::KnemMode knem_mode = lmt::KnemMode::kSyncCopy;
  lmt::PolicyConfig policy{};

  /// Messages strictly larger than this leave the eager path. (The policy's
  /// activation thresholds apply when lmt == kAuto; this is the hardwired
  /// Nemesis 64 KiB default otherwise.)
  std::size_t eager_threshold = 64 * KiB;

  std::uint32_t cells_per_rank = 64;

  /// Copy-ring geometry. Four buffers by default so copy #1 and copy #2
  /// pipeline deeply (the seed's 2×32KiB ring stalls the sender every other
  /// chunk). Overridable per run via NEMO_RING_BUFS / NEMO_RING_BUF_BYTES.
  std::uint32_t ring_bufs = 4;
  std::uint32_t ring_buf_bytes = shm::CopyRing::kDefaultBufBytes;

  /// Per-ordered-pair single-slot fastboxes for small eager messages
  /// (bypasses the MPSC recv-queue enqueue). NEMO_FASTBOX=0 disables.
  bool use_fastbox = true;

  /// Minimum rendezvous size that switches the shm-copy ring to streaming
  /// (non-temporal) stores. 0 = auto: NEMO_NT_MIN env if set, else half the
  /// detected last-level cache. SIZE_MAX (or NEMO_NT_MIN=off) = never.
  std::size_t nt_min = 0;

  std::size_t arena_bytes = 0;        ///< 0 = auto.
  std::size_t shared_pool_bytes = 32 * MiB;  ///< For Comm::shared_alloc.

  /// rank -> core pinning (empty = no pinning). Also feeds the policy's
  /// placement decisions.
  std::vector<int> core_binding;

  /// Machine description for the selection policy. Empty name = detect.
  Topology topo{};

  /// Tuning table override. Unset = resolve for the world's topology via
  /// tune::effective_table (persistent cache when valid, else formulas; env
  /// knobs override either). A programmatic table still gets env overrides
  /// applied, so every entry point honours the same knobs.
  std::optional<tune::TuningTable> tuning;

  /// NUMA placement policy for per-pair shared regions (ring buffers,
  /// fastboxes): receiver-side for cross-node pairs under kAuto. Overridable
  /// via NEMO_NUMA_PLACEMENT; binding degrades to first-touch when the host
  /// is single-node or mbind is unavailable (decisions stay recorded).
  shm::NumaPlacement numa_placement = shm::NumaPlacement::kAuto;

  /// Collective path selection: kAuto takes the shared-memory collective
  /// arena at/above the tuned coll_activation and the pt2pt algorithms
  /// below it. NEMO_COLL=shm|p2p|auto overrides.
  coll::Mode coll = coll::Mode::kAuto;
  /// Per-rank collective-arena slot capacity. 0 = the tuning table's
  /// coll_slot_bytes (NEMO_COLL_SLOT_BYTES overrides either).
  std::size_t coll_slot_bytes = 0;
  /// Combining leader for shm reduce/allreduce. -1 = auto: the rank on the
  /// NUMA node backing the plurality of ranks (coll::choose_leader over the
  /// core binding / recorded ring placements; rank 0 on single-node hosts).
  /// NEMO_COLL_LEADER overrides.
  int coll_leader = -1;

  /// Model I/OAT presence (the software DMA channel).
  bool dma_available = true;

  /// CMA kill-switch (NEMO_CMA=off): pretend process_vm_readv is absent so
  /// policy/auto selection never picks the CMA backend (CI simulates
  /// ptrace_scope/seccomp-restricted containers this way).
  bool cma_enabled = true;
  /// NEMO_CMA=nosyscall: the CMA backend skips the syscall and exercises its
  /// transfer-time staging fallback, as if the kernel returned EPERM.
  bool cma_sim_fail = false;

  std::string shm_name;  ///< Nonempty: shm_open-backed arena (else anon).

  /// Transport selection: "shm", "modeled", or "auto" (modeled iff the
  /// topology spec names more than one synthetic node). NEMO_TRANSPORT
  /// overrides.
  std::string transport = "auto";
  /// Synthetic-node topology spec "NxM" (N nodes of M ranks each; N*M must
  /// equal nranks). Empty = one node. NEMO_NODES overrides.
  std::string nodes_spec;

  /// Peer liveness timeout for every formerly-unbounded wait (doorbells,
  /// acks, barriers, rendezvous). resil::kTimeoutOff (NEMO_PEER_TIMEOUT_MS
  /// =off) restores the pre-resilience unbounded behaviour.
  std::size_t peer_timeout_ms = resil::kDefaultTimeoutMs;
  /// What survivors do after a death verdict: poison the world (kAbort,
  /// default) or keep it usable over the survivor set (kDegrade).
  /// NEMO_ON_PEER_DEATH=abort|degrade overrides.
  resil::OnPeerDeath on_peer_death = resil::OnPeerDeath::kAbort;
};

struct RecvInfo {
  int src = -1;
  int tag = -1;
  std::size_t bytes = 0;
};

struct RequestState {
  bool complete = false;
  bool is_send = false;
  int peer = -1;  ///< Other side of the transfer (liveness watch target).
  RecvInfo info{};
};
using Request = std::shared_ptr<RequestState>;

class Engine;

/// The recorded NUMA decision for one ordered pair's shared regions. `node`
/// / `interleaved` are the decision (computed even on single-node hosts so
/// it stays testable); `bound` reports whether mbind actually applied it.
struct RingPlacement {
  PairPlacement pair = PairPlacement::kDifferentSockets;
  int node = -1;            ///< Target NUMA node; -1 = first-touch.
  bool interleaved = false;
  bool bound = false;
};

/// All cross-rank shared state. Construct in the launcher before ranks
/// spawn; ranks then build a Comm against it.
class World {
 public:
  explicit World(Config cfg);

  [[nodiscard]] int nranks() const { return cfg_.nranks; }
  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] const Topology& topology() const { return topo_; }
  /// The effective (cache/formula + env) tuning state every layer consults.
  [[nodiscard]] const tune::TuningTable& tuning() const { return tuning_; }
  [[nodiscard]] shm::Arena& arena() { return arena_; }
  [[nodiscard]] shm::PipeMatrix& pipes() { return pipes_; }

  [[nodiscard]] std::uint64_t recv_q_off(int rank) const {
    return rank_queues_[static_cast<std::size_t>(rank)].recv_q;
  }
  [[nodiscard]] std::uint64_t free_q_off(int rank) const {
    return rank_queues_[static_cast<std::size_t>(rank)].free_q;
  }
  [[nodiscard]] std::uint64_t ring_off(int src, int dst) const {
    NEMO_ASSERT(src != dst);
    return ring_offs_[static_cast<std::size_t>(src) *
                          static_cast<std::size_t>(cfg_.nranks) +
                      static_cast<std::size_t>(dst)];
  }
  [[nodiscard]] bool use_fastbox() const { return cfg_.use_fastbox; }
  [[nodiscard]] std::uint64_t fastbox_off(int src, int dst) const {
    NEMO_ASSERT(cfg_.use_fastbox && src != dst);
    return fastbox_offs_[static_cast<std::size_t>(src) *
                             static_cast<std::size_t>(cfg_.nranks) +
                         static_cast<std::size_t>(dst)];
  }
  [[nodiscard]] std::uint64_t knem_off() const { return knem_off_; }

  /// The collective arena (kNil for 1-rank worlds).
  [[nodiscard]] std::uint64_t coll_off() const { return coll_off_; }
  /// Effective collective path mode after env resolution.
  [[nodiscard]] coll::Mode coll_mode() const { return cfg_.coll; }
  /// The shm reduce/allreduce combining leader (env > Config > NUMA-derived;
  /// see Config::coll_leader).
  [[nodiscard]] int coll_leader() const { return coll_leader_; }

  /// Effective NUMA placement mode after env resolution.
  [[nodiscard]] shm::NumaPlacement numa_mode() const { return numa_mode_; }
  /// The placement decision applied to pair (src, dst)'s ring/fastbox.
  [[nodiscard]] const RingPlacement& ring_placement(int src, int dst) const {
    NEMO_ASSERT(src != dst);
    return ring_place_[static_cast<std::size_t>(src) *
                           static_cast<std::size_t>(cfg_.nranks) +
                       static_cast<std::size_t>(dst)];
  }

  /// Effective availability after probing the host.
  [[nodiscard]] bool vmsplice_ok() const { return vmsplice_ok_; }
  [[nodiscard]] bool cma_ok() const { return cma_ok_; }

  [[nodiscard]] int core_of(int rank) const {
    if (rank < 0 ||
        static_cast<std::size_t>(rank) >= cfg_.core_binding.size())
      return -1;
    return cfg_.core_binding[static_cast<std::size_t>(rank)];
  }

  void register_pid(int rank, pid_t pid);
  [[nodiscard]] pid_t pid_of(int rank) const;

  /// Centralised shared-memory barrier across all ranks (bench phase sync;
  /// distinct from Comm::barrier() which exercises the pt2pt path). Passing
  /// the calling rank arms the liveness guard (the rank keeps heartbeating
  /// and a dead peer raises PeerDeadError); the default -1 waits unbounded,
  /// preserving the historical contract for anonymous callers.
  void hard_barrier(int self_rank = -1);

  /// View of the per-rank liveness region (heartbeats, death flags, fence
  /// words). Offset-addressed: take a fresh view after reattach_in_child().
  [[nodiscard]] resil::Liveness liveness() const {
    return {arena_, life_off_, cfg_.nranks};
  }
  /// Effective peer timeout after env resolution (resil::kTimeoutOff = off).
  [[nodiscard]] std::size_t peer_timeout_ms() const {
    return cfg_.peer_timeout_ms;
  }
  [[nodiscard]] resil::OnPeerDeath on_peer_death() const {
    return cfg_.on_peer_death;
  }

  /// The world's transport (implementation #1 shm or #2 modeled; see
  /// src/transport/). Owns topology (synthetic nodes) and per-link cost
  /// accounting; delivery always rides the shm substrate.
  [[nodiscard]] transport::Transport& xport() const { return *xport_; }

  /// Arena-backed allocation visible to every rank (MPI_Alloc_mem-like).
  std::byte* shared_alloc(std::size_t bytes, std::size_t align = kCacheLine);

  /// Called once in each forked child (process mode, shm-backed arena):
  /// drops the inherited parent mapping and re-attaches the arena via
  /// shm_open at a fresh, child-chosen base address, then re-applies the
  /// recorded NUMA placement decisions to the new VMA. Exercises the real
  /// deployment path where peers map the segment at different addresses, so
  /// every cross-rank structure must be offset-addressed.
  void reattach_in_child();

 private:
  Config cfg_;
  Topology topo_;
  tune::TuningTable tuning_;  ///< Resolved before the arena (sizes fastboxes).
  std::unique_ptr<transport::Transport> xport_;
  shm::Arena arena_;
  shm::PipeMatrix pipes_;
  std::vector<shm::RankQueues> rank_queues_;
  std::vector<std::uint64_t> ring_offs_;
  std::vector<std::uint64_t> fastbox_offs_;
  shm::NumaPlacement numa_mode_ = shm::NumaPlacement::kFirstTouch;
  std::vector<RingPlacement> ring_place_;
  std::uint64_t coll_off_ = shm::kNil;
  int coll_leader_ = 0;
  std::uint64_t knem_off_ = 0;
  std::uint64_t pid_table_off_ = 0;
  std::uint64_t barrier_off_ = 0;
  std::uint64_t life_off_ = 0;
  bool vmsplice_ok_ = false;
  bool cma_ok_ = false;
};

/// Statistics a rank's engine gathers (used by benches and tests).
struct EngineStats {
  std::uint64_t eager_msgs_sent = 0;
  std::uint64_t eager_msgs_recv = 0;
  std::uint64_t fastbox_sent = 0;  ///< Eager messages that took the fastbox.
  std::uint64_t fastbox_recv = 0;
  std::uint64_t rndv_sent = 0;
  std::uint64_t rndv_recv = 0;
  std::uint64_t cells_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_recv = 0;
  std::array<std::uint64_t, 5> rndv_by_kind{};  ///< Indexed by LmtKind 0..4.
};

/// Per-rank progress engine. Single-threaded: every call happens on the
/// owning rank's thread.
class Engine {
 public:
  Engine(World& world, int rank);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] World& world() { return world_; }
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int nranks() const { return world_.nranks(); }
  [[nodiscard]] const lmt::Policy& policy() const { return policy_; }
  [[nodiscard]] knem::Device& knem_device() { return knem_dev_; }

  /// The I/OAT-like channel: non-temporal, background, unpinned.
  shm::DmaEngine& dma_channel();
  /// The kernel-thread offload: cached copy, pinned to this rank's core.
  shm::DmaEngine& kthread_channel();

  Request start_send(ConstSegmentList segs, int dst, int tag,
                     bool collective = false, int context = 0);
  Request start_recv(SegmentList segs, int src, int tag, int context = 0);

  void progress();
  void wait(const Request& req);
  bool test(const Request& req);

  [[nodiscard]] const EngineStats& stats() const { return stats_; }
  /// Telemetry registry this rank's hot paths feed (backends bump it too).
  [[nodiscard]] tune::Counters& counters() { return counters_; }
  [[nodiscard]] const tune::Counters& counters() const { return counters_; }
  /// This rank's event-ring tracer (inactive unless NEMO_TRACE enables it;
  /// backends and the collective layer emit through it like counters()).
  [[nodiscard]] trace::Tracer& tracer() { return tracer_; }

  /// Monotonic collective-instance counter (tag namespacing / arena
  /// epochs). 64-bit: a u32 would wrap within hours under a tight barrier
  /// loop, and epoch-tag monotonicity (coll_arena.hpp) must hold for the
  /// life of the world.
  std::uint64_t bump_coll_seq() { return coll_seq_++; }

  /// This rank's view of the world's collective arena (invalid placeholder
  /// in 1-rank worlds, where every collective is a local no-op).
  [[nodiscard]] coll::WorldColl& coll_view() { return coll_; }
  /// Next arena-barrier sequence. Monotonic and lock-step across ranks:
  /// every rank runs the same collective schedule, and each shm collective
  /// issues the same number of arena barriers on every rank.
  std::uint64_t next_coll_barrier_seq() { return ++coll_bar_seq_; }
  /// Next count-probe sequence (auto-mode alltoallv's size proxy); lock-step
  /// across ranks for the same reason.
  std::uint64_t next_coll_probe_seq() { return ++coll_probe_seq_; }
  /// World size at/above which the arena barrier runs the k-ary tree
  /// schedule (cached from the tuning table at construction).
  [[nodiscard]] std::uint32_t barrier_tree_ranks() const {
    return barrier_tree_ranks_;
  }
  /// Tree fan-in (cached, clamped >= 2).
  [[nodiscard]] std::uint32_t barrier_tree_k() const {
    return barrier_tree_k_;
  }
  /// Reduction kernel every fold on this rank runs (NEMO_SIMD > tuning
  /// table > CPUID best; resolved once at construction).
  [[nodiscard]] simd::Kernel simd_kernel() const { return simd_kernel_; }
  /// Minimum contiguous run that routes datatype pack/unpack through the
  /// NT streaming engine (tuned pack_nt_min / NEMO_PACK_NT_MIN).
  [[nodiscard]] std::size_t pack_nt_min() const { return pack_nt_min_; }

  /// Resolve the LMT kind for a message (exposed for tests/benches).
  lmt::LmtKind resolve_kind(std::size_t bytes, int dst, bool collective);

  /// The world's transport (topology + link accounting).
  [[nodiscard]] transport::Transport& transport() const { return *xport_; }
  /// Cached Transport::has_hooks(): false keeps every hook call off the
  /// shm hot path (the zero-regression guard).
  [[nodiscard]] bool transport_hooks() const { return xport_hooks_; }
  /// Min synthetic nodes before collectives go hierarchical (tuned
  /// coll_hier_nodes / NEMO_COLL_HIER; UINT32_MAX = never).
  [[nodiscard]] std::uint32_t coll_hier_nodes() const {
    return coll_hier_nodes_;
  }

  // --- liveness / recovery --------------------------------------------------
  /// This rank's view of the liveness table (valid whenever the world's is).
  [[nodiscard]] const resil::Liveness& liveness() const { return live_; }
  /// Bounded-wait guard for one wait site. `watch` = the specific rank the
  /// wait depends on, or -1 when any peer could unblock it.
  [[nodiscard]] resil::WaitGuard make_guard(resil::Site site, int watch);
  /// Local epoch fence for a death verdict: quiesce in-flight ops involving
  /// the dead rank, tombstone its arena cells, re-pick the collective leader
  /// over the survivor set, bump counters, and emit the trace events.
  /// Idempotent per dead rank; never throws.
  void peer_death_fence(int dead_rank, resil::Site site,
                        bool from_timeout) noexcept;
  void peer_death_fence(const resil::PeerDeadError& e) noexcept {
    peer_death_fence(e.rank, e.site, e.from_timeout);
  }
  /// Schedule-shrink predicate: has this engine fenced `r`'s death AND is
  /// it allowed to route around it? Abort mode always answers false, so the
  /// collective schedules stay exactly as configured and the next wait that
  /// touches the dead rank fails fast on its sticky dead flag instead of
  /// silently degrading.
  [[nodiscard]] bool rank_fenced(int r) const {
    return on_death_ == resil::OnPeerDeath::kDegrade &&
           fenced_[static_cast<std::size_t>(r)] != 0;
  }
  [[nodiscard]] bool any_fenced() const {
    return on_death_ == resil::OnPeerDeath::kDegrade && fenced_count_ > 0;
  }
  /// Lowest rank this engine still considers alive (the degraded-mode
  /// coordinator / fallback leader).
  [[nodiscard]] int lowest_alive() const;
  /// The shm reduce/allreduce leader over the survivor set: the configured
  /// leader until it dies, then the lowest alive rank.
  [[nodiscard]] int effective_coll_leader() const;
  /// Tombstone every fenced rank's collective-arena cells. Only safe once
  /// no survivor can still be parked in the diverged epoch — i.e. from
  /// Comm::fence_world() after all fence flags are up. Idempotent per rank.
  void reclaim_fenced() noexcept;

 private:
  friend class Comm;

  using Key = std::pair<int, std::uint32_t>;  ///< (peer, seq).

  struct PendingCtrl {
    int dst;
    shm::CellType type;
    std::uint32_t seq;
    lmt::RtsWire wire;
    int tag;
    int context;
    bool has_wire;
  };

  /// Reassembly target for an eager message already matched to a user
  /// buffer (posted before fully arrived).
  struct BoundEager {
    SegmentList segs;
    std::size_t total = 0;
    std::size_t arrived = 0;
    Request req;
    int tag = -1;
  };

  shm::Cell* try_get_cell();
  shm::Cell* get_cell_blocking();
  void send_cell(int dst, shm::Cell* cell);
  void return_cell(shm::Cell* cell);
  bool try_send_ctrl(const PendingCtrl& pc);
  void send_ctrl(int dst, shm::CellType type, std::uint32_t seq,
                 const lmt::RtsWire* wire, int tag, int context = 0);

  void handle_cell(shm::Cell* cell);
  void handle_eager(shm::Cell* cell);
  void handle_rts(shm::Cell* cell);
  void handle_cts(shm::Cell* cell);
  void handle_fin(shm::Cell* cell);

  /// Deliver the first (or only) chunk of an eager message — shared by the
  /// cell path and the fastbox path.
  void deliver_eager_first(int src, int tag, int context, std::uint32_t seq,
                           std::size_t total, const std::byte* data,
                           std::size_t len);
  /// Consume src's inbound fastbox if it holds the next in-order message.
  bool poll_fastbox(int src);
  /// Drain every inbound fastbox that is ready and in order, in poll_order_.
  void poll_fastboxes();
  /// Hot-peer-first: re-sort poll_order_ by recent fastbox traffic and decay
  /// the per-peer counts (called periodically when tuning.poll_hot).
  void reorder_poll();
  /// A queue cell from `src` carries `seq`; any earlier message still parked
  /// in the pair's fastbox must be delivered first to preserve sender order.
  void sync_stream(int src, std::uint32_t seq);

  void start_lmt_recv(int src, int tag, std::uint32_t seq,
                      const lmt::RtsWire& rts, PostedRecv& pr);
  void progress_sends();
  void progress_recvs();
  void complete_recv(const Key& key);
  void complete_send(const Key& key);

  lmt::Backend& backend_for(lmt::LmtKind kind);

  /// Account one transport hook result: counters, and the kNetLink /
  /// kNetCtrl trace events for internode traffic. Only called behind
  /// transport_hooks().
  void note_net(int peer, std::size_t bytes, const transport::XferCost& c,
                bool ctrl);

  World& world_;
  int rank_;
  lmt::Policy policy_;
  knem::Device knem_dev_;
  shm::QueueView recv_q_;
  shm::QueueView free_q_;

  // Per-peer cached views (rebuilt-per-call views were a measurable cost on
  // the hot path): receiver queues for send_cell, free queues for
  // return_cell, and this rank's inbound/outbound fastboxes.
  std::vector<shm::QueueView> peer_recv_q_;
  std::vector<shm::QueueView> peer_free_q_;
  std::vector<shm::Fastbox> fb_out_;  ///< Indexed by destination rank.
  std::vector<shm::Fastbox> fb_in_;   ///< Indexed by source rank.
  /// Fastbox poll order (all peers). Identity order unless tuning.poll_hot,
  /// which re-sorts by fb_hot_ so hot peers are polled first.
  std::vector<int> poll_order_;
  std::vector<std::uint64_t> fb_hot_;  ///< Recent hits per source (decayed).
  bool poll_hot_ = false;

  std::unique_ptr<shm::DmaEngine> dma_channel_;
  std::unique_ptr<shm::DmaEngine> kthread_channel_;

  std::vector<std::unique_ptr<lmt::Backend>> backends_;  // by kind index

  MatchEngine matcher_;
  std::vector<std::uint32_t> next_seq_;  ///< Per destination.
  /// Next message sequence expected from each source: merges the fastbox
  /// and recv-queue streams back into sender order.
  std::vector<std::uint32_t> expected_seq_;
  std::map<std::pair<int, std::uint32_t>, BoundEager> bound_eager_;

  // Rendezvous registries.
  struct SendEntry {
    std::unique_ptr<lmt::SendCtx> ctx;
    Request req;
    lmt::Backend* backend = nullptr;
  };
  struct RecvEntry {
    std::unique_ptr<lmt::RecvCtx> ctx;
    Request req;
    lmt::Backend* backend = nullptr;
  };
  std::map<Key, SendEntry> sends_;
  std::map<Key, RecvEntry> recvs_;
  std::map<int, std::deque<Key>> serial_sends_;  ///< Per dst, FIFO.
  std::map<int, std::deque<Key>> serial_recvs_;  ///< Per src, seq-sorted.
  std::vector<Key> knem_recvs_;

  std::deque<PendingCtrl> pending_ctrl_;
  EngineStats stats_;
  tune::Counters counters_;
  trace::Tracer tracer_;  ///< Event ring (allocated only when tracing is on).
  /// Cached registry histogram for progress-pass latency (full mode only;
  /// cached so the hot path never takes the registry lock).
  trace::Histogram* progress_hist_ = nullptr;
  coll::WorldColl coll_;  ///< View of the world's collective arena.
  std::uint64_t coll_bar_seq_ = 0;    ///< Arena-barrier sequence issued.
  std::uint64_t coll_probe_seq_ = 0;  ///< Count-probe sequence issued.
  std::uint32_t barrier_tree_ranks_ = UINT32_MAX;  ///< Tuned tree threshold.
  std::uint32_t barrier_tree_k_ = 4;               ///< Tuned tree fan-in.
  transport::Transport* xport_ = nullptr;  ///< World-owned transport.
  bool xport_hooks_ = false;  ///< Cached has_hooks() (hot-path gate).
  std::uint32_t coll_hier_nodes_ = UINT32_MAX;  ///< Tuned hier threshold.
  simd::Kernel simd_kernel_ = simd::Kernel::kScalar;  ///< Resolved fold ISA.
  std::size_t pack_nt_min_ = SIZE_MAX;  ///< Tuned pack->NT-store cutoff.
  /// Largest eager message routed through the pair fastboxes (tuned cutoff
  /// clamped to the slot payload).
  std::size_t fastbox_max_ = 0;
  /// Recv-queue cells drained per progress() pass (tuned / env override).
  std::uint32_t drain_budget_ = 256;
  bool in_progress_ = false;
  std::uint64_t coll_seq_ = 0;

  // Liveness / recovery state (engine-local; the shared words live in the
  // arena behind live_).
  resil::Liveness live_;
  std::size_t peer_timeout_ms_ = resil::kTimeoutOff;
  resil::OnPeerDeath on_death_ = resil::OnPeerDeath::kAbort;
  std::vector<unsigned char> fenced_;  ///< Per-rank: death already fenced.
  std::vector<unsigned char> tombstoned_;  ///< Per-rank: cells reclaimed.
  int fenced_count_ = 0;
  int effective_leader_ = 0;

  /// Reset the lock-step collective sequence counters to the fence's agreed
  /// floor (fence_world), restoring cross-rank counter agreement after
  /// survivors abandoned different numbers of in-flight rounds.
  void resync_coll_seqs(std::uint64_t floor) {
    coll_seq_ = floor;
    coll_bar_seq_ = floor;
    coll_probe_seq_ = floor;
  }
};

/// Public communicator handle for one rank.
class Comm {
 public:
  Comm(World& world, int rank);

  [[nodiscard]] int rank() const { return engine_.rank(); }
  [[nodiscard]] int size() const { return engine_.nranks(); }
  [[nodiscard]] World& world() { return engine_.world(); }
  [[nodiscard]] Engine& engine() { return engine_; }

  // --- Point-to-point -----------------------------------------------------
  void send(const void* buf, std::size_t bytes, int dst, int tag,
            int context = 0);
  void recv(void* buf, std::size_t bytes, int src, int tag,
            RecvInfo* info = nullptr, int context = 0);

  Request isend(const void* buf, std::size_t bytes, int dst, int tag,
                int context = 0);
  Request irecv(void* buf, std::size_t bytes, int src, int tag,
                int context = 0);

  /// Scatter/gather variants (noncontiguous buffers).
  Request isendv(ConstSegmentList segs, int dst, int tag);
  Request irecvv(SegmentList segs, int src, int tag);

  /// Typed variants lower the datatype to segments (single-copy capable
  /// backends transfer them without packing).
  void send_typed(const void* base, const Datatype& dt, std::size_t count,
                  int dst, int tag);
  void recv_typed(void* base, const Datatype& dt, std::size_t count, int src,
                  int tag);

  /// Strided async variants: lower the datatype to its merged segment list
  /// and hand it straight to the engine, so the eager cell-gather / LMT
  /// segment paths move the blocks with no intermediate contiguous staging
  /// buffer (pack-path telemetry records the direct flow).
  Request isend_strided(const void* base, const Datatype& dt,
                        std::size_t count, int dst, int tag);
  Request irecv_strided(void* base, const Datatype& dt, std::size_t count,
                        int src, int tag);

  void wait(const Request& req) { engine_.wait(req); }
  bool test(const Request& req) { return engine_.test(req); }
  void waitall(std::span<Request> reqs);

  // --- Collectives ----------------------------------------------------------
  void barrier();
  void bcast(void* buf, std::size_t bytes, int root);
  void gather(const void* sendbuf, std::size_t per_rank, void* recvbuf,
              int root);
  void scatter(const void* sendbuf, std::size_t per_rank, void* recvbuf,
               int root);
  void allgather(const void* sendbuf, std::size_t per_rank, void* recvbuf);
  void alltoall(const void* sendbuf, std::size_t per_rank, void* recvbuf);
  void alltoallv(const void* sendbuf, const std::size_t* scounts,
                 const std::size_t* sdispls, void* recvbuf,
                 const std::size_t* rcounts, const std::size_t* rdispls);

  /// Strided collectives: each rank's contribution is `count` elements of
  /// `dt` (footprint count * extent per peer). The shm path packs blocks
  /// directly into collective-arena slots — NT streaming stores above the
  /// tuned pack threshold — and unpacks readers-side straight into the
  /// strided receive buffer; below coll_activation the merged segment
  /// lists ride the pt2pt engine. Either way no intermediate contiguous
  /// staging buffer is materialised.
  void alltoall_strided(const void* sendbuf, const Datatype& sdt,
                        std::size_t count, void* recvbuf, const Datatype& rdt);
  void allgather_strided(const void* sendbuf, const Datatype& sdt,
                         std::size_t count, void* recvbuf,
                         const Datatype& rdt);

  enum class ReduceOp { kSum, kProd, kMin, kMax };
  /// Element type selected by tag dispatch below.
  void reduce_f64(const double* in, double* out, std::size_t n, ReduceOp op,
                  int root);
  void allreduce_f64(const double* in, double* out, std::size_t n,
                     ReduceOp op);
  void reduce_f32(const float* in, float* out, std::size_t n, ReduceOp op,
                  int root);
  void allreduce_f32(const float* in, float* out, std::size_t n, ReduceOp op);
  void reduce_i64(const std::int64_t* in, std::int64_t* out, std::size_t n,
                  ReduceOp op, int root);
  void allreduce_i64(const std::int64_t* in, std::int64_t* out, std::size_t n,
                     ReduceOp op);
  void reduce_i32(const std::int32_t* in, std::int32_t* out, std::size_t n,
                  ReduceOp op, int root);
  void allreduce_i32(const std::int32_t* in, std::int32_t* out, std::size_t n,
                     ReduceOp op);

  // --- Utilities ------------------------------------------------------------
  std::byte* shared_alloc(std::size_t bytes, std::size_t align = kCacheLine) {
    return engine_.world().shared_alloc(bytes, align);
  }
  void hard_barrier() { engine_.world().hard_barrier(engine_.rank()); }

  /// Epoch fence after a peer death (NEMO_ON_PEER_DEATH=degrade): every
  /// surviving rank calls this once it has observed the PeerDeadError, and
  /// on return the world is usable again over the survivor set — the dead
  /// rank's arena cells are tombstoned, the leader/coordinator choice has
  /// shrunk to the survivors, and the lock-step collective sequence counters
  /// are resynchronised to a jointly agreed floor (each survivor may have
  /// abandoned a different number of in-flight rounds). No-op when nobody
  /// is dead. Bounded like any other wait: a second death during the fence
  /// throws PeerDeadError and the fence is re-run after catching it.
  void fence_world();

 private:
  /// Does this operation take the shm collective arena? `op_bytes` is the
  /// op's symmetric size measure, `slot_need` the per-slot capacity the op
  /// requires (0 capacity forces pt2pt even under NEMO_COLL=shm).
  bool use_shm_coll(std::size_t op_bytes, std::size_t slot_need);

  /// One arena-barrier round: the k-ary tree schedule at/above the tuned
  /// barrier_tree_ranks, flat below it (both keep pt2pt progress flowing
  /// while spinning).
  void shm_barrier();
  void flat_barrier();
  void tree_barrier();

  /// Auto-mode alltoallv's rank-consistent size proxy: exchange each
  /// rank's total row bytes through the arena's count-probe cells and
  /// return the minimum — every rank computes the same value, so the
  /// family decision cannot diverge even though counts are asymmetric.
  std::size_t alltoallv_min_row_bytes(const std::size_t* scounts);

  // pt2pt algorithms: the fallback below coll_activation and the
  // correctness oracle the tests cross-check against.
  void barrier_p2p();
  void bcast_p2p(void* buf, std::size_t bytes, int root);
  void allgather_p2p(const void* sendbuf, std::size_t per_rank,
                     void* recvbuf);
  void alltoall_p2p(const void* sendbuf, std::size_t per_rank,
                    void* recvbuf);
  void alltoallv_p2p(const void* sendbuf, const std::size_t* scounts,
                     const std::size_t* sdispls, void* recvbuf,
                     const std::size_t* rcounts, const std::size_t* rdispls);

  // Shared-memory collective arena algorithms (src/coll/).
  void bcast_shm(void* buf, std::size_t bytes, int root, std::uint64_t epoch);
  void allgather_shm(const void* sendbuf, std::size_t per_rank,
                     void* recvbuf, std::uint64_t epoch);
  void alltoall_shm(const void* sendbuf, std::size_t per_rank, void* recvbuf,
                    std::uint64_t epoch);
  void alltoallv_shm(const void* sendbuf, const std::size_t* scounts,
                     const std::size_t* sdispls, void* recvbuf,
                     const std::size_t* rcounts, const std::size_t* rdispls,
                     std::uint64_t epoch);
  template <typename T>
  void reduce_shm(const T* in, T* out, std::size_t n, ReduceOp op, int root,
                  bool all, std::uint64_t epoch);

  // Hierarchical two-level collectives (src/coll/coll_hier.cpp): intranode
  // leg through the collective arena under one NUMA-chosen leader per
  // synthetic node, internode leg over the (modeled) transport between
  // leaders. Engaged in auto mode when the transport partitions the world
  // into >= coll_hier_nodes nodes; fold order is the flat ascending-rank
  // order, so results are bit-identical to the p2p/shm algorithms.
  /// World-symmetric gate (same answer on every rank). `op_bytes` is the
  /// op's symmetric size measure (0 = degenerate op, stays flat).
  bool use_hier_coll(std::size_t op_bytes);
  void bcast_hier(void* buf, std::size_t bytes, int root, std::uint64_t cs);
  bool alltoall_hier(const void* sendbuf, std::size_t per_rank, void* recvbuf,
                     std::uint64_t cs);
  template <typename T>
  void reduce_hier(const T* in, T* out, std::size_t n, ReduceOp op, int root,
                   bool all, std::uint64_t cs);

  template <typename T>
  void reduce_impl(const T* in, T* out, std::size_t n, ReduceOp op, int root,
                   int tag_base);
  template <typename T>
  void allreduce_impl(const T* in, T* out, std::size_t n, ReduceOp op,
                      int tag_base);
  template <typename T>
  void reduce_dispatch(const T* in, T* out, std::size_t n, ReduceOp op,
                       int root, bool all);

  /// Pack `count` elements of `dt` at `base` into `dst`, streaming through
  /// the NT engine above the tuned threshold; bumps the pack-path counters
  /// (`direct` = destination is a shared slot/cell, not a staging buffer).
  void pack_into(const void* base, const Datatype& dt, std::size_t count,
                 std::byte* dst, bool direct);
  void unpack_from(const std::byte* src, const Datatype& dt,
                   std::size_t count, void* base);

  /// Strided alltoall over the collective arena (single deposit round;
  /// callers checked the packed per-dest bytes fit one slot chunk).
  void alltoall_strided_shm(const void* sendbuf, const Datatype& sdt,
                            std::size_t count, void* recvbuf,
                            const Datatype& rdt, std::uint64_t epoch);
  void alltoall_strided_p2p(const void* sendbuf, const Datatype& sdt,
                            std::size_t count, void* recvbuf,
                            const Datatype& rdt);
  void allgather_strided_shm(const void* sendbuf, const Datatype& sdt,
                             std::size_t count, void* recvbuf,
                             const Datatype& rdt, std::uint64_t epoch);
  void allgather_strided_p2p(const void* sendbuf, const Datatype& sdt,
                             std::size_t count, void* recvbuf,
                             const Datatype& rdt);

  Engine engine_;
  /// Reduction receive scratch, grown to the high-water mark once instead
  /// of a fresh vector per reduction pass.
  std::vector<std::byte> reduce_scratch_;
};

/// Launch `cfg.nranks` ranks (threads or forked processes per cfg.mode), run
/// `fn(comm)` on each, and tear the world down. Throws on any rank failure
/// in thread mode; returns false on child failure in process mode.
bool run(const Config& cfg, const std::function<void(Comm&)>& fn);

}  // namespace nemo::core
