// Shared internals of the collective implementations (core/collectives.cpp
// and coll/coll_hier.cpp): the tag/epoch namespacing contract and the
// progress-preserving spin helpers. These constants are load-bearing across
// translation units — the flat and hierarchical families derive tags and
// arena epochs from the SAME per-Comm collective sequence number, so two
// files disagreeing on the formulas would cross-match messages from
// different collective instances.
#pragma once

#include <thread>

#include "core/comm.hpp"

namespace nemo::core::coll_detail {

/// Internal pt2pt tags live in a reserved negative space, namespaced by the
/// per-Comm collective sequence number so back-to-back collectives cannot
/// cross-match.
inline constexpr int kCollTagBase = -(1 << 20);

/// Distinct tag for (collective instance, phase). Phases 0..15.
inline int coll_tag(std::uint64_t coll_seq, int phase) {
  return kCollTagBase - static_cast<int>((coll_seq % 4096) * 16) - phase;
}

/// Arena epoch for collective instance `cs` (3 phase bits appended; +1
/// keeps epoch 0 reserved for "slot never used").
inline std::uint64_t epoch_base(std::uint64_t cs) { return (cs + 1) << 3; }

/// Spin until `ready()` while keeping pt2pt progress flowing. Counts one
/// epoch stall whenever the first probe missed (the telemetry the tuner
/// reads as "readers arrive before writers publish"). Bounded: the liveness
/// guard turns a dead peer into PeerDeadError (running the local epoch
/// fence first) instead of spinning forever. `watch` is the specific rank
/// the wait depends on, -1 when any peer could unblock it.
template <typename Pred>
void spin_until(Engine& eng, resil::Site site, int watch, Pred&& ready) {
  if (ready()) return;
  eng.counters().coll_epoch_stalls++;
  if (trace::on()) eng.tracer().emit(trace::kEpochStall, trace::kInstant);
  resil::WaitGuard guard = eng.make_guard(site, watch);
  std::uint32_t spins = 0;
  try {
    while (!ready()) {
      if ((++spins & 0x3F) == 0) {
        eng.progress();
        guard.check();
        std::this_thread::yield();
      }
    }
  } catch (const resil::PeerDeadError& e) {
    eng.peer_death_fence(e);
    throw;
  }
}

/// spin_until without the stall telemetry — for waits that are not part of
/// an arena op's data path (count probes, hierarchical legs): their misses
/// must not feed the epoch-stall rate the feedback pass divides by
/// coll_shm_ops.
template <typename Pred>
void spin_until_quiet(Engine& eng, resil::Site site, int watch,
                      Pred&& ready) {
  resil::WaitGuard guard = eng.make_guard(site, watch);
  std::uint32_t spins = 0;
  try {
    while (!ready()) {
      if ((++spins & 0x3F) == 0) {
        eng.progress();
        guard.check();
        std::this_thread::yield();
      }
    }
  } catch (const resil::PeerDeadError& e) {
    eng.peer_death_fence(e);
    throw;
  }
}

inline simd::Op to_simd(Comm::ReduceOp op) {
  switch (op) {
    case Comm::ReduceOp::kSum: return simd::Op::kSum;
    case Comm::ReduceOp::kProd: return simd::Op::kProd;
    case Comm::ReduceOp::kMin: return simd::Op::kMin;
    case Comm::ReduceOp::kMax: return simd::Op::kMax;
  }
  return simd::Op::kSum;
}

/// One per-chunk combine: dst[i] = op(dst[i], src[i]) through the engine's
/// resolved kernel. Element-wise vertical folds only, so every kernel is
/// bit-identical to the scalar oracle and the ascending-rank fold order
/// stays intact.
template <typename T>
void fold_chunk(Engine& eng, Comm::ReduceOp op, T* dst, const T* src,
                std::size_t n) {
  simd::Kernel k = eng.simd_kernel();
  simd::fold(k, to_simd(op), dst, src, n);
  auto ki = static_cast<std::size_t>(k);
  eng.counters().simd_fold_ops[ki]++;
  eng.counters().simd_fold_bytes[ki] += n * sizeof(T);
}

}  // namespace nemo::core::coll_detail
