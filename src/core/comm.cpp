#include "core/comm.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <thread>

#include "common/options.hpp"
#include "lmt/backends.hpp"
#include "shm/nt_copy.hpp"

namespace nemo::core {

using shm::aref;
using shm::Cell;
using shm::CellType;
using shm::kNil;
using shm::QueueView;

// ---------------------------------------------------------------------------
// World
// ---------------------------------------------------------------------------

LaunchMode world_mode_from_env(LaunchMode fallback) {
  auto v = nemo::Config::str("NEMO_WORLD_MODE");
  if (!v) return fallback;
  if (*v == "threads") return LaunchMode::kThreads;
  if (*v == "procs" || *v == "processes") return LaunchMode::kProcesses;
  throw std::invalid_argument("NEMO_WORLD_MODE: expected threads|procs, got '" +
                              *v + "'");
}

namespace {

struct BarrierBlock {
  alignas(kCacheLine) std::uint64_t count;
  alignas(kCacheLine) std::uint64_t generation;
};

/// Both cores valid ids in `topo` and distinct (classify() indexes by core).
bool classifiable(const Topology& topo, int a, int b) {
  return a >= 0 && a < topo.num_cores && b >= 0 && b < topo.num_cores &&
         a != b;
}

/// Per-pair ring geometry: the tuned placement row when it names one, else
/// the world-wide Config/env value. Rows only apply when both cores are
/// known (placement classification needs them).
std::pair<std::uint32_t, std::uint32_t> ring_geometry(
    const Config& cfg, const tune::TuningTable& tuning, const Topology& topo,
    int score, int dcore) {
  std::uint32_t bufs = cfg.ring_bufs;
  std::uint32_t buf_bytes = cfg.ring_buf_bytes;
  if (classifiable(topo, score, dcore)) {
    const tune::PlacementTuning& row =
        tuning.for_placement(topo.classify(score, dcore));
    if (row.ring_bufs != 0) bufs = row.ring_bufs;
    if (row.ring_buf_bytes != 0) buf_bytes = row.ring_buf_bytes;
  }
  return {bufs, buf_bytes};
}

/// Per-rank collective slot capacity: programmatic Config beats the tuned /
/// cached value; NEMO_COLL_SLOT_BYTES beats both (apply_env writes it into
/// the Config, with_env_overrides into the table).
std::uint32_t effective_coll_slot_bytes(const Config& cfg,
                                        const tune::TuningTable& tuning) {
  std::size_t v =
      cfg.coll_slot_bytes != 0 ? cfg.coll_slot_bytes : tuning.coll_slot_bytes;
  v = round_up(std::clamp(v, tune::kCollSlotMin, tune::kCollSlotMax),
               kCacheLine);
  return static_cast<std::uint32_t>(std::min(v, tune::kCollSlotMax));
}

std::size_t auto_arena_bytes(const Config& cfg,
                             const tune::TuningTable& tuning) {
  std::size_t n = static_cast<std::size_t>(cfg.nranks);
  std::size_t per_rank = 2 * sizeof(shm::QueueState) +
                         cfg.cells_per_rank * sizeof(Cell) + 4 * KiB;
  std::size_t pairs = n * (n - 1);
  // Size for the largest geometry any placement row could select, plus page
  // slack for the NUMA-bindable page-aligned carving.
  std::size_t max_bufs = cfg.ring_bufs;
  std::size_t max_buf_bytes = cfg.ring_buf_bytes;
  for (const auto& row : tuning.place) {
    max_bufs = std::max<std::size_t>(max_bufs, row.ring_bufs);
    max_buf_bytes = std::max<std::size_t>(max_buf_bytes, row.ring_buf_bytes);
  }
  std::size_t per_ring =
      sizeof(shm::CopyRingState) +
      max_bufs * (sizeof(shm::CopyRingSlot) + max_buf_bytes) +
      4 * KiB + 2 * shm::Arena::kPageBytes;
  std::size_t per_fastbox =
      sizeof(shm::FastboxState) +
      static_cast<std::size_t>(tuning.fastbox_slots) *
          tuning.fastbox_slot_bytes +
      kCacheLine + 2 * shm::Arena::kPageBytes;
  std::size_t knem = sizeof(knem::DeviceState) +
                     256 * sizeof(knem::CookieSlot) +
                     256 * sizeof(knem::SegBlock) + 64 * KiB;
  std::size_t coll =
      cfg.nranks > 1
          ? coll::WorldColl::footprint(cfg.nranks,
                                       effective_coll_slot_bytes(cfg, tuning))
          : 0;
  return 1 * MiB + n * per_rank + pairs * (per_ring + per_fastbox) + knem +
         coll + cfg.shared_pool_bytes;
}

/// Environment knobs override the programmatic Config so any entry point
/// (tests, benches, applications) can be retuned without a rebuild.
Config apply_env(Config cfg) {
  long rb = nemo::Config::integer("NEMO_RING_BUFS", cfg.ring_bufs);
  if (rb >= 1) cfg.ring_bufs = static_cast<std::uint32_t>(rb);
  std::size_t rbb = nemo::Config::size("NEMO_RING_BUF_BYTES", cfg.ring_buf_bytes);
  if (rbb != static_cast<std::size_t>(-1) && rbb >= kCacheLine) {
    if (rbb > 1 * GiB)
      throw std::invalid_argument(
          "NEMO_RING_BUF_BYTES: too large (max 1GiB)");
    cfg.ring_buf_bytes =
        static_cast<std::uint32_t>(round_up(rbb, kCacheLine));
  }
  cfg.use_fastbox = nemo::Config::flag("NEMO_FASTBOX", cfg.use_fastbox);
  if (nemo::Config::str("NEMO_NT_MIN")) cfg.nt_min = nemo::Config::size("NEMO_NT_MIN", 0);
  cfg.numa_placement = shm::numa_placement_from_env(cfg.numa_placement);
  cfg.coll = coll::mode_from_env(cfg.coll);
  if (auto v = tune::coll_slot_bytes_from_env()) cfg.coll_slot_bytes = *v;
  cfg.coll_leader = coll::leader_from_env(cfg.coll_leader, cfg.nranks);
  cfg.mode = world_mode_from_env(cfg.mode);
  if (auto v = nemo::Config::str("NEMO_CMA")) {
    if (*v == "off" || *v == "0" || *v == "false") {
      cfg.cma_enabled = false;
    } else if (*v == "nosyscall") {
      cfg.cma_sim_fail = true;
    } else if (!(*v == "on" || *v == "1" || *v == "true")) {
      throw std::invalid_argument("NEMO_CMA: expected on|off|nosyscall, got '" + *v + "'");
    }
  }
  if (nemo::Config::str("NEMO_PEER_TIMEOUT_MS")) {
    // env_size parses "off"/"never" as SIZE_MAX == resil::kTimeoutOff.
    std::size_t ms = nemo::Config::size("NEMO_PEER_TIMEOUT_MS", cfg.peer_timeout_ms);
    if (ms == 0)
      throw std::invalid_argument(
          "NEMO_PEER_TIMEOUT_MS: expected a positive millisecond count or "
          "'off'");
    cfg.peer_timeout_ms = ms;
  }
  if (auto v = nemo::Config::str("NEMO_ON_PEER_DEATH")) {
    if (*v == "abort")
      cfg.on_peer_death = resil::OnPeerDeath::kAbort;
    else if (*v == "degrade")
      cfg.on_peer_death = resil::OnPeerDeath::kDegrade;
    else
      throw std::invalid_argument(
          "NEMO_ON_PEER_DEATH: expected abort|degrade, got '" + *v + "'");
  }
  if (auto v = nemo::Config::str("NEMO_TRANSPORT")) cfg.transport = *v;
  if (auto v = nemo::Config::str("NEMO_NODES")) cfg.nodes_spec = *v;
  if (auto v = nemo::Config::str("NEMO_LMT")) {
    if (*v == "auto")
      cfg.lmt = lmt::LmtKind::kAuto;
    else if (*v == "shm" || *v == "default")
      cfg.lmt = lmt::LmtKind::kDefaultShm;
    else if (*v == "vmsplice")
      cfg.lmt = lmt::LmtKind::kVmsplice;
    else if (*v == "writev" || *v == "vmsplice-writev")
      cfg.lmt = lmt::LmtKind::kVmspliceWritev;
    else if (*v == "knem")
      cfg.lmt = lmt::LmtKind::kKnem;
    else if (*v == "cma")
      cfg.lmt = lmt::LmtKind::kCma;
    else
      throw std::invalid_argument(
          "NEMO_LMT: expected auto|shm|vmsplice|writev|knem|cma, got '" + *v +
          "'");
  }
  return cfg;
}

}  // namespace

World::World(Config cfg)
    : cfg_(apply_env(std::move(cfg))),
      topo_(cfg_.topo.num_cores > 0 ? cfg_.topo : detect_host()),
      tuning_(cfg_.tuning ? tune::with_env_overrides(*cfg_.tuning)
                          : tune::effective_table(topo_)),
      arena_(cfg_.shm_name.empty()
                 ? shm::Arena::create_anonymous(
                       cfg_.arena_bytes ? cfg_.arena_bytes
                                        : auto_arena_bytes(cfg_, tuning_))
                 : shm::Arena::create_shm(
                       cfg_.shm_name,
                       cfg_.arena_bytes
                           ? cfg_.arena_bytes
                           : auto_arena_bytes(cfg_, tuning_))),
      pipes_(cfg_.nranks) {
  // Pick up NEMO_TRACE before any Engine constructs its tracer (tests and
  // tools pin the mode via ScopedEnv between World lifetimes). NEMO_FAULT
  // follows the same discipline: re-armed per World, inherited by forked
  // ranks.
  trace::reload_mode();
  resil::reload_fault();
  NEMO_ASSERT(cfg_.nranks >= 1);
  // The transport: substrate topology + link accounting. Constructed before
  // any Engine so the cached has_hooks() gate and the synthetic-node map
  // are fixed for the life of the world (children inherit the heap object
  // across fork; it holds no arena state).
  xport_ = transport::make_transport(cfg_.transport, cfg_.nodes_spec,
                                     cfg_.nranks);
  NEMO_ASSERT_MSG(cfg_.core_binding.empty() ||
                      cfg_.core_binding.size() ==
                          static_cast<std::size_t>(cfg_.nranks),
                  "core_binding must name one core per rank");
  topo_.validate();

  rank_queues_.reserve(static_cast<std::size_t>(cfg_.nranks));
  for (int r = 0; r < cfg_.nranks; ++r)
    rank_queues_.push_back(shm::make_rank_queues(
        arena_, static_cast<std::uint32_t>(r), cfg_.cells_per_rank));

  // Per-pair rings and fastboxes, with NUMA-aware placement: the decision
  // (which node, if any) is recorded for every pair even when binding is
  // unavailable, so placement stays observable on single-node hosts.
  numa_mode_ = cfg_.numa_placement;
  std::size_t n2 = static_cast<std::size_t>(cfg_.nranks) *
                   static_cast<std::size_t>(cfg_.nranks);
  ring_offs_.assign(n2, kNil);
  ring_place_.assign(n2, RingPlacement{});
  if (cfg_.use_fastbox) fastbox_offs_.assign(n2, kNil);
  for (int s = 0; s < cfg_.nranks; ++s)
    for (int d = 0; d < cfg_.nranks; ++d) {
      if (s == d) continue;
      std::size_t idx = static_cast<std::size_t>(s) *
                            static_cast<std::size_t>(cfg_.nranks) +
                        static_cast<std::size_t>(d);
      int score = core_of(s), dcore = core_of(d);
      auto [bufs, buf_bytes] = ring_geometry(cfg_, tuning_, topo_, score,
                                             dcore);
      shm::RegionPlacement want =
          shm::choose_region_placement(numa_mode_, topo_, score, dcore);
      bool place = want.node >= 0 || want.interleave;

      RingPlacement rp;
      if (classifiable(topo_, score, dcore))
        rp.pair = topo_.classify(score, dcore);
      rp.node = want.node;
      rp.interleaved = want.interleave;

      std::uint64_t ring_off =
          shm::CopyRing::create(arena_, bufs, buf_bytes, place);
      ring_offs_[idx] = ring_off;
      shm::CopyRing ring(arena_, ring_off);
      std::byte* data = arena_.at(ring.data_off());
      if (want.node >= 0)
        rp.bound = shm::bind_to_node(data, ring.data_bytes(), want.node);
      else if (want.interleave)
        rp.bound = shm::interleave(data, ring.data_bytes());
      ring_place_[idx] = rp;

      if (cfg_.use_fastbox) {
        std::uint64_t fb_off = shm::Fastbox::create(
            arena_, tuning_.fastbox_slots, tuning_.fastbox_slot_bytes, place);
        fastbox_offs_[idx] = fb_off;
        std::size_t fb_bytes =
            sizeof(shm::FastboxState) +
            static_cast<std::size_t>(tuning_.fastbox_slots) *
                tuning_.fastbox_slot_bytes;
        if (want.node >= 0)
          shm::bind_to_node(arena_.at(fb_off), fb_bytes, want.node);
        else if (want.interleave)
          shm::interleave(arena_.at(fb_off), fb_bytes);
      }
    }

  // The collective arena: every rank reads every slot, so under the
  // interleaving NUMA modes its pages are spread across nodes like the
  // other many-reader bootstrap state below.
  if (cfg_.nranks > 1) {
    std::uint32_t coll_slot = effective_coll_slot_bytes(cfg_, tuning_);
    coll_off_ = coll::WorldColl::create(arena_, cfg_.nranks, coll_slot);
    if (numa_mode_ == shm::NumaPlacement::kAuto ||
        numa_mode_ == shm::NumaPlacement::kInterleave)
      shm::interleave(arena_.at(coll_off_),
                      coll::WorldColl::region_bytes(cfg_.nranks, coll_slot));
  }

  // Reduction leader: the rank whose NUMA node backs the plurality of
  // ranks. Each rank's node comes from its pinned core when bound; unbound
  // ranks fall back to the recorded ring-placement decision for one of
  // their pairs (computed even when mbind never ran, so the choice stays
  // deterministic and testable on single-node hosts).
  if (cfg_.coll_leader >= 0) {
    coll_leader_ = cfg_.coll_leader;
  } else if (cfg_.nranks > 1) {
    std::vector<int> node_of_rank(static_cast<std::size_t>(cfg_.nranks), -1);
    for (int r = 0; r < cfg_.nranks; ++r) {
      int core = core_of(r);
      if (core >= 0 && core < topo_.num_cores)
        node_of_rank[static_cast<std::size_t>(r)] = topo_.numa_node_of(core);
      else
        node_of_rank[static_cast<std::size_t>(r)] =
            ring_placement(r, (r + 1) % cfg_.nranks).node;
    }
    coll_leader_ = coll::choose_leader(node_of_rank);
  }

  std::uint64_t shared_state_begin = arena_.alloc(8, kCacheLine);
  knem_off_ = knem::Device::create(arena_);

  pid_table_off_ = arena_.alloc(sizeof(std::uint64_t) *
                                    static_cast<std::size_t>(cfg_.nranks),
                                kCacheLine);
  std::memset(arena_.at(pid_table_off_), 0,
              sizeof(std::uint64_t) * static_cast<std::size_t>(cfg_.nranks));

  barrier_off_ = arena_.alloc(sizeof(BarrierBlock), kCacheLine);
  auto* bb = arena_.at_as<BarrierBlock>(barrier_off_);
  bb->count = 0;
  bb->generation = 0;

  // Liveness words: per-rank heartbeat cells, death flags, and the fence
  // block. Bootstrap state like the pid table — every rank reads every cell.
  life_off_ = resil::Liveness::create(arena_, cfg_.nranks);

  // Many-reader bootstrap state (KNEM cookie table, pid table, barrier,
  // liveness): every rank polls these, so no single home node is right —
  // interleave the span under kAuto/kInterleave. Sub-page spans are a no-op.
  if (numa_mode_ == shm::NumaPlacement::kAuto ||
      numa_mode_ == shm::NumaPlacement::kInterleave) {
    std::uint64_t end =
        life_off_ + resil::Liveness::footprint(cfg_.nranks);
    shm::interleave(arena_.at(shared_state_begin), end - shared_state_begin);
  }

  vmsplice_ok_ = shm::Pipe::vmsplice_available();
  cma_ok_ = cfg_.cma_enabled && shm::cma_available();
}

void World::reattach_in_child() {
  // Anonymous arenas exist only through the inherited mapping; nothing to
  // re-attach. Named arenas take the real deployment path: a fresh
  // shm_open + mmap at a child-chosen base, proving every cross-rank
  // structure is offset-addressed.
  if (cfg_.shm_name.empty()) return;
  shm::Arena fresh = shm::Arena::open_shm(cfg_.shm_name);
  arena_.disown();      // The parent keeps unlink responsibility.
  arena_ = std::move(fresh);  // Unmaps the inherited view.

  // Re-apply the recorded NUMA placement decisions to the new VMA: memory
  // policies are per-address-space, so the parent's mbind calls do not
  // travel with the shm segment. Pages the owning rank has not yet
  // first-touched are placed by this process, per the recorded decision.
  std::size_t fb_bytes = sizeof(shm::FastboxState) +
                         static_cast<std::size_t>(tuning_.fastbox_slots) *
                             tuning_.fastbox_slot_bytes;
  for (int s = 0; s < cfg_.nranks; ++s)
    for (int d = 0; d < cfg_.nranks; ++d) {
      if (s == d) continue;
      std::size_t idx = static_cast<std::size_t>(s) *
                            static_cast<std::size_t>(cfg_.nranks) +
                        static_cast<std::size_t>(d);
      const RingPlacement& rp = ring_place_[idx];
      if (rp.node < 0 && !rp.interleaved) continue;
      shm::CopyRing ring(arena_, ring_offs_[idx]);
      std::byte* data = arena_.at(ring.data_off());
      if (rp.node >= 0)
        shm::bind_to_node(data, ring.data_bytes(), rp.node);
      else
        shm::interleave(data, ring.data_bytes());
      if (cfg_.use_fastbox) {
        std::byte* fb = arena_.at(fastbox_offs_[idx]);
        if (rp.node >= 0)
          shm::bind_to_node(fb, fb_bytes, rp.node);
        else
          shm::interleave(fb, fb_bytes);
      }
    }
  if (coll_off_ != shm::kNil &&
      (numa_mode_ == shm::NumaPlacement::kAuto ||
       numa_mode_ == shm::NumaPlacement::kInterleave)) {
    std::uint32_t coll_slot = effective_coll_slot_bytes(cfg_, tuning_);
    shm::interleave(arena_.at(coll_off_),
                    coll::WorldColl::region_bytes(cfg_.nranks, coll_slot));
  }
}

void World::register_pid(int rank, pid_t pid) {
  auto* table = arena_.at_as<std::uint64_t>(pid_table_off_);
  aref(table[rank]).store(static_cast<std::uint64_t>(pid),
                          std::memory_order_release);
}

pid_t World::pid_of(int rank) const {
  auto* table = arena_.at_as<std::uint64_t>(pid_table_off_);
  std::uint64_t v = aref(table[rank]).load(std::memory_order_acquire);
  NEMO_ASSERT_MSG(v != 0, "peer pid not registered yet");
  return static_cast<pid_t>(v);
}

void World::hard_barrier(int self_rank) {
  auto* bb = arena_.at_as<BarrierBlock>(barrier_off_);
  std::uint64_t gen = aref(bb->generation).load(std::memory_order_acquire);
  std::uint64_t arrived =
      aref(bb->count).fetch_add(1, std::memory_order_acq_rel) + 1;
  if (arrived == static_cast<std::uint64_t>(cfg_.nranks)) {
    aref(bb->count).store(0, std::memory_order_relaxed);
    aref(bb->generation).fetch_add(1, std::memory_order_acq_rel);
  } else {
    resil::Liveness live = liveness();
    resil::WaitGuard guard(self_rank >= 0 ? &live : nullptr, self_rank, -1,
                           resil::Site::kHardBarrier, cfg_.peer_timeout_ms,
                           nullptr, nullptr);
    std::uint32_t spins = 0;
    while (aref(bb->generation).load(std::memory_order_acquire) == gen) {
      if ((++spins & 0x3F) == 0) guard.check();
      std::this_thread::yield();
    }
  }
}

std::byte* World::shared_alloc(std::size_t bytes, std::size_t align) {
  return arena_.at(arena_.alloc(bytes, align));
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

namespace {

lmt::PolicyConfig effective_policy(const World& w, const Config& cfg) {
  lmt::PolicyConfig pc = cfg.policy;
  pc.vmsplice_available = pc.vmsplice_available && w.vmsplice_ok();
  pc.cma_available =
      pc.cma_available && w.cma_ok() && w.tuning().cma_available;
  pc.dma_available = pc.dma_available && cfg.dma_available;
  pc.tuning = &w.tuning();  // World outlives every engine's policy.
  return pc;
}

}  // namespace

Engine::Engine(World& world, int rank)
    : world_(world),
      rank_(rank),
      policy_(world.topology(), effective_policy(world, world.config())),
      knem_dev_(world.arena(), world.knem_off(), rank, ::getpid()),
      recv_q_(world.arena(), world.recv_q_off(rank)),
      free_q_(world.arena(), world.free_q_off(rank)),
      next_seq_(static_cast<std::size_t>(world.nranks()), 1),
      expected_seq_(static_cast<std::size_t>(world.nranks()), 1),
      tracer_(rank) {
  world.register_pid(rank, ::getpid());
  if (trace::on(trace::Mode::kFull))
    progress_hist_ = &trace::registry().hist("progress.pass_ns");
  matcher_.set_counters(&counters_);
  if (world.coll_off() != shm::kNil)
    coll_ = coll::WorldColl(world.arena(), world.coll_off());
  const tune::TuningTable& tuning = world.tuning();
  fastbox_max_ =
      std::min<std::size_t>(tuning.fastbox_max,
                            tuning.fastbox_slot_bytes -
                                shm::FastboxSlot::kHeaderBytes);
  drain_budget_ = std::max<std::uint32_t>(1, tuning.drain_budget);
  poll_hot_ = tuning.poll_hot;
  barrier_tree_ranks_ = std::max<std::uint32_t>(2, tuning.barrier_tree_ranks);
  barrier_tree_k_ = std::max<std::uint32_t>(2, tuning.barrier_tree_k);
  // Fold kernel and pack threshold resolve once here: NEMO_SIMD already
  // overrode the table row (with_env_overrides), so resolving the table
  // choice against CPUID is the full precedence chain. pack_nt_min 0 means
  // "formula" — a pre-schema-4 cache loads without the row.
  simd_kernel_ = simd::resolve(tuning.simd_kernel);
  pack_nt_min_ = tuning.pack_nt_min != 0 ? tuning.pack_nt_min
                                         : shm::nt_default_threshold();
  xport_ = &world.xport();
  xport_hooks_ = xport_->has_hooks();
  coll_hier_nodes_ = std::max<std::uint32_t>(2, tuning.coll_hier_nodes);
  live_ = world.liveness();
  peer_timeout_ms_ = world.peer_timeout_ms();
  on_death_ = world.on_peer_death();
  fenced_.assign(static_cast<std::size_t>(world.nranks()), 0);
  tombstoned_.assign(static_cast<std::size_t>(world.nranks()), 0);
  effective_leader_ = world.coll_leader();
  if (live_.valid()) live_.beat(rank_);  // Stamp 0 means "never started".
  backends_.resize(5);
  int n = world.nranks();
  peer_recv_q_.reserve(static_cast<std::size_t>(n));
  peer_free_q_.reserve(static_cast<std::size_t>(n));
  fb_out_.resize(static_cast<std::size_t>(n));
  fb_in_.resize(static_cast<std::size_t>(n));
  fb_hot_.assign(static_cast<std::size_t>(n), 0);
  for (int r = 0; r < n; ++r) {
    peer_recv_q_.emplace_back(world.arena(), world.recv_q_off(r));
    peer_free_q_.emplace_back(world.arena(), world.free_q_off(r));
    if (r != rank) poll_order_.push_back(r);
    if (world.use_fastbox() && r != rank) {
      fb_out_[static_cast<std::size_t>(r)] =
          shm::Fastbox(world.arena(), world.fastbox_off(rank, r));
      fb_in_[static_cast<std::size_t>(r)] =
          shm::Fastbox(world.arena(), world.fastbox_off(r, rank));
    }
    if (xport_hooks_ && r != rank) xport_->connect(rank, r);
  }
}

void Engine::note_net(int peer, std::size_t bytes,
                      const transport::XferCost& c, bool ctrl) {
  if (!c.internode) return;
  if (ctrl) {
    counters_.net_ctrl_msgs++;
    if (trace::on(trace::Mode::kFull))
      tracer_.emit(trace::kNetCtrl, trace::kInstant,
                   static_cast<std::uint64_t>(peer));
  } else {
    counters_.net_msgs++;
    counters_.net_bytes += bytes;
    if (trace::on(trace::Mode::kRings))
      tracer_.emit(trace::kNetLink, trace::kInstant,
                   static_cast<std::uint64_t>(peer), bytes);
  }
  counters_.net_modeled_ns += c.ns;
}

Engine::~Engine() {
  if (dma_channel_) dma_channel_->drain();
  if (kthread_channel_) kthread_channel_->drain();
}

shm::DmaEngine& Engine::dma_channel() {
  if (!dma_channel_) {
    shm::DmaEngine::Config c;
    c.use_nt = true;
    c.pin_core = -1;  // Dedicated hardware: off the application cores.
    dma_channel_ = std::make_unique<shm::DmaEngine>(c);
  }
  return *dma_channel_;
}

shm::DmaEngine& Engine::kthread_channel() {
  if (!kthread_channel_) {
    shm::DmaEngine::Config c;
    c.use_nt = false;  // A kernel thread does a regular, cache-filling copy.
    c.pin_core = world_.core_of(rank_);  // ...on the receive process core.
    kthread_channel_ = std::make_unique<shm::DmaEngine>(c);
  }
  return *kthread_channel_;
}

lmt::Backend& Engine::backend_for(lmt::LmtKind kind) {
  auto idx = static_cast<std::size_t>(kind);
  NEMO_ASSERT(idx < backends_.size());
  if (!backends_[idx]) backends_[idx] = lmt::make_backend(kind, *this);
  return *backends_[idx];
}

lmt::LmtKind Engine::resolve_kind(std::size_t bytes, int dst,
                                  bool collective) {
  (void)collective;
  lmt::LmtKind k = world_.config().lmt;
  if (k == lmt::LmtKind::kAuto)
    k = policy_.choose_kind(bytes, world_.core_of(rank_),
                            world_.core_of(dst));
  if ((k == lmt::LmtKind::kVmsplice || k == lmt::LmtKind::kVmspliceWritev) &&
      !world_.vmsplice_ok())
    k = lmt::LmtKind::kDefaultShm;
  if (k == lmt::LmtKind::kCma && !world_.cma_ok())
    k = lmt::LmtKind::kDefaultShm;
  return k;
}

// --- Cell plumbing ----------------------------------------------------------

Cell* Engine::try_get_cell() {
  std::uint64_t off = free_q_.dequeue();
  if (off == kNil) return nullptr;
  return world_.arena().at_as<Cell>(off);
}

Cell* Engine::get_cell_blocking() {
  resil::WaitGuard guard = make_guard(resil::Site::kCellAlloc, -1);
  std::uint32_t spins = 0;
  for (;;) {
    Cell* c = try_get_cell();
    if (c != nullptr) return c;
    // Our cells come back when receivers drain them; drain our own traffic
    // meanwhile so the system cannot deadlock on cell exhaustion.
    progress();
    if ((++spins & 0x3F) == 0) {
      try {
        guard.check();
      } catch (const resil::PeerDeadError& e) {
        peer_death_fence(e);
        throw;
      }
    }
    std::this_thread::yield();
  }
}

void Engine::send_cell(int dst, Cell* cell) {
  peer_recv_q_[static_cast<std::size_t>(dst)].enqueue(
      world_.arena().offset_of(cell));
  stats_.cells_sent++;
}

void Engine::return_cell(Cell* cell) {
  peer_free_q_[static_cast<std::size_t>(cell->owner)].enqueue(
      world_.arena().offset_of(cell));
}

bool Engine::try_send_ctrl(const PendingCtrl& pc) {
  Cell* c = try_get_cell();
  if (c == nullptr) return false;
  c->src = static_cast<std::uint32_t>(rank_);
  c->type = static_cast<std::uint16_t>(pc.type);
  c->flags = static_cast<std::uint16_t>(pc.context);
  c->tag = pc.tag;
  c->msg_seq = pc.seq;
  c->total_size = 0;
  c->chunk_off = 0;
  c->payload_len = 0;
  if (pc.has_wire) {
    std::memcpy(c->data(), &pc.wire, sizeof(pc.wire));
    c->payload_len = sizeof(pc.wire);
    c->total_size = pc.wire.total;
  }
  send_cell(pc.dst, c);
  return true;
}

void Engine::send_ctrl(int dst, CellType type, std::uint32_t seq,
                       const lmt::RtsWire* wire, int tag, int context) {
  PendingCtrl pc;
  pc.dst = dst;
  pc.type = type;
  pc.seq = seq;
  pc.tag = tag;
  pc.context = context;
  pc.has_wire = wire != nullptr;
  if (wire != nullptr) pc.wire = *wire;
  if (xport_hooks_) note_net(dst, 0, xport_->on_doorbell(rank_, dst), true);
  if (!pending_ctrl_.empty() || !try_send_ctrl(pc))
    pending_ctrl_.push_back(pc);
}

// --- Send path ---------------------------------------------------------------

Request Engine::start_send(ConstSegmentList segs, int dst, int tag,
                           bool collective, int context) {
  NEMO_ASSERT(dst >= 0 && dst < nranks());
  auto req = std::make_shared<RequestState>();
  req->is_send = true;
  req->peer = dst;
  std::size_t total = total_bytes(segs);
  std::uint32_t seq = next_seq_[static_cast<std::size_t>(dst)]++;

  bool eager;
  if (dst == rank_) {
    eager = true;  // Self sends always go through the (local) eager path.
  } else if (world_.config().lmt == lmt::LmtKind::kAuto) {
    eager = !policy_.use_lmt(total, collective, world_.core_of(rank_),
                             world_.core_of(dst));
  } else {
    eager = total <= world_.config().eager_threshold;
  }

  if (eager) {
    // Small messages bypass the recv queue entirely through the pair's
    // fastbox ring (falling back to cells when every slot is occupied).
    if (dst != rank_ && world_.use_fastbox() && total <= fastbox_max_) {
      std::byte packed[shm::Fastbox::kMaxSlotBytes];
      const std::byte* data = nullptr;
      if (segs.size() == 1) {
        data = segs[0].base;
      } else {
        std::size_t filled = 0;
        for (const ConstSegment& s : segs) {
          std::memcpy(packed + filled, s.base, s.len);
          filled += s.len;
        }
        data = packed;
      }
      resil::fault_point(resil::Site::kFastboxPut, rank_);
      bool put;
      {
        trace::Span sp(tracer_, trace::kFastboxPut, trace::Mode::kFull,
                       static_cast<std::uint64_t>(dst), total);
        put = fb_out_[static_cast<std::size_t>(dst)].try_put(
            static_cast<std::uint32_t>(rank_), tag, seq,
            static_cast<std::uint32_t>(context), data, total);
      }
      if (put) {
        stats_.fastbox_sent++;
        stats_.eager_msgs_sent++;
        stats_.bytes_sent += total;
        counters_.fastbox_hits++;
        counters_.record_send(total, tune::Counters::kPathFastbox);
        if (xport_hooks_)
          note_net(dst, total, xport_->on_eager(rank_, dst, total), false);
        req->complete = true;
        return req;
      }
      counters_.fastbox_fallbacks++;
      if (trace::on())
        tracer_.emit(trace::kFastboxFallback, trace::kInstant,
                     static_cast<std::uint64_t>(dst));
    }
    // Cell-path eager sends must not overtake control messages parked by
    // cell exhaustion: the receiver merges each source's streams by seq,
    // and a gap that is neither in the queue nor the fastbox is fatal.
    {
      resil::WaitGuard guard = make_guard(resil::Site::kPendingCtrl, -1);
      std::uint32_t spins = 0;
      while (!pending_ctrl_.empty()) {
        progress();
        if (!pending_ctrl_.empty()) {
          if ((++spins & 0x3F) == 0) {
            try {
              guard.check();
            } catch (const resil::PeerDeadError& e) {
              peer_death_fence(e);
              throw;
            }
          }
          std::this_thread::yield();
        }
      }
    }
    std::size_t off = 0;
    std::size_t seg_idx = 0, seg_off = 0;
    bool first = true;
    while (off < total || first) {
      Cell* c = get_cell_blocking();
      c->src = static_cast<std::uint32_t>(rank_);
      c->type = static_cast<std::uint16_t>(first ? CellType::kEagerFirst
                                                 : CellType::kEagerBody);
      c->flags = static_cast<std::uint16_t>(context);
      c->tag = tag;
      c->msg_seq = seq;
      c->total_size = total;
      c->chunk_off = off;
      // Gather into the cell payload.
      std::size_t filled = 0;
      while (filled < Cell::kPayload && off < total) {
        const ConstSegment& s = segs[seg_idx];
        std::size_t avail = s.len - seg_off;
        if (avail == 0) {
          ++seg_idx;
          seg_off = 0;
          continue;
        }
        std::size_t n = Cell::kPayload - filled;
        if (avail < n) n = avail;
        std::memcpy(c->data() + filled, s.base + seg_off, n);
        filled += n;
        seg_off += n;
        off += n;
      }
      c->payload_len = static_cast<std::uint32_t>(filled);
      send_cell(dst, c);
      first = false;
    }
    stats_.eager_msgs_sent++;
    stats_.bytes_sent += total;
    counters_.record_send(total, tune::Counters::kPathEager);
    if (xport_hooks_ && dst != rank_)
      note_net(dst, total, xport_->on_eager(rank_, dst, total), false);
    req->complete = true;  // Payload is buffered in cells.
    return req;
  }

  // Rendezvous.
  lmt::LmtKind kind = resolve_kind(total, dst, collective);
  if (trace::on())
    tracer_.emit(trace::kLmtActivate, trace::kInstant,
                 static_cast<std::uint64_t>(dst), total);
  if (xport_hooks_)
    note_net(dst, total, xport_->on_lmt(rank_, dst, total), false);
  auto ctx = std::make_unique<lmt::SendCtx>();
  ctx->peer = dst;
  ctx->tag = tag;
  ctx->seq = seq;
  ctx->segs = std::move(segs);
  ctx->total = total;
  lmt::Backend& b = backend_for(kind);
  b.send_init(*ctx);

  send_ctrl(dst, CellType::kRts, seq, &ctx->rts, tag, context);
  // Crash site: the RTS is published (it lives in shared cells, so it
  // survives this rank's death) but the rendezvous will never be fulfilled.
  resil::fault_point(resil::Site::kCmaRendezvous, rank_);
  Key key{dst, seq};
  serial_sends_[dst].push_back(key);
  sends_[key] = SendEntry{std::move(ctx), req, &b};
  stats_.rndv_sent++;
  stats_.bytes_sent += total;
  stats_.rndv_by_kind[static_cast<std::size_t>(kind)]++;
  counters_.record_send(total, static_cast<int>(kind));
  return req;
}

// --- Recv path ---------------------------------------------------------------

namespace {

/// Scatter `len` bytes from `src` into `segs` starting at message offset
/// `msg_off` (segments are walked from the beginning; O(nsegs), fine for the
/// small lists datatypes produce).
void scatter_at(std::span<const Segment> segs, std::size_t msg_off,
                const std::byte* src, std::size_t len) {
  std::size_t skip = msg_off;
  std::size_t i = 0;
  while (i < segs.size() && skip >= segs[i].len) {
    skip -= segs[i].len;
    ++i;
  }
  while (len > 0) {
    NEMO_ASSERT(i < segs.size());
    std::size_t room = segs[i].len - skip;
    std::size_t n = len < room ? len : room;
    std::memcpy(segs[i].base + skip, src, n);
    src += n;
    len -= n;
    skip = 0;
    ++i;
  }
}

}  // namespace

Request Engine::start_recv(SegmentList segs, int src, int tag, int context) {
  NEMO_ASSERT(src == kAnySource || (src >= 0 && src < nranks()));
  auto req = std::make_shared<RequestState>();
  PostedRecv pr;
  pr.src = src;
  pr.tag = tag;
  pr.context = context;
  pr.capacity = total_bytes(segs);
  pr.segs = std::move(segs);
  pr.req = req;
  req->peer = src == kAnySource ? -1 : src;

  std::unique_ptr<UnexpectedMsg> um = matcher_.post_recv(pr);
  if (um == nullptr) return req;  // Queued; progress() completes it.

  if (um->is_rndv) {
    start_lmt_recv(um->src, um->tag, um->seq, um->rts, pr);
    matcher_.recycle(std::move(um));
    return req;
  }

  // Unexpected eager message.
  NEMO_ASSERT_MSG(um->total <= pr.capacity,
                  "message truncation: recv buffer too small");
  if (um->eager_complete()) {
    scatter_at(pr.segs, 0, um->data.data(), um->total);
    req->complete = true;
    req->info = RecvInfo{um->src, um->tag, um->total};
    stats_.eager_msgs_recv++;
    stats_.bytes_recv += um->total;
  } else {
    // Still arriving: bind the user buffer; copy the prefix received so far.
    scatter_at(pr.segs, 0, um->data.data(), um->bytes_arrived);
    BoundEager be;
    be.segs = pr.segs;
    be.total = um->total;
    be.arrived = um->bytes_arrived;
    be.req = req;
    be.tag = um->tag;
    bound_eager_[{um->src, um->seq}] = std::move(be);
  }
  // Payload (or its arrived prefix) is consumed either way; continuation
  // chunks land in the bound user buffer, so the pooled buffer is free.
  matcher_.recycle(std::move(um));
  return req;
}

void Engine::start_lmt_recv(int src, int tag, std::uint32_t seq,
                            const lmt::RtsWire& rts, PostedRecv& pr) {
  NEMO_ASSERT_MSG(rts.total <= pr.capacity,
                  "message truncation: recv buffer too small");
  auto kind = static_cast<lmt::LmtKind>(rts.kind);
  auto ctx = std::make_unique<lmt::RecvCtx>();
  ctx->peer = src;
  ctx->tag = tag;
  ctx->seq = seq;
  ctx->segs = std::move(pr.segs);
  ctx->total = rts.total;
  ctx->rts = rts;

  lmt::Backend& b = backend_for(kind);
  b.recv_init(*ctx);
  if (b.needs_cts()) {
    send_ctrl(src, CellType::kCts, seq, nullptr, tag);
    ctx->cts_sent = true;
  }

  Key key{src, seq};
  if (kind == lmt::LmtKind::kKnem || kind == lmt::LmtKind::kCma) {
    // Receiver-driven backends have no per-pair data FIFO; poll unordered.
    knem_recvs_.push_back(key);
  } else {
    // Ring/pipe data is a per-pair FIFO by sender seq; keep the receive
    // order aligned with the sender's by inserting seq-sorted.
    auto& dq = serial_recvs_[src];
    auto it = dq.begin();
    while (it != dq.end() && it->second < seq) ++it;
    dq.insert(it, key);
  }
  recvs_[key] = RecvEntry{std::move(ctx), pr.req, &b};
  stats_.rndv_recv++;
  if (trace::on())
    tracer_.emit(trace::kLmtActivate, trace::kInstant,
                 static_cast<std::uint64_t>(src), rts.total);
}

// --- Progress ----------------------------------------------------------------

void Engine::deliver_eager_first(int src, int tag, int context,
                                 std::uint32_t seq, std::size_t total,
                                 const std::byte* data, std::size_t len) {
  std::unique_ptr<PostedRecv> pr = matcher_.match_incoming(src, tag, context);
  if (pr != nullptr) {
    NEMO_ASSERT_MSG(total <= pr->capacity,
                    "message truncation: recv buffer too small");
    scatter_at(pr->segs, 0, data, len);
    if (len == total) {
      pr->req->complete = true;
      pr->req->info = RecvInfo{src, tag, total};
      stats_.eager_msgs_recv++;
      stats_.bytes_recv += total;
    } else {
      BoundEager be;
      be.segs = pr->segs;
      be.total = total;
      be.arrived = len;
      be.req = pr->req;
      be.tag = tag;
      bound_eager_[{src, seq}] = std::move(be);
    }
    return;
  }
  // Unexpected: buffer it (pooled — no per-message heap allocation in
  // steady state).
  std::unique_ptr<UnexpectedMsg> um = matcher_.acquire_unexpected(total);
  um->src = src;
  um->tag = tag;
  um->context = context;
  um->seq = seq;
  um->is_rndv = false;
  um->total = total;
  std::memcpy(um->data.data(), data, len);
  um->bytes_arrived = len;
  matcher_.add_unexpected(std::move(um));
}

bool Engine::poll_fastbox(int src) {
  shm::Fastbox& fb = fb_in_[static_cast<std::size_t>(src)];
  if (!fb.valid()) return false;
  const shm::FastboxSlot* st = fb.peek();
  if (st == nullptr ||
      st->msg_seq != expected_seq_[static_cast<std::size_t>(src)])
    return false;
  expected_seq_[static_cast<std::size_t>(src)]++;
  stats_.fastbox_recv++;
  fb_hot_[static_cast<std::size_t>(src)]++;
  // Fastbox messages are always complete (len == total): deliver straight
  // from the slot, then return it to the sender.
  trace::Span sp(tracer_, trace::kFastboxPop, trace::Mode::kFull,
                 static_cast<std::uint64_t>(src), st->payload_len);
  deliver_eager_first(src, st->tag, static_cast<int>(st->context),
                      st->msg_seq, st->payload_len, st->payload(),
                      st->payload_len);
  fb.release();
  return true;
}

void Engine::poll_fastboxes() {
  if (!world_.use_fastbox()) return;
  for (int src : poll_order_) poll_fastbox(src);
}

void Engine::reorder_poll() {
  // Hot peers first: under alltoall-style load at 8+ ranks most passes find
  // only a few boxes full; scanning those first shortens the latency of the
  // common case. Stable sort keeps rank order among equally-warm peers; the
  // decay halves history so a peer that goes quiet drifts back.
  std::stable_sort(poll_order_.begin(), poll_order_.end(),
                   [&](int a, int b) {
                     return fb_hot_[static_cast<std::size_t>(a)] >
                            fb_hot_[static_cast<std::size_t>(b)];
                   });
  for (auto& h : fb_hot_) h >>= 1;
}

void Engine::sync_stream(int src, std::uint32_t seq) {
  // Cells from one source dequeue in send order, so the only message that
  // can be missing ahead of `seq` is the (single) one parked in the pair's
  // fastbox — its publish happens-before the later cell's enqueue.
  while (expected_seq_[static_cast<std::size_t>(src)] < seq) {
    bool got = poll_fastbox(src);
    NEMO_ASSERT_MSG(got, "message stream gap not resident in fastbox");
  }
  NEMO_ASSERT(expected_seq_[static_cast<std::size_t>(src)] == seq);
}

void Engine::handle_eager(Cell* cell) {
  int src = static_cast<int>(cell->src);
  auto type = static_cast<CellType>(cell->type);
  if (type == CellType::kEagerFirst) {
    deliver_eager_first(src, cell->tag, static_cast<int>(cell->flags),
                        cell->msg_seq, cell->total_size, cell->data(),
                        cell->payload_len);
    return;
  }

  // Continuation chunk: either bound to a user buffer already or still in
  // the unexpected queue.
  auto it = bound_eager_.find({src, cell->msg_seq});
  if (it != bound_eager_.end()) {
    BoundEager& be = it->second;
    scatter_at(be.segs, cell->chunk_off, cell->data(), cell->payload_len);
    be.arrived += cell->payload_len;
    if (be.arrived == be.total) {
      be.req->complete = true;
      be.req->info = RecvInfo{src, be.tag, be.total};
      stats_.eager_msgs_recv++;
      stats_.bytes_recv += be.total;
      bound_eager_.erase(it);
    }
    return;
  }
  UnexpectedMsg* um = matcher_.find_partial(src, cell->msg_seq);
  NEMO_ASSERT_MSG(um != nullptr, "eager continuation without a first chunk");
  std::memcpy(um->data.data() + cell->chunk_off, cell->data(),
              cell->payload_len);
  um->bytes_arrived += cell->payload_len;
}

void Engine::handle_rts(Cell* cell) {
  int src = static_cast<int>(cell->src);
  lmt::RtsWire rts;
  NEMO_ASSERT(cell->payload_len == sizeof(rts));
  std::memcpy(&rts, cell->data(), sizeof(rts));

  std::unique_ptr<PostedRecv> pr = matcher_.match_incoming(
      src, cell->tag, static_cast<int>(cell->flags));
  if (pr != nullptr) {
    start_lmt_recv(src, cell->tag, cell->msg_seq, rts, *pr);
    return;
  }
  std::unique_ptr<UnexpectedMsg> um = matcher_.acquire_unexpected(0);
  um->src = src;
  um->tag = cell->tag;
  um->context = static_cast<int>(cell->flags);
  um->seq = cell->msg_seq;
  um->is_rndv = true;
  um->rts = rts;
  um->total = rts.total;
  matcher_.add_unexpected(std::move(um));
}

void Engine::handle_cts(Cell* cell) {
  auto it = sends_.find({static_cast<int>(cell->src), cell->msg_seq});
  NEMO_ASSERT_MSG(it != sends_.end(), "CTS for unknown rendezvous");
  it->second.ctx->cts_seen = true;
}

void Engine::handle_fin(Cell* cell) {
  auto it = sends_.find({static_cast<int>(cell->src), cell->msg_seq});
  NEMO_ASSERT_MSG(it != sends_.end(), "FIN for unknown rendezvous");
  it->second.ctx->fin_seen = true;
}

void Engine::handle_cell(Cell* cell) {
  auto type = static_cast<CellType>(cell->type);
  // New-message cells participate in the per-source sequence stream that
  // fastbox messages share; merge back into sender order before delivery.
  if (type == CellType::kEagerFirst || type == CellType::kRts) {
    int src = static_cast<int>(cell->src);
    sync_stream(src, cell->msg_seq);
    expected_seq_[static_cast<std::size_t>(src)]++;
  }
  switch (type) {
    case CellType::kEagerFirst:
    case CellType::kEagerBody:
      handle_eager(cell);
      break;
    case CellType::kRts:
      handle_rts(cell);
      break;
    case CellType::kCts:
      handle_cts(cell);
      break;
    case CellType::kFin:
      handle_fin(cell);
      break;
    case CellType::kBarrier:
      NEMO_ASSERT_MSG(false, "barrier cells are not routed through engines");
      break;
  }
}

void Engine::complete_send(const Key& key) {
  auto it = sends_.find(key);
  NEMO_ASSERT(it != sends_.end());
  it->second.backend->send_fin(*it->second.ctx);
  it->second.req->complete = true;
  if (trace::on())
    tracer_.emit(trace::kLmtComplete, trace::kInstant,
                 static_cast<std::uint64_t>(it->second.ctx->peer),
                 it->second.ctx->total);
  sends_.erase(it);
}

void Engine::complete_recv(const Key& key) {
  auto it = recvs_.find(key);
  NEMO_ASSERT(it != recvs_.end());
  RecvEntry& e = it->second;
  if (e.backend->needs_fin())
    send_ctrl(e.ctx->peer, CellType::kFin, e.ctx->seq, nullptr, e.ctx->tag);
  e.req->complete = true;
  e.req->info = RecvInfo{e.ctx->peer, e.ctx->tag, e.ctx->total};
  stats_.bytes_recv += e.ctx->total;
  if (trace::on())
    tracer_.emit(trace::kLmtComplete, trace::kInstant,
                 static_cast<std::uint64_t>(e.ctx->peer), e.ctx->total);
  recvs_.erase(it);
}

void Engine::progress_sends() {
  for (auto& [dst, dq] : serial_sends_) {
    while (!dq.empty()) {
      Key key = dq.front();
      auto it = sends_.find(key);
      NEMO_ASSERT(it != sends_.end());
      SendEntry& e = it->second;
      lmt::SendCtx& ctx = *e.ctx;
      if (e.backend->needs_cts() && !ctx.cts_seen) break;
      if (!ctx.data_done) ctx.data_done = e.backend->send_progress(ctx);
      if (lmt::send_complete(*e.backend, ctx)) {
        complete_send(key);
        dq.pop_front();
        continue;  // Next transfer on this pair may proceed.
      }
      break;
    }
  }
}

void Engine::progress_recvs() {
  for (auto& [src, dq] : serial_recvs_) {
    while (!dq.empty()) {
      Key key = dq.front();
      auto it = recvs_.find(key);
      NEMO_ASSERT(it != recvs_.end());
      RecvEntry& e = it->second;
      if (!e.ctx->data_done) e.ctx->data_done = e.backend->recv_progress(*e.ctx);
      if (e.ctx->data_done) {
        complete_recv(key);
        dq.pop_front();
        continue;
      }
      break;
    }
  }
  for (std::size_t i = 0; i < knem_recvs_.size();) {
    Key key = knem_recvs_[i];
    auto it = recvs_.find(key);
    NEMO_ASSERT(it != recvs_.end());
    RecvEntry& e = it->second;
    if (!e.ctx->data_done) e.ctx->data_done = e.backend->recv_progress(*e.ctx);
    if (e.ctx->data_done) {
      complete_recv(key);
      knem_recvs_[i] = knem_recvs_.back();
      knem_recvs_.pop_back();
    } else {
      ++i;
    }
  }
}

void Engine::progress() {
  if (in_progress_) return;
  in_progress_ = true;
  // rings mode keeps the histogram + counter snapshots; the per-pass
  // begin/end span is full-mode only.
  const bool rings_on = trace::on(trace::Mode::kRings) && tracer_.active();
  const bool traced = rings_on && trace::on(trace::Mode::kFull);
  std::uint64_t t0 = 0;
  if (rings_on) t0 = trace::tsc_now();
  if (traced) tracer_.emit(trace::kProgress, trace::kBegin);

  while (!pending_ctrl_.empty()) {
    if (!try_send_ctrl(pending_ctrl_.front())) break;
    pending_ctrl_.pop_front();
  }

  // One pass drains every ready fastbox, a batch of queue cells, then the
  // fastboxes again (a box whose message was sequenced after queued cells
  // only becomes consumable once those cells are handled).
  poll_fastboxes();
  std::uint32_t drained = 0;
  while (drained < drain_budget_) {
    std::uint64_t off = recv_q_.dequeue();
    if (off == kNil) break;
    ++drained;
    Cell* cell = world_.arena().at_as<Cell>(off);
    handle_cell(cell);
    return_cell(cell);
  }
  // Budget fully consumed = cells were likely left enqueued; the tuner
  // reads this as "drain budget too small for this workload".
  if (drained == drain_budget_) counters_.drain_exhausted++;
  counters_.progress_passes++;
  // Heartbeat: a rank that makes progress is alive. Every 64 passes keeps
  // the clock read off the hot path while staying far inside any sane
  // NEMO_PEER_TIMEOUT_MS (spin loops run progress() every 64 spins).
  if (live_.valid() && (counters_.progress_passes & 0x3F) == 0)
    live_.beat(rank_);
  if (poll_hot_ && (counters_.progress_passes & 0x1FF) == 0) reorder_poll();
  poll_fastboxes();

  progress_sends();
  progress_recvs();
  if (xport_hooks_) xport_->progress(rank_);
  if (traced) tracer_.emit(trace::kProgress, trace::kEnd);
  if (rings_on) {
    if (progress_hist_ != nullptr) {
      std::uint64_t dt = trace::tsc_now() - t0;
      progress_hist_->record(static_cast<std::uint64_t>(
          static_cast<double>(dt) * trace::calibration().ns_per_tick));
    }
    // Counter-track samples every 512 passes (aligned with the poll reorder
    // cadence so the sampling cost hides behind the existing slow path).
    // Pass 1 also samples: short worlds still get one point per track.
    if ((counters_.progress_passes & 0x1FF) == 1) {
      tracer_.emit(trace::kSnapshot, trace::kCounter,
                   trace::kGaugeFastboxHits, counters_.fastbox_hits);
      tracer_.emit(trace::kSnapshot, trace::kCounter,
                   trace::kGaugeRingStalls, counters_.ring_stalls);
      tracer_.emit(trace::kSnapshot, trace::kCounter,
                   trace::kGaugeProgressPasses, counters_.progress_passes);
      tracer_.emit(trace::kSnapshot, trace::kCounter,
                   trace::kGaugeCollShmOps, counters_.coll_shm_ops);
      if (xport_hooks_) {
        tracer_.emit(trace::kSnapshot, trace::kCounter, trace::kGaugeNetMsgs,
                     counters_.net_msgs);
        tracer_.emit(trace::kSnapshot, trace::kCounter, trace::kGaugeNetBytes,
                     counters_.net_bytes);
        tracer_.emit(trace::kSnapshot, trace::kCounter,
                     trace::kGaugeNetModeledNs, counters_.net_modeled_ns);
      }
    }
  }
  in_progress_ = false;
}

void Engine::wait(const Request& req) {
  NEMO_ASSERT(req != nullptr);
  if (req->complete) return;
  resil::WaitGuard guard = make_guard(resil::Site::kEngineWait, req->peer);
  std::uint32_t spins = 0;
  try {
    while (!req->complete) {
      progress();
      if (!req->complete) {
        if ((++spins & 0x3F) == 0) guard.check();
        // Oversubscribed hosts (ranks > cores): let the peer run instead of
        // burning the rest of the timeslice polling an empty queue.
        std::this_thread::yield();
      }
    }
  } catch (const resil::PeerDeadError& e) {
    peer_death_fence(e);
    throw;
  }
}

bool Engine::test(const Request& req) {
  NEMO_ASSERT(req != nullptr);
  if (!req->complete) progress();
  return req->complete;
}

// --- Liveness / recovery -----------------------------------------------------

resil::WaitGuard Engine::make_guard(resil::Site site, int watch) {
  // Degrade mode hands the guard this engine's already-fenced set so
  // survivors can keep waiting on each other after recovery; abort mode
  // passes nothing, so the sticky dead flag fails every later wait fast.
  const unsigned char* fenced =
      on_death_ == resil::OnPeerDeath::kDegrade && fenced_count_ > 0
          ? fenced_.data()
          : nullptr;
  return {&live_, rank_, watch, site, peer_timeout_ms_, &counters_, fenced};
}

int Engine::lowest_alive() const {
  // Abort mode never reroutes: the configured coordinator stays put so a
  // wait on it fails fast rather than half the world electing a new one.
  if (on_death_ != resil::OnPeerDeath::kDegrade) return 0;
  for (int r = 0; r < nranks(); ++r)
    if (fenced_[static_cast<std::size_t>(r)] == 0) return r;
  return 0;
}

int Engine::effective_coll_leader() const { return effective_leader_; }

void Engine::reclaim_fenced() noexcept {
  if (!coll_.valid()) return;
  for (int r = 0; r < nranks(); ++r) {
    auto i = static_cast<std::size_t>(r);
    if (fenced_[i] == 0 || tombstoned_[i] != 0) continue;
    tombstoned_[i] = 1;
    counters_.reclaimed_slots +=
        static_cast<std::uint64_t>(coll_.reclaim_rank(r));
  }
}

void Engine::peer_death_fence(int dead_rank, resil::Site site,
                              bool from_timeout) noexcept {
  (void)from_timeout;  // The guard already recorded timeout_aborts.
  if (dead_rank < 0 || dead_rank >= nranks()) return;
  auto d = static_cast<std::size_t>(dead_rank);
  if (fenced_[d] != 0) return;  // Idempotent per dead rank.
  fenced_[d] = 1;
  fenced_count_++;
  if (live_.valid()) live_.mark_dead(dead_rank);
  counters_.peer_deaths++;
  counters_.fence_epochs++;
  if (trace::on()) {
    tracer_.emit(trace::kPeerDeath, trace::kInstant,
                 static_cast<std::uint64_t>(dead_rank),
                 static_cast<std::uint64_t>(site));
    tracer_.emit(trace::kFence, trace::kBegin,
                 static_cast<std::uint64_t>(dead_rank));
  }

  // Deliberately NOT tombstoned here: the dead rank's collective-arena
  // cells are shared, and another survivor may still be parked inside the
  // diverged epoch on a `>= seq` wait that a UINT64_MAX tombstone would
  // spuriously satisfy — its collective would "complete" with a dead
  // participant instead of throwing. Tombstoning happens in
  // Comm::fence_world(), after every survivor has raised its fence flag
  // (i.e. provably abandoned the old epoch).

  // Quiesce in-flight rendezvous with the dead rank: drop the registry
  // entries so backend progress never touches a reclaimed address space.
  // The requests stay incomplete — a wait on one throws PeerDeadError.
  auto drop_keys = [&](auto& reg) {
    for (auto it = reg.begin(); it != reg.end();) {
      if (it->first.first == dead_rank) {
        counters_.reclaimed_slots++;
        it = reg.erase(it);
      } else {
        ++it;
      }
    }
  };
  drop_keys(sends_);
  drop_keys(recvs_);
  serial_sends_.erase(dead_rank);
  serial_recvs_.erase(dead_rank);
  knem_recvs_.erase(std::remove_if(knem_recvs_.begin(), knem_recvs_.end(),
                                   [&](const Key& k) {
                                     return k.first == dead_rank;
                                   }),
                    knem_recvs_.end());
  pending_ctrl_.erase(
      std::remove_if(pending_ctrl_.begin(), pending_ctrl_.end(),
                     [&](const PendingCtrl& pc) {
                       return pc.dst == dead_rank;
                     }),
      pending_ctrl_.end());

  // Reclaim the dead rank's fastboxes: stop polling them (a half-written
  // put is invisible by protocol; a fully published one is abandoned).
  poll_order_.erase(
      std::remove(poll_order_.begin(), poll_order_.end(), dead_rank),
      poll_order_.end());

  // Shrink the leader choice to the survivor set — degrade mode only.
  // Abort mode keeps the configured schedule so the next wait involving
  // the dead leader fails fast on its sticky dead flag.
  if (on_death_ == resil::OnPeerDeath::kDegrade) {
    int lead = world_.coll_leader();
    if (lead >= 0 && lead < nranks() &&
        fenced_[static_cast<std::size_t>(lead)] != 0)
      lead = lowest_alive();
    effective_leader_ = lead;
  }

  if (trace::on()) tracer_.emit(trace::kFence, trace::kEnd);
}

// ---------------------------------------------------------------------------
// Comm
// ---------------------------------------------------------------------------

Comm::Comm(World& world, int rank) : engine_(world, rank) {}

void Comm::fence_world() {
  Engine& eng = engine_;
  resil::Liveness live = eng.world().liveness();
  if (!live.valid() || size() <= 1) return;
  int n = size();
  int self = rank();

  // Fence every flagged death locally first: a survivor may reach here for
  // a death it never waited on (another rank's verdict).
  bool any = eng.any_fenced();
  for (int r = 0; r < n; ++r) {
    if (r == self || eng.rank_fenced(r)) continue;
    if (live.is_dead(r)) {
      eng.peer_death_fence(r, resil::Site::kFenceSync, false);
      any = true;
    }
  }
  if (!any) return;  // Nobody is dead: nothing to fence.

  // Survivors may have abandoned different numbers of in-flight collective
  // rounds, so their lock-step sequence counters diverge. Agree on a floor
  // strictly above anything any survivor used: propose, arrive, then read
  // the max — every proposal is published before its arrival flag, so the
  // floor read after the last arrival covers all of them. The slack leaves
  // room for phase bits (epoch_base shifts by 3).
  std::uint64_t proposal =
      std::max({eng.coll_seq_, eng.coll_bar_seq_, eng.coll_probe_seq_}) + 8;
  live.propose_resync(proposal);
  std::uint64_t gen = live.fence_generation();
  live.set_fence_flag(self, gen + 1);

  resil::WaitGuard guard = eng.make_guard(resil::Site::kFenceSync, -1);
  std::uint32_t spins = 0;
  auto bounded_wait = [&](auto&& pred) {
    while (!pred()) {
      eng.progress();
      if ((++spins & 0x3F) == 0) guard.check();
      std::this_thread::yield();
    }
  };
  bounded_wait([&] {
    for (int r = 0; r < n; ++r) {
      if (r == self || eng.rank_fenced(r)) continue;
      if (live.fence_flag(r) < gen + 1) return false;
    }
    return true;
  });
  // Every survivor's flag is up, so none is still parked on a `>= seq`
  // wait inside the diverged epoch — only now can the dead ranks' cells be
  // pinned to their tombstone values without spuriously completing
  // someone's in-flight collective.
  eng.reclaim_fenced();
  eng.resync_coll_seqs(live.resync_floor());
  // The lowest surviving rank publishes the completed generation; everyone
  // leaves only once it lands, so no survivor can start post-fence
  // collectives while another is still proposing.
  if (self == eng.lowest_alive()) live.publish_fence_generation(gen, gen + 1);
  bounded_wait([&] { return live.fence_generation() >= gen + 1; });
}

void Comm::send(const void* buf, std::size_t bytes, int dst, int tag,
                int context) {
  ConstSegmentList segs{{static_cast<const std::byte*>(buf), bytes}};
  engine_.wait(engine_.start_send(std::move(segs), dst, tag,
                                  /*collective=*/context != 0, context));
}

void Comm::recv(void* buf, std::size_t bytes, int src, int tag,
                RecvInfo* info, int context) {
  SegmentList segs{{static_cast<std::byte*>(buf), bytes}};
  Request r = engine_.start_recv(std::move(segs), src, tag, context);
  engine_.wait(r);
  if (info != nullptr) *info = r->info;
}

Request Comm::isend(const void* buf, std::size_t bytes, int dst, int tag,
                    int context) {
  ConstSegmentList segs{{static_cast<const std::byte*>(buf), bytes}};
  return engine_.start_send(std::move(segs), dst, tag,
                            /*collective=*/context != 0, context);
}

Request Comm::irecv(void* buf, std::size_t bytes, int src, int tag,
                    int context) {
  SegmentList segs{{static_cast<std::byte*>(buf), bytes}};
  return engine_.start_recv(std::move(segs), src, tag, context);
}

Request Comm::isendv(ConstSegmentList segs, int dst, int tag) {
  return engine_.start_send(std::move(segs), dst, tag);
}

Request Comm::irecvv(SegmentList segs, int src, int tag) {
  return engine_.start_recv(std::move(segs), src, tag);
}

Request Comm::isend_strided(const void* base, const Datatype& dt,
                            std::size_t count, int dst, int tag) {
  // The merged segment list rides the engine directly: the eager path
  // gathers it into cells, the segment-capable LMT backends transfer it
  // vectorially. Either way the blocks are never packed into a private
  // contiguous staging buffer — record the op as a direct pack.
  ConstSegmentList segs = dt.map(static_cast<const std::byte*>(base), count);
  tune::Counters& c = engine_.counters();
  c.pack_direct_ops++;
  c.pack_direct_bytes += dt.size() * count;
  return engine_.start_send(std::move(segs), dst, tag);
}

Request Comm::irecv_strided(void* base, const Datatype& dt, std::size_t count,
                            int src, int tag) {
  SegmentList segs = dt.map(static_cast<std::byte*>(base), count);
  engine_.counters().unpack_ops++;
  return engine_.start_recv(std::move(segs), src, tag);
}

void Comm::send_typed(const void* base, const Datatype& dt, std::size_t count,
                      int dst, int tag) {
  ConstSegmentList segs =
      dt.map(static_cast<const std::byte*>(base), count);
  engine_.wait(engine_.start_send(std::move(segs), dst, tag));
}

void Comm::recv_typed(void* base, const Datatype& dt, std::size_t count,
                      int src, int tag) {
  SegmentList segs = dt.map(static_cast<std::byte*>(base), count);
  engine_.wait(engine_.start_recv(std::move(segs), src, tag));
}

void Comm::waitall(std::span<Request> reqs) {
  for (auto& r : reqs) engine_.wait(r);
}

}  // namespace nemo::core
