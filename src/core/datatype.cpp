#include "core/datatype.hpp"

#include <cstring>

#include "common/common.hpp"

namespace nemo::core {

Datatype::Datatype(std::size_t blocks, std::size_t blocklen,
                   std::size_t stride)
    : blocks_(blocks), blocklen_(blocklen), stride_(stride) {
  NEMO_ASSERT(blocks >= 1);
  NEMO_ASSERT(stride >= blocklen);
  size_ = blocks_ * blocklen_;
  extent_ = (blocks_ - 1) * stride_ + blocklen_;
}

Datatype Datatype::contiguous(std::size_t bytes) {
  NEMO_ASSERT(bytes > 0);
  return Datatype(1, bytes, bytes);
}

Datatype Datatype::vector(std::size_t count, std::size_t blocklen,
                          std::size_t stride) {
  NEMO_ASSERT(count >= 1 && blocklen >= 1);
  return Datatype(count, blocklen, stride);
}

namespace {

template <typename Seg, typename Byte>
std::vector<Seg> map_impl(Byte* base, std::size_t count, std::size_t blocks,
                          std::size_t blocklen, std::size_t stride,
                          std::size_t extent) {
  std::vector<Seg> out;
  bool contig = (blocks == 1 || blocklen == stride);
  if (contig) {
    // One run per element unless elements themselves abut.
    std::size_t elem_bytes = blocks * blocklen;
    if (elem_bytes == extent || count == 1) {
      // Packed array of elements -> single segment... but only when
      // consecutive elements touch (extent == element bytes).
      if (elem_bytes == extent) {
        out.push_back(Seg{base, elem_bytes * count});
        return out;
      }
      out.push_back(Seg{base, elem_bytes});
      return out;
    }
    for (std::size_t e = 0; e < count; ++e)
      out.push_back(Seg{base + e * extent, elem_bytes});
    return out;
  }
  out.reserve(count * blocks);
  for (std::size_t e = 0; e < count; ++e) {
    Byte* eb = base + e * extent;
    for (std::size_t b = 0; b < blocks; ++b) {
      Byte* p = eb + b * stride;
      // Merge with the previous segment when adjacent.
      if (!out.empty() && out.back().base + out.back().len == p)
        out.back().len += blocklen;
      else
        out.push_back(Seg{p, blocklen});
    }
  }
  return out;
}

}  // namespace

SegmentList Datatype::map(std::byte* base, std::size_t count) const {
  return map_impl<Segment>(base, count, blocks_, blocklen_, stride_, extent_);
}

ConstSegmentList Datatype::map(const std::byte* base,
                               std::size_t count) const {
  return map_impl<ConstSegment>(base, count, blocks_, blocklen_, stride_,
                                extent_);
}

void Datatype::pack(const std::byte* base, std::size_t count,
                    std::byte* out) const {
  for (std::size_t e = 0; e < count; ++e) {
    const std::byte* eb = base + e * extent_;
    for (std::size_t b = 0; b < blocks_; ++b) {
      std::memcpy(out, eb + b * stride_, blocklen_);
      out += blocklen_;
    }
  }
}

void Datatype::unpack(const std::byte* in, std::size_t count,
                      std::byte* base) const {
  for (std::size_t e = 0; e < count; ++e) {
    std::byte* eb = base + e * extent_;
    for (std::size_t b = 0; b < blocks_; ++b) {
      std::memcpy(eb + b * stride_, in, blocklen_);
      in += blocklen_;
    }
  }
}

}  // namespace nemo::core
