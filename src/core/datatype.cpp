#include "core/datatype.hpp"

#include <cstring>

#include "common/common.hpp"
#include "shm/nt_copy.hpp"

namespace nemo::core {

Datatype::Datatype(std::vector<Block> blocks, std::size_t extent)
    : blocks_(std::move(blocks)), extent_(extent) {
  NEMO_ASSERT(!blocks_.empty());
  for (const Block& b : blocks_) size_ += b.len;
  NEMO_ASSERT(extent_ >= blocks_.back().off + blocks_.back().len);
}

Datatype Datatype::contiguous(std::size_t bytes) {
  NEMO_ASSERT(bytes > 0);
  return Datatype({Block{0, bytes}}, bytes);
}

Datatype Datatype::vector(std::size_t count, std::size_t blocklen,
                          std::size_t stride) {
  NEMO_ASSERT(count >= 1 && blocklen >= 1);
  NEMO_ASSERT(stride >= blocklen);
  std::vector<std::size_t> lens(count, blocklen), offs(count);
  for (std::size_t i = 0; i < count; ++i) offs[i] = i * stride;
  return indexed(lens, offs);
}

Datatype Datatype::indexed(const std::vector<std::size_t>& blocklens,
                           const std::vector<std::size_t>& displs) {
  NEMO_ASSERT(!blocklens.empty() && blocklens.size() == displs.size());
  std::vector<Block> blocks;
  blocks.reserve(blocklens.size());
  for (std::size_t i = 0; i < blocklens.size(); ++i) {
    NEMO_ASSERT(blocklens[i] >= 1);
    // Ascending, non-overlapping layout (the map/pack order is the memory
    // order, so an overlapping or reordered list has no single meaning).
    if (!blocks.empty()) {
      std::size_t prev_end = blocks.back().off + blocks.back().len;
      NEMO_ASSERT(displs[i] >= prev_end);
      if (displs[i] == prev_end) {  // Abutting blocks merge.
        blocks.back().len += blocklens[i];
        continue;
      }
    }
    blocks.push_back(Block{displs[i], blocklens[i]});
  }
  std::size_t extent = blocks.back().off + blocks.back().len;
  return Datatype(std::move(blocks), extent);
}

namespace {

template <typename Seg, typename Byte>
std::vector<Seg> map_impl(Byte* base, std::size_t count,
                          const std::vector<Datatype::Block>& blocks,
                          std::size_t extent) {
  std::vector<Seg> out;
  out.reserve(blocks.size() == 1 ? 1 : count * blocks.size());
  for (std::size_t e = 0; e < count; ++e) {
    Byte* eb = base + e * extent;
    for (const Datatype::Block& b : blocks) {
      Byte* p = eb + b.off;
      // Merge with the previous segment when adjacent (this is what turns
      // a packed element array into a single run).
      if (!out.empty() && out.back().base + out.back().len == p)
        out.back().len += b.len;
      else
        out.push_back(Seg{p, b.len});
    }
  }
  return out;
}

}  // namespace

SegmentList Datatype::map(std::byte* base, std::size_t count) const {
  return map_impl<Segment>(base, count, blocks_, extent_);
}

ConstSegmentList Datatype::map(const std::byte* base,
                               std::size_t count) const {
  return map_impl<ConstSegment>(base, count, blocks_, extent_);
}

void Datatype::pack(const std::byte* base, std::size_t count, std::byte* out,
                    bool nt) const {
  if (is_contiguous()) {
    shm::copy_for(nt, out, base, size_ * count);
    return;
  }
  for (std::size_t e = 0; e < count; ++e) {
    const std::byte* eb = base + e * extent_;
    for (const Block& b : blocks_) {
      shm::copy_for(nt, out, eb + b.off, b.len);
      out += b.len;
    }
  }
}

void Datatype::unpack(const std::byte* in, std::size_t count,
                      std::byte* base, bool nt) const {
  if (is_contiguous()) {
    shm::copy_for(nt, base, in, size_ * count);
    return;
  }
  for (std::size_t e = 0; e < count; ++e) {
    std::byte* eb = base + e * extent_;
    for (const Block& b : blocks_) {
      shm::copy_for(nt, eb + b.off, in, b.len);
      in += b.len;
    }
  }
}

}  // namespace nemo::core
