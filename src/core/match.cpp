#include "core/match.hpp"

namespace nemo::core {

std::unique_ptr<UnexpectedMsg> MatchEngine::post_recv(PostedRecv& pr) {
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (matches(pr.src, pr.tag, pr.context, (*it)->src, (*it)->tag,
                (*it)->context)) {
      std::unique_ptr<UnexpectedMsg> um = std::move(*it);
      unexpected_.erase(it);
      return um;
    }
  }
  posted_.push_back(std::make_unique<PostedRecv>(std::move(pr)));
  return nullptr;
}

std::unique_ptr<PostedRecv> MatchEngine::match_incoming(int src, int tag,
                                                        int context) {
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (matches((*it)->src, (*it)->tag, (*it)->context, src, tag, context)) {
      std::unique_ptr<PostedRecv> pr = std::move(*it);
      posted_.erase(it);
      return pr;
    }
  }
  return nullptr;
}

void MatchEngine::add_unexpected(std::unique_ptr<UnexpectedMsg> um) {
  unexpected_.push_back(std::move(um));
}

std::unique_ptr<UnexpectedMsg> MatchEngine::acquire_unexpected(
    std::size_t payload_bytes) {
  std::unique_ptr<UnexpectedMsg> um;
  if (!pool_.empty()) {
    um = std::move(pool_.back());
    pool_.pop_back();
    bool fits = um->data.capacity() >= payload_bytes;
    if (counters_ != nullptr)
      (fits ? counters_->um_pool_hits : counters_->um_pool_misses)++;
    // Reset the node by hand so the buffer's capacity survives.
    um->src = -1;
    um->tag = -1;
    um->context = 0;
    um->seq = 0;
    um->is_rndv = false;
    um->bytes_arrived = 0;
    um->total = 0;
    um->rts = lmt::RtsWire{};
  } else {
    if (counters_ != nullptr) counters_->um_pool_misses++;
    um = std::make_unique<UnexpectedMsg>();
  }
  um->data.resize(payload_bytes);
  return um;
}

void MatchEngine::recycle(std::unique_ptr<UnexpectedMsg> um) {
  if (um == nullptr || pool_.size() >= kPoolCap) return;
  um->data.clear();  // Keeps capacity: the next acquire reuses it.
  pool_.push_back(std::move(um));
}

UnexpectedMsg* MatchEngine::find_partial(int src, std::uint32_t seq) {
  for (auto& um : unexpected_) {
    if (!um->is_rndv && um->src == src && um->seq == seq &&
        !um->eager_complete())
      return um.get();
  }
  return nullptr;
}

}  // namespace nemo::core
