#include "core/match.hpp"

namespace nemo::core {

std::unique_ptr<UnexpectedMsg> MatchEngine::post_recv(PostedRecv& pr) {
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (matches(pr.src, pr.tag, pr.context, (*it)->src, (*it)->tag,
                (*it)->context)) {
      std::unique_ptr<UnexpectedMsg> um = std::move(*it);
      unexpected_.erase(it);
      return um;
    }
  }
  posted_.push_back(std::make_unique<PostedRecv>(std::move(pr)));
  return nullptr;
}

std::unique_ptr<PostedRecv> MatchEngine::match_incoming(int src, int tag,
                                                        int context) {
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (matches((*it)->src, (*it)->tag, (*it)->context, src, tag, context)) {
      std::unique_ptr<PostedRecv> pr = std::move(*it);
      posted_.erase(it);
      return pr;
    }
  }
  return nullptr;
}

void MatchEngine::add_unexpected(std::unique_ptr<UnexpectedMsg> um) {
  unexpected_.push_back(std::move(um));
}

UnexpectedMsg* MatchEngine::find_partial(int src, std::uint32_t seq) {
  for (auto& um : unexpected_) {
    if (!um->is_rndv && um->src == src && um->seq == seq &&
        !um->eager_complete())
      return um.get();
  }
  return nullptr;
}

}  // namespace nemo::core
