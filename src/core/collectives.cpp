// Collective operations. Two implementation families per operation:
//
//  - The pt2pt algorithms (classical shared-memory-friendly ones:
//    dissemination barrier, binomial bcast, linear reduce, ring allgather,
//    pairwise alltoall(v)) — the fallback below the tuned crossover and the
//    correctness oracle the tests cross-check against.
//
//  - The shared-memory collective arena fast path (src/coll/): every
//    operand is written into (or published from) shared memory ONCE and
//    every reader pulls it directly, instead of re-copying payloads through
//    the per-pair copy rings at each tree hop. A 256 KiB bcast over 8 ranks
//    costs ~n slot copies instead of the binomial tree's 2·log n
//    full-payload ring copies; alltoall halves its copy volume whenever the
//    source matrix is arena-resident (readers pull straight from it).
//
// Selection mirrors lmt::Policy: NEMO_COLL=shm|p2p forces a family, auto
// compares the op's symmetric size measure against the tuned
// coll_activation crossover. Every rank computes the same decision from
// world-level state only, so the families can never mix within one
// operation.
//
// Deadlock note: every spin on an arena word keeps Engine::progress()
// running — a rank parked in a collective must still serve rendezvous
// traffic for peers that have not yet entered it.
//
// Internal pt2pt tags live in a reserved negative space, namespaced by a
// per-Comm collective sequence number so back-to-back collectives cannot
// cross-match. The same sequence number feeds the arena epoch tags.
#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

#include "core/coll_internal.hpp"
#include "core/comm.hpp"
#include "shm/nt_copy.hpp"

namespace nemo::core {

namespace {

using coll_detail::coll_tag;
using coll_detail::epoch_base;
using coll_detail::fold_chunk;
using coll_detail::spin_until;
using coll_detail::spin_until_quiet;

std::uint64_t next_coll_seq(Engine& eng) { return eng.bump_coll_seq(); }

/// Staged-bcast sub-buffer geometry: the slot splits into up to kBcastSubBufs
/// cacheline-multiple chunks so readers pipeline behind the writer.
struct SubGeom {
  std::size_t sub;     ///< Chunk bytes.
  std::uint64_t nsub;  ///< Pipeline depth (chunks resident at once).
};

SubGeom sub_geometry(std::size_t slot_bytes) {
  std::size_t sub = std::max<std::size_t>(
      slot_bytes / coll::WorldColl::kBcastSubBufs, kCacheLine);
  sub -= sub % kCacheLine;
  std::uint64_t nsub = std::max<std::uint64_t>(1, slot_bytes / sub);
  nsub = std::min<std::uint64_t>(nsub, coll::WorldColl::kBcastSubBufs);
  return {sub, nsub};
}

/// Writer w's per-destination stride index for dest d (self excluded).
std::size_t dest_index(int w, int d) { return d < w ? d : d - 1; }

std::uint64_t div_ceil(std::uint64_t a, std::uint64_t b) {
  return b == 0 ? 0 : (a + b - 1) / b;
}

/// Would a staged bcast of `bytes` through this slot stay within the
/// 24-bit epoch-tagged ack chunk budget? Only breachable by pathological
/// geometry (a >1 GiB message through a 64 B slot), but the answer must be
/// a p2p fallback, not the ack_value assert. World-symmetric (the direct
/// path needs no chunks, but directness is writer-local, so the
/// conservative staged bound decides for everyone).
bool ack_budget_ok(std::size_t slot_bytes, std::size_t bytes) {
  return div_ceil(bytes, sub_geometry(slot_bytes).sub) < (1ull << 24);
}

/// Scoped collective observation: one kCollOp span in the rank's ring plus
/// one sample in the op's latency histogram. Free when tracing is off.
class CollScope {
 public:
  CollScope(Engine& eng, trace::CollOp op, std::size_t bytes)
      : eng_(trace::on() ? &eng : nullptr), op_(op) {
    if (eng_ == nullptr) return;
    t0_ = trace::tsc_now();
    eng_->tracer().emit(trace::kCollOp, trace::kBegin, op, bytes);
  }
  ~CollScope() {
    if (eng_ == nullptr) return;
    eng_->tracer().emit(trace::kCollOp, trace::kEnd);
    std::uint64_t dt = trace::tsc_now() - t0_;
    trace::registry()
        .hist(std::string("coll.") + trace::coll_op_name(op_) + "_ns")
        .record(static_cast<std::uint64_t>(
            static_cast<double>(dt) * trace::calibration().ns_per_tick));
  }
  CollScope(const CollScope&) = delete;
  CollScope& operator=(const CollScope&) = delete;

 private:
  Engine* eng_;
  trace::CollOp op_;
  std::uint64_t t0_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// Path selection
// ---------------------------------------------------------------------------

bool Comm::use_shm_coll(std::size_t op_bytes, std::size_t slot_need) {
  Engine& eng = engine_;
  World& w = eng.world();
  tune::Counters& c = eng.counters();
  if (!eng.coll_view().valid()) {
    c.coll_p2p_ops++;
    return false;
  }
  coll::Mode mode = w.coll_mode();
  std::size_t cap = slot_need <= eng.coll_view().slot_bytes() ? slot_need : 0;
  bool shm = coll::use_shm(mode, op_bytes, w.tuning().coll_activation, size(),
                           cap);
  if (shm) {
    c.coll_shm_ops++;
  } else {
    c.coll_p2p_ops++;
    if (mode == coll::Mode::kShm) c.coll_fallbacks++;
  }
  return shm;
}

// ---------------------------------------------------------------------------
// Arena barrier (shm): flat below the tuned barrier_tree_ranks, k-ary tree
// at/above it. Both schedules share the same cells and the same release
// word, so the choice is pure scheduling — but it must be world-symmetric
// (every rank reads the same tuning table), or ranks would wait on arrival
// flags nobody publishes.
// ---------------------------------------------------------------------------

void Comm::flat_barrier() {
  Engine& eng = engine_;
  coll::WorldColl& cw = eng.coll_view();
  int n = size(), r = rank();
  std::uint64_t seq = eng.next_coll_barrier_seq();
  // The lowest surviving rank coordinates (rank 0 until it dies); fenced
  // ranks' arrival cells are tombstoned to always-arrived, so skipping them
  // here is belt-and-braces that also avoids touching reclaimed lines.
  int coord = eng.lowest_alive();
  resil::fault_point(resil::Site::kBarrierArrive, r);
  cw.barrier_arrive(r, seq);
  if (r == coord) {
    for (int i = 0; i < n; ++i) {
      if (i == r || eng.rank_fenced(i)) continue;
      spin_until(eng, resil::Site::kBarrierRelease, i,
                 [&] { return cw.barrier_arrived(i, seq); });
    }
    cw.barrier_release(seq);
  } else {
    spin_until(eng, resil::Site::kBarrierRelease, coord,
               [&] { return cw.barrier_released(seq); });
  }
}

void Comm::tree_barrier() {
  Engine& eng = engine_;
  coll::WorldColl& cw = eng.coll_view();
  int n = size(), r = rank();
  long k = static_cast<long>(eng.barrier_tree_k());
  std::uint64_t seq = eng.next_coll_barrier_seq();
  // Gather up the k-ary tree: a parent's flag asserts its whole subtree
  // arrived, so rank 0 polls k lines instead of n-1.
  long first_child = k * r + 1;
  for (long c = first_child; c < first_child + k && c < n; ++c) {
    int child = static_cast<int>(c);
    spin_until(eng, resil::Site::kBarrierRelease, child,
               [&] { return cw.barrier_arrived(child, seq); });
  }
  if (r == 0) {
    cw.barrier_release(seq);
  } else {
    resil::fault_point(resil::Site::kBarrierArrive, r);
    cw.barrier_arrive(r, seq);
    spin_until(eng, resil::Site::kBarrierRelease, 0,
               [&] { return cw.barrier_released(seq); });
  }
}

void Comm::shm_barrier() {
  Engine& eng = engine_;
  trace::Span sp(eng.tracer(), trace::kCollBarrier, trace::Mode::kRings);
  // Degraded worlds always run flat: the k-ary schedule assumes rank 0 is
  // the releaser and every interior node forwards, neither of which holds
  // once a rank is fenced. Flat with a survivor coordinator does.
  if (!eng.any_fenced() &&
      static_cast<std::uint32_t>(size()) >= eng.barrier_tree_ranks()) {
    eng.counters().coll_barrier_tree++;
    tree_barrier();
  } else {
    eng.counters().coll_barrier_flat++;
    flat_barrier();
  }
}

void Comm::barrier_p2p() {
  Engine& eng = engine_;
  std::uint64_t cs = next_coll_seq(eng);
  int n = size(), r = rank();
  char token = 1;
  for (int k = 1, phase = 0; k < n; k <<= 1, ++phase) {
    int to = (r + k) % n;
    int from = (r - k + n) % n;
    Request s = isend(&token, 1, to, coll_tag(cs, phase), 1);
    char in = 0;
    Request rr = irecv(&in, 1, from, coll_tag(cs, phase), 1);
    wait(s);
    wait(rr);
  }
}

void Comm::barrier() {
  Engine& eng = engine_;
  CollScope obs(eng, trace::kOpBarrier, 0);
  if (size() > 1 && eng.coll_view().valid() &&
      eng.world().coll_mode() != coll::Mode::kP2p) {
    eng.counters().coll_shm_ops++;
    shm_barrier();
    return;
  }
  eng.counters().coll_p2p_ops++;
  barrier_p2p();
}

// ---------------------------------------------------------------------------
// Bcast
// ---------------------------------------------------------------------------

void Comm::bcast_p2p(void* buf, std::size_t bytes, int root) {
  Engine& eng = engine_;
  std::uint64_t cs = next_coll_seq(eng);
  int n = size(), r = rank();
  // Binomial tree rooted at `root`; relative ranks make the tree uniform.
  int vr = (r - root + n) % n;
  int tag = coll_tag(cs, 0);
  // Receive from parent.
  if (vr != 0) {
    int mask = 1;
    while ((vr & mask) == 0) mask <<= 1;
    int parent = ((vr & ~mask) + root) % n;
    recv(buf, bytes, parent, tag, nullptr, 1);
  }
  // Forward to children.
  int mask = 1;
  while (mask < n && (vr & (mask - 1)) == 0) {
    if ((vr & mask) == 0) {
      int child_vr = vr | mask;
      if (child_vr < n) send(buf, bytes, (child_vr + root) % n, tag, 1);
    }
    mask <<= 1;
  }
}

void Comm::bcast_shm(void* buf, std::size_t bytes, int root,
                     std::uint64_t epoch) {
  Engine& eng = engine_;
  coll::WorldColl& cw = eng.coll_view();
  shm::Arena& arena = cw.arena();
  int n = size(), r = rank();
  eng.counters().coll_shm_bytes += bytes;
  std::size_t nt_min =
      eng.world().tuning()
          .for_placement(PairPlacement::kDifferentSockets)
          .nt_min;
  SubGeom g = sub_geometry(cw.slot_bytes());

  if (r == root) {
    if (bytes > 0 && arena.contains(buf, bytes)) {
      // Direct: publish the source offset, every reader pulls straight from
      // the user buffer — zero staging copies.
      cw.begin_epoch(r, epoch, arena.offset_of(buf), bytes);
      for (int i = 0; i < n; ++i)
        if (i != r && !eng.rank_fenced(i))
          spin_until(eng, resil::Site::kCollAck, i,
                     [&] { return cw.acked(i, epoch, 1); });
      return;
    }
    // Staged: NT-stream once into the slot, chunked over the sub-buffers
    // with a doorbell so readers pipeline behind the writer; reader acks
    // gate sub-buffer reuse for messages larger than the slot.
    std::uint64_t nchunks = div_ceil(bytes, g.sub);
    cw.begin_epoch(r, epoch, shm::kNil, bytes);
    const std::byte* src = static_cast<const std::byte*>(buf);
    bool nt = bytes >= nt_min;
    for (std::uint64_t i = 0; i < nchunks; ++i) {
      if (i >= g.nsub) {
        std::uint64_t need = i - g.nsub + 1;
        for (int k = 0; k < n; ++k)
          if (k != r && !eng.rank_fenced(k))
            spin_until(eng, resil::Site::kCollAck, k,
                       [&] { return cw.acked(k, epoch, need); });
      }
      std::size_t off = static_cast<std::size_t>(i) * g.sub;
      std::size_t len = std::min(g.sub, bytes - off);
      shm::copy_for(nt, cw.payload(r) + (i % g.nsub) * g.sub, src + off, len);
      cw.publish_chunks(r, i + 1);
    }
    std::uint64_t fin = std::max<std::uint64_t>(nchunks, 1);
    for (int k = 0; k < n; ++k)
      if (k != r && !eng.rank_fenced(k))
        spin_until(eng, resil::Site::kCollAck, k,
                   [&] { return cw.acked(k, epoch, fin); });
    return;
  }

  // Reader.
  std::byte* dst = static_cast<std::byte*>(buf);
  spin_until(eng, resil::Site::kCollDoorbell, root,
             [&] { return cw.ready(root, epoch, 0); });
  coll::SlotHeader* h = cw.header(root);
  std::uint64_t src_off = h->src_off;
  std::size_t total = h->bytes;
  if (src_off != shm::kNil) {
    shm::copy_for(total >= nt_min, dst, arena.at(src_off), total);
    cw.set_ack(r, epoch, 1);
    return;
  }
  std::uint64_t nchunks = div_ceil(total, g.sub);
  for (std::uint64_t i = 0; i < nchunks; ++i) {
    spin_until(eng, resil::Site::kCollDoorbell, root,
               [&] { return cw.ready(root, epoch, i + 1); });
    std::size_t off = static_cast<std::size_t>(i) * g.sub;
    std::size_t len = std::min(g.sub, total - off);
    shm::copy_for(total >= nt_min, dst + off,
                  cw.payload(root) + (i % g.nsub) * g.sub, len);
    cw.set_ack(r, epoch, i + 1);
  }
  if (nchunks == 0) cw.set_ack(r, epoch, 1);
}

void Comm::bcast(void* buf, std::size_t bytes, int root) {
  if (size() == 1) return;
  Engine& eng = engine_;
  CollScope obs(eng, trace::kOpBcast, bytes);
  if (use_hier_coll(bytes)) {
    bcast_hier(buf, bytes, root, next_coll_seq(eng));
    return;
  }
  std::size_t need =
      eng.coll_view().valid() &&
              ack_budget_ok(eng.coll_view().slot_bytes(), bytes)
          ? kCacheLine
          : SIZE_MAX;  // Over budget: fail the slot check -> p2p.
  if (use_shm_coll(bytes, need)) {
    std::uint64_t cs = next_coll_seq(eng);
    bcast_shm(buf, bytes, root, epoch_base(cs));
    return;
  }
  bcast_p2p(buf, bytes, root);
}

// ---------------------------------------------------------------------------
// Gather / scatter (pt2pt only; roots already touch every block once)
// ---------------------------------------------------------------------------

void Comm::gather(const void* sendbuf, std::size_t per_rank, void* recvbuf,
                  int root) {
  std::uint64_t cs = next_coll_seq(engine_);
  int n = size(), r = rank();
  int tag = coll_tag(cs, 0);
  if (r == root) {
    auto* out = static_cast<std::byte*>(recvbuf);
    std::memcpy(out + static_cast<std::size_t>(r) * per_rank, sendbuf,
                per_rank);
    std::vector<Request> reqs;
    reqs.reserve(static_cast<std::size_t>(n - 1));
    for (int src = 0; src < n; ++src) {
      if (src == r) continue;
      reqs.push_back(irecv(out + static_cast<std::size_t>(src) * per_rank,
                           per_rank, src, tag, 1));
    }
    waitall(reqs);
  } else {
    send(sendbuf, per_rank, root, tag, 1);
  }
}

void Comm::scatter(const void* sendbuf, std::size_t per_rank, void* recvbuf,
                   int root) {
  std::uint64_t cs = next_coll_seq(engine_);
  int n = size(), r = rank();
  int tag = coll_tag(cs, 0);
  if (r == root) {
    const auto* in = static_cast<const std::byte*>(sendbuf);
    std::vector<Request> reqs;
    for (int dst = 0; dst < n; ++dst) {
      if (dst == r) continue;
      reqs.push_back(isend(in + static_cast<std::size_t>(dst) * per_rank,
                           per_rank, dst, tag, 1));
    }
    std::memcpy(recvbuf, in + static_cast<std::size_t>(r) * per_rank,
                per_rank);
    waitall(reqs);
  } else {
    recv(recvbuf, per_rank, root, tag, nullptr, 1);
  }
}

// ---------------------------------------------------------------------------
// Allgather
// ---------------------------------------------------------------------------

void Comm::allgather_p2p(const void* sendbuf, std::size_t per_rank,
                         void* recvbuf) {
  Engine& eng = engine_;
  std::uint64_t cs = next_coll_seq(eng);
  int n = size(), r = rank();
  auto* out = static_cast<std::byte*>(recvbuf);
  std::memcpy(out + static_cast<std::size_t>(r) * per_rank, sendbuf,
              per_rank);
  if (n == 1) return;
  int right = (r + 1) % n, left = (r - 1 + n) % n;
  int tag = coll_tag(cs, 0);
  // Ring: at step s, pass along the block that originated at (r - s).
  for (int s = 0; s < n - 1; ++s) {
    int send_block = (r - s + n) % n;
    int recv_block = (r - s - 1 + n) % n;
    Request sq =
        isend(out + static_cast<std::size_t>(send_block) * per_rank,
              per_rank, right, tag, 1);
    Request rq =
        irecv(out + static_cast<std::size_t>(recv_block) * per_rank,
              per_rank, left, tag, 1);
    wait(sq);
    wait(rq);
  }
}

void Comm::allgather_shm(const void* sendbuf, std::size_t per_rank,
                         void* recvbuf, std::uint64_t epoch) {
  Engine& eng = engine_;
  coll::WorldColl& cw = eng.coll_view();
  shm::Arena& arena = cw.arena();
  int n = size(), r = rank();
  std::size_t nt_min = eng.world()
                           .tuning()
                           .for_placement(PairPlacement::kDifferentSockets)
                           .nt_min;
  eng.counters().coll_shm_bytes += per_rank * static_cast<std::size_t>(n - 1);
  const auto* in = static_cast<const std::byte*>(sendbuf);
  auto* out = static_cast<std::byte*>(recvbuf);
  std::size_t slot = cw.slot_bytes();

  // Publish: direct offset when the block is arena-resident (readers pull
  // straight from the user buffer), else the number of staged rounds.
  bool direct = per_rank > 0 && arena.contains(in, per_rank);
  std::uint64_t my_rounds = direct ? 0 : div_ceil(per_rank, slot);
  cw.begin_epoch(r, epoch,
                 direct ? arena.offset_of(in) : shm::kNil, my_rounds);
  std::memcpy(out + static_cast<std::size_t>(r) * per_rank, in, per_rank);

  // Everyone reads every header before round 0 so all ranks agree on the
  // global round count (staged and direct writers may coexist).
  // Fenced writers never publish (their headers are tombstoned); survivors
  // skip them and leave the dead rank's recvbuf block untouched.
  std::uint64_t rounds = std::max<std::uint64_t>(my_rounds, 1);
  for (int w = 0; w < n; ++w) {
    if (w == r || eng.rank_fenced(w)) continue;
    spin_until(eng, resil::Site::kCollDoorbell, w,
               [&] { return cw.ready(w, epoch, 0); });
    rounds = std::max(rounds, cw.header(w)->bytes);
  }

  for (std::uint64_t t = 0; t < rounds; ++t) {
    if (t < my_rounds) {
      std::size_t off = static_cast<std::size_t>(t) * slot;
      std::size_t len = std::min(slot, per_rank - off);
      std::memcpy(cw.payload(r), in + off, len);
      cw.publish_chunks(r, t + 1);
    }
    for (int w = 0; w < n; ++w) {
      if (w == r || eng.rank_fenced(w)) continue;
      coll::SlotHeader* h = cw.header(w);
      std::byte* dst = out + static_cast<std::size_t>(w) * per_rank;
      if (h->src_off != shm::kNil) {
        // Whole direct-read blocks can dwarf the LLC; stream past it like
        // bcast does (staged chunks below stay cached — they are bounded
        // by the slot and consumed immediately).
        if (t == 0)
          shm::copy_for(per_rank >= nt_min, dst, arena.at(h->src_off),
                        per_rank);
        continue;
      }
      if (t >= h->bytes) continue;  // This writer already finished.
      spin_until(eng, resil::Site::kCollDoorbell, w,
                 [&] { return cw.ready(w, epoch, t + 1); });
      std::size_t off = static_cast<std::size_t>(t) * slot;
      std::size_t len = std::min(slot, per_rank - off);
      std::memcpy(dst + off, cw.payload(w), len);
    }
    // Reuse gate: no writer may overwrite its slot (or return, freeing its
    // direct-read buffer) before every reader finished the round.
    shm_barrier();
  }
}

void Comm::allgather(const void* sendbuf, std::size_t per_rank,
                     void* recvbuf) {
  if (size() == 1) {
    std::memcpy(recvbuf, sendbuf, per_rank);
    return;
  }
  Engine& eng = engine_;
  CollScope obs(eng, trace::kOpAllgather, per_rank);
  if (use_shm_coll(per_rank, kCacheLine)) {
    std::uint64_t cs = next_coll_seq(eng);
    allgather_shm(sendbuf, per_rank, recvbuf, epoch_base(cs));
    return;
  }
  allgather_p2p(sendbuf, per_rank, recvbuf);
}

// ---------------------------------------------------------------------------
// Alltoall(v)
// ---------------------------------------------------------------------------

void Comm::alltoall_p2p(const void* sendbuf, std::size_t per_rank,
                        void* recvbuf) {
  Engine& eng = engine_;
  std::uint64_t cs = next_coll_seq(eng);
  int n = size(), r = rank();
  const auto* in = static_cast<const std::byte*>(sendbuf);
  auto* out = static_cast<std::byte*>(recvbuf);
  std::memcpy(out + static_cast<std::size_t>(r) * per_rank,
              in + static_cast<std::size_t>(r) * per_rank, per_rank);
  int tag = coll_tag(cs, 0);
  // Pairwise exchange: at step s talk to (r^s) when n is a power of two,
  // else to (r+s, r-s). Marked collective so the policy can use its lower
  // activation threshold (§4.4).
  bool pow2 = (n & (n - 1)) == 0;
  for (int s = 1; s < n; ++s) {
    int to = pow2 ? (r ^ s) : (r + s) % n;
    int from = pow2 ? (r ^ s) : (r - s + n) % n;
    ConstSegmentList ssegs{
        {in + static_cast<std::size_t>(to) * per_rank, per_rank}};
    SegmentList rsegs{
        {out + static_cast<std::size_t>(from) * per_rank, per_rank}};
    Request sq = engine_.start_send(std::move(ssegs), to, tag,
                                    /*collective=*/true, /*context=*/1);
    Request rq = engine_.start_recv(std::move(rsegs), from, tag, 1);
    wait(sq);
    wait(rq);
  }
}

void Comm::alltoall_shm(const void* sendbuf, std::size_t per_rank,
                        void* recvbuf, std::uint64_t epoch) {
  // The uniform exchange is exactly alltoallv with constant counts and
  // dense displacements; one shared implementation keeps the concurrent
  // round schedule in a single place. Scratch is thread-local (one vector
  // per rank thread, reused across calls) so the fast path stays free of
  // steady-state heap traffic.
  auto nsz = static_cast<std::size_t>(size());
  static thread_local std::vector<std::size_t> meta;
  meta.resize(2 * nsz);
  std::size_t* counts = meta.data();
  std::size_t* displs = meta.data() + nsz;
  for (std::size_t d = 0; d < nsz; ++d) {
    counts[d] = per_rank;
    displs[d] = d * per_rank;
  }
  alltoallv_shm(sendbuf, counts, displs, recvbuf, counts, displs, epoch);
}

void Comm::alltoall(const void* sendbuf, std::size_t per_rank,
                    void* recvbuf) {
  if (size() == 1) {
    std::memcpy(recvbuf, sendbuf, per_rank);
    return;
  }
  Engine& eng = engine_;
  CollScope obs(eng, trace::kOpAlltoall, per_rank);
  // The hierarchical path may decline (leader staging over budget); every
  // rank computes the same verdict, so the shared fall-through below stays
  // world-symmetric (the hier check consumed one seq on every rank).
  if (use_hier_coll(per_rank) &&
      alltoall_hier(sendbuf, per_rank, recvbuf, next_coll_seq(eng)))
    return;
  if (use_shm_coll(per_rank,
                   coll::alltoall_chunk_capacity(
                       eng.coll_view().valid() ? eng.coll_view().slot_bytes()
                                               : 0,
                       size()))) {
    std::uint64_t cs = next_coll_seq(eng);
    alltoall_shm(sendbuf, per_rank, recvbuf, epoch_base(cs));
    return;
  }
  alltoall_p2p(sendbuf, per_rank, recvbuf);
}

void Comm::alltoallv_p2p(const void* sendbuf, const std::size_t* scounts,
                         const std::size_t* sdispls, void* recvbuf,
                         const std::size_t* rcounts,
                         const std::size_t* rdispls) {
  Engine& eng = engine_;
  std::uint64_t cs = next_coll_seq(eng);
  int n = size(), r = rank();
  const auto* in = static_cast<const std::byte*>(sendbuf);
  auto* out = static_cast<std::byte*>(recvbuf);
  std::memcpy(out + rdispls[r], in + sdispls[r], scounts[r]);
  int tag = coll_tag(cs, 0);
  bool pow2 = (n & (n - 1)) == 0;
  for (int s = 1; s < n; ++s) {
    int to = pow2 ? (r ^ s) : (r + s) % n;
    int from = pow2 ? (r ^ s) : (r - s + n) % n;
    Request sq, rq;
    if (scounts[to] > 0) {
      ConstSegmentList ssegs{{in + sdispls[to], scounts[to]}};
      sq = engine_.start_send(std::move(ssegs), to, tag, /*collective=*/true,
                              /*context=*/1);
    }
    if (rcounts[from] > 0) {
      SegmentList rsegs{{out + rdispls[from], rcounts[from]}};
      rq = engine_.start_recv(std::move(rsegs), from, tag, 1);
    }
    if (sq) wait(sq);
    if (rq) wait(rq);
  }
}

void Comm::alltoallv_shm(const void* sendbuf, const std::size_t* scounts,
                         const std::size_t* sdispls, void* recvbuf,
                         const std::size_t* rcounts,
                         const std::size_t* rdispls, std::uint64_t epoch) {
  Engine& eng = engine_;
  coll::WorldColl& cw = eng.coll_view();
  shm::Arena& arena = cw.arena();
  int n = size(), r = rank();
  std::size_t nt_min = eng.world()
                           .tuning()
                           .for_placement(PairPlacement::kDifferentSockets)
                           .nt_min;
  const auto* in = static_cast<const std::byte*>(sendbuf);
  auto* out = static_cast<std::byte*>(recvbuf);
  std::size_t cap = coll::alltoall_chunk_capacity(cw.slot_bytes(), n);

  // Direct when the whole send span is arena-resident; the per-dest table
  // then carries absolute (offset, len) entries. Staged writers chunk each
  // destination block through their per-dest stride; header.bytes carries
  // the writer's round count so mixed modes agree on the schedule.
  std::size_t span = 0, send_max = 0, my_bytes = 0;
  for (int d = 0; d < n; ++d) {
    span = std::max(span, sdispls[d] + scounts[d]);
    if (d != r) {
      send_max = std::max(send_max, scounts[d]);
      my_bytes += scounts[d];
    }
  }
  eng.counters().coll_shm_bytes += my_bytes;
  bool direct = span > 0 && arena.contains(in, span);
  std::uint64_t my_rounds = direct ? 0 : div_ceil(send_max, cap);
  std::uint64_t* tab = cw.table(r);
  if (direct) {
    std::uint64_t base = arena.offset_of(in);
    for (int d = 0; d < n; ++d) {
      tab[2 * d] = base + sdispls[d];
      tab[2 * d + 1] = scounts[d];
    }
  }
  cw.begin_epoch(r, epoch, direct ? arena.offset_of(in) : shm::kNil,
                 my_rounds);
  std::memcpy(out + rdispls[r], in + sdispls[r], scounts[r]);

  std::uint64_t rounds = std::max<std::uint64_t>(my_rounds, 1);
  for (int w = 0; w < n; ++w) {
    if (w == r || eng.rank_fenced(w)) continue;
    spin_until(eng, resil::Site::kCollDoorbell, w,
               [&] { return cw.ready(w, epoch, 0); });
    rounds = std::max(rounds, cw.header(w)->bytes);
  }

  for (std::uint64_t t = 0; t < rounds; ++t) {
    if (t < my_rounds) {
      std::size_t off = static_cast<std::size_t>(t) * cap;
      for (int d = 0; d < n; ++d) {
        if (d == r || off >= scounts[d]) continue;
        std::size_t len = std::min(cap, scounts[d] - off);
        std::memcpy(cw.payload(r) + dest_index(r, d) * cap,
                    in + sdispls[d] + off, len);
      }
      cw.publish_chunks(r, t + 1);
    }
    for (int w = 0; w < n; ++w) {
      if (w == r || eng.rank_fenced(w)) continue;
      coll::SlotHeader* h = cw.header(w);
      std::byte* dst = out + rdispls[w];
      if (h->src_off != shm::kNil) {
        if (t == 0) {
          const std::uint64_t* wt = cw.table(w);
          std::uint64_t len = wt[2 * r + 1];
          NEMO_ASSERT(len == rcounts[w]);
          // Whole direct-read blocks stream past the cache above nt_min,
          // like bcast; staged chunks stay cached (slot-bounded).
          if (len > 0)
            shm::copy_for(len >= nt_min, dst, arena.at(wt[2 * r]), len);
        }
        continue;
      }
      if (t >= h->bytes) continue;
      spin_until(eng, resil::Site::kCollDoorbell, w,
                 [&] { return cw.ready(w, epoch, t + 1); });
      std::size_t off = static_cast<std::size_t>(t) * cap;
      if (off >= rcounts[w]) continue;
      std::size_t len = std::min(cap, rcounts[w] - off);
      std::memcpy(dst + off, cw.payload(w) + dest_index(w, r) * cap, len);
    }
    shm_barrier();
  }
}

std::size_t Comm::alltoallv_min_row_bytes(const std::size_t* scounts) {
  Engine& eng = engine_;
  coll::WorldColl& cw = eng.coll_view();
  int n = size(), r = rank();
  std::uint64_t my = 0;
  for (int d = 0; d < n; ++d)
    if (d != r) my += scounts[d];
  // One u64 per rank through the parity-double-buffered probe cells (see
  // coll_arena.hpp for why the exchange needs no completion handshake).
  std::uint64_t seq = eng.next_coll_probe_seq();
  cw.probe_publish(r, seq, my);
  std::uint64_t mn = my;
  for (int w = 0; w < n; ++w) {
    // Probe cells are exact-match parity buffers, so a dead rank's cell can
    // never be tombstoned to "always ready" — survivors must skip it.
    if (w == r || eng.rank_fenced(w)) continue;
    spin_until_quiet(eng, resil::Site::kCollProbe, w,
                     [&] { return cw.probe_ready(w, seq); });
    mn = std::min(mn, cw.probe_value(w, seq));
  }
  return mn;
}

void Comm::alltoallv(const void* sendbuf, const std::size_t* scounts,
                     const std::size_t* sdispls, void* recvbuf,
                     const std::size_t* rcounts, const std::size_t* rdispls) {
  if (size() == 1) {
    std::memcpy(static_cast<std::byte*>(recvbuf) + rdispls[0],
                static_cast<const std::byte*>(sendbuf) + sdispls[0],
                scounts[0]);
    return;
  }
  Engine& eng = engine_;
  std::size_t my_row = 0;
  for (int d = 0; d < size(); ++d)
    if (d != rank()) my_row += scounts[d];
  CollScope obs(eng, trace::kOpAlltoallv, my_row);
  // Per-rank counts are asymmetric, so no local size test is
  // rank-consistent. Auto mode exchanges each rank's total row bytes
  // through the arena's count-probe cells and gates on the MINIMUM across
  // ranks: a tiny-row participant pays the arena's full per-op
  // synchronisation for almost no payload, so it anchors the crossover
  // (worth ~0.6 us/op at 2 ranks, the gating PR 4 gave up). Forced modes
  // and arenaless worlds skip the probe — the conditions below are all
  // world-symmetric, so every rank agrees on whether it runs.
  std::size_t cap = coll::alltoall_chunk_capacity(
      eng.coll_view().valid() ? eng.coll_view().slot_bytes() : 0, size());
  std::size_t proxy = SIZE_MAX;
  if (eng.coll_view().valid() && cap > 0 &&
      eng.world().coll_mode() == coll::Mode::kAuto)
    proxy = alltoallv_min_row_bytes(scounts);
  if (use_shm_coll(proxy, cap)) {
    std::uint64_t cs = next_coll_seq(eng);
    alltoallv_shm(sendbuf, scounts, sdispls, recvbuf, rcounts, rdispls,
                  epoch_base(cs));
    return;
  }
  alltoallv_p2p(sendbuf, scounts, sdispls, recvbuf, rcounts, rdispls);
}

// ---------------------------------------------------------------------------
// Strided collectives: each rank contributes `count` elements of a derived
// datatype. The shm family packs blocks straight into arena slots (NT
// streaming stores above the tuned pack threshold) and unpacks readers-side
// straight into the strided receive buffer; the p2p family hands the merged
// segment lists to the engine, which gathers into cells / transfers them via
// the segment-capable LMT backends. Neither family materialises an
// intermediate contiguous staging buffer — the pack-path telemetry records
// every op as `direct`, and a test asserts `staged` stays zero.
// ---------------------------------------------------------------------------

void Comm::pack_into(const void* base, const Datatype& dt, std::size_t count,
                     std::byte* dst, bool direct) {
  std::size_t bytes = dt.size() * count;
  bool nt = bytes >= engine_.pack_nt_min();
  dt.pack(static_cast<const std::byte*>(base), count, dst, nt);
  tune::Counters& c = engine_.counters();
  if (direct) {
    c.pack_direct_ops++;
    c.pack_direct_bytes += bytes;
  } else {
    c.pack_staged_ops++;
    c.pack_staged_bytes += bytes;
  }
  if (nt) c.pack_nt_ops++;
}

void Comm::unpack_from(const std::byte* src, const Datatype& dt,
                       std::size_t count, void* base) {
  // Cached stores: the unpacked blocks land in the user's receive buffer,
  // which the caller is about to touch.
  dt.unpack(src, count, static_cast<std::byte*>(base));
  engine_.counters().unpack_ops++;
}

namespace {

/// Self-exchange: re-layout `count` elements from sdt at `in` to rdt at
/// `out` through the two segment maps (no staging buffer).
void strided_self_copy(const std::byte* in, const Datatype& sdt,
                       std::byte* out, const Datatype& rdt,
                       std::size_t count) {
  SegmentList dst = rdt.map(out, count);
  ConstSegmentList src = sdt.map(in, count);
  gather_scatter_copy(dst, src);
}

}  // namespace

void Comm::alltoall_strided(const void* sendbuf, const Datatype& sdt,
                            std::size_t count, void* recvbuf,
                            const Datatype& rdt) {
  NEMO_ASSERT(sdt.size() == rdt.size());
  const auto* in = static_cast<const std::byte*>(sendbuf);
  auto* out = static_cast<std::byte*>(recvbuf);
  if (size() == 1) {
    strided_self_copy(in, sdt, out, rdt, count);
    return;
  }
  Engine& eng = engine_;
  std::size_t packed = sdt.size() * count;
  std::size_t cap = coll::alltoall_chunk_capacity(
      eng.coll_view().valid() ? eng.coll_view().slot_bytes() : 0, size());
  // Single deposit round: the packed per-destination block must fit one
  // per-dest chunk, else the need is unmeetable and use_shm_coll records
  // the p2p fallback. World-symmetric (dt/count are the same everywhere).
  std::size_t need = packed > 0 && packed <= cap ? cap : SIZE_MAX;
  if (use_shm_coll(packed, need)) {
    std::uint64_t cs = next_coll_seq(eng);
    alltoall_strided_shm(in, sdt, count, out, rdt, epoch_base(cs));
    return;
  }
  alltoall_strided_p2p(in, sdt, count, out, rdt);
}

void Comm::alltoall_strided_shm(const void* sendbuf, const Datatype& sdt,
                                std::size_t count, void* recvbuf,
                                const Datatype& rdt, std::uint64_t epoch) {
  Engine& eng = engine_;
  coll::WorldColl& cw = eng.coll_view();
  int n = size(), r = rank();
  const auto* in = static_cast<const std::byte*>(sendbuf);
  auto* out = static_cast<std::byte*>(recvbuf);
  std::size_t cap = coll::alltoall_chunk_capacity(cw.slot_bytes(), n);
  std::size_t packed = sdt.size() * count;
  std::size_t sext = count * sdt.extent(), rext = count * rdt.extent();
  NEMO_ASSERT(packed <= cap);
  eng.counters().coll_shm_bytes +=
      packed * static_cast<std::size_t>(n - 1);

  // The per-dest slot chunk IS the pack buffer: each destination's strided
  // block streams from the user buffer straight into shared memory, so the
  // packed form exists exactly once.
  cw.begin_epoch(r, epoch, shm::kNil, 1);
  for (int d = 0; d < n; ++d) {
    if (d == r) continue;
    pack_into(in + static_cast<std::size_t>(d) * sext, sdt, count,
              cw.payload(r) + dest_index(r, d) * cap, /*direct=*/true);
  }
  cw.publish_chunks(r, 1);
  strided_self_copy(in + static_cast<std::size_t>(r) * sext, sdt,
                    out + static_cast<std::size_t>(r) * rext, rdt, count);

  for (int w = 0; w < n; ++w) {
    if (w == r || eng.rank_fenced(w)) continue;
    spin_until(eng, resil::Site::kCollDoorbell, w,
               [&] { return cw.ready(w, epoch, 1); });
    unpack_from(cw.payload(w) + dest_index(w, r) * cap, rdt, count,
                out + static_cast<std::size_t>(w) * rext);
  }
  // Reuse gate: no writer may overwrite its slot before every reader
  // unpacked this round.
  shm_barrier();
}

void Comm::alltoall_strided_p2p(const void* sendbuf, const Datatype& sdt,
                                std::size_t count, void* recvbuf,
                                const Datatype& rdt) {
  Engine& eng = engine_;
  std::uint64_t cs = next_coll_seq(eng);
  int n = size(), r = rank();
  const auto* in = static_cast<const std::byte*>(sendbuf);
  auto* out = static_cast<std::byte*>(recvbuf);
  std::size_t sext = count * sdt.extent(), rext = count * rdt.extent();
  std::size_t packed = sdt.size() * count;
  strided_self_copy(in + static_cast<std::size_t>(r) * sext, sdt,
                    out + static_cast<std::size_t>(r) * rext, rdt, count);
  int tag = coll_tag(cs, 0);
  bool pow2 = (n & (n - 1)) == 0;
  for (int s = 1; s < n; ++s) {
    int to = pow2 ? (r ^ s) : (r + s) % n;
    int from = pow2 ? (r ^ s) : (r - s + n) % n;
    // The merged segment lists go straight to the engine — cell gather on
    // the eager path, vectorial transfer on the segment-capable backends.
    ConstSegmentList ssegs =
        sdt.map(in + static_cast<std::size_t>(to) * sext, count);
    SegmentList rsegs =
        rdt.map(out + static_cast<std::size_t>(from) * rext, count);
    Request sq = engine_.start_send(std::move(ssegs), to, tag,
                                    /*collective=*/true, /*context=*/1);
    Request rq = engine_.start_recv(std::move(rsegs), from, tag, 1);
    tune::Counters& c = eng.counters();
    c.pack_direct_ops++;
    c.pack_direct_bytes += packed;
    c.unpack_ops++;
    wait(sq);
    wait(rq);
  }
}

void Comm::allgather_strided(const void* sendbuf, const Datatype& sdt,
                             std::size_t count, void* recvbuf,
                             const Datatype& rdt) {
  NEMO_ASSERT(sdt.size() == rdt.size());
  const auto* in = static_cast<const std::byte*>(sendbuf);
  auto* out = static_cast<std::byte*>(recvbuf);
  if (size() == 1) {
    strided_self_copy(in, sdt, out, rdt, count);
    return;
  }
  Engine& eng = engine_;
  std::size_t packed = sdt.size() * count;
  std::size_t slot =
      eng.coll_view().valid() ? eng.coll_view().slot_bytes() : 0;
  // Single deposit round: the whole packed contribution must fit one slot.
  std::size_t need = packed > 0 && packed <= slot ? kCacheLine : SIZE_MAX;
  if (use_shm_coll(packed, need)) {
    std::uint64_t cs = next_coll_seq(eng);
    allgather_strided_shm(in, sdt, count, out, rdt, epoch_base(cs));
    return;
  }
  allgather_strided_p2p(in, sdt, count, out, rdt);
}

void Comm::allgather_strided_shm(const void* sendbuf, const Datatype& sdt,
                                 std::size_t count, void* recvbuf,
                                 const Datatype& rdt, std::uint64_t epoch) {
  Engine& eng = engine_;
  coll::WorldColl& cw = eng.coll_view();
  int n = size(), r = rank();
  const auto* in = static_cast<const std::byte*>(sendbuf);
  auto* out = static_cast<std::byte*>(recvbuf);
  std::size_t packed = sdt.size() * count;
  std::size_t rext = count * rdt.extent();
  NEMO_ASSERT(packed <= cw.slot_bytes());
  eng.counters().coll_shm_bytes +=
      packed * static_cast<std::size_t>(n - 1);

  cw.begin_epoch(r, epoch, shm::kNil, 1);
  pack_into(in, sdt, count, cw.payload(r), /*direct=*/true);
  cw.publish_chunks(r, 1);
  strided_self_copy(in, sdt, out + static_cast<std::size_t>(r) * rext, rdt,
                    count);

  for (int w = 0; w < n; ++w) {
    if (w == r || eng.rank_fenced(w)) continue;
    spin_until(eng, resil::Site::kCollDoorbell, w,
               [&] { return cw.ready(w, epoch, 1); });
    unpack_from(cw.payload(w), rdt, count,
                out + static_cast<std::size_t>(w) * rext);
  }
  shm_barrier();
}

void Comm::allgather_strided_p2p(const void* sendbuf, const Datatype& sdt,
                                 std::size_t count, void* recvbuf,
                                 const Datatype& rdt) {
  Engine& eng = engine_;
  std::uint64_t cs = next_coll_seq(eng);
  int n = size(), r = rank();
  const auto* in = static_cast<const std::byte*>(sendbuf);
  auto* out = static_cast<std::byte*>(recvbuf);
  std::size_t rext = count * rdt.extent();
  std::size_t packed = sdt.size() * count;
  strided_self_copy(in, sdt, out + static_cast<std::size_t>(r) * rext, rdt,
                    count);
  int tag = coll_tag(cs, 0);
  // Linear exchange of the local block (a ring would have to re-pack
  // forwarded blocks — exactly the staging copy this path exists to avoid).
  for (int s = 1; s < n; ++s) {
    int to = (r + s) % n, from = (r - s + n) % n;
    ConstSegmentList ssegs = sdt.map(in, count);
    SegmentList rsegs =
        rdt.map(out + static_cast<std::size_t>(from) * rext, count);
    Request sq = engine_.start_send(std::move(ssegs), to, tag,
                                    /*collective=*/true, /*context=*/1);
    Request rq = engine_.start_recv(std::move(rsegs), from, tag, 1);
    tune::Counters& c = eng.counters();
    c.pack_direct_ops++;
    c.pack_direct_bytes += packed;
    c.unpack_ops++;
    wait(sq);
    wait(rq);
  }
}

// --- Reductions ---------------------------------------------------------------

template <typename T>
void Comm::reduce_impl(const T* in, T* out, std::size_t n, ReduceOp op,
                       int root, int tag) {
  int p = size(), r = rank();
  if (r == root) {
    std::memcpy(out, in, n * sizeof(T));
    // Per-Comm receive scratch sized to the high-water mark: this used to
    // be a fresh std::vector<T>(n) on every reduction pass.
    if (reduce_scratch_.size() < n * sizeof(T))
      reduce_scratch_.resize(n * sizeof(T));
    T* tmp = reinterpret_cast<T*>(reduce_scratch_.data());
    for (int src = 0; src < p; ++src) {
      if (src == root) continue;
      recv(tmp, n * sizeof(T), src, tag, nullptr, 1);
      fold_chunk(engine_, op, out, tmp, n);
    }
  } else {
    send(in, n * sizeof(T), root, tag, 1);
  }
}

template <typename T>
void Comm::allreduce_impl(const T* in, T* out, std::size_t n, ReduceOp op,
                          int tag) {
  reduce_impl<T>(in, out, n, op, 0, tag);
  // Distribute via the p2p tree directly: the dispatcher already chose the
  // p2p family for this operation (re-dispatching through bcast() would
  // also double-count the op in the coll telemetry).
  bcast_p2p(out, n * sizeof(T), 0);
}

/// Leader-based pipelined shm reduction (arena v2). Every non-leader rank
/// deposits its operand (direct offset when arena-resident, else sub-buffer
/// staged chunks, exactly the bcast geometry) and the leader folds each
/// sub-chunk AS SOON AS every writer's doorbell for it fires — PR 4 instead
/// serialized whole-slot rounds on the leader's doorbell. Folded chunks are
/// published through the leader's own slot, where the result readers (the
/// root for reduce, everyone for allreduce) pipeline behind the fold; for
/// allreduce this fuses what used to be a separate full bcast phase into
/// the fold itself. The leader is the NUMA-chosen World::coll_leader (the
/// node owning the plurality of operand buffers), decoupled from the user
/// root.
///
/// Fold order: the p2p oracle seeds with the ROOT's operand and then folds
/// ranks 0..p-1 in ascending order, skipping the root. The leader
/// reproduces exactly that element-wise order per chunk — direct operands
/// are sliced too, even though they are fully available from chunk 0 — so
/// the result matches the oracle bit-for-bit regardless of deposit modes,
/// leader choice, or chunk size, and the cross-check tests can compare
/// exactly.
///
/// Deadlock shape to respect: in allreduce every rank is writer AND reader.
/// The leader's result sub-buffers recycle on reader acks, and writer
/// deposits recycle on the leader's fold doorbell — if writers finished all
/// deposits before consuming any result chunk, both gates could starve
/// each other. Non-leader ranks therefore run deposit and result
/// consumption as one interleaved loop, advancing whichever side is ready.
template <typename T>
void Comm::reduce_shm(const T* in, T* out, std::size_t n, ReduceOp op,
                      int root, bool all, std::uint64_t epoch) {
  Engine& eng = engine_;
  coll::WorldColl& cw = eng.coll_view();
  shm::Arena& arena = cw.arena();
  int p = size(), r = rank();
  // NUMA-chosen leader, remapped to the lowest survivor when the configured
  // leader has been fenced (world-symmetric after fence_world()).
  int leader = eng.effective_coll_leader();
  NEMO_ASSERT(leader >= 0 && leader < p);
  std::size_t bytes = n * sizeof(T);
  eng.counters().coll_shm_bytes += bytes;
  SubGeom g = sub_geometry(cw.slot_bytes());
  std::size_t chunk_elems = g.sub / sizeof(T);
  NEMO_ASSERT(chunk_elems > 0);
  // Every operand spans the same element count, so the chunk schedule is
  // one world-symmetric value for every rank and both deposit modes.
  std::uint64_t nchunks = div_ceil(n, chunk_elems);
  std::uint64_t rounds = std::max<std::uint64_t>(1, nchunks);
  bool reads_result = all || r == root;

  if (r != leader) {
    bool direct = bytes > 0 && arena.contains(in, bytes);
    std::uint64_t my_chunks = direct ? 0 : nchunks;
    cw.begin_epoch(r, epoch, direct ? arena.offset_of(in) : shm::kNil,
                   my_chunks);
    std::uint64_t dep = 0, got = 0;
    std::uint32_t spins = 0;
    bool stalled = false;
    // Both sides of the interleaved loop block on the leader, so the guard
    // watches it; a dead leader makes the whole op unfinishable.
    resil::WaitGuard guard =
        eng.make_guard(resil::Site::kCollDoorbell, leader);
    try {
      while (dep < my_chunks || (reads_result && got < rounds)) {
        bool advanced = false;
        // Deposit side. Sub-buffer reuse gate: the leader's doorbell at
        // dep-nsub+1 proves it folded chunk dep-nsub out of every slot.
        if (dep < my_chunks &&
            (dep < g.nsub || cw.ready(leader, epoch, dep - g.nsub + 1))) {
          std::size_t first = static_cast<std::size_t>(dep) * chunk_elems;
          std::size_t cnt = std::min(chunk_elems, n - first);
          trace::Span dsp(eng.tracer(), trace::kCollDeposit,
                          trace::Mode::kRings, dep, cnt * sizeof(T));
          resil::fault_point(resil::Site::kCollDeposit, r);
          std::memcpy(cw.payload(r) + (dep % g.nsub) * g.sub, in + first,
                      cnt * sizeof(T));
          cw.publish_chunks(r, ++dep);
          advanced = true;
        }
        // Result side: consume folded chunks as the leader publishes them.
        if (reads_result && got < rounds &&
            cw.ready(leader, epoch, got + 1)) {
          std::size_t first = static_cast<std::size_t>(got) * chunk_elems;
          std::size_t cnt = first < n ? std::min(chunk_elems, n - first) : 0;
          trace::Span rsp(eng.tracer(), trace::kCollRelease,
                          trace::Mode::kRings, got, cnt * sizeof(T));
          if (cnt > 0)
            std::memcpy(out + first,
                        cw.payload(leader) + (got % g.nsub) * g.sub,
                        cnt * sizeof(T));
          cw.set_ack(r, epoch, ++got);
          advanced = true;
        }
        if (!advanced) {
          if (!stalled) {
            eng.counters().coll_epoch_stalls++;
            if (trace::on())
              eng.tracer().emit(trace::kEpochStall, trace::kInstant,
                                static_cast<std::uint64_t>(leader));
            stalled = true;
          }
          if ((++spins & 0x3F) == 0) {
            eng.progress();
            guard.check();
            std::this_thread::yield();
          }
        }
      }
    } catch (const resil::PeerDeadError& e) {
      eng.peer_death_fence(e);
      throw;
    }
    if (!reads_result) {
      // Pure writer: a direct operand is read chunk by chunk, so the
      // buffer stays live until the fold's LAST doorbell; ack so the
      // leader can return (and its slot be reused by the next collective).
      spin_until(eng, resil::Site::kCollDoorbell, leader,
                 [&] { return cw.ready(leader, epoch, rounds); });
      cw.set_ack(r, epoch, rounds);
    }
    return;
  }

  // Leader. Snapshot every writer's direct-read offset during the gather: a
  // writer that deposited nothing (direct mode) still exits only after the
  // final doorbell + ack, but its header may be reopened for the NEXT
  // collective the moment it does — never re-read it mid-fold.
  std::vector<std::uint64_t> src_offs(static_cast<std::size_t>(p), shm::kNil);
  for (int w = 0; w < p; ++w) {
    if (w == r || eng.rank_fenced(w)) continue;
    spin_until(eng, resil::Site::kCollGather, w,
               [&] { return cw.ready(w, epoch, 0); });
    src_offs[static_cast<std::size_t>(w)] = cw.header(w)->src_off;
  }
  bool stage_result = all || r != root;  // Someone reads from our slot.
  bool want_result = all || r == root;   // Our own `out` is significant.
  cw.begin_epoch(r, epoch, shm::kNil, 0);
  for (std::uint64_t t = 0; t < rounds; ++t) {
    std::size_t first = static_cast<std::size_t>(t) * chunk_elems;
    std::size_t cnt = first < n ? std::min(chunk_elems, n - first) : 0;
    if (cnt > 0) {
      trace::Span fsp(eng.tracer(), trace::kCollFold, trace::Mode::kRings, t,
                      cnt * sizeof(T));
      T* dst;
      if (stage_result) {
        // Result sub-buffer reuse gate: every reader acked the chunk that
        // previously occupied this sub-buffer.
        if (t >= g.nsub) {
          std::uint64_t need = t - g.nsub + 1;
          for (int k = 0; k < p; ++k)
            if (k != r && (all || k == root) && !eng.rank_fenced(k))
              spin_until(eng, resil::Site::kCollAck, k,
                         [&] { return cw.acked(k, epoch, need); });
        }
        dst = reinterpret_cast<T*>(cw.payload(r) + (t % g.nsub) * g.sub);
      } else {
        dst = out + first;
      }
      // Seed with the root's slice, then fold 0..p-1 ascending skipping
      // the root: the exact element-wise order of the p2p oracle,
      // independent of who leads. Fenced ranks contribute nothing; a
      // fenced root's seed falls back to the lowest surviving rank (the
      // oracle over the survivor set).
      auto slice_of = [&](int w) -> const T* {
        if (w == r) return in + first;
        if (src_offs[static_cast<std::size_t>(w)] != shm::kNil)
          return reinterpret_cast<const T*>(
                     arena.at(src_offs[static_cast<std::size_t>(w)])) +
                 first;
        spin_until(eng, resil::Site::kCollDoorbell, w,
                   [&] { return cw.ready(w, epoch, t + 1); });
        return reinterpret_cast<const T*>(cw.payload(w) +
                                          (t % g.nsub) * g.sub);
      };
      int seed = eng.rank_fenced(root) ? eng.lowest_alive() : root;
      resil::fault_point(resil::Site::kCollFold, r);
      std::memcpy(dst, slice_of(seed), cnt * sizeof(T));
      for (int w = 0; w < p; ++w) {
        if (w == seed || eng.rank_fenced(w)) continue;
        fold_chunk(eng, op, dst, slice_of(w), cnt);
      }
      if (stage_result && want_result)
        std::memcpy(out + first, dst, cnt * sizeof(T));
    }
    cw.publish_chunks(r, t + 1);  // Chunk t folded (and published).
  }
  // Final handshake: readers consumed the last result chunk, pure writers
  // saw the final doorbell — every direct operand and our own slot are now
  // dead for this epoch.
  for (int w = 0; w < p; ++w)
    if (w != r && !eng.rank_fenced(w))
      spin_until(eng, resil::Site::kCollAck, w,
                 [&] { return cw.acked(w, epoch, rounds); });
}

template <typename T>
void Comm::reduce_dispatch(const T* in, T* out, std::size_t n, ReduceOp op,
                           int root, bool all) {
  if (size() == 1) {
    std::memcpy(out, in, n * sizeof(T));
    return;
  }
  Engine& eng = engine_;
  CollScope obs(eng, all ? trace::kOpAllreduce : trace::kOpReduce,
                n * sizeof(T));
  // The pipelined fold tags reader acks per sub-chunk (and pure writers ack
  // the final chunk count), so the staged-bcast ack chunk budget gates the
  // shm path for reduce exactly as it does for bcast.
  std::size_t need =
      eng.coll_view().valid() &&
              ack_budget_ok(eng.coll_view().slot_bytes(), n * sizeof(T))
          ? kCacheLine
          : SIZE_MAX;
  std::uint64_t cs = next_coll_seq(eng);
  // Hierarchical two-level schedule: auto mode, enough synthetic nodes, and
  // (for reduce) root 0 — the chain fold reproduces the flat ascending
  // order only when the fold seeds at rank 0. `root` is a symmetric
  // argument, so the gate stays world-symmetric.
  if ((all || root == 0) && use_hier_coll(n * sizeof(T))) {
    reduce_hier<T>(in, out, n, op, root, all, cs);
    return;
  }
  if (use_shm_coll(n * sizeof(T), need)) {
    reduce_shm<T>(in, out, n, op, root, all, epoch_base(cs));
    return;
  }
  if (all)
    allreduce_impl<T>(in, out, n, op, coll_tag(cs, 1));
  else
    reduce_impl<T>(in, out, n, op, root, coll_tag(cs, 1));
}

void Comm::reduce_f64(const double* in, double* out, std::size_t n,
                      ReduceOp op, int root) {
  reduce_dispatch<double>(in, out, n, op, root, /*all=*/false);
}

void Comm::allreduce_f64(const double* in, double* out, std::size_t n,
                         ReduceOp op) {
  reduce_dispatch<double>(in, out, n, op, 0, /*all=*/true);
}

void Comm::reduce_f32(const float* in, float* out, std::size_t n,
                      ReduceOp op, int root) {
  reduce_dispatch<float>(in, out, n, op, root, /*all=*/false);
}

void Comm::allreduce_f32(const float* in, float* out, std::size_t n,
                         ReduceOp op) {
  reduce_dispatch<float>(in, out, n, op, 0, /*all=*/true);
}

void Comm::reduce_i64(const std::int64_t* in, std::int64_t* out,
                      std::size_t n, ReduceOp op, int root) {
  reduce_dispatch<std::int64_t>(in, out, n, op, root, /*all=*/false);
}

void Comm::allreduce_i64(const std::int64_t* in, std::int64_t* out,
                         std::size_t n, ReduceOp op) {
  reduce_dispatch<std::int64_t>(in, out, n, op, 0, /*all=*/true);
}

void Comm::reduce_i32(const std::int32_t* in, std::int32_t* out,
                      std::size_t n, ReduceOp op, int root) {
  reduce_dispatch<std::int32_t>(in, out, n, op, root, /*all=*/false);
}

void Comm::allreduce_i32(const std::int32_t* in, std::int32_t* out,
                         std::size_t n, ReduceOp op) {
  reduce_dispatch<std::int32_t>(in, out, n, op, 0, /*all=*/true);
}

}  // namespace nemo::core
