// Collective operations layered on the pt2pt engine. Algorithms are the
// classical shared-memory-friendly ones: dissemination barrier, binomial
// bcast, linear reduce (small rank counts), ring allgather, and pairwise
// alltoall(v) — the operation Figure 7 benchmarks.
//
// Internal tags live in a reserved negative space, namespaced by a per-Comm
// collective sequence number so back-to-back collectives cannot cross-match
// (all ranks invoke collectives in the same order, per MPI semantics).
#include <cstring>
#include <vector>

#include "core/comm.hpp"

namespace nemo::core {

namespace {

constexpr int kCollTagBase = -(1 << 20);

/// Distinct tag for (collective instance, phase).
int coll_tag(std::uint32_t coll_seq, int phase) {
  return kCollTagBase - static_cast<int>((coll_seq % 4096) * 16) - phase;
}

std::uint32_t next_coll_seq(Engine& eng) { return eng.bump_coll_seq(); }

}  // namespace

void Comm::barrier() {
  Engine& eng = engine_;
  std::uint32_t cs = next_coll_seq(eng);
  int n = size(), r = rank();
  char token = 1;
  for (int k = 1, phase = 0; k < n; k <<= 1, ++phase) {
    int to = (r + k) % n;
    int from = (r - k + n) % n;
    Request s = isend(&token, 1, to, coll_tag(cs, phase), 1);
    char in = 0;
    Request rr = irecv(&in, 1, from, coll_tag(cs, phase), 1);
    wait(s);
    wait(rr);
  }
}

void Comm::bcast(void* buf, std::size_t bytes, int root) {
  Engine& eng = engine_;
  std::uint32_t cs = next_coll_seq(eng);
  int n = size(), r = rank();
  if (n == 1) return;
  // Binomial tree rooted at `root`; relative ranks make the tree uniform.
  int vr = (r - root + n) % n;
  int tag = coll_tag(cs, 0);
  // Receive from parent.
  if (vr != 0) {
    int mask = 1;
    while ((vr & mask) == 0) mask <<= 1;
    int parent = ((vr & ~mask) + root) % n;
    recv(buf, bytes, parent, tag, nullptr, 1);
  }
  // Forward to children.
  int mask = 1;
  while (mask < n && (vr & (mask - 1)) == 0) {
    if ((vr & mask) == 0) {
      int child_vr = vr | mask;
      if (child_vr < n) send(buf, bytes, (child_vr + root) % n, tag, 1);
    }
    mask <<= 1;
  }
}

void Comm::gather(const void* sendbuf, std::size_t per_rank, void* recvbuf,
                  int root) {
  std::uint32_t cs = next_coll_seq(engine_);
  int n = size(), r = rank();
  int tag = coll_tag(cs, 0);
  if (r == root) {
    auto* out = static_cast<std::byte*>(recvbuf);
    std::memcpy(out + static_cast<std::size_t>(r) * per_rank, sendbuf,
                per_rank);
    std::vector<Request> reqs;
    reqs.reserve(static_cast<std::size_t>(n - 1));
    for (int src = 0; src < n; ++src) {
      if (src == r) continue;
      reqs.push_back(irecv(out + static_cast<std::size_t>(src) * per_rank,
                           per_rank, src, tag, 1));
    }
    waitall(reqs);
  } else {
    send(sendbuf, per_rank, root, tag, 1);
  }
}

void Comm::scatter(const void* sendbuf, std::size_t per_rank, void* recvbuf,
                   int root) {
  std::uint32_t cs = next_coll_seq(engine_);
  int n = size(), r = rank();
  int tag = coll_tag(cs, 0);
  if (r == root) {
    const auto* in = static_cast<const std::byte*>(sendbuf);
    std::vector<Request> reqs;
    for (int dst = 0; dst < n; ++dst) {
      if (dst == r) continue;
      reqs.push_back(isend(in + static_cast<std::size_t>(dst) * per_rank,
                           per_rank, dst, tag, 1));
    }
    std::memcpy(recvbuf, in + static_cast<std::size_t>(r) * per_rank,
                per_rank);
    waitall(reqs);
  } else {
    recv(recvbuf, per_rank, root, tag, nullptr, 1);
  }
}

void Comm::allgather(const void* sendbuf, std::size_t per_rank,
                     void* recvbuf) {
  std::uint32_t cs = next_coll_seq(engine_);
  int n = size(), r = rank();
  auto* out = static_cast<std::byte*>(recvbuf);
  std::memcpy(out + static_cast<std::size_t>(r) * per_rank, sendbuf,
              per_rank);
  if (n == 1) return;
  int right = (r + 1) % n, left = (r - 1 + n) % n;
  int tag = coll_tag(cs, 0);
  // Ring: at step s, pass along the block that originated at (r - s).
  for (int s = 0; s < n - 1; ++s) {
    int send_block = (r - s + n) % n;
    int recv_block = (r - s - 1 + n) % n;
    Request sq =
        isend(out + static_cast<std::size_t>(send_block) * per_rank,
              per_rank, right, tag, 1);
    Request rq =
        irecv(out + static_cast<std::size_t>(recv_block) * per_rank,
              per_rank, left, tag, 1);
    wait(sq);
    wait(rq);
  }
}

void Comm::alltoall(const void* sendbuf, std::size_t per_rank,
                    void* recvbuf) {
  std::uint32_t cs = next_coll_seq(engine_);
  int n = size(), r = rank();
  const auto* in = static_cast<const std::byte*>(sendbuf);
  auto* out = static_cast<std::byte*>(recvbuf);
  std::memcpy(out + static_cast<std::size_t>(r) * per_rank,
              in + static_cast<std::size_t>(r) * per_rank, per_rank);
  int tag = coll_tag(cs, 0);
  // Pairwise exchange: at step s talk to (r^s) when n is a power of two,
  // else to (r+s, r-s). Marked collective so the policy can use its lower
  // activation threshold (§4.4).
  bool pow2 = (n & (n - 1)) == 0;
  for (int s = 1; s < n; ++s) {
    int to = pow2 ? (r ^ s) : (r + s) % n;
    int from = pow2 ? (r ^ s) : (r - s + n) % n;
    ConstSegmentList ssegs{
        {in + static_cast<std::size_t>(to) * per_rank, per_rank}};
    SegmentList rsegs{
        {out + static_cast<std::size_t>(from) * per_rank, per_rank}};
    Request sq = engine_.start_send(std::move(ssegs), to, tag,
                                    /*collective=*/true, /*context=*/1);
    Request rq = engine_.start_recv(std::move(rsegs), from, tag, 1);
    wait(sq);
    wait(rq);
  }
}

void Comm::alltoallv(const void* sendbuf, const std::size_t* scounts,
                     const std::size_t* sdispls, void* recvbuf,
                     const std::size_t* rcounts, const std::size_t* rdispls) {
  std::uint32_t cs = next_coll_seq(engine_);
  int n = size(), r = rank();
  const auto* in = static_cast<const std::byte*>(sendbuf);
  auto* out = static_cast<std::byte*>(recvbuf);
  std::memcpy(out + rdispls[r], in + sdispls[r], scounts[r]);
  int tag = coll_tag(cs, 0);
  bool pow2 = (n & (n - 1)) == 0;
  for (int s = 1; s < n; ++s) {
    int to = pow2 ? (r ^ s) : (r + s) % n;
    int from = pow2 ? (r ^ s) : (r - s + n) % n;
    Request sq, rq;
    if (scounts[to] > 0) {
      ConstSegmentList ssegs{{in + sdispls[to], scounts[to]}};
      sq = engine_.start_send(std::move(ssegs), to, tag, /*collective=*/true,
                              /*context=*/1);
    }
    if (rcounts[from] > 0) {
      SegmentList rsegs{{out + rdispls[from], rcounts[from]}};
      rq = engine_.start_recv(std::move(rsegs), from, tag, 1);
    }
    if (sq) wait(sq);
    if (rq) wait(rq);
  }
}

// --- Reductions ---------------------------------------------------------------

template <typename T, typename OpFn>
void Comm::reduce_impl(const T* in, T* out, std::size_t n, OpFn op, int root,
                       int tag) {
  int p = size(), r = rank();
  if (r == root) {
    std::memcpy(out, in, n * sizeof(T));
    std::vector<T> tmp(n);
    for (int src = 0; src < p; ++src) {
      if (src == root) continue;
      recv(tmp.data(), n * sizeof(T), src, tag, nullptr, 1);
      for (std::size_t i = 0; i < n; ++i) out[i] = op(out[i], tmp[i]);
    }
  } else {
    send(in, n * sizeof(T), root, tag, 1);
  }
}

template <typename T, typename OpFn>
void Comm::allreduce_impl(const T* in, T* out, std::size_t n, OpFn op,
                          int tag) {
  reduce_impl<T>(in, out, n, op, 0, tag);
  bcast(out, n * sizeof(T), 0);
}

namespace {

template <typename T>
T apply_op(Comm::ReduceOp op, T a, T b) {
  switch (op) {
    case Comm::ReduceOp::kSum: return a + b;
    case Comm::ReduceOp::kMin: return a < b ? a : b;
    case Comm::ReduceOp::kMax: return a > b ? a : b;
  }
  return a;
}

}  // namespace

void Comm::reduce_f64(const double* in, double* out, std::size_t n,
                      ReduceOp op, int root) {
  std::uint32_t cs = next_coll_seq(engine_);
  reduce_impl<double>(
      in, out, n, [op](double a, double b) { return apply_op(op, a, b); },
      root, coll_tag(cs, 1));
}

void Comm::allreduce_f64(const double* in, double* out, std::size_t n,
                         ReduceOp op) {
  std::uint32_t cs = next_coll_seq(engine_);
  allreduce_impl<double>(
      in, out, n, [op](double a, double b) { return apply_op(op, a, b); },
      coll_tag(cs, 1));
}

void Comm::reduce_i64(const std::int64_t* in, std::int64_t* out,
                      std::size_t n, ReduceOp op, int root) {
  std::uint32_t cs = next_coll_seq(engine_);
  reduce_impl<std::int64_t>(
      in, out, n,
      [op](std::int64_t a, std::int64_t b) { return apply_op(op, a, b); },
      root, coll_tag(cs, 1));
}

void Comm::allreduce_i64(const std::int64_t* in, std::int64_t* out,
                         std::size_t n, ReduceOp op) {
  std::uint32_t cs = next_coll_seq(engine_);
  allreduce_impl<std::int64_t>(
      in, out, n,
      [op](std::int64_t a, std::int64_t b) { return apply_op(op, a, b); },
      coll_tag(cs, 1));
}

}  // namespace nemo::core
