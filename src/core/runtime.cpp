// Rank launchers: threads sharing the world's anonymous mapping, or forked
// processes re-attaching to it by name — the same arena layout either way.
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "core/comm.hpp"
#include "shm/process_runner.hpp"

namespace nemo::core {

namespace {

void rank_body(World& world, int rank, const std::function<void(Comm&)>& fn) {
  int core = world.core_of(rank);
  if (core >= 0) shm::pin_self_to_core(core);
  Comm comm(world, rank);
  // All pids registered / engines live before any traffic flows.
  world.hard_barrier();
  fn(comm);
  // Drain in-flight protocol traffic (returns peers' cells) before teardown.
  comm.barrier();
  world.hard_barrier();
}

}  // namespace

bool run(const Config& cfg, const std::function<void(Comm&)>& fn) {
  // Resolve the launch mode before the World exists: a process-mode world
  // without an explicit shm_name gets a generated one, so the arena is
  // shm_open-backed and each forked child can re-attach at its own base
  // address instead of relying on the inherited mapping.
  Config launch = cfg;
  launch.mode = world_mode_from_env(cfg.mode);
  if (launch.mode == LaunchMode::kProcesses && launch.shm_name.empty()) {
    static std::atomic<unsigned> serial{0};
    char name[64];
    std::snprintf(name, sizeof name, "/nemo-%d-%u",
                  static_cast<int>(::getpid()),
                  serial.fetch_add(1, std::memory_order_relaxed));
    launch.shm_name = name;
  }
  World world(launch);

  if (world.config().mode == LaunchMode::kProcesses) {
    // The parent publishes an eager death verdict the moment a rank dies
    // badly — SIGCHLD-order reaping means survivors' liveness guards see
    // it within one slow-path check instead of waiting out the heartbeat
    // timeout. Clean exits (code 0) are not deaths: teardown is ordered by
    // the rank_body barriers.
    resil::Liveness live = world.liveness();
    shm::ProcessResult res = shm::run_forked_ranks(
        world.config().nranks,
        [&](int rank) {
          world.reattach_in_child();
          rank_body(world, rank, fn);
          return 0;
        },
        [&](int rank, int code) {
          if (code != 0 && live.valid()) live.mark_dead(rank);
        });
    return res.all_ok;
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(cfg.nranks));
  std::mutex err_mu;
  std::exception_ptr first_error;
  for (int r = 0; r < cfg.nranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        rank_body(world, r, fn);
      } catch (...) {
        std::lock_guard<std::mutex> lk(err_mu);
        if (!first_error) first_error = std::current_exception();
        // A dead rank would hang its peers in barriers; abort loudly
        // instead of deadlocking the test suite.
        std::fprintf(stderr, "rank %d failed; aborting world\n", r);
        std::abort();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return true;
}

}  // namespace nemo::core
