#include "trace/registry.hpp"

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "common/common.hpp"
#include "tune/counters.hpp"

namespace nemo::trace {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

int Histogram::bucket_of(std::uint64_t v) {
  if (v < 2) return 0;
  return 63 - __builtin_clzll(v);
}

std::uint64_t Histogram::bucket_lo(int b) {
  return b <= 0 ? 0 : (b >= 64 ? UINT64_MAX : (1ull << b));
}

std::uint64_t Histogram::bucket_hi(int b) {
  return b >= 63 ? UINT64_MAX : (2ull << b) - 1;
}

std::uint64_t Histogram::min() const {
  std::uint64_t m = min_.load(std::memory_order_relaxed);
  return m == UINT64_MAX && count() == 0 ? 0 : m;
}

void Histogram::update_min(std::uint64_t v) {
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void Histogram::update_max(std::uint64_t v) {
  std::uint64_t cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

double Histogram::quantile(double q) const {
  std::uint64_t counts[kBuckets];
  std::uint64_t total = 0;
  for (int b = 0; b < kBuckets; ++b) {
    counts[b] = bucket_count(b);
    total += counts[b];
  }
  if (total == 0) return 0.0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  double target = q * static_cast<double>(total);
  double cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (counts[b] == 0) continue;
    double n = static_cast<double>(counts[b]);
    if (cum + n >= target) {
      double frac = n == 0 ? 0 : (target - cum) / n;
      if (frac < 0) frac = 0;
      double lo = static_cast<double>(bucket_lo(b));
      double hi = static_cast<double>(bucket_hi(b));
      // Clamp to the recorded extremes so single-valued distributions
      // report the exact value instead of a bucket bound.
      double v = lo + frac * (hi - lo);
      double mn = static_cast<double>(min()), mx = static_cast<double>(max());
      if (v < mn) v = mn;
      if (v > mx) v = mx;
      return v;
    }
    cum += n;
  }
  return static_cast<double>(max());
}

tune::Json Histogram::to_json() const {
  tune::Json j = tune::Json::object();
  j.set("count", count());
  j.set("sum", sum());
  j.set("min", min());
  j.set("max", max());
  double n = static_cast<double>(count());
  j.set("mean", n > 0 ? static_cast<double>(sum()) / n : 0.0);
  j.set("p50", quantile(0.50));
  j.set("p99", quantile(0.99));
  j.set("p999", quantile(0.999));
  tune::Json buckets = tune::Json::object();
  for (int b = 0; b < kBuckets; ++b) {
    std::uint64_t c = bucket_count(b);
    if (c != 0) buckets.set(std::to_string(bucket_lo(b)), c);
  }
  j.set("buckets", std::move(buckets));
  return j;
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Histogram& Registry::hist(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = hists_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void Registry::set_gauge(const std::string& name, double v) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = v;
}

tune::Json Registry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  tune::Json j = tune::Json::object();
  j.set("schema", std::string("nemo-registry/1"));
  tune::Json hists = tune::Json::object();
  for (const auto& [name, h] : hists_)
    if (h->count() != 0) hists.set(name, h->to_json());
  j.set("histograms", std::move(hists));
  tune::Json gauges = tune::Json::object();
  for (const auto& [name, v] : gauges_) gauges.set(name, v);
  j.set("gauges", std::move(gauges));
  return j;
}

std::string Registry::text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line, "%-32s %10s %10s %10s %10s %10s\n",
                "histogram", "count", "p50", "p99", "p999", "max");
  out += line;
  for (const auto& [name, h] : hists_) {
    if (h->count() == 0) continue;
    std::snprintf(line, sizeof line,
                  "%-32s %10" PRIu64 " %10.0f %10.0f %10.0f %10" PRIu64 "\n",
                  name.c_str(), h->count(), h->quantile(0.50),
                  h->quantile(0.99), h->quantile(0.999), h->max());
    out += line;
  }
  for (const auto& [name, v] : gauges_) {
    std::snprintf(line, sizeof line, "%-32s gauge %.3f\n", name.c_str(), v);
    out += line;
  }
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, h] : hists_) h->reset();
  gauges_.clear();
}

Registry& registry() {
  // Leaked so exit-time dumps never race static destruction.
  static Registry* r = new Registry();
  return *r;
}

// ---------------------------------------------------------------------------
// tune::Counters serialization (moved here from tune/counters.cpp so every
// telemetry consumer shares one writer).
// ---------------------------------------------------------------------------

namespace {

const char* path_name(int i) {
  switch (i) {
    case 0: return "rndv-default";
    case 1: return "rndv-vmsplice";
    case 2: return "rndv-vmsplice-writev";
    case 3: return "rndv-knem";
    case 4: return "rndv-cma";
    case tune::Counters::kPathEager: return "eager-queue";
    case tune::Counters::kPathFastbox: return "eager-fastbox";
  }
  return "?";
}

}  // namespace

tune::Json Registry::counters_json(const tune::Counters& c, int rank) {
  using tune::Json;
  Json j = Json::object();
  if (rank >= 0) j.set("rank", static_cast<std::uint64_t>(rank));

  // Sparse histogram: only populated classes, keyed by the class floor so
  // the dump stays readable ("4KiB": 120).
  Json hist = Json::object();
  for (int i = 0; i < tune::Counters::kSizeClasses; ++i) {
    std::uint64_t n = c.sent_by_class[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    hist.set(format_size(static_cast<std::size_t>(1) << i), n);
  }
  j.set("sent_by_class", std::move(hist));

  Json paths = Json::object();
  for (int i = 0; i < tune::Counters::kPaths; ++i) {
    std::uint64_t n = c.path_hist[static_cast<std::size_t>(i)];
    if (n != 0) paths.set(path_name(i), n);
  }
  j.set("paths", std::move(paths));

  j.set("fastbox_hits", c.fastbox_hits);
  j.set("fastbox_fallbacks", c.fastbox_fallbacks);
  double attempts =
      static_cast<double>(c.fastbox_hits + c.fastbox_fallbacks);
  j.set("fastbox_hit_rate",
        attempts > 0 ? static_cast<double>(c.fastbox_hits) / attempts : 0.0);
  j.set("ring_stalls", c.ring_stalls);
  j.set("drain_exhausted", c.drain_exhausted);
  j.set("progress_passes", c.progress_passes);

  Json coll = Json::object();
  coll.set("shm_ops", c.coll_shm_ops);
  coll.set("p2p_ops", c.coll_p2p_ops);
  coll.set("shm_bytes", c.coll_shm_bytes);
  coll.set("fallbacks", c.coll_fallbacks);
  coll.set("epoch_stalls", c.coll_epoch_stalls);
  coll.set("barrier_flat", c.coll_barrier_flat);
  coll.set("barrier_tree", c.coll_barrier_tree);
  coll.set("hier_ops", c.coll_hier_ops);
  j.set("coll", std::move(coll));

  Json resil = Json::object();
  resil.set("peer_deaths", c.peer_deaths);
  resil.set("fence_epochs", c.fence_epochs);
  resil.set("reclaimed_slots", c.reclaimed_slots);
  resil.set("timeout_aborts", c.timeout_aborts);
  j.set("resil", std::move(resil));

  Json net = Json::object();
  net.set("msgs", c.net_msgs);
  net.set("bytes", c.net_bytes);
  net.set("modeled_ns", c.net_modeled_ns);
  net.set("ctrl_msgs", c.net_ctrl_msgs);
  j.set("net", std::move(net));

  j.set("um_pool_hits", c.um_pool_hits);
  j.set("um_pool_misses", c.um_pool_misses);

  // Kernel-path histogram, keyed by kernel name (sparse like the size
  // classes so unexercised kernels do not clutter the dump).
  Json simd = Json::object();
  const char* kernel_names[tune::Counters::kSimdKernels] = {"scalar", "avx2",
                                                            "avx512"};
  for (int i = 0; i < tune::Counters::kSimdKernels; ++i) {
    auto si = static_cast<std::size_t>(i);
    if (c.simd_fold_ops[si] == 0 && c.simd_fold_bytes[si] == 0) continue;
    Json k = Json::object();
    k.set("fold_ops", c.simd_fold_ops[si]);
    k.set("fold_bytes", c.simd_fold_bytes[si]);
    simd.set(kernel_names[i], std::move(k));
  }
  j.set("simd", std::move(simd));

  Json pack = Json::object();
  pack.set("direct_ops", c.pack_direct_ops);
  pack.set("direct_bytes", c.pack_direct_bytes);
  pack.set("staged_ops", c.pack_staged_ops);
  pack.set("staged_bytes", c.pack_staged_bytes);
  pack.set("nt_ops", c.pack_nt_ops);
  pack.set("unpack_ops", c.unpack_ops);
  j.set("pack", std::move(pack));
  return j;
}

tune::Json Registry::telemetry_json(const std::string& label,
                                    const tune::Counters* per_rank,
                                    int nranks) {
  using tune::Json;
  Json root = Json::object();
  root.set("schema", std::string("nemo-telemetry/1"));
  root.set("label", label);
  Json ranks = Json::array();
  tune::Counters total;
  for (int r = 0; r < nranks; ++r) {
    ranks.push_back(counters_json(per_rank[r], r));
    total += per_rank[r];
  }
  root.set("ranks", std::move(ranks));
  root.set("total", counters_json(total, -1));
  return root;
}

}  // namespace nemo::trace
