// Always-on tracing: per-rank lock-free event rings, runtime-gated.
//
// The tracer is compiled in unconditionally but gated by NEMO_TRACE
// (off | rings | full) so the disabled fast path is one relaxed load and a
// branch — cheap enough to leave in every hot path. Each Engine owns one
// Ring (engine-private, SPSC: the rank thread produces, the post-run dump
// consumes), mirroring the tune::Counters philosophy of plain stores on
// private memory. Records are fixed 32-byte slots: tsc timestamp, event id,
// phase, and two u64 arguments. A full ring overwrites the oldest records
// flight-recorder style and counts the overwritten slots as drops.
//
// Knobs (see docs/OBSERVABILITY.md):
//   NEMO_TRACE            off (default) | rings | full
//   NEMO_TRACE_RING_SLOTS slots per rank ring (default 8192, rounded to 2^n)
//   NEMO_TRACE_OUT        dump file written at process exit
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace nemo::trace {

// ---------------------------------------------------------------------------
// Mode gate
// ---------------------------------------------------------------------------

enum class Mode : int {
  kOff = 0,    // record nothing; the gate is the only cost
  kRings = 1,  // coarse events: LMT activation, coll phases, stalls, feedback
  kFull = 2,   // + per-pass / per-chunk spans and counter snapshots
};

namespace detail {
extern std::atomic<int> g_mode;
}  // namespace detail

/// The disabled fast path: one relaxed load + branch.
inline bool on(Mode need = Mode::kRings) {
  return detail::g_mode.load(std::memory_order_relaxed) >=
         static_cast<int>(need);
}

[[nodiscard]] Mode mode();
/// Re-read NEMO_TRACE (tests and tools pin it via ScopedEnv/setenv).
Mode reload_mode();
void set_mode(Mode m);
const char* to_string(Mode m);
Mode mode_from_string(const std::string& s);

// ---------------------------------------------------------------------------
// Timestamps: raw tsc on x86 (one instruction on the record path), steady
// clock elsewhere. A once-per-process calibration maps ticks to the same
// ns timeline as now_ns() so dumps line up with wall-clock measurements.
// ---------------------------------------------------------------------------

inline std::uint64_t tsc_now() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  return 0;  // replaced by now_ns() via the calibration identity mapping
#endif
}

struct TscCalibration {
  std::uint64_t tsc0 = 0;      // tsc sample ...
  std::uint64_t ns0 = 0;       // ... taken at this now_ns()
  double ns_per_tick = 1.0;    // measured over the calibration window
};

/// Measure tsc vs steady_clock over a short spin window.
TscCalibration calibrate_tsc();
/// Process-wide calibration, computed once on first use.
const TscCalibration& calibration();

std::uint64_t tsc_to_ns(const TscCalibration& c, std::uint64_t tsc);
std::uint64_t ns_to_tsc(const TscCalibration& c, std::uint64_t ns);

// ---------------------------------------------------------------------------
// Event taxonomy
// ---------------------------------------------------------------------------

enum Event : std::uint16_t {
  kNone = 0,
  // Scoped spans (begin/end pairs, properly nested per rank).
  kProgress,      // one Engine::progress() pass            (full)
  kFastboxPut,    // fastbox try_put, a0=peer a1=bytes      (full)
  kFastboxPop,    // fastbox poll hit, a0=peer a1=bytes     (full)
  kRingPush,      // CopyRing chunk copy-in, a0=peer a1=b   (full)
  kRingPop,       // CopyRing chunk copy-out, a0=peer a1=b  (full)
  kCollOp,        // one collective, a0=Op a1=bytes         (rings)
  kCollDeposit,   // reduce operand deposit, a0=chunk a1=b  (rings)
  kCollFold,      // leader per-chunk fold, a0=chunk a1=b   (rings)
  kCollRelease,   // folded-result read-back, a0=chunk a1=b (rings)
  kCollBarrier,   // arena barrier                          (rings)
  kFence,         // post-death epoch fence, a0=dead rank   (rings)
  // Instants.
  kLmtActivate,      // rendezvous chosen, a0=peer a1=bytes (rings)
  kLmtComplete,      // rendezvous done, a0=peer a1=bytes   (rings)
  kFastboxFallback,  // box full -> cell path, a0=peer      (rings)
  kRingStall,        // CopyRing full, a0=peer              (rings)
  kEpochStall,       // arena spin missed, a0=waited rank   (rings)
  kPeerDeath,        // death verdict, a0=rank a1=site      (rings)
  kFeedback,         // tuning decision, a0=Knob a1=value   (rings)
  // Transport layer (modeled interconnect; see src/transport/).
  kNetLink,  // internode transfer, a0=peer a1=bytes        (rings)
  kNetCtrl,  // internode control doorbell, a0=peer         (full)
  // Counter track samples.
  kSnapshot,  // a0=Gauge a1=value                          (full)
  kEventCount
};

const char* event_name(std::uint16_t id);

enum Ph : std::uint16_t { kInstant = 0, kBegin = 1, kEnd = 2, kCounter = 3 };

/// Counter-track ids carried in kSnapshot.a0.
enum Gauge : std::uint64_t {
  kGaugeFastboxHits = 0,
  kGaugeRingStalls,
  kGaugeProgressPasses,
  kGaugeCollShmOps,
  kGaugeNetMsgs,
  kGaugeNetBytes,
  kGaugeNetModeledNs,
  kGaugeCount
};
const char* gauge_name(std::uint64_t id);

/// Collective-op ids carried in kCollOp.a0 (payload bytes in a1).
enum CollOp : std::uint64_t {
  kOpBcast = 0,
  kOpReduce,
  kOpAllreduce,
  kOpAllgather,
  kOpAlltoall,
  kOpAlltoallv,
  kOpBarrier,
  kOpCount
};
const char* coll_op_name(std::uint64_t id);

/// Tuning-knob ids carried in kFeedback.a0 (value in a1).
enum Knob : std::uint64_t {
  kKnobDrainBudget = 0,
  kKnobRingBufs,
  kKnobFastboxSlots,
  kKnobPollHot,
  kKnobCollActivation,
  kKnobPackNtMin,
  kKnobCount
};
const char* knob_name(std::uint64_t id);

// ---------------------------------------------------------------------------
// The ring
// ---------------------------------------------------------------------------

struct Record {
  std::uint64_t tsc;
  std::uint16_t id;   // Event
  std::uint16_t ph;   // Ph
  std::uint32_t pad;
  std::uint64_t a0;
  std::uint64_t a1;
};
static_assert(sizeof(Record) == 32, "fixed-slot trace record");

/// Fixed-capacity overwrite ring. Engine-private: the owning rank thread is
/// the only writer; readers run after the rank is done (flush/dump). No
/// atomics on the record path.
class Ring {
 public:
  explicit Ring(std::size_t slots);  // rounded up to a power of two

  void record(std::uint16_t id, std::uint16_t ph, std::uint64_t a0,
              std::uint64_t a1) {
    Record& r = slots_[head_ & mask_];
    r.tsc = tsc_now();
    r.id = id;
    r.ph = ph;
    r.pad = 0;
    r.a0 = a0;
    r.a1 = a1;
    ++head_;
  }

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  /// Records ever written (monotonic).
  [[nodiscard]] std::uint64_t head() const { return head_; }
  /// Records overwritten because the ring wrapped.
  [[nodiscard]] std::uint64_t dropped() const {
    return head_ > slots_.size() ? head_ - slots_.size() : 0;
  }
  /// Records currently held.
  [[nodiscard]] std::size_t size() const {
    return head_ < slots_.size() ? static_cast<std::size_t>(head_)
                                 : slots_.size();
  }
  /// i-th surviving record, oldest first (i in [0, size())).
  [[nodiscard]] const Record& at(std::size_t i) const {
    std::uint64_t first = head_ - size();
    return slots_[(first + i) & mask_];
  }

 private:
  std::vector<Record> slots_;
  std::uint64_t mask_;
  std::uint64_t head_ = 0;
};

/// Ring slot count resolved from NEMO_TRACE_RING_SLOTS.
std::size_t default_ring_slots();

// ---------------------------------------------------------------------------
// Per-rank tracer
// ---------------------------------------------------------------------------

/// One per Engine (and one process-global instance for rank-less contexts
/// like the tuning feedback pass). Allocates its ring only when tracing is
/// enabled at construction — disabled mode allocates nothing.
class Tracer {
 public:
  explicit Tracer(int rank);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void emit(Event e, Ph ph, std::uint64_t a0 = 0, std::uint64_t a1 = 0) {
    if (ring_) ring_->record(static_cast<std::uint16_t>(e),
                             static_cast<std::uint16_t>(ph), a0, a1);
  }

  [[nodiscard]] bool active() const { return ring_ != nullptr; }
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] Ring* ring() { return ring_.get(); }

  /// Copy the ring contents into the process collector (also runs from the
  /// destructor; safe to call early, later records flush again on top).
  void flush();

 private:
  int rank_;
  std::unique_ptr<Ring> ring_;
  std::uint64_t flushed_head_ = 0;
};

/// Scoped span: emits kBegin on construction and kEnd on destruction when
/// the tracer is active and the mode reaches `need`; otherwise free.
class Span {
 public:
  Span(Tracer& t, Event e, Mode need, std::uint64_t a0 = 0,
       std::uint64_t a1 = 0)
      : t_(on(need) && t.active() ? &t : nullptr), e_(e) {
    if (t_) t_->emit(e_, kBegin, a0, a1);
  }
  ~Span() {
    if (t_) t_->emit(e_, kEnd, 0, 0);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Tracer* t_;
  Event e_;
};

/// Process-global tracer for contexts without a rank (tuning feedback,
/// tools). Serialized use only (single-threaded phases).
Tracer& global_tracer();

// ---------------------------------------------------------------------------
// Collector: rings flushed by finished Tracers, aggregated per process and
// written as a "nemo-trace/1" JSON dump (NEMO_TRACE_OUT or write_dump()).
// ---------------------------------------------------------------------------

struct RankDump {
  int rank = 0;
  std::uint64_t dropped = 0;
  bool ns_timestamps = false;  // true for synthetic (sim-generated) ranks
  std::vector<Record> events;
};

void flush_to_collector(int rank, const Ring& ring, std::uint64_t from,
                        std::uint64_t to);
/// Inject a pre-built timeline (timestamps already in ns) — used by sim
/// replays to emit modeled traces through the same exporter.
void append_synthetic_rank(RankDump dump);
std::vector<RankDump> snapshot_dumps();
void clear_dumps();

/// Serialize the collector + registry as a nemo-trace/1 dump file.
bool write_dump(const std::string& path, std::string* err = nullptr);
/// Honour NEMO_TRACE_OUT if set (registered atexit once tracing enables).
void maybe_write_env_dump();

}  // namespace nemo::trace
