// Metrics registry: log-bucketed latency histograms and gauge snapshots
// behind one process-wide `trace::Registry`, with a stable text and JSON
// serialization. The registry is also the single JSON writer for
// tune::Counters — `--telemetry` dumps and the trace exporters share it.
//
// Histograms are multi-writer (every rank records concurrently) so the
// buckets are relaxed atomics; reads are post-run. Callers on hot paths
// cache the `Histogram&` once — `hist()` never invalidates references
// (`reset()` zeroes in place).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "tune/json.hpp"

namespace nemo::tune {
struct Counters;
}  // namespace nemo::tune

namespace nemo::trace {

/// Power-of-two bucketed histogram: bucket b counts values in
/// [2^b, 2^(b+1)-1] (bucket 0 also takes 0). Quantiles interpolate
/// linearly inside the landing bucket, so extraction error is bounded by
/// the bucket width (a factor of two).
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void record(std::uint64_t v) {
    counts_[static_cast<std::size_t>(bucket_of(v))].fetch_add(
        1, std::memory_order_relaxed);
    total_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    update_min(v);
    update_max(v);
  }

  [[nodiscard]] std::uint64_t count() const {
    return total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t min() const;
  [[nodiscard]] std::uint64_t max() const {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket_count(int b) const {
    return counts_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
  }

  /// q in (0, 1]; 0.5 = p50, 0.99 = p99, 0.999 = p999. Returns 0 when
  /// empty.
  [[nodiscard]] double quantile(double q) const;

  static int bucket_of(std::uint64_t v);
  static std::uint64_t bucket_lo(int b);
  static std::uint64_t bucket_hi(int b);

  [[nodiscard]] tune::Json to_json() const;
  void reset();

 private:
  void update_min(std::uint64_t v);
  void update_max(std::uint64_t v);

  std::atomic<std::uint64_t> counts_[kBuckets]{};
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

class Registry {
 public:
  /// Find-or-create by name. The returned reference stays valid for the
  /// registry's lifetime (hot paths cache it once).
  Histogram& hist(const std::string& name);
  void set_gauge(const std::string& name, double v);

  /// {"schema":"nemo-registry/1","histograms":{...},"gauges":{...}}
  [[nodiscard]] tune::Json to_json() const;
  /// Aligned human-readable table (nemo-trace stat shares the layout).
  [[nodiscard]] std::string text() const;
  /// Zero every histogram in place and drop gauges; references survive.
  void reset();

  // -------------------------------------------------------------------
  // tune::Counters serialization — the one JSON writer for telemetry.
  // -------------------------------------------------------------------
  static tune::Json counters_json(const tune::Counters& c, int rank);
  /// {"schema":"nemo-telemetry/1","label":...,"ranks":[...],"total":{...}}
  static tune::Json telemetry_json(const std::string& label,
                                   const tune::Counters* per_rank,
                                   int nranks);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Histogram>> hists_;
  std::map<std::string, double> gauges_;
};

/// The process-wide registry instance.
Registry& registry();

}  // namespace nemo::trace
