// Chrome/Perfetto `trace_event` JSON exporter for nemo-trace dumps.
//
// Converts a "nemo-trace/1" dump (per-rank event lists with ns timestamps,
// see trace.hpp) into the Trace Event Format chrome://tracing and
// ui.perfetto.dev load natively: one pid for the world, one tid per rank,
// begin/end records matched into complete ("X") spans, instants ("i"), and
// counter tracks ("C") from the snapshot records.
#pragma once

#include <optional>
#include <string>

#include "tune/json.hpp"

namespace nemo::trace {

/// Parse a dump file; nullopt (with `err`) when unreadable or wrong schema.
std::optional<tune::Json> load_dump(const std::string& path,
                                    std::string* err = nullptr);

/// Build the {"traceEvents": [...]} document from a parsed dump.
tune::Json perfetto_from_dump(const tune::Json& dump);

/// load_dump + perfetto_from_dump + write to `out_path`.
bool export_perfetto(const std::string& dump_path, const std::string& out_path,
                     std::string* err = nullptr);

}  // namespace nemo::trace
