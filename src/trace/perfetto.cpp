#include "trace/perfetto.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "trace/trace.hpp"

namespace nemo::trace {

namespace {

// The world shares one pid; rank-less timelines get stable synthetic tids.
constexpr int kPid = 0;
constexpr int kTuneTid = 1000000;  // the global (rank -1) tracer

int tid_of(int rank) { return rank < 0 ? kTuneTid - 1 - rank : rank; }

std::string thread_label(int rank) {
  if (rank == -1) return "tune";
  if (rank < -1) return "sim rank " + std::to_string(-rank - 2);
  return "rank " + std::to_string(rank);
}

std::string category_of(const std::string& name) {
  auto dot = name.find('.');
  return dot == std::string::npos ? name : name.substr(0, dot);
}

/// Per-event argument labels, so Perfetto shows "peer: 3, bytes: 262144"
/// instead of anonymous a0/a1 slots.
std::pair<const char*, const char*> arg_names(std::uint16_t id) {
  switch (id) {
    case kFastboxPut:
    case kFastboxPop:
    case kRingPush:
    case kRingPop:
    case kLmtActivate:
    case kLmtComplete:
      return {"peer", "bytes"};
    case kCollDeposit:
    case kCollFold:
    case kCollRelease:
      return {"chunk", "bytes"};
    case kCollOp: return {"op", "bytes"};
    case kFastboxFallback:
    case kRingStall:
      return {"peer", ""};
    case kEpochStall: return {"waiting_on", ""};
    case kFence: return {"dead_rank", ""};
    case kPeerDeath: return {"rank", "site"};
    case kFeedback: return {"knob", "value"};
    default: return {"a0", "a1"};
  }
}

struct PendingSpan {
  std::uint16_t id;
  double ts_us;
  std::uint64_t a0, a1;
};

tune::Json make_args(std::uint16_t id, std::uint64_t a0, std::uint64_t a1) {
  tune::Json args = tune::Json::object();
  auto [n0, n1] = arg_names(id);
  if (id == kCollOp)
    args.set(n0, std::string(coll_op_name(a0)));
  else if (id == kFeedback)
    args.set(n0, std::string(knob_name(a0)));
  else
    args.set(n0, a0);
  if (n1[0] != '\0') args.set(n1, a1);
  return args;
}

}  // namespace

std::optional<tune::Json> load_dump(const std::string& path,
                                    std::string* err) {
  std::ifstream in(path);
  if (!in) {
    if (err) *err = "cannot read " + path;
    return std::nullopt;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  auto doc = tune::Json::parse(ss.str(), err);
  if (!doc) return std::nullopt;
  if ((*doc)["schema"].as_string() != "nemo-trace/1") {
    if (err) *err = path + ": not a nemo-trace/1 dump";
    return std::nullopt;
  }
  return doc;
}

tune::Json perfetto_from_dump(const tune::Json& dump) {
  struct Sortable {
    int tid;
    double ts;
    tune::Json ev;
  };
  std::vector<Sortable> events;

  std::vector<int> tids_seen;
  for (const tune::Json& rank_dump : dump["ranks"].items()) {
    int rank = static_cast<int>(rank_dump["rank"].as_double());
    int tid = tid_of(rank);
    tids_seen.push_back(tid);

    std::vector<PendingSpan> stack;
    for (const tune::Json& rec : rank_dump["events"].items()) {
      const auto& f = rec.items();
      if (f.size() < 5) continue;
      double ts_us = static_cast<double>(f[0].as_uint()) / 1000.0;
      auto id = static_cast<std::uint16_t>(f[1].as_uint());
      auto ph = static_cast<std::uint16_t>(f[2].as_uint());
      std::uint64_t a0 = f[3].as_uint(), a1 = f[4].as_uint();
      if (id == 0 || id >= kEventCount || ph > kCounter) continue;

      if (ph == kBegin) {
        stack.push_back({id, ts_us, a0, a1});
        continue;
      }
      if (ph == kEnd) {
        // A wrapped ring can orphan an end whose begin was overwritten;
        // drop those instead of mis-nesting.
        while (!stack.empty() && stack.back().id != id) stack.pop_back();
        if (stack.empty()) continue;
        PendingSpan b = stack.back();
        stack.pop_back();
        tune::Json ev = tune::Json::object();
        ev.set("name", std::string(event_name(id)));
        ev.set("cat", category_of(event_name(id)));
        ev.set("ph", std::string("X"));
        ev.set("ts", b.ts_us);
        ev.set("dur", ts_us > b.ts_us ? ts_us - b.ts_us : 0.0);
        ev.set("pid", static_cast<std::int64_t>(kPid));
        ev.set("tid", static_cast<std::int64_t>(tid));
        ev.set("args", make_args(id, b.a0, b.a1));
        events.push_back({tid, b.ts_us, std::move(ev)});
        continue;
      }
      if (ph == kCounter || id == kSnapshot) {
        tune::Json ev = tune::Json::object();
        ev.set("name", std::string(gauge_name(a0)));
        ev.set("ph", std::string("C"));
        ev.set("ts", ts_us);
        ev.set("pid", static_cast<std::int64_t>(kPid));
        // One counter track per rank: suffix the series name via args.
        tune::Json args = tune::Json::object();
        args.set("rank " + std::to_string(rank), a1);
        ev.set("args", std::move(args));
        events.push_back({tid, ts_us, std::move(ev)});
        continue;
      }
      // Instant.
      tune::Json ev = tune::Json::object();
      ev.set("name", std::string(event_name(id)));
      ev.set("cat", category_of(event_name(id)));
      ev.set("ph", std::string("i"));
      ev.set("s", std::string("t"));
      ev.set("ts", ts_us);
      ev.set("pid", static_cast<std::int64_t>(kPid));
      ev.set("tid", static_cast<std::int64_t>(tid));
      ev.set("args", make_args(id, a0, a1));
      events.push_back({tid, ts_us, std::move(ev)});
    }
    // Spans still open when the ring was flushed (should not happen in a
    // clean run) are dropped rather than emitted unmatched.
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const Sortable& a, const Sortable& b) {
                     return a.tid != b.tid ? a.tid < b.tid : a.ts < b.ts;
                   });

  tune::Json out = tune::Json::object();
  tune::Json list = tune::Json::array();
  // Name the process and threads first (metadata events).
  {
    tune::Json m = tune::Json::object();
    m.set("name", std::string("process_name"));
    m.set("ph", std::string("M"));
    m.set("pid", static_cast<std::int64_t>(kPid));
    tune::Json args = tune::Json::object();
    args.set("name", std::string("nemo world"));
    m.set("args", std::move(args));
    list.push_back(std::move(m));
  }
  std::sort(tids_seen.begin(), tids_seen.end());
  tids_seen.erase(std::unique(tids_seen.begin(), tids_seen.end()),
                  tids_seen.end());
  for (const tune::Json& rank_dump : dump["ranks"].items()) {
    int rank = static_cast<int>(rank_dump["rank"].as_double());
    int tid = tid_of(rank);
    auto it = std::find(tids_seen.begin(), tids_seen.end(), tid);
    if (it == tids_seen.end()) continue;
    tids_seen.erase(it);  // one metadata record per tid
    tune::Json m = tune::Json::object();
    m.set("name", std::string("thread_name"));
    m.set("ph", std::string("M"));
    m.set("pid", static_cast<std::int64_t>(kPid));
    m.set("tid", static_cast<std::int64_t>(tid));
    tune::Json args = tune::Json::object();
    args.set("name", thread_label(rank));
    m.set("args", std::move(args));
    list.push_back(std::move(m));
  }
  for (Sortable& s : events) list.push_back(std::move(s.ev));
  out.set("displayTimeUnit", std::string("ns"));
  out.set("traceEvents", std::move(list));
  return out;
}

bool export_perfetto(const std::string& dump_path, const std::string& out_path,
                     std::string* err) {
  auto dump = load_dump(dump_path, err);
  if (!dump) return false;
  tune::Json doc = perfetto_from_dump(*dump);
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    if (err) *err = "cannot open " + out_path;
    return false;
  }
  std::string text = doc.dump(1);
  bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  ok = std::fclose(f) == 0 && ok;
  if (!ok && err) *err = "short write to " + out_path;
  return ok;
}

}  // namespace nemo::trace
