#include "trace/trace.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/options.hpp"
#include "common/timing.hpp"
#include "trace/registry.hpp"
#include "tune/json.hpp"

namespace nemo::trace {

namespace detail {
std::atomic<int> g_mode{0};
}  // namespace detail

namespace {

std::once_flag g_atexit_once;

void register_exit_dump() {
  std::call_once(g_atexit_once, [] { std::atexit(maybe_write_env_dump); });
}

std::size_t round_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

struct Collector {
  std::mutex mu;
  std::vector<RankDump> dumps;
};

Collector& collector() {
  // Deliberately leaked: the NEMO_TRACE_OUT dump runs from atexit, after
  // static destructors would have torn a function-local static down.
  static Collector* c = new Collector;
  return *c;
}

}  // namespace

// ---------------------------------------------------------------------------
// Mode
// ---------------------------------------------------------------------------

Mode mode() {
  return static_cast<Mode>(detail::g_mode.load(std::memory_order_relaxed));
}

Mode mode_from_string(const std::string& s) {
  if (s.empty() || s == "off" || s == "0" || s == "false" || s == "no")
    return Mode::kOff;
  if (s == "rings") return Mode::kRings;
  if (s == "full" || s == "on" || s == "1" || s == "true") return Mode::kFull;
  std::fprintf(stderr, "nemo: NEMO_TRACE=%s not recognised, tracing off\n",
               s.c_str());
  return Mode::kOff;
}

const char* to_string(Mode m) {
  switch (m) {
    case Mode::kOff: return "off";
    case Mode::kRings: return "rings";
    case Mode::kFull: return "full";
  }
  return "off";
}

Mode reload_mode() {
  Mode m = mode_from_string(nemo::Config::str("NEMO_TRACE").value_or(""));
  set_mode(m);
  return m;
}

void set_mode(Mode m) {
  detail::g_mode.store(static_cast<int>(m), std::memory_order_relaxed);
  if (m != Mode::kOff) register_exit_dump();
}

// ---------------------------------------------------------------------------
// tsc calibration
// ---------------------------------------------------------------------------

TscCalibration calibrate_tsc() {
  TscCalibration c;
  c.ns0 = now_ns();
  c.tsc0 = tsc_now();
  if (c.tsc0 == 0) {
    // No tsc on this architecture: tsc_now() would always return 0, so the
    // identity mapping keeps tsc_to_ns well defined (callers then record
    // now_ns() themselves if they need real timelines).
    c.ns_per_tick = 1.0;
    return c;
  }
  // Spin for ~2ms measuring both clocks; long enough that steady_clock
  // granularity is noise, short enough to run from a test.
  const std::uint64_t window_ns = 2'000'000;
  std::uint64_t ns1 = c.ns0, tsc1 = c.tsc0;
  while (ns1 - c.ns0 < window_ns) {
    ns1 = now_ns();
    tsc1 = tsc_now();
  }
  std::uint64_t dtick = tsc1 - c.tsc0;
  c.ns_per_tick = dtick == 0 ? 1.0
                             : static_cast<double>(ns1 - c.ns0) /
                                   static_cast<double>(dtick);
  return c;
}

const TscCalibration& calibration() {
  static const TscCalibration c = calibrate_tsc();
  return c;
}

std::uint64_t tsc_to_ns(const TscCalibration& c, std::uint64_t tsc) {
  double dt = (static_cast<double>(tsc) - static_cast<double>(c.tsc0)) *
              c.ns_per_tick;
  double ns = static_cast<double>(c.ns0) + dt;
  return ns <= 0 ? 0 : static_cast<std::uint64_t>(ns);
}

std::uint64_t ns_to_tsc(const TscCalibration& c, std::uint64_t ns) {
  double dticks = (static_cast<double>(ns) - static_cast<double>(c.ns0)) /
                  (c.ns_per_tick == 0 ? 1.0 : c.ns_per_tick);
  double tsc = static_cast<double>(c.tsc0) + dticks;
  return tsc <= 0 ? 0 : static_cast<std::uint64_t>(tsc);
}

// ---------------------------------------------------------------------------
// Names
// ---------------------------------------------------------------------------

const char* event_name(std::uint16_t id) {
  switch (id) {
    case kProgress: return "progress";
    case kFastboxPut: return "fastbox.put";
    case kFastboxPop: return "fastbox.pop";
    case kRingPush: return "ring.push";
    case kRingPop: return "ring.pop";
    case kCollOp: return "coll.op";
    case kCollDeposit: return "coll.deposit";
    case kCollFold: return "coll.fold";
    case kCollRelease: return "coll.release";
    case kCollBarrier: return "coll.barrier";
    case kFence: return "resil.fence";
    case kLmtActivate: return "lmt.activate";
    case kLmtComplete: return "lmt.complete";
    case kFastboxFallback: return "fastbox.fallback";
    case kRingStall: return "ring.stall";
    case kEpochStall: return "coll.epoch_stall";
    case kPeerDeath: return "resil.peer_death";
    case kFeedback: return "tune.feedback";
    case kNetLink: return "net.link";
    case kNetCtrl: return "net.ctrl";
    case kSnapshot: return "snapshot";
    default: return "unknown";
  }
}

const char* gauge_name(std::uint64_t id) {
  switch (id) {
    case kGaugeFastboxHits: return "fastbox_hits";
    case kGaugeRingStalls: return "ring_stalls";
    case kGaugeProgressPasses: return "progress_passes";
    case kGaugeCollShmOps: return "coll_shm_ops";
    case kGaugeNetMsgs: return "net_msgs";
    case kGaugeNetBytes: return "net_bytes";
    case kGaugeNetModeledNs: return "net_modeled_ns";
    default: return "gauge";
  }
}

const char* coll_op_name(std::uint64_t id) {
  switch (id) {
    case kOpBcast: return "bcast";
    case kOpReduce: return "reduce";
    case kOpAllreduce: return "allreduce";
    case kOpAllgather: return "allgather";
    case kOpAlltoall: return "alltoall";
    case kOpAlltoallv: return "alltoallv";
    case kOpBarrier: return "barrier";
    default: return "coll";
  }
}

const char* knob_name(std::uint64_t id) {
  switch (id) {
    case kKnobDrainBudget: return "drain_budget";
    case kKnobRingBufs: return "ring_bufs";
    case kKnobFastboxSlots: return "fastbox_slots";
    case kKnobPollHot: return "poll_hot";
    case kKnobCollActivation: return "coll_activation";
    case kKnobPackNtMin: return "pack_nt_min";
    default: return "knob";
  }
}

// ---------------------------------------------------------------------------
// Ring / Tracer
// ---------------------------------------------------------------------------

Ring::Ring(std::size_t slots)
    : slots_(round_pow2(slots < 2 ? 2 : slots)),
      mask_(slots_.size() - 1) {}

std::size_t default_ring_slots() {
  long v = nemo::Config::integer("NEMO_TRACE_RING_SLOTS", 8192);
  if (v < 2) v = 2;
  if (v > (1l << 24)) v = 1l << 24;
  return round_pow2(static_cast<std::size_t>(v));
}

Tracer::Tracer(int rank) : rank_(rank) {
  if (on(Mode::kRings)) {
    ring_ = std::make_unique<Ring>(default_ring_slots());
    (void)calibration();  // calibrate outside the measured region
  }
}

Tracer::~Tracer() { flush(); }

void Tracer::flush() {
  if (!ring_ || ring_->head() == flushed_head_) return;
  flush_to_collector(rank_, *ring_, flushed_head_, ring_->head());
  flushed_head_ = ring_->head();
}

Tracer& global_tracer() {
  // Deliberately leaked: the exit-time dump (atexit) flushes it explicitly,
  // which must stay safe regardless of static destruction order.
  static Tracer* t = new Tracer(-1);
  return *t;
}

// ---------------------------------------------------------------------------
// Collector
// ---------------------------------------------------------------------------

void flush_to_collector(int rank, const Ring& ring, std::uint64_t from,
                        std::uint64_t to) {
  RankDump d;
  d.rank = rank;
  d.dropped = ring.dropped();
  // Only records still resident and not flushed before.
  std::uint64_t first = to - ring.size();
  if (from > first) first = from;
  d.events.reserve(static_cast<std::size_t>(to - first));
  std::uint64_t base = ring.head() - ring.size();
  for (std::uint64_t i = first; i < to; ++i)
    d.events.push_back(ring.at(static_cast<std::size_t>(i - base)));
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  c.dumps.push_back(std::move(d));
}

void append_synthetic_rank(RankDump dump) {
  dump.ns_timestamps = true;
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  c.dumps.push_back(std::move(dump));
}

std::vector<RankDump> snapshot_dumps() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  return c.dumps;
}

void clear_dumps() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  c.dumps.clear();
}

bool write_dump(const std::string& path, std::string* err) {
  const TscCalibration& cal = calibration();
  tune::Json doc = tune::Json::object();
  doc.set("schema", std::string("nemo-trace/1"));
  doc.set("mode", std::string(to_string(mode())));
  tune::Json tsc = tune::Json::object();
  tsc.set("tsc0", cal.tsc0);
  tsc.set("ns0", cal.ns0);
  tsc.set("ns_per_tick", cal.ns_per_tick);
  doc.set("tsc", std::move(tsc));

  tune::Json names = tune::Json::object();
  for (std::uint16_t id = 1; id < kEventCount; ++id)
    names.set(std::to_string(id), std::string(event_name(id)));
  doc.set("names", std::move(names));

  tune::Json ranks = tune::Json::array();
  for (const RankDump& d : snapshot_dumps()) {
    tune::Json r = tune::Json::object();
    r.set("rank", static_cast<std::int64_t>(d.rank));
    r.set("dropped", d.dropped);
    tune::Json evs = tune::Json::array();
    for (const Record& rec : d.events) {
      tune::Json e = tune::Json::array();
      e.push_back(d.ns_timestamps ? rec.tsc : tsc_to_ns(cal, rec.tsc));
      e.push_back(static_cast<std::uint64_t>(rec.id));
      e.push_back(static_cast<std::uint64_t>(rec.ph));
      e.push_back(rec.a0);
      e.push_back(rec.a1);
      evs.push_back(std::move(e));
    }
    r.set("events", std::move(evs));
    ranks.push_back(std::move(r));
  }
  doc.set("ranks", std::move(ranks));
  doc.set("registry", registry().to_json());

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    if (err) *err = "cannot open " + path;
    return false;
  }
  std::string text = doc.dump(1);
  bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  ok = std::fclose(f) == 0 && ok;
  if (!ok && err) *err = "short write to " + path;
  return ok;
}

void maybe_write_env_dump() {
  auto out = nemo::Config::str("NEMO_TRACE_OUT");
  if (!out) return;
  global_tracer().flush();
  std::string err;
  if (!write_dump(*out, &err))
    std::fprintf(stderr, "nemo: trace dump failed: %s\n", err.c_str());
}

}  // namespace nemo::trace
