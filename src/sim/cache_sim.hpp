// Deterministic set-associative cache hierarchy simulator.
//
// One CacheLevel instance exists per CacheDomain of the Topology (private L1s,
// shared or private L2s, optional L3). Accesses walk the accessing core's
// hierarchy inside-out; fills are inclusive; writes invalidate the line in
// every cache outside the writer's hierarchy (write-invalidate coherence,
// which is what makes double-buffer copy traffic evict application data —
// the pollution the paper measures).
#pragma once

#include <cstdint>
#include <vector>

#include "common/common.hpp"
#include "common/topology.hpp"
#include "sim/machine.hpp"

namespace nemo::sim {

class CacheLevel {
 public:
  CacheLevel(std::size_t size_bytes, std::size_t line, unsigned assoc);

  /// True on hit. On miss with `allocate`, the line is filled (LRU victim
  /// evicted). Also refreshes LRU order on hit.
  bool access(std::uint64_t line_addr, bool allocate);

  /// Remove the line if present.
  void invalidate(std::uint64_t line_addr);

  [[nodiscard]] bool contains(std::uint64_t line_addr) const;

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  void reset_stats() { hits_ = misses_ = 0; }
  /// Drop all cached lines (cold restart) as well as the statistics.
  void flush();

 private:
  std::size_t sets_;
  unsigned assoc_;
  unsigned line_shift_;
  /// ways_[set * assoc + i] = tag (or kEmpty), kept in LRU order
  /// (index 0 = MRU).
  std::vector<std::uint64_t> ways_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;

  static constexpr std::uint64_t kEmpty = ~0ull;
};

/// Where an access was served from.
enum class HitLevel {
  kL1 = 1,
  kL2 = 2,
  kRemoteCache = 3,  ///< Another hierarchy's cache (FSB cache-to-cache).
  kMem = 4,
};

class CacheSystem {
 public:
  explicit CacheSystem(const Topology& topo);

  /// One 64 B line access by `core`. `nt` = non-temporal write: bypasses
  /// allocation entirely (I/OAT-like stores also use this path).
  HitLevel access(int core, std::uint64_t addr, bool write, bool nt = false);

  /// DMA engine traffic: reads leave caches untouched; writes invalidate the
  /// line everywhere (coherent DMA) and never allocate.
  void dma_write(std::uint64_t addr);

  /// Number of line-accesses that had to go to memory *through an L2*
  /// (the PAPI "L2 cache misses" analogue in Table 2).
  [[nodiscard]] std::uint64_t l2_misses() const;
  [[nodiscard]] std::uint64_t l1_misses() const;

  void reset_stats();
  /// Cold caches + zero statistics.
  void flush_all();

  [[nodiscard]] const Topology& topology() const { return topo_; }

 private:
  struct CoreHierarchy {
    std::vector<std::size_t> levels;  ///< Indices into levels_, L1 first.
  };

  Topology topo_;
  std::vector<CacheLevel> levels_;     ///< One per CacheDomain.
  std::vector<int> domain_level_;      ///< Cache level (1/2/3) per instance.
  std::vector<CoreHierarchy> cores_;
};

}  // namespace nemo::sim
