// Memory-system timing on top of the cache simulator: charge per-line costs
// for buffer-granularity operations (read/write/copy/touch), separately
// accumulating the memory-level portion so callers can apply bus-contention
// scaling when several cores stream concurrently.
#pragma once

#include <cstdint>

#include "sim/cache_sim.hpp"
#include "sim/machine.hpp"

namespace nemo::sim {

/// Cost of one operation, split by where time was spent.
struct Cost {
  double cache_ns = 0;  ///< Served from L1/L2.
  double mem_ns = 0;    ///< Served from (or streamed to) memory.
  [[nodiscard]] double total() const { return cache_ns + mem_ns; }

  Cost& operator+=(const Cost& o) {
    cache_ns += o.cache_ns;
    mem_ns += o.mem_ns;
    return *this;
  }
};

class MemSystem {
 public:
  explicit MemSystem(SimMachine machine)
      : machine_(std::move(machine)), caches_(machine_.topo) {}

  [[nodiscard]] CacheSystem& caches() { return caches_; }
  [[nodiscard]] const SimMachine& machine() const { return machine_; }
  [[nodiscard]] const TimingParams& timing() const {
    return machine_.timing;
  }

  /// CPU `core` reads `n` bytes starting at `addr`.
  Cost read(int core, std::uint64_t addr, std::size_t n);

  /// CPU `core` writes `n` bytes; nt = streaming stores (no allocation).
  Cost write(int core, std::uint64_t addr, std::size_t n, bool nt = false);

  /// CPU copy src -> dst on `core` (read + write interleaved per line).
  Cost copy(int core, std::uint64_t dst, std::uint64_t src, std::size_t n,
            bool nt_dst = false);

  /// Application working-set touch (read-modify-write per line).
  Cost touch(int core, std::uint64_t addr, std::size_t n);

  /// DMA-engine copy: no CPU cache allocation anywhere; destination lines
  /// are invalidated in all caches (coherent DMA). Returns engine time.
  Cost dma_copy(std::uint64_t dst, std::uint64_t src, std::size_t n);

 private:
  Cost charge(HitLevel lvl, bool write, bool nt);

  SimMachine machine_;
  CacheSystem caches_;
};

}  // namespace nemo::sim
