// Per-strategy replay models: each LMT mechanism is executed against the
// cache/memory simulator as the exact sequence of memory accesses, syscalls
// and handshakes it performs on real hardware. These models regenerate the
// paper's figures (3-7) and the cache-miss table (Table 2) deterministically.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "sim/memsys.hpp"

namespace nemo::sim {

/// Transfer strategies distinguished in the evaluation.
enum class Strategy {
  kDefault,        ///< Nemesis double-buffered shm copy.
  kDefaultNt,      ///< Same ring, both copies with non-temporal stores
                   ///< (this repo's streaming pipeline above NEMO_NT_MIN).
  kVmsplice,       ///< vmsplice + readv (single copy).
  kVmspliceWritev, ///< writev + readv (two copies through the pipe buffer).
  kKnem,           ///< KNEM synchronous kernel copy (receiver core).
  kKnemDma,        ///< KNEM + I/OAT, synchronous (polled).
  kKnemAsyncCopy,  ///< KNEM kernel-thread offload (competes for the core).
  kKnemAsyncDma,   ///< KNEM + I/OAT, asynchronous (status-byte completion).
  kVmspliceIoat,   ///< §6 future work: vmsplice page attach + I/OAT-offloaded
                   ///< window copies on the receive side (modelled only).
};

const char* to_string(Strategy s);

/// Breakdown of one message transfer.
struct XferOutcome {
  double fixed_ns = 0;   ///< Handshakes, syscalls, pinning, submissions.
  double cache_ns = 0;   ///< Line accesses served by L1/L2.
  double mem_ns = 0;     ///< Line accesses served by memory (scalable by
                         ///< bus contention).
  double sender_busy_ns = 0;  ///< CPU time burnt on the sending core.
  double recv_busy_ns = 0;    ///< CPU time burnt on the receiving core.
  [[nodiscard]] double total() const { return fixed_ns + cache_ns + mem_ns; }
};

class LmtModels {
 public:
  struct Options {
    std::uint32_t ring_bufs = 2;
    std::size_t ring_buf_bytes = 32 * KiB;
    /// kDefaultNt streams only at/above this size (mirrors NEMO_NT_MIN:
    /// half the paper machine's 4 MiB shared L2).
    std::size_t nt_min = 2 * MiB;
    std::size_t pipe_window = 64 * KiB;
    /// Memory-bus contention factor per extra concurrent streaming flow.
    double contention_per_flow = 0.75;
    /// ALU cost of the reduction combine per operand byte for a one-lane
    /// scalar fold (dependent load-op-store chain, not peak FLOPs).
    double fold_ns_per_byte = 0.12;
    /// Effective lanes of the leader's fold kernel (1 = scalar, 4 = AVX2
    /// f64, 8 = AVX-512 f64). Divides the ALU term only — the memory side
    /// of the fold is width-independent, which is why wide kernels saturate
    /// against the deposit stream instead of scaling linearly.
    double fold_lanes = 4.0;
  };

  explicit LmtModels(SimMachine machine) : LmtModels(machine, Options{}) {}
  LmtModels(SimMachine machine, Options opt);

  [[nodiscard]] MemSystem& mem() { return mem_; }

  /// One message transfer sender->receiver between the given buffers.
  /// Mutates cache state (callers sequence iterations/warm-up).
  XferOutcome transfer(Strategy s, int sender_core, int recv_core,
                       std::uint64_t src, std::uint64_t dst,
                       std::size_t bytes);

  /// IMB-style pingpong: steady-state one-way throughput in MiB/s.
  double pingpong_mibs(Strategy s, int core_a, int core_b, std::size_t bytes,
                       int iters = 6);

  /// L2 misses for `iters` pingpong iterations (Table 2 rows 1-2).
  std::uint64_t pingpong_l2_misses(Strategy s, int core_a, int core_b,
                                   std::size_t bytes, int iters = 10);

  /// IMB-style alltoall on `cores`: aggregate throughput in MiB/s
  /// (Figure 7) using the pairwise-exchange schedule with bus contention.
  double alltoall_mibs(Strategy s, const std::vector<int>& cores,
                       std::size_t per_pair, int iters = 3);

  /// L2 misses for `iters` alltoall rounds (Table 2 rows 3-4).
  std::uint64_t alltoall_l2_misses(Strategy s, const std::vector<int>& cores,
                                   std::size_t per_pair, int iters = 10);

  /// Collective replay accounting (fig7 / coll_sweep): one operation's
  /// throughput, bytes memcpy'd, and steady-state L2 misses — the pt2pt
  /// algorithm (binomial bcast / pairwise exchange over the default copy
  /// ring, 2 copies per hop) against the shared-memory collective arena
  /// (write once, every reader pulls directly).
  struct CollOutcome {
    double mibs = 0;               ///< Steady-state throughput.
    std::uint64_t copy_bytes = 0;  ///< Bytes memcpy'd per operation.
    std::uint64_t l2_misses = 0;   ///< Per operation, steady state.
  };
  CollOutcome bcast_coll(bool shm, const std::vector<int>& cores,
                         std::size_t bytes, int iters = 3);
  CollOutcome alltoall_coll(bool shm, const std::vector<int>& cores,
                            std::size_t per_pair, int iters = 3);
  /// Allreduce replay: the p2p family is the linear gather-fold at rank 0
  /// plus a binomial result bcast; the shm family is the arena-v2 pipelined
  /// fold (concurrent sub-chunk deposits overlapped with the leader's
  /// ascending-rank combine, result chunks streamed to the readers behind
  /// the fold — modelled as max(deposit, fold) + one sub-chunk of fill
  /// latency each side rather than their sum).
  CollOutcome allreduce_coll(bool shm, const std::vector<int>& cores,
                             std::size_t bytes, int iters = 3,
                             std::size_t slot_bytes = 256 * KiB);
  /// Barrier replay in nanoseconds per round: flat = the root polls n-1
  /// remote arrival lines sequentially + one release line; tree = each
  /// level's parents poll k child lines concurrently, depth ceil(log_k n)
  /// levels, + the release line.
  double barrier_coll_ns(bool tree, int nranks, int k);

  /// NAS-IS-like run (Table 2 last row): `total_keys` 4-byte keys bucket-
  /// sorted across ranks for `iters` iterations. Returns {seconds, misses}.
  struct IsOutcome {
    double seconds = 0;
    std::uint64_t l2_misses = 0;
  };
  IsOutcome is_run(Strategy s, const std::vector<int>& cores,
                   std::size_t total_keys, int iters = 10);

  /// Reset caches + counters (cold start for a new experiment).
  void reset();

 private:
  struct PairBufs {
    std::uint64_t ring = 0;     ///< Copy-ring buffers (default LMT).
    std::uint64_t pipebuf = 0;  ///< Kernel pipe buffer (writev path).
  };
  PairBufs& pair_bufs(int a, int b);

  XferOutcome default_shm(int sc, int rc, std::uint64_t src,
                          std::uint64_t dst, std::size_t n, PairBufs& pb,
                          bool nt);
  XferOutcome vmsplice(int sc, int rc, std::uint64_t src, std::uint64_t dst,
                       std::size_t n, PairBufs& pb, bool writev);
  XferOutcome vmsplice_ioat(int sc, int rc, std::uint64_t src,
                            std::uint64_t dst, std::size_t n);
  XferOutcome knem(int sc, int rc, std::uint64_t src, std::uint64_t dst,
                   std::size_t n, bool dma, bool async);

  SimMachine machine_;
  Options opt_;
  MemSystem mem_;
  AddressAllocator alloc_;
  std::map<std::pair<int, int>, PairBufs> pair_bufs_;
};

/// The modeled interconnect link (src/transport/modeled.cpp): every
/// internode message costs lat_ns + bytes/bw, intranode traffic is free.
/// Defaults mirror make_transport's NEMO_NET_LAT_NS / NEMO_NET_BW_MBS.
struct NetLink {
  double lat_ns = 1500.0;
  double bw_mibs = 12000.0;
  [[nodiscard]] double xfer_ns(std::size_t bytes) const {
    return lat_ns +
           static_cast<double>(bytes) / (bw_mibs * 1024.0 * 1024.0 / 1e9);
  }
};

/// Internode wire time of one allreduce over `nodes` x `per_node` ranks.
/// Flat = the world-wide gather-fold at rank 0 (every off-node operand
/// crosses into node 0 serialized on its link) plus the binomial result
/// bcast; hier = the leader chain + the binomial leader bcast, so the hop
/// count drops from O(p) to O(nodes + log nodes). Intranode legs cost 0 on
/// the wire by construction.
double allreduce_net_ns(const NetLink& link, int nodes, int per_node,
                        std::size_t bytes, bool hier);

/// Internode wire time of one alltoall (`per_rank` bytes per pair). Flat =
/// pairwise exchange, every rank pushes its off-node rows individually
/// through its node's link; hier = leaders exchange one combined
/// per_node x per_node block per remote node, amortizing the per-message
/// latency across the node's ranks.
double alltoall_net_ns(const NetLink& link, int nodes, int per_node,
                       std::size_t per_rank, bool hier);

}  // namespace nemo::sim
