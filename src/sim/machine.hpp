// Simulated-machine description: a Topology plus timing parameters for the
// cache/memory/syscall costs the LMT replay models charge.
//
// Defaults are calibrated to the paper's main host (Xeon E5345, 2.33 GHz,
// ~8 GiB/s memory bandwidth): a 64 KiB copy from memory costs ~8 us (§3.1)
// and a syscall ~100 ns.
#pragma once

#include <cstddef>

#include "common/common.hpp"
#include "common/topology.hpp"

namespace nemo::sim {

struct TimingParams {
  // Per-64B-line access costs by the level that served it.
  double l1_hit_ns = 1.2;
  double l2_hit_ns = 5.0;  ///< Clovertown L2 streaming.
  double c2c_ns = 6.5;     ///< Cache-to-cache transfer over the FSB.
  double mem_ns = 9.0;     ///< ~8 GiB/s FSB streaming reads.
  /// A cached write that misses costs a read-for-ownership plus the eventual
  /// writeback: twice the line transfers of a read. Streaming (NT) stores
  /// and DMA writes pay 1x.
  double write_rfo_factor = 1.5;

  // Protocol / kernel-entry costs.
  double syscall_ns = 100.0;     ///< Paper's figure for a raw syscall.
  double pipe_op_ns = 800.0;     ///< vmsplice/readv: VFS descriptor work.
  double vmsplice_page_ns = 40.0;  ///< Page attach (get_user_pages) per page.
  double vfs_setup_ns = 3000.0;  ///< Per-transfer pipe/VFS initialisation.
  double knem_cmd_ns = 1200.0;   ///< One KNEM ioctl (send or recv command).
  double pin_page_ns = 25.0;     ///< Buffer pinning per page (KNEM/I/OAT).
  double handshake_ns = 2500.0;  ///< RTS/CTS/FIN: cell enqueue + the other
                                 ///< side noticing it in its progress loop.

  // Producer/consumer synchronisation costs, which depend on whether the
  // flag lines bounce inside a shared cache or across the coherence fabric
  // ("much more synchronization ... when no cache is shared", §4.2).
  double ring_sync_shared_ns = 400.0;     ///< Per double-buffer chunk.
  double ring_sync_cross_ns = 8000.0;
  double pipe_sync_shared_ns = 1500.0;    ///< Per 64 KiB pipe window.
  double pipe_sync_cross_ns = 5000.0;

  // DMA engine (I/OAT) model.
  double dma_submit_ns = 1000.0;  ///< Physical-device doorbell, one per
                                  ///< ~8 descriptor pages (§4.2 startup).
  double dma_pages_per_doorbell = 8.0;
  double dma_line_ns = 15.0;      ///< Engine copy throughput per line.
  double dma_status_poll_ns = 300.0;

  /// Slowdown of a kernel-thread copy competing with the polling user
  /// process on the same core (§3.4/Fig. 6).
  double kthread_competition = 1.9;
};

struct SimMachine {
  Topology topo;
  TimingParams timing;
};

/// The paper's evaluation host: dual-socket quad-core E5345.
inline SimMachine e5345_machine() { return {xeon_e5345(), TimingParams{}}; }

/// The 6 MiB-L2 host (X5460) the paper cross-checks thresholds on.
inline SimMachine x5460_machine() {
  TimingParams t;
  // 3.16 GHz: slightly cheaper cache hits, same memory.
  t.l1_hit_ns = 0.9;
  t.l2_hit_ns = 4.2;
  return {xeon_x5460(), t};
}

/// Nehalem-like future part (§6): all cores behind one L3.
inline SimMachine nehalem_machine() {
  TimingParams t;
  t.mem_ns = 4.0;  // Integrated memory controller: ~2x the bandwidth.
  return {nehalem(), t};
}

/// Synthetic byte-address allocator for simulated buffers. Hands out
/// page-aligned, non-overlapping ranges of a fake physical address space.
class AddressAllocator {
 public:
  /// Start away from 0 so address 0 is never a valid buffer.
  AddressAllocator() : next_(1 << 20) {}

  std::uint64_t alloc(std::size_t bytes, std::size_t align = 4096) {
    next_ = round_up(next_, align);
    std::uint64_t a = next_;
    next_ += round_up(bytes, 64);
    return a;
  }

 private:
  std::uint64_t next_;
};

}  // namespace nemo::sim
