#include "sim/memsys.hpp"

namespace nemo::sim {

Cost MemSystem::charge(HitLevel lvl, bool write, bool nt) {
  Cost c;
  switch (lvl) {
    case HitLevel::kL1:
      c.cache_ns = machine_.timing.l1_hit_ns;
      break;
    case HitLevel::kL2:
      c.cache_ns = machine_.timing.l2_hit_ns;
      break;
    case HitLevel::kRemoteCache:
      // Served by another cache over the fabric: cheaper than DRAM but it
      // still occupies the bus (counted as mem for contention scaling).
      c.mem_ns = machine_.timing.c2c_ns *
                 (write && !nt ? machine_.timing.write_rfo_factor : 1.0);
      break;
    case HitLevel::kMem:
      // A cached write miss performs read-for-ownership + writeback; NT
      // stores and reads move one line.
      c.mem_ns = machine_.timing.mem_ns *
                 (write && !nt ? machine_.timing.write_rfo_factor : 1.0);
      break;
  }
  return c;
}

Cost MemSystem::read(int core, std::uint64_t addr, std::size_t n) {
  Cost total;
  std::uint64_t first = round_down(addr, kCacheLine);
  std::uint64_t last = round_down(addr + (n ? n - 1 : 0), kCacheLine);
  for (std::uint64_t a = first; a <= last; a += kCacheLine)
    total += charge(caches_.access(core, a, /*write=*/false), false, false);
  return total;
}

Cost MemSystem::write(int core, std::uint64_t addr, std::size_t n, bool nt) {
  Cost total;
  std::uint64_t first = round_down(addr, kCacheLine);
  std::uint64_t last = round_down(addr + (n ? n - 1 : 0), kCacheLine);
  for (std::uint64_t a = first; a <= last; a += kCacheLine)
    total += charge(caches_.access(core, a, /*write=*/true, nt), true, nt);
  return total;
}

Cost MemSystem::copy(int core, std::uint64_t dst, std::uint64_t src,
                     std::size_t n, bool nt_dst) {
  Cost total;
  std::size_t off = 0;
  while (off < n) {
    std::size_t chunk = n - off < kCacheLine ? n - off : kCacheLine;
    total += charge(caches_.access(core, src + off, /*write=*/false), false,
                    false);
    total += charge(caches_.access(core, dst + off, /*write=*/true, nt_dst),
                    true, nt_dst);
    off += chunk;
  }
  return total;
}

Cost MemSystem::touch(int core, std::uint64_t addr, std::size_t n) {
  Cost total;
  std::uint64_t first = round_down(addr, kCacheLine);
  std::uint64_t last = round_down(addr + (n ? n - 1 : 0), kCacheLine);
  for (std::uint64_t a = first; a <= last; a += kCacheLine) {
    total += charge(caches_.access(core, a, /*write=*/false), false, false);
    // The write after the read hits what the read just filled; charge L1.
    caches_.access(core, a, /*write=*/true);
    total.cache_ns += machine_.timing.l1_hit_ns;
  }
  return total;
}

Cost MemSystem::dma_copy(std::uint64_t dst, std::uint64_t src,
                         std::size_t n) {
  Cost total;
  std::uint64_t first_d = round_down(dst, kCacheLine);
  std::uint64_t last_d = round_down(dst + (n ? n - 1 : 0), kCacheLine);
  for (std::uint64_t a = first_d; a <= last_d; a += kCacheLine)
    caches_.dma_write(a);
  (void)src;  // DMA reads leave cache state untouched.
  std::size_t lines = static_cast<std::size_t>((last_d - first_d) / kCacheLine) + 1;
  total.mem_ns = machine_.timing.dma_line_ns * static_cast<double>(lines);
  return total;
}

}  // namespace nemo::sim
