#include "sim/cache_sim.hpp"

#include <algorithm>

namespace nemo::sim {

CacheLevel::CacheLevel(std::size_t size_bytes, std::size_t line,
                       unsigned assoc)
    : assoc_(assoc), line_shift_(log2_exact(line)) {
  NEMO_ASSERT(is_pow2(line));
  std::size_t lines = size_bytes / line;
  NEMO_ASSERT(lines >= assoc);
  sets_ = lines / assoc;
  // Round sets down to a power of two so set indexing is a mask (real
  // caches are organised this way; a 4 MiB 16-way cache has 4096 sets).
  while (!is_pow2(sets_)) --sets_;
  ways_.assign(sets_ * assoc_, kEmpty);
}

bool CacheLevel::access(std::uint64_t line_addr, bool allocate) {
  std::uint64_t idx = line_addr >> line_shift_;
  std::size_t set = static_cast<std::size_t>(idx) & (sets_ - 1);
  std::uint64_t* w = &ways_[set * assoc_];
  for (unsigned i = 0; i < assoc_; ++i) {
    if (w[i] == idx) {
      // Move to front (MRU).
      for (unsigned j = i; j > 0; --j) w[j] = w[j - 1];
      w[0] = idx;
      ++hits_;
      return true;
    }
  }
  ++misses_;
  if (allocate) {
    for (unsigned j = assoc_ - 1; j > 0; --j) w[j] = w[j - 1];
    w[0] = idx;
  }
  return false;
}

void CacheLevel::invalidate(std::uint64_t line_addr) {
  std::uint64_t idx = line_addr >> line_shift_;
  std::size_t set = static_cast<std::size_t>(idx) & (sets_ - 1);
  std::uint64_t* w = &ways_[set * assoc_];
  for (unsigned i = 0; i < assoc_; ++i) {
    if (w[i] == idx) {
      // Compact: shift the rest up, empty the LRU slot.
      for (unsigned j = i; j + 1 < assoc_; ++j) w[j] = w[j + 1];
      w[assoc_ - 1] = kEmpty;
      return;
    }
  }
}

bool CacheLevel::contains(std::uint64_t line_addr) const {
  std::uint64_t idx = line_addr >> line_shift_;
  std::size_t set = static_cast<std::size_t>(idx) & (sets_ - 1);
  const std::uint64_t* w = &ways_[set * assoc_];
  for (unsigned i = 0; i < assoc_; ++i)
    if (w[i] == idx) return true;
  return false;
}

void CacheLevel::flush() {
  std::fill(ways_.begin(), ways_.end(), kEmpty);
  reset_stats();
}

CacheSystem::CacheSystem(const Topology& topo) : topo_(topo) {
  topo_.validate();
  levels_.reserve(topo_.caches.size());
  for (const auto& d : topo_.caches) {
    levels_.emplace_back(d.size_bytes, d.line_bytes, d.associativity);
    domain_level_.push_back(d.level);
  }
  cores_.resize(static_cast<std::size_t>(topo_.num_cores));
  for (int c = 0; c < topo_.num_cores; ++c) {
    auto& h = cores_[static_cast<std::size_t>(c)].levels;
    for (std::size_t i = 0; i < topo_.caches.size(); ++i)
      if (topo_.caches[i].contains(c)) h.push_back(i);
    std::sort(h.begin(), h.end(), [&](std::size_t a, std::size_t b) {
      return domain_level_[a] < domain_level_[b];
    });
  }
}

HitLevel CacheSystem::access(int core, std::uint64_t addr, bool write,
                             bool nt) {
  const auto& h = cores_[static_cast<std::size_t>(core)].levels;

  // Is the line held by a cache outside this core's hierarchy? A miss that
  // can be served by cache-to-cache transfer over the fabric is cheaper than
  // DRAM — this is what keeps cross-die copies fast while working sets still
  // fit somebody's cache.
  auto in_remote = [&] {
    for (std::size_t i = 0; i < levels_.size(); ++i) {
      bool mine = false;
      for (std::size_t m : h) mine |= (m == i);
      if (!mine && levels_[i].contains(addr)) return true;
    }
    return false;
  };
  bool remote = in_remote();

  if (write) {
    // Write-invalidate coherence: caches outside this hierarchy lose the
    // line.
    for (std::size_t i = 0; i < levels_.size(); ++i) {
      bool mine = false;
      for (std::size_t m : h) mine |= (m == i);
      if (!mine) levels_[i].invalidate(addr);
    }
    if (nt) {
      // Streaming store: bypasses this core's caches too (and drops any
      // stale copy they hold).
      for (std::size_t m : h) levels_[m].invalidate(addr);
      return HitLevel::kMem;
    }
  }

  // Walk inside-out; allocate in every level missed (inclusive fill).
  HitLevel served = remote ? HitLevel::kRemoteCache : HitLevel::kMem;
  for (std::size_t depth = 0; depth < h.size(); ++depth) {
    if (levels_[h[depth]].access(addr, /*allocate=*/true)) {
      served = domain_level_[h[depth]] == 1 ? HitLevel::kL1 : HitLevel::kL2;
      break;
    }
  }
  if (!write && served == HitLevel::kRemoteCache) {
    // Migratory approximation of MESI: a read served cache-to-cache takes
    // ownership of the line, so the producer's next write pays coherence
    // again. This is the ping-pong that makes the double-buffer's copy
    // buffer expensive across dies while staying free inside a shared L2.
    for (std::size_t i = 0; i < levels_.size(); ++i) {
      bool mine = false;
      for (std::size_t m : h) mine |= (m == i);
      if (!mine) levels_[i].invalidate(addr);
    }
  }
  return served;
}

void CacheSystem::dma_write(std::uint64_t addr) {
  for (auto& lvl : levels_) lvl.invalidate(addr);
}

std::uint64_t CacheSystem::l2_misses() const {
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < levels_.size(); ++i)
    if (domain_level_[i] >= 2) n += levels_[i].misses();
  return n;
}

std::uint64_t CacheSystem::l1_misses() const {
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < levels_.size(); ++i)
    if (domain_level_[i] == 1) n += levels_[i].misses();
  return n;
}

void CacheSystem::reset_stats() {
  for (auto& lvl : levels_) lvl.reset_stats();
}

void CacheSystem::flush_all() {
  for (auto& lvl : levels_) lvl.flush();
}

}  // namespace nemo::sim
