#include "sim/lmt_models.hpp"

#include <algorithm>

namespace nemo::sim {

namespace {
constexpr std::size_t kPage = 4096;

double pages_of(std::size_t n) {
  return static_cast<double>((n + kPage - 1) / kPage);
}
}  // namespace

const char* to_string(Strategy s) {
  switch (s) {
    case Strategy::kDefault: return "default";
    case Strategy::kDefaultNt: return "default-nt";
    case Strategy::kVmsplice: return "vmsplice";
    case Strategy::kVmspliceWritev: return "vmsplice-writev";
    case Strategy::kKnem: return "knem";
    case Strategy::kKnemDma: return "knem+ioat";
    case Strategy::kKnemAsyncCopy: return "knem-async-copy";
    case Strategy::kKnemAsyncDma: return "knem-async-ioat";
    case Strategy::kVmspliceIoat: return "vmsplice+ioat";
  }
  return "?";
}

LmtModels::LmtModels(SimMachine machine, Options opt)
    : machine_(std::move(machine)), opt_(opt), mem_(machine_) {}

LmtModels::PairBufs& LmtModels::pair_bufs(int a, int b) {
  auto key = std::make_pair(a, b);
  auto it = pair_bufs_.find(key);
  if (it != pair_bufs_.end()) return it->second;
  PairBufs pb;
  pb.ring = alloc_.alloc(static_cast<std::size_t>(opt_.ring_bufs) *
                         opt_.ring_buf_bytes);
  pb.pipebuf = alloc_.alloc(opt_.pipe_window);
  return pair_bufs_.emplace(key, pb).first->second;
}

void LmtModels::reset() {
  mem_.caches().flush_all();
}

// --- Default double-buffered LMT ---------------------------------------------

XferOutcome LmtModels::default_shm(int sc, int rc, std::uint64_t src,
                                   std::uint64_t dst, std::size_t n,
                                   PairBufs& pb, bool nt) {
  const TimingParams& t = mem_.timing();
  bool shared =
      mem_.machine().topo.shared_cache(sc, rc).has_value();
  double chunk_sync =
      shared ? t.ring_sync_shared_ns : t.ring_sync_cross_ns;
  XferOutcome out;
  out.fixed_ns += 2 * t.handshake_ns;  // RTS + CTS.

  // Pipelined chunk schedule over ring_bufs buffers:
  //   S_i = max(S_{i-1}, R_{i-bufs}) + ts_i   (buffer reuse gate)
  //   R_i = max(S_i, R_{i-1}) + tr_i
  std::vector<double> S, R;
  std::size_t off = 0;
  std::size_t i = 0;
  double sender_busy = 0, recv_busy = 0, cache_ns = 0, mem_ns = 0;
  while (off < n) {
    std::size_t chunk = std::min(opt_.ring_buf_bytes, n - off);
    std::uint64_t slot =
        pb.ring + (i % opt_.ring_bufs) * opt_.ring_buf_bytes;
    // Copy #1 streams into the slot only on non-shared pairs (a cached
    // slot write is what makes the receiver's slot read hit a shared L2);
    // copy #2's destination streams whenever the NT path is on.
    Cost ts = mem_.copy(sc, slot, src + off, chunk, nt && !shared);
    Cost tr = mem_.copy(rc, dst + off, slot, chunk, nt);
    double prevS = i > 0 ? S[i - 1] : 0;
    double reuse = i >= opt_.ring_bufs ? R[i - opt_.ring_bufs] : 0;
    double s_done = std::max(prevS, reuse) + ts.total() + chunk_sync / 2;
    double prevR = i > 0 ? R[i - 1] : 0;
    double r_done = std::max(s_done, prevR) + tr.total() + chunk_sync / 2;
    S.push_back(s_done);
    R.push_back(r_done);
    sender_busy += ts.total() + chunk_sync / 2;
    recv_busy += tr.total() + chunk_sync / 2;
    cache_ns += ts.cache_ns + tr.cache_ns;
    mem_ns += ts.mem_ns + tr.mem_ns;
    off += chunk;
    ++i;
  }
  // Both copies stream concurrently but share one memory bus: the pipeline
  // can only overlap the cache-served portions. Data time is the pipelined
  // schedule or the serialized memory traffic, whichever dominates.
  double sched_ns = R.empty() ? 0 : R.back();
  double data_ns = std::max(sched_ns, mem_ns);
  double raw = cache_ns + mem_ns;
  double scale = raw > 0 ? std::min(1.0, data_ns / raw) : 0;
  out.cache_ns = cache_ns * scale;
  out.mem_ns = mem_ns * scale;
  out.fixed_ns += data_ns - (out.cache_ns + out.mem_ns);
  out.sender_busy_ns = sender_busy;
  out.recv_busy_ns = recv_busy;
  return out;
}

// --- vmsplice / writev LMT ---------------------------------------------------

XferOutcome LmtModels::vmsplice(int sc, int rc, std::uint64_t src,
                                std::uint64_t dst, std::size_t n,
                                PairBufs& pb, bool writev) {
  const TimingParams& t = mem_.timing();
  bool shared =
      mem_.machine().topo.shared_cache(sc, rc).has_value();
  double window_sync =
      shared ? t.pipe_sync_shared_ns : t.pipe_sync_cross_ns;
  XferOutcome out;
  out.fixed_ns += 2 * t.handshake_ns + t.vfs_setup_ns;  // RTS + CTS + VFS.
  if (!writev) out.fixed_ns += t.handshake_ns;          // FIN (page reuse).

  std::vector<double> S, R;
  std::size_t off = 0, i = 0;
  double sender_busy = 0, recv_busy = 0, cache_ns = 0, mem_ns = 0;
  while (off < n) {
    std::size_t chunk = std::min(opt_.pipe_window, n - off);
    double ts_fixed = t.syscall_ns + t.pipe_op_ns;
    Cost ts{};  // Data cost on the sender.
    if (writev) {
      // Copy #1 into the kernel's pipe buffer.
      ts = mem_.copy(sc, pb.pipebuf, src + off, chunk);
    } else {
      // Page attach only: no data touched.
      ts_fixed += t.vmsplice_page_ns * pages_of(chunk);
    }
    double tr_fixed = t.syscall_ns + t.pipe_op_ns + window_sync;
    // Receiver copy: from the source pages (vmsplice) or pipe buffer.
    Cost tr = writev ? mem_.copy(rc, dst + off, pb.pipebuf, chunk)
                     : mem_.copy(rc, dst + off, src + off, chunk);

    double prevS = i > 0 ? S[i - 1] : 0;
    double reuse = i >= 1 ? R[i - 1] : 0;  // One pipe window in flight.
    double s_done = std::max(prevS, reuse) + ts_fixed + ts.total();
    double prevR = i > 0 ? R[i - 1] : 0;
    double r_done = std::max(s_done, prevR) + tr_fixed + tr.total();
    S.push_back(s_done);
    R.push_back(r_done);
    sender_busy += ts_fixed + ts.total();
    recv_busy += tr_fixed + tr.total();
    cache_ns += ts.cache_ns + tr.cache_ns;
    mem_ns += ts.mem_ns + tr.mem_ns;
    off += chunk;
    ++i;
  }
  // writev's two concurrent copies share the memory bus like the default
  // LMT; vmsplice has a single data-touching side so the schedule stands.
  double sched_ns = R.empty() ? 0 : R.back();
  double data_ns = writev ? std::max(sched_ns, mem_ns) : sched_ns;
  double raw = cache_ns + mem_ns;
  // Fixed syscall costs are embedded in the schedule; fold the difference
  // between schedule time and pure copy time into fixed_ns.
  double copy_part = std::min(raw, data_ns);
  double scale = raw > 0 ? copy_part / raw : 0;
  out.cache_ns = cache_ns * scale;
  out.mem_ns = mem_ns * scale;
  out.fixed_ns += data_ns - copy_part;
  out.sender_busy_ns = sender_busy;
  out.recv_busy_ns = recv_busy;
  return out;
}

// --- KNEM LMT ------------------------------------------------------------------

XferOutcome LmtModels::knem(int /*sc*/, int rc, std::uint64_t src,
                            std::uint64_t dst, std::size_t n, bool dma,
                            bool async) {
  const TimingParams& t = mem_.timing();
  XferOutcome out;
  // RTS + FIN (no CTS), one send command, one receive command.
  out.fixed_ns += 2 * t.handshake_ns + 2 * t.knem_cmd_ns;
  // Send command pins the sender buffer (always, §3.3).
  double pin_send = t.pin_page_ns * pages_of(n);
  out.fixed_ns += pin_send;
  out.sender_busy_ns += t.knem_cmd_ns + pin_send + t.handshake_ns;

  if (!dma) {
    Cost c = mem_.copy(rc, dst, src, n);
    double copy_ns = c.total();
    if (async) {
      // Kernel thread competes with the polling receiver process for the
      // same core (§3.4, Fig. 6): the effective copy rate drops.
      copy_ns *= t.kthread_competition;
      c.cache_ns *= t.kthread_competition;
      c.mem_ns *= t.kthread_competition;
    }
    out.cache_ns = c.cache_ns;
    out.mem_ns = c.mem_ns;
    out.recv_busy_ns += t.knem_cmd_ns + copy_ns;  // Core is busy either way.
    return out;
  }

  // I/OAT path: pin the receive buffer too, submit one descriptor per
  // physically-contiguous chunk (page), engine copies in the background
  // without touching any cache.
  double pin_recv = t.pin_page_ns * pages_of(n);
  double submit =
      t.dma_submit_ns * pages_of(n) / t.dma_pages_per_doorbell;
  Cost c = mem_.dma_copy(dst, src, n);
  out.fixed_ns += pin_recv;
  out.recv_busy_ns += t.knem_cmd_ns + pin_recv + submit;
  if (async) {
    // Submission overlaps the engine; completion is the in-order trailing
    // status write, polled from user space.
    out.fixed_ns += std::max(submit, 0.0) * 0.25 + t.dma_status_poll_ns;
    out.mem_ns = c.mem_ns;
  } else {
    // Synchronous: submit fully, then poll until the engine drains.
    out.fixed_ns += submit + t.dma_status_poll_ns;
    out.mem_ns = c.mem_ns;
    out.recv_busy_ns += c.mem_ns;  // The core spins while polling.
  }
  return out;
}

// §6 future work: "integrating I/OAT offloading into vmsplice-based
// transfers". The sender still attaches pages window by window; the
// receiver, instead of copying with readv, submits each drained window to
// the DMA engine. Keeps vmsplice's ubiquity-era flow control (64 KiB
// windows, VFS costs) while gaining I/OAT's zero-pollution copy.
XferOutcome LmtModels::vmsplice_ioat(int /*sc*/, int /*rc*/,
                                     std::uint64_t src,
                                     std::uint64_t dst, std::size_t n) {
  const TimingParams& t = mem_.timing();
  XferOutcome out;
  out.fixed_ns += 3 * t.handshake_ns + t.vfs_setup_ns;  // RTS/CTS/FIN + VFS.
  std::size_t off = 0;
  double engine_busy = 0, fixed = 0, sender_busy = 0, recv_busy = 0;
  while (off < n) {
    std::size_t chunk = std::min(opt_.pipe_window, n - off);
    double ts_fixed = t.syscall_ns + t.pipe_op_ns +
                      t.vmsplice_page_ns * pages_of(chunk);
    double submit =
        t.dma_submit_ns * pages_of(chunk) / t.dma_pages_per_doorbell;
    Cost c = mem_.dma_copy(dst + off, src + off, chunk);
    // Sender attach and receiver submission overlap with the engine; the
    // engine itself is the bottleneck for the payload.
    fixed += std::max(ts_fixed, submit + t.syscall_ns);
    engine_busy += c.mem_ns;
    sender_busy += ts_fixed;
    recv_busy += submit + t.syscall_ns + t.dma_status_poll_ns;
    off += chunk;
  }
  // Per-window control overlaps the previous window's engine copy.
  out.fixed_ns += std::max(fixed, engine_busy) - engine_busy +
                  t.dma_status_poll_ns;
  out.mem_ns = engine_busy;
  out.sender_busy_ns = sender_busy;
  out.recv_busy_ns = recv_busy;
  return out;
}

XferOutcome LmtModels::transfer(Strategy s, int sender_core, int recv_core,
                                std::uint64_t src, std::uint64_t dst,
                                std::size_t bytes) {
  PairBufs& pb = pair_bufs(sender_core, recv_core);
  switch (s) {
    case Strategy::kDefault:
      return default_shm(sender_core, recv_core, src, dst, bytes, pb, false);
    case Strategy::kDefaultNt:
      return default_shm(sender_core, recv_core, src, dst, bytes, pb,
                         bytes >= opt_.nt_min);
    case Strategy::kVmsplice:
      return vmsplice(sender_core, recv_core, src, dst, bytes, pb, false);
    case Strategy::kVmspliceWritev:
      return vmsplice(sender_core, recv_core, src, dst, bytes, pb, true);
    case Strategy::kKnem:
      return knem(sender_core, recv_core, src, dst, bytes, false, false);
    case Strategy::kKnemDma:
      return knem(sender_core, recv_core, src, dst, bytes, true, false);
    case Strategy::kKnemAsyncCopy:
      return knem(sender_core, recv_core, src, dst, bytes, false, true);
    case Strategy::kKnemAsyncDma:
      return knem(sender_core, recv_core, src, dst, bytes, true, true);
    case Strategy::kVmspliceIoat:
      return vmsplice_ioat(sender_core, recv_core, src, dst, bytes);
  }
  NEMO_ASSERT(false);
  return {};
}

double LmtModels::pingpong_mibs(Strategy s, int core_a, int core_b,
                                std::size_t bytes, int iters) {
  reset();
  std::uint64_t buf_a = alloc_.alloc(bytes);
  std::uint64_t buf_b = alloc_.alloc(bytes);
  double last_oneway = 0;
  for (int i = 0; i < iters; ++i) {
    XferOutcome ab = transfer(s, core_a, core_b, buf_a, buf_b, bytes);
    XferOutcome ba = transfer(s, core_b, core_a, buf_b, buf_a, bytes);
    last_oneway = (ab.total() + ba.total()) / 2.0;
  }
  if (last_oneway <= 0) return 0;
  return (static_cast<double>(bytes) / (1024.0 * 1024.0)) /
         (last_oneway * 1e-9);
}

std::uint64_t LmtModels::pingpong_l2_misses(Strategy s, int core_a,
                                            int core_b, std::size_t bytes,
                                            int iters) {
  reset();
  std::uint64_t buf_a = alloc_.alloc(bytes);
  std::uint64_t buf_b = alloc_.alloc(bytes);
  // Warm caches with one round, then count.
  transfer(s, core_a, core_b, buf_a, buf_b, bytes);
  transfer(s, core_b, core_a, buf_b, buf_a, bytes);
  mem_.caches().reset_stats();
  for (int i = 0; i < iters; ++i) {
    transfer(s, core_a, core_b, buf_a, buf_b, bytes);
    transfer(s, core_b, core_a, buf_b, buf_a, bytes);
  }
  return mem_.caches().l2_misses() / static_cast<std::uint64_t>(iters);
}

namespace {

/// Pairwise-exchange schedule: at step k (1..n-1), rank i exchanges with
/// i^k (n must be a power of two — 8 in the paper's Fig. 7).
std::vector<std::pair<int, int>> step_pairs(int n, int k) {
  std::vector<std::pair<int, int>> out;
  for (int i = 0; i < n; ++i) {
    int j = i ^ k;
    if (i < j) out.emplace_back(i, j);
  }
  return out;
}

}  // namespace

double LmtModels::alltoall_mibs(Strategy s, const std::vector<int>& cores,
                                std::size_t per_pair, int iters) {
  int n = static_cast<int>(cores.size());
  NEMO_ASSERT((n & (n - 1)) == 0 && n >= 2);
  reset();
  // Per-rank send/recv matrices (block (i -> j) at sbuf[i] + j*per_pair).
  std::vector<std::uint64_t> sbuf, rbuf;
  for (int i = 0; i < n; ++i) {
    sbuf.push_back(alloc_.alloc(per_pair * static_cast<std::size_t>(n)));
    rbuf.push_back(alloc_.alloc(per_pair * static_cast<std::size_t>(n)));
  }
  double round_ns = 0;
  for (int it = 0; it < iters; ++it) {
    round_ns = 0;
    for (int k = 1; k < n; ++k) {
      auto pairs = step_pairs(n, k);
      double flows = static_cast<double>(pairs.size()) * 2.0;
      double contention = 1.0 + opt_.contention_per_flow * (flows - 1.0);
      double step_ns = 0;
      for (auto [i, j] : pairs) {
        XferOutcome a = transfer(
            s, cores[static_cast<std::size_t>(i)],
            cores[static_cast<std::size_t>(j)],
            sbuf[static_cast<std::size_t>(i)] +
                static_cast<std::uint64_t>(j) * per_pair,
            rbuf[static_cast<std::size_t>(j)] +
                static_cast<std::uint64_t>(i) * per_pair,
            per_pair);
        XferOutcome b = transfer(
            s, cores[static_cast<std::size_t>(j)],
            cores[static_cast<std::size_t>(i)],
            sbuf[static_cast<std::size_t>(j)] +
                static_cast<std::uint64_t>(i) * per_pair,
            rbuf[static_cast<std::size_t>(i)] +
                static_cast<std::uint64_t>(j) * per_pair,
            per_pair);
        double pair_ns = std::max(
            a.fixed_ns + a.cache_ns + a.mem_ns * contention,
            b.fixed_ns + b.cache_ns + b.mem_ns * contention);
        step_ns = std::max(step_ns, pair_ns);
      }
      round_ns += step_ns;
    }
  }
  // IMB reports aggregate bytes moved per round: n ranks each send (n-1)
  // blocks.
  double bytes = static_cast<double>(n) * static_cast<double>(n - 1) *
                 static_cast<double>(per_pair);
  return (bytes / (1024.0 * 1024.0)) / (round_ns * 1e-9);
}

std::uint64_t LmtModels::alltoall_l2_misses(Strategy s,
                                            const std::vector<int>& cores,
                                            std::size_t per_pair, int iters) {
  int n = static_cast<int>(cores.size());
  NEMO_ASSERT((n & (n - 1)) == 0 && n >= 2);
  reset();
  std::vector<std::uint64_t> sbuf, rbuf;
  for (int i = 0; i < n; ++i) {
    sbuf.push_back(alloc_.alloc(per_pair * static_cast<std::size_t>(n)));
    rbuf.push_back(alloc_.alloc(per_pair * static_cast<std::size_t>(n)));
  }
  auto one_round = [&] {
    for (int k = 1; k < n; ++k)
      for (auto [i, j] : step_pairs(n, k)) {
        transfer(s, cores[static_cast<std::size_t>(i)],
                 cores[static_cast<std::size_t>(j)],
                 sbuf[static_cast<std::size_t>(i)] +
                     static_cast<std::uint64_t>(j) * per_pair,
                 rbuf[static_cast<std::size_t>(j)] +
                     static_cast<std::uint64_t>(i) * per_pair,
                 per_pair);
        transfer(s, cores[static_cast<std::size_t>(j)],
                 cores[static_cast<std::size_t>(i)],
                 sbuf[static_cast<std::size_t>(j)] +
                     static_cast<std::uint64_t>(i) * per_pair,
                 rbuf[static_cast<std::size_t>(i)] +
                     static_cast<std::uint64_t>(j) * per_pair,
                 per_pair);
      }
  };
  one_round();  // Warm-up.
  mem_.caches().reset_stats();
  for (int it = 0; it < iters; ++it) one_round();
  return mem_.caches().l2_misses() / static_cast<std::uint64_t>(iters);
}

// --- Collective replay accounting (fig7 / coll_sweep) -----------------------

LmtModels::CollOutcome LmtModels::bcast_coll(bool shm,
                                             const std::vector<int>& cores,
                                             std::size_t bytes, int iters) {
  int n = static_cast<int>(cores.size());
  NEMO_ASSERT(n >= 2);
  reset();
  std::vector<std::uint64_t> buf;
  for (int i = 0; i < n; ++i) buf.push_back(alloc_.alloc(bytes));
  std::uint64_t slot = alloc_.alloc(bytes);  // Arena staging region.

  CollOutcome out;
  double round_ns = 0;
  auto one_round = [&](bool count_copies) {
    round_ns = 0;
    if (!shm) {
      // Binomial tree from rank 0: at step k, ranks below 2^k forward to
      // rank + 2^k. Each hop re-copies the full payload through the pair's
      // ring (2 copies); hops within a step run concurrently.
      for (int k = 1; k < n; k <<= 1) {
        double step_ns = 0;
        std::size_t flows = 0;
        for (int src = 0; src + k < n && src < k; ++src) ++flows;
        double contention =
            1.0 + opt_.contention_per_flow *
                      (static_cast<double>(flows > 0 ? flows : 1) - 1.0);
        for (int src = 0; src < k && src + k < n; ++src) {
          int dst = src + k;
          XferOutcome x = transfer(Strategy::kDefault,
                                   cores[static_cast<std::size_t>(src)],
                                   cores[static_cast<std::size_t>(dst)],
                                   buf[static_cast<std::size_t>(src)],
                                   buf[static_cast<std::size_t>(dst)], bytes);
          step_ns = std::max(step_ns,
                             x.fixed_ns + x.cache_ns + x.mem_ns * contention);
          if (count_copies) out.copy_bytes += 2 * bytes;
        }
        round_ns += step_ns;
      }
      return;
    }
    // Arena path: the root streams once into the slotted arena (NT past the
    // tuned threshold), then every reader pulls concurrently. The doorbell
    // pipelining is approximated by overlapping nothing — conservative.
    Cost w = mem_.copy(cores[0], slot, buf[0], bytes,
                       bytes >= opt_.nt_min);
    double root_ns = w.total();
    if (count_copies) out.copy_bytes += bytes;
    double contention =
        1.0 + opt_.contention_per_flow * (static_cast<double>(n - 1) - 1.0);
    double read_ns = 0;
    for (int i = 1; i < n; ++i) {
      Cost c = mem_.copy(cores[static_cast<std::size_t>(i)],
                         buf[static_cast<std::size_t>(i)], slot, bytes);
      read_ns = std::max(read_ns, c.cache_ns + c.mem_ns * contention);
      if (count_copies) out.copy_bytes += bytes;
    }
    round_ns = root_ns + read_ns;
  };

  one_round(true);  // Warm-up (and count one round's copy volume).
  mem_.caches().reset_stats();
  for (int it = 0; it < iters; ++it) one_round(false);
  out.l2_misses =
      mem_.caches().l2_misses() / static_cast<std::uint64_t>(iters);
  out.mibs = round_ns > 0 ? (static_cast<double>(bytes) / (1024.0 * 1024.0)) /
                                (round_ns * 1e-9)
                          : 0;
  return out;
}

LmtModels::CollOutcome LmtModels::allreduce_coll(bool shm,
                                                 const std::vector<int>& cores,
                                                 std::size_t bytes, int iters,
                                                 std::size_t slot_bytes) {
  int n = static_cast<int>(cores.size());
  NEMO_ASSERT(n >= 2);
  reset();
  std::vector<std::uint64_t> in, out;
  for (int i = 0; i < n; ++i) {
    in.push_back(alloc_.alloc(bytes));
    out.push_back(alloc_.alloc(bytes));
  }
  std::uint64_t slot = alloc_.alloc(slot_bytes);  // Leader staging region.

  CollOutcome out_c;
  // Per-operand combine cost on the folding core: the memory-system part is
  // charged by the copy/touch models below; this is the ALU chain, divided
  // by the fold kernel's lane width (Options::fold_lanes).
  double alu_ns = opt_.fold_ns_per_byte * static_cast<double>(bytes) /
                  std::max(1.0, opt_.fold_lanes);
  double round_ns = 0;
  auto one_round = [&](bool count_copies) {
    round_ns = 0;
    if (!shm) {
      // Linear gather-fold at rank 0 (each operand crosses the pair ring:
      // 2 copies) followed by a binomial result bcast.
      double gather_ns = 0;
      for (int w = 1; w < n; ++w) {
        XferOutcome x =
            transfer(Strategy::kDefault, cores[static_cast<std::size_t>(w)],
                     cores[0], in[static_cast<std::size_t>(w)],
                     out[0], bytes);
        Cost fold = mem_.touch(cores[0], out[0], bytes);
        gather_ns += x.fixed_ns + x.cache_ns + x.mem_ns + fold.total() +
                     alu_ns;
        if (count_copies) out_c.copy_bytes += 2 * bytes;
      }
      double bcast_ns = 0;
      for (int k = 1; k < n; k <<= 1) {
        double step_ns = 0;
        for (int src = 0; src < k && src + k < n; ++src) {
          int dst = src + k;
          XferOutcome x = transfer(Strategy::kDefault,
                                   cores[static_cast<std::size_t>(src)],
                                   cores[static_cast<std::size_t>(dst)],
                                   out[static_cast<std::size_t>(src)],
                                   out[static_cast<std::size_t>(dst)], bytes);
          step_ns = std::max(step_ns, x.total());
          if (count_copies) out_c.copy_bytes += 2 * bytes;
        }
        bcast_ns += step_ns;
      }
      round_ns = gather_ns + bcast_ns;
      return;
    }
    // Arena v2 pipelined fold: writers deposit sub-chunks concurrently
    // (contended), the leader combines every operand in ascending rank
    // order, readers stream the folded chunks out behind the fold. Deposit,
    // fold, and read-back overlap chunk-wise, so the round costs
    // max(deposit, fold, read) plus one sub-chunk of fill latency at each
    // pipeline boundary — not their sum (PR 4's serialized-fold model).
    std::size_t sub = std::max<std::size_t>(slot_bytes / 4, 64);
    double contention =
        1.0 + opt_.contention_per_flow * (static_cast<double>(n - 1) - 1.0);
    double deposit_ns = 0;
    for (int w = 1; w < n; ++w) {
      Cost c = mem_.copy(cores[static_cast<std::size_t>(w)], slot,
                         in[static_cast<std::size_t>(w)], bytes);
      deposit_ns = std::max(deposit_ns, c.cache_ns + c.mem_ns * contention);
      if (count_copies) out_c.copy_bytes += bytes;
    }
    double fold_ns = 0;
    for (int w = 0; w < n; ++w) {
      Cost c = mem_.copy(cores[0], out[0], w == 0 ? in[0] : slot, bytes);
      // w == 0 seeds out with the leader's operand (pure copy, no combine).
      fold_ns += c.total() + (w == 0 ? 0.0 : alu_ns);
    }
    if (count_copies) out_c.copy_bytes += bytes;  // Leader's result chunks.
    double read_ns = 0;
    for (int i = 1; i < n; ++i) {
      Cost c = mem_.copy(cores[static_cast<std::size_t>(i)],
                         out[static_cast<std::size_t>(i)], slot, bytes);
      read_ns = std::max(read_ns, c.cache_ns + c.mem_ns * contention);
      if (count_copies) out_c.copy_bytes += bytes;
    }
    double chunk_ns =
        (deposit_ns + fold_ns + read_ns) *
        (static_cast<double>(sub) / static_cast<double>(std::max(bytes, sub)));
    round_ns = std::max({deposit_ns, fold_ns, read_ns}) + 2 * chunk_ns;
  };

  one_round(true);
  mem_.caches().reset_stats();
  for (int it = 0; it < iters; ++it) one_round(false);
  out_c.l2_misses =
      mem_.caches().l2_misses() / static_cast<std::uint64_t>(iters);
  out_c.mibs = round_ns > 0
                   ? (static_cast<double>(bytes) / (1024.0 * 1024.0)) /
                         (round_ns * 1e-9)
                   : 0;
  return out_c;
}

double LmtModels::barrier_coll_ns(bool tree, int nranks, int k) {
  NEMO_ASSERT(nranks >= 1 && k >= 2);
  // An arrival flag is one cache line bouncing between a spinner and the
  // publisher: charge one cache-to-cache transfer per polled flag (the
  // line always misses — another core just wrote it).
  double line_ns = machine_.timing.c2c_ns;
  if (!tree || nranks < 2)
    return static_cast<double>(nranks - 1) * line_ns + line_ns;
  // Parents at each level poll their <= k children sequentially; levels
  // telescope (a subtree's arrival folds into one flag), so the critical
  // path is depth * k line transfers plus the release line.
  int depth = 0;
  long reach = 1;
  while (reach < nranks) {
    reach = reach * k + 1;
    ++depth;
  }
  return static_cast<double>(depth) * static_cast<double>(k) * line_ns +
         line_ns;
}

LmtModels::CollOutcome LmtModels::alltoall_coll(bool shm,
                                                const std::vector<int>& cores,
                                                std::size_t per_pair,
                                                int iters) {
  int n = static_cast<int>(cores.size());
  NEMO_ASSERT((n & (n - 1)) == 0 && n >= 2);
  reset();
  std::vector<std::uint64_t> sbuf, rbuf;
  for (int i = 0; i < n; ++i) {
    sbuf.push_back(alloc_.alloc(per_pair * static_cast<std::size_t>(n)));
    rbuf.push_back(alloc_.alloc(per_pair * static_cast<std::size_t>(n)));
  }

  CollOutcome out;
  double round_ns = 0;
  auto one_round = [&](bool count_copies) {
    round_ns = 0;
    if (!shm) {
      // The pairwise exchange over the default ring: 2 copies per block.
      for (int k = 1; k < n; ++k) {
        auto pairs = step_pairs(n, k);
        double flows = static_cast<double>(pairs.size()) * 2.0;
        double contention = 1.0 + opt_.contention_per_flow * (flows - 1.0);
        double step_ns = 0;
        for (auto [i, j] : pairs) {
          XferOutcome a = transfer(
              Strategy::kDefault, cores[static_cast<std::size_t>(i)],
              cores[static_cast<std::size_t>(j)],
              sbuf[static_cast<std::size_t>(i)] +
                  static_cast<std::uint64_t>(j) * per_pair,
              rbuf[static_cast<std::size_t>(j)] +
                  static_cast<std::uint64_t>(i) * per_pair,
              per_pair);
          XferOutcome b = transfer(
              Strategy::kDefault, cores[static_cast<std::size_t>(j)],
              cores[static_cast<std::size_t>(i)],
              sbuf[static_cast<std::size_t>(j)] +
                  static_cast<std::uint64_t>(i) * per_pair,
              rbuf[static_cast<std::size_t>(i)] +
                  static_cast<std::uint64_t>(j) * per_pair,
              per_pair);
          if (count_copies) out.copy_bytes += 4 * per_pair;
          step_ns = std::max(
              step_ns,
              std::max(a.fixed_ns + a.cache_ns + a.mem_ns * contention,
                       b.fixed_ns + b.cache_ns + b.mem_ns * contention));
        }
        round_ns += step_ns;
      }
      return;
    }
    // Arena path, direct-read mode (the benches publish arena-resident send
    // matrices): every reader pulls each block straight from its writer's
    // buffer — one copy per block, half the ring path's volume. All n
    // readers stream concurrently.
    double contention =
        1.0 + opt_.contention_per_flow * (static_cast<double>(n) - 1.0);
    for (int j = 0; j < n; ++j) {
      double reader_ns = 0;
      for (int i = 0; i < n; ++i) {
        if (i == j) continue;
        Cost c = mem_.copy(cores[static_cast<std::size_t>(j)],
                           rbuf[static_cast<std::size_t>(j)] +
                               static_cast<std::uint64_t>(i) * per_pair,
                           sbuf[static_cast<std::size_t>(i)] +
                               static_cast<std::uint64_t>(j) * per_pair,
                           per_pair);
        reader_ns += c.cache_ns + c.mem_ns * contention;
        if (count_copies) out.copy_bytes += per_pair;
      }
      round_ns = std::max(round_ns, reader_ns);
    }
  };

  one_round(true);
  mem_.caches().reset_stats();
  for (int it = 0; it < iters; ++it) one_round(false);
  out.l2_misses =
      mem_.caches().l2_misses() / static_cast<std::uint64_t>(iters);
  double bytes = static_cast<double>(n) * static_cast<double>(n - 1) *
                 static_cast<double>(per_pair);
  out.mibs =
      round_ns > 0 ? (bytes / (1024.0 * 1024.0)) / (round_ns * 1e-9) : 0;
  return out;
}

LmtModels::IsOutcome LmtModels::is_run(Strategy s,
                                       const std::vector<int>& cores,
                                       std::size_t total_keys, int iters) {
  int n = static_cast<int>(cores.size());
  NEMO_ASSERT((n & (n - 1)) == 0 && n >= 2);
  reset();
  std::size_t keys_per_rank = total_keys / static_cast<std::size_t>(n);
  std::size_t local_bytes = keys_per_rank * 4;
  std::size_t per_pair = local_bytes / static_cast<std::size_t>(n);

  std::vector<std::uint64_t> keys, sbuf, rbuf;
  for (int i = 0; i < n; ++i) {
    keys.push_back(alloc_.alloc(local_bytes));
    sbuf.push_back(alloc_.alloc(local_bytes));
    rbuf.push_back(alloc_.alloc(local_bytes));
  }

  double total_ns = 0;
  for (int it = 0; it < iters; ++it) {
    // Local phase: rank and bucket the keys (read keys, write sendbuf).
    double local_ns = 0;
    for (int i = 0; i < n; ++i) {
      Cost c1 = mem_.touch(cores[static_cast<std::size_t>(i)],
                           keys[static_cast<std::size_t>(i)], local_bytes);
      Cost c2 =
          mem_.copy(cores[static_cast<std::size_t>(i)],
                    sbuf[static_cast<std::size_t>(i)],
                    keys[static_cast<std::size_t>(i)], local_bytes);
      local_ns = std::max(local_ns, c1.total() + c2.total());
    }
    // Key exchange: alltoallv of roughly equal buckets.
    double comm_ns = 0;
    for (int k = 1; k < n; ++k) {
      auto pairs = step_pairs(n, k);
      double flows = static_cast<double>(pairs.size()) * 2.0;
      double contention = 1.0 + opt_.contention_per_flow * (flows - 1.0);
      double step_ns = 0;
      for (auto [i, j] : pairs) {
        XferOutcome a = transfer(
            s, cores[static_cast<std::size_t>(i)],
            cores[static_cast<std::size_t>(j)],
            sbuf[static_cast<std::size_t>(i)] +
                static_cast<std::uint64_t>(j) * per_pair,
            rbuf[static_cast<std::size_t>(j)] +
                static_cast<std::uint64_t>(i) * per_pair,
            per_pair);
        XferOutcome b = transfer(
            s, cores[static_cast<std::size_t>(j)],
            cores[static_cast<std::size_t>(i)],
            sbuf[static_cast<std::size_t>(j)] +
                static_cast<std::uint64_t>(i) * per_pair,
            rbuf[static_cast<std::size_t>(i)] +
                static_cast<std::uint64_t>(j) * per_pair,
            per_pair);
        double pair_ns =
            std::max(a.fixed_ns + a.cache_ns + a.mem_ns * contention,
                     b.fixed_ns + b.cache_ns + b.mem_ns * contention);
        step_ns = std::max(step_ns, pair_ns);
      }
      comm_ns += step_ns;
    }
    // Final local ranking over received keys.
    double rank_ns = 0;
    for (int i = 0; i < n; ++i) {
      Cost c = mem_.touch(cores[static_cast<std::size_t>(i)],
                          rbuf[static_cast<std::size_t>(i)], local_bytes);
      rank_ns = std::max(rank_ns, c.total());
    }
    total_ns += local_ns + comm_ns + rank_ns;
  }
  IsOutcome out;
  out.seconds = total_ns * 1e-9;
  out.l2_misses = mem_.caches().l2_misses();
  return out;
}

// ---------------------------------------------------------------------------
// Modeled-interconnect wire time (the analytic side of the measured
// net_modeled_ns counters; fig7/coll_sweep print both next to each other).
// ---------------------------------------------------------------------------

double allreduce_net_ns(const NetLink& link, int nodes, int per_node,
                        std::size_t bytes, bool hier) {
  int p = nodes * per_node;
  if (nodes < 2) return 0.0;
  double x = link.xfer_ns(bytes);
  if (hier) {
    // Leader chain (N-1 sequential hops — the fold is order-dependent) +
    // binomial bcast of the result over the leaders.
    int rounds = 0;
    while ((1 << rounds) < nodes) ++rounds;
    return (nodes - 1 + rounds) * x;
  }
  // Flat gather-fold: all p - per_node off-node operands serialize into
  // node 0's link. The binomial result bcast crosses a link on every one of
  // its ceil(log2 p) critical-path rounds once ranks span nodes.
  int rounds = 0;
  while ((1 << rounds) < p) ++rounds;
  return (p - per_node) * x + rounds * x;
}

double alltoall_net_ns(const NetLink& link, int nodes, int per_node,
                       std::size_t per_rank, bool hier) {
  if (nodes < 2) return 0.0;
  auto m = static_cast<std::size_t>(per_node);
  if (hier) {
    // Each leader ships N-1 combined M x M blocks; links run the pairwise
    // steps concurrently, so one leader's send sequence is the wire time.
    return (nodes - 1) * link.xfer_ns(m * m * per_rank);
  }
  // Flat pairwise exchange: each node's link carries its M ranks' individual
  // rows to every off-node peer, M * (p - M) messages of per_rank bytes.
  return static_cast<double>(m) * static_cast<double>((nodes - 1) * per_node) *
         link.xfer_ns(per_rank);
}

}  // namespace nemo::sim
