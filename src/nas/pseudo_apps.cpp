// Pencil-sweep proxies for NAS bt/sp/lu: alternating-direction line sweeps
// over a 2D domain decomposed in one dimension, with boundary exchange per
// sweep. The compute-per-cell and halo-size knobs reproduce each kernel's
// comm/compute ratio — the property that makes their Table 1 rows flat
// across LMT strategies.
#include <cmath>
#include <vector>

#include "common/timing.hpp"
#include "nas/nas_common.hpp"

namespace nemo::nas {

NasResult run_pencil(core::Comm& comm, const PencilParams& p,
                     const std::string& name) {
  const int nranks = comm.size();
  const int rank = comm.rank();
  const int right = rank + 1 < nranks ? rank + 1 : -1;
  const int left = rank > 0 ? rank - 1 : -1;
  const std::size_t local_ny = p.ny / static_cast<std::size_t>(nranks);

  std::vector<double> u(p.nx * (local_ny + 2), 0.0);
  double seed = kNasSeed + rank;
  for (auto& v : u) v = randlc(&seed, kNasA);
  std::vector<double> halo_out(p.halo_bytes / sizeof(double));
  std::vector<double> halo_in(halo_out.size());

  auto cell_work = [&](double v, std::size_t x) {
    // A small fixed-length recurrence standing in for the block solves.
    double acc = v;
    for (int k = 0; k < p.compute_per_cell; ++k)
      acc = 0.5 * acc + 0.25 * std::sin(acc) +
            1e-3 * static_cast<double>(x % 7);
    return acc;
  };

  comm.barrier();
  Timer timer;

  int tag = 1700;
  for (int s = 0; s < p.sweeps; ++s) {
    // X sweep: local lines.
    for (std::size_t y = 1; y <= local_ny; ++y)
      for (std::size_t x = 1; x < p.nx; ++x) {
        std::size_t i = y * p.nx + x;
        u[i] = cell_work(0.5 * (u[i] + u[i - 1]), x);
      }
    // Y sweep needs the neighbour boundary line: pipelined downstream
    // dependency like LU's wavefront.
    std::size_t row_bytes = p.nx * sizeof(double);
    if (left >= 0) comm.recv(u.data(), row_bytes, left, tag + s);
    for (std::size_t y = 1; y <= local_ny; ++y)
      for (std::size_t x = 0; x < p.nx; ++x) {
        std::size_t i = y * p.nx + x;
        u[i] = cell_work(0.5 * (u[i] + u[i - p.nx]), x);
      }
    if (right >= 0)
      comm.send(u.data() + local_ny * p.nx, row_bytes, right, tag + s);

    // Periodic face exchange of a configurable halo block (bt/sp exchange
    // fat faces; lu thin ones).
    if (nranks > 1) {
      for (std::size_t i = 0; i < halo_out.size(); ++i)
        halo_out[i] = u[(i % (p.nx * local_ny)) + p.nx];
      int to = (rank + 1) % nranks;
      int from = (rank - 1 + nranks) % nranks;
      core::Request sq = comm.isend(halo_out.data(), p.halo_bytes, to,
                                    tag + 5000 + s);
      core::Request rq =
          comm.irecv(halo_in.data(), p.halo_bytes, from, tag + 5000 + s);
      comm.wait(sq);
      comm.wait(rq);
      for (std::size_t i = 0; i < halo_in.size() && i < p.nx; ++i)
        u[i + p.nx] += 1e-6 * halo_in[i];
    }
  }

  double seconds = timer.elapsed_s();
  double max_sec = 0;
  comm.allreduce_f64(&seconds, &max_sec, 1, core::Comm::ReduceOp::kMax);

  double local_sum = 0;
  for (std::size_t y = 1; y <= local_ny; ++y)
    for (std::size_t x = 0; x < p.nx; ++x) local_sum += u[y * p.nx + x];
  double sum = 0;
  comm.allreduce_f64(&local_sum, &sum, 1, core::Comm::ReduceOp::kSum);

  NasResult res;
  res.name = name + ".mini." + std::to_string(nranks);
  res.seconds = max_sec;
  res.verified = std::isfinite(sum);
  res.checksum = sum;
  return res;
}

}  // namespace nemo::nas
