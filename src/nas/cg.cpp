// Mini NAS CG: conjugate gradient on a random sparse symmetric positive-
// definite matrix, rows distributed across ranks. Each matvec allgathers the
// full vector (N doubles), producing the medium-large message mix of CG.
#include <cmath>
#include <vector>

#include "common/checksum.hpp"
#include "common/timing.hpp"
#include "nas/nas_common.hpp"

namespace nemo::nas {

namespace {

/// CSR slice of rows [row0, row0+nrows) of a deterministic SPD matrix:
/// strong diagonal plus nz_per_row symmetric-ish off-diagonal entries.
struct CsrSlice {
  std::size_t row0 = 0, nrows = 0, n = 0;
  std::vector<std::size_t> ptr;
  std::vector<std::size_t> col;
  std::vector<double> val;
};

CsrSlice build_slice(std::size_t n, std::size_t nz_per_row, std::size_t row0,
                     std::size_t nrows) {
  CsrSlice m;
  m.row0 = row0;
  m.nrows = nrows;
  m.n = n;
  m.ptr.reserve(nrows + 1);
  m.ptr.push_back(0);
  for (std::size_t i = 0; i < nrows; ++i) {
    std::size_t row = row0 + i;
    SplitMix64 rng(0x5eed0000 + row);  // Row-deterministic: any rank could
                                       // rebuild any row (symmetry check).
    m.col.push_back(row);
    m.val.push_back(static_cast<double>(nz_per_row) + 4.0);  // Dominant diag.
    for (std::size_t k = 0; k + 1 < nz_per_row; ++k) {
      std::size_t c = rng.next_below(n);
      if (c == row) c = (c + 1) % n;
      m.col.push_back(c);
      m.val.push_back(-0.5 / (1.0 + static_cast<double>(k)));
    }
    m.ptr.push_back(m.col.size());
  }
  return m;
}

}  // namespace

NasResult run_cg(core::Comm& comm, const CgParams& p) {
  const int nranks = comm.size();
  const int rank = comm.rank();
  const std::size_t rows =
      p.n / static_cast<std::size_t>(nranks);
  const std::size_t row0 = rows * static_cast<std::size_t>(rank);
  CsrSlice A = build_slice(p.n, p.nz_per_row, row0, rows);

  std::vector<double> x_full(p.n, 1.0);  // Allgathered every matvec.
  std::vector<double> r(rows), q(rows), z(rows, 0.0), p_local(rows);

  auto matvec = [&](const std::vector<double>& v_full,
                    std::vector<double>& out) {
    for (std::size_t i = 0; i < rows; ++i) {
      double acc = 0;
      for (std::size_t k = A.ptr[i]; k < A.ptr[i + 1]; ++k)
        acc += A.val[k] * v_full[A.col[k]];
      out[i] = acc;
    }
  };
  auto dot = [&](const std::vector<double>& a, const std::vector<double>& b) {
    double local = 0;
    for (std::size_t i = 0; i < rows; ++i) local += a[i] * b[i];
    double global = 0;
    comm.allreduce_f64(&local, &global, 1, core::Comm::ReduceOp::kSum);
    return global;
  };
  auto gather_p = [&](const std::vector<double>& local,
                      std::vector<double>& full) {
    comm.allgather(local.data(), rows * sizeof(double), full.data());
  };

  comm.barrier();
  Timer timer;

  // CG for A z = x with x = ones (one "outer iteration" of NAS CG).
  for (std::size_t i = 0; i < rows; ++i) {
    r[i] = 1.0;
    p_local[i] = 1.0;
    z[i] = 0.0;
  }
  double rho = dot(r, r);
  double rho0 = rho;
  for (int it = 0; it < p.iterations; ++it) {
    gather_p(p_local, x_full);
    matvec(x_full, q);
    double alpha = rho / dot(p_local, q);
    for (std::size_t i = 0; i < rows; ++i) {
      z[i] += alpha * p_local[i];
      r[i] -= alpha * q[i];
    }
    double rho_new = dot(r, r);
    double beta = rho_new / rho;
    rho = rho_new;
    for (std::size_t i = 0; i < rows; ++i)
      p_local[i] = r[i] + beta * p_local[i];
  }

  double seconds = timer.elapsed_s();
  double max_sec = 0;
  comm.allreduce_f64(&seconds, &max_sec, 1, core::Comm::ReduceOp::kMax);

  // Verification: CG on an SPD system must shrink the residual.
  bool ok = std::isfinite(rho) && rho < rho0 * 1e-3;

  double zsum_local = 0;
  for (double v : z) zsum_local += v;
  double zsum = 0;
  comm.allreduce_f64(&zsum_local, &zsum, 1, core::Comm::ReduceOp::kSum);

  NasResult res;
  res.name = "cg.mini." + std::to_string(nranks);
  res.seconds = max_sec;
  res.verified = ok;
  res.checksum = zsum;
  return res;
}

}  // namespace nemo::nas
