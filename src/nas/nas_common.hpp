// Shared infrastructure for the mini-NAS kernels: the NAS linear-congruential
// random-number generator (randlc), result/verification records, and the
// problem-class presets scaled so the full Table 1 sweep runs in seconds on a
// laptop while keeping each benchmark's communication *mix* (message sizes
// and collective shapes) faithful to its full-size counterpart.
#pragma once

#include <cstdint>
#include <string>

#include "core/comm.hpp"

namespace nemo::nas {

/// NAS randlc: x_{k+1} = a*x_k mod 2^46, returning x/2^46 in [0,1).
/// Deterministic across platforms (pure integer-ish double arithmetic).
double randlc(double* x, double a);

/// Skip the generator ahead: a^n mod 2^46 seeding (used by EP).
double ipow46(double a, std::uint64_t exponent);

inline constexpr double kNasA = 1220703125.0;  // 5^13.
inline constexpr double kNasSeed = 314159265.0;

struct NasResult {
  std::string name;      ///< e.g. "is.mini.8".
  double seconds = 0;    ///< Wall time of the timed section (max over ranks).
  bool verified = false;
  double checksum = 0;   ///< Kernel-specific scalar for cross-run equality.
};

/// Problem sizes. kMini is the default for tests; kSmall for Table 1 runs.
enum class NasClass { kMini, kSmall };

struct IsParams {
  std::size_t total_keys = 1 << 20;
  std::uint32_t max_key = 1 << 19;
  int iterations = 5;
};
IsParams is_params(NasClass c);

struct EpParams {
  std::uint64_t pairs = 1 << 20;
  int batches = 16;
};
EpParams ep_params(NasClass c);

struct CgParams {
  std::size_t n = 8192;        ///< Matrix order.
  std::size_t nz_per_row = 16;
  int iterations = 12;
};
CgParams cg_params(NasClass c);

struct FtParams {
  std::size_t nx = 64, ny = 64, nz = 64;
  int iterations = 4;
};
FtParams ft_params(NasClass c);

struct MgParams {
  std::size_t n = 64;    ///< Grid edge (n^3 points), must be a power of two.
  int vcycles = 4;
  int levels = 4;
};
MgParams mg_params(NasClass c);

struct PencilParams {
  std::size_t nx = 256, ny = 256;
  int sweeps = 20;
  int compute_per_cell = 8;   ///< Flops knob: high = compute-bound (bt/sp).
  std::size_t halo_bytes = 16 * 1024;
};
/// Presets reproducing the comm/compute mixes of bt, sp and lu.
PencilParams bt_params(NasClass c);
PencilParams sp_params(NasClass c);
PencilParams lu_params(NasClass c);

NasResult run_is(core::Comm& comm, const IsParams& p);
NasResult run_ep(core::Comm& comm, const EpParams& p);
NasResult run_cg(core::Comm& comm, const CgParams& p);
NasResult run_ft(core::Comm& comm, const FtParams& p);
NasResult run_mg(core::Comm& comm, const MgParams& p);
NasResult run_pencil(core::Comm& comm, const PencilParams& p,
                     const std::string& name);

}  // namespace nemo::nas
