// Mini NAS MG: V-cycle multigrid for Poisson on an n^3 grid with slab (z)
// decomposition. Smoothing steps exchange one-plane halos (nx*ny doubles),
// restriction/prolongation stay local to slabs — the moderate-message mix
// of MG in Table 1.
#include <cmath>
#include <vector>

#include "common/timing.hpp"
#include "nas/nas_common.hpp"

namespace nemo::nas {

namespace {

/// One slab level of the multigrid hierarchy: u, rhs, residual, with one
/// ghost plane on each z side.
struct Level {
  std::size_t n = 0;        ///< Global edge (nx = ny = n, nz = n).
  std::size_t lz = 0;       ///< Local interior planes.
  std::vector<double> u, f, r;

  [[nodiscard]] std::size_t plane() const { return n * n; }
  [[nodiscard]] double* at(std::vector<double>& a, std::size_t z) {
    return a.data() + z * plane();  // z includes ghost offset (z=0 ghost).
  }
};

}  // namespace

NasResult run_mg(core::Comm& comm, const MgParams& p) {
  const int nranks = comm.size();
  const int rank = comm.rank();
  const int up = rank + 1 < nranks ? rank + 1 : -1;
  const int down = rank > 0 ? rank - 1 : -1;

  // Build hierarchy; coarsest level must still give each rank >= 1 plane.
  std::vector<Level> levels;
  std::size_t n = p.n;
  for (int l = 0; l < p.levels && n >= 8 &&
                  n / static_cast<std::size_t>(nranks) >= 2;
       ++l, n /= 2) {
    Level lv;
    lv.n = n;
    lv.lz = n / static_cast<std::size_t>(nranks);
    std::size_t total = (lv.lz + 2) * lv.plane();
    lv.u.assign(total, 0.0);
    lv.f.assign(total, 0.0);
    lv.r.assign(total, 0.0);
    levels.push_back(std::move(lv));
  }
  NEMO_ASSERT(!levels.empty());

  // Deterministic RHS: a few point charges (like MG's +1/-1 points).
  {
    Level& L0 = levels[0];
    double seed = kNasSeed;
    for (int c = 0; c < 16; ++c) {
      std::size_t gx = static_cast<std::size_t>(randlc(&seed, kNasA) *
                                                static_cast<double>(L0.n));
      std::size_t gy = static_cast<std::size_t>(randlc(&seed, kNasA) *
                                                static_cast<double>(L0.n));
      std::size_t gz = static_cast<std::size_t>(randlc(&seed, kNasA) *
                                                static_cast<double>(L0.n));
      gx %= L0.n;
      gy %= L0.n;
      gz %= L0.n;
      std::size_t z0 = L0.lz * static_cast<std::size_t>(rank);
      if (gz >= z0 && gz < z0 + L0.lz)
        L0.f[(gz - z0 + 1) * L0.plane() + gy * L0.n + gx] =
            (c % 2 == 0) ? 1.0 : -1.0;
    }
  }

  int halo_tag = 900;
  auto exchange_halos = [&](Level& L, std::vector<double>& a) {
    std::size_t bytes = L.plane() * sizeof(double);
    // Send top interior plane up, receive into bottom ghost, and vice versa.
    core::Request reqs[4];
    int nreq = 0;
    if (up >= 0) {
      reqs[nreq++] = comm.isend(L.at(a, L.lz), bytes, up, halo_tag);
      reqs[nreq++] = comm.irecv(L.at(a, L.lz + 1), bytes, up, halo_tag + 1);
    }
    if (down >= 0) {
      reqs[nreq++] = comm.isend(L.at(a, 1), bytes, down, halo_tag + 1);
      reqs[nreq++] = comm.irecv(L.at(a, 0), bytes, down, halo_tag);
    }
    for (int i = 0; i < nreq; ++i) comm.wait(reqs[i]);
    // Periodic wrap at the global boundary via self-copy when single rank.
    if (nranks == 1) {
      std::copy_n(L.at(a, L.lz), L.plane(), L.at(a, 0));
      std::copy_n(L.at(a, 1), L.plane(), L.at(a, L.lz + 1));
    }
  };

  auto smooth = [&](Level& L, int sweeps) {
    const double w = 0.8, h2 = 1.0;
    for (int s = 0; s < sweeps; ++s) {
      exchange_halos(L, L.u);
      for (std::size_t z = 1; z <= L.lz; ++z)
        for (std::size_t y = 0; y < L.n; ++y)
          for (std::size_t x = 0; x < L.n; ++x) {
            std::size_t yp = (y + 1) % L.n, ym = (y + L.n - 1) % L.n;
            std::size_t xp = (x + 1) % L.n, xm = (x + L.n - 1) % L.n;
            std::size_t i = z * L.plane() + y * L.n + x;
            double nb = L.u[(z - 1) * L.plane() + y * L.n + x] +
                        L.u[(z + 1) * L.plane() + y * L.n + x] +
                        L.u[z * L.plane() + yp * L.n + x] +
                        L.u[z * L.plane() + ym * L.n + x] +
                        L.u[z * L.plane() + y * L.n + xp] +
                        L.u[z * L.plane() + y * L.n + xm];
            L.u[i] = (1 - w) * L.u[i] + w * (nb + h2 * L.f[i]) / 6.0;
          }
    }
  };

  auto residual = [&](Level& L) {
    exchange_halos(L, L.u);
    for (std::size_t z = 1; z <= L.lz; ++z)
      for (std::size_t y = 0; y < L.n; ++y)
        for (std::size_t x = 0; x < L.n; ++x) {
          std::size_t yp = (y + 1) % L.n, ym = (y + L.n - 1) % L.n;
          std::size_t xp = (x + 1) % L.n, xm = (x + L.n - 1) % L.n;
          std::size_t i = z * L.plane() + y * L.n + x;
          double nb = L.u[(z - 1) * L.plane() + y * L.n + x] +
                      L.u[(z + 1) * L.plane() + y * L.n + x] +
                      L.u[z * L.plane() + yp * L.n + x] +
                      L.u[z * L.plane() + ym * L.n + x] +
                      L.u[z * L.plane() + y * L.n + xp] +
                      L.u[z * L.plane() + y * L.n + xm];
          L.r[i] = L.f[i] - (6.0 * L.u[i] - nb);
        }
  };

  auto norm2 = [&](Level& L) {
    double local = 0;
    for (std::size_t z = 1; z <= L.lz; ++z)
      for (std::size_t i = 0; i < L.plane(); ++i) {
        double v = L.r[z * L.plane() + i];
        local += v * v;
      }
    double g = 0;
    comm.allreduce_f64(&local, &g, 1, core::Comm::ReduceOp::kSum);
    return std::sqrt(g);
  };

  comm.barrier();
  Timer timer;

  residual(levels[0]);
  double r0 = norm2(levels[0]);

  for (int vc = 0; vc < p.vcycles; ++vc) {
    // Down: smooth, restrict residual (injection averaging, slab-local in z
    // because lz halves with n).
    for (std::size_t l = 0; l + 1 < levels.size(); ++l) {
      smooth(levels[l], 2);
      residual(levels[l]);
      Level& F = levels[l];
      Level& C = levels[l + 1];
      std::fill(C.u.begin(), C.u.end(), 0.0);
      for (std::size_t z = 1; z <= C.lz; ++z)
        for (std::size_t y = 0; y < C.n; ++y)
          for (std::size_t x = 0; x < C.n; ++x)
            C.f[z * C.plane() + y * C.n + x] =
                F.r[(2 * z - 1) * F.plane() + (2 * y) * F.n + 2 * x];
    }
    smooth(levels.back(), 8);
    // Up: prolongate (injection) and smooth.
    for (std::size_t l = levels.size() - 1; l > 0; --l) {
      Level& C = levels[l];
      Level& F = levels[l - 1];
      for (std::size_t z = 1; z <= C.lz; ++z)
        for (std::size_t y = 0; y < C.n; ++y)
          for (std::size_t x = 0; x < C.n; ++x) {
            double v = C.u[z * C.plane() + y * C.n + x];
            for (std::size_t dz = 0; dz < 2; ++dz)
              for (std::size_t dy = 0; dy < 2; ++dy)
                for (std::size_t dx = 0; dx < 2; ++dx)
                  F.u[(2 * z - 1 + dz) * F.plane() +
                      ((2 * y + dy) % F.n) * F.n + ((2 * x + dx) % F.n)] +=
                      v;
          }
      smooth(F, 2);
    }
  }

  residual(levels[0]);
  double r1 = norm2(levels[0]);

  double seconds = timer.elapsed_s();
  double max_sec = 0;
  comm.allreduce_f64(&seconds, &max_sec, 1, core::Comm::ReduceOp::kMax);

  NasResult res;
  res.name = "mg.mini." + std::to_string(nranks);
  res.seconds = max_sec;
  res.verified = std::isfinite(r1) && r1 < r0;
  res.checksum = r1;
  return res;
}

}  // namespace nemo::nas
