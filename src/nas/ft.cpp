// Mini NAS FT: 3D FFT with slab (1D) decomposition. Each iteration performs
// a full forward transform — two local FFT dimensions, then a global
// transpose (alltoall of large blocks: FT is the other Table 1 winner), then
// the third dimension — followed by a pointwise evolution and the NAS-style
// checksum. Verification inverts the transform and compares to the input.
#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "common/timing.hpp"
#include "nas/nas_common.hpp"

namespace nemo::nas {

namespace {

using Cplx = std::complex<double>;

/// In-place radix-2 Cooley-Tukey along a contiguous array of length n
/// (power of two). sign = -1 forward, +1 inverse (unnormalised).
void fft1d(Cplx* a, std::size_t n, int sign) {
  // Bit reversal.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    double ang =
        static_cast<double>(sign) * 2.0 * std::numbers::pi /
        static_cast<double>(len);
    Cplx wl(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Cplx w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        Cplx u = a[i + k];
        Cplx v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wl;
      }
    }
  }
}

}  // namespace

NasResult run_ft(core::Comm& comm, const FtParams& p) {
  const int nranks = comm.size();
  const int rank = comm.rank();
  const std::size_t nx = p.nx, ny = p.ny, nz = p.nz;
  NEMO_ASSERT(nz % static_cast<std::size_t>(nranks) == 0);
  NEMO_ASSERT(nx % static_cast<std::size_t>(nranks) == 0);
  const std::size_t local_z = nz / static_cast<std::size_t>(nranks);
  const std::size_t local_x = nx / static_cast<std::size_t>(nranks);

  // Slab layout A: [local_z][ny][nx], contiguous in x.
  std::vector<Cplx> grid(local_z * ny * nx);
  double seed = kNasSeed + 17.0 * (rank + 1);
  for (auto& c : grid)
    c = Cplx(randlc(&seed, kNasA), randlc(&seed, kNasA));
  const std::vector<Cplx> original = grid;

  std::vector<Cplx> sendbuf(grid.size()), recvbuf(grid.size());
  std::vector<Cplx> zbuf(grid.size());

  // Transpose slabs: from z-slabs [local_z][ny][nx] to x-slabs
  // [local_x][ny][nz] via alltoall of (local_z*ny*local_x) blocks.
  auto transpose_zx = [&](std::vector<Cplx>& a, std::vector<Cplx>& out) {
    const std::size_t block = local_z * ny * local_x;
    for (int r = 0; r < nranks; ++r) {
      std::size_t x0 = static_cast<std::size_t>(r) * local_x;
      Cplx* dst = sendbuf.data() + static_cast<std::size_t>(r) * block;
      std::size_t idx = 0;
      for (std::size_t z = 0; z < local_z; ++z)
        for (std::size_t y = 0; y < ny; ++y)
          for (std::size_t x = 0; x < local_x; ++x)
            dst[idx++] = a[(z * ny + y) * nx + x0 + x];
    }
    comm.alltoall(sendbuf.data(), block * sizeof(Cplx), recvbuf.data());
    // recvbuf: from rank r: [local_z of r][ny][local_x] -> assemble
    // [local_x][ny][nz] with z = r*local_z + z'.
    for (int r = 0; r < nranks; ++r) {
      const Cplx* src = recvbuf.data() + static_cast<std::size_t>(r) * block;
      std::size_t z0 = static_cast<std::size_t>(r) * local_z;
      std::size_t idx = 0;
      for (std::size_t z = 0; z < local_z; ++z)
        for (std::size_t y = 0; y < ny; ++y)
          for (std::size_t x = 0; x < local_x; ++x)
            out[(x * ny + y) * nz + z0 + z] = src[idx++];
    }
  };
  auto transpose_xz = [&](std::vector<Cplx>& a, std::vector<Cplx>& out) {
    const std::size_t block = local_z * ny * local_x;
    for (int r = 0; r < nranks; ++r) {
      std::size_t z0 = static_cast<std::size_t>(r) * local_z;
      Cplx* dst = sendbuf.data() + static_cast<std::size_t>(r) * block;
      std::size_t idx = 0;
      for (std::size_t z = 0; z < local_z; ++z)
        for (std::size_t y = 0; y < ny; ++y)
          for (std::size_t x = 0; x < local_x; ++x)
            dst[idx++] = a[(x * ny + y) * nz + z0 + z];
    }
    comm.alltoall(sendbuf.data(), block * sizeof(Cplx), recvbuf.data());
    for (int r = 0; r < nranks; ++r) {
      const Cplx* src = recvbuf.data() + static_cast<std::size_t>(r) * block;
      std::size_t x0 = static_cast<std::size_t>(r) * local_x;
      std::size_t idx = 0;
      for (std::size_t z = 0; z < local_z; ++z)
        for (std::size_t y = 0; y < ny; ++y)
          for (std::size_t x = 0; x < local_x; ++x)
            out[(z * ny + y) * nx + x0 + x] = src[idx++];
    }
  };

  // Forward/inverse 3D FFT. sign=-1 forward. Works in-place on `grid`
  // (z-slab layout) using zbuf as the x-slab intermediate.
  std::vector<Cplx> line(std::max({nx, ny, nz}));
  auto fft3d = [&](int sign) {
    // X dimension (contiguous).
    for (std::size_t z = 0; z < local_z; ++z)
      for (std::size_t y = 0; y < ny; ++y)
        fft1d(grid.data() + (z * ny + y) * nx, nx, sign);
    // Y dimension (strided: gather to line).
    for (std::size_t z = 0; z < local_z; ++z)
      for (std::size_t x = 0; x < nx; ++x) {
        for (std::size_t y = 0; y < ny; ++y)
          line[y] = grid[(z * ny + y) * nx + x];
        fft1d(line.data(), ny, sign);
        for (std::size_t y = 0; y < ny; ++y)
          grid[(z * ny + y) * nx + x] = line[y];
      }
    // Z dimension: transpose, transform contiguously, transpose back.
    transpose_zx(grid, zbuf);
    for (std::size_t x = 0; x < local_x; ++x)
      for (std::size_t y = 0; y < ny; ++y)
        fft1d(zbuf.data() + (x * ny + y) * nz, nz, sign);
    transpose_xz(zbuf, grid);
  };

  comm.barrier();
  Timer timer;

  double checksum_acc = 0;
  for (int it = 0; it < p.iterations; ++it) {
    fft3d(-1);
    // NAS-style evolution: scale spectrum (cheap stand-in for exp factors).
    double factor = 1.0 / (1.0 + 0.01 * (it + 1));
    for (auto& c : grid) c *= factor;
    // Checksum: sum of a deterministic subset of spectral coefficients.
    Cplx cs(0, 0);
    for (std::size_t i = 1; i <= 64 && i < grid.size(); ++i)
      cs += grid[i * 37 % grid.size()];
    double csr[2] = {cs.real(), cs.imag()}, gcs[2];
    comm.allreduce_f64(csr, gcs, 2, core::Comm::ReduceOp::kSum);
    checksum_acc += gcs[0] + gcs[1];
    // Undo evolution and invert so the grid returns to the original.
    for (auto& c : grid) c /= factor;
    fft3d(+1);
    double norm = 1.0 / static_cast<double>(nx * ny * nz);
    for (auto& c : grid) c *= norm;
  }

  double seconds = timer.elapsed_s();
  double max_sec = 0;
  comm.allreduce_f64(&seconds, &max_sec, 1, core::Comm::ReduceOp::kMax);

  // Verification: forward+inverse round trip must reproduce the input.
  double max_err = 0;
  for (std::size_t i = 0; i < grid.size(); ++i)
    max_err = std::max(max_err, std::abs(grid[i] - original[i]));
  double gerr = 0;
  comm.allreduce_f64(&max_err, &gerr, 1, core::Comm::ReduceOp::kMax);

  NasResult res;
  res.name = "ft.mini." + std::to_string(nranks);
  res.seconds = max_sec;
  res.verified = gerr < 1e-9 * static_cast<double>(nx * ny * nz);
  res.checksum = checksum_acc;
  return res;
}

}  // namespace nemo::nas
