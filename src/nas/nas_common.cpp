#include "nas/nas_common.hpp"

#include <cmath>

namespace nemo::nas {

// The NAS randlc uses 46-bit modular arithmetic expressed in doubles split
// into 23-bit halves (exactly as in the reference implementation).
double randlc(double* x, double a) {
  constexpr double r23 = 0x1p-23, r46 = 0x1p-46;
  constexpr double t23 = 0x1p23, t46 = 0x1p46;

  double t1 = r23 * a;
  double a1 = static_cast<double>(static_cast<long long>(t1));
  double a2 = a - t23 * a1;

  t1 = r23 * (*x);
  double x1 = static_cast<double>(static_cast<long long>(t1));
  double x2 = *x - t23 * x1;

  t1 = a1 * x2 + a2 * x1;
  double t2 = static_cast<double>(static_cast<long long>(r23 * t1));
  double z = t1 - t23 * t2;
  double t3 = t23 * z + a2 * x2;
  double t4 = static_cast<double>(static_cast<long long>(r46 * t3));
  *x = t3 - t46 * t4;
  return r46 * (*x);
}

double ipow46(double a, std::uint64_t exponent) {
  // Square-and-multiply in the randlc group: randlc(&x, q) sets
  // x = x*q mod 2^46, so `r` accumulates a^exponent.
  double r = 1.0;
  if (exponent == 0) return r;
  double q = a;
  std::uint64_t n = exponent;
  while (n > 1) {
    if (n & 1) (void)randlc(&r, q);
    (void)randlc(&q, q);
    n >>= 1;
  }
  (void)randlc(&r, q);
  return r;
}

IsParams is_params(NasClass c) {
  IsParams p;
  if (c == NasClass::kMini) {
    p.total_keys = 1 << 18;
    p.max_key = 1 << 16;
    p.iterations = 3;
  } else {
    p.total_keys = 1 << 22;  // 4M keys: ~2 MiB per rank at 8 ranks.
    p.max_key = 1 << 19;
    p.iterations = 10;
  }
  return p;
}

EpParams ep_params(NasClass c) {
  EpParams p;
  p.pairs = (c == NasClass::kMini) ? (1u << 18) : (1u << 22);
  return p;
}

CgParams cg_params(NasClass c) {
  CgParams p;
  if (c == NasClass::kMini) {
    p.n = 4096;
    p.iterations = 8;
  } else {
    p.n = 16384;
    p.iterations = 15;
  }
  return p;
}

FtParams ft_params(NasClass c) {
  FtParams p;
  if (c == NasClass::kMini) {
    p.nx = p.ny = p.nz = 32;
    p.iterations = 3;
  } else {
    p.nx = p.ny = p.nz = 64;
    p.iterations = 6;
  }
  return p;
}

MgParams mg_params(NasClass c) {
  MgParams p;
  if (c == NasClass::kMini) {
    p.n = 32;
    p.vcycles = 3;
    p.levels = 3;
  } else {
    p.n = 64;
    p.vcycles = 6;
    p.levels = 4;
  }
  return p;
}

PencilParams bt_params(NasClass c) {
  PencilParams p;
  p.compute_per_cell = 24;  // bt is strongly compute-bound.
  p.halo_bytes = 24 * 1024;
  p.sweeps = (c == NasClass::kMini) ? 8 : 30;
  return p;
}

PencilParams sp_params(NasClass c) {
  PencilParams p;
  p.compute_per_cell = 16;
  p.halo_bytes = 16 * 1024;
  p.sweeps = (c == NasClass::kMini) ? 8 : 30;
  return p;
}

PencilParams lu_params(NasClass c) {
  PencilParams p;
  p.compute_per_cell = 12;
  p.halo_bytes = 4 * 1024;  // lu exchanges thin pencil faces.
  p.sweeps = (c == NasClass::kMini) ? 10 : 40;
  return p;
}

}  // namespace nemo::nas
