// Mini NAS EP: embarrassingly parallel generation of Gaussian pairs via the
// Marsaglia polar-ish acceptance test of the NAS benchmark, with only a tiny
// final reduction — the "no large messages" end of Table 1's spectrum.
#include <cmath>
#include <vector>

#include "common/timing.hpp"
#include "nas/nas_common.hpp"

namespace nemo::nas {

NasResult run_ep(core::Comm& comm, const EpParams& p) {
  const int nranks = comm.size();
  const int rank = comm.rank();
  const std::uint64_t local_pairs =
      p.pairs / static_cast<std::uint64_t>(nranks);

  comm.barrier();
  Timer timer;

  // Each rank owns a disjoint slice of the random stream: seed with
  // a^(2*first_index) like NAS EP.
  double seed = kNasSeed;
  double a_2k = ipow46(kNasA, 2 * local_pairs *
                                  static_cast<std::uint64_t>(rank));
  (void)randlc(&seed, a_2k);

  double sx = 0, sy = 0;
  std::vector<std::int64_t> annulus(10, 0);
  for (std::uint64_t i = 0; i < local_pairs; ++i) {
    double x = 2.0 * randlc(&seed, kNasA) - 1.0;
    double y = 2.0 * randlc(&seed, kNasA) - 1.0;
    double t = x * x + y * y;
    if (t <= 1.0 && t > 0.0) {
      double f = std::sqrt(-2.0 * std::log(t) / t);
      double gx = x * f, gy = y * f;
      sx += gx;
      sy += gy;
      double m = std::max(std::fabs(gx), std::fabs(gy));
      auto bin = static_cast<std::size_t>(m);
      if (bin < annulus.size()) annulus[bin]++;
    }
  }

  std::vector<std::int64_t> annulus_sum(annulus.size(), 0);
  comm.allreduce_i64(annulus.data(), annulus_sum.data(), annulus.size(),
                     core::Comm::ReduceOp::kSum);
  double sums[2] = {sx, sy}, gsums[2] = {0, 0};
  comm.allreduce_f64(sums, gsums, 2, core::Comm::ReduceOp::kSum);

  double seconds = timer.elapsed_s();
  double max_sec = 0;
  comm.allreduce_f64(&seconds, &max_sec, 1, core::Comm::ReduceOp::kMax);

  // Verified when the annulus counts account for every accepted pair and
  // the Gaussian sums are finite (NAS checks against stored references; we
  // check internal consistency + determinism via the checksum).
  std::int64_t accepted = 0;
  for (auto c : annulus_sum) accepted += c;
  bool ok = accepted > 0 && std::isfinite(gsums[0]) && std::isfinite(gsums[1]);

  NasResult res;
  res.name = "ep.mini." + std::to_string(nranks);
  res.seconds = max_sec;
  res.verified = ok;
  res.checksum = gsums[0] + gsums[1] + static_cast<double>(accepted);
  return res;
}

}  // namespace nemo::nas
