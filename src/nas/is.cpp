// Mini NAS IS: parallel bucket sort of uniformly distributed integer keys.
// This is the paper's headline application (25% speedup with KNEM+I/OAT):
// per iteration every rank buckets its keys, the bucket *counts* are
// exchanged with a small alltoall, and then the keys themselves move in a
// large-message alltoallv — exactly the traffic Table 1/2 attribute the
// cache behaviour to.
#include <algorithm>
#include <vector>

#include "common/timing.hpp"
#include "nas/nas_common.hpp"

namespace nemo::nas {

NasResult run_is(core::Comm& comm, const IsParams& p) {
  const int nranks = comm.size();
  const int rank = comm.rank();
  const std::size_t local_n = p.total_keys / static_cast<std::size_t>(nranks);

  // Deterministic per-rank key stream (NAS uses randlc; a seeded LCG stream
  // per rank keeps generation O(local_n) without cross-rank skipping).
  std::vector<std::uint32_t> keys(local_n);
  double seed = kNasSeed + 37.0 * (rank + 1);
  for (auto& k : keys) {
    double v = randlc(&seed, kNasA);
    k = static_cast<std::uint32_t>(v * p.max_key) % p.max_key;
  }

  // Each rank owns an equal slice of the key range.
  const std::uint32_t range_per_rank =
      (p.max_key + static_cast<std::uint32_t>(nranks) - 1) /
      static_cast<std::uint32_t>(nranks);
  auto owner_of = [&](std::uint32_t key) {
    int o = static_cast<int>(key / range_per_rank);
    return o < nranks ? o : nranks - 1;
  };

  std::vector<std::uint32_t> sorted;  // Keys this rank ends up owning.
  comm.barrier();
  Timer timer;

  for (int iter = 0; iter < p.iterations; ++iter) {
    // Perturb one key per iteration as NAS IS does, so iterations differ.
    keys[static_cast<std::size_t>(iter) % local_n] =
        static_cast<std::uint32_t>((iter * 1543u + 7u)) % p.max_key;

    // Bucket by destination rank.
    std::vector<std::size_t> scounts(static_cast<std::size_t>(nranks), 0);
    for (auto k : keys) scounts[static_cast<std::size_t>(owner_of(k))]++;
    std::vector<std::size_t> sdispls(static_cast<std::size_t>(nranks), 0);
    for (int r = 1; r < nranks; ++r)
      sdispls[static_cast<std::size_t>(r)] =
          sdispls[static_cast<std::size_t>(r - 1)] +
          scounts[static_cast<std::size_t>(r - 1)];
    std::vector<std::uint32_t> sendbuf(local_n);
    {
      std::vector<std::size_t> cursor = sdispls;
      for (auto k : keys)
        sendbuf[cursor[static_cast<std::size_t>(owner_of(k))]++] = k;
    }

    // Exchange bucket sizes (small alltoall)...
    std::vector<std::size_t> rcounts(static_cast<std::size_t>(nranks), 0);
    comm.alltoall(scounts.data(), sizeof(std::size_t), rcounts.data());

    std::vector<std::size_t> rdispls(static_cast<std::size_t>(nranks), 0);
    for (int r = 1; r < nranks; ++r)
      rdispls[static_cast<std::size_t>(r)] =
          rdispls[static_cast<std::size_t>(r - 1)] +
          rcounts[static_cast<std::size_t>(r - 1)];
    std::size_t recv_total = rdispls[static_cast<std::size_t>(nranks - 1)] +
                             rcounts[static_cast<std::size_t>(nranks - 1)];

    // ...then the keys themselves (large alltoallv: the LMT-heavy step).
    std::vector<std::uint32_t> recvbuf(recv_total);
    std::vector<std::size_t> sc_b(static_cast<std::size_t>(nranks)),
        sd_b(static_cast<std::size_t>(nranks)),
        rc_b(static_cast<std::size_t>(nranks)),
        rd_b(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      sc_b[static_cast<std::size_t>(r)] =
          scounts[static_cast<std::size_t>(r)] * sizeof(std::uint32_t);
      sd_b[static_cast<std::size_t>(r)] =
          sdispls[static_cast<std::size_t>(r)] * sizeof(std::uint32_t);
      rc_b[static_cast<std::size_t>(r)] =
          rcounts[static_cast<std::size_t>(r)] * sizeof(std::uint32_t);
      rd_b[static_cast<std::size_t>(r)] =
          rdispls[static_cast<std::size_t>(r)] * sizeof(std::uint32_t);
    }
    comm.alltoallv(sendbuf.data(), sc_b.data(), sd_b.data(), recvbuf.data(),
                   rc_b.data(), rd_b.data());

    // Local ranking (counting sort within the owned range).
    sorted = std::move(recvbuf);
    std::sort(sorted.begin(), sorted.end());
  }

  double seconds = timer.elapsed_s();

  // Verification 1: global sortedness across rank boundaries.
  bool ok = std::is_sorted(sorted.begin(), sorted.end());
  std::uint32_t my_min = sorted.empty() ? 0 : sorted.front();
  std::uint32_t my_max = sorted.empty() ? 0 : sorted.back();
  std::vector<std::uint32_t> mins(static_cast<std::size_t>(nranks)),
      maxs(static_cast<std::size_t>(nranks));
  comm.allgather(&my_min, sizeof my_min, mins.data());
  comm.allgather(&my_max, sizeof my_max, maxs.data());
  for (int r = 0; r + 1 < nranks; ++r)
    if (maxs[static_cast<std::size_t>(r)] >
        mins[static_cast<std::size_t>(r + 1)])
      if (!sorted.empty()) ok = false;

  // Verification 2: no key lost — total count preserved.
  std::int64_t local_count = static_cast<std::int64_t>(sorted.size());
  std::int64_t total = 0;
  comm.allreduce_i64(&local_count, &total, 1, core::Comm::ReduceOp::kSum);
  if (total !=
      static_cast<std::int64_t>(local_n * static_cast<std::size_t>(nranks)))
    ok = false;

  // Checksum: sum of keys mod 2^61 (identical across LMT strategies).
  std::int64_t local_sum = 0;
  for (auto k : sorted) local_sum = (local_sum + k) % ((1ll << 61) - 1);
  std::int64_t sum = 0;
  comm.allreduce_i64(&local_sum, &sum, 1, core::Comm::ReduceOp::kSum);

  double max_sec = 0;
  comm.allreduce_f64(&seconds, &max_sec, 1, core::Comm::ReduceOp::kMax);

  NasResult res;
  res.name = "is.mini." + std::to_string(nranks);
  res.seconds = max_sec;
  res.verified = ok;
  res.checksum = static_cast<double>(sum);
  return res;
}

}  // namespace nemo::nas
