#include <cstring>

#include "core/comm.hpp"
#include "lmt/backends.hpp"
#include "shm/nt_copy.hpp"

namespace nemo::lmt {

using shm::CopyRing;

ShmCopyBackend::ShmCopyBackend(core::Engine& eng)
    : eng_(eng),
      send_cursor_(static_cast<std::size_t>(eng.nranks()), 0),
      recv_cursor_(static_cast<std::size_t>(eng.nranks()), 0),
      nt_ok_(shm::nt_copy_available()) {
  shm::Arena& arena = eng.world().arena();
  send_ring_.resize(static_cast<std::size_t>(eng.nranks()));
  recv_ring_.resize(static_cast<std::size_t>(eng.nranks()));
  push_nt_ok_.assign(static_cast<std::size_t>(eng.nranks()), false);
  nt_min_.assign(static_cast<std::size_t>(eng.nranks()),
                 shm::nt_default_threshold());
  const Topology& topo = eng.world().topology();
  const tune::TuningTable& tuning = eng.world().tuning();
  const std::size_t nt_override = eng.world().config().nt_min;
  for (int p = 0; p < eng.nranks(); ++p) {
    if (p == eng.rank()) continue;
    send_ring_[static_cast<std::size_t>(p)].emplace(
        arena, eng.world().ring_off(eng.rank(), p));
    recv_ring_[static_cast<std::size_t>(p)].emplace(
        arena, eng.world().ring_off(p, eng.rank()));
    int mine = eng.world().core_of(eng.rank());
    int theirs = eng.world().core_of(p);
    // Unpinned ranks read the shared-LLC row: its half-cache nt_min matches
    // the host default, and its push_nt=false keeps copy #1 cached — the
    // same conservative stance the pre-tuning code took for unknown cores.
    PairPlacement place = PairPlacement::kSharedCache;
    if (mine >= 0 && mine < topo.num_cores && theirs >= 0 &&
        theirs < topo.num_cores && mine != theirs)
      place = topo.classify(mine, theirs);
    const tune::PlacementTuning& row = tuning.for_placement(place);
    nt_min_[static_cast<std::size_t>(p)] =
        nt_override != 0 ? nt_override : row.nt_min;
    push_nt_ok_[static_cast<std::size_t>(p)] =
        mine >= 0 && theirs >= 0 && row.push_nt;
  }
}

void ShmCopyBackend::send_init(SendCtx& ctx) {
  ctx.rts.kind = static_cast<std::uint32_t>(LmtKind::kDefaultShm);
  ctx.rts.total = ctx.total;
  ctx.rts.nsegs = static_cast<std::uint32_t>(ctx.segs.size());
}

bool ShmCopyBackend::send_progress(SendCtx& ctx) {
  if (ctx.total == 0) return true;
  CopyRing& ring = *send_ring_[static_cast<std::size_t>(ctx.peer)];
  std::uint64_t& cursor = send_cursor_[static_cast<std::size_t>(ctx.peer)];
  const bool nt = use_nt(ctx.total, ctx.peer) &&
                  push_nt_ok_[static_cast<std::size_t>(ctx.peer)];
  while (ctx.bytes_moved < ctx.total) {
    // The next contiguous piece of the (possibly segmented) source,
    // clipped to one ring buffer.
    const ConstSegment& s = ctx.segs[ctx.seg_idx];
    std::size_t avail = s.len - ctx.seg_off;
    if (avail == 0) {
      ++ctx.seg_idx;
      ctx.seg_off = 0;
      continue;
    }
    std::size_t piece = avail < ring.buf_bytes() ? avail : ring.buf_bytes();
    bool last = (ctx.bytes_moved + piece == ctx.total);
    std::size_t n;
    {
      trace::Span sp(eng_.tracer(), trace::kRingPush, trace::Mode::kFull,
                     static_cast<std::uint64_t>(ctx.peer), piece);
      n = ring.try_push(cursor, s.base + ctx.seg_off, piece, last, nt);
    }
    if (n == 0) {  // Ring full: receiver hasn't drained yet.
      eng_.counters().ring_stalls++;
      if (trace::on())
        eng_.tracer().emit(trace::kRingStall, trace::kInstant,
                           static_cast<std::uint64_t>(ctx.peer));
      return false;
    }
    ctx.seg_off += n;
    ctx.bytes_moved += n;
  }
  // All pushed. The send completes only when the receiver has drained the
  // ring so the buffers are reusable by the next transfer on this pair.
  return ring.drained(cursor);
}

void ShmCopyBackend::send_fin(SendCtx&) {}

void ShmCopyBackend::recv_init(RecvCtx&) {}

bool ShmCopyBackend::recv_progress(RecvCtx& ctx) {
  if (ctx.total == 0) return true;
  CopyRing& ring = *recv_ring_[static_cast<std::size_t>(ctx.peer)];
  std::uint64_t& cursor = recv_cursor_[static_cast<std::size_t>(ctx.peer)];
  const bool nt = use_nt(ctx.total, ctx.peer);
  while (ctx.bytes_moved < ctx.total) {
    auto view = ring.peek(cursor);
    if (!view) return false;
    // Scatter the chunk across the destination segments (copy #2).
    trace::Span sp(eng_.tracer(), trace::kRingPop, trace::Mode::kFull,
                   static_cast<std::uint64_t>(ctx.peer), view->bytes);
    const std::byte* src = view->data;
    std::size_t left = view->bytes;
    while (left > 0) {
      NEMO_ASSERT(ctx.seg_idx < ctx.segs.size());
      Segment& d = ctx.segs[ctx.seg_idx];
      std::size_t room = d.len - ctx.seg_off;
      if (room == 0) {
        ++ctx.seg_idx;
        ctx.seg_off = 0;
        continue;
      }
      std::size_t n = left < room ? left : room;
      shm::copy_for(nt, d.base + ctx.seg_off, src, n);
      src += n;
      ctx.seg_off += n;
      left -= n;
      ctx.bytes_moved += n;
    }
    ring.release(cursor);
  }
  return true;
}

}  // namespace nemo::lmt
