#include "core/comm.hpp"
#include "lmt/backends.hpp"

namespace nemo::lmt {

using shm::kPipeWindow;
using shm::Pipe;

void VmspliceBackend::send_init(SendCtx& ctx) {
  ctx.rts.kind = static_cast<std::uint32_t>(kind());
  ctx.rts.total = ctx.total;
  ctx.rts.nsegs = static_cast<std::uint32_t>(ctx.segs.size());
}

bool VmspliceBackend::send_progress(SendCtx& ctx) {
  if (ctx.total == 0) return true;
  const Pipe& pipe = eng_.world().pipes().get(eng_.rank(), ctx.peer);
  while (ctx.bytes_moved < ctx.total) {
    const ConstSegment& s = ctx.segs[ctx.seg_idx];
    std::size_t avail = s.len - ctx.seg_off;
    if (avail == 0) {
      ++ctx.seg_idx;
      ctx.seg_off = 0;
      continue;
    }
    // One pipe window per syscall, as the kernel's PIPE_BUFFERS limit
    // enforces in the paper (§3.1) — this chunking is what lets the engine
    // poll for other traffic between chunks of a multi-MiB message.
    std::size_t piece = avail < kPipeWindow ? avail : kPipeWindow;
    ConstSegment chunk{s.base + ctx.seg_off, piece};
    std::size_t n =
        writev_ ? pipe.writev_some(chunk) : pipe.vmsplice_some(chunk);
    if (n == 0) return false;  // Pipe full: receiver hasn't drained.
    ctx.seg_off += n;
    ctx.bytes_moved += n;
  }
  return true;
}

void VmspliceBackend::send_fin(SendCtx&) {}

void VmspliceBackend::recv_init(RecvCtx&) {}

bool VmspliceBackend::recv_progress(RecvCtx& ctx) {
  if (ctx.total == 0) return true;
  const Pipe& pipe = eng_.world().pipes().get(ctx.peer, eng_.rank());
  while (ctx.bytes_moved < ctx.total) {
    NEMO_ASSERT(ctx.seg_idx < ctx.segs.size());
    Segment& d = ctx.segs[ctx.seg_idx];
    std::size_t room = d.len - ctx.seg_off;
    if (room == 0) {
      ++ctx.seg_idx;
      ctx.seg_off = 0;
      continue;
    }
    std::size_t want = ctx.total - ctx.bytes_moved;
    if (room < want) want = room;
    std::size_t n = pipe.readv_some({d.base + ctx.seg_off, want});
    if (n == 0) return false;  // Pipe empty.
    ctx.seg_off += n;
    ctx.bytes_moved += n;
  }
  return true;
}

}  // namespace nemo::lmt
