#include "core/comm.hpp"
#include "lmt/backends.hpp"

namespace nemo::lmt {

void KnemBackend::send_init(SendCtx& ctx) {
  // Declare the (possibly vectorial) send buffer; the cookie id travels in
  // the RTS through the normal rendezvous handshake (Figure 1, steps 1-3).
  ctx.knem_cookie = eng_.knem_device().submit_send(
      std::span<const ConstSegment>(ctx.segs));
  ctx.rts.kind = static_cast<std::uint32_t>(LmtKind::kKnem);
  ctx.rts.total = ctx.total;
  ctx.rts.knem_cookie = ctx.knem_cookie;
  ctx.rts.nsegs = static_cast<std::uint32_t>(ctx.segs.size());
  int core = eng_.world().core_of(eng_.rank());
  ctx.rts.sender_core = core >= 0 ? static_cast<std::uint32_t>(core) : 0;
}

bool KnemBackend::send_progress(SendCtx&) {
  // All data motion is receiver-driven; the sender merely waits for FIN.
  return true;
}

void KnemBackend::send_fin(SendCtx& ctx) {
  if (ctx.knem_cookie != 0) {
    eng_.knem_device().release(ctx.knem_cookie);
    ctx.knem_cookie = 0;
  }
}

void KnemBackend::recv_init(RecvCtx& ctx) {
  // Decide the copy engine now (receive-command flags, §3.3): the receiver
  // knows its own core, so the DMAmin policy is evaluated here.
  int my_core = eng_.world().core_of(eng_.rank());
  ctx.rts.knem_flags = eng_.policy().knem_flags(
      ctx.total, my_core, eng_.world().config().knem_mode);
}

bool KnemBackend::recv_progress(RecvCtx& ctx) {
  knem::Device& dev = eng_.knem_device();
  std::uint32_t flags = ctx.rts.knem_flags;
  bool dma = (flags & knem::kFlagDma) != 0;
  bool async = (flags & knem::kFlagAsync) != 0;

  if (!async) {
    // Synchronous receive command: the call returns with the data placed —
    // either copied inline by this (receiver) core, or DMA-submitted and
    // polled before returning.
    knem::KnemResult res =
        dev.recv_sync(ctx.rts.knem_cookie, ctx.segs, flags,
                      dma ? &eng_.dma_channel() : nullptr);
    NEMO_ASSERT_MSG(res == knem::KnemResult::kOk, to_string(res));
    return true;
  }

  if (!ctx.async_submitted) {
    // Asynchronous: queue on the DMA engine (kFlagDma) or on the kernel-
    // thread channel pinned to this core (the competing-copy model of §3.4).
    shm::DmaEngine& engine =
        dma ? eng_.dma_channel() : eng_.kthread_channel();
    knem::KnemResult res = dev.recv_async(ctx.rts.knem_cookie, ctx.segs,
                                          flags, engine, &ctx.async_status);
    NEMO_ASSERT_MSG(res == knem::KnemResult::kOk, to_string(res));
    ctx.async_submitted = true;
    return false;
  }
  // Poll the status byte the engine writes in order, behind the payload.
  if (ctx.async_status ==
      static_cast<std::uint8_t>(shm::DmaStatus::kSuccess)) {
    std::atomic_thread_fence(std::memory_order_acquire);
    return true;
  }
  return false;
}

std::unique_ptr<Backend> make_backend(LmtKind kind, core::Engine& eng) {
  switch (kind) {
    case LmtKind::kDefaultShm:
      return std::make_unique<ShmCopyBackend>(eng);
    case LmtKind::kVmsplice:
      return std::make_unique<VmspliceBackend>(eng, /*use_writev=*/false);
    case LmtKind::kVmspliceWritev:
      return std::make_unique<VmspliceBackend>(eng, /*use_writev=*/true);
    case LmtKind::kKnem:
      return std::make_unique<KnemBackend>(eng);
    case LmtKind::kCma:
      return std::make_unique<CmaBackend>(eng);
    case LmtKind::kAuto:
      break;
  }
  NEMO_ASSERT_MSG(false, "kAuto must be resolved before backend creation");
  return nullptr;
}

}  // namespace nemo::lmt
