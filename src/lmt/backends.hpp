// Concrete LMT backends. Constructed per rank by the Engine; they reference
// the world's shared structures (rings, pipes, KNEM device).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "lmt/lmt.hpp"
#include "shm/copy_ring.hpp"

namespace nemo::core {
class Engine;
}

namespace nemo::lmt {

/// The pre-existing Nemesis scheme: double-buffered copies through a
/// per-pair shared-memory ring. Two copies; both processes participate.
class ShmCopyBackend final : public Backend {
 public:
  explicit ShmCopyBackend(core::Engine& eng);
  [[nodiscard]] LmtKind kind() const override { return LmtKind::kDefaultShm; }
  [[nodiscard]] bool needs_cts() const override { return true; }
  [[nodiscard]] bool needs_fin() const override { return false; }
  void send_init(SendCtx& ctx) override;
  bool send_progress(SendCtx& ctx) override;
  void send_fin(SendCtx& ctx) override;
  void recv_init(RecvCtx& ctx) override;
  bool recv_progress(RecvCtx& ctx) override;

 private:
  /// True when this transfer should use streaming stores on the `peer`
  /// pair: it is at least the pair placement's tuned nt_min, so the two
  /// ring copies would otherwise sweep a large slice of the LLC for data
  /// with no reuse.
  [[nodiscard]] bool use_nt(std::uint64_t total, int peer) const {
    return nt_ok_ && total >= nt_min_[static_cast<std::size_t>(peer)];
  }

  core::Engine& eng_;
  // Ring slot sequence numbers are cumulative across transfers, so the
  // chunk cursor is per-pair state that outlives one message. Transfers on
  // a pair are serialized by the engine, making these safe to share.
  std::vector<std::uint64_t> send_cursor_;  ///< Indexed by peer.
  std::vector<std::uint64_t> recv_cursor_;
  // Per-peer ring views, fixed at construction (reconstructing a view from
  // the arena on every *_progress call was pure hot-path overhead). The
  // self slot stays empty.
  std::vector<std::optional<shm::CopyRing>> send_ring_;  ///< rank -> peer.
  std::vector<std::optional<shm::CopyRing>> recv_ring_;  ///< peer -> rank.
  /// Streaming copy #1 (into the ring slot) only pays off when the pair
  /// does NOT share a last-level cache: on a shared cache the cached slot
  /// write is what lets the receiver's slot read hit. Receiver copy #2's
  /// destination streams regardless (large buffer, no reuse in the copy).
  /// Both come from the pair placement's tuned row (cfg.nt_min overrides).
  std::vector<bool> push_nt_ok_;          ///< Indexed by peer.
  std::vector<std::size_t> nt_min_;       ///< Indexed by peer.
  bool nt_ok_;
};

/// Single-copy transfer through a Unix pipe: the sender attaches its pages
/// with vmsplice; the receiver copies them out with readv (§3.1). With
/// use_writev, the sender *copies* into the pipe instead — the two-copy
/// variant Figure 3 compares against.
class VmspliceBackend final : public Backend {
 public:
  VmspliceBackend(core::Engine& eng, bool use_writev)
      : eng_(eng), writev_(use_writev) {}
  [[nodiscard]] LmtKind kind() const override {
    return writev_ ? LmtKind::kVmspliceWritev : LmtKind::kVmsplice;
  }
  [[nodiscard]] bool needs_cts() const override { return true; }
  /// vmsplice'd pages stay referenced by the pipe until read: the sender may
  /// only reuse the buffer after the receiver's FIN. writev copies, so no
  /// FIN is needed there.
  [[nodiscard]] bool needs_fin() const override { return !writev_; }
  void send_init(SendCtx& ctx) override;
  bool send_progress(SendCtx& ctx) override;
  void send_fin(SendCtx& ctx) override;
  void recv_init(RecvCtx& ctx) override;
  bool recv_progress(RecvCtx& ctx) override;

 private:
  core::Engine& eng_;
  bool writev_;
};

/// Single-copy transfer through the KNEM pseudo-device (§3.2-3.4): the
/// sender declares a cookie; the receiver drives the copy, optionally on the
/// DMA engine and/or asynchronously; FIN releases the cookie.
class KnemBackend final : public Backend {
 public:
  explicit KnemBackend(core::Engine& eng) : eng_(eng) {}
  [[nodiscard]] LmtKind kind() const override { return LmtKind::kKnem; }
  [[nodiscard]] bool needs_cts() const override { return false; }
  [[nodiscard]] bool needs_fin() const override { return true; }
  void send_init(SendCtx& ctx) override;
  bool send_progress(SendCtx& ctx) override;
  void send_fin(SendCtx& ctx) override;
  void recv_init(RecvCtx& ctx) override;
  bool recv_progress(RecvCtx& ctx) override;

 private:
  core::Engine& eng_;
};

/// Single-copy transfer via cross-memory attach (process_vm_readv) — the
/// modern in-kernel successor to KNEM, needing no driver. The sender
/// registers its segments in the same arena-resident cookie table the KNEM
/// device uses (pid + iovec handshake); the receiver pulls the payload with
/// one process_vm_readv-driven copy. Falls back to a shm staging copy at
/// transfer time when the kernel refuses (ENOSYS, or EPERM from Yama
/// ptrace_scope / seccomp).
class CmaBackend final : public Backend {
 public:
  explicit CmaBackend(core::Engine& eng) : eng_(eng) {}
  [[nodiscard]] LmtKind kind() const override { return LmtKind::kCma; }
  [[nodiscard]] bool needs_cts() const override { return false; }
  [[nodiscard]] bool needs_fin() const override { return true; }
  void send_init(SendCtx& ctx) override;
  bool send_progress(SendCtx& ctx) override;
  void send_fin(SendCtx& ctx) override;
  void recv_init(RecvCtx& ctx) override;
  bool recv_progress(RecvCtx& ctx) override;

 private:
  core::Engine& eng_;
};

std::unique_ptr<Backend> make_backend(LmtKind kind, core::Engine& eng);

}  // namespace nemo::lmt
