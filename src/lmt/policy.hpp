// Dynamic LMT selection policy (paper §3.5).
//
// Two families of thresholds:
//  1. DMAmin — when the KNEM backend should offload to the DMA engine:
//         DMAmin = CacheSize / (2 * CoresSharingTheCache)
//     derived from "the cache must be at least two times larger than
//     messages being received" so a CPU copy does not flush the local cache.
//     With a 4 MiB L2 shared by 2 cores this gives 1 MiB; unshared, 2 MiB;
//     a 6 MiB L2 raises both by 50% — the measurements §3.5 reports.
//  2. Activation — when to leave the eager path for an LMT at all (Nemesis
//     hardwired 64 KiB; measurements show KNEM pays off from 8 KiB for
//     pingpong and 4 KiB inside collectives).
//
// The policy also picks *which* backend: KNEM when present; vmsplice when the
// communicating cores share no cache (where it beats the two-copy scheme);
// otherwise the default double-buffering (which wins under a shared cache).
//
// When a tune::TuningTable is attached (the runtime always attaches the
// World's effective table), its measured per-placement crossovers replace
// the static formulas: activation and backend come from the placement row,
// DMAmin from the measured value when present. Availability still gates the
// final backend (a table preferring KNEM falls back per the formula chain
// when the module cannot load).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/topology.hpp"
#include "lmt/lmt.hpp"
#include "tune/tuning.hpp"

namespace nemo::lmt {

/// Construction-time knobs for a Policy. Plain data; copied into the Policy.
/// The availability flags start from the caller's intent and are ANDed with
/// what World actually probed on the host (see effective_policy in comm.cpp).
struct PolicyConfig {
  std::size_t lmt_activation = 64 * 1024;   ///< Eager→LMT switch (Nemesis).
  std::size_t knem_activation = 8 * 1024;   ///< KNEM pays off from here...
  std::size_t knem_collective_activation = 4 * 1024;  ///< ...or here in colls.
  std::size_t dma_min_override = 0;         ///< Nonzero: skip the formula.

  bool knem_available = true;
  bool vmsplice_available = true;
  bool cma_available = true;
  bool dma_available = true;

  /// Measured per-machine tuning (nullptr = pure formula policy). Not
  /// owned; must outlive the Policy (the World owns the runtime's table).
  const tune::TuningTable* tuning = nullptr;
};

/// Per-engine LMT selection policy.
///
/// Contract: immutable after construction — every query (use_lmt,
/// choose_kind, dma_min_for, knem_flags) is const and depends only on its
/// arguments, so one Policy may be consulted from its owning rank's thread
/// for the life of the Engine without synchronisation. The tuning table it
/// references is owned by the World and outlives every Policy.
///
/// Placement semantics: cores are *logical* ids in the configured Topology
/// (which may be synthetic, e.g. the e5345 preset). A core of -1 means "this
/// rank is not bound"; pairs with any unknown core conservatively read the
/// cross-socket tuning row — the same "assume no shared cache" default the
/// formula policy uses. NUMA placement of the shared buffers themselves is
/// decided one layer up (shm::choose_region_placement consumed by World);
/// this class only picks thresholds and backends per message.
class Policy {
 public:
  Policy(Topology topo, PolicyConfig cfg)
      : topo_(std::move(topo)), cfg_(cfg) {}

  /// The paper's formula, computed from architecture characteristics only
  /// (one MPI process per core assumed, §3.5 second formula).
  static std::size_t dma_min(const Topology& topo, int core) {
    const CacheDomain& llc = topo.largest_cache(core);
    std::size_t sharers = llc.cores.empty() ? 1 : llc.cores.size();
    return llc.size_bytes / (2 * sharers);
  }

  [[nodiscard]] std::size_t dma_min_for(int recv_core) const {
    if (cfg_.dma_min_override != 0) return cfg_.dma_min_override;
    if (cfg_.tuning != nullptr && cfg_.tuning->dma_min != 0)
      return cfg_.tuning->dma_min;
    return dma_min(topo_, recv_core);
  }

  /// Placement row consulted for a core pair. Unknown cores (no binding)
  /// conservatively read the cross-socket row — the same "assume no shared
  /// cache" default the formula policy uses.
  [[nodiscard]] const tune::PlacementTuning& tuning_row(int sender_core,
                                                        int recv_core) const {
    PairPlacement p = PairPlacement::kDifferentSockets;
    if (cores_known(sender_core, recv_core))
      p = topo_.classify(sender_core, recv_core);
    return cfg_.tuning->for_placement(p);
  }

  /// Should this message leave the eager path? `collective` selects the
  /// lower activation threshold discussed in §4.4; cores (when known) select
  /// the tuned placement row.
  [[nodiscard]] bool use_lmt(std::size_t bytes, bool collective = false,
                             int sender_core = -1, int recv_core = -1) const {
    if (cfg_.tuning != nullptr) {
      std::size_t act = collective
                            ? cfg_.tuning->collective_activation
                            : tuning_row(sender_core, recv_core).lmt_activation;
      return bytes > act;
    }
    if (cfg_.knem_available) {
      std::size_t act = collective ? cfg_.knem_collective_activation
                                   : cfg_.knem_activation;
      return bytes > act;
    }
    return bytes > cfg_.lmt_activation;
  }

  /// Resolve kAuto into a concrete backend for a (sender, receiver) pair.
  /// The tuned row states a preference; availability gates it, falling back
  /// down the formula chain (knem -> vmsplice-on-unshared -> default).
  [[nodiscard]] LmtKind choose_kind(std::size_t bytes, int sender_core,
                                    int recv_core) const {
    bool shared = cores_known(sender_core, recv_core) &&
                  topo_.shared_cache(sender_core, recv_core).has_value();
    if (cfg_.tuning != nullptr) {
      switch (tuning_row(sender_core, recv_core).backend) {
        case tune::Backend::kKnem:
          if (cfg_.knem_available) return LmtKind::kKnem;
          break;
        case tune::Backend::kCma:
          if (cfg_.cma_available) return LmtKind::kCma;
          break;
        case tune::Backend::kVmsplice:
          if (cfg_.vmsplice_available) return LmtKind::kVmsplice;
          break;
        case tune::Backend::kDefault:
          return LmtKind::kDefaultShm;
      }
    } else if (cfg_.knem_available) {
      return LmtKind::kKnem;
    }
    // Fallback chain: CMA stands in for an unavailable KNEM (same
    // single-copy receiver-driven shape, no driver) once the message
    // amortises the attach syscall, then vmsplice on unshared-cache pairs,
    // then the default double-buffered ring.
    std::size_t cma_act =
        cfg_.tuning != nullptr ? cfg_.tuning->cma_activation : 8 * 1024;
    if (cfg_.cma_available && bytes >= cma_act) return LmtKind::kCma;
    if (cfg_.vmsplice_available && !shared) return LmtKind::kVmsplice;
    return LmtKind::kDefaultShm;
  }

  /// Resolve KNEM flags for a transfer. kAuto: DMA iff the message passes
  /// DMAmin for the receiving core; asynchronous iff DMA (KNEM's default).
  [[nodiscard]] std::uint32_t knem_flags(std::size_t bytes, int recv_core,
                                         KnemMode mode) const;

  [[nodiscard]] const Topology& topology() const { return topo_; }
  [[nodiscard]] const PolicyConfig& config() const { return cfg_; }

 private:
  /// Cores usable for classification: valid ids in topo_, distinct. Ids
  /// beyond the configured (possibly synthetic) topology count as unknown.
  [[nodiscard]] bool cores_known(int a, int b) const {
    return a >= 0 && a < topo_.num_cores && b >= 0 && b < topo_.num_cores &&
           a != b;
  }

  Topology topo_;
  PolicyConfig cfg_;
};

}  // namespace nemo::lmt
