// Dynamic LMT selection policy (paper §3.5).
//
// Two families of thresholds:
//  1. DMAmin — when the KNEM backend should offload to the DMA engine:
//         DMAmin = CacheSize / (2 * CoresSharingTheCache)
//     derived from "the cache must be at least two times larger than
//     messages being received" so a CPU copy does not flush the local cache.
//     With a 4 MiB L2 shared by 2 cores this gives 1 MiB; unshared, 2 MiB;
//     a 6 MiB L2 raises both by 50% — the measurements §3.5 reports.
//  2. Activation — when to leave the eager path for an LMT at all (Nemesis
//     hardwired 64 KiB; measurements show KNEM pays off from 8 KiB for
//     pingpong and 4 KiB inside collectives).
//
// The policy also picks *which* backend: KNEM when present; vmsplice when the
// communicating cores share no cache (where it beats the two-copy scheme);
// otherwise the default double-buffering (which wins under a shared cache).
//
// When a tune::TuningTable is attached (the runtime always attaches the
// World's effective table), its measured per-placement crossovers replace
// the static formulas: activation and backend come from the placement row,
// DMAmin from the measured value when present. Availability still gates the
// final backend (a table preferring KNEM falls back per the formula chain
// when the module cannot load).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/topology.hpp"
#include "lmt/lmt.hpp"
#include "tune/tuning.hpp"

namespace nemo::lmt {

struct PolicyConfig {
  std::size_t lmt_activation = 64 * 1024;   ///< Eager→LMT switch (Nemesis).
  std::size_t knem_activation = 8 * 1024;   ///< KNEM pays off from here...
  std::size_t knem_collective_activation = 4 * 1024;  ///< ...or here in colls.
  std::size_t dma_min_override = 0;         ///< Nonzero: skip the formula.

  bool knem_available = true;
  bool vmsplice_available = true;
  bool dma_available = true;

  /// Measured per-machine tuning (nullptr = pure formula policy). Not
  /// owned; must outlive the Policy (the World owns the runtime's table).
  const tune::TuningTable* tuning = nullptr;
};

class Policy {
 public:
  Policy(Topology topo, PolicyConfig cfg)
      : topo_(std::move(topo)), cfg_(cfg) {}

  /// The paper's formula, computed from architecture characteristics only
  /// (one MPI process per core assumed, §3.5 second formula).
  static std::size_t dma_min(const Topology& topo, int core) {
    const CacheDomain& llc = topo.largest_cache(core);
    std::size_t sharers = llc.cores.empty() ? 1 : llc.cores.size();
    return llc.size_bytes / (2 * sharers);
  }

  [[nodiscard]] std::size_t dma_min_for(int recv_core) const {
    if (cfg_.dma_min_override != 0) return cfg_.dma_min_override;
    if (cfg_.tuning != nullptr && cfg_.tuning->dma_min != 0)
      return cfg_.tuning->dma_min;
    return dma_min(topo_, recv_core);
  }

  /// Placement row consulted for a core pair. Unknown cores (no binding)
  /// conservatively read the cross-socket row — the same "assume no shared
  /// cache" default the formula policy uses.
  [[nodiscard]] const tune::PlacementTuning& tuning_row(int sender_core,
                                                        int recv_core) const {
    PairPlacement p = PairPlacement::kDifferentSockets;
    if (sender_core >= 0 && recv_core >= 0 && sender_core != recv_core)
      p = topo_.classify(sender_core, recv_core);
    return cfg_.tuning->for_placement(p);
  }

  /// Should this message leave the eager path? `collective` selects the
  /// lower activation threshold discussed in §4.4; cores (when known) select
  /// the tuned placement row.
  [[nodiscard]] bool use_lmt(std::size_t bytes, bool collective = false,
                             int sender_core = -1, int recv_core = -1) const {
    if (cfg_.tuning != nullptr) {
      std::size_t act = collective
                            ? cfg_.tuning->collective_activation
                            : tuning_row(sender_core, recv_core).lmt_activation;
      return bytes > act;
    }
    if (cfg_.knem_available) {
      std::size_t act = collective ? cfg_.knem_collective_activation
                                   : cfg_.knem_activation;
      return bytes > act;
    }
    return bytes > cfg_.lmt_activation;
  }

  /// Resolve kAuto into a concrete backend for a (sender, receiver) pair.
  /// The tuned row states a preference; availability gates it, falling back
  /// down the formula chain (knem -> vmsplice-on-unshared -> default).
  [[nodiscard]] LmtKind choose_kind(std::size_t bytes, int sender_core,
                                    int recv_core) const {
    (void)bytes;
    bool shared = sender_core >= 0 && recv_core >= 0 &&
                  topo_.shared_cache(sender_core, recv_core).has_value();
    if (cfg_.tuning != nullptr) {
      switch (tuning_row(sender_core, recv_core).backend) {
        case tune::Backend::kKnem:
          if (cfg_.knem_available) return LmtKind::kKnem;
          break;
        case tune::Backend::kVmsplice:
          if (cfg_.vmsplice_available) return LmtKind::kVmsplice;
          break;
        case tune::Backend::kDefault:
          return LmtKind::kDefaultShm;
      }
    } else if (cfg_.knem_available) {
      return LmtKind::kKnem;
    }
    if (cfg_.vmsplice_available && !shared) return LmtKind::kVmsplice;
    return LmtKind::kDefaultShm;
  }

  /// Resolve KNEM flags for a transfer. kAuto: DMA iff the message passes
  /// DMAmin for the receiving core; asynchronous iff DMA (KNEM's default).
  [[nodiscard]] std::uint32_t knem_flags(std::size_t bytes, int recv_core,
                                         KnemMode mode) const;

  [[nodiscard]] const Topology& topology() const { return topo_; }
  [[nodiscard]] const PolicyConfig& config() const { return cfg_; }

 private:
  Topology topo_;
  PolicyConfig cfg_;
};

}  // namespace nemo::lmt
