// Dynamic LMT selection policy (paper §3.5).
//
// Two families of thresholds:
//  1. DMAmin — when the KNEM backend should offload to the DMA engine:
//         DMAmin = CacheSize / (2 * CoresSharingTheCache)
//     derived from "the cache must be at least two times larger than
//     messages being received" so a CPU copy does not flush the local cache.
//     With a 4 MiB L2 shared by 2 cores this gives 1 MiB; unshared, 2 MiB;
//     a 6 MiB L2 raises both by 50% — the measurements §3.5 reports.
//  2. Activation — when to leave the eager path for an LMT at all (Nemesis
//     hardwired 64 KiB; measurements show KNEM pays off from 8 KiB for
//     pingpong and 4 KiB inside collectives).
//
// The policy also picks *which* backend: KNEM when present; vmsplice when the
// communicating cores share no cache (where it beats the two-copy scheme);
// otherwise the default double-buffering (which wins under a shared cache).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/topology.hpp"
#include "lmt/lmt.hpp"

namespace nemo::lmt {

struct PolicyConfig {
  std::size_t lmt_activation = 64 * 1024;   ///< Eager→LMT switch (Nemesis).
  std::size_t knem_activation = 8 * 1024;   ///< KNEM pays off from here...
  std::size_t knem_collective_activation = 4 * 1024;  ///< ...or here in colls.
  std::size_t dma_min_override = 0;         ///< Nonzero: skip the formula.

  bool knem_available = true;
  bool vmsplice_available = true;
  bool dma_available = true;
};

class Policy {
 public:
  Policy(Topology topo, PolicyConfig cfg)
      : topo_(std::move(topo)), cfg_(cfg) {}

  /// The paper's formula, computed from architecture characteristics only
  /// (one MPI process per core assumed, §3.5 second formula).
  static std::size_t dma_min(const Topology& topo, int core) {
    const CacheDomain& llc = topo.largest_cache(core);
    std::size_t sharers = llc.cores.empty() ? 1 : llc.cores.size();
    return llc.size_bytes / (2 * sharers);
  }

  [[nodiscard]] std::size_t dma_min_for(int recv_core) const {
    if (cfg_.dma_min_override != 0) return cfg_.dma_min_override;
    return dma_min(topo_, recv_core);
  }

  /// Should this message leave the eager path? `collective` selects the
  /// lower activation threshold discussed in §4.4.
  [[nodiscard]] bool use_lmt(std::size_t bytes, bool collective = false) const {
    if (cfg_.knem_available) {
      std::size_t act = collective ? cfg_.knem_collective_activation
                                   : cfg_.knem_activation;
      return bytes > act;
    }
    return bytes > cfg_.lmt_activation;
  }

  /// Resolve kAuto into a concrete backend for a (sender, receiver) pair.
  [[nodiscard]] LmtKind choose_kind(std::size_t bytes, int sender_core,
                                    int recv_core) const {
    (void)bytes;
    if (cfg_.knem_available) return LmtKind::kKnem;
    bool shared = sender_core >= 0 && recv_core >= 0 &&
                  topo_.shared_cache(sender_core, recv_core).has_value();
    if (cfg_.vmsplice_available && !shared) return LmtKind::kVmsplice;
    return LmtKind::kDefaultShm;
  }

  /// Resolve KNEM flags for a transfer. kAuto: DMA iff the message passes
  /// DMAmin for the receiving core; asynchronous iff DMA (KNEM's default).
  [[nodiscard]] std::uint32_t knem_flags(std::size_t bytes, int recv_core,
                                         KnemMode mode) const;

  [[nodiscard]] const Topology& topology() const { return topo_; }
  [[nodiscard]] const PolicyConfig& config() const { return cfg_; }

 private:
  Topology topo_;
  PolicyConfig cfg_;
};

}  // namespace nemo::lmt
