// The Large Message Transfer (LMT) interface — nemolmt's reimplementation of
// the MPICH2-Nemesis internal API this paper extends (§2).
//
// A rendezvous transfer flows:
//
//   sender                                receiver
//   ------                                --------
//   send_init()  -> RTS(wire cookie) ->   [match posted recv]
//                                          recv_init()
//                <- CTS (if needs_cts) <-
//   send_progress() ... data ...           recv_progress() ...
//                <- FIN (if needs_fin) <-
//   send_fin(), request completes          request completes
//
// Each backend fills/consumes the wire cookie and moves the payload its own
// way: double-buffered shm ring (default), vmsplice'd pipe (single copy),
// writev'd pipe (two copies, Fig. 3's comparison), or the KNEM device
// (single copy, optionally DMA-offloaded and/or asynchronous).
#pragma once

#include <cstdint>
#include <memory>

#include "common/iovec.hpp"
#include "common/topology.hpp"

namespace nemo {

namespace core {
class World;
class Engine;
}  // namespace core

namespace lmt {

/// Which transfer mechanism a rendezvous uses.
enum class LmtKind : std::uint32_t {
  kDefaultShm = 0,     ///< Double-buffered copy through shared memory.
  kVmsplice = 1,       ///< Single copy via vmsplice + readv.
  kVmspliceWritev = 2, ///< Two copies via writev + readv (Fig. 3 baseline).
  kKnem = 3,           ///< Single copy via the KNEM pseudo-device.
  kCma = 4,            ///< Single copy via process_vm_readv (cross-memory
                       ///< attach — the modern in-kernel KNEM successor).
  kAuto = 100,         ///< Let the policy pick per message (§3.5).
};

const char* to_string(LmtKind k);

/// KNEM operating mode (paper §3.3-3.4).
enum class KnemMode : std::uint32_t {
  kSyncCopy = 0,   ///< Receiver core copies inline.
  kAsyncCopy = 1,  ///< Kernel-thread offload on the receiver core.
  kSyncDma = 2,    ///< I/OAT engine, polled before returning.
  kAsyncDma = 3,   ///< I/OAT engine, status-byte completion.
  kAuto = 100,     ///< DMA iff size >= DMAmin; async iff DMA (paper default).
};

const char* to_string(KnemMode m);

/// Wire cookie carried inside the RTS (and echoed info in CTS) cells.
struct RtsWire {
  std::uint64_t total = 0;        ///< Message payload size in bytes.
  std::uint32_t kind = 0;         ///< Concrete LmtKind chosen by the sender.
  std::uint32_t knem_flags = 0;   ///< kFlagDma/kFlagAsync hints.
  std::uint64_t knem_cookie = 0;  ///< KNEM cookie id (kKnem only).
  std::uint32_t sender_core = 0;  ///< For receiver-side policy decisions.
  std::uint32_t nsegs = 0;        ///< Segment count of the send buffer.
};
static_assert(sizeof(RtsWire) == 32);

/// Sender-side per-transfer state.
struct SendCtx {
  int peer = -1;
  int tag = 0;
  std::uint32_t seq = 0;
  ConstSegmentList segs;
  std::uint64_t total = 0;
  RtsWire rts{};

  bool cts_seen = false;
  bool fin_seen = false;
  bool data_done = false;  ///< Backend finished its sender-side data motion.

  // Backend scratch.
  std::uint64_t ring_cursor = 0;   ///< shm ring chunk index.
  std::size_t bytes_moved = 0;
  std::size_t seg_idx = 0;         ///< Position in segs...
  std::size_t seg_off = 0;         ///< ...and offset within segs[seg_idx].
  std::uint64_t knem_cookie = 0;

  void* user = nullptr;  ///< Engine backref (request state).
};

/// Receiver-side per-transfer state.
struct RecvCtx {
  int peer = -1;
  int tag = 0;
  std::uint32_t seq = 0;
  SegmentList segs;
  std::uint64_t total = 0;   ///< From RTS (may be < recv buffer capacity).
  RtsWire rts{};

  bool cts_sent = false;
  bool data_done = false;
  bool fin_sent = false;

  // Backend scratch.
  std::uint64_t ring_cursor = 0;
  std::size_t bytes_moved = 0;
  std::size_t seg_idx = 0;
  std::size_t seg_off = 0;
  volatile std::uint8_t async_status = 0;  ///< KNEM async completion byte.
  bool async_submitted = false;

  void* user = nullptr;
};

/// Backend interface. One instance per (rank, kind); stateless across
/// transfers except for references to shared structures.
class Backend {
 public:
  virtual ~Backend() = default;

  [[nodiscard]] virtual LmtKind kind() const = 0;

  /// Sender must wait for CTS before moving data (ring/pipe backends).
  [[nodiscard]] virtual bool needs_cts() const = 0;

  /// Receiver must send FIN when done (cookie release / page-reuse safety).
  [[nodiscard]] virtual bool needs_fin() const = 0;

  /// Fill ctx.rts (register cookies etc.). Called before the RTS is sent.
  virtual void send_init(SendCtx& ctx) = 0;

  /// Move sender-side data. Returns true when the sender-local part is done.
  /// Only called after CTS when needs_cts().
  virtual bool send_progress(SendCtx& ctx) = 0;

  /// Called when FIN arrives (release registration). Also called on abort.
  virtual void send_fin(SendCtx& ctx) = 0;

  /// Prepare receiver state after RTS is matched with a posted recv.
  virtual void recv_init(RecvCtx& ctx) = 0;

  /// Move receiver-side data. Returns true when all payload has landed.
  virtual bool recv_progress(RecvCtx& ctx) = 0;
};

/// Overall sender completion: data moved, and FIN seen when required.
inline bool send_complete(const Backend& b, const SendCtx& ctx) {
  if (!ctx.data_done) return false;
  if (b.needs_fin() && !ctx.fin_seen) return false;
  return true;
}

}  // namespace lmt
}  // namespace nemo
