#include "lmt/policy.hpp"

#include "knem/knem_device.hpp"

namespace nemo::lmt {

const char* to_string(LmtKind k) {
  switch (k) {
    case LmtKind::kDefaultShm: return "default";
    case LmtKind::kVmsplice: return "vmsplice";
    case LmtKind::kVmspliceWritev: return "vmsplice-writev";
    case LmtKind::kKnem: return "knem";
    case LmtKind::kCma: return "cma";
    case LmtKind::kAuto: return "auto";
  }
  return "?";
}

const char* to_string(KnemMode m) {
  switch (m) {
    case KnemMode::kSyncCopy: return "sync-copy";
    case KnemMode::kAsyncCopy: return "async-copy";
    case KnemMode::kSyncDma: return "sync-dma";
    case KnemMode::kAsyncDma: return "async-dma";
    case KnemMode::kAuto: return "auto";
  }
  return "?";
}

std::uint32_t Policy::knem_flags(std::size_t bytes, int recv_core,
                                 KnemMode mode) const {
  switch (mode) {
    case KnemMode::kSyncCopy:
      return 0;
    case KnemMode::kAsyncCopy:
      return knem::kFlagAsync;
    case KnemMode::kSyncDma:
      return cfg_.dma_available ? knem::kFlagDma : 0u;
    case KnemMode::kAsyncDma:
      return cfg_.dma_available ? (knem::kFlagDma | knem::kFlagAsync)
                                : knem::kFlagAsync;
    case KnemMode::kAuto: {
      if (!cfg_.dma_available) return 0;
      std::size_t thresh =
          dma_min_for(recv_core >= 0 ? recv_core : 0);
      if (bytes >= thresh) return knem::kFlagDma | knem::kFlagAsync;
      return 0;
    }
  }
  return 0;
}

}  // namespace nemo::lmt
