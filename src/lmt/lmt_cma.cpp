// CMA backend: single-copy large-message transfer via cross-memory attach
// (process_vm_readv), the mainline kernel's descendant of the paper's KNEM
// module. The handshake reuses the arena-resident cookie table — the sender
// declares its segments and ships the cookie id in the RTS; the receiver
// resolves it to (pid, iovec) and pulls the payload with one kernel-mediated
// copy. Like KNEM the flow is receiver-driven with a FIN releasing the
// cookie. When the CMA syscalls fail at transfer time (EPERM under Yama
// ptrace_scope / seccomp, ENOSYS on old kernels) the transfer degrades to a
// sender-staged copy through the arena instead of failing.
#include <cerrno>
#include <cstring>

#include "core/comm.hpp"
#include "lmt/backends.hpp"

namespace nemo::lmt {

void CmaBackend::send_init(SendCtx& ctx) {
  ctx.knem_cookie = eng_.knem_device().submit_send(
      std::span<const ConstSegment>(ctx.segs));
  ctx.rts.kind = static_cast<std::uint32_t>(LmtKind::kCma);
  ctx.rts.total = ctx.total;
  ctx.rts.knem_cookie = ctx.knem_cookie;
  ctx.rts.nsegs = static_cast<std::uint32_t>(ctx.segs.size());
  int core = eng_.world().core_of(eng_.rank());
  ctx.rts.sender_core = core >= 0 ? static_cast<std::uint32_t>(core) : 0;
}

bool CmaBackend::send_progress(SendCtx& ctx) {
  // Data motion is receiver-driven; the sender's only job is to watch the
  // cookie slot for a staging request (the receiver's CMA syscalls failed)
  // and fulfil it — the sender can always read its own pages.
  if (ctx.fin_seen) return true;
  return eng_.knem_device().try_fulfill_stage(
      ctx.knem_cookie, std::span<const ConstSegment>(ctx.segs));
}

void CmaBackend::send_fin(SendCtx& ctx) {
  if (ctx.knem_cookie != 0) {
    eng_.knem_device().release(ctx.knem_cookie);
    ctx.knem_cookie = 0;
  }
}

void CmaBackend::recv_init(RecvCtx&) {
  // No receive-command flags: the receiving core always drives the copy
  // (CMA has no DMA or kernel-thread variant).
}

bool CmaBackend::recv_progress(RecvCtx& ctx) {
  knem::Device& dev = eng_.knem_device();
  // async_submitted doubles as "staging fallback requested"; ring_cursor
  // holds the staging buffer's arena offset.
  if (!ctx.async_submitted) {
    auto r = dev.resolve(ctx.rts.knem_cookie);
    NEMO_ASSERT_MSG(r.has_value(), "stale CMA cookie");
    std::size_t cap = 0;
    for (const auto& seg : ctx.segs) cap += seg.len;
    NEMO_ASSERT_MSG(cap >= r->total, "CMA receive buffer too small");

    bool sim_fail = eng_.world().config().cma_sim_fail;
    if (!sim_fail) {
      try {
        shm::RemoteMemPort port(r->mode, r->pid);
        port.read(r->segs, std::span<const Segment>(ctx.segs),
                  /*non_temporal=*/false);
        dev.note_cma_read(r->total);
        return true;
      } catch (const SysError& e) {
        int err = e.sys_errno();
        if (err == ESRCH) {
          // The sender's pid is gone: that is a death verdict, not a
          // capability problem — staging would wait forever on a sender
          // that can never fulfil it. Flag the shared liveness cell so
          // every rank converts the verdict eagerly, then fail this wait.
          resil::Liveness live = eng_.world().liveness();
          if (live.valid() && ctx.peer >= 0) live.mark_dead(ctx.peer);
          throw resil::PeerDeadError(ctx.peer, resil::Site::kCmaRendezvous,
                                     /*from_timeout=*/false);
        }
        if (err != EPERM && err != ENOSYS) throw;
        // Kernel refused the attach: degrade to the staged path below.
      }
    }
    std::uint64_t off = dev.request_stage(ctx.rts.knem_cookie);
    NEMO_ASSERT_MSG(off != shm::kNil, "stale CMA cookie on stage request");
    ctx.ring_cursor = off;
    ctx.async_submitted = true;
    return false;
  }

  if (!dev.stage_ready(ctx.rts.knem_cookie)) return false;
  // Second copy of the degraded path: out of the arena stage into the
  // posted receive segments.
  const std::byte* src = eng_.world().arena().at(ctx.ring_cursor);
  std::size_t left = ctx.total;
  for (const auto& seg : ctx.segs) {
    if (left == 0) break;
    std::size_t n = seg.len < left ? seg.len : left;
    std::memcpy(seg.base, src, n);
    src += n;
    left -= n;
  }
  return true;
}

}  // namespace nemo::lmt
