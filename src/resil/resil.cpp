#include "resil/resil.hpp"

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <ctime>

#include "common/options.hpp"
#include "tune/counters.hpp"

namespace nemo::resil {

const char* site_name(Site s) {
  switch (s) {
    case Site::kCollDeposit: return "coll_deposit";
    case Site::kCollFold: return "coll_fold";
    case Site::kBarrierArrive: return "barrier_arrive";
    case Site::kCmaRendezvous: return "cma_rendezvous";
    case Site::kFastboxPut: return "fastbox_put";
    case Site::kCollDoorbell: return "coll_doorbell";
    case Site::kCollAck: return "coll_ack";
    case Site::kCollProbe: return "coll_probe";
    case Site::kBarrierRelease: return "barrier_release";
    case Site::kCollGather: return "coll_gather";
    case Site::kEngineWait: return "engine_wait";
    case Site::kCellAlloc: return "cell_alloc";
    case Site::kPendingCtrl: return "pending_ctrl";
    case Site::kHardBarrier: return "hard_barrier";
    case Site::kFenceSync: return "fence_sync";
    case Site::kSiteCount: break;
  }
  return "?";
}

std::optional<Site> crash_site_from_string(const std::string& s) {
  for (auto site : {Site::kCollDeposit, Site::kCollFold, Site::kBarrierArrive,
                    Site::kCmaRendezvous, Site::kFastboxPut}) {
    if (s == site_name(site)) return site;
  }
  return std::nullopt;
}

PeerDeadError::PeerDeadError(int rank, Site site, bool from_timeout)
    : std::runtime_error("peer rank " + std::to_string(rank) + " is dead (" +
                         (from_timeout ? "heartbeat timeout" : "death verdict") +
                         " at " + site_name(site) + ")"),
      rank(rank),
      site(site),
      from_timeout(from_timeout) {}

std::uint64_t now_ns() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

// --- Liveness ---------------------------------------------------------------

std::size_t Liveness::footprint(int nranks) {
  // Heartbeat cells, the fence block, and one fence-flag line per rank.
  return sizeof(LifeCell) * static_cast<std::size_t>(nranks) +
         sizeof(FenceBlock) +
         sizeof(LifeCell) * static_cast<std::size_t>(nranks);
}

std::uint64_t Liveness::create(shm::Arena& arena, int nranks) {
  std::uint64_t off = arena.alloc(footprint(nranks), kCacheLine);
  std::memset(arena.at(off), 0, footprint(nranks));
  return off;
}

Liveness::Liveness(const shm::Arena& arena, std::uint64_t off, int nranks)
    : n_(nranks) {
  cells_ = arena.at_as<LifeCell>(off);
  std::uint64_t fence_off =
      off + sizeof(LifeCell) * static_cast<std::uint64_t>(nranks);
  fence_ = arena.at_as<FenceBlock>(fence_off);
  flags_ = arena.at_as<LifeCell>(fence_off + sizeof(FenceBlock));
}

void Liveness::beat(int r) const {
  NEMO_ASSERT(r >= 0 && r < n_);
  shm::aref(cells_[r].beats).fetch_add(1, std::memory_order_relaxed);
  shm::aref(cells_[r].stamp_ns)
      .store(now_ns(), std::memory_order_release);
}

void Liveness::mark_dead(int r) const {
  NEMO_ASSERT(r >= 0 && r < n_);
  shm::aref(cells_[r].dead).store(1, std::memory_order_release);
}

bool Liveness::is_dead(int r) const {
  NEMO_ASSERT(r >= 0 && r < n_);
  return shm::aref(cells_[r].dead).load(std::memory_order_acquire) != 0;
}

std::uint64_t Liveness::beats(int r) const {
  NEMO_ASSERT(r >= 0 && r < n_);
  return shm::aref(cells_[r].beats).load(std::memory_order_relaxed);
}

std::uint64_t Liveness::stamp_ns(int r) const {
  NEMO_ASSERT(r >= 0 && r < n_);
  return shm::aref(cells_[r].stamp_ns).load(std::memory_order_acquire);
}

int Liveness::find_dead(int self) const {
  for (int r = 0; r < n_; ++r)
    if (r != self && is_dead(r)) return r;
  return -1;
}

std::uint64_t Liveness::fence_generation() const {
  return shm::aref(fence_->generation).load(std::memory_order_acquire);
}

void Liveness::publish_fence_generation(std::uint64_t from,
                                        std::uint64_t to) const {
  shm::aref(fence_->generation)
      .compare_exchange_strong(from, to, std::memory_order_acq_rel);
}

void Liveness::propose_resync(std::uint64_t floor) const {
  auto word = shm::aref(fence_->resync);
  std::uint64_t cur = word.load(std::memory_order_acquire);
  while (cur < floor &&
         !word.compare_exchange_weak(cur, floor, std::memory_order_acq_rel)) {
  }
}

std::uint64_t Liveness::resync_floor() const {
  return shm::aref(fence_->resync).load(std::memory_order_acquire);
}

void Liveness::set_fence_flag(int r, std::uint64_t gen) const {
  NEMO_ASSERT(r >= 0 && r < n_);
  shm::aref(flags_[r].beats).store(gen, std::memory_order_release);
}

std::uint64_t Liveness::fence_flag(int r) const {
  NEMO_ASSERT(r >= 0 && r < n_);
  return shm::aref(flags_[r].beats).load(std::memory_order_acquire);
}

// --- WaitGuard --------------------------------------------------------------

WaitGuard::WaitGuard(const Liveness* live, int self, int watch, Site site,
                     std::size_t timeout_ms, tune::Counters* counters,
                     const unsigned char* fenced)
    : live_(live),
      fenced_(fenced),
      counters_(counters),
      self_(self),
      watch_(watch),
      site_(site) {
  armed_ = live_ != nullptr && live_->valid() && timeout_ms != kTimeoutOff;
  if (!armed_) return;
  timeout_ns_ = static_cast<std::uint64_t>(timeout_ms) * 1'000'000ull;
  deadline_ns_ = now_ns() + timeout_ns_;
}

void WaitGuard::check() {
  if (!armed_) return;
  if (self_ >= 0) live_->beat(self_);

  // A wait on a specific dead rank can never complete, even in a degraded
  // world where the death has already been fenced.
  if (watch_ >= 0 && live_->is_dead(watch_))
    throw PeerDeadError(watch_, site_, false);

  // Eager verdicts: some other detector (parent reaper, CMA ESRCH, another
  // rank's timeout) already flagged a peer. Fenced ranks are exempt so a
  // degraded world's survivors can keep waiting on each other.
  for (int r = 0; r < live_->nranks(); ++r) {
    if (skip(r)) continue;
    if (live_->is_dead(r)) throw PeerDeadError(r, site_, false);
  }

  std::uint64_t now = now_ns();
  if (now < deadline_ns_) return;

  // Deadline expired: any watched peer with a stale heartbeat is declared
  // dead. A fresh heartbeat means slow-but-alive: extend and keep waiting.
  int stale = -1;
  for (int r = 0; r < live_->nranks(); ++r) {
    if (skip(r)) continue;
    if (watch_ >= 0 && r != watch_) continue;
    std::uint64_t stamp = live_->stamp_ns(r);
    if (stamp == 0) continue;  // never started: the dead flag covers it
    if (now - stamp >= timeout_ns_) {
      stale = r;
      break;
    }
  }
  if (stale >= 0) {
    live_->mark_dead(stale);
    if (counters_ != nullptr) counters_->timeout_aborts++;
    throw PeerDeadError(stale, site_, true);
  }
  deadline_ns_ = now + timeout_ns_;
}

// --- fault injection --------------------------------------------------------

namespace detail {
std::atomic<int> g_fault_rank{-1};
FaultSpec g_fault{};

void fire() {
  // SIGKILL, not abort(): the point is an unannounced death — no unwinding,
  // no atexit, exactly what a crashed or OOM-killed rank looks like.
  std::fprintf(stderr, "nemo: NEMO_FAULT firing: killing rank %d at %s\n",
               g_fault.rank, site_name(g_fault.site));
  std::fflush(stderr);
  ::raise(SIGKILL);
  ::_exit(137);  // unreachable; keeps [[noreturn]] honest
}
}  // namespace detail

FaultSpec parse_fault_spec(const std::string& spec) {
  auto bad = [&](const char* why) {
    throw std::invalid_argument("NEMO_FAULT='" + spec + "': " + why +
                                " (expected rank:site:kill, e.g. "
                                "2:coll_deposit:kill)");
  };
  std::size_t c1 = spec.find(':');
  std::size_t c2 = c1 == std::string::npos ? c1 : spec.find(':', c1 + 1);
  if (c1 == std::string::npos || c2 == std::string::npos)
    bad("not rank:site:op");
  FaultSpec out;
  try {
    out.rank = std::stoi(spec.substr(0, c1));
  } catch (const std::exception&) {
    bad("rank is not a number");
  }
  if (out.rank < 0) bad("rank is negative");
  std::string site = spec.substr(c1 + 1, c2 - c1 - 1);
  auto resolved = crash_site_from_string(site);
  if (!resolved)
    bad("unknown crash site (coll_deposit, coll_fold, barrier_arrive, "
        "cma_rendezvous, fastbox_put)");
  out.site = *resolved;
  if (spec.substr(c2 + 1) != "kill") bad("unknown op (only: kill)");
  return out;
}

void reload_fault() {
  detail::g_fault_rank.store(-1, std::memory_order_relaxed);
  auto spec = nemo::Config::str("NEMO_FAULT");
  if (!spec || spec->empty()) return;
  detail::g_fault = parse_fault_spec(*spec);
  detail::g_fault_rank.store(detail::g_fault.rank, std::memory_order_relaxed);
}

}  // namespace nemo::resil
