// Liveness and recovery: the pieces that keep a long-lived world from
// hanging forever when a peer rank dies mid-protocol.
//
// The Nemesis design is cooperative lock-free progress: every doorbell, ack,
// barrier and rendezvous wait assumes the peer eventually shows up. Once
// worlds span real processes (NEMO_WORLD_MODE=procs) a SIGKILL'd rank leaves
// all of those loops spinning forever. This module adds:
//
//  - a per-rank heartbeat table in the shared arena (`Liveness`): each rank
//    bumps a beat counter + CLOCK_MONOTONIC stamp from its progress loop,
//    and anyone may set a sticky "dead" flag (the parent reaper in procs
//    mode, a CMA ESRCH verdict, or a heartbeat timeout);
//  - a bounded-wait primitive (`WaitGuard`) dropped into the slow path of
//    every formerly-unbounded spin: it checks dead flags eagerly and, past
//    `NEMO_PEER_TIMEOUT_MS`, converts a stale heartbeat into a death
//    verdict, throwing `PeerDeadError{rank, site}` instead of hanging;
//  - a deterministic fault injector (`NEMO_FAULT=rank:site:op`): named crash
//    points in the hot paths behind a single relaxed load, so tests can kill
//    a specific rank at a specific protocol step reproducibly;
//  - the shared words the post-death epoch fence uses to resynchronise
//    survivor sequence counters (fence generation + counter floor).
//
// See docs/RESILIENCE.md for the protocol walkthrough and failure-mode
// table.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "common/common.hpp"
#include "shm/arena.hpp"

namespace nemo::tune {
struct Counters;
}

namespace nemo::resil {

/// Protocol steps where a peer death can be detected (wait sites) or
/// injected (crash sites). Crash sites double as the names accepted by
/// NEMO_FAULT.
enum class Site : std::uint8_t {
  // Crash sites (injectable via NEMO_FAULT).
  kCollDeposit = 0,   ///< reduction writer about to publish a chunk
  kCollFold,          ///< leader about to fold a peer contribution
  kBarrierArrive,     ///< rank about to store its barrier arrival
  kCmaRendezvous,     ///< sender just published an RTS for a CMA transfer
  kFastboxPut,        ///< sender about to write an eager fastbox slot
  // Wait sites (where a bounded wait can observe the death).
  kCollDoorbell,      ///< waiting for a slot header / chunk doorbell
  kCollAck,           ///< waiting for a consumer ack
  kCollProbe,         ///< waiting for an alltoallv probe cell
  kBarrierRelease,    ///< waiting for the barrier release word
  kCollGather,        ///< leader waiting for writer deposits
  kEngineWait,        ///< Engine::wait on an incomplete request
  kCellAlloc,         ///< waiting for a free ctrl cell
  kPendingCtrl,       ///< draining the deferred ctrl queue
  kHardBarrier,       ///< World::hard_barrier generation wait
  kFenceSync,         ///< waiting for survivors inside fence_world()
  kSiteCount
};

[[nodiscard]] const char* site_name(Site s);

/// Crash-site lookup for the NEMO_FAULT parser. Only the injectable sites
/// resolve; wait sites are detection-only.
[[nodiscard]] std::optional<Site> crash_site_from_string(const std::string& s);

/// Thrown instead of hanging when a wait's peer is declared dead.
class PeerDeadError : public std::runtime_error {
 public:
  PeerDeadError(int rank, Site site, bool from_timeout);
  int rank;           ///< the rank declared dead
  Site site;          ///< where the survivor observed it
  bool from_timeout;  ///< true = heartbeat timeout, false = eager verdict
};

/// What survivors do after the fence: poison the world (kAbort, default) or
/// keep it usable over the survivor set (kDegrade).
enum class OnPeerDeath : std::uint8_t { kAbort, kDegrade };

/// Timeout sentinel: liveness checking disabled (NEMO_PEER_TIMEOUT_MS=off).
inline constexpr std::size_t kTimeoutOff = SIZE_MAX;

/// Default peer timeout: generous, so slow-but-alive ranks (compute phases,
/// oversubscribed CI runners) are never declared dead by accident.
inline constexpr std::size_t kDefaultTimeoutMs = 30000;

[[nodiscard]] std::uint64_t now_ns();

/// One rank's liveness state. A full cache line each so heartbeat stores
/// never contend with a neighbour's.
struct LifeCell {
  std::uint64_t beats;     ///< heartbeat counter (relaxed)
  std::uint64_t stamp_ns;  ///< CLOCK_MONOTONIC at the last beat; 0 = never
  std::uint64_t dead;      ///< sticky death flag (release store)
  std::uint64_t pad_[kCacheLine / 8 - 3];
};
static_assert(sizeof(LifeCell) == kCacheLine);

/// Shared words driving the post-death epoch fence (fence_world()).
struct FenceBlock {
  alignas(kCacheLine) std::uint64_t generation;  ///< completed fence count
  alignas(kCacheLine) std::uint64_t resync;      ///< fetch_max'd counter floor
};

/// View over the liveness region carved in the world's bootstrap span.
/// Offset-addressed like everything else in the arena: construct a fresh
/// view after reattach_in_child().
class Liveness {
 public:
  Liveness() = default;
  Liveness(const shm::Arena& arena, std::uint64_t off, int nranks);

  /// Carve and zero a liveness region; returns its offset.
  static std::uint64_t create(shm::Arena& arena, int nranks);
  [[nodiscard]] static std::size_t footprint(int nranks);

  [[nodiscard]] bool valid() const { return cells_ != nullptr; }
  [[nodiscard]] int nranks() const { return n_; }

  /// Bump rank r's heartbeat (called from its own progress loop).
  void beat(int r) const;
  /// Sticky death verdict; safe from any process attached to the arena.
  void mark_dead(int r) const;
  [[nodiscard]] bool is_dead(int r) const;
  [[nodiscard]] std::uint64_t beats(int r) const;
  [[nodiscard]] std::uint64_t stamp_ns(int r) const;

  /// First dead rank != self, or -1.
  [[nodiscard]] int find_dead(int self) const;

  // --- fence words ---------------------------------------------------------
  [[nodiscard]] std::uint64_t fence_generation() const;
  /// CAS generation from -> to; used by the fence coordinator.
  void publish_fence_generation(std::uint64_t from, std::uint64_t to) const;
  /// fetch_max a proposed sequence-counter floor into the resync word.
  void propose_resync(std::uint64_t floor) const;
  [[nodiscard]] std::uint64_t resync_floor() const;
  /// Per-rank fence arrival flag (monotonic generation number).
  void set_fence_flag(int r, std::uint64_t gen) const;
  [[nodiscard]] std::uint64_t fence_flag(int r) const;

 private:
  LifeCell* cells_ = nullptr;
  FenceBlock* fence_ = nullptr;
  LifeCell* flags_ = nullptr;  ///< per-rank fence flags, one line each
  int n_ = 0;
};

/// Bounded-wait companion: construct before a spin loop, call check() on the
/// slow path (every ~64 spins). Free when the timeout is off.
///
/// check() in order:
///  1. beats `self` (so two ranks waiting on each other stay live);
///  2. if `watch` >= 0 and that rank is dead: throw (always — a wait on a
///     known-dead rank can never complete);
///  3. eager scan: any dead rank throws immediately, except ranks in `fenced`
///     (degrade mode passes the engine's already-fenced set so survivors can
///     keep waiting on each other after recovery);
///  4. past the deadline: a watched peer whose heartbeat is older than the
///     timeout is marked dead (counters->timeout_aborts++) and thrown;
///     otherwise every watched peer beat recently, so the deadline extends.
///
/// A rank that has never beaten (stamp 0) is exempt from the staleness
/// verdict — it may still be forking/attaching — but not from dead flags.
class WaitGuard {
 public:
  WaitGuard(const Liveness* live, int self, int watch, Site site,
            std::size_t timeout_ms, tune::Counters* counters,
            const unsigned char* fenced);

  void check();

  [[nodiscard]] bool armed() const { return armed_; }

 private:
  [[nodiscard]] bool skip(int r) const {
    return r == self_ || (fenced_ != nullptr && fenced_[r] != 0);
  }

  const Liveness* live_;
  const unsigned char* fenced_;  ///< nullable; ranks to ignore (degrade mode)
  tune::Counters* counters_;     ///< nullable
  std::uint64_t timeout_ns_ = 0;
  std::uint64_t deadline_ns_ = 0;
  int self_;
  int watch_;  ///< specific rank awaited, or -1 = any peer
  Site site_;
  bool armed_ = false;
};

// --- deterministic fault injection -----------------------------------------

struct FaultSpec {
  int rank = -1;
  Site site = Site::kSiteCount;
};

namespace detail {
/// -1 = disarmed; otherwise the rank NEMO_FAULT targets. Single relaxed load
/// on the hot path, same discipline as trace::on().
extern std::atomic<int> g_fault_rank;
extern FaultSpec g_fault;
[[noreturn]] void fire();
}  // namespace detail

/// Re-read NEMO_FAULT (rank:site:op). Called from World construction, like
/// trace::reload_mode(). Unset disarms. Throws std::invalid_argument on a
/// malformed spec or unknown site/op so typos fail loudly.
void reload_fault();

/// Parse a NEMO_FAULT spec string (exposed for tests).
FaultSpec parse_fault_spec(const std::string& spec);

/// Crash point: kills the calling rank when NEMO_FAULT matches (site, rank).
inline void fault_point(Site site, int rank) {
  if (detail::g_fault_rank.load(std::memory_order_relaxed) != rank) return;
  if (detail::g_fault.site == site) detail::fire();
}

}  // namespace nemo::resil
