#include "counters/papi_lite.hpp"

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>

namespace nemo::counters {

namespace {

int open_counter(std::uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 0;
  attr.exclude_hv = 1;
  return static_cast<int>(
      ::syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
}

std::uint64_t read_counter(int fd) {
  if (fd < 0) return 0;
  std::uint64_t v = 0;
  if (::read(fd, &v, sizeof(v)) != static_cast<ssize_t>(sizeof(v))) return 0;
  return v;
}

}  // namespace

HwCounters::HwCounters() {
  fd_misses_ = open_counter(PERF_COUNT_HW_CACHE_MISSES);
  if (fd_misses_ >= 0) fd_refs_ = open_counter(PERF_COUNT_HW_CACHE_REFERENCES);
}

HwCounters::~HwCounters() {
  if (fd_misses_ >= 0) ::close(fd_misses_);
  if (fd_refs_ >= 0) ::close(fd_refs_);
}

void HwCounters::start() {
  if (fd_misses_ < 0) return;
  ::ioctl(fd_misses_, PERF_EVENT_IOC_RESET, 0);
  ::ioctl(fd_misses_, PERF_EVENT_IOC_ENABLE, 0);
  if (fd_refs_ >= 0) {
    ::ioctl(fd_refs_, PERF_EVENT_IOC_RESET, 0);
    ::ioctl(fd_refs_, PERF_EVENT_IOC_ENABLE, 0);
  }
}

void HwCounters::stop() {
  if (fd_misses_ < 0) return;
  ::ioctl(fd_misses_, PERF_EVENT_IOC_DISABLE, 0);
  misses_ = read_counter(fd_misses_);
  if (fd_refs_ >= 0) {
    ::ioctl(fd_refs_, PERF_EVENT_IOC_DISABLE, 0);
    refs_ = read_counter(fd_refs_);
  }
}

std::uint64_t HwCounters::cache_misses() const { return misses_; }
std::uint64_t HwCounters::cache_refs() const { return refs_; }

}  // namespace nemo::counters
