// PAPI-lite: the small counter facade the paper uses PAPI for (Table 2).
//
// Two sources:
//  - HwCounters: real hardware cache-miss counters via perf_event_open.
//    Containers and locked-down kernels frequently forbid this; the class
//    degrades to unavailable rather than failing.
//  - Sim counters come straight from sim::CacheSystem (deterministic) and
//    are what EXPERIMENTS.md reports for Table 2.
#pragma once

#include <cstdint>

namespace nemo::counters {

class HwCounters {
 public:
  HwCounters();
  ~HwCounters();
  HwCounters(const HwCounters&) = delete;
  HwCounters& operator=(const HwCounters&) = delete;

  /// False when perf_event_open is unavailable (EPERM/ENOSYS/...).
  [[nodiscard]] bool available() const { return fd_misses_ >= 0; }

  void start();
  void stop();

  /// LLC miss count between the last start()/stop() pair (0 if unavailable).
  [[nodiscard]] std::uint64_t cache_misses() const;
  /// LLC references, for context.
  [[nodiscard]] std::uint64_t cache_refs() const;

 private:
  int fd_misses_ = -1;
  int fd_refs_ = -1;
  std::uint64_t misses_ = 0;
  std::uint64_t refs_ = 0;
};

}  // namespace nemo::counters
