// Figure 4: IMB Pingpong throughput between 2 processes sharing a 4 MiB L2:
// default vs vmsplice vs KNEM vs KNEM+I/OAT — plus this repo's streaming
// ring ("default-nt": 4 buffers, non-temporal copies above NEMO_NT_MIN).
//
// Paper's shape: default and KNEM track each other; vmsplice below; I/OAT
// behind until ~1 MiB (DMAmin) then ahead, by ~2x at 4 MiB.
//
// The [real] block compares the current default pipeline against the seed's
// 2×32KiB memcpy ring ("default-seed") so the copy-pipeline speedup is
// directly visible; --json records those rows for the perf trajectory.
#include <cstdlib>
#include <string_view>

#include "bench_common.hpp"
#include "common/options.hpp"
#include "shm/remote_mem.hpp"

using namespace nemo;
using namespace nemo::bench;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  opt.declare("iters", "real-mode pingpong iterations (default 30)");
  opt.declare("skip-real", "only print the simulator block");
  opt.declare("json", "write [real] rows to this JSON file");
  opt.declare("telemetry", "write per-rank engine counters to this JSON file");
  opt.declare("trace", "write a nemo-trace/1 ring dump to this file");
  opt.finalize();
  int iters = static_cast<int>(opt.get_int("iters", 30));
  std::string trace_path = opt.get("trace", "");
  if (!trace_path.empty()) {
    // Turn the rings on unless the environment already picked a mode
    // (NEMO_TRACE=full upgrades the recording, never downgrades it).
    setenv("NEMO_TRACE", "rings", /*overwrite=*/0);
    trace::reload_mode();
  }

  std::vector<std::size_t> sizes = default_sizes();
  sim::LmtModels::Options deep_ring;
  deep_ring.ring_bufs = 4;
  std::vector<SimStrategyRow> rows{
      {"default", sim::Strategy::kDefault, {}},
      {"default-nt", sim::Strategy::kDefaultNt, deep_ring},
      {"vmsplice", sim::Strategy::kVmsplice, {}},
      {"knem", sim::Strategy::kKnem, {}},
      {"knem+ioat", sim::Strategy::kKnemDma, {}},
  };

  std::printf(
      "# Figure 4 — Pingpong throughput (MiB/s), shared 4 MiB L2 pair\n");
  std::printf("\n[sim:e5345] cores 0,1 (shared L2)\n");
  run_sim_pingpong_block(sim::e5345_machine(), rows, 0, 1, sizes);

  if (!opt.get_flag("skip-real")) {
    warn_if_oversubscribed(2);
    std::printf("\n[real:this-host]\n");
    print_header(sizes);

    // The seed pipeline: 2×32KiB ring, cached memcpy only, no fastbox.
    core::Config seed_cfg = cfg_for(lmt::LmtKind::kDefaultShm);
    seed_cfg.ring_bufs = 2;
    seed_cfg.ring_buf_bytes = 32 * KiB;
    seed_cfg.nt_min = static_cast<std::size_t>(-1);
    seed_cfg.use_fastbox = false;

    // CMA availability mirrors the World's gate: the syscall probe plus the
    // NEMO_CMA kill switch. An unavailable row still emits JSON — marked
    // "skipped" so the bench gate reports it loudly instead of failing.
    const char* cma_env = std::getenv("NEMO_CMA");
    bool cma_ok = shm::cma_available() &&
                  (cma_env == nullptr || std::string_view(cma_env) != "off");
    struct RealRow {
      const char* name;
      core::Config cfg;
      bool available = true;
    } real_rows[] = {
        {"default", cfg_for(lmt::LmtKind::kDefaultShm)},
        {"default-seed", seed_cfg},
        {"vmsplice", cfg_for(lmt::LmtKind::kVmsplice)},
        {"knem", cfg_for(lmt::LmtKind::kKnem)},
        {"knem+ioat",
         cfg_for(lmt::LmtKind::kKnem, lmt::KnemMode::kSyncDma)},
        {"cma", cfg_for(lmt::LmtKind::kCma), cma_ok},
    };
    std::vector<std::string> json_rows;
    std::vector<tune::Counters> telemetry(2);
    std::vector<tune::Counters>* tel =
        opt.has("telemetry") ? &telemetry : nullptr;
    for (const auto& row : real_rows) {
      if (!row.available) {
        std::printf("%-24s (cma unavailable on this host)\n", row.name);
        for (auto s : sizes) {
          char buf[160];
          std::snprintf(buf, sizeof buf,
                        "{\"strategy\": \"%s\", \"bytes\": %zu, "
                        "\"skipped\": \"cma unavailable\"}",
                        row.name, s);
          json_rows.emplace_back(buf);
        }
        continue;
      }
      std::vector<double> vals;
      for (auto s : sizes) {
        double mibs = real_pingpong_mibs(row.cfg, s, iters, tel);
        vals.push_back(mibs);
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "{\"strategy\": \"%s\", \"bytes\": %zu, "
                      "\"mibs\": %.1f}",
                      row.name, s, mibs);
        json_rows.emplace_back(buf);
      }
      print_row(row.name, vals);
    }
    if (opt.has("json") &&
        !write_json_rows(opt.get("json", ""), "fig4_pingpong_shared",
                         json_rows))
      return 1;
    if (tel != nullptr &&
        !tune::write_telemetry(opt.get("telemetry", ""),
                               "fig4_pingpong_shared", telemetry.data(), 2))
      return 1;
  }
  if (!trace_path.empty()) {
    std::string err;
    if (!trace::write_dump(trace_path, &err)) {
      std::fprintf(stderr, "trace dump failed: %s\n", err.c_str());
      return 1;
    }
    std::printf("wrote %s\n", trace_path.c_str());
  }
  return 0;
}
