// Figure 7: IMB Alltoall aggregated throughput between 8 local processes:
// default vs vmsplice vs KNEM vs KNEM+I/OAT.
//
// Paper's shape: KNEM up to ~5x default near 32 KiB; I/OAT ~2x at very large
// sizes (and already attractive from ~200 KiB because 8 concurrent flows
// saturate the bus earlier than DMAmin predicts, §4.4).
#include "bench_common.hpp"
#include "common/options.hpp"

using namespace nemo;
using namespace nemo::bench;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  opt.declare("ranks", "rank count for the real block (default 8)");
  opt.declare("iters", "real-mode rounds per size (default 8)");
  opt.declare("skip-real", "only print the simulator block");
  opt.finalize();
  int nranks = static_cast<int>(opt.get_int("ranks", 8));
  int iters = static_cast<int>(opt.get_int("iters", 8));

  std::vector<std::size_t> sizes = alltoall_sizes();
  std::vector<int> cores{0, 1, 2, 3, 4, 5, 6, 7};

  std::printf(
      "# Figure 7 — Alltoall aggregated throughput (MiB/s), 8 ranks\n");
  std::printf("\n[sim:e5345] all 8 cores\n");
  print_header(sizes);
  struct SimRow {
    const char* name;
    sim::Strategy s;
  } sim_rows[] = {
      {"default", sim::Strategy::kDefault},
      {"vmsplice", sim::Strategy::kVmsplice},
      {"knem", sim::Strategy::kKnem},
      {"knem+ioat", sim::Strategy::kKnemDma},
  };
  for (const auto& row : sim_rows) {
    std::vector<double> vals;
    for (auto s : sizes) {
      sim::LmtModels m(sim::e5345_machine());
      vals.push_back(m.alltoall_mibs(row.s, cores, s, 2));
    }
    print_row(row.name, vals);
  }

  if (!opt.get_flag("skip-real")) {
    warn_if_oversubscribed(nranks);
    std::printf("\n[real:this-host] %d thread ranks\n", nranks);
    print_header(sizes);
    struct RealRow {
      const char* name;
      lmt::LmtKind kind;
      lmt::KnemMode mode;
    } real_rows[] = {
        {"default", lmt::LmtKind::kDefaultShm, lmt::KnemMode::kSyncCopy},
        {"vmsplice", lmt::LmtKind::kVmsplice, lmt::KnemMode::kSyncCopy},
        {"knem", lmt::LmtKind::kKnem, lmt::KnemMode::kSyncCopy},
        {"knem+ioat", lmt::LmtKind::kKnem, lmt::KnemMode::kAsyncDma},
    };
    for (const auto& row : real_rows) {
      std::vector<double> vals;
      for (auto s : sizes)
        vals.push_back(real_alltoall_mibs(cfg_for(row.kind, row.mode),
                                          nranks, s, iters));
      print_row(row.name, vals);
    }
  }
  return 0;
}
