// Figure 7: IMB Alltoall aggregated throughput between 8 local processes:
// default vs vmsplice vs KNEM vs KNEM+I/OAT — plus this repo's shm
// collective arena ("shm-coll"), which halves the copy volume by letting
// every reader pull blocks straight from the writers' arena-resident rows.
//
// Paper's shape: KNEM up to ~5x default near 32 KiB; I/OAT ~2x at very large
// sizes (and already attractive from ~200 KiB because 8 concurrent flows
// saturate the bus earlier than DMAmin predicts, §4.4).
#include <cstdlib>

#include "bench_common.hpp"
#include "common/options.hpp"

using namespace nemo;
using namespace nemo::bench;

namespace {

void json_row(std::vector<std::string>& rows, const char* block,
              const char* name, std::size_t bytes, double mibs) {
  char row[256];
  std::snprintf(row, sizeof row,
                "{\"block\": \"%s\", \"row\": \"%s\", \"bytes\": %zu, "
                "\"mibs\": %.1f}",
                block, name, bytes, mibs);
  rows.emplace_back(row);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  opt.declare("ranks", "rank count for the real block (default 8)");
  opt.declare("iters", "real-mode rounds per size (default 8)");
  opt.declare("skip-real", "only print the simulator block");
  opt.declare("json", "write all rows to this JSON file");
  opt.declare("trace", "write a nemo-trace/1 ring dump to this file");
  opt.finalize();
  int nranks = static_cast<int>(opt.get_int("ranks", 8));
  int iters = static_cast<int>(opt.get_int("iters", 8));
  std::string trace_path = opt.get("trace", "");
  if (!trace_path.empty()) {
    setenv("NEMO_TRACE", "rings", /*overwrite=*/0);
    trace::reload_mode();
  }

  std::vector<std::size_t> sizes = alltoall_sizes();
  std::vector<int> cores{0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<std::string> rows;

  std::printf(
      "# Figure 7 — Alltoall aggregated throughput (MiB/s), 8 ranks\n");
  std::printf("\n[sim:e5345] all 8 cores\n");
  print_header(sizes);
  struct SimRow {
    const char* name;
    sim::Strategy s;
  } sim_rows[] = {
      {"default", sim::Strategy::kDefault},
      {"vmsplice", sim::Strategy::kVmsplice},
      {"knem", sim::Strategy::kKnem},
      {"knem+ioat", sim::Strategy::kKnemDma},
  };
  for (const auto& row : sim_rows) {
    std::vector<double> vals;
    for (auto s : sizes) {
      sim::LmtModels m(sim::e5345_machine());
      vals.push_back(m.alltoall_mibs(row.s, cores, s, 2));
      json_row(rows, "sim", row.name, s, vals.back());
    }
    print_row(row.name, vals);
  }
  {
    std::vector<double> vals;
    for (auto s : sizes) {
      sim::LmtModels m(sim::e5345_machine());
      vals.push_back(m.alltoall_coll(true, cores, s, 2).mibs);
      json_row(rows, "sim", "shm-coll", s, vals.back());
    }
    print_row("shm-coll", vals);
    // Modeled timeline through the same exporter the real rings use: one
    // kCollOp span per size on a synthetic rank, duration straight from the
    // simulator's aggregate throughput.
    if (!trace_path.empty()) {
      trace::RankDump sd;
      sd.rank = -2;  // first synthetic ("sim rank 0") tid
      sd.ns_timestamps = true;
      std::uint64_t clock_ns = 0;
      for (std::size_t i = 0; i < sizes.size(); ++i) {
        double mibs = vals[i];
        if (mibs <= 0) continue;
        double round_bytes = static_cast<double>(cores.size()) *
                             static_cast<double>(cores.size() - 1) *
                             static_cast<double>(sizes[i]);
        auto dur = static_cast<std::uint64_t>(round_bytes /
                                              (mibs * MiB) * 1e9);
        sd.events.push_back({clock_ns, trace::kCollOp, trace::kBegin, 0,
                             trace::kOpAlltoall, sizes[i]});
        clock_ns += dur;
        sd.events.push_back({clock_ns, trace::kCollOp, trace::kEnd, 0, 0, 0});
        clock_ns += dur / 8 + 1;  // Gap so consecutive spans stay distinct.
      }
      trace::append_synthetic_rank(std::move(sd));
    }
  }

  if (!opt.get_flag("skip-real")) {
    warn_if_oversubscribed(nranks);
    std::printf("\n[real:this-host] %d thread ranks\n", nranks);
    print_header(sizes);
    struct RealRow {
      const char* name;
      lmt::LmtKind kind;
      lmt::KnemMode mode;
      coll::Mode coll;
    } real_rows[] = {
        // The LMT rows pin collectives to the pt2pt algorithms so they keep
        // comparing rendezvous backends; the last row is the arena path.
        {"default", lmt::LmtKind::kDefaultShm, lmt::KnemMode::kSyncCopy,
         coll::Mode::kP2p},
        {"vmsplice", lmt::LmtKind::kVmsplice, lmt::KnemMode::kSyncCopy,
         coll::Mode::kP2p},
        {"knem", lmt::LmtKind::kKnem, lmt::KnemMode::kSyncCopy,
         coll::Mode::kP2p},
        {"knem+ioat", lmt::LmtKind::kKnem, lmt::KnemMode::kAsyncDma,
         coll::Mode::kP2p},
        {"shm-coll", lmt::LmtKind::kDefaultShm, lmt::KnemMode::kSyncCopy,
         coll::Mode::kShm},
    };
    for (const auto& row : real_rows) {
      // Pin the env knob per row: the label claims a specific collective
      // family, which an ambient NEMO_COLL would otherwise override.
      coll::ScopedForcedMode forced(row.coll);
      std::vector<double> vals;
      for (auto s : sizes) {
        core::Config cfg = cfg_for(row.kind, row.mode);
        cfg.coll = row.coll;
        vals.push_back(real_alltoall_mibs(cfg, nranks, s, iters));
        json_row(rows, "real", row.name, s, vals.back());
      }
      print_row(row.name, vals);
    }
  }

  // Hierarchical alltoall over the modeled interconnect: leaders exchange
  // one combined MxM block per remote node instead of every rank pushing
  // its rows individually, so the per-message latency amortizes across the
  // node. Modeled wire ns per op (deterministic) vs the analytic hop model;
  // flat baseline is the pt2pt pairwise exchange (the arena never touches
  // the wire). The committed rows must show hier < flat from 8 nodes up.
  // Deliberately NOT behind --skip-real: modeled wire time is deterministic,
  // so the bench gate can compare these rows across hosts and CI runners.
  {
    std::printf("\n[modeled] hierarchical vs flat alltoall, 16 KiB/pair\n");
    std::printf("%-9s %6s %6s %14s %14s\n", "op", "topo", "path",
                "net_ns_op", "model_ns");
    struct Topo {
      int nodes, per;
    };
    std::size_t per_rank = 16 * KiB;
    sim::NetLink link;
    for (const Topo& t :
         {Topo{2, 4}, Topo{4, 4}, Topo{8, 2}, Topo{8, 4}, Topo{16, 2}}) {
      for (bool hier : {false, true}) {
        double net_ns = modeled_net_ns_per_op("alltoall", hier, t.nodes,
                                              t.per, per_rank, 2);
        double model_ns =
            sim::alltoall_net_ns(link, t.nodes, t.per, per_rank, hier);
        char topo[16];
        std::snprintf(topo, sizeof topo, "%dx%d", t.nodes, t.per);
        const char* path = hier ? "hier" : "flat";
        std::printf("%-9s %6s %6s %14.0f %14.0f\n", "alltoall", topo, path,
                    net_ns, model_ns);
        char row[512];
        std::snprintf(row, sizeof row,
                      "{\"block\": \"modeled\", \"row\": \"%s\", "
                      "\"topo\": \"%s\", \"nodes\": %d, \"per_node\": %d, "
                      "\"bytes\": %zu, \"net_ns_op\": %.1f, "
                      "\"model_net_ns\": %.1f}",
                      path, topo, t.nodes, t.per, per_rank, net_ns, model_ns);
        rows.emplace_back(row);
      }
    }
  }

  std::string json = opt.get("json", "");
  if (!json.empty() && !write_json_rows(json, "fig7_alltoall", rows))
    return 1;
  if (!trace_path.empty()) {
    std::string err;
    if (!trace::write_dump(trace_path, &err)) {
      std::fprintf(stderr, "trace dump failed: %s\n", err.c_str());
      return 1;
    }
    std::printf("wrote %s\n", trace_path.c_str());
  }
  return 0;
}
