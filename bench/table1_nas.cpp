// Table 1: execution time of the mini-NAS benchmarks per LMT strategy, with
// the paper's "Speedup" column (best single-copy strategy vs default).
//
// Paper's shape: is (large alltoallv) ~25% faster with KNEM+I/OAT, ft ~10%;
// the compute-bound codes (bt, cg, ep, lu, mg, sp) move only in the noise.
#include <cstdio>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/options.hpp"
#include "nas/nas_common.hpp"

using namespace nemo;
using namespace nemo::bench;

namespace {

struct Strat {
  const char* name;
  lmt::LmtKind kind;
  lmt::KnemMode mode;
};

double run_kernel(int nranks, const Strat& st,
                  const std::function<nas::NasResult(core::Comm&)>& kernel) {
  core::Config cfg;
  cfg.nranks = nranks;
  cfg.lmt = st.kind;
  cfg.knem_mode = st.mode;
  cfg.shared_pool_bytes = 64 * MiB;
  double seconds = 0;
  bool verified = true;
  std::mutex mu;
  core::run(cfg, [&](core::Comm& comm) {
    nas::NasResult r = kernel(comm);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lk(mu);
      seconds = r.seconds;
      verified = r.verified;
    }
  });
  if (!verified) std::fprintf(stderr, "WARNING: verification failed\n");
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  opt.declare("ranks", "rank count (default 8, 4 for the .4 kernels)");
  opt.declare("class", "mini|small (default small)");
  opt.finalize();
  int base_ranks = static_cast<int>(opt.get_int("ranks", 8));
  nas::NasClass cls = opt.get("class", "mini") == "mini"
                          ? nas::NasClass::kMini
                          : nas::NasClass::kSmall;

  const std::vector<Strat> strategies{
      {"default", lmt::LmtKind::kDefaultShm, lmt::KnemMode::kSyncCopy},
      {"vmsplice", lmt::LmtKind::kVmsplice, lmt::KnemMode::kSyncCopy},
      {"knem", lmt::LmtKind::kKnem, lmt::KnemMode::kSyncCopy},
      {"knem+ioat", lmt::LmtKind::kKnem, lmt::KnemMode::kAuto},
  };

  struct Bench {
    std::string name;
    int nranks;
    std::function<nas::NasResult(core::Comm&)> kernel;
  };
  // The paper runs bt/ep on 4 ranks (they need square/power grids) and the
  // rest on 8.
  std::vector<Bench> benches{
      {"bt.4", 4,
       [&](core::Comm& c) {
         return nas::run_pencil(c, nas::bt_params(cls), "bt");
       }},
      {"cg." + std::to_string(base_ranks), base_ranks,
       [&](core::Comm& c) { return nas::run_cg(c, nas::cg_params(cls)); }},
      {"ep.4", 4,
       [&](core::Comm& c) { return nas::run_ep(c, nas::ep_params(cls)); }},
      {"ft." + std::to_string(base_ranks), base_ranks,
       [&](core::Comm& c) { return nas::run_ft(c, nas::ft_params(cls)); }},
      {"is." + std::to_string(base_ranks), base_ranks,
       [&](core::Comm& c) { return nas::run_is(c, nas::is_params(cls)); }},
      {"lu." + std::to_string(base_ranks), base_ranks,
       [&](core::Comm& c) {
         return nas::run_pencil(c, nas::lu_params(cls), "lu");
       }},
      {"mg." + std::to_string(base_ranks), base_ranks,
       [&](core::Comm& c) { return nas::run_mg(c, nas::mg_params(cls)); }},
      {"sp." + std::to_string(base_ranks), base_ranks,
       [&](core::Comm& c) {
         return nas::run_pencil(c, nas::sp_params(cls), "sp");
       }},
  };

  std::printf("# Table 1 — mini-NAS execution times (seconds)\n");
  std::printf("%-8s", "kernel");
  for (const auto& st : strategies) std::printf(" %11s", st.name);
  std::printf(" %9s\n", "speedup");
  for (const auto& b : benches) {
    std::printf("%-8s", b.name.c_str());
    std::fflush(stdout);
    std::vector<double> times;
    for (const auto& st : strategies) {
      times.push_back(run_kernel(b.nranks, st, b.kernel));
      std::printf(" %11.3f", times.back());
      std::fflush(stdout);
    }
    double best = *std::min_element(times.begin() + 1, times.end());
    double speedup = (times[0] / best - 1.0) * 100.0;
    std::printf(" %+8.1f%%\n", speedup);
  }
  std::printf(
      "\nspeedup = default time vs best single-copy strategy "
      "(positive = single-copy wins)\n");
  return 0;
}
