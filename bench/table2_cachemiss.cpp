// Table 2: L2 cache misses for 64 KiB / 4 MiB pingpong and alltoall, and the
// IS-like run — from the deterministic cache simulator configured as the
// paper's E5345 (pingpong pairs on different dies, alltoall/IS on all 8
// cores, as in the paper's setup).
//
// Paper's shape: default incurs the most misses (two copies + bounced copy
// buffer); vmsplice/KNEM cut them; KNEM+I/OAT nearly eliminates
// communication misses (the engine touches no cache).
#include <cstdio>
#include <vector>

#include "common/options.hpp"
#include "counters/papi_lite.hpp"
#include "sim/lmt_models.hpp"

using namespace nemo;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  opt.declare("is-keys", "total keys for the IS-like row (default 2^22)");
  opt.finalize();
  auto is_keys = static_cast<std::size_t>(
      opt.get_int("is-keys", 1 << 22));

  struct Row {
    const char* name;
    sim::Strategy s;
  } strategies[] = {
      {"default", sim::Strategy::kDefault},
      {"vmsplice", sim::Strategy::kVmsplice},
      {"knem", sim::Strategy::kKnem},
      {"knem+ioat", sim::Strategy::kKnemDma},
  };
  std::vector<int> cores{0, 1, 2, 3, 4, 5, 6, 7};

  std::printf("# Table 2 — L2 cache misses [sim:e5345]\n");
  std::printf("%-22s %12s %12s %12s %12s %12s %10s\n", "workload", "default",
              "vmsplice", "knem", "knem+ioat", "", "");
  std::printf("%-22s", "64KiB pingpong (0,7)");
  for (const auto& st : strategies) {
    sim::LmtModels m(sim::e5345_machine());
    std::printf(" %12llu",
                static_cast<unsigned long long>(
                    m.pingpong_l2_misses(st.s, 0, 7, 64 * KiB)));
  }
  std::printf("\n%-22s", "4MiB pingpong (0,7)");
  for (const auto& st : strategies) {
    sim::LmtModels m(sim::e5345_machine());
    std::printf(" %12llu",
                static_cast<unsigned long long>(
                    m.pingpong_l2_misses(st.s, 0, 7, 4 * MiB)));
  }
  std::printf("\n%-22s", "64KiB alltoall (8)");
  for (const auto& st : strategies) {
    sim::LmtModels m(sim::e5345_machine());
    std::printf(" %12llu",
                static_cast<unsigned long long>(
                    m.alltoall_l2_misses(st.s, cores, 64 * KiB, 4)));
  }
  std::printf("\n%-22s", "4MiB alltoall (8)");
  for (const auto& st : strategies) {
    sim::LmtModels m(sim::e5345_machine());
    std::printf(" %12llu",
                static_cast<unsigned long long>(
                    m.alltoall_l2_misses(st.s, cores, 4 * MiB, 1)));
  }
  std::printf("\n%-22s", "is-like (8 ranks)");
  std::vector<double> is_times;
  for (const auto& st : strategies) {
    sim::LmtModels m(sim::e5345_machine());
    auto out = m.is_run(st.s, cores, is_keys, 10);
    is_times.push_back(out.seconds);
    std::printf(" %12llu", static_cast<unsigned long long>(out.l2_misses));
  }
  std::printf("\n%-22s", "is-like model time(s)");
  for (double t : is_times) std::printf(" %12.4f", t);
  std::printf("\n");

  counters::HwCounters hw;
  std::printf("\n[real:this-host] hardware LLC counters %s\n",
              hw.available()
                  ? "available (perf_event) — see abl_activation for use"
                  : "unavailable in this environment (expected in "
                    "containers); Table 2 relies on the simulator");
  return 0;
}
