// Table 2: L2 cache misses for 64 KiB / 4 MiB pingpong and alltoall, and the
// IS-like run — from the deterministic cache simulator configured as the
// paper's E5345 (pingpong pairs on different dies, alltoall/IS on all 8
// cores, as in the paper's setup).
//
// Paper's shape: default incurs the most misses (two copies + bounced copy
// buffer); vmsplice/KNEM cut them; KNEM+I/OAT nearly eliminates
// communication misses (the engine touches no cache). The added
// "default-nt" column is this repo's streaming ring: same protocol as
// default, but both copies use non-temporal stores, so the receiver-side
// misses drop toward the single-copy schemes.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/options.hpp"
#include "counters/papi_lite.hpp"
#include "sim/lmt_models.hpp"

using namespace nemo;

namespace {

struct Row {
  const char* name;
  sim::Strategy s;
};

sim::LmtModels make_models(sim::Strategy s) {
  sim::LmtModels::Options opt;
  if (s == sim::Strategy::kDefaultNt) opt.ring_bufs = 4;
  return sim::LmtModels(sim::e5345_machine(), opt);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  opt.declare("is-keys", "total keys for the IS-like row (default 2^22)");
  opt.declare("json", "write miss counts to this JSON file");
  opt.finalize();
  auto is_keys = static_cast<std::size_t>(
      opt.get_int("is-keys", 1 << 22));

  Row strategies[] = {
      {"default", sim::Strategy::kDefault},
      {"default-nt", sim::Strategy::kDefaultNt},
      {"vmsplice", sim::Strategy::kVmsplice},
      {"knem", sim::Strategy::kKnem},
      {"knem+ioat", sim::Strategy::kKnemDma},
  };
  std::vector<int> cores{0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<std::string> json_rows;
  auto record = [&json_rows](const char* workload, const char* strategy,
                             std::uint64_t misses) {
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "{\"workload\": \"%s\", \"strategy\": \"%s\", "
                  "\"l2_misses\": %llu}",
                  workload, strategy,
                  static_cast<unsigned long long>(misses));
    json_rows.emplace_back(buf);
  };

  std::printf("# Table 2 — L2 cache misses [sim:e5345]\n");
  std::printf("%-22s", "workload");
  for (const auto& st : strategies) std::printf(" %12s", st.name);
  std::printf("\n%-22s", "64KiB pingpong (0,7)");
  for (const auto& st : strategies) {
    sim::LmtModels m = make_models(st.s);
    std::uint64_t v = m.pingpong_l2_misses(st.s, 0, 7, 64 * KiB);
    record("64KiB pingpong", st.name, v);
    std::printf(" %12llu", static_cast<unsigned long long>(v));
  }
  std::printf("\n%-22s", "4MiB pingpong (0,7)");
  for (const auto& st : strategies) {
    sim::LmtModels m = make_models(st.s);
    std::uint64_t v = m.pingpong_l2_misses(st.s, 0, 7, 4 * MiB);
    record("4MiB pingpong", st.name, v);
    std::printf(" %12llu", static_cast<unsigned long long>(v));
  }
  std::printf("\n%-22s", "64KiB alltoall (8)");
  for (const auto& st : strategies) {
    sim::LmtModels m = make_models(st.s);
    std::uint64_t v = m.alltoall_l2_misses(st.s, cores, 64 * KiB, 4);
    record("64KiB alltoall", st.name, v);
    std::printf(" %12llu", static_cast<unsigned long long>(v));
  }
  std::printf("\n%-22s", "4MiB alltoall (8)");
  for (const auto& st : strategies) {
    sim::LmtModels m = make_models(st.s);
    std::uint64_t v = m.alltoall_l2_misses(st.s, cores, 4 * MiB, 1);
    record("4MiB alltoall", st.name, v);
    std::printf(" %12llu", static_cast<unsigned long long>(v));
  }
  // The shm collective arena's alltoall (direct-read, one copy per block):
  // the coll-path counterpart of the rows above. Printed as its own lines
  // since it is a collective algorithm, not an LMT backend.
  for (std::size_t per_pair : {64 * KiB, 4 * MiB}) {
    sim::LmtModels m = make_models(sim::Strategy::kDefault);
    std::uint64_t v =
        m.alltoall_coll(true, cores, per_pair, per_pair > 1 * MiB ? 1 : 4)
            .l2_misses;
    const char* wl =
        per_pair == 64 * KiB ? "64KiB alltoall" : "4MiB alltoall";
    record(wl, "shm-coll", v);
    std::printf("\n%-22s %12s = %llu",
                per_pair == 64 * KiB ? "64KiB alltoall shm" :
                                       "4MiB alltoall shm",
                "shm-coll", static_cast<unsigned long long>(v));
  }

  std::printf("\n%-22s", "is-like (8 ranks)");
  std::vector<double> is_times;
  for (const auto& st : strategies) {
    sim::LmtModels m = make_models(st.s);
    auto out = m.is_run(st.s, cores, is_keys, 10);
    is_times.push_back(out.seconds);
    record("is-like", st.name, out.l2_misses);
    std::printf(" %12llu", static_cast<unsigned long long>(out.l2_misses));
  }
  std::printf("\n%-22s", "is-like model time(s)");
  for (double t : is_times) std::printf(" %12.4f", t);
  std::printf("\n");

  // Real-PMU row. Detect availability exactly once: containers and
  // locked-down kernels refuse perf_event_open, and a row of zeros would be
  // indistinguishable from "the engine touches no cache". Print one loud
  // SKIPPED row instead, and tag the JSON row so bench_gate classifies it
  // as skip-never-fail.
  counters::HwCounters hw;
  std::printf("\n[real:this-host] hardware LLC counters (perf_event)\n");
  if (!hw.available()) {
    std::printf("%-22s %12s\n", "4MiB pingpong hw", "SKIPPED (no PMU)");
    std::printf("    perf_event_open unavailable in this environment "
                "(expected in containers); Table 2 relies on the "
                "simulator rows above.\n");
    json_rows.emplace_back(
        "{\"workload\": \"4MiB pingpong hw\", \"strategy\": \"hw\", "
        "\"skipped\": \"no PMU\"}");
  } else {
    hw.start();
    double mibs = bench::real_pingpong_mibs(
        bench::cfg_for(lmt::LmtKind::kDefaultShm), 4 * MiB, 5);
    hw.stop();
    std::printf("%-22s %12llu  (refs %llu, %.0f MiB/s)\n",
                "4MiB pingpong hw",
                static_cast<unsigned long long>(hw.cache_misses()),
                static_cast<unsigned long long>(hw.cache_refs()), mibs);
    record("4MiB pingpong hw", "hw", hw.cache_misses());
  }

  if (opt.has("json") &&
      !bench::write_json_rows(opt.get("json", ""), "table2_cachemiss",
                              json_rows))
    return 1;
  return 0;
}
