// Ablation (§4.2/§4.4): LMT activation thresholds. Where does KNEM start
// beating the eager/default path — for pingpong and inside a collective?
// The paper measures 8 KiB (pingpong) and 4 KiB (collectives) against
// Nemesis' hardwired 64 KiB.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/options.hpp"

using namespace nemo;
using namespace nemo::bench;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  opt.declare("iters", "real pingpong iterations per size (default 50)");
  opt.declare("skip-real", "only print the simulator block");
  opt.finalize();
  int iters = static_cast<int>(opt.get_int("iters", 50));

  std::vector<std::size_t> sizes{1 * KiB, 2 * KiB,  4 * KiB,  8 * KiB,
                                 16 * KiB, 32 * KiB, 64 * KiB, 128 * KiB};

  std::printf("# Ablation — LMT activation threshold (MiB/s)\n");
  std::printf("\n[sim:e5345] pingpong cores 0,7: default vs knem\n");
  print_header(sizes);
  for (auto [name, strat] :
       {std::pair{"default", sim::Strategy::kDefault},
        std::pair{"knem", sim::Strategy::kKnem}}) {
    std::vector<double> vals;
    for (auto s : sizes) {
      sim::LmtModels m(sim::e5345_machine());
      vals.push_back(m.pingpong_mibs(strat, 0, 7, s));
    }
    print_row(name, vals);
  }

  std::printf("\n[sim:e5345] alltoall 8 ranks: default vs knem\n");
  print_header(sizes);
  std::vector<int> cores{0, 1, 2, 3, 4, 5, 6, 7};
  for (auto [name, strat] :
       {std::pair{"default", sim::Strategy::kDefault},
        std::pair{"knem", sim::Strategy::kKnem}}) {
    std::vector<double> vals;
    for (auto s : sizes) {
      sim::LmtModels m(sim::e5345_machine());
      vals.push_back(m.alltoall_mibs(strat, cores, s, 2));
    }
    print_row(name, vals);
  }

  if (!opt.get_flag("skip-real")) {
    std::printf("\n[real:this-host] eager path vs forced-KNEM rendezvous\n");
    print_header(sizes);
    // Eager: raise the activation so everything here stays on cells.
    {
      std::vector<double> vals;
      for (auto s : sizes) {
        core::Config cfg = cfg_for(lmt::LmtKind::kKnem);
        cfg.eager_threshold = 256 * KiB;
        vals.push_back(real_pingpong_mibs(cfg, s, iters));
      }
      print_row("eager-path", vals);
    }
    // Rendezvous for everything (threshold 0).
    {
      std::vector<double> vals;
      for (auto s : sizes) {
        core::Config cfg = cfg_for(lmt::LmtKind::kKnem);
        cfg.eager_threshold = 0;
        vals.push_back(real_pingpong_mibs(cfg, s, iters));
      }
      print_row("knem-rndv", vals);
    }
  }
  return 0;
}
