// Ablation (§3.5): the DMAmin threshold. Sweeps message size to find the
// simulator's CPU-copy vs I/OAT crossover per placement/host and compares it
// with the paper's closed-form  DMAmin = CacheSize / (2 * CoresSharing).
//
// Paper's data points: 1 MiB (4 MiB L2 shared by 2), 2 MiB (no sharing),
// +50% on a 6 MiB-L2 host.
#include <cstdio>
#include <vector>

#include "common/options.hpp"
#include "lmt/policy.hpp"
#include "sim/lmt_models.hpp"

using namespace nemo;

namespace {

std::size_t sim_crossover(const sim::SimMachine& mach, int a, int b) {
  // Geometric sweep (quarter-octave steps) keeps the run fast while still
  // resolving the crossover to ~20%.
  for (double size = 128.0 * KiB; size <= 16.0 * MiB; size *= 1.25) {
    auto sz = static_cast<std::size_t>(size);
    sim::LmtModels m1(mach), m2(mach);
    double cpu = m1.pingpong_mibs(sim::Strategy::kKnem, a, b, sz, 3);
    double dma = m2.pingpong_mibs(sim::Strategy::kKnemDma, a, b, sz, 3);
    if (dma > cpu) return sz;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  opt.finalize();

  std::printf("# Ablation — DMAmin formula vs simulated crossover\n");
  std::printf("%-28s %12s %14s\n", "host/placement", "formula",
              "sim crossover");

  struct Case {
    const char* name;
    sim::SimMachine mach;
    int a, b;
  };
  std::vector<Case> cases{
      {"e5345 shared-L2 (0,1)", sim::e5345_machine(), 0, 1},
      {"e5345 cross-die (0,7)", sim::e5345_machine(), 0, 7},
      {"x5460 shared-L2 (0,1)", sim::x5460_machine(), 0, 1},
      {"nehalem shared-L3 (0,1)", sim::nehalem_machine(), 0, 1},
  };
  for (auto& c : cases) {
    // The formula uses the receiving core's largest cache; for the shared
    // case divide by the sharers, as §3.5 derives.
    std::size_t formula = lmt::Policy::dma_min(c.mach.topo, c.b);
    std::size_t measured = sim_crossover(c.mach, c.a, c.b);
    std::printf("%-28s %12s %14s\n", c.name, format_size(formula).c_str(),
                measured ? format_size(measured).c_str() : "none<=16MiB");
  }

  std::printf(
      "\nFormula check (paper data points): e5345 shared = 1MiB, "
      "x5460 shared = 1.5MiB (+50%%), private-LLC flat = cache/2.\n");
  std::printf("e5345: %s  x5460: %s  flat(4MiB LLC): %s\n",
              format_size(lmt::Policy::dma_min(xeon_e5345(), 0)).c_str(),
              format_size(lmt::Policy::dma_min(xeon_x5460(), 0)).c_str(),
              format_size(lmt::Policy::dma_min(flat_smp(4, 4 * MiB), 0))
                  .c_str());
  return 0;
}
