// Shared benchmark plumbing: measured (real-runtime) pingpong/alltoall
// drivers and table/series printers. Every figure bench prints two blocks:
//   [sim]  — deterministic series from the cache-simulator replay models,
//            configured as the paper's Xeon E5345;
//   [real] — wall-clock numbers from this host's actual runtime (threads over
//            the shared arena, real vmsplice pipes, CMA, NT-copy DMA).
// EXPERIMENTS.md grounds its shape claims on [sim] and uses [real] as
// corroboration, since the host is not a 2009 Clovertown.
#pragma once

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "common/checksum.hpp"
#include "common/timing.hpp"
#include "core/comm.hpp"
#include "shm/process_runner.hpp"
#include "sim/lmt_models.hpp"

namespace nemo::bench {

/// Print a fidelity warning when the host cannot actually run the ranks in
/// parallel (the [real] numbers then measure scheduler latency, not the
/// transfer mechanisms).
inline void warn_if_oversubscribed(int nranks) {
  int cores = shm::available_cores();
  if (cores < nranks)
    std::printf(
        "NOTE: host exposes %d core(s) for %d ranks; [real] numbers are "
        "dominated by time-slicing and are NOT meaningful. Use the [sim] "
        "block for shape comparisons.\n",
        cores, nranks);
}

inline std::vector<std::size_t> default_sizes() {
  return {64 * KiB, 128 * KiB, 256 * KiB, 512 * KiB,
          1 * MiB,  2 * MiB,   4 * MiB};
}

inline std::vector<std::size_t> alltoall_sizes() {
  return {4 * KiB,   16 * KiB, 64 * KiB, 256 * KiB,
          1 * MiB,   4 * MiB};
}

/// Print one series row: name then one value per size.
inline void print_header(const std::vector<std::size_t>& sizes) {
  std::printf("%-24s", "strategy \\ size");
  for (auto s : sizes) std::printf(" %9s", format_size(s).c_str());
  std::printf("\n");
}

inline void print_row(const std::string& name,
                      const std::vector<double>& vals) {
  std::printf("%-24s", name.c_str());
  for (double v : vals) std::printf(" %9.0f", v);
  std::printf("\n");
}

/// Measured pingpong between ranks 0 and 1 of a 2-rank world. Returns
/// one-way MiB/s (IMB convention) as measured on rank 0. When `telemetry`
/// is given (sized >= 2), each rank's engine counters are accumulated into
/// its slot so the caller can dump a --telemetry JSON across runs.
inline double real_pingpong_mibs(core::Config cfg, std::size_t bytes,
                                 int iters = 30,
                                 std::vector<tune::Counters>* telemetry =
                                     nullptr) {
  cfg.nranks = 2;
  cfg.shared_pool_bytes = std::max<std::size_t>(cfg.shared_pool_bytes,
                                                4 * bytes + 8 * MiB);
  double result = 0;
  core::run(cfg, [&](core::Comm& comm) {
    // Arena-resident buffers so the I/OAT-like path can stream directly
    // even in process mode (MPI_Alloc_mem analogue).
    std::byte* buf = comm.shared_alloc(bytes);
    pattern_fill({buf, bytes}, 1);
    int peer = 1 - comm.rank();
    // Warm-up.
    for (int i = 0; i < 3; ++i) {
      if (comm.rank() == 0) {
        comm.send(buf, bytes, peer, 1);
        comm.recv(buf, bytes, peer, 2);
      } else {
        comm.recv(buf, bytes, peer, 1);
        comm.send(buf, bytes, peer, 2);
      }
    }
    comm.hard_barrier();
    // Per-iteration round-trip samples feed the pt2pt latency histogram
    // only while tracing is on; the throughput row keeps the untimed loop.
    trace::Histogram* lat_hist =
        trace::on() && comm.rank() == 0
            ? &trace::registry().hist("pt2pt.pingpong_rtt_ns")
            : nullptr;
    Timer t;
    for (int i = 0; i < iters; ++i) {
      std::uint64_t it0 = lat_hist != nullptr ? now_ns() : 0;
      if (comm.rank() == 0) {
        comm.send(buf, bytes, peer, 1);
        comm.recv(buf, bytes, peer, 2);
      } else {
        comm.recv(buf, bytes, peer, 1);
        comm.send(buf, bytes, peer, 2);
      }
      if (lat_hist != nullptr) lat_hist->record(now_ns() - it0);
    }
    std::uint64_t ns = t.elapsed_ns();
    if (comm.rank() == 0) {
      double oneway_ns =
          static_cast<double>(ns) / (2.0 * static_cast<double>(iters));
      result = (static_cast<double>(bytes) / (1024.0 * 1024.0)) /
               (oneway_ns * 1e-9);
    }
    if (telemetry != nullptr) {
      comm.hard_barrier();  // Quiesce before reading peers' epochs end.
      (*telemetry)[static_cast<std::size_t>(comm.rank())] +=
          comm.engine().counters();
    }
  });
  return result;
}

/// Measured alltoall aggregate throughput for `nranks` thread ranks.
inline double real_alltoall_mibs(core::Config cfg, int nranks,
                                 std::size_t per_pair, int iters = 10) {
  cfg.nranks = nranks;
  std::size_t matrix = per_pair * static_cast<std::size_t>(nranks);
  cfg.shared_pool_bytes =
      std::max<std::size_t>(cfg.shared_pool_bytes,
                            2 * matrix * static_cast<std::size_t>(nranks) +
                                16 * MiB);
  double result = 0;
  core::run(cfg, [&](core::Comm& comm) {
    std::byte* send = comm.shared_alloc(matrix);
    std::byte* recv = comm.shared_alloc(matrix);
    pattern_fill({send, matrix}, static_cast<std::uint64_t>(comm.rank()));
    comm.alltoall(send, per_pair, recv);  // Warm-up.
    comm.hard_barrier();
    Timer t;
    for (int i = 0; i < iters; ++i) comm.alltoall(send, per_pair, recv);
    std::uint64_t ns = t.elapsed_ns();
    comm.hard_barrier();
    if (comm.rank() == 0) {
      double bytes_per_round = static_cast<double>(nranks) *
                               static_cast<double>(nranks - 1) *
                               static_cast<double>(per_pair);
      result = (bytes_per_round * iters / (1024.0 * 1024.0)) /
               (static_cast<double>(ns) * 1e-9);
    }
  });
  return result;
}

/// Config helpers for the concrete strategies a figure compares.
inline core::Config cfg_for(lmt::LmtKind kind,
                            lmt::KnemMode mode = lmt::KnemMode::kSyncCopy) {
  core::Config cfg;
  cfg.lmt = kind;
  cfg.knem_mode = mode;
  return cfg;
}

struct SimStrategyRow {
  const char* name;
  sim::Strategy strategy;
  sim::LmtModels::Options opt{};  ///< Ring geometry etc. for this row.
};

inline void run_sim_pingpong_block(const sim::SimMachine& machine,
                                   const std::vector<SimStrategyRow>& rows,
                                   int core_a, int core_b,
                                   const std::vector<std::size_t>& sizes) {
  print_header(sizes);
  for (const auto& row : rows) {
    std::vector<double> vals;
    for (auto s : sizes) {
      sim::LmtModels m(machine, row.opt);
      vals.push_back(m.pingpong_mibs(row.strategy, core_a, core_b, s));
    }
    print_row(row.name, vals);
  }
}

/// Measured modeled-interconnect wire time (net_modeled_ns) per collective
/// op over an NxM synthetic topology, summed across ranks. `hier` runs the
/// auto-mode two-level schedule; the flat baseline is the pt2pt family —
/// the arena's cross-node loads are invisible to the wire, so only the
/// pt2pt algorithms charge every off-node hop the way a real interconnect
/// would. Deterministic (latency/bandwidth model), so rows are stable
/// across hosts and CI runners.
inline double modeled_net_ns_per_op(const char* op, bool hier, int nodes,
                                    int per_node, std::size_t bytes,
                                    int iters) {
  char spec[32];
  std::snprintf(spec, sizeof spec, "%dx%d", nodes, per_node);
  ScopedEnv tenv("NEMO_TRANSPORT", "modeled");
  ScopedEnv nenv("NEMO_NODES", spec);
  ScopedEnv henv("NEMO_COLL_HIER", hier ? "on" : "off");
  coll::Mode mode = hier ? coll::Mode::kAuto : coll::Mode::kP2p;
  coll::ScopedForcedMode forced(mode);
  core::Config cfg;
  cfg.coll = mode;
  cfg.nranks = nodes * per_node;
  bool alltoall = std::string(op) == "alltoall";
  std::size_t matrix =
      alltoall ? bytes * static_cast<std::size_t>(cfg.nranks) : bytes;
  cfg.shared_pool_bytes =
      2 * matrix * static_cast<std::size_t>(cfg.nranks) + 16 * MiB;
  std::atomic<std::uint64_t> total{0};
  core::run(cfg, [&](core::Comm& comm) {
    std::byte* send = comm.shared_alloc(matrix);
    std::byte* recv = comm.shared_alloc(matrix);
    pattern_fill({send, matrix}, static_cast<std::uint64_t>(comm.rank()));
    comm.hard_barrier();
    std::uint64_t before = comm.engine().counters().net_modeled_ns;
    for (int i = 0; i < iters; ++i) {
      if (alltoall)
        comm.alltoall(send, bytes, recv);
      else
        comm.allreduce_f64(reinterpret_cast<const double*>(send),
                           reinterpret_cast<double*>(recv),
                           bytes / sizeof(double),
                           core::Comm::ReduceOp::kSum);
    }
    comm.hard_barrier();
    total += comm.engine().counters().net_modeled_ns - before;
  });
  return static_cast<double>(total.load()) / iters;
}

/// Minimal JSON results file: one {"bench": ..., "rows": [...]} object.
/// Rows are pre-formatted JSON objects so each bench controls its schema.
/// Returns false (after printing to stderr) when the file cannot be opened.
inline bool write_json_rows(const std::string& path, const std::string& bench,
                            const std::vector<std::string>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\"bench\": \"%s\", \"rows\": [\n", bench.c_str());
  for (std::size_t i = 0; i < rows.size(); ++i)
    std::fprintf(f, "  %s%s\n", rows[i].c_str(),
                 i + 1 < rows.size() ? "," : "");
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace nemo::bench
