// Figure 3: IMB Pingpong with the vmsplice LMT using vmsplice (single copy)
// or writev (two copies), vs the default LMT, under shared-cache and
// different-die placements.
//
// Paper's shape: vmsplice ~2x writev; default wins when a cache is shared;
// vmsplice worthwhile when none is.
#include "bench_common.hpp"
#include "common/options.hpp"

using namespace nemo;
using namespace nemo::bench;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  opt.declare("iters", "real-mode pingpong iterations (default 30)");
  opt.declare("skip-real", "only print the simulator block");
  opt.finalize();
  int iters = static_cast<int>(opt.get_int("iters", 30));

  std::vector<std::size_t> sizes = default_sizes();
  std::vector<SimStrategyRow> rows{
      {"default", sim::Strategy::kDefault},
      {"vmsplice", sim::Strategy::kVmsplice},
      {"vmsplice-writev", sim::Strategy::kVmspliceWritev},
  };

  std::printf("# Figure 3 — Pingpong throughput (MiB/s), vmsplice LMT\n");
  std::printf("\n[sim:e5345] shared cache (cores 0,1)\n");
  run_sim_pingpong_block(sim::e5345_machine(), rows, 0, 1, sizes);
  std::printf("\n[sim:e5345] different dies (cores 0,7)\n");
  run_sim_pingpong_block(sim::e5345_machine(), rows, 0, 7, sizes);

  if (!opt.get_flag("skip-real")) {
    warn_if_oversubscribed(2);
    std::printf("\n[real:this-host] thread ranks, actual pipes/vmsplice\n");
    print_header(sizes);
    struct RealRow {
      const char* name;
      lmt::LmtKind kind;
    } real_rows[] = {
        {"default", lmt::LmtKind::kDefaultShm},
        {"vmsplice", lmt::LmtKind::kVmsplice},
        {"vmsplice-writev", lmt::LmtKind::kVmspliceWritev},
    };
    for (const auto& row : real_rows) {
      std::vector<double> vals;
      for (auto s : sizes)
        vals.push_back(real_pingpong_mibs(cfg_for(row.kind), s, iters));
      print_row(row.name, vals);
    }
  }
  return 0;
}
