// Ablation (§3.1 + design): chunking granularity.
//  - vmsplice pipe window: the paper argues the kernel's 64 KiB limit is a
//    good trade-off (syscall ~100 ns vs ~8 us to copy 64 KiB); sweep it.
//  - default-LMT ring-buffer size: the double-buffer equivalent.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/options.hpp"

using namespace nemo;
using namespace nemo::bench;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  opt.declare("msg", "message size (default 4MiB)");
  opt.declare("skip-real", "only print the simulator block");
  opt.finalize();
  std::size_t msg = opt.get_size("msg", 4 * MiB);

  std::printf("# Ablation — transfer chunking (message %s, cores 0,7)\n",
              format_size(msg).c_str());

  std::printf("\n[sim:e5345] vmsplice pipe-window sweep (MiB/s)\n");
  std::printf("%-12s %9s\n", "window", "vmsplice");
  for (std::size_t window : {4 * KiB, 16 * KiB, 64 * KiB, 256 * KiB,
                             1 * MiB}) {
    sim::LmtModels::Options mo;
    mo.pipe_window = window;
    sim::LmtModels m(sim::e5345_machine(), mo);
    std::printf("%-12s %9.0f\n", format_size(window).c_str(),
                m.pingpong_mibs(sim::Strategy::kVmsplice, 0, 7, msg));
  }

  std::printf("\n[sim:e5345] default-LMT ring-buffer sweep (MiB/s)\n");
  std::printf("%-12s %9s\n", "ring-buf", "default");
  for (std::size_t buf : {8 * KiB, 16 * KiB, 32 * KiB, 64 * KiB, 128 * KiB}) {
    sim::LmtModels::Options mo;
    mo.ring_buf_bytes = buf;
    sim::LmtModels m(sim::e5345_machine(), mo);
    std::printf("%-12s %9.0f\n", format_size(buf).c_str(),
                m.pingpong_mibs(sim::Strategy::kDefault, 0, 7, msg));
  }

  if (!opt.get_flag("skip-real")) {
    std::printf("\n[real:this-host] ring geometry sweep (MiB/s)\n");
    std::printf("%-8s %-12s %9s\n", "bufs", "buf-size", "default");
    for (std::uint32_t bufs : {2u, 4u}) {
      for (std::size_t buf : {8 * KiB, 32 * KiB, 128 * KiB}) {
        core::Config cfg = cfg_for(lmt::LmtKind::kDefaultShm);
        cfg.ring_bufs = bufs;
        cfg.ring_buf_bytes = static_cast<std::uint32_t>(buf);
        std::printf("%-8u %-12s %9.0f\n", bufs, format_size(buf).c_str(),
                    real_pingpong_mibs(cfg, msg, 20));
      }
    }
  }
  return 0;
}
