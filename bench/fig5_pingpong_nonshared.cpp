// Figure 5: IMB Pingpong throughput between 2 processes NOT sharing any
// cache: default vs vmsplice vs KNEM vs KNEM+I/OAT.
//
// Paper's shape: KNEM clearly ahead (up to >3x default, ~2x vmsplice);
// vmsplice above default; I/OAT takes over for the largest messages. The
// real block adds this repo's CMA backend — the same single-copy shape as
// KNEM without the kernel module — when the host kernel permits it.
#include <cstdlib>
#include <string_view>

#include "bench_common.hpp"
#include "common/options.hpp"
#include "shm/remote_mem.hpp"

using namespace nemo;
using namespace nemo::bench;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  opt.declare("iters", "real-mode pingpong iterations (default 30)");
  opt.declare("skip-real", "only print the simulator block");
  opt.finalize();
  int iters = static_cast<int>(opt.get_int("iters", 30));

  std::vector<std::size_t> sizes = default_sizes();
  std::vector<SimStrategyRow> rows{
      {"default", sim::Strategy::kDefault},
      {"vmsplice", sim::Strategy::kVmsplice},
      {"knem", sim::Strategy::kKnem},
      {"knem+ioat", sim::Strategy::kKnemDma},
  };

  std::printf(
      "# Figure 5 — Pingpong throughput (MiB/s), no shared cache\n");
  std::printf("\n[sim:e5345] cores 0,7 (different sockets)\n");
  run_sim_pingpong_block(sim::e5345_machine(), rows, 0, 7, sizes);
  std::printf("\n[sim:e5345] cores 0,2 (same socket, different dies)\n");
  run_sim_pingpong_block(sim::e5345_machine(), rows, 0, 2, sizes);

  if (!opt.get_flag("skip-real")) {
    warn_if_oversubscribed(2);
    std::printf("\n[real:this-host]\n");
    print_header(sizes);
    const char* cma_env = std::getenv("NEMO_CMA");
    bool cma_ok = shm::cma_available() &&
                  (cma_env == nullptr || std::string_view(cma_env) != "off");
    struct RealRow {
      const char* name;
      lmt::LmtKind kind;
      lmt::KnemMode mode;
      bool available = true;
    } real_rows[] = {
        {"default", lmt::LmtKind::kDefaultShm, lmt::KnemMode::kSyncCopy},
        {"vmsplice", lmt::LmtKind::kVmsplice, lmt::KnemMode::kSyncCopy},
        {"knem", lmt::LmtKind::kKnem, lmt::KnemMode::kSyncCopy},
        {"knem+ioat", lmt::LmtKind::kKnem, lmt::KnemMode::kSyncDma},
        {"cma", lmt::LmtKind::kCma, lmt::KnemMode::kSyncCopy, cma_ok},
    };
    for (const auto& row : real_rows) {
      if (!row.available) {
        std::printf("%-24s (cma unavailable on this host)\n", row.name);
        continue;
      }
      std::vector<double> vals;
      for (auto s : sizes)
        vals.push_back(
            real_pingpong_mibs(cfg_for(row.kind, row.mode), s, iters));
      print_row(row.name, vals);
    }
  }
  return 0;
}
