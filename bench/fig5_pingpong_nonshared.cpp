// Figure 5: IMB Pingpong throughput between 2 processes NOT sharing any
// cache: default vs vmsplice vs KNEM vs KNEM+I/OAT.
//
// Paper's shape: KNEM clearly ahead (up to >3x default, ~2x vmsplice);
// vmsplice above default; I/OAT takes over for the largest messages.
#include "bench_common.hpp"
#include "common/options.hpp"

using namespace nemo;
using namespace nemo::bench;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  opt.declare("iters", "real-mode pingpong iterations (default 30)");
  opt.declare("skip-real", "only print the simulator block");
  opt.finalize();
  int iters = static_cast<int>(opt.get_int("iters", 30));

  std::vector<std::size_t> sizes = default_sizes();
  std::vector<SimStrategyRow> rows{
      {"default", sim::Strategy::kDefault},
      {"vmsplice", sim::Strategy::kVmsplice},
      {"knem", sim::Strategy::kKnem},
      {"knem+ioat", sim::Strategy::kKnemDma},
  };

  std::printf(
      "# Figure 5 — Pingpong throughput (MiB/s), no shared cache\n");
  std::printf("\n[sim:e5345] cores 0,7 (different sockets)\n");
  run_sim_pingpong_block(sim::e5345_machine(), rows, 0, 7, sizes);
  std::printf("\n[sim:e5345] cores 0,2 (same socket, different dies)\n");
  run_sim_pingpong_block(sim::e5345_machine(), rows, 0, 2, sizes);

  if (!opt.get_flag("skip-real")) {
    warn_if_oversubscribed(2);
    std::printf("\n[real:this-host]\n");
    print_header(sizes);
    struct RealRow {
      const char* name;
      lmt::LmtKind kind;
      lmt::KnemMode mode;
    } real_rows[] = {
        {"default", lmt::LmtKind::kDefaultShm, lmt::KnemMode::kSyncCopy},
        {"vmsplice", lmt::LmtKind::kVmsplice, lmt::KnemMode::kSyncCopy},
        {"knem", lmt::LmtKind::kKnem, lmt::KnemMode::kSyncCopy},
        {"knem+ioat", lmt::LmtKind::kKnem, lmt::KnemMode::kSyncDma},
    };
    for (const auto& row : real_rows) {
      std::vector<double> vals;
      for (auto s : sizes)
        vals.push_back(
            real_pingpong_mibs(cfg_for(row.kind, row.mode), s, iters));
      print_row(row.name, vals);
    }
  }
  return 0;
}
