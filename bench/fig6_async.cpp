// Figure 6: KNEM synchronous vs asynchronous models, with and without I/OAT.
//
// Paper's shape: offloading the copy to a kernel thread (async, no I/OAT)
// costs significant throughput (CPU competition); the asynchronous I/OAT
// model matches or beats the synchronous one.
#include "bench_common.hpp"
#include "common/options.hpp"

using namespace nemo;
using namespace nemo::bench;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  opt.declare("iters", "real-mode pingpong iterations (default 30)");
  opt.declare("skip-real", "only print the simulator block");
  opt.finalize();
  int iters = static_cast<int>(opt.get_int("iters", 30));

  std::vector<std::size_t> sizes = default_sizes();
  std::vector<SimStrategyRow> rows{
      {"knem-sync", sim::Strategy::kKnem},
      {"knem-async", sim::Strategy::kKnemAsyncCopy},
      {"knem-sync+ioat", sim::Strategy::kKnemDma},
      {"knem-async+ioat", sim::Strategy::kKnemAsyncDma},
  };

  std::printf("# Figure 6 — KNEM synchronous vs asynchronous (MiB/s)\n");
  std::printf("\n[sim:e5345] cores 0,7\n");
  run_sim_pingpong_block(sim::e5345_machine(), rows, 0, 7, sizes);

  if (!opt.get_flag("skip-real")) {
    warn_if_oversubscribed(2);
    std::printf("\n[real:this-host]\n");
    print_header(sizes);
    struct RealRow {
      const char* name;
      lmt::KnemMode mode;
    } real_rows[] = {
        {"knem-sync", lmt::KnemMode::kSyncCopy},
        {"knem-async", lmt::KnemMode::kAsyncCopy},
        {"knem-sync+ioat", lmt::KnemMode::kSyncDma},
        {"knem-async+ioat", lmt::KnemMode::kAsyncDma},
    };
    for (const auto& row : real_rows) {
      std::vector<double> vals;
      for (auto s : sizes) {
        core::Config cfg = cfg_for(lmt::LmtKind::kKnem, row.mode);
        // The kernel-thread competition effect needs rank/worker core
        // pinning; pin rank r to core r when the host allows it.
        cfg.core_binding = {0, 1};
        vals.push_back(real_pingpong_mibs(cfg, s, iters));
      }
      print_row(row.name, vals);
    }
  }
  return 0;
}
