// Figure 6: KNEM synchronous vs asynchronous models, with and without I/OAT.
//
// Paper's shape: offloading the copy to a kernel thread (async, no I/OAT)
// costs significant throughput (CPU competition); the asynchronous I/OAT
// model matches or beats the synchronous one.
#include "bench_common.hpp"
#include "common/options.hpp"

using namespace nemo;
using namespace nemo::bench;

namespace {

void json_row(std::vector<std::string>& rows, const char* block,
              const char* name, std::size_t bytes, double mibs) {
  char row[256];
  std::snprintf(row, sizeof row,
                "{\"block\": \"%s\", \"row\": \"%s\", \"bytes\": %zu, "
                "\"mibs\": %.1f}",
                block, name, bytes, mibs);
  rows.emplace_back(row);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  opt.declare("iters", "real-mode pingpong iterations (default 30)");
  opt.declare("skip-real", "only print the simulator block");
  opt.declare("json", "write all rows to this JSON file");
  opt.finalize();
  int iters = static_cast<int>(opt.get_int("iters", 30));

  std::vector<std::size_t> sizes = default_sizes();
  std::vector<SimStrategyRow> sim_rows{
      {"knem-sync", sim::Strategy::kKnem},
      {"knem-async", sim::Strategy::kKnemAsyncCopy},
      {"knem-sync+ioat", sim::Strategy::kKnemDma},
      {"knem-async+ioat", sim::Strategy::kKnemAsyncDma},
  };
  std::vector<std::string> rows;

  std::printf("# Figure 6 — KNEM synchronous vs asynchronous (MiB/s)\n");
  std::printf("\n[sim:e5345] cores 0,7\n");
  print_header(sizes);
  for (const auto& row : sim_rows) {
    std::vector<double> vals;
    for (auto s : sizes) {
      sim::LmtModels m(sim::e5345_machine(), row.opt);
      vals.push_back(m.pingpong_mibs(row.strategy, 0, 7, s));
      json_row(rows, "sim", row.name, s, vals.back());
    }
    print_row(row.name, vals);
  }

  if (!opt.get_flag("skip-real")) {
    warn_if_oversubscribed(2);
    std::printf("\n[real:this-host]\n");
    print_header(sizes);
    struct RealRow {
      const char* name;
      lmt::KnemMode mode;
    } real_rows[] = {
        {"knem-sync", lmt::KnemMode::kSyncCopy},
        {"knem-async", lmt::KnemMode::kAsyncCopy},
        {"knem-sync+ioat", lmt::KnemMode::kSyncDma},
        {"knem-async+ioat", lmt::KnemMode::kAsyncDma},
    };
    for (const auto& row : real_rows) {
      std::vector<double> vals;
      for (auto s : sizes) {
        // World's standard bring-up (core::run inside real_pingpong_mibs)
        // owns the tuned drain budget / fastbox geometry; the row only
        // picks the LMT mechanism under comparison.
        core::Config cfg = cfg_for(lmt::LmtKind::kKnem, row.mode);
        // The kernel-thread competition effect needs rank/worker core
        // pinning; pin rank r to core r when the host allows it.
        cfg.core_binding = {0, 1};
        vals.push_back(real_pingpong_mibs(cfg, s, iters));
        json_row(rows, "real", row.name, s, vals.back());
      }
      print_row(row.name, vals);
    }
  }

  std::string json = opt.get("json", "");
  if (!json.empty() && !write_json_rows(json, "fig6_async", rows)) return 1;
  return 0;
}
