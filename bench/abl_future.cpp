// Ablation (§6 future work): "examining the feasibility of integrating I/OAT
// offloading into vmsplice-based transfers". Models a hypothetical backend
// that keeps vmsplice's ubiquitous page-attach flow control but hands each
// drained 64 KiB window to the DMA engine instead of copying with readv.
//
// Question the paper poses: can the module-free path approach KNEM+I/OAT?
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/options.hpp"

using namespace nemo;
using namespace nemo::bench;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  opt.finalize();

  std::vector<std::size_t> sizes = default_sizes();
  std::vector<SimStrategyRow> rows{
      {"vmsplice", sim::Strategy::kVmsplice},
      {"vmsplice+ioat", sim::Strategy::kVmspliceIoat},
      {"knem", sim::Strategy::kKnem},
      {"knem+ioat", sim::Strategy::kKnemDma},
  };

  std::printf(
      "# Ablation — §6 future work: I/OAT offload inside vmsplice (MiB/s)\n");
  for (auto [label, a, b] :
       {std::tuple{"shared L2 (0,1)", 0, 1},
        std::tuple{"different sockets (0,7)", 0, 7}}) {
    std::printf("\n[sim:e5345] %s\n", label);
    run_sim_pingpong_block(sim::e5345_machine(), rows, a, b, sizes);
  }

  std::printf(
      "\nReading: offloading the window copies onto the DMA engine gives the "
      "module-free\nvmsplice path KNEM+I/OAT-class large-message throughput "
      "(it even skips KNEM's\nreceive-side pinning since the pipe already "
      "references the pages), at the cost\nof keeping vmsplice's per-window "
      "syscall/VFS overhead, which CPU-copy KNEM\nstill wins below the DMAmin "
      "crossover.\n");
  return 0;
}
