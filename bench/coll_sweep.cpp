// Collective sweep: the shm collective arena vs the pt2pt algorithms, per
// (op, rank count, size) — wall-clock from this host's real runtime plus
// deterministic copy-volume / L2-miss accounting from the simulator's
// E5345 replay. This is the bench behind bench/results/BENCH_coll.json:
// the shm path must show both lower wall time and lower simulated copy
// volume at the ISSUE's acceptance points (8-rank 256 KiB bcast, 4-rank
// 64 KiB-per-pair alltoall, 8-rank 256 KiB allreduce), and the barrier
// section races the flat gather against the k-ary tree schedule.
#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "bench_common.hpp"
#include "common/options.hpp"
#include "sim/lmt_models.hpp"

using namespace nemo;
using namespace nemo::bench;

namespace {

/// Wall-clock microseconds per operation, median of `samples` timed bursts.
/// Buffers are shared_alloc'd (arena-resident) so the shm path exercises
/// its direct-read mode — the Nemesis single-copy ideal.
double real_coll_us(coll::Mode mode, const char* op, int nranks,
                    std::size_t bytes, int iters, int samples) {
  // The mode IS the row being measured; pin the env knob so an ambient
  // NEMO_COLL cannot silently redirect it (env beats Config::coll).
  coll::ScopedForcedMode forced(mode);
  core::Config cfg;
  cfg.coll = mode;
  cfg.nranks = nranks;
  bool alltoall = std::strcmp(op, "alltoall") == 0;
  bool allreduce = std::strcmp(op, "allreduce") == 0;
  std::size_t matrix =
      alltoall ? bytes * static_cast<std::size_t>(nranks) : bytes;
  // Every rank shared_allocs its buffers out of the one pool.
  cfg.shared_pool_bytes =
      2 * matrix * static_cast<std::size_t>(nranks) + 16 * MiB;
  double result = 0;
  core::run(cfg, [&](core::Comm& comm) {
    std::byte* send = comm.shared_alloc(matrix);
    std::byte* recv = (alltoall || allreduce) ? comm.shared_alloc(matrix)
                                              : nullptr;
    pattern_fill({send, matrix}, static_cast<std::uint64_t>(comm.rank()));
    std::size_t elems = bytes / sizeof(double);
    std::vector<double> us;
    for (int s = 0; s < samples + 1; ++s) {  // First burst = warm-up.
      comm.hard_barrier();
      Timer t;
      for (int i = 0; i < iters; ++i) {
        if (alltoall)
          comm.alltoall(send, bytes, recv);
        else if (allreduce)
          comm.allreduce_f64(reinterpret_cast<const double*>(send),
                             reinterpret_cast<double*>(recv), elems,
                             core::Comm::ReduceOp::kSum);
        else
          comm.bcast(send, bytes, 0);
      }
      std::uint64_t ns = t.elapsed_ns();
      if (comm.rank() == 0 && s > 0)
        us.push_back(static_cast<double>(ns) / (1000.0 * iters));
    }
    if (comm.rank() == 0) {
      std::sort(us.begin(), us.end());
      result = us[us.size() / 2];
    }
  });
  return result;
}

/// Microseconds per barrier round under the given schedule (shm arena path
/// forced; the schedule knob picks flat vs tree).
double real_barrier_us(bool tree, int nranks, int iters, int samples) {
  coll::ScopedForcedMode forced(coll::Mode::kShm);
  // The schedule IS the row being measured: an ambient NEMO_BARRIER_TREE
  // must not redirect it.
  ScopedEnv sched("NEMO_BARRIER_TREE", tree ? "on" : "off");
  core::Config cfg;
  cfg.coll = coll::Mode::kShm;
  cfg.nranks = nranks;
  double result = 0;
  core::run(cfg, [&](core::Comm& comm) {
    std::vector<double> us;
    for (int s = 0; s < samples + 1; ++s) {
      comm.hard_barrier();
      Timer t;
      for (int i = 0; i < iters; ++i) comm.barrier();
      std::uint64_t ns = t.elapsed_ns();
      if (comm.rank() == 0 && s > 0)
        us.push_back(static_cast<double>(ns) / (1000.0 * iters));
    }
    if (comm.rank() == 0) {
      std::sort(us.begin(), us.end());
      result = us[us.size() / 2];
    }
  });
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  opt.declare("json", "write rows to this JSON file");
  opt.declare("iters", "ops per timed burst (default 8)");
  opt.declare("samples", "timed bursts per point, median kept (default 3)");
  opt.declare("smoke", "few points / fewer iters (bench_smoke)");
  opt.declare("skip-real", "only the simulator columns");
  opt.finalize();
  bool smoke = opt.get_flag("smoke");
  int iters = static_cast<int>(opt.get_int("iters", smoke ? 4 : 8));
  int samples = static_cast<int>(opt.get_int("samples", 3));
  bool real = !opt.get_flag("skip-real");

  std::vector<int> rank_counts = smoke ? std::vector<int>{4, 8}
                                       : std::vector<int>{2, 4, 8};
  std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{64 * KiB, 256 * KiB}
            : std::vector<std::size_t>{1 * KiB,   4 * KiB,  16 * KiB,
                                       64 * KiB,  256 * KiB, 1 * MiB,
                                       4 * MiB};
  const char* ops[] = {"bcast", "alltoall", "allreduce"};

  if (real) warn_if_oversubscribed(rank_counts.back());
  std::printf("# Collective sweep — p2p vs shm arena\n");
  std::printf("%-9s %5s %9s %5s %12s %12s %14s %12s\n", "op", "ranks",
              "bytes", "path", "wall_us", "sim_MiB/s", "sim_copy_B",
              "sim_L2miss");

  std::vector<std::string> rows;
  for (const char* op : ops) {
    bool alltoall = std::strcmp(op, "alltoall") == 0;
    bool allreduce = std::strcmp(op, "allreduce") == 0;
    for (int nranks : rank_counts) {
      std::vector<int> cores;
      for (int i = 0; i < nranks; ++i) cores.push_back(i);
      for (std::size_t bytes : sizes) {
        // The per-size payload is the op's symmetric measure: bcast total
        // bytes, alltoall per-pair block, allreduce operand bytes.
        for (bool shm : {false, true}) {
          sim::LmtModels m(sim::e5345_machine());
          sim::LmtModels::CollOutcome sim_out =
              alltoall    ? m.alltoall_coll(shm, cores, bytes, 2)
              : allreduce ? m.allreduce_coll(shm, cores, bytes, 2)
                          : m.bcast_coll(shm, cores, bytes, 2);
          double wall_us =
              real ? real_coll_us(shm ? coll::Mode::kShm : coll::Mode::kP2p,
                                  op, nranks, bytes, iters, samples)
                   : 0.0;
          const char* path = shm ? "shm" : "p2p";
          std::printf("%-9s %5d %9zu %5s %12.1f %12.0f %14llu %12llu\n", op,
                      nranks, bytes, path, wall_us, sim_out.mibs,
                      static_cast<unsigned long long>(sim_out.copy_bytes),
                      static_cast<unsigned long long>(sim_out.l2_misses));
          char row[512];
          std::snprintf(
              row, sizeof row,
              "{\"op\": \"%s\", \"ranks\": %d, \"bytes\": %zu, "
              "\"mode\": \"%s\", \"wall_us\": %.2f, \"sim_mibs\": %.1f, "
              "\"sim_copy_bytes\": %llu, \"sim_l2_misses\": %llu}",
              op, nranks, bytes, path, wall_us, sim_out.mibs,
              static_cast<unsigned long long>(sim_out.copy_bytes),
              static_cast<unsigned long long>(sim_out.l2_misses));
          rows.emplace_back(row);
        }
      }
    }
  }

  // Barrier microbench: flat vs k-ary tree arrival schedule, per rank
  // count. `bytes` is 0 (a barrier moves no payload); the sim column is the
  // modelled critical-path nanoseconds per round.
  std::printf("# Barrier — flat vs tree arrival schedule\n");
  int bar_iters = smoke ? 50 : 200;
  for (int nranks : rank_counts) {
    for (bool tree : {false, true}) {
      sim::LmtModels m(sim::e5345_machine());
      double sim_ns = m.barrier_coll_ns(tree, nranks, 4);
      double wall_us =
          real ? real_barrier_us(tree, nranks, bar_iters, samples) : 0.0;
      const char* path = tree ? "tree" : "flat";
      std::printf("%-9s %5d %9d %5s %12.2f %12.0f %14d %12d\n", "barrier",
                  nranks, 0, path, wall_us, sim_ns, 0, 0);
      char row[512];
      std::snprintf(row, sizeof row,
                    "{\"op\": \"barrier\", \"ranks\": %d, \"bytes\": 0, "
                    "\"mode\": \"%s\", \"wall_us\": %.3f, \"sim_ns\": %.1f}",
                    nranks, path, wall_us, sim_ns);
      rows.emplace_back(row);
    }
  }

  std::string json = opt.get("json", "");
  if (!json.empty() && !write_json_rows(json, "coll_sweep", rows)) return 1;
  return 0;
}
