// Collective sweep: the shm collective arena vs the pt2pt algorithms, per
// (op, rank count, size) — wall-clock from this host's real runtime plus
// deterministic copy-volume / L2-miss accounting from the simulator's
// E5345 replay. This is the bench behind bench/results/BENCH_coll.json:
// the shm path must show both lower wall time and lower simulated copy
// volume at the ISSUE's acceptance points (8-rank 256 KiB bcast, 4-rank
// 64 KiB-per-pair alltoall, 8-rank 256 KiB allreduce), and the barrier
// section races the flat gather against the k-ary tree schedule.
#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "bench_common.hpp"
#include "common/options.hpp"
#include "core/datatype.hpp"
#include "sim/lmt_models.hpp"
#include "simd/simd.hpp"

using namespace nemo;
using namespace nemo::bench;

namespace {

/// Wall-clock microseconds per operation, median of `samples` timed bursts.
/// Buffers are shared_alloc'd (arena-resident) so the shm path exercises
/// its direct-read mode — the Nemesis single-copy ideal.
double real_coll_us(coll::Mode mode, const char* op, int nranks,
                    std::size_t bytes, int iters, int samples) {
  // The mode IS the row being measured; pin the env knob so an ambient
  // NEMO_COLL cannot silently redirect it (env beats Config::coll).
  coll::ScopedForcedMode forced(mode);
  core::Config cfg;
  cfg.coll = mode;
  cfg.nranks = nranks;
  bool alltoall = std::strcmp(op, "alltoall") == 0;
  bool allreduce = std::strcmp(op, "allreduce") == 0;
  std::size_t matrix =
      alltoall ? bytes * static_cast<std::size_t>(nranks) : bytes;
  // Every rank shared_allocs its buffers out of the one pool.
  cfg.shared_pool_bytes =
      2 * matrix * static_cast<std::size_t>(nranks) + 16 * MiB;
  double result = 0;
  core::run(cfg, [&](core::Comm& comm) {
    std::byte* send = comm.shared_alloc(matrix);
    std::byte* recv = (alltoall || allreduce) ? comm.shared_alloc(matrix)
                                              : nullptr;
    pattern_fill({send, matrix}, static_cast<std::uint64_t>(comm.rank()));
    std::size_t elems = bytes / sizeof(double);
    std::vector<double> us;
    for (int s = 0; s < samples + 1; ++s) {  // First burst = warm-up.
      comm.hard_barrier();
      Timer t;
      for (int i = 0; i < iters; ++i) {
        if (alltoall)
          comm.alltoall(send, bytes, recv);
        else if (allreduce)
          comm.allreduce_f64(reinterpret_cast<const double*>(send),
                             reinterpret_cast<double*>(recv), elems,
                             core::Comm::ReduceOp::kSum);
        else
          comm.bcast(send, bytes, 0);
      }
      std::uint64_t ns = t.elapsed_ns();
      if (comm.rank() == 0 && s > 0)
        us.push_back(static_cast<double>(ns) / (1000.0 * iters));
    }
    if (comm.rank() == 0) {
      std::sort(us.begin(), us.end());
      result = us[us.size() / 2];
    }
  });
  return result;
}

/// MiB/s of the vertical fold an allreduce leader runs per merged rank
/// (dst[i] += src[i], f64) under the given kernel. In-process — no world,
/// no transport — so the row isolates the compute half of the reduction.
double fold_mibs(simd::Kernel k, std::size_t bytes, int iters, int samples) {
  std::size_t n = bytes / sizeof(double);
  std::vector<double> dst(n, 1.0);
  std::vector<double> src(n, 1.0 + 1.0 / 4096.0);
  std::vector<double> mibs;
  for (int s = 0; s < samples + 1; ++s) {  // First burst = warm-up.
    std::fill(dst.begin(), dst.end(), 1.0);
    Timer t;
    for (int i = 0; i < iters; ++i)
      simd::fold(k, simd::Op::kSum, dst.data(), src.data(), n);
    std::uint64_t ns = t.elapsed_ns();
    if (s > 0 && ns > 0)
      mibs.push_back(static_cast<double>(bytes) * iters * 1e9 /
                     (static_cast<double>(ns) * MiB));
  }
  if (mibs.empty()) return 0.0;
  std::sort(mibs.begin(), mibs.end());
  return mibs[mibs.size() / 2];
}

/// Strided alltoall: each per-pair contribution is `bytes` of payload laid
/// out as 1 KiB blocks every 2 KiB (a half-dense vector datatype). The shm
/// path packs blocks straight into arena chunks and unpacks into the strided
/// receive layout; the p2p path lowers both sides to segment lists. Either
/// way there is no contiguous staging copy — this row guards that.
double real_strided_us(coll::Mode mode, int nranks, std::size_t bytes,
                       int iters, int samples) {
  coll::ScopedForcedMode forced(mode);
  core::Config cfg;
  cfg.coll = mode;
  cfg.nranks = nranks;
  core::Datatype dt = core::Datatype::vector(bytes / KiB, KiB, 2 * KiB);
  std::size_t matrix = dt.extent() * static_cast<std::size_t>(nranks);
  cfg.shared_pool_bytes =
      2 * matrix * static_cast<std::size_t>(nranks) + 16 * MiB;
  double result = 0;
  core::run(cfg, [&](core::Comm& comm) {
    std::byte* send = comm.shared_alloc(matrix);
    std::byte* recv = comm.shared_alloc(matrix);
    pattern_fill({send, matrix}, static_cast<std::uint64_t>(comm.rank()));
    std::vector<double> us;
    for (int s = 0; s < samples + 1; ++s) {
      comm.hard_barrier();
      Timer t;
      for (int i = 0; i < iters; ++i)
        comm.alltoall_strided(send, dt, 1, recv, dt);
      std::uint64_t ns = t.elapsed_ns();
      if (comm.rank() == 0 && s > 0)
        us.push_back(static_cast<double>(ns) / (1000.0 * iters));
    }
    if (comm.rank() == 0) {
      std::sort(us.begin(), us.end());
      result = us[us.size() / 2];
    }
  });
  return result;
}

/// Microseconds per barrier round under the given schedule (shm arena path
/// forced; the schedule knob picks flat vs tree).
double real_barrier_us(bool tree, int nranks, int iters, int samples) {
  coll::ScopedForcedMode forced(coll::Mode::kShm);
  // The schedule IS the row being measured: an ambient NEMO_BARRIER_TREE
  // must not redirect it.
  ScopedEnv sched("NEMO_BARRIER_TREE", tree ? "on" : "off");
  core::Config cfg;
  cfg.coll = coll::Mode::kShm;
  cfg.nranks = nranks;
  double result = 0;
  core::run(cfg, [&](core::Comm& comm) {
    std::vector<double> us;
    for (int s = 0; s < samples + 1; ++s) {
      comm.hard_barrier();
      Timer t;
      for (int i = 0; i < iters; ++i) comm.barrier();
      std::uint64_t ns = t.elapsed_ns();
      if (comm.rank() == 0 && s > 0)
        us.push_back(static_cast<double>(ns) / (1000.0 * iters));
    }
    if (comm.rank() == 0) {
      std::sort(us.begin(), us.end());
      result = us[us.size() / 2];
    }
  });
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  opt.declare("json", "write rows to this JSON file");
  opt.declare("iters", "ops per timed burst (default 8)");
  opt.declare("samples", "timed bursts per point, median kept (default 3)");
  opt.declare("smoke", "few points / fewer iters (bench_smoke)");
  opt.declare("skip-real", "only the simulator columns");
  opt.declare("trace", "write a nemo-trace/1 ring dump to this file");
  opt.finalize();
  bool smoke = opt.get_flag("smoke");
  int iters = static_cast<int>(opt.get_int("iters", smoke ? 4 : 8));
  int samples = static_cast<int>(opt.get_int("samples", 3));
  bool real = !opt.get_flag("skip-real");
  std::string trace_path = opt.get("trace", "");
  if (!trace_path.empty()) {
    setenv("NEMO_TRACE", "rings", /*overwrite=*/0);
    trace::reload_mode();
  }

  std::vector<int> rank_counts = smoke ? std::vector<int>{4, 8}
                                       : std::vector<int>{2, 4, 8};
  std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{64 * KiB, 256 * KiB}
            : std::vector<std::size_t>{1 * KiB,   4 * KiB,  16 * KiB,
                                       64 * KiB,  256 * KiB, 1 * MiB,
                                       4 * MiB};
  const char* ops[] = {"bcast", "alltoall", "allreduce"};

  if (real) warn_if_oversubscribed(rank_counts.back());
  std::printf("# Collective sweep — p2p vs shm arena\n");
  std::printf("%-9s %5s %9s %5s %12s %12s %14s %12s\n", "op", "ranks",
              "bytes", "path", "wall_us", "sim_MiB/s", "sim_copy_B",
              "sim_L2miss");

  std::vector<std::string> rows;
  for (const char* op : ops) {
    bool alltoall = std::strcmp(op, "alltoall") == 0;
    bool allreduce = std::strcmp(op, "allreduce") == 0;
    for (int nranks : rank_counts) {
      std::vector<int> cores;
      for (int i = 0; i < nranks; ++i) cores.push_back(i);
      for (std::size_t bytes : sizes) {
        // The per-size payload is the op's symmetric measure: bcast total
        // bytes, alltoall per-pair block, allreduce operand bytes.
        for (bool shm : {false, true}) {
          sim::LmtModels m(sim::e5345_machine());
          sim::LmtModels::CollOutcome sim_out =
              alltoall    ? m.alltoall_coll(shm, cores, bytes, 2)
              : allreduce ? m.allreduce_coll(shm, cores, bytes, 2)
                          : m.bcast_coll(shm, cores, bytes, 2);
          double wall_us =
              real ? real_coll_us(shm ? coll::Mode::kShm : coll::Mode::kP2p,
                                  op, nranks, bytes, iters, samples)
                   : 0.0;
          const char* path = shm ? "shm" : "p2p";
          std::printf("%-9s %5d %9zu %5s %12.1f %12.0f %14llu %12llu\n", op,
                      nranks, bytes, path, wall_us, sim_out.mibs,
                      static_cast<unsigned long long>(sim_out.copy_bytes),
                      static_cast<unsigned long long>(sim_out.l2_misses));
          char row[512];
          std::snprintf(
              row, sizeof row,
              "{\"op\": \"%s\", \"ranks\": %d, \"bytes\": %zu, "
              "\"mode\": \"%s\", \"wall_us\": %.2f, \"sim_mibs\": %.1f, "
              "\"sim_copy_bytes\": %llu, \"sim_l2_misses\": %llu}",
              op, nranks, bytes, path, wall_us, sim_out.mibs,
              static_cast<unsigned long long>(sim_out.copy_bytes),
              static_cast<unsigned long long>(sim_out.l2_misses));
          rows.emplace_back(row);
        }
      }
    }
  }

  // Reduction-kernel microbench: one row per kernel this binary can run,
  // `mibs` higher-is-better. The committed baseline must show the
  // vectorized rows clearing the scalar row by the ISSUE's 1.5x margin at
  // 256 KiB; the gate then keeps every kernel from regressing.
  std::printf("# Fold kernels — scalar vs vectorized vertical reduce\n");
  int fold_iters = smoke ? 64 : 256;
  for (std::size_t bytes : {64 * KiB, 256 * KiB}) {
    for (simd::Kernel k : {simd::Kernel::kScalar, simd::Kernel::kAvx2,
                           simd::Kernel::kAvx512}) {
      if (!simd::kernel_supported(k)) continue;
      double mibs = real ? fold_mibs(k, bytes, fold_iters, samples) : 0.0;
      const char* kn = simd::kernel_name(k);
      std::printf("%-9s %5d %9zu %6s %12s %12.0f %14d %12d\n", "fold", 1,
                  bytes, kn, "-", mibs, 0, 0);
      char row[512];
      std::snprintf(row, sizeof row,
                    "{\"op\": \"fold\", \"ranks\": 1, \"bytes\": %zu, "
                    "\"mode\": \"%s\", \"mibs\": %.1f}",
                    bytes, kn, mibs);
      rows.emplace_back(row);
    }
  }

  // End-to-end effect of the kernel choice: allreduce with NEMO_SIMD pinned
  // (the env is read at world construction, so it lands on the shm leader
  // fold and the p2p combine loop alike).
  std::printf("# Allreduce — fold kernel forced via NEMO_SIMD\n");
  const char* best_kn = simd::kernel_name(simd::best_supported());
  std::vector<const char*> forced_kernels{"scalar"};
  if (std::strcmp(best_kn, "scalar") != 0) forced_kernels.push_back(best_kn);
  for (const char* kn : forced_kernels) {
    for (bool shm : {false, true}) {
      ScopedEnv simd_env("NEMO_SIMD", kn);
      coll::Mode mode = shm ? coll::Mode::kShm : coll::Mode::kP2p;
      double wall_us =
          real ? real_coll_us(mode, "allreduce", 8, 256 * KiB, iters, samples)
               : 0.0;
      const char* path = shm ? "shm" : "p2p";
      std::printf("%-9s %5d %9zu %5s %12.1f %12s %14s %12s\n", "allreduce",
                  8, 256 * KiB, path, wall_us, kn, "-", "-");
      char row[512];
      std::snprintf(row, sizeof row,
                    "{\"op\": \"allreduce\", \"ranks\": 8, \"bytes\": %zu, "
                    "\"mode\": \"%s\", \"simd\": \"%s\", \"wall_us\": %.2f}",
                    static_cast<std::size_t>(256 * KiB), path, kn, wall_us);
      rows.emplace_back(row);
    }
  }

  // Strided alltoall: derived-datatype payload through pack-into-slot (shm)
  // or segment lists (p2p). Per-pair packed bytes stay under the 8-rank
  // chunk capacity of the default 256 KiB slot so shm takes the direct path.
  std::printf("# Strided alltoall — pack into arena vs segment-list p2p\n");
  for (int nranks : rank_counts) {
    for (std::size_t bytes : {16 * KiB, 32 * KiB}) {
      for (bool shm : {false, true}) {
        coll::Mode mode = shm ? coll::Mode::kShm : coll::Mode::kP2p;
        double wall_us =
            real ? real_strided_us(mode, nranks, bytes, iters, samples) : 0.0;
        const char* path = shm ? "shm" : "p2p";
        std::printf("%-9s %5d %9zu %5s %12.1f %12s %14s %12s\n",
                    "a2a_strd", nranks, bytes, path, wall_us, "-", "-", "-");
        char row[512];
        std::snprintf(
            row, sizeof row,
            "{\"op\": \"alltoall_strided\", \"ranks\": %d, \"bytes\": %zu, "
            "\"mode\": \"%s\", \"wall_us\": %.2f}",
            nranks, bytes, path, wall_us);
        rows.emplace_back(row);
      }
    }
  }

  // Barrier microbench: flat vs k-ary tree arrival schedule, per rank
  // count. `bytes` is 0 (a barrier moves no payload); the sim column is the
  // modelled critical-path nanoseconds per round.
  std::printf("# Barrier — flat vs tree arrival schedule\n");
  int bar_iters = smoke ? 50 : 200;
  for (int nranks : rank_counts) {
    for (bool tree : {false, true}) {
      sim::LmtModels m(sim::e5345_machine());
      double sim_ns = m.barrier_coll_ns(tree, nranks, 4);
      double wall_us =
          real ? real_barrier_us(tree, nranks, bar_iters, samples) : 0.0;
      const char* path = tree ? "tree" : "flat";
      std::printf("%-9s %5d %9d %5s %12.2f %12.0f %14d %12d\n", "barrier",
                  nranks, 0, path, wall_us, sim_ns, 0, 0);
      char row[512];
      std::snprintf(row, sizeof row,
                    "{\"op\": \"barrier\", \"ranks\": %d, \"bytes\": 0, "
                    "\"mode\": \"%s\", \"wall_us\": %.3f, \"sim_ns\": %.1f}",
                    nranks, path, wall_us, sim_ns);
      rows.emplace_back(row);
    }
  }

  // Hierarchical two-level collectives over the modeled interconnect: the
  // leader-based schedule (auto + NEMO_COLL_HIER) vs the flat pt2pt family
  // per NxM topology, compared on modeled wire nanoseconds per op (summed
  // over ranks — deterministic, host-independent) next to the analytic
  // sim::allreduce_net_ns hop model. The flat baseline is pt2pt because
  // the arena's cross-node loads never touch the transport; see
  // bench_common::modeled_net_ns_per_op. The committed baseline must show
  // hier < flat from 8 nodes up (it already wins at 2).
  std::printf("# Hierarchical allreduce — modeled NxM topologies, 256 KiB\n");
  std::printf("%-9s %6s %6s %14s %14s\n", "op", "topo", "path", "net_ns_op",
              "model_ns");
  struct Topo {
    int nodes, per;
  };
  std::vector<Topo> topos = smoke
                                ? std::vector<Topo>{{2, 4}, {8, 2}}
                                : std::vector<Topo>{{2, 4},
                                                    {4, 2},
                                                    {4, 4},
                                                    {8, 2},
                                                    {8, 4},
                                                    {16, 2}};
  int hier_iters = smoke ? 2 : 4;
  std::size_t hier_bytes = 256 * KiB;
  sim::NetLink link;
  for (const Topo& t : topos) {
    for (bool hier : {false, true}) {
      double net_ns =
          real ? modeled_net_ns_per_op("allreduce", hier, t.nodes, t.per,
                                       hier_bytes, hier_iters)
               : 0.0;
      double model_ns =
          sim::allreduce_net_ns(link, t.nodes, t.per, hier_bytes, hier);
      char topo[16];
      std::snprintf(topo, sizeof topo, "%dx%d", t.nodes, t.per);
      const char* path = hier ? "hier" : "flat";
      std::printf("%-9s %6s %6s %14.0f %14.0f\n", "allreduce", topo, path,
                  net_ns, model_ns);
      char row[512];
      std::snprintf(row, sizeof row,
                    "{\"op\": \"allreduce\", \"topo\": \"%s\", "
                    "\"nodes\": %d, \"per_node\": %d, \"bytes\": %zu, "
                    "\"mode\": \"%s\", \"net_ns_op\": %.1f, "
                    "\"model_net_ns\": %.1f}",
                    topo, t.nodes, t.per, hier_bytes, path, net_ns, model_ns);
      rows.emplace_back(row);
    }
  }

  // Trace-overhead budget rows: the 8-rank 256 KiB shm allreduce with
  // NEMO_TRACE pinned off vs rings. check_bench_regression --diff groups
  // rows differing only in "trace" and prints the percentage against the
  // <1% (off) / <5% (rings) budget; test_trace_overhead enforces it.
  std::printf("# Trace overhead — allreduce 8x256KiB shm, off vs rings\n");
  for (const char* tmode : {"off", "rings"}) {
    double wall_us = 0.0;
    {
      ScopedEnv tenv("NEMO_TRACE", tmode);
      trace::reload_mode();
      wall_us = real ? real_coll_us(coll::Mode::kShm, "allreduce", 8,
                                    256 * KiB, iters, samples)
                     : 0.0;
    }
    trace::reload_mode();  // Back to the ambient / --trace mode.
    std::printf("%-9s %5d %9zu %5s %12.1f %12s %14s %12s\n", "allreduce", 8,
                static_cast<std::size_t>(256 * KiB), tmode, wall_us, "-",
                "-", "-");
    char row[512];
    std::snprintf(row, sizeof row,
                  "{\"op\": \"allreduce\", \"ranks\": 8, \"bytes\": %zu, "
                  "\"mode\": \"shm\", \"trace\": \"%s\", \"wall_us\": %.2f}",
                  static_cast<std::size_t>(256 * KiB), tmode, wall_us);
    rows.emplace_back(row);
  }

  // Liveness-overhead budget rows: the same allreduce with the bounded-wait
  // guards armed (default timeout) vs NEMO_PEER_TIMEOUT_MS=off (the
  // pre-resilience unbounded spins). The guard rides only the every-64-spins
  // slow path, so check_bench_regression --diff's "liveness" grouping must
  // show the armed row within 2% of off.
  std::printf("# Liveness overhead — allreduce 8x256KiB shm, on vs off\n");
  for (const char* lmode : {"on", "off"}) {
    double wall_us = 0.0;
    {
      ScopedEnv lenv("NEMO_PEER_TIMEOUT_MS",
                     std::strcmp(lmode, "on") == 0 ? "30000" : "off");
      wall_us = real ? real_coll_us(coll::Mode::kShm, "allreduce", 8,
                                    256 * KiB, iters, samples)
                     : 0.0;
    }
    std::printf("%-9s %5d %9zu %5s %12.1f %12s %14s %12s\n", "allreduce", 8,
                static_cast<std::size_t>(256 * KiB), lmode, wall_us, "-",
                "-", "-");
    char row[512];
    std::snprintf(
        row, sizeof row,
        "{\"op\": \"allreduce\", \"ranks\": 8, \"bytes\": %zu, "
        "\"mode\": \"shm\", \"liveness\": \"%s\", \"wall_us\": %.2f}",
        static_cast<std::size_t>(256 * KiB), lmode, wall_us);
    rows.emplace_back(row);
  }

  std::string json = opt.get("json", "");
  if (!json.empty() && !write_json_rows(json, "coll_sweep", rows)) return 1;
  if (!trace_path.empty()) {
    std::string err;
    if (!trace::write_dump(trace_path, &err)) {
      std::fprintf(stderr, "trace dump failed: %s\n", err.c_str());
      return 1;
    }
    std::printf("wrote %s\n", trace_path.c_str());
  }
  return 0;
}
