// google-benchmark micro-benchmarks of the substrate primitives: Nemesis
// queue enqueue/dequeue, copy-ring push/pop, NT vs cached copy, KNEM command
// issue, CMA vs direct read.
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <vector>

#include "knem/knem_device.hpp"
#include "shm/arena.hpp"
#include "shm/copy_ring.hpp"
#include "shm/nemesis_queue.hpp"
#include "shm/nt_copy.hpp"
#include "shm/remote_mem.hpp"

namespace {

using namespace nemo;
using namespace nemo::shm;

void BM_QueueEnqueueDequeue(benchmark::State& state) {
  Arena arena = Arena::create_anonymous(16 * MiB);
  RankQueues rq = make_rank_queues(arena, 0, 64);
  QueueView freeq(arena, rq.free_q), recvq(arena, rq.recv_q);
  for (auto _ : state) {
    std::uint64_t off = freeq.dequeue();
    recvq.enqueue(off);
    std::uint64_t got = recvq.dequeue();
    freeq.enqueue(got);
    benchmark::DoNotOptimize(got);
  }
}
BENCHMARK(BM_QueueEnqueueDequeue);

void BM_RingPushPop(benchmark::State& state) {
  auto chunk = static_cast<std::size_t>(state.range(0));
  Arena arena = Arena::create_anonymous(16 * MiB);
  std::uint64_t off = CopyRing::create(
      arena, 2, static_cast<std::uint32_t>(chunk));
  CopyRing ring(arena, off);
  std::vector<std::byte> src(chunk), dst(chunk);
  std::uint64_t sc = 0, rc = 0;
  for (auto _ : state) {
    ring.try_push(sc, src.data(), chunk, false);
    bool last;
    ring.try_pop(rc, dst.data(), last);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chunk));
}
BENCHMARK(BM_RingPushPop)->Arg(8 << 10)->Arg(32 << 10)->Arg(128 << 10);

void BM_CachedCopy(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> src(n), dst(n);
  for (auto _ : state) {
    cached_memcpy(dst.data(), src.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CachedCopy)->Arg(64 << 10)->Arg(1 << 20)->Arg(4 << 20);

void BM_NtCopy(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> src(n), dst(n);
  for (auto _ : state) {
    nt_memcpy(dst.data(), src.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_NtCopy)->Arg(64 << 10)->Arg(1 << 20)->Arg(4 << 20);

void BM_KnemCommandRoundTrip(benchmark::State& state) {
  Arena arena = Arena::create_anonymous(16 * MiB);
  std::uint64_t dev_off = knem::Device::create(arena);
  knem::Device dev(arena, dev_off, 0, ::getpid());
  std::vector<std::byte> buf(4096);
  for (auto _ : state) {
    std::uint64_t cookie =
        dev.submit_send(ConstSegmentList{{buf.data(), buf.size()}});
    dev.release(cookie);
    benchmark::DoNotOptimize(cookie);
  }
}
BENCHMARK(BM_KnemCommandRoundTrip);

void BM_DirectVsCmaRead(benchmark::State& state) {
  bool cma = state.range(0) != 0;
  if (cma && !cma_available()) {
    state.SkipWithError("CMA unavailable");
    return;
  }
  auto n = static_cast<std::size_t>(state.range(1));
  std::vector<std::byte> src(n), dst(n);
  RemoteMemPort port(cma ? RemoteMode::kCma : RemoteMode::kDirect,
                     ::getpid());
  RemoteSegmentList remote{{reinterpret_cast<std::uint64_t>(src.data()), n}};
  SegmentList local{{dst.data(), n}};
  for (auto _ : state) {
    port.read(remote, local);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DirectVsCmaRead)
    ->Args({0, 1 << 20})
    ->Args({1, 1 << 20})
    ->Args({0, 4 << 20})
    ->Args({1, 4 << 20});

}  // namespace

BENCHMARK_MAIN();
