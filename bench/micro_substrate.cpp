// google-benchmark micro-benchmarks of the substrate primitives: Nemesis
// queue enqueue/dequeue, copy-ring push/pop, NT vs cached copy, KNEM command
// issue, CMA vs direct read — plus one end-to-end eager pingpong through
// World's standard bring-up. Shared geometry (queue cells, ring buffers)
// comes from the same tuned table the World applies, so the rows reflect
// shipped defaults rather than hardcoded seed values.
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/timing.hpp"
#include "core/comm.hpp"
#include "knem/knem_device.hpp"
#include "shm/arena.hpp"
#include "shm/copy_ring.hpp"
#include "shm/nemesis_queue.hpp"
#include "shm/nt_copy.hpp"
#include "shm/remote_mem.hpp"
#include "tune/tuning.hpp"

namespace {

using namespace nemo;
using namespace nemo::shm;

/// The tuned table a World constructed on this host would apply (env
/// overrides included) — detected once, shared by every benchmark.
const tune::TuningTable& shipped_tuning() {
  static tune::TuningTable t = tune::effective_table(detect_host());
  return t;
}

/// Ring geometry the way the World resolves it: the tuned per-placement
/// value when calibrated, else the Config default.
std::uint32_t shipped_ring_bufs() {
  std::uint32_t v =
      shipped_tuning().for_placement(PairPlacement::kSharedCache).ring_bufs;
  return v != 0 ? v : core::Config{}.ring_bufs;
}

void BM_QueueEnqueueDequeue(benchmark::State& state) {
  Arena arena = Arena::create_anonymous(16 * MiB);
  RankQueues rq = make_rank_queues(arena, 0, core::Config{}.cells_per_rank);
  QueueView freeq(arena, rq.free_q), recvq(arena, rq.recv_q);
  for (auto _ : state) {
    std::uint64_t off = freeq.dequeue();
    recvq.enqueue(off);
    std::uint64_t got = recvq.dequeue();
    freeq.enqueue(got);
    benchmark::DoNotOptimize(got);
  }
}
BENCHMARK(BM_QueueEnqueueDequeue);

void BM_RingPushPop(benchmark::State& state) {
  auto chunk = static_cast<std::size_t>(state.range(0));
  Arena arena = Arena::create_anonymous(16 * MiB);
  std::uint64_t off = CopyRing::create(
      arena, shipped_ring_bufs(), static_cast<std::uint32_t>(chunk));
  CopyRing ring(arena, off);
  std::vector<std::byte> src(chunk), dst(chunk);
  std::uint64_t sc = 0, rc = 0;
  for (auto _ : state) {
    ring.try_push(sc, src.data(), chunk, false);
    bool last;
    ring.try_pop(rc, dst.data(), last);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chunk));
}
BENCHMARK(BM_RingPushPop)->Arg(8 << 10)->Arg(32 << 10)->Arg(128 << 10);

void BM_CachedCopy(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> src(n), dst(n);
  for (auto _ : state) {
    cached_memcpy(dst.data(), src.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CachedCopy)->Arg(64 << 10)->Arg(1 << 20)->Arg(4 << 20);

void BM_NtCopy(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> src(n), dst(n);
  for (auto _ : state) {
    nt_memcpy(dst.data(), src.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_NtCopy)->Arg(64 << 10)->Arg(1 << 20)->Arg(4 << 20);

void BM_KnemCommandRoundTrip(benchmark::State& state) {
  Arena arena = Arena::create_anonymous(16 * MiB);
  std::uint64_t dev_off = knem::Device::create(arena);
  knem::Device dev(arena, dev_off, 0, ::getpid());
  std::vector<std::byte> buf(4096);
  for (auto _ : state) {
    std::uint64_t cookie =
        dev.submit_send(ConstSegmentList{{buf.data(), buf.size()}});
    dev.release(cookie);
    benchmark::DoNotOptimize(cookie);
  }
}
BENCHMARK(BM_KnemCommandRoundTrip);

void BM_DirectVsCmaRead(benchmark::State& state) {
  bool cma = state.range(0) != 0;
  if (cma && !cma_available()) {
    state.SkipWithError("CMA unavailable");
    return;
  }
  auto n = static_cast<std::size_t>(state.range(1));
  std::vector<std::byte> src(n), dst(n);
  RemoteMemPort port(cma ? RemoteMode::kCma : RemoteMode::kDirect,
                     ::getpid());
  RemoteSegmentList remote{{reinterpret_cast<std::uint64_t>(src.data()), n}};
  SegmentList local{{dst.data(), n}};
  for (auto _ : state) {
    port.read(remote, local);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DirectVsCmaRead)
    ->Args({0, 1 << 20})
    ->Args({1, 1 << 20})
    ->Args({0, 4 << 20})
    ->Args({1, 4 << 20});

void BM_WorldEagerPingpong(benchmark::State& state) {
  // End-to-end eager round trip through World's standard bring-up: one
  // 2-rank world per benchmark run, the measured loop inside it, so the
  // fastbox geometry, drain budget and poll order are exactly what a
  // shipped World applies (not the seed constants the raw-primitive rows
  // above would otherwise bake in).
  auto bytes = static_cast<std::size_t>(state.range(0));
  core::Config cfg;
  cfg.nranks = 2;
  double rtt_ns = 0;
  core::run(cfg, [&](core::Comm& comm) {
    std::vector<std::byte> buf(bytes);
    int peer = 1 - comm.rank();
    std::uint64_t iters = 0, t0 = 0;
    if (comm.rank() == 0) t0 = now_ns();
    // Rank 1 mirrors rank 0's iteration count: benchmark::State paces rank
    // 0 only; a sentinel zero-byte message ends the partner loop.
    if (comm.rank() == 0) {
      for (auto _ : state) {
        comm.send(buf.data(), bytes, peer, 1);
        comm.recv(buf.data(), bytes, peer, 2);
        ++iters;
      }
      comm.send(buf.data(), 0, peer, 3);  // Stop marker.
      rtt_ns = iters > 0
                   ? static_cast<double>(now_ns() - t0) /
                         static_cast<double>(iters)
                   : 0;
    } else {
      core::RecvInfo info;
      for (;;) {
        comm.recv(buf.data(), bytes, peer, core::kAnyTag, &info);
        if (info.tag == 3) break;
        comm.send(buf.data(), bytes, peer, 2);
      }
    }
  });
  state.counters["rtt_ns"] =
      benchmark::Counter(rtt_ns, benchmark::Counter::kAvgThreads);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_WorldEagerPingpong)->Arg(64)->Arg(1 << 10)->Arg(16 << 10);

}  // namespace

// Accept `--json <file>` / `--json=<file>` like the figure benches and
// translate it to google-benchmark's native JSON reporter flags.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  static std::string out_flag, fmt_flag = "--benchmark_out_format=json";
  for (std::size_t i = 1; i < args.size(); ++i) {
    std::string a = args[i];
    std::string path;
    if (a.rfind("--json=", 0) == 0) {
      path = a.substr(7);
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
    } else if (a == "--json" && i + 1 < args.size()) {
      path = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    } else {
      continue;
    }
    out_flag = "--benchmark_out=" + path;
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
    break;
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
