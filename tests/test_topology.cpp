// Topology presets, cache-sharing queries, and placement classification —
// the inputs to the paper's DMAmin formula.
#include <gtest/gtest.h>

#include "common/common.hpp"
#include "common/topology.hpp"

namespace nemo {
namespace {

TEST(Topology, E5345Shape) {
  Topology t = xeon_e5345();
  EXPECT_EQ(t.num_cores, 8);
  // Cores 0,1 share a die-level 4 MiB L2; 0,2 do not.
  auto shared = t.shared_cache(0, 1);
  ASSERT_TRUE(shared.has_value());
  EXPECT_EQ(shared->level, 2);
  EXPECT_EQ(shared->size_bytes, 4 * MiB);
  EXPECT_FALSE(t.shared_cache(0, 2).has_value());
  EXPECT_FALSE(t.shared_cache(0, 7).has_value());
}

TEST(Topology, E5345Placements) {
  Topology t = xeon_e5345();
  EXPECT_EQ(t.classify(0, 1), PairPlacement::kSharedCache);
  EXPECT_EQ(t.classify(0, 2), PairPlacement::kSameSocketNoShare);
  EXPECT_EQ(t.classify(0, 4), PairPlacement::kDifferentSockets);
  auto p1 = t.find_pair(PairPlacement::kSharedCache);
  auto p2 = t.find_pair(PairPlacement::kSameSocketNoShare);
  auto p3 = t.find_pair(PairPlacement::kDifferentSockets);
  ASSERT_TRUE(p1 && p2 && p3);
  EXPECT_EQ(t.classify(p1->first, p1->second), PairPlacement::kSharedCache);
  EXPECT_EQ(t.classify(p2->first, p2->second),
            PairPlacement::kSameSocketNoShare);
  EXPECT_EQ(t.classify(p3->first, p3->second),
            PairPlacement::kDifferentSockets);
}

TEST(Topology, LargestCacheAndSharers) {
  Topology t = xeon_e5345();
  for (int c = 0; c < 8; ++c) {
    EXPECT_EQ(t.largest_cache(c).size_bytes, 4 * MiB);
    EXPECT_EQ(t.cores_sharing_largest_cache(c), 2u);
  }
  Topology n = nehalem();
  EXPECT_EQ(n.largest_cache(0).level, 3);
  EXPECT_EQ(n.cores_sharing_largest_cache(0), 4u);
}

TEST(Topology, X5460HasSixMiBPairCaches) {
  Topology t = xeon_x5460();
  auto shared = t.shared_cache(0, 1);
  ASSERT_TRUE(shared.has_value());
  EXPECT_EQ(shared->size_bytes, 6 * MiB);
  EXPECT_FALSE(t.shared_cache(1, 2).has_value());
  // Single socket: no different-sockets pair exists.
  EXPECT_FALSE(t.find_pair(PairPlacement::kDifferentSockets).has_value());
}

TEST(Topology, FlatSmpHasNoSharedCaches) {
  Topology t = flat_smp(4, 8 * MiB);
  for (int a = 0; a < 4; ++a)
    for (int b = a + 1; b < 4; ++b)
      EXPECT_FALSE(t.shared_cache(a, b).has_value());
  EXPECT_FALSE(t.find_pair(PairPlacement::kSharedCache).has_value());
}

TEST(Topology, NehalemSharesL3AcrossAllCores) {
  Topology t = nehalem();
  for (int a = 0; a < 4; ++a)
    for (int b = a + 1; b < 4; ++b) {
      auto s = t.shared_cache(a, b);
      ASSERT_TRUE(s.has_value());
      EXPECT_EQ(s->level, 3);
    }
}

TEST(Topology, DetectHostProducesValidTopology) {
  Topology t = detect_host();
  EXPECT_GE(t.num_cores, 1);
  // validate() aborts on inconsistency; reaching here means it passed.
  t.validate();
  for (int c = 0; c < t.num_cores; ++c)
    EXPECT_GT(t.largest_cache(c).size_bytes, 0u);
}

TEST(Topology, PlacementNames) {
  EXPECT_STREQ(to_string(PairPlacement::kSharedCache), "shared-cache");
  EXPECT_STREQ(to_string(PairPlacement::kDifferentSockets),
               "different-sockets");
}

}  // namespace
}  // namespace nemo
