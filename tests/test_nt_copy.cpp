// Non-temporal copy kernels: correctness over sizes/alignments (the I/OAT
// stand-in must be byte-exact whatever the pointer alignment).
#include <gtest/gtest.h>

#include <vector>

#include "common/checksum.hpp"
#include "common/common.hpp"
#include "shm/nt_copy.hpp"

namespace nemo::shm {
namespace {

class NtCopySizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NtCopySizes, ByteExact) {
  std::size_t n = GetParam();
  std::vector<std::byte> src(n + 64), dst(n + 64, std::byte{0xee});
  pattern_fill(src, n);
  nt_memcpy(dst.data(), src.data(), n);
  EXPECT_EQ(pattern_check(std::span<const std::byte>(dst.data(), n), n),
            kPatternOk);
  // Guard bytes untouched.
  for (std::size_t i = n; i < n + 64; ++i)
    EXPECT_EQ(dst[i], std::byte{0xee}) << i;
}

INSTANTIATE_TEST_SUITE_P(Sizes, NtCopySizes,
                         ::testing::Values(0, 1, 15, 16, 17, 63, 64, 65, 100,
                                           4095, 4096, 4097, 64 * 1024,
                                           1 << 20));

class NtCopyAlignments : public ::testing::TestWithParam<int> {};

TEST_P(NtCopyAlignments, MisalignedSourceAndDest) {
  int off = GetParam();
  constexpr std::size_t kN = 10000;
  std::vector<std::byte> src(kN + 32), dst(kN + 32);
  pattern_fill(src, 5);
  nt_memcpy(dst.data() + off, src.data() + (off * 7) % 16, kN);
  for (std::size_t i = 0; i < kN; ++i)
    ASSERT_EQ(dst[static_cast<std::size_t>(off) + i],
              src[static_cast<std::size_t>((off * 7) % 16) + i]);
}

INSTANTIATE_TEST_SUITE_P(Offsets, NtCopyAlignments,
                         ::testing::Values(0, 1, 3, 7, 8, 13, 15));

// Full head/bulk/tail matrix: every combination of destination misalignment
// (drives the head fixup), source misalignment (unaligned loads), and sizes
// straddling the 16-byte and 64-byte boundaries, including n < 16 where the
// whole copy is head+tail.
TEST(NtCopy, AlignmentBySizeMatrix) {
  constexpr std::size_t kMaxN = 300;
  constexpr std::size_t kGuard = 32;
  std::vector<std::byte> src(kMaxN + kGuard + 16), dst;
  pattern_fill(src, 77);
  for (std::size_t doff : {0u, 1u, 7u, 8u, 15u}) {
    for (std::size_t soff : {0u, 3u, 9u}) {
      for (std::size_t n :
           {0u, 1u, 2u, 15u, 16u, 17u, 31u, 63u, 64u, 65u, 127u, 128u,
            200u, 255u}) {
        dst.assign(n + doff + kGuard, std::byte{0xee});
        nt_memcpy(dst.data() + doff, src.data() + soff, n);
        for (std::size_t i = 0; i < n; ++i)
          ASSERT_EQ(dst[doff + i], src[soff + i])
              << "doff=" << doff << " soff=" << soff << " n=" << n
              << " i=" << i;
        for (std::size_t i = 0; i < doff; ++i)
          ASSERT_EQ(dst[i], std::byte{0xee}) << "head guard " << i;
        for (std::size_t i = n + doff; i < dst.size(); ++i)
          ASSERT_EQ(dst[i], std::byte{0xee}) << "tail guard " << i;
      }
    }
  }
}

TEST(NtCopy, DefaultThresholdIsSaneAndStable) {
  std::size_t t = nt_default_threshold();
  EXPECT_GE(t, 256 * KiB);  // Half of any plausible LLC.
  EXPECT_LE(t, 1 * GiB);
  EXPECT_EQ(t, nt_default_threshold());  // Cached, deterministic.
}

TEST(NtCopy, CopyForSelectsBothPaths) {
  std::vector<std::byte> src(5000), dst(5000);
  pattern_fill(src, 11);
  copy_for(true, dst.data(), src.data(), src.size());
  EXPECT_EQ(pattern_check(dst, 11), kPatternOk);
  std::fill(dst.begin(), dst.end(), std::byte{0});
  copy_for(false, dst.data(), src.data(), src.size());
  EXPECT_EQ(pattern_check(dst, 11), kPatternOk);
}

TEST(NtCopy, AvailableOnX86) {
#if defined(__x86_64__)
  EXPECT_TRUE(nt_copy_available());
#else
  SUCCEED();
#endif
}

TEST(NtCopy, CachedCopyIsMemcpy) {
  std::vector<std::byte> src(1000), dst(1000);
  pattern_fill(src, 9);
  cached_memcpy(dst.data(), src.data(), 1000);
  EXPECT_EQ(pattern_check(dst, 9), kPatternOk);
}

}  // namespace
}  // namespace nemo::shm
