// Property sweeps and soak tests over the full stack: every backend must
// deliver byte-exact payloads for arbitrary (size, fragmentation, traffic
// pattern) combinations, and the engine must stay deadlock-free under
// randomized bidirectional load.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/checksum.hpp"
#include "core/comm.hpp"

namespace nemo::core {
namespace {

// --- Property: delivery is byte-exact for size x fragmentation x backend ---

using XferCase = std::tuple<lmt::LmtKind, std::size_t /*bytes*/,
                            std::size_t /*send frags*/,
                            std::size_t /*recv frags*/>;

class FragmentedTransfer : public ::testing::TestWithParam<XferCase> {};

SegmentList fragment(std::byte* base, std::size_t total, std::size_t frags) {
  SegmentList out;
  std::size_t off = 0;
  for (std::size_t i = 0; i < frags; ++i) {
    // Uneven pieces, including a zero-length one in the middle.
    std::size_t len = (i + 1 == frags)
                          ? total - off
                          : (total / frags) + (i % 3 == 0 ? 7 : 0);
    if (off + len > total) len = total - off;
    if (i == frags / 2) out.push_back({base + off, 0});
    out.push_back({base + off, len});
    off += len;
  }
  return out;
}

TEST_P(FragmentedTransfer, ByteExactAcrossSegmentGeometries) {
  auto [kind, bytes, sfrags, rfrags] = GetParam();
  Config cfg;
  cfg.nranks = 2;
  cfg.lmt = kind;
  cfg.knem_mode = lmt::KnemMode::kAuto;
  run(cfg, [&](Comm& comm) {
    std::vector<std::byte> mem(bytes);
    if (comm.rank() == 0) {
      pattern_fill(mem, bytes * 31);
      SegmentList segs = fragment(mem.data(), bytes, sfrags);
      comm.wait(comm.isendv(nemo::as_const(segs), 1, 3));
    } else {
      SegmentList segs = fragment(mem.data(), bytes, rfrags);
      comm.wait(comm.irecvv(std::move(segs), 0, 3));
      EXPECT_EQ(pattern_check(mem, bytes * 31), kPatternOk);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, FragmentedTransfer,
    ::testing::Combine(
        ::testing::Values(lmt::LmtKind::kDefaultShm, lmt::LmtKind::kVmsplice,
                          lmt::LmtKind::kKnem),
        ::testing::Values(std::size_t{100 * KiB}, std::size_t{1 * MiB + 11}),
        ::testing::Values(std::size_t{1}, std::size_t{5}, std::size_t{23}),
        ::testing::Values(std::size_t{1}, std::size_t{8})),
    [](const auto& info) {
      std::string s = lmt::to_string(std::get<0>(info.param));
      for (auto& c : s)
        if (c == '-') c = '_';
      return s + "_" + std::to_string(std::get<1>(info.param)) + "b_s" +
             std::to_string(std::get<2>(info.param)) + "_r" +
             std::to_string(std::get<3>(info.param));
    });

// --- Soak: randomized bidirectional traffic, all sizes interleaved ---------

class TrafficSoak : public ::testing::TestWithParam<lmt::LmtKind> {};

TEST_P(TrafficSoak, RandomizedBidirectionalMix) {
  Config cfg;
  cfg.nranks = 2;
  cfg.lmt = GetParam();
  cfg.knem_mode = lmt::KnemMode::kAuto;
  cfg.cells_per_rank = 16;  // Keep cell pressure on.
  run(cfg, [&](Comm& comm) {
    // Same deterministic size stream on both ranks.
    SplitMix64 sizes(2026);
    constexpr int kMsgs = 60;
    int peer = 1 - comm.rank();
    std::vector<Request> reqs;
    std::vector<std::vector<std::byte>> keep;
    for (int i = 0; i < kMsgs; ++i) {
      std::size_t sz = 1 + sizes.next_below(700 * KiB);
      keep.emplace_back(sz);
      pattern_fill(keep.back(), static_cast<std::uint64_t>(i) * 2 +
                                    static_cast<std::uint64_t>(comm.rank()));
      reqs.push_back(comm.isend(keep.back().data(), sz, peer, i));
      keep.emplace_back(sz);
      reqs.push_back(comm.irecv(keep.back().data(), sz, peer, i));
      // Occasionally drain to bound in-flight state.
      if (i % 8 == 7) {
        comm.waitall(reqs);
        // Verify the received half of the last batch.
        for (std::size_t k = 1; k < keep.size(); k += 2) {
          auto msg = (k - 1) / 2;
          EXPECT_EQ(pattern_check(keep[k],
                                  static_cast<std::uint64_t>(msg) * 2 +
                                      static_cast<std::uint64_t>(peer)),
                    kPatternOk)
              << "msg " << msg;
        }
        // Keep buffers alive until verified, then recycle.
        reqs.clear();
        // (sizes stream continues; keep grows per batch)
      }
    }
    comm.waitall(reqs);
  });
}

INSTANTIATE_TEST_SUITE_P(Kinds, TrafficSoak,
                         ::testing::Values(lmt::LmtKind::kDefaultShm,
                                           lmt::LmtKind::kKnem,
                                           lmt::LmtKind::kAuto),
                         [](const auto& info) {
                           std::string s = lmt::to_string(info.param);
                           for (auto& c : s)
                             if (c == '-') c = '_';
                           return s;
                         });

// --- Many-to-one and one-to-many fan patterns -------------------------------

TEST(FanPatterns, ManyToOneLargeMessages) {
  Config cfg;
  cfg.nranks = 5;
  cfg.lmt = lmt::LmtKind::kKnem;
  run(cfg, [&](Comm& comm) {
    constexpr std::size_t kN = 256 * KiB;
    if (comm.rank() == 0) {
      // Wildcard-source receives from every peer, arbitrary arrival order.
      std::vector<std::vector<std::byte>> bufs;
      for (int i = 1; i < comm.size(); ++i) {
        bufs.emplace_back(kN);
        RecvInfo info;
        comm.recv(bufs.back().data(), kN, kAnySource, 9, &info);
        EXPECT_EQ(pattern_check(bufs.back(),
                                static_cast<std::uint64_t>(info.src)),
                  kPatternOk);
      }
    } else {
      std::vector<std::byte> buf(kN);
      pattern_fill(buf, static_cast<std::uint64_t>(comm.rank()));
      comm.send(buf.data(), kN, 0, 9);
    }
  });
}

TEST(FanPatterns, OneToManyDistinctPayloads) {
  Config cfg;
  cfg.nranks = 5;
  cfg.lmt = lmt::LmtKind::kDefaultShm;
  run(cfg, [&](Comm& comm) {
    constexpr std::size_t kN = 200 * KiB;
    if (comm.rank() == 0) {
      std::vector<std::vector<std::byte>> bufs;
      std::vector<Request> reqs;
      for (int dst = 1; dst < comm.size(); ++dst) {
        bufs.emplace_back(kN);
        pattern_fill(bufs.back(), 50u + static_cast<std::uint64_t>(dst));
        reqs.push_back(comm.isend(bufs.back().data(), kN, dst, 4));
      }
      comm.waitall(reqs);
    } else {
      std::vector<std::byte> buf(kN);
      comm.recv(buf.data(), kN, 0, 4);
      EXPECT_EQ(
          pattern_check(buf, 50u + static_cast<std::uint64_t>(comm.rank())),
          kPatternOk);
    }
  });
}

// --- Mixed backends in one world --------------------------------------------

TEST(MixedTraffic, CollectivesInterleavedWithPt2pt) {
  Config cfg;
  cfg.nranks = 4;
  cfg.lmt = lmt::LmtKind::kAuto;
  cfg.knem_mode = lmt::KnemMode::kAuto;
  run(cfg, [&](Comm& comm) {
    int n = comm.size();
    constexpr std::size_t kN = 128 * KiB;
    std::vector<std::byte> ring_out(kN), ring_in(kN);
    for (int round = 0; round < 5; ++round) {
      // Pt2pt ring with outstanding requests...
      pattern_fill(ring_out, static_cast<std::uint64_t>(
                                 comm.rank() * 10 + round));
      Request s =
          comm.isend(ring_out.data(), kN, (comm.rank() + 1) % n, round);
      Request r =
          comm.irecv(ring_in.data(), kN, (comm.rank() + n - 1) % n, round);
      // ...while a collective runs in between (separate match context).
      std::int64_t one = 1, sum = 0;
      comm.allreduce_i64(&one, &sum, 1, Comm::ReduceOp::kSum);
      EXPECT_EQ(sum, n);
      comm.wait(s);
      comm.wait(r);
      EXPECT_EQ(
          pattern_check(ring_in, static_cast<std::uint64_t>(
                                     ((comm.rank() + n - 1) % n) * 10 +
                                     round)),
          kPatternOk);
    }
  });
}

}  // namespace
}  // namespace nemo::core
