// Matching engine: wildcard semantics, FIFO ordering, context isolation,
// partial-eager lookup.
#include <gtest/gtest.h>

#include "core/comm.hpp"
#include "core/match.hpp"

namespace nemo::core {
namespace {

PostedRecv make_pr(int src, int tag, int context = 0) {
  PostedRecv pr;
  pr.src = src;
  pr.tag = tag;
  pr.context = context;
  pr.req = std::make_shared<RequestState>();
  return pr;
}

std::unique_ptr<UnexpectedMsg> make_um(int src, int tag, int context = 0,
                                       std::uint32_t seq = 0) {
  auto um = std::make_unique<UnexpectedMsg>();
  um->src = src;
  um->tag = tag;
  um->context = context;
  um->seq = seq;
  return um;
}

TEST(Match, PostedThenIncoming) {
  MatchEngine m;
  PostedRecv pr = make_pr(1, 5);
  EXPECT_EQ(m.post_recv(pr), nullptr);
  EXPECT_EQ(m.posted_count(), 1u);
  auto got = m.match_incoming(1, 5, 0);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(m.posted_count(), 0u);
  EXPECT_EQ(m.match_incoming(1, 5, 0), nullptr);
}

TEST(Match, IncomingThenPosted) {
  MatchEngine m;
  m.add_unexpected(make_um(2, 9));
  PostedRecv pr = make_pr(2, 9);
  auto um = m.post_recv(pr);
  ASSERT_NE(um, nullptr);
  EXPECT_EQ(um->src, 2);
  // pr untouched: req still present.
  EXPECT_NE(pr.req, nullptr);
  EXPECT_EQ(m.unexpected_count(), 0u);
}

TEST(Match, WildcardSourceMatchesAny) {
  MatchEngine m;
  m.add_unexpected(make_um(3, 7));
  PostedRecv pr = make_pr(kAnySource, 7);
  auto um = m.post_recv(pr);
  ASSERT_NE(um, nullptr);
  EXPECT_EQ(um->src, 3);
}

TEST(Match, WildcardTagMatchesAny) {
  MatchEngine m;
  PostedRecv pr = make_pr(1, kAnyTag);
  m.post_recv(pr);
  EXPECT_NE(m.match_incoming(1, 12345, 0), nullptr);
}

TEST(Match, ContextNeverWildcard) {
  MatchEngine m;
  m.add_unexpected(make_um(1, 5, /*context=*/1));
  // A fully-wildcard user recv must not see internal (context 1) traffic.
  PostedRecv pr = make_pr(kAnySource, kAnyTag, /*context=*/0);
  EXPECT_EQ(m.post_recv(pr), nullptr);
  EXPECT_EQ(m.unexpected_count(), 1u);
  // The matching internal recv does.
  PostedRecv pr2 = make_pr(kAnySource, kAnyTag, /*context=*/1);
  EXPECT_NE(m.post_recv(pr2), nullptr);
}

TEST(Match, FifoWithinMatchingClass) {
  MatchEngine m;
  m.add_unexpected(make_um(1, 5, 0, /*seq=*/10));
  m.add_unexpected(make_um(1, 5, 0, /*seq=*/11));
  PostedRecv pr = make_pr(1, 5);
  auto first = m.post_recv(pr);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->seq, 10u);  // Oldest first (non-overtaking).
  PostedRecv pr2 = make_pr(1, 5);
  auto second = m.post_recv(pr2);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->seq, 11u);
}

TEST(Match, PostedFifoAcrossWildcards) {
  MatchEngine m;
  PostedRecv specific = make_pr(1, 5);
  PostedRecv wild = make_pr(kAnySource, kAnyTag);
  m.post_recv(specific);
  m.post_recv(wild);
  // The older posted recv (specific) wins for a matching envelope.
  auto got = m.match_incoming(1, 5, 0);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->src, 1);
  // The next envelope lands on the wildcard.
  auto got2 = m.match_incoming(2, 99, 0);
  ASSERT_NE(got2, nullptr);
  EXPECT_EQ(got2->src, kAnySource);
}

TEST(Match, NonMatchingTagSkipped) {
  MatchEngine m;
  m.add_unexpected(make_um(1, 5));
  PostedRecv pr = make_pr(1, 6);
  EXPECT_EQ(m.post_recv(pr), nullptr);
  EXPECT_EQ(m.unexpected_count(), 1u);
  EXPECT_EQ(m.posted_count(), 1u);
}

TEST(Match, FindPartialOnlyIncompleteEager) {
  MatchEngine m;
  auto um = make_um(1, 5, 0, 42);
  um->total = 100;
  um->data.resize(100);
  um->bytes_arrived = 50;
  m.add_unexpected(std::move(um));
  EXPECT_NE(m.find_partial(1, 42), nullptr);
  EXPECT_EQ(m.find_partial(1, 43), nullptr);
  EXPECT_EQ(m.find_partial(2, 42), nullptr);
  // Complete it: no longer "partial".
  m.find_partial(1, 42)->bytes_arrived = 100;
  EXPECT_EQ(m.find_partial(1, 42), nullptr);
}

TEST(Match, RndvUnexpectedCarriesWire) {
  MatchEngine m;
  auto um = make_um(4, 8);
  um->is_rndv = true;
  um->rts.total = 12345;
  um->rts.knem_cookie = 77;
  m.add_unexpected(std::move(um));
  PostedRecv pr = make_pr(4, 8);
  auto got = m.post_recv(pr);
  ASSERT_NE(got, nullptr);
  EXPECT_TRUE(got->is_rndv);
  EXPECT_EQ(got->rts.total, 12345u);
  EXPECT_EQ(got->rts.knem_cookie, 77u);
}

TEST(MatchPool, RecycledBuffersAreReusedAndCounted) {
  MatchEngine m;
  tune::Counters c;
  m.set_counters(&c);

  // Cold: nothing pooled yet — a miss and a fresh allocation.
  auto um = m.acquire_unexpected(4 * KiB);
  EXPECT_EQ(c.um_pool_misses, 1u);
  EXPECT_EQ(um->data.size(), 4 * KiB);
  um->src = 1;
  um->bytes_arrived = 4 * KiB;
  const std::byte* payload = um->data.data();
  m.recycle(std::move(um));
  EXPECT_EQ(m.pooled_count(), 1u);

  // Warm: same-or-smaller payload reuses the node and its capacity.
  auto again = m.acquire_unexpected(1 * KiB);
  EXPECT_EQ(c.um_pool_hits, 1u);
  EXPECT_EQ(again->data.data(), payload);
  EXPECT_EQ(again->data.size(), 1 * KiB);
  // The node comes back blank (no stale header fields).
  EXPECT_EQ(again->src, -1);
  EXPECT_EQ(again->bytes_arrived, 0u);
  EXPECT_FALSE(again->is_rndv);

  // A larger payload still reuses the node but counts the buffer miss.
  m.recycle(std::move(again));
  auto big = m.acquire_unexpected(64 * KiB);
  EXPECT_EQ(c.um_pool_misses, 2u);
  EXPECT_EQ(big->data.size(), 64 * KiB);
}

TEST(MatchPool, PoolIsBounded) {
  MatchEngine m;
  std::vector<std::unique_ptr<UnexpectedMsg>> live;
  for (std::size_t i = 0; i < 2 * MatchEngine::kPoolCap; ++i)
    live.push_back(m.acquire_unexpected(128));
  for (auto& um : live) m.recycle(std::move(um));
  EXPECT_EQ(m.pooled_count(), MatchEngine::kPoolCap);
}

}  // namespace
}  // namespace nemo::core
