// Arena-barrier scheduling (flat vs k-ary tree) and NUMA-aware reduction
// leader choice — the collective-arena v2 surfaces. The barrier cross-check
// runs both schedules at 2/8/16/33 ranks against a shared phase counter
// (the strongest observable property of a barrier: nobody enters round i+1
// before everyone finished round i), plus a 16-rank storm; leader choice is
// unit-tested on synthetic NUMA maps and end-to-end through World.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <vector>

#include "coll/coll.hpp"
#include "core/comm.hpp"
#include "shm/arena.hpp"

namespace nemo::core {
namespace {

// The schedule under test must beat any ambient NEMO_BARRIER_TREE (CI
// forces the knob in a smoke step, and env beats the programmatic tuning
// table): each test pins it with nemo::ScopedEnv.
using nemo::ScopedEnv;

/// A slim world: barrier tests want many ranks, not big per-pair buffers
/// (a 33-rank world has 1056 ordered pairs).
Config slim_config(int nranks) {
  Config cfg;
  cfg.nranks = nranks;
  cfg.coll = coll::Mode::kShm;
  cfg.use_fastbox = false;
  cfg.cells_per_rank = 16;
  cfg.ring_bufs = 2;
  cfg.ring_buf_bytes = 4 * KiB;
  cfg.coll_slot_bytes = 16 * KiB;
  cfg.shared_pool_bytes = 1 * MiB;
  return cfg;
}

/// Pin the barrier schedule through the tuning table (UINT32_MAX = flat
/// always, 2 = tree always) and verify the phase-counter invariant over
/// `rounds` rounds; also assert the telemetry says the intended schedule
/// actually ran.
void barrier_cross_check(int nranks, bool tree, int rounds) {
  coll::ScopedForcedMode forced(coll::Mode::kShm);
  ScopedEnv sched("NEMO_BARRIER_TREE", tree ? "on" : "off");
  Config cfg = slim_config(nranks);
  tune::TuningTable t = tune::formula_defaults(detect_host());
  t.barrier_tree_ranks = tree ? 2 : UINT32_MAX;
  cfg.tuning = t;
  // One counter for the whole world: rank 0 allocates and broadcasts the
  // arena *offset* — raw pointers don't survive a process boundary (each
  // forked rank maps the arena at its own base), offsets always do.
  run(cfg, [&](Comm& comm) {
    int n = comm.size();
    std::uint64_t off = 0;
    if (comm.rank() == 0) {
      auto* p = reinterpret_cast<std::uint64_t*>(
          comm.shared_alloc(sizeof(std::uint64_t)));
      shm::aref(*p).store(0);
      off = comm.world().arena().offset_of(p);
    }
    comm.bcast(&off, sizeof off, 0);
    auto* ctr = reinterpret_cast<std::uint64_t*>(comm.world().arena().at(off));
    for (int i = 0; i < rounds; ++i) {
      shm::aref(*ctr).fetch_add(1, std::memory_order_acq_rel);
      comm.barrier();
      // Everyone incremented for round i, nobody has for round i+1.
      ASSERT_EQ(shm::aref(*ctr).load(std::memory_order_acquire),
                static_cast<std::uint64_t>(n) *
                    static_cast<std::uint64_t>(i + 1))
          << "round " << i << " nranks " << nranks << " tree " << tree;
      comm.barrier();
    }
    const tune::Counters& c = comm.engine().counters();
    if (tree) {
      EXPECT_EQ(c.coll_barrier_tree, static_cast<std::uint64_t>(2 * rounds));
      EXPECT_EQ(c.coll_barrier_flat, 0u);
    } else {
      EXPECT_EQ(c.coll_barrier_flat, static_cast<std::uint64_t>(2 * rounds));
      EXPECT_EQ(c.coll_barrier_tree, 0u);
    }
  });
}

class BarrierSchedule : public ::testing::TestWithParam<int> {};

TEST_P(BarrierSchedule, FlatAndTreeAgreeOnPhases) {
  int nranks = GetParam();
  int rounds = nranks >= 16 ? 5 : 20;
  barrier_cross_check(nranks, /*tree=*/false, rounds);
  barrier_cross_check(nranks, /*tree=*/true, rounds);
}

INSTANTIATE_TEST_SUITE_P(Worlds, BarrierSchedule,
                         ::testing::Values(2, 8, 16, 33),
                         [](const auto& info) {
                           return std::to_string(info.param) + "ranks";
                         });

TEST(BarrierSchedule, SixteenRankStorm) {
  // Back-to-back barriers under the tree schedule: a missed arrival or a
  // stale release sequence shows up as a hang (ctest timeout) or a phase
  // violation.
  coll::ScopedForcedMode forced(coll::Mode::kShm);
  ScopedEnv sched("NEMO_BARRIER_TREE", "on");
  Config cfg = slim_config(16);
  tune::TuningTable t = tune::formula_defaults(detect_host());
  t.barrier_tree_ranks = 2;
  t.barrier_tree_k = 3;  // Non-default fan-in: exercise an uneven last level.
  cfg.tuning = t;
  run(cfg, [&](Comm& comm) {
    std::uint64_t off = 0;
    if (comm.rank() == 0) {
      auto* p = reinterpret_cast<std::uint64_t*>(
          comm.shared_alloc(sizeof(std::uint64_t)));
      shm::aref(*p).store(0);
      off = comm.world().arena().offset_of(p);
    }
    comm.bcast(&off, sizeof off, 0);
    auto* ctr = reinterpret_cast<std::uint64_t*>(comm.world().arena().at(off));
    for (int i = 0; i < 150; ++i) {
      shm::aref(*ctr).fetch_add(1, std::memory_order_acq_rel);
      comm.barrier();
      ASSERT_EQ(shm::aref(*ctr).load(std::memory_order_acquire),
                16u * static_cast<std::uint64_t>(i + 1))
          << i;
      comm.barrier();
    }
  });
}

TEST(BarrierSchedule, AutoSelectsBySizeThreshold) {
  // With the default-ish threshold pinned at 8, a 4-rank world runs flat
  // and an 8-rank world runs the tree — observable in the counters.
  coll::ScopedForcedMode forced(coll::Mode::kShm);
  ScopedEnv sched("NEMO_BARRIER_TREE", "8");
  for (int nranks : {4, 8}) {
    Config cfg = slim_config(nranks);
    tune::TuningTable t = tune::formula_defaults(detect_host());
    t.barrier_tree_ranks = 8;
    cfg.tuning = t;
    run(cfg, [&](Comm& comm) {
      for (int i = 0; i < 5; ++i) comm.barrier();
      const tune::Counters& c = comm.engine().counters();
      if (comm.size() >= 8) {
        EXPECT_EQ(c.coll_barrier_tree, 5u);
      } else {
        EXPECT_EQ(c.coll_barrier_flat, 5u);
      }
    });
  }
}

// ---------------------------------------------------------------------------
// NUMA-aware leader choice.
// ---------------------------------------------------------------------------

TEST(CollLeader, PluralityNodeWinsTiesToLowerNode) {
  // All one node (the single-node fallback): rank 0, as pre-v2.
  EXPECT_EQ(coll::choose_leader({0, 0, 0, 0}), 0);
  // Unknown map: rank 0.
  EXPECT_EQ(coll::choose_leader({-1, -1, -1}), 0);
  EXPECT_EQ(coll::choose_leader({}), 0);
  // Node 1 backs 3 of 4 ranks: the lowest rank on node 1 leads.
  EXPECT_EQ(coll::choose_leader({0, 1, 1, 1}), 1);
  EXPECT_EQ(coll::choose_leader({1, 0, 1, 1}), 0);
  // Tie 2-2: lower node id wins, its lowest rank leads.
  EXPECT_EQ(coll::choose_leader({1, 1, 0, 0}), 2);
  // Unknown ranks don't vote.
  EXPECT_EQ(coll::choose_leader({-1, 2, 2, 0}), 1);
}

TEST(CollLeader, WorldDerivesLeaderFromSyntheticNumaBinding) {
  // e5345 synthesizes one NUMA node per socket (cores 0-3 -> node 0,
  // 4-7 -> node 1). Three of four ranks bound to socket 1: rank 1 leads.
  Config cfg;
  cfg.nranks = 4;
  cfg.topo = xeon_e5345();
  cfg.core_binding = {0, 4, 5, 6};
  World w(cfg);
  EXPECT_EQ(w.coll_leader(), 1);

  // All ranks on one socket: the single-node fallback picks rank 0.
  Config cfg0;
  cfg0.nranks = 4;
  cfg0.topo = xeon_e5345();
  cfg0.core_binding = {0, 1, 2, 3};
  World w0(cfg0);
  EXPECT_EQ(w0.coll_leader(), 0);
}

TEST(CollLeader, EnvOverrideAndValidation) {
  ::setenv("NEMO_COLL_LEADER", "2", 1);
  Config cfg;
  cfg.nranks = 4;
  World w(cfg);
  EXPECT_EQ(w.coll_leader(), 2);
  // Out-of-range or junk fails loudly instead of silently redirecting the
  // fold.
  ::setenv("NEMO_COLL_LEADER", "4", 1);
  EXPECT_THROW(World{cfg}, std::invalid_argument);
  ::setenv("NEMO_COLL_LEADER", "banana", 1);
  EXPECT_THROW(World{cfg}, std::invalid_argument);
  ::unsetenv("NEMO_COLL_LEADER");
}

TEST(CollLeader, ReduceCorrectUnderEveryLeader) {
  // The fold must be leader-invariant: same results whether the leader is
  // the root, another rank, or env-pinned — across reduce roots and
  // allreduce, with operands spanning several sub-chunks.
  coll::ScopedForcedMode forced(coll::Mode::kShm);
  for (int leader = 0; leader < 3; ++leader) {
    Config cfg;
    cfg.nranks = 3;
    cfg.coll = coll::Mode::kShm;
    cfg.coll_slot_bytes = 16 * KiB;  // Doubles: 512-elem sub-chunks.
    cfg.coll_leader = leader;
    cfg.shared_pool_bytes = 8 * MiB;
    run(cfg, [&](Comm& comm) {
      int n = comm.size();
      const std::size_t kN = 5000;  // ~10 sub-chunks.
      std::vector<double> in(kN), out(kN, -1);
      for (std::size_t i = 0; i < kN; ++i)
        in[i] = static_cast<double>(comm.rank()) + static_cast<double>(i);
      for (int root = 0; root < n; ++root) {
        comm.reduce_f64(in.data(), out.data(), kN, Comm::ReduceOp::kSum,
                        root);
        if (comm.rank() == root) {
          for (std::size_t i = 0; i < kN; i += 501)
            ASSERT_DOUBLE_EQ(out[i], n * (n - 1) / 2.0 +
                                         static_cast<double>(n) *
                                             static_cast<double>(i))
                << "leader " << leader << " root " << root;
        }
      }
      std::vector<double> mx(kN);
      comm.allreduce_f64(in.data(), mx.data(), kN, Comm::ReduceOp::kMax);
      for (std::size_t i = 0; i < kN; i += 501)
        ASSERT_DOUBLE_EQ(mx[i],
                         static_cast<double>(n - 1) + static_cast<double>(i))
            << "leader " << leader;
    });
  }
}

}  // namespace
}  // namespace nemo::core
