// Backend-level behaviours beyond plain delivery: rendezvous protocol shape
// (CTS/FIN requirements), cookie release on FIN, per-pair serialization,
// noncontiguous rendezvous on every backend, engine statistics.
#include <gtest/gtest.h>

#include <vector>

#include "common/checksum.hpp"
#include "core/comm.hpp"
#include "lmt/backends.hpp"

namespace nemo::core {
namespace {

Config cfg_with(lmt::LmtKind kind, lmt::KnemMode mode = lmt::KnemMode::kSyncCopy) {
  Config cfg;
  cfg.nranks = 2;
  cfg.lmt = kind;
  cfg.knem_mode = mode;
  return cfg;
}

TEST(LmtProtocol, BackendHandshakeRequirements) {
  run(cfg_with(lmt::LmtKind::kKnem), [&](Comm& comm) {
    Engine& eng = comm.engine();
    // Protocol shape documented in §3: ring and pipe backends gate the data
    // phase on CTS; single-copy backends release resources on FIN.
    struct Expect {
      lmt::LmtKind kind;
      bool cts, fin;
    };
    for (auto [kind, cts, fin] :
         {Expect{lmt::LmtKind::kDefaultShm, true, false},
          Expect{lmt::LmtKind::kVmsplice, true, true},
          Expect{lmt::LmtKind::kVmspliceWritev, true, false},
          Expect{lmt::LmtKind::kKnem, false, true}}) {
      auto backend = lmt::make_backend(kind, eng);
      EXPECT_EQ(backend->needs_cts(), cts) << to_string(kind);
      EXPECT_EQ(backend->needs_fin(), fin) << to_string(kind);
    }
  });
}

TEST(LmtProtocol, KnemCookiesReleasedAfterTraffic) {
  run(cfg_with(lmt::LmtKind::kKnem), [&](Comm& comm) {
    constexpr std::size_t kN = 256 * KiB;
    std::vector<std::byte> buf(kN);
    for (int i = 0; i < 20; ++i) {
      if (comm.rank() == 0) {
        pattern_fill(buf, static_cast<std::uint64_t>(i));
        comm.send(buf.data(), kN, 1, i);
      } else {
        comm.recv(buf.data(), kN, 0, i);
      }
    }
    comm.barrier();
    // Every cookie was released by FIN: the shared table must be empty.
    EXPECT_EQ(comm.engine().knem_device().slots_in_use(), 0u);
    auto st = comm.engine().knem_device().stats();
    if (comm.rank() == 0) {
      EXPECT_GE(st.send_cmds, 20u);
      EXPECT_GE(st.recv_cmds, 20u);
      EXPECT_EQ(st.bytes_copied, 20u * kN);
    }
  });
}

TEST(LmtProtocol, StatsClassifyEagerVsRndv) {
  Config cfg = cfg_with(lmt::LmtKind::kKnem);
  cfg.policy.knem_activation = 8 * KiB;
  run(cfg, [&](Comm& comm) {
    std::vector<std::byte> small(1 * KiB), big(1 * MiB);
    if (comm.rank() == 0) {
      comm.send(small.data(), small.size(), 1, 1);
      comm.send(big.data(), big.size(), 1, 2);
      EXPECT_EQ(comm.engine().stats().eager_msgs_sent, 1u);
      EXPECT_EQ(comm.engine().stats().rndv_sent, 1u);
      EXPECT_EQ(comm.engine().stats().rndv_by_kind[static_cast<std::size_t>(
                    lmt::LmtKind::kKnem)],
                1u);
    } else {
      comm.recv(small.data(), small.size(), 0, 1);
      comm.recv(big.data(), big.size(), 0, 2);
      EXPECT_EQ(comm.engine().stats().bytes_recv, small.size() + big.size());
    }
  });
}

class NoncontigRndv : public ::testing::TestWithParam<lmt::LmtKind> {};

TEST_P(NoncontigRndv, StridedBothSides) {
  run(cfg_with(GetParam()), [&](Comm& comm) {
    // 96 blocks of 4 KiB at 12 KiB stride: 384 KiB payload, segment list
    // longer than KNEM's inline capacity on both sides.
    const Datatype dt = Datatype::vector(96, 4 * KiB, 12 * KiB);
    std::vector<std::byte> mem(dt.extent());
    if (comm.rank() == 0) {
      std::vector<std::byte> packed(dt.size());
      pattern_fill(packed, 11);
      dt.unpack(packed.data(), 1, mem.data());
      comm.send_typed(mem.data(), dt, 1, 1, 0);
    } else {
      comm.recv_typed(mem.data(), dt, 1, 0, 0);
      std::vector<std::byte> packed(dt.size());
      dt.pack(mem.data(), 1, packed.data());
      EXPECT_EQ(pattern_check(packed, 11), kPatternOk);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(AllKinds, NoncontigRndv,
                         ::testing::Values(lmt::LmtKind::kDefaultShm,
                                           lmt::LmtKind::kVmsplice,
                                           lmt::LmtKind::kVmspliceWritev,
                                           lmt::LmtKind::kKnem),
                         [](const auto& info) {
                           std::string s = lmt::to_string(info.param);
                           for (auto& c : s)
                             if (c == '-') c = '_';
                           return s;
                         });

TEST(LmtProtocol, InterleavedRndvBothDirectionsSamePair) {
  // Stress the per-pair serialization: many overlapping rendezvous in both
  // directions with the ring backend (single shared ring per direction).
  run(cfg_with(lmt::LmtKind::kDefaultShm), [&](Comm& comm) {
    constexpr int kMsgs = 8;
    constexpr std::size_t kN = 200 * KiB;
    std::vector<std::vector<std::byte>> out(kMsgs), in(kMsgs);
    std::vector<Request> reqs;
    for (int i = 0; i < kMsgs; ++i) {
      auto iz = static_cast<std::size_t>(i);
      out[iz].resize(kN);
      in[iz].resize(kN);
      pattern_fill(out[iz], static_cast<std::uint64_t>(comm.rank()) * 100 +
                                static_cast<std::uint64_t>(i));
      reqs.push_back(comm.isend(out[iz].data(), kN, 1 - comm.rank(), i));
      reqs.push_back(comm.irecv(in[iz].data(), kN, 1 - comm.rank(), i));
    }
    comm.waitall(reqs);
    for (int i = 0; i < kMsgs; ++i)
      EXPECT_EQ(
          pattern_check(in[static_cast<std::size_t>(i)],
                        static_cast<std::uint64_t>(1 - comm.rank()) * 100 +
                            static_cast<std::uint64_t>(i)),
          kPatternOk);
  });
}

TEST(LmtProtocol, ResolveKindHonoursConfigAndPolicy) {
  Config cfg;
  cfg.nranks = 2;
  cfg.lmt = lmt::LmtKind::kAuto;
  cfg.topo = xeon_e5345();
  cfg.core_binding = {0, 1};
  run(cfg, [&](Comm& comm) {
    // Auto + KNEM available resolves to KNEM regardless of placement.
    EXPECT_EQ(comm.engine().resolve_kind(1 * MiB, 1 - comm.rank(), false),
              lmt::LmtKind::kKnem);
  });

  Config cfg2 = cfg;
  cfg2.policy.knem_available = false;
  cfg2.core_binding = {0, 7};  // No shared cache on the modelled topology.
  run(cfg2, [&](Comm& comm) {
    // No KNEM: CMA stands in where the host allows it (the World's probe
    // gates the policy), else the chain continues to vmsplice.
    lmt::LmtKind want = comm.world().cma_ok() ? lmt::LmtKind::kCma
                                              : lmt::LmtKind::kVmsplice;
    EXPECT_EQ(comm.engine().resolve_kind(1 * MiB, 1 - comm.rank(), false),
              want);
  });

  Config cfg3 = cfg2;
  cfg3.policy.cma_available = false;
  run(cfg3, [&](Comm& comm) {
    EXPECT_EQ(comm.engine().resolve_kind(1 * MiB, 1 - comm.rank(), false),
              lmt::LmtKind::kVmsplice);
  });
}

TEST(LmtProtocol, EagerThresholdBoundary) {
  Config cfg = cfg_with(lmt::LmtKind::kKnem);
  cfg.eager_threshold = 64 * KiB;
  run(cfg, [&](Comm& comm) {
    // Exactly at the threshold: eager. One past: rendezvous. Both deliver.
    for (std::size_t n : {64 * KiB, 64 * KiB + 1}) {
      std::vector<std::byte> buf(n);
      if (comm.rank() == 0) {
        pattern_fill(buf, n);
        comm.send(buf.data(), n, 1, 5);
      } else {
        comm.recv(buf.data(), n, 0, 5);
        EXPECT_EQ(pattern_check(buf, n), kPatternOk);
      }
    }
    if (comm.rank() == 0) {
      EXPECT_EQ(comm.engine().stats().eager_msgs_sent, 1u);
      EXPECT_EQ(comm.engine().stats().rndv_sent, 1u);
    }
  });
}

}  // namespace
}  // namespace nemo::core
