// Pipe substrate: vmsplice/writev/readv wrappers, nonblocking flow control,
// window limits, and the pipe matrix.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/checksum.hpp"
#include "shm/pipes.hpp"

namespace nemo::shm {
namespace {

TEST(Pipes, VmspliceAvailableOnThisKernel) {
  // The CI/bench environment is Linux >= 2.6.17; record availability.
  EXPECT_TRUE(Pipe::vmsplice_available());
}

TEST(Pipes, WritevReadvRoundTrip) {
  Pipe p = Pipe::create();
  std::vector<std::byte> src(3000), dst(3000);
  pattern_fill(src, 1);
  EXPECT_EQ(p.writev_some({src.data(), src.size()}), src.size());
  EXPECT_EQ(p.readv_some({dst.data(), dst.size()}), dst.size());
  EXPECT_EQ(pattern_check(dst, 1), kPatternOk);
}

TEST(Pipes, VmspliceReadvRoundTrip) {
  if (!Pipe::vmsplice_available()) GTEST_SKIP();
  Pipe p = Pipe::create();
  std::vector<std::byte> src(3000), dst(3000);
  pattern_fill(src, 2);
  EXPECT_EQ(p.vmsplice_some({src.data(), src.size()}), src.size());
  EXPECT_EQ(p.readv_some({dst.data(), dst.size()}), dst.size());
  EXPECT_EQ(pattern_check(dst, 2), kPatternOk);
}

TEST(Pipes, EmptyReadReturnsZero) {
  Pipe p = Pipe::create();
  std::byte b;
  EXPECT_EQ(p.readv_some({&b, 1}), 0u);
}

TEST(Pipes, FullPipeReturnsZeroThenDrains) {
  if (!Pipe::vmsplice_available()) GTEST_SKIP();
  Pipe p = Pipe::create();
  std::vector<std::byte> big(1 * MiB), out(1 * MiB);
  pattern_fill(big, 3);
  // Fill until the window is exhausted.
  std::size_t pushed = 0;
  for (;;) {
    std::size_t n = p.vmsplice_some({big.data() + pushed, big.size() - pushed});
    if (n == 0) break;
    pushed += n;
    ASSERT_LT(pushed, big.size()) << "pipe never filled";  // NOLINT
  }
  EXPECT_GT(pushed, 0u);
  // Drain and verify.
  std::size_t got = 0;
  while (got < pushed) {
    std::size_t n = p.readv_some({out.data() + got, pushed - got});
    if (n == 0) break;
    got += n;
  }
  EXPECT_EQ(got, pushed);
  EXPECT_EQ(pattern_check(std::span<const std::byte>(out.data(), got), 3),
            kPatternOk);
}

TEST(Pipes, StreamLargeMessageThroughWindow) {
  if (!Pipe::vmsplice_available()) GTEST_SKIP();
  constexpr std::size_t kTotal = 4 * MiB;
  Pipe p = Pipe::create();
  std::vector<std::byte> src(kTotal), dst(kTotal);
  pattern_fill(src, 4);
  std::thread writer([&] {
    std::size_t off = 0;
    while (off < kTotal) {
      std::size_t chunk = std::min(kPipeWindow, kTotal - off);
      std::size_t n = p.vmsplice_some({src.data() + off, chunk});
      off += n;
    }
  });
  std::size_t off = 0;
  while (off < kTotal) off += p.readv_some({dst.data() + off, kTotal - off});
  writer.join();
  EXPECT_EQ(pattern_check(dst, 4), kPatternOk);
}

TEST(Pipes, MatrixHasDistinctPipesPerOrderedPair) {
  PipeMatrix m(3);
  std::byte b{42}, out{0};
  EXPECT_EQ(m.get(0, 1).writev_some({&b, 1}), 1u);
  // The reverse direction is a different pipe: nothing to read there.
  EXPECT_EQ(m.get(1, 0).readv_some({&out, 1}), 0u);
  EXPECT_EQ(m.get(0, 1).readv_some({&out, 1}), 1u);
  EXPECT_EQ(out, std::byte{42});
  for (int s = 0; s < 3; ++s)
    for (int d = 0; d < 3; ++d)
      if (s != d) {
        EXPECT_TRUE(m.get(s, d).valid());
      }
}

TEST(Pipes, MoveSemantics) {
  Pipe a = Pipe::create();
  int rfd = a.read_fd();
  Pipe b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.read_fd(), rfd);
}

}  // namespace
}  // namespace nemo::shm
