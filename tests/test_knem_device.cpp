// KNEM pseudo-device: cookie lifecycle, vectorial buffers with extension
// blocks, sync/async/DMA receive commands, error results, pinning stats.
#include <gtest/gtest.h>

#include <unistd.h>

#include <vector>

#include "common/checksum.hpp"
#include "knem/knem_device.hpp"

namespace nemo::knem {
namespace {

struct KnemFixture : ::testing::Test {
  KnemFixture()
      : arena(shm::Arena::create_anonymous(16 * MiB)),
        dev_off(Device::create(arena, 32, 16)),
        dev(arena, dev_off, /*rank=*/0, ::getpid()) {}
  shm::Arena arena;
  std::uint64_t dev_off;
  Device dev;
};

TEST_F(KnemFixture, SendRecvSyncCopy) {
  std::vector<std::byte> src(300 * KiB), dst(300 * KiB);
  pattern_fill(src, 1);
  std::uint64_t cookie =
      dev.submit_send(ConstSegmentList{{src.data(), src.size()}});
  ASSERT_NE(cookie, 0u);
  SegmentList local{{dst.data(), dst.size()}};
  EXPECT_EQ(dev.recv_sync(cookie, local, 0, nullptr), KnemResult::kOk);
  EXPECT_EQ(pattern_check(dst, 1), kPatternOk);
  dev.release(cookie);
  EXPECT_EQ(dev.slots_in_use(), 0u);
}

TEST_F(KnemFixture, ResolveReportsOwnerAndSegments) {
  std::vector<std::byte> a(100), b(200);
  std::uint64_t cookie =
      dev.submit_send(ConstSegmentList{{a.data(), 100}, {b.data(), 200}});
  auto r = dev.resolve(cookie);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->pid, ::getpid());
  EXPECT_EQ(r->owner_rank, 0u);
  EXPECT_EQ(r->total, 300u);
  ASSERT_EQ(r->segs.size(), 2u);
  EXPECT_EQ(r->segs[0].addr, reinterpret_cast<std::uint64_t>(a.data()));
  EXPECT_EQ(r->segs[1].len, 200u);
  EXPECT_EQ(r->mode, shm::RemoteMode::kDirect);  // Same pid.
  dev.release(cookie);
}

TEST_F(KnemFixture, VectorialCookieSpillsIntoSegBlocks) {
  // More segments than fit inline: exercises the extension-block chain.
  constexpr std::size_t kSegs = kInlineSegs + 2 * kBlockSegs + 5;
  constexpr std::size_t kSegLen = 256;
  std::vector<std::byte> src(kSegs * kSegLen), dst(kSegs * kSegLen);
  pattern_fill(src, 2);
  ConstSegmentList segs;
  for (std::size_t i = 0; i < kSegs; ++i)
    segs.push_back({src.data() + i * kSegLen, kSegLen});
  std::uint64_t cookie = dev.submit_send(segs);
  auto r = dev.resolve(cookie);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->segs.size(), kSegs);
  SegmentList local{{dst.data(), dst.size()}};
  EXPECT_EQ(dev.recv_sync(cookie, local, 0, nullptr), KnemResult::kOk);
  EXPECT_EQ(pattern_check(dst, 2), kPatternOk);
  dev.release(cookie);
  // Blocks returned to the pool: a second jumbo cookie must succeed.
  std::uint64_t cookie2 = dev.submit_send(segs);
  EXPECT_NE(cookie2, 0u);
  dev.release(cookie2);
}

TEST_F(KnemFixture, BadCookieAndStaleCookieRejected) {
  std::vector<std::byte> dst(64);
  SegmentList local{{dst.data(), dst.size()}};
  EXPECT_EQ(dev.recv_sync(0, local, 0, nullptr), KnemResult::kBadCookie);
  EXPECT_EQ(dev.recv_sync(0xdeadbeef, local, 0, nullptr),
            KnemResult::kBadCookie);
  std::vector<std::byte> src(64);
  std::uint64_t cookie =
      dev.submit_send(ConstSegmentList{{src.data(), 64}});
  dev.release(cookie);
  EXPECT_EQ(dev.recv_sync(cookie, local, 0, nullptr), KnemResult::kBadCookie);
}

TEST_F(KnemFixture, TruncatedReceiveRejected) {
  std::vector<std::byte> src(1000), dst(999);
  std::uint64_t cookie =
      dev.submit_send(ConstSegmentList{{src.data(), src.size()}});
  SegmentList local{{dst.data(), dst.size()}};
  EXPECT_EQ(dev.recv_sync(cookie, local, 0, nullptr), KnemResult::kTruncated);
  dev.release(cookie);
}

TEST_F(KnemFixture, RecvSyncWithDmaEngine) {
  shm::DmaEngine engine;
  std::vector<std::byte> src(2 * MiB), dst(2 * MiB);
  pattern_fill(src, 3);
  std::uint64_t cookie =
      dev.submit_send(ConstSegmentList{{src.data(), src.size()}});
  SegmentList local{{dst.data(), dst.size()}};
  EXPECT_EQ(dev.recv_sync(cookie, local, kFlagDma, &engine), KnemResult::kOk);
  EXPECT_EQ(pattern_check(dst, 3), kPatternOk);
  dev.release(cookie);
  EXPECT_GE(dev.stats().dma_recv_cmds, 1u);
}

TEST_F(KnemFixture, RecvAsyncStatusByte) {
  shm::DmaEngine engine;
  std::vector<std::byte> src(1 * MiB), dst(1 * MiB);
  pattern_fill(src, 4);
  std::uint64_t cookie =
      dev.submit_send(ConstSegmentList{{src.data(), src.size()}});
  volatile std::uint8_t status = 0;
  EXPECT_EQ(dev.recv_async(cookie, {{dst.data(), dst.size()}},
                           kFlagDma | kFlagAsync, engine, &status),
            KnemResult::kOk);
  while (status != static_cast<std::uint8_t>(shm::DmaStatus::kSuccess)) {
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  EXPECT_EQ(pattern_check(dst, 4), kPatternOk);
  dev.release(cookie);
  EXPECT_GE(dev.stats().async_recv_cmds, 1u);
}

TEST_F(KnemFixture, ScatterRecvIntoMultipleSegments) {
  std::vector<std::byte> src(10000), dst(10000);
  pattern_fill(src, 5);
  std::uint64_t cookie = dev.submit_send(
      ConstSegmentList{{src.data(), 4000}, {src.data() + 4000, 6000}});
  SegmentList local{{dst.data(), 1000},
                    {dst.data() + 1000, 8000},
                    {dst.data() + 9000, 1000}};
  EXPECT_EQ(dev.recv_sync(cookie, local, 0, nullptr), KnemResult::kOk);
  EXPECT_EQ(pattern_check(dst, 5), kPatternOk);
  dev.release(cookie);
}

TEST_F(KnemFixture, PinningAccounted) {
  std::vector<std::byte> src(1 * MiB);
  auto before = dev.stats().pages_pinned;
  std::uint64_t cookie =
      dev.submit_send(ConstSegmentList{{src.data(), src.size()}});
  auto after = dev.stats().pages_pinned;
  // 1 MiB touches 256 or 257 pages depending on alignment.
  EXPECT_GE(after - before, 256u);
  EXPECT_LE(after - before, 257u);
  dev.release(cookie);
}

TEST_F(KnemFixture, ZeroLengthSegmentsSkipped) {
  std::vector<std::byte> src(100), dst(100);
  pattern_fill(src, 6);
  std::uint64_t cookie = dev.submit_send(ConstSegmentList{
      {src.data(), 0}, {src.data(), 50}, {src.data() + 50, 0},
      {src.data() + 50, 50}});
  auto r = dev.resolve(cookie);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->segs.size(), 2u);
  EXPECT_EQ(r->total, 100u);
  SegmentList local{{dst.data(), 100}};
  EXPECT_EQ(dev.recv_sync(cookie, local, 0, nullptr), KnemResult::kOk);
  EXPECT_EQ(pattern_check(dst, 6), kPatternOk);
  dev.release(cookie);
}

TEST_F(KnemFixture, ManyConcurrentCookies) {
  std::vector<std::vector<std::byte>> bufs;
  std::vector<std::uint64_t> cookies;
  for (int i = 0; i < 32; ++i) {
    bufs.emplace_back(1024);
    pattern_fill(bufs.back(), static_cast<std::uint64_t>(i));
    cookies.push_back(
        dev.submit_send(ConstSegmentList{{bufs.back().data(), 1024}}));
  }
  EXPECT_EQ(dev.slots_in_use(), 32u);
  // Receive them out of order.
  for (int i = 31; i >= 0; --i) {
    std::vector<std::byte> dst(1024);
    SegmentList local{{dst.data(), 1024}};
    ASSERT_EQ(dev.recv_sync(cookies[static_cast<std::size_t>(i)], local, 0,
                            nullptr),
              KnemResult::kOk);
    EXPECT_EQ(pattern_check(dst, static_cast<std::uint64_t>(i)), kPatternOk);
    dev.release(cookies[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(dev.slots_in_use(), 0u);
}

TEST_F(KnemFixture, ReleaseStaleCountsLeak) {
  auto before = dev.stats().cookie_leaks;
  dev.release(0x12345);
  EXPECT_EQ(dev.stats().cookie_leaks, before + 1);
}

}  // namespace
}  // namespace nemo::knem
