// Collectives across LMT backends and rank counts, including non-power-of-two
// worlds and the large-message alltoall(v) paths Figure 7 depends on.
#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <optional>
#include <string>
#include <vector>

#include "common/checksum.hpp"
#include "core/comm.hpp"

namespace nemo::core {
namespace {

struct CollParam {
  int nranks;
  lmt::LmtKind kind;
};

class Collectives : public ::testing::TestWithParam<CollParam> {
 protected:
  Config config() const {
    Config cfg;
    cfg.nranks = GetParam().nranks;
    cfg.lmt = GetParam().kind;
    cfg.knem_mode = lmt::KnemMode::kAuto;
    cfg.shared_pool_bytes = 64 * MiB;
    return cfg;
  }
};

TEST_P(Collectives, BarrierManyTimes) {
  run(config(), [&](Comm& comm) {
    for (int i = 0; i < 50; ++i) comm.barrier();
  });
}

TEST_P(Collectives, BcastFromEveryRoot) {
  run(config(), [&](Comm& comm) {
    constexpr std::size_t kN = 200 * KiB;  // Rendezvous-sized.
    std::vector<std::byte> buf(kN);
    for (int root = 0; root < comm.size(); ++root) {
      if (comm.rank() == root) pattern_fill(buf, 100 + root);
      comm.bcast(buf.data(), kN, root);
      EXPECT_EQ(pattern_check(buf, 100 + static_cast<unsigned>(root)),
                kPatternOk)
          << "root " << root;
    }
  });
}

TEST_P(Collectives, GatherScatterInverse) {
  run(config(), [&](Comm& comm) {
    const std::size_t per = 64 * KiB + 16;
    int n = comm.size();
    std::vector<std::byte> mine(per);
    pattern_fill(mine, static_cast<std::uint64_t>(comm.rank()));
    std::vector<std::byte> all(per * static_cast<std::size_t>(n));
    comm.gather(mine.data(), per, all.data(), 0);
    if (comm.rank() == 0) {
      for (int r = 0; r < n; ++r)
        EXPECT_EQ(
            pattern_check(std::span<const std::byte>(
                              all.data() + static_cast<std::size_t>(r) * per,
                              per),
                          static_cast<std::uint64_t>(r)),
            kPatternOk);
    }
    std::vector<std::byte> back(per);
    comm.scatter(all.data(), per, back.data(), 0);
    EXPECT_EQ(pattern_check(back, static_cast<std::uint64_t>(comm.rank())),
              kPatternOk);
  });
}

TEST_P(Collectives, AllgatherRing) {
  run(config(), [&](Comm& comm) {
    const std::size_t per = 96 * KiB;
    int n = comm.size();
    std::vector<std::byte> mine(per);
    pattern_fill(mine, 7u + static_cast<std::uint64_t>(comm.rank()));
    std::vector<std::byte> all(per * static_cast<std::size_t>(n));
    comm.allgather(mine.data(), per, all.data());
    for (int r = 0; r < n; ++r)
      EXPECT_EQ(pattern_check(std::span<const std::byte>(
                                  all.data() + static_cast<std::size_t>(r) * per,
                                  per),
                              7u + static_cast<std::uint64_t>(r)),
                kPatternOk);
  });
}

TEST_P(Collectives, AlltoallLargeBlocks) {
  run(config(), [&](Comm& comm) {
    const std::size_t per = 128 * KiB;
    int n = comm.size();
    std::vector<std::byte> send(per * static_cast<std::size_t>(n)),
        recv(per * static_cast<std::size_t>(n));
    // Block (r -> d) filled with seed r*1000+d.
    for (int d = 0; d < n; ++d)
      pattern_fill(std::span<std::byte>(
                       send.data() + static_cast<std::size_t>(d) * per, per),
                   static_cast<std::uint64_t>(comm.rank()) * 1000 +
                       static_cast<std::uint64_t>(d));
    comm.alltoall(send.data(), per, recv.data());
    for (int s = 0; s < n; ++s)
      EXPECT_EQ(pattern_check(std::span<const std::byte>(
                                  recv.data() + static_cast<std::size_t>(s) * per,
                                  per),
                              static_cast<std::uint64_t>(s) * 1000 +
                                  static_cast<std::uint64_t>(comm.rank())),
                kPatternOk)
          << "from rank " << s;
  });
}

TEST_P(Collectives, AlltoallvUnevenIncludingZeros) {
  run(config(), [&](Comm& comm) {
    int n = comm.size();
    int me = comm.rank();
    auto nsz = static_cast<std::size_t>(n);
    // Rank r sends (r+1)*8KiB to each destination except one it skips.
    std::vector<std::size_t> scounts(nsz), sdispls(nsz), rcounts(nsz),
        rdispls(nsz);
    for (int d = 0; d < n; ++d) {
      auto dz = static_cast<std::size_t>(d);
      scounts[dz] =
          (d == (me + 1) % n && n > 1) ? 0 : (static_cast<std::size_t>(me) + 1) * 8 * KiB;
    }
    std::partial_sum(scounts.begin(), scounts.end() - 1, sdispls.begin() + 1);
    for (int s = 0; s < n; ++s) {
      auto sz = static_cast<std::size_t>(s);
      rcounts[sz] =
          (me == (s + 1) % n && n > 1) ? 0 : (static_cast<std::size_t>(s) + 1) * 8 * KiB;
    }
    std::partial_sum(rcounts.begin(), rcounts.end() - 1, rdispls.begin() + 1);

    std::vector<std::byte> send(sdispls[nsz - 1] + scounts[nsz - 1]);
    std::vector<std::byte> recv(rdispls[nsz - 1] + rcounts[nsz - 1]);
    for (int d = 0; d < n; ++d) {
      auto dz = static_cast<std::size_t>(d);
      pattern_fill(std::span<std::byte>(send.data() + sdispls[dz],
                                        scounts[dz]),
                   static_cast<std::uint64_t>(me) * 97 +
                       static_cast<std::uint64_t>(d));
    }
    comm.alltoallv(send.data(), scounts.data(), sdispls.data(), recv.data(),
                   rcounts.data(), rdispls.data());
    for (int s = 0; s < n; ++s) {
      auto sz = static_cast<std::size_t>(s);
      EXPECT_EQ(pattern_check(std::span<const std::byte>(
                                  recv.data() + rdispls[sz], rcounts[sz]),
                              static_cast<std::uint64_t>(s) * 97 +
                                  static_cast<std::uint64_t>(me)),
                kPatternOk)
          << "from " << s;
    }
  });
}

TEST_P(Collectives, ReduceAndAllreduce) {
  run(config(), [&](Comm& comm) {
    int n = comm.size();
    const std::size_t kN = 4096;
    std::vector<double> in(kN), out(kN, -1);
    for (std::size_t i = 0; i < kN; ++i)
      in[i] = static_cast<double>(comm.rank()) + static_cast<double>(i);
    comm.reduce_f64(in.data(), out.data(), kN, Comm::ReduceOp::kSum, 0);
    if (comm.rank() == 0) {
      for (std::size_t i = 0; i < kN; ++i)
        EXPECT_DOUBLE_EQ(out[i], n * (n - 1) / 2.0 +
                                     static_cast<double>(n) *
                                         static_cast<double>(i));
    }
    std::vector<double> amax(kN);
    comm.allreduce_f64(in.data(), amax.data(), kN, Comm::ReduceOp::kMax);
    for (std::size_t i = 0; i < kN; ++i)
      EXPECT_DOUBLE_EQ(amax[i],
                       static_cast<double>(n - 1) + static_cast<double>(i));

    std::int64_t one = comm.rank() + 1, sum = 0;
    comm.allreduce_i64(&one, &sum, 1, Comm::ReduceOp::kSum);
    EXPECT_EQ(sum, static_cast<std::int64_t>(n) * (n + 1) / 2);
    std::int64_t mn = 0;
    comm.allreduce_i64(&one, &mn, 1, Comm::ReduceOp::kMin);
    EXPECT_EQ(mn, 1);
  });
}

INSTANTIATE_TEST_SUITE_P(
    WorldsAndKinds, Collectives,
    ::testing::Values(CollParam{2, lmt::LmtKind::kKnem},
                      CollParam{4, lmt::LmtKind::kKnem},
                      CollParam{8, lmt::LmtKind::kKnem},
                      CollParam{3, lmt::LmtKind::kKnem},
                      CollParam{5, lmt::LmtKind::kDefaultShm},
                      CollParam{4, lmt::LmtKind::kDefaultShm},
                      CollParam{4, lmt::LmtKind::kVmsplice},
                      CollParam{4, lmt::LmtKind::kAuto}),
    [](const auto& info) {
      std::string s = std::to_string(info.param.nranks) + "ranks_";
      s += lmt::to_string(info.param.kind);
      for (auto& c : s)
        if (c == '-') c = '_';
      return s;
    });

// ---------------------------------------------------------------------------
// Cross-check matrix: every op runs under NEMO_COLL forced both ways (the
// pt2pt family is the correctness oracle for the shm arena family), over
// odd / non-power-of-two rank counts and sizes straddling the slot size
// (so both the direct single-round and the chunked multi-round arena
// schedules execute).
// ---------------------------------------------------------------------------

constexpr std::size_t kTestSlot = 16 * KiB;

struct CrossParam {
  int nranks;
  coll::Mode mode;
};

class CollCross : public ::testing::TestWithParam<CrossParam> {
 protected:
  // The param IS the family under test; pin NEMO_COLL so an outer value
  // (e.g. CI's forced runs) cannot silently redirect it.
  void SetUp() override { forced_.emplace(GetParam().mode); }
  void TearDown() override { forced_.reset(); }

  Config config() const {
    Config cfg;
    cfg.nranks = GetParam().nranks;
    cfg.coll = GetParam().mode;
    cfg.coll_slot_bytes = kTestSlot;  // Small slot: multi-round paths cheap.
    cfg.shared_pool_bytes = 64 * MiB;
    return cfg;
  }
  /// Below / at / just above / laps-beyond the slot (and, for alltoall at
  /// 8 ranks, many laps beyond the per-dest chunk capacity).
  static std::vector<std::size_t> sizes() {
    return {512, kTestSlot / 2, kTestSlot, 2 * kTestSlot + 192};
  }

 private:
  std::optional<coll::ScopedForcedMode> forced_;
};

TEST_P(CollCross, BcastEveryRootAllSizes) {
  run(config(), [&](Comm& comm) {
    for (std::size_t bytes : sizes()) {
      for (int root : {0, comm.size() - 1}) {
        std::vector<std::byte> buf(bytes);
        if (comm.rank() == root) pattern_fill(buf, 31 + bytes + static_cast<std::size_t>(root));
        comm.bcast(buf.data(), bytes, root);
        EXPECT_EQ(pattern_check(buf, 31 + bytes + static_cast<std::size_t>(root)),
                  kPatternOk)
            << bytes << " from root " << root;
      }
    }
  });
}

TEST_P(CollCross, BcastDirectFromArenaBuffer) {
  run(config(), [&](Comm& comm) {
    // shared_alloc'd source: the shm path publishes the offset and readers
    // pull straight from it (direct-read mode).
    const std::size_t bytes = 48 * KiB;
    std::byte* buf = comm.shared_alloc(bytes);
    if (comm.rank() == 1 % comm.size())
      pattern_fill({buf, bytes}, 777);
    comm.bcast(buf, bytes, 1 % comm.size());
    EXPECT_EQ(pattern_check({buf, bytes}, 777), kPatternOk);
  });
}

TEST_P(CollCross, AllgatherAllSizes) {
  run(config(), [&](Comm& comm) {
    int n = comm.size();
    for (std::size_t per : sizes()) {
      std::vector<std::byte> mine(per);
      pattern_fill(mine, 5u + static_cast<std::uint64_t>(comm.rank()));
      std::vector<std::byte> all(per * static_cast<std::size_t>(n));
      comm.allgather(mine.data(), per, all.data());
      for (int r = 0; r < n; ++r)
        EXPECT_EQ(pattern_check(
                      std::span<const std::byte>(
                          all.data() + static_cast<std::size_t>(r) * per, per),
                      5u + static_cast<std::uint64_t>(r)),
                  kPatternOk)
            << per << " block " << r;
    }
  });
}

TEST_P(CollCross, AlltoallAllSizes) {
  run(config(), [&](Comm& comm) {
    int n = comm.size();
    for (std::size_t per : sizes()) {
      std::vector<std::byte> send(per * static_cast<std::size_t>(n)),
          recv(per * static_cast<std::size_t>(n));
      for (int d = 0; d < n; ++d)
        pattern_fill(
            std::span<std::byte>(
                send.data() + static_cast<std::size_t>(d) * per, per),
            static_cast<std::uint64_t>(comm.rank()) * 131 +
                static_cast<std::uint64_t>(d));
      comm.alltoall(send.data(), per, recv.data());
      for (int s = 0; s < n; ++s)
        EXPECT_EQ(pattern_check(
                      std::span<const std::byte>(
                          recv.data() + static_cast<std::size_t>(s) * per, per),
                      static_cast<std::uint64_t>(s) * 131 +
                          static_cast<std::uint64_t>(comm.rank())),
                  kPatternOk)
            << per << " from " << s;
    }
  });
}

TEST_P(CollCross, AlltoallDirectFromArenaMatrix) {
  run(config(), [&](Comm& comm) {
    int n = comm.size();
    const std::size_t per = 24 * KiB;
    std::size_t matrix = per * static_cast<std::size_t>(n);
    std::byte* send = comm.shared_alloc(matrix);
    std::byte* recv = comm.shared_alloc(matrix);
    for (int d = 0; d < n; ++d)
      pattern_fill(std::span<std::byte>(
                       send + static_cast<std::size_t>(d) * per, per),
                   static_cast<std::uint64_t>(comm.rank()) * 17 +
                       static_cast<std::uint64_t>(d));
    comm.alltoall(send, per, recv);
    for (int s = 0; s < n; ++s)
      EXPECT_EQ(pattern_check(std::span<const std::byte>(
                                  recv + static_cast<std::size_t>(s) * per,
                                  per),
                              static_cast<std::uint64_t>(s) * 17 +
                                  static_cast<std::uint64_t>(comm.rank())),
                kPatternOk);
  });
}

TEST_P(CollCross, AlltoallvRaggedWithZeros) {
  run(config(), [&](Comm& comm) {
    int n = comm.size();
    int me = comm.rank();
    auto nsz = static_cast<std::size_t>(n);
    // Ragged rows spanning well past the per-dest chunk capacity, with one
    // zero-count destination per sender.
    std::vector<std::size_t> scounts(nsz), sdispls(nsz), rcounts(nsz),
        rdispls(nsz);
    auto count_for = [&](int s, int d) -> std::size_t {
      if (n > 1 && d == (s + 1) % n) return 0;
      return (static_cast<std::size_t>(s) + 1) * 3 * KiB +
             static_cast<std::size_t>(d) * 128 + kTestSlot / 2;
    };
    for (int d = 0; d < n; ++d)
      scounts[static_cast<std::size_t>(d)] = count_for(me, d);
    std::partial_sum(scounts.begin(), scounts.end() - 1, sdispls.begin() + 1);
    for (int s = 0; s < n; ++s)
      rcounts[static_cast<std::size_t>(s)] = count_for(s, me);
    std::partial_sum(rcounts.begin(), rcounts.end() - 1, rdispls.begin() + 1);

    std::vector<std::byte> send(sdispls[nsz - 1] + scounts[nsz - 1]);
    std::vector<std::byte> recv(rdispls[nsz - 1] + rcounts[nsz - 1]);
    for (int d = 0; d < n; ++d) {
      auto dz = static_cast<std::size_t>(d);
      pattern_fill(
          std::span<std::byte>(send.data() + sdispls[dz], scounts[dz]),
          static_cast<std::uint64_t>(me) * 311 + static_cast<std::uint64_t>(d));
    }
    comm.alltoallv(send.data(), scounts.data(), sdispls.data(), recv.data(),
                   rcounts.data(), rdispls.data());
    for (int s = 0; s < n; ++s) {
      auto sz = static_cast<std::size_t>(s);
      EXPECT_EQ(pattern_check(std::span<const std::byte>(
                                  recv.data() + rdispls[sz], rcounts[sz]),
                              static_cast<std::uint64_t>(s) * 311 +
                                  static_cast<std::uint64_t>(me)),
                kPatternOk)
          << "from " << s;
    }
  });
}

TEST_P(CollCross, AlltoallStridedPacksDirectWithZeroStaging) {
  run(config(), [&](Comm& comm) {
    int n = comm.size();
    int me = comm.rank();
    // Send and receive layouts differ (same packed size): the op must
    // re-block, not just move bytes. 720 packed bytes per destination fit
    // one per-dest slot chunk at every tested rank count, so the shm
    // family engages whenever the forced mode asks for it.
    Datatype sdt = Datatype::vector(3, 48, 96);
    Datatype rdt = Datatype::vector(2, 72, 100);
    ASSERT_EQ(sdt.size(), rdt.size());
    const std::size_t count = 5;
    std::size_t sext = sdt.extent() * count, rext = rdt.extent() * count;
    std::size_t packed = sdt.size() * count;
    auto nsz = static_cast<std::size_t>(n);
    std::vector<std::byte> send(sext * nsz, std::byte{0});
    std::vector<std::byte> recv(rext * nsz, std::byte{0xee});
    auto seed = [](int s, int d) {
      return static_cast<std::uint64_t>(s) * 977 +
             static_cast<std::uint64_t>(d);
    };
    std::vector<std::byte> pk(packed);
    for (int d = 0; d < n; ++d) {
      pattern_fill(pk, seed(me, d));
      sdt.unpack(pk.data(), count,
                 send.data() + static_cast<std::size_t>(d) * sext);
    }

    const tune::Counters& c = comm.engine().counters();
    std::uint64_t staged0 = c.pack_staged_ops;
    std::uint64_t direct0 = c.pack_direct_ops;
    comm.alltoall_strided(send.data(), sdt, count, recv.data(), rdt);

    // The acceptance property: the strided flow never materialises an
    // intermediate contiguous staging buffer, on either family.
    EXPECT_EQ(c.pack_staged_ops, staged0);
    if (n > 1) EXPECT_GT(c.pack_direct_ops, direct0);

    for (int s = 0; s < n; ++s) {
      rdt.pack(recv.data() + static_cast<std::size_t>(s) * rext, count,
               pk.data());
      EXPECT_EQ(pattern_check(pk, seed(s, me)), kPatternOk)
          << "from " << s;
    }
  });
}

TEST_P(CollCross, AllgatherStridedIndexedReceiveLayout) {
  run(config(), [&](Comm& comm) {
    int n = comm.size();
    int me = comm.rank();
    Datatype sdt = Datatype::vector(4, 40, 64);
    Datatype rdt = Datatype::indexed({100, 60}, {0, 128});
    ASSERT_EQ(sdt.size(), rdt.size());
    const std::size_t count = 6;  // 960 packed bytes: fits the test slot.
    std::size_t sext = sdt.extent() * count, rext = rdt.extent() * count;
    std::size_t packed = sdt.size() * count;
    std::vector<std::byte> send(sext, std::byte{0});
    std::vector<std::byte> recv(rext * static_cast<std::size_t>(n),
                                std::byte{0xee});
    std::vector<std::byte> pk(packed);
    pattern_fill(pk, 4242u + static_cast<std::uint64_t>(me));
    sdt.unpack(pk.data(), count, send.data());

    const tune::Counters& c = comm.engine().counters();
    std::uint64_t staged0 = c.pack_staged_ops;
    comm.allgather_strided(send.data(), sdt, count, recv.data(), rdt);
    EXPECT_EQ(c.pack_staged_ops, staged0);

    for (int w = 0; w < n; ++w) {
      rdt.pack(recv.data() + static_cast<std::size_t>(w) * rext, count,
               pk.data());
      EXPECT_EQ(pattern_check(pk, 4242u + static_cast<std::uint64_t>(w)),
                kPatternOk)
          << "block " << w;
    }
  });
}

TEST_P(CollCross, AlltoallStridedOverflowingChunkFallsBackCorrectly) {
  run(config(), [&](Comm& comm) {
    int n = comm.size();
    int me = comm.rank();
    // Packed per-dest block (20 KiB) exceeds any per-dest chunk of the
    // 16 KiB test slot: the op must take the segment-list p2p family even
    // under forced shm, and still never stage.
    Datatype dt = Datatype::vector(10, 2048, 4096);
    const std::size_t count = 1;
    std::size_t ext = dt.extent() * count;
    std::size_t packed = dt.size() * count;
    auto nsz = static_cast<std::size_t>(n);
    std::vector<std::byte> send(ext * nsz, std::byte{0});
    std::vector<std::byte> recv(ext * nsz, std::byte{0xee});
    std::vector<std::byte> pk(packed);
    for (int d = 0; d < n; ++d) {
      pattern_fill(pk, static_cast<std::uint64_t>(me) * 53 +
                           static_cast<std::uint64_t>(d));
      dt.unpack(pk.data(), count,
                send.data() + static_cast<std::size_t>(d) * ext);
    }
    const tune::Counters& c = comm.engine().counters();
    std::uint64_t staged0 = c.pack_staged_ops;
    comm.alltoall_strided(send.data(), dt, count, recv.data(), dt);
    EXPECT_EQ(c.pack_staged_ops, staged0);
    for (int s = 0; s < n; ++s) {
      dt.pack(recv.data() + static_cast<std::size_t>(s) * ext, count,
              pk.data());
      EXPECT_EQ(pattern_check(pk, static_cast<std::uint64_t>(s) * 53 +
                                      static_cast<std::uint64_t>(me)),
                kPatternOk)
          << "from " << s;
    }
  });
}

TEST_P(CollCross, ReduceAllreduceAllSizes) {
  run(config(), [&](Comm& comm) {
    int n = comm.size();
    // Element counts straddling the slot (doubles: slot holds 2K elems).
    for (std::size_t kN : {31u, 2048u, 5000u}) {
      std::vector<double> in(kN), out(kN, -1);
      for (std::size_t i = 0; i < kN; ++i)
        in[i] = static_cast<double>(comm.rank()) + static_cast<double>(i);
      comm.reduce_f64(in.data(), out.data(), kN, Comm::ReduceOp::kSum,
                      n - 1);
      if (comm.rank() == n - 1) {
        for (std::size_t i = 0; i < kN; ++i)
          EXPECT_DOUBLE_EQ(out[i], n * (n - 1) / 2.0 +
                                       static_cast<double>(n) *
                                           static_cast<double>(i));
      }
      std::vector<double> amax(kN);
      comm.allreduce_f64(in.data(), amax.data(), kN, Comm::ReduceOp::kMax);
      for (std::size_t i = 0; i < kN; ++i)
        EXPECT_DOUBLE_EQ(amax[i],
                         static_cast<double>(n - 1) + static_cast<double>(i));
    }
    std::int64_t one = comm.rank() + 1, sum = 0;
    comm.allreduce_i64(&one, &sum, 1, Comm::ReduceOp::kSum);
    EXPECT_EQ(sum, static_cast<std::int64_t>(n) * (n + 1) / 2);
  });
}

TEST_P(CollCross, EpochReuseStress) {
  // Many back-to-back arena collectives: sequence/sense bugs in the epoch
  // or flat-barrier protocol show up as hangs or cross-epoch corruption.
  run(config(), [&](Comm& comm) {
    int n = comm.size();
    for (int it = 0; it < 150; ++it) {
      comm.barrier();
      std::uint32_t word = 0;
      if (comm.rank() == it % n)
        word = 0xC0FFEE00u + static_cast<std::uint32_t>(it);
      comm.bcast(&word, sizeof word, it % n);
      ASSERT_EQ(word, 0xC0FFEE00u + static_cast<std::uint32_t>(it)) << it;
      std::int64_t v = it + comm.rank(), mx = -1;
      comm.allreduce_i64(&v, &mx, 1, Comm::ReduceOp::kMax);
      ASSERT_EQ(mx, it + n - 1) << it;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndWorlds, CollCross,
    ::testing::Values(CrossParam{2, coll::Mode::kShm},
                      CrossParam{3, coll::Mode::kShm},
                      CrossParam{5, coll::Mode::kShm},
                      CrossParam{8, coll::Mode::kShm},
                      CrossParam{2, coll::Mode::kP2p},
                      CrossParam{3, coll::Mode::kP2p},
                      CrossParam{5, coll::Mode::kP2p},
                      CrossParam{8, coll::Mode::kP2p}),
    [](const auto& info) {
      return std::to_string(info.param.nranks) + "ranks_" +
             coll::to_string(info.param.mode);
    });

// Auto mode routes by the tuned coll_activation crossover: sizes straddling
// it take different families (observable in the coll telemetry), and both
// produce correct results.
TEST(CollAuto, ActivationBoundaryRoutesAndWorks) {
  // The routing under test; beats any outer env.
  coll::ScopedForcedMode forced(coll::Mode::kAuto);
  Config cfg;
  cfg.nranks = 4;
  cfg.coll = coll::Mode::kAuto;
  tune::TuningTable t = tune::formula_defaults(detect_host());
  t.coll_activation = 4 * KiB;
  cfg.tuning = t;
  run(cfg, [&](Comm& comm) {
    std::vector<std::byte> small(1 * KiB), big(64 * KiB);
    if (comm.rank() == 0) {
      pattern_fill(small, 1);
      pattern_fill(big, 2);
    }
    std::uint64_t shm_before = comm.engine().counters().coll_shm_ops;
    std::uint64_t p2p_before = comm.engine().counters().coll_p2p_ops;
    comm.bcast(small.data(), small.size(), 0);
    EXPECT_EQ(comm.engine().counters().coll_p2p_ops, p2p_before + 1);
    comm.bcast(big.data(), big.size(), 0);
    EXPECT_EQ(comm.engine().counters().coll_shm_ops, shm_before + 1);
    EXPECT_EQ(pattern_check(small, 1), kPatternOk);
    EXPECT_EQ(pattern_check(big, 2), kPatternOk);
  });
}

// Regression: a reduce whose writers finish at different times (one
// direct-mode arena-resident operand consumed in round 0, others staged
// over several rounds) immediately followed by more arena collectives. The
// early-exiting writer opens the next epoch on its slot while the root is
// still combining — the root must work from its header snapshot, not
// re-read the live slot (which used to deadlock the world).
TEST(CollAuto, ReduceMixedDirectAndStagedWritersBackToBack) {
  coll::ScopedForcedMode forced(coll::Mode::kShm);
  Config cfg;
  cfg.nranks = 4;
  cfg.coll = coll::Mode::kShm;
  cfg.coll_slot_bytes = 16 * KiB;  // Doubles: 2048 elems/round.
  cfg.shared_pool_bytes = 32 * MiB;
  run(cfg, [&](Comm& comm) {
    int n = comm.size();
    const std::size_t kN = 5000;  // 3 staged rounds.
    bool direct = comm.rank() == 1;
    std::vector<double> heap(direct ? 0 : kN);
    double* in = direct
                     ? reinterpret_cast<double*>(comm.shared_alloc(
                           kN * sizeof(double), alignof(double)))
                     : heap.data();
    for (int it = 0; it < 20; ++it) {
      for (std::size_t i = 0; i < kN; ++i)
        in[i] = static_cast<double>(comm.rank() + it) +
                static_cast<double>(i);
      std::vector<double> out(kN, -1);
      comm.reduce_f64(in, out.data(), kN, Comm::ReduceOp::kSum, 0);
      // No intervening barrier: the next collective reuses the arena as
      // soon as each rank's part of the reduce completes.
      std::uint32_t word = comm.rank() == 2 ? 99u + static_cast<std::uint32_t>(it) : 0u;
      comm.bcast(&word, sizeof word, 2);
      ASSERT_EQ(word, 99u + static_cast<std::uint32_t>(it)) << it;
      if (comm.rank() == 0) {
        for (std::size_t i = 0; i < kN; i += 997)
          ASSERT_DOUBLE_EQ(out[i],
                           n * (n - 1) / 2.0 +
                               static_cast<double>(n) *
                                   (static_cast<double>(i) + it))
              << it;
      }
    }
  });
}

// Auto-mode alltoallv gates on a rank-consistent symmetric proxy: the
// minimum over ranks of total row bytes, exchanged through the arena's
// count-probe cells. Tiny rows go pt2pt (PR 4 always took the arena),
// big rows take the arena, and ONE small-row participant drags the whole
// operation to pt2pt — all observable in the coll telemetry, and every
// variant must stay correct.
TEST(CollAuto, AlltoallvTinyRowsGateToP2p) {
  coll::ScopedForcedMode forced(coll::Mode::kAuto);
  Config cfg;
  cfg.nranks = 4;
  cfg.coll = coll::Mode::kAuto;
  tune::TuningTable t = tune::formula_defaults(detect_host());
  t.coll_activation = 4 * KiB;
  cfg.tuning = t;
  cfg.shared_pool_bytes = 32 * MiB;
  run(cfg, [&](Comm& comm) {
    int n = comm.size();
    int me = comm.rank();
    auto nsz = static_cast<std::size_t>(n);
    auto do_alltoallv = [&](std::size_t per_dest_me) {
      std::vector<std::size_t> scounts(nsz, per_dest_me), sdispls(nsz),
          rcounts(nsz), rdispls(nsz);
      // Symmetric layout: every rank must compute the peer's count. The
      // mixed case gives rank 0 tiny rows and everyone else big ones.
      for (int s = 0; s < n; ++s)
        rcounts[static_cast<std::size_t>(s)] =
            per_dest_me == 0 ? 0 : per_dest_me;
      std::partial_sum(scounts.begin(), scounts.end() - 1,
                       sdispls.begin() + 1);
      std::partial_sum(rcounts.begin(), rcounts.end() - 1,
                       rdispls.begin() + 1);
      std::vector<std::byte> send(sdispls[nsz - 1] + scounts[nsz - 1]);
      std::vector<std::byte> recv(rdispls[nsz - 1] + rcounts[nsz - 1]);
      for (int d = 0; d < n; ++d)
        pattern_fill(std::span<std::byte>(
                         send.data() + sdispls[static_cast<std::size_t>(d)],
                         scounts[static_cast<std::size_t>(d)]),
                     static_cast<std::uint64_t>(me) * 41 +
                         static_cast<std::uint64_t>(d));
      comm.alltoallv(send.data(), scounts.data(), sdispls.data(),
                     recv.data(), rcounts.data(), rdispls.data());
      for (int s = 0; s < n; ++s)
        EXPECT_EQ(pattern_check(
                      std::span<const std::byte>(
                          recv.data() + rdispls[static_cast<std::size_t>(s)],
                          rcounts[static_cast<std::size_t>(s)]),
                      static_cast<std::uint64_t>(s) * 41 +
                          static_cast<std::uint64_t>(me)),
                  kPatternOk);
    };
    tune::Counters& c = comm.engine().counters();
    // Tiny rows: 256 B to each of 3 peers = 768 B < 4 KiB -> pt2pt.
    std::uint64_t p2p0 = c.coll_p2p_ops;
    do_alltoallv(256);
    EXPECT_EQ(c.coll_p2p_ops, p2p0 + 1);
    // Big rows: 4 KiB each = 12 KiB >= 4 KiB -> arena.
    std::uint64_t shm0 = c.coll_shm_ops;
    do_alltoallv(4 * KiB);
    EXPECT_EQ(c.coll_shm_ops, shm0 + 1);
  });
}

TEST(CollAuto, AlltoallvOneTinyParticipantDragsAllToP2p) {
  coll::ScopedForcedMode forced(coll::Mode::kAuto);
  Config cfg;
  cfg.nranks = 3;
  cfg.coll = coll::Mode::kAuto;
  tune::TuningTable t = tune::formula_defaults(detect_host());
  t.coll_activation = 4 * KiB;
  cfg.tuning = t;
  run(cfg, [&](Comm& comm) {
    int n = comm.size();
    int me = comm.rank();
    auto nsz = static_cast<std::size_t>(n);
    // Rank 0 sends 64 B per destination, everyone else 8 KiB: the minimum
    // anchors the decision, so ALL ranks must agree on pt2pt.
    auto count_for = [&](int s) -> std::size_t {
      return s == 0 ? 64 : 8 * KiB;
    };
    std::vector<std::size_t> scounts(nsz, count_for(me)), sdispls(nsz),
        rcounts(nsz), rdispls(nsz);
    for (int s = 0; s < n; ++s)
      rcounts[static_cast<std::size_t>(s)] = count_for(s);
    std::partial_sum(scounts.begin(), scounts.end() - 1, sdispls.begin() + 1);
    std::partial_sum(rcounts.begin(), rcounts.end() - 1, rdispls.begin() + 1);
    std::vector<std::byte> send(sdispls[nsz - 1] + scounts[nsz - 1]);
    std::vector<std::byte> recv(rdispls[nsz - 1] + rcounts[nsz - 1]);
    for (int d = 0; d < n; ++d)
      pattern_fill(std::span<std::byte>(
                       send.data() + sdispls[static_cast<std::size_t>(d)],
                       scounts[static_cast<std::size_t>(d)]),
                   static_cast<std::uint64_t>(me) * 53 +
                       static_cast<std::uint64_t>(d));
    tune::Counters& c = comm.engine().counters();
    std::uint64_t p2p0 = c.coll_p2p_ops;
    comm.alltoallv(send.data(), scounts.data(), sdispls.data(), recv.data(),
                   rcounts.data(), rdispls.data());
    EXPECT_EQ(c.coll_p2p_ops, p2p0 + 1);
    for (int s = 0; s < n; ++s)
      EXPECT_EQ(pattern_check(
                    std::span<const std::byte>(
                        recv.data() + rdispls[static_cast<std::size_t>(s)],
                        rcounts[static_cast<std::size_t>(s)]),
                    static_cast<std::uint64_t>(s) * 53 +
                        static_cast<std::uint64_t>(me)),
                kPatternOk);
  });
}

// A forced-shm world whose geometry cannot host the op (slot too small for
// the per-dest stride) must fall back to pt2pt, counted as a fallback.
TEST(CollAuto, GeometryFallbackCounts) {
  coll::ScopedForcedMode forced(coll::Mode::kShm);
  Config cfg;
  cfg.nranks = 4;
  cfg.coll = coll::Mode::kShm;
  cfg.coll_slot_bytes = 64;  // < 64 * (nranks-1): alltoall cannot fit.
  run(cfg, [&](Comm& comm) {
    int n = comm.size();
    const std::size_t per = 4 * KiB;
    std::vector<std::byte> send(per * static_cast<std::size_t>(n)),
        recv(per * static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d)
      pattern_fill(std::span<std::byte>(
                       send.data() + static_cast<std::size_t>(d) * per, per),
                   static_cast<std::uint64_t>(comm.rank() * 7 + d));
    std::uint64_t fb = comm.engine().counters().coll_fallbacks;
    comm.alltoall(send.data(), per, recv.data());
    EXPECT_EQ(comm.engine().counters().coll_fallbacks, fb + 1);
    for (int s = 0; s < n; ++s)
      EXPECT_EQ(pattern_check(std::span<const std::byte>(
                                  recv.data() + static_cast<std::size_t>(s) * per,
                                  per),
                              static_cast<std::uint64_t>(s * 7 + comm.rank())),
                kPatternOk);
  });
}

}  // namespace
}  // namespace nemo::core
