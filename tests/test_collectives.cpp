// Collectives across LMT backends and rank counts, including non-power-of-two
// worlds and the large-message alltoall(v) paths Figure 7 depends on.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/checksum.hpp"
#include "core/comm.hpp"

namespace nemo::core {
namespace {

struct CollParam {
  int nranks;
  lmt::LmtKind kind;
};

class Collectives : public ::testing::TestWithParam<CollParam> {
 protected:
  Config config() const {
    Config cfg;
    cfg.nranks = GetParam().nranks;
    cfg.lmt = GetParam().kind;
    cfg.knem_mode = lmt::KnemMode::kAuto;
    cfg.shared_pool_bytes = 64 * MiB;
    return cfg;
  }
};

TEST_P(Collectives, BarrierManyTimes) {
  run(config(), [&](Comm& comm) {
    for (int i = 0; i < 50; ++i) comm.barrier();
  });
}

TEST_P(Collectives, BcastFromEveryRoot) {
  run(config(), [&](Comm& comm) {
    constexpr std::size_t kN = 200 * KiB;  // Rendezvous-sized.
    std::vector<std::byte> buf(kN);
    for (int root = 0; root < comm.size(); ++root) {
      if (comm.rank() == root) pattern_fill(buf, 100 + root);
      comm.bcast(buf.data(), kN, root);
      EXPECT_EQ(pattern_check(buf, 100 + static_cast<unsigned>(root)),
                kPatternOk)
          << "root " << root;
    }
  });
}

TEST_P(Collectives, GatherScatterInverse) {
  run(config(), [&](Comm& comm) {
    const std::size_t per = 64 * KiB + 16;
    int n = comm.size();
    std::vector<std::byte> mine(per);
    pattern_fill(mine, static_cast<std::uint64_t>(comm.rank()));
    std::vector<std::byte> all(per * static_cast<std::size_t>(n));
    comm.gather(mine.data(), per, all.data(), 0);
    if (comm.rank() == 0) {
      for (int r = 0; r < n; ++r)
        EXPECT_EQ(
            pattern_check(std::span<const std::byte>(
                              all.data() + static_cast<std::size_t>(r) * per,
                              per),
                          static_cast<std::uint64_t>(r)),
            kPatternOk);
    }
    std::vector<std::byte> back(per);
    comm.scatter(all.data(), per, back.data(), 0);
    EXPECT_EQ(pattern_check(back, static_cast<std::uint64_t>(comm.rank())),
              kPatternOk);
  });
}

TEST_P(Collectives, AllgatherRing) {
  run(config(), [&](Comm& comm) {
    const std::size_t per = 96 * KiB;
    int n = comm.size();
    std::vector<std::byte> mine(per);
    pattern_fill(mine, 7u + static_cast<std::uint64_t>(comm.rank()));
    std::vector<std::byte> all(per * static_cast<std::size_t>(n));
    comm.allgather(mine.data(), per, all.data());
    for (int r = 0; r < n; ++r)
      EXPECT_EQ(pattern_check(std::span<const std::byte>(
                                  all.data() + static_cast<std::size_t>(r) * per,
                                  per),
                              7u + static_cast<std::uint64_t>(r)),
                kPatternOk);
  });
}

TEST_P(Collectives, AlltoallLargeBlocks) {
  run(config(), [&](Comm& comm) {
    const std::size_t per = 128 * KiB;
    int n = comm.size();
    std::vector<std::byte> send(per * static_cast<std::size_t>(n)),
        recv(per * static_cast<std::size_t>(n));
    // Block (r -> d) filled with seed r*1000+d.
    for (int d = 0; d < n; ++d)
      pattern_fill(std::span<std::byte>(
                       send.data() + static_cast<std::size_t>(d) * per, per),
                   static_cast<std::uint64_t>(comm.rank()) * 1000 +
                       static_cast<std::uint64_t>(d));
    comm.alltoall(send.data(), per, recv.data());
    for (int s = 0; s < n; ++s)
      EXPECT_EQ(pattern_check(std::span<const std::byte>(
                                  recv.data() + static_cast<std::size_t>(s) * per,
                                  per),
                              static_cast<std::uint64_t>(s) * 1000 +
                                  static_cast<std::uint64_t>(comm.rank())),
                kPatternOk)
          << "from rank " << s;
  });
}

TEST_P(Collectives, AlltoallvUnevenIncludingZeros) {
  run(config(), [&](Comm& comm) {
    int n = comm.size();
    int me = comm.rank();
    auto nsz = static_cast<std::size_t>(n);
    // Rank r sends (r+1)*8KiB to each destination except one it skips.
    std::vector<std::size_t> scounts(nsz), sdispls(nsz), rcounts(nsz),
        rdispls(nsz);
    for (int d = 0; d < n; ++d) {
      auto dz = static_cast<std::size_t>(d);
      scounts[dz] =
          (d == (me + 1) % n && n > 1) ? 0 : (static_cast<std::size_t>(me) + 1) * 8 * KiB;
    }
    std::partial_sum(scounts.begin(), scounts.end() - 1, sdispls.begin() + 1);
    for (int s = 0; s < n; ++s) {
      auto sz = static_cast<std::size_t>(s);
      rcounts[sz] =
          (me == (s + 1) % n && n > 1) ? 0 : (static_cast<std::size_t>(s) + 1) * 8 * KiB;
    }
    std::partial_sum(rcounts.begin(), rcounts.end() - 1, rdispls.begin() + 1);

    std::vector<std::byte> send(sdispls[nsz - 1] + scounts[nsz - 1]);
    std::vector<std::byte> recv(rdispls[nsz - 1] + rcounts[nsz - 1]);
    for (int d = 0; d < n; ++d) {
      auto dz = static_cast<std::size_t>(d);
      pattern_fill(std::span<std::byte>(send.data() + sdispls[dz],
                                        scounts[dz]),
                   static_cast<std::uint64_t>(me) * 97 +
                       static_cast<std::uint64_t>(d));
    }
    comm.alltoallv(send.data(), scounts.data(), sdispls.data(), recv.data(),
                   rcounts.data(), rdispls.data());
    for (int s = 0; s < n; ++s) {
      auto sz = static_cast<std::size_t>(s);
      EXPECT_EQ(pattern_check(std::span<const std::byte>(
                                  recv.data() + rdispls[sz], rcounts[sz]),
                              static_cast<std::uint64_t>(s) * 97 +
                                  static_cast<std::uint64_t>(me)),
                kPatternOk)
          << "from " << s;
    }
  });
}

TEST_P(Collectives, ReduceAndAllreduce) {
  run(config(), [&](Comm& comm) {
    int n = comm.size();
    const std::size_t kN = 4096;
    std::vector<double> in(kN), out(kN, -1);
    for (std::size_t i = 0; i < kN; ++i)
      in[i] = static_cast<double>(comm.rank()) + static_cast<double>(i);
    comm.reduce_f64(in.data(), out.data(), kN, Comm::ReduceOp::kSum, 0);
    if (comm.rank() == 0) {
      for (std::size_t i = 0; i < kN; ++i)
        EXPECT_DOUBLE_EQ(out[i], n * (n - 1) / 2.0 +
                                     static_cast<double>(n) *
                                         static_cast<double>(i));
    }
    std::vector<double> amax(kN);
    comm.allreduce_f64(in.data(), amax.data(), kN, Comm::ReduceOp::kMax);
    for (std::size_t i = 0; i < kN; ++i)
      EXPECT_DOUBLE_EQ(amax[i],
                       static_cast<double>(n - 1) + static_cast<double>(i));

    std::int64_t one = comm.rank() + 1, sum = 0;
    comm.allreduce_i64(&one, &sum, 1, Comm::ReduceOp::kSum);
    EXPECT_EQ(sum, static_cast<std::int64_t>(n) * (n + 1) / 2);
    std::int64_t mn = 0;
    comm.allreduce_i64(&one, &mn, 1, Comm::ReduceOp::kMin);
    EXPECT_EQ(mn, 1);
  });
}

INSTANTIATE_TEST_SUITE_P(
    WorldsAndKinds, Collectives,
    ::testing::Values(CollParam{2, lmt::LmtKind::kKnem},
                      CollParam{4, lmt::LmtKind::kKnem},
                      CollParam{8, lmt::LmtKind::kKnem},
                      CollParam{3, lmt::LmtKind::kKnem},
                      CollParam{5, lmt::LmtKind::kDefaultShm},
                      CollParam{4, lmt::LmtKind::kDefaultShm},
                      CollParam{4, lmt::LmtKind::kVmsplice},
                      CollParam{4, lmt::LmtKind::kAuto}),
    [](const auto& info) {
      std::string s = std::to_string(info.param.nranks) + "ranks_";
      s += lmt::to_string(info.param.kind);
      for (auto& c : s)
        if (c == '-') c = '_';
      return s;
    });

}  // namespace
}  // namespace nemo::core
