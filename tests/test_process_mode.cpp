// Process mode: forked ranks over the inherited arena. The KNEM backend goes
// through real cross-memory attach here (separate address spaces), vmsplice
// through inherited pipes — the paper's actual deployment shape.
#include <gtest/gtest.h>

#include <vector>

#include "common/checksum.hpp"
#include "core/comm.hpp"
#include "shm/process_runner.hpp"

namespace nemo::core {
namespace {

Config proc_config(int nranks, lmt::LmtKind kind) {
  Config cfg;
  cfg.nranks = nranks;
  cfg.mode = LaunchMode::kProcesses;
  cfg.lmt = kind;
  return cfg;
}

class ProcessMode : public ::testing::TestWithParam<lmt::LmtKind> {};

TEST_P(ProcessMode, PingpongAcrossAddressSpaces) {
  bool ok = run(proc_config(2, GetParam()), [&](Comm& comm) {
    for (std::size_t n : {std::size_t{1024}, 128 * KiB, 2 * MiB}) {
      std::vector<std::byte> buf(n);  // Private memory: CMA territory.
      if (comm.rank() == 0) {
        pattern_fill(buf, n);
        comm.send(buf.data(), n, 1, 1);
      } else {
        comm.recv(buf.data(), n, 0, 1);
        if (pattern_check(buf, n) != kPatternOk) std::abort();
      }
    }
  });
  EXPECT_TRUE(ok);
}

INSTANTIATE_TEST_SUITE_P(Kinds, ProcessMode,
                         ::testing::Values(lmt::LmtKind::kDefaultShm,
                                           lmt::LmtKind::kVmsplice,
                                           lmt::LmtKind::kKnem,
                                           lmt::LmtKind::kCma),
                         [](const auto& info) {
                           std::string s = lmt::to_string(info.param);
                           for (auto& c : s)
                             if (c == '-') c = '_';
                           return s;
                         });

TEST(ProcessMode, ArenaBuffersUseDirectWindow) {
  // Buffers allocated from the shared arena are readable directly by the
  // peer process (XPMEM-style), even in process mode.
  bool ok = run(proc_config(2, lmt::LmtKind::kKnem), [&](Comm& comm) {
    constexpr std::size_t kN = 1 * MiB;
    std::byte* buf = comm.shared_alloc(kN);
    if (comm.rank() == 0) {
      pattern_fill({buf, kN}, 3);
      comm.send(buf, kN, 1, 2);
    } else {
      std::byte* dst = comm.shared_alloc(kN);
      comm.recv(dst, kN, 0, 2);
      if (pattern_check({dst, kN}, 3) != kPatternOk) std::abort();
    }
  });
  EXPECT_TRUE(ok);
}

TEST(ProcessMode, KnemDmaAcrossProcesses) {
  Config cfg = proc_config(2, lmt::LmtKind::kKnem);
  cfg.knem_mode = lmt::KnemMode::kAsyncDma;
  bool ok = run(cfg, [&](Comm& comm) {
    constexpr std::size_t kN = 2 * MiB;
    std::vector<std::byte> buf(kN);
    if (comm.rank() == 0) {
      pattern_fill(buf, 9);
      comm.send(buf.data(), kN, 1, 3);
    } else {
      comm.recv(buf.data(), kN, 0, 3);
      if (pattern_check(buf, 9) != kPatternOk) std::abort();
    }
  });
  EXPECT_TRUE(ok);
}

TEST(ProcessMode, CollectivesAcrossFourProcesses) {
  bool ok = run(proc_config(4, lmt::LmtKind::kKnem), [&](Comm& comm) {
    const std::size_t per = 96 * KiB;
    int n = comm.size();
    std::vector<std::byte> send(per * static_cast<std::size_t>(n)),
        recv(per * static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d)
      pattern_fill(std::span<std::byte>(
                       send.data() + static_cast<std::size_t>(d) * per, per),
                   static_cast<std::uint64_t>(comm.rank() * 10 + d));
    comm.alltoall(send.data(), per, recv.data());
    for (int s = 0; s < n; ++s)
      if (pattern_check(std::span<const std::byte>(
                            recv.data() + static_cast<std::size_t>(s) * per,
                            per),
                        static_cast<std::uint64_t>(s * 10 + comm.rank())) !=
          kPatternOk)
        std::abort();
    std::int64_t one = 1, sum = 0;
    comm.allreduce_i64(&one, &sum, 1, Comm::ReduceOp::kSum);
    if (sum != n) std::abort();
  });
  EXPECT_TRUE(ok);
}

TEST(ProcessMode, ChildFailurePropagates) {
  shm::ProcessResult res = shm::run_forked_ranks(3, [](int rank) {
    return rank == 1 ? 17 : 0;
  });
  EXPECT_FALSE(res.all_ok);
  ASSERT_EQ(res.exit_codes.size(), 3u);
  EXPECT_EQ(res.exit_codes[0], 0);
  EXPECT_EQ(res.exit_codes[1], 17);
  EXPECT_EQ(res.exit_codes[2], 0);
}

TEST(ProcessMode, ChildExceptionBecomesCode121) {
  shm::ProcessResult res = shm::run_forked_ranks(2, [](int rank) -> int {
    if (rank == 0) throw std::runtime_error("boom");
    return 0;
  });
  EXPECT_FALSE(res.all_ok);
  EXPECT_EQ(res.exit_codes[0], 121);
  // The out-of-band flag distinguishes the escape from a legit return.
  ASSERT_EQ(res.uncaught.size(), 2u);
  EXPECT_TRUE(res.uncaught[0]);
  EXPECT_FALSE(res.uncaught[1]);
}

TEST(ProcessMode, LegitExitCode121IsNotFlaggedAsException) {
  // A rank body may return any code — including the 121 the catch-all also
  // maps to. Only the out-of-band pipe flag may claim "exception escaped".
  shm::ProcessResult res = shm::run_forked_ranks(2, [](int rank) -> int {
    return rank == 0 ? 121 : 0;
  });
  EXPECT_FALSE(res.all_ok);
  EXPECT_EQ(res.exit_codes[0], 121);
  EXPECT_FALSE(res.uncaught[0]);
  EXPECT_FALSE(res.uncaught[1]);
}

}  // namespace
}  // namespace nemo::core
